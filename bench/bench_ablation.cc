// Ablation of the Sect. 3.3 solver strategies on representative queries:
//   * Eq. (13) summary initialization vs plain Eq. (12),
//   * sparsity-first inequality ordering on/off,
//   * row-wise vs column-wise vs dynamic product evaluation,
//   * delta-driven incremental evaluation on/off (counted accumulators +
//     hierarchical zero-block skipping vs full re-evaluation each round),
//   * candidate-set kernel mode: occupancy-driven GAP/RLE compression
//     (auto) vs forced dense vs forced compressed.
// The paper's observation: no single heuristic fits all inputs, but the
// dynamic default is never far from the best. The incremental pair is the
// headline comparison of this bench: identical fixpoint trajectory
// (rounds/updates are asserted equal) at lower wall-clock.
//
// `--db file.gdb` (or SPARQLSIM_DB) runs the LUBM query set against a real
// ingested database instead of the synthetic generators.
// SPARQLSIM_BENCH_JSON=<path> archives every variant row as JSON;
// tools/run_benches.sh folds that into the repo-root BENCH_summary.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/pruner.h"

namespace sparqlsim {
namespace {

struct Variant {
  const char* name;
  sim::SolverOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  auto make = [](bool summary, bool order, sim::SolverOptions::EvalMode mode,
                 bool incremental) {
    sim::SolverOptions o;
    o.summary_init = summary;
    o.order_by_sparsity = order;
    o.eval_mode = mode;
    o.incremental_eval = incremental;
    return o;
  };
  using Mode = sim::SolverOptions::EvalMode;
  variants.push_back(
      {"default(13+order+dyn+inc)", make(true, true, Mode::kDynamic, true)});
  variants.push_back(
      {"no-incremental", make(true, true, Mode::kDynamic, false)});
  variants.push_back({"init12", make(false, true, Mode::kDynamic, true)});
  variants.push_back({"no-order", make(true, false, Mode::kDynamic, true)});
  variants.push_back({"row-only", make(true, true, Mode::kRowWise, true)});
  variants.push_back({"col-only", make(true, true, Mode::kColumnWise, true)});
  variants.push_back(
      {"naive(12,noord,row,noinc)", make(false, false, Mode::kRowWise, false)});
  // Kernel-mode pair: the default above is kernel=auto already, so these
  // isolate the representation axis against it. Trajectories must match
  // the default row exactly (asserted after each query).
  {
    sim::SolverOptions dense = make(true, true, Mode::kDynamic, true);
    dense.kernel_mode = sim::SolverOptions::KernelMode::kDense;
    variants.push_back({"kernel-dense", dense});
    sim::SolverOptions comp = make(true, true, Mode::kDynamic, true);
    comp.kernel_mode = sim::SolverOptions::KernelMode::kCompressed;
    variants.push_back({"kernel-compressed", comp});
  }
  return variants;
}

struct VariantRow {
  std::string name;
  double seconds = 0;
  size_t rounds = 0;
  size_t updates = 0;
  size_t row_evals = 0;
  size_t col_evals = 0;
  size_t delta_evals = 0;
  size_t full_evals = 0;
  size_t cols_cleared = 0;
  size_t blocks_skipped = 0;
  size_t compressed_ops = 0;
  size_t repr_compressions = 0;
  size_t scratch_reuses = 0;
  size_t scratch_allocs = 0;
  size_t words_cleared_sparse = 0;
};

struct QueryResult {
  std::string id;
  std::vector<VariantRow> rows;
};

QueryResult RunQuery(const char* id, const graph::GraphDatabase& db,
                     const std::string& text) {
  sparql::Query query = bench::ParseOrDie(text);
  sim::SparqlSimProcessor processor(&db);

  QueryResult result;
  result.id = id;
  std::printf("\n%s:\n", id);
  std::printf("  %-26s %12s %7s %8s %9s %9s %10s %11s\n", "variant", "time(s)",
              "rounds", "updates", "row-ev", "col-ev", "delta-ev",
              "cols-clr");
  for (const Variant& v : Variants()) {
    // Time the solve itself (SOI construction + fixpoint): that is the
    // path every one of these knobs ablates. Triple extraction is
    // identical across variants and would only dilute the comparison.
    sim::Solution solution;
    double seconds = bench::TimeAverage(
        [&] { solution = processor.Solve(*query.where, v.options); });
    VariantRow row;
    row.name = v.name;
    row.seconds = seconds;
    row.rounds = solution.stats.rounds;
    row.updates = solution.stats.updates;
    row.row_evals = solution.stats.row_evals;
    row.col_evals = solution.stats.col_evals;
    row.delta_evals = solution.stats.delta_evals;
    row.full_evals = solution.stats.full_evals;
    row.cols_cleared = solution.stats.cols_cleared;
    row.blocks_skipped = solution.stats.blocks_skipped;
    row.compressed_ops = solution.stats.compressed_ops;
    row.repr_compressions = solution.stats.repr_compressions;
    row.scratch_reuses = solution.stats.scratch_reuses;
    row.scratch_allocs = solution.stats.scratch_allocs;
    row.words_cleared_sparse = solution.stats.words_cleared_sparse;
    result.rows.push_back(row);
    std::printf("  %-26s %12.5f %7zu %8zu %9zu %9zu %10zu %11zu\n", v.name,
                seconds, row.rounds, row.updates, row.row_evals, row.col_evals,
                row.delta_evals, row.cols_cleared);
  }

  // The incremental pair must walk the exact same fixpoint trajectory —
  // a divergence here means the delta path changed results, which the
  // differential suite (solver_incremental_test) forbids.
  const VariantRow& inc_on = result.rows[0];
  const VariantRow& inc_off = result.rows[1];
  if (inc_on.rounds != inc_off.rounds || inc_on.updates != inc_off.updates) {
    std::fprintf(stderr,
                 "FATAL: incremental on/off trajectory diverged on %s "
                 "(rounds %zu vs %zu, updates %zu vs %zu)\n",
                 id, inc_on.rounds, inc_off.rounds, inc_on.updates,
                 inc_off.updates);
    std::abort();
  }
  // Same gate for the kernel-mode pair: dense and compressed must walk
  // the default (auto) trajectory bit for bit.
  for (const VariantRow& r : result.rows) {
    if (r.name.rfind("kernel-", 0) != 0) continue;
    if (r.rounds != inc_on.rounds || r.updates != inc_on.updates) {
      std::fprintf(stderr,
                   "FATAL: %s trajectory diverged from kernel-auto on %s "
                   "(rounds %zu vs %zu, updates %zu vs %zu)\n",
                   r.name.c_str(), id, r.rounds, inc_on.rounds, r.updates,
                   inc_on.updates);
      std::abort();
    }
  }
  return result;
}

void WriteJson(const std::vector<QueryResult>& results, FILE* out) {
  std::fprintf(out, "{\n  \"bench\": \"ablation\",\n");
  // Headline aggregate: wall-clock of the default (incremental) variant
  // vs the same configuration with incremental evaluation off.
  double on_total = 0, off_total = 0;
  for (const QueryResult& q : results) {
    on_total += q.rows[0].seconds;
    off_total += q.rows[1].seconds;
  }
  std::fprintf(out,
               "  \"incremental\": {\"seconds_on\": %.6f, \"seconds_off\": "
               "%.6f, \"speedup\": %.3f},\n",
               on_total, off_total,
               on_total > 0 ? off_total / on_total : 0.0);
  // Kernel-mode aggregate: wall-clock per representation policy and the
  // compressed-kernel executions the auto / forced-compressed rows
  // performed (nonzero compressed_ops is the engagement evidence).
  double dense_total = 0, comp_total = 0;
  size_t auto_ops = 0, comp_ops = 0, auto_compressions = 0;
  for (const QueryResult& q : results) {
    auto_ops += q.rows[0].compressed_ops;
    auto_compressions += q.rows[0].repr_compressions;
    for (const VariantRow& r : q.rows) {
      if (r.name == "kernel-dense") dense_total += r.seconds;
      if (r.name == "kernel-compressed") {
        comp_total += r.seconds;
        comp_ops += r.compressed_ops;
      }
    }
  }
  std::fprintf(out,
               "  \"kernel\": {\"seconds_auto\": %.6f, \"seconds_dense\": "
               "%.6f, \"seconds_compressed\": %.6f, \"compressed_ops_auto\": "
               "%zu, \"compressed_ops_compressed\": %zu, "
               "\"auto_compressions\": %zu},\n",
               on_total, dense_total, comp_total, auto_ops, comp_ops,
               auto_compressions);
  std::fprintf(out, "  \"queries\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const QueryResult& q = results[i];
    std::fprintf(out, "    {\"id\": \"%s\", \"variants\": [\n", q.id.c_str());
    for (size_t j = 0; j < q.rows.size(); ++j) {
      const VariantRow& r = q.rows[j];
      std::fprintf(out,
                   "      {\"name\": \"%s\", \"seconds\": %.6f, \"rounds\": "
                   "%zu, \"updates\": %zu, \"row_evals\": %zu, \"col_evals\": "
                   "%zu, \"delta_evals\": %zu, \"full_evals\": %zu, "
                   "\"cols_cleared\": %zu, \"blocks_skipped\": %zu, "
                   "\"compressed_ops\": %zu, \"repr_compressions\": %zu, "
                   "\"scratch_reuses\": %zu, \"scratch_allocs\": %zu, "
                   "\"words_cleared_sparse\": %zu}%s\n",
                   r.name.c_str(), r.seconds, r.rounds, r.updates, r.row_evals,
                   r.col_evals, r.delta_evals, r.full_evals, r.cols_cleared,
                   r.blocks_skipped, r.compressed_ops, r.repr_compressions,
                   r.scratch_reuses, r.scratch_allocs, r.words_cleared_sparse,
                   j + 1 == q.rows.size() ? "" : ",");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  std::printf("Solver strategy ablation (Sect. 3.3 + incremental eval)\n");
  std::vector<QueryResult> results;

  // Low-selectivity cyclic pattern over the LUBM vocabulary whose
  // candidate sets erode gradually over many rounds — the iterative
  // regime (the paper's L0/"30+ iterations" discussion, Sect. 5.3) where
  // delta-driven re-evaluation pays the most.
  const std::string lubm_cyclic =
      "SELECT * WHERE { ?x <memberOf> ?d . ?x <takesCourse> ?c . "
      "?y <teacherOf> ?c . ?y <worksFor> ?d . ?x <advisor> ?y . "
      "?y <doctoralDegreeFrom> ?u . ?d <subOrganizationOf> ?u2 . "
      "?p <publicationAuthor> ?x . }";

  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  if (override_db) {
    // Real ingested database: the LUBM workload is the one whose
    // predicate vocabulary matches the ingested LUBM dumps.
    auto queries = datagen::LubmQueries();
    for (const auto& [qid, text] : queries) {
      results.push_back(RunQuery(qid.c_str(), *override_db, text));
    }
    results.push_back(
        RunQuery("LC (cyclic, gradual erosion)", *override_db, lubm_cyclic));
  } else {
    graph::GraphDatabase lubm = bench::MakeBenchLubm();
    auto lubm_queries = datagen::LubmQueries();
    results.push_back(RunQuery("L0 (cyclic, low selectivity)", lubm,
                               lubm_queries[0].text));
    results.push_back(
        RunQuery("L1 (Fig. 6(b) cycle)", lubm, lubm_queries[1].text));
    results.push_back(
        RunQuery("LC (cyclic, gradual erosion)", lubm, lubm_cyclic));

    graph::GraphDatabase dbp = bench::MakeBenchDbpedia();
    auto b = datagen::BenchmarkQueries();
    results.push_back(RunQuery("B1 (large chain)", dbp, b[1].text));
    results.push_back(RunQuery("B14 (large star)", dbp, b[14].text));
    results.push_back(RunQuery("B8 (cyclic triangle)", dbp, b[8].text));
  }

  const char* json_path = std::getenv("SPARQLSIM_BENCH_JSON");
  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    WriteJson(results, out);
    std::fclose(out);
    std::fprintf(stderr, "[bench] JSON written to %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
