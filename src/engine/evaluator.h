#pragma once

#include "engine/solution_set.h"
#include "graph/graph_database.h"
#include "sparql/ast.h"

namespace sparqlsim::engine {

/// Join-order policies of the reference engine. The two named policies
/// model the behavioural archetypes of the systems the paper evaluates
/// against (Sect. 5.1): RDFox-like greedy dynamic ordering and
/// Virtuoso-like statistics-driven static ordering. Both re-plan from the
/// statistics of the database they run on, which is what lets pruned
/// databases change plans — for better (paper's L1) or worse (paper's D4).
enum class JoinOrderPolicy {
  /// Greedy dynamic: always extend by the cheapest remaining pattern given
  /// the variables bound so far (index-nested-loop with sideways
  /// information passing).
  kRdfoxLike,
  /// Static: patterns ascend by predicate cardinality, preferring
  /// connectivity to already-bound variables.
  kVirtuosoLike,
  /// Exactly the order the query was written in.
  kAsWritten,
};

/// Evaluation configuration: join ordering plus the pruned-evaluation
/// switches the paper's experiments toggle.
struct EvaluatorOptions {
  JoinOrderPolicy policy = JoinOrderPolicy::kRdfoxLike;

  /// When set, OPTIONAL right-hand sides are evaluated against this
  /// database instead of the evaluator's own. This is the *exact pruned
  /// evaluation* mode: running a query on the dual-simulation prune with
  /// `optional_rhs_db` pointing at the full database returns exactly the
  /// full result set — the monotone parts are exact on the prune
  /// (soundness + monotonicity), and the non-monotone OPTIONAL extension
  /// is decided against unpruned data, so no spurious unbound rows appear.
  const graph::GraphDatabase* optional_rhs_db = nullptr;
};

/// Counters for one evaluation.
struct EvalStats {
  /// Total rows materialized across all joins (the paper's proxy for
  /// intermediate-result blowup in Tables 4/5).
  size_t intermediate_rows = 0;
  /// Wall time of the evaluation.
  double seconds = 0.0;
};

/// Reference SPARQL evaluation engine over a GraphDatabase, implementing
/// the exact semantics of Sect. 4: BGPs by homomorphic matching (index
/// nested-loop joins), AND as compatibility join, OPTIONAL as left outer
/// compatibility join, UNION as padded concatenation. It is the stand-in
/// for the RDFox/Virtuoso systems of the paper's Tables 4/5.
class Evaluator {
 public:
  explicit Evaluator(const graph::GraphDatabase* db,
                     EvaluatorOptions options = {})
      : db_(db), options_(options) {}

  /// Evaluates a full query (projection + DISTINCT applied).
  SolutionSet Evaluate(const sparql::Query& query,
                       EvalStats* stats = nullptr) const;

  /// Evaluates a pattern, returning all pattern variables.
  SolutionSet EvaluatePattern(const sparql::Pattern& pattern,
                              EvalStats* stats = nullptr) const;

  /// The join order the planner chooses for a BGP under this evaluator's
  /// policy: indices into `triples` in execution order. Exposed for plan
  /// introspection (see explain.h).
  std::vector<size_t> PlanBgp(
      const std::vector<sparql::TriplePattern>& triples) const;

 private:
  SolutionSet EvalNode(const sparql::Pattern& pattern, EvalStats* stats) const;
  SolutionSet EvalBgp(const std::vector<sparql::TriplePattern>& triples,
                      EvalStats* stats) const;
  SolutionSet Join(const SolutionSet& left, const SolutionSet& right,
                   bool left_outer, EvalStats* stats) const;
  SolutionSet Union(const SolutionSet& left, const SolutionSet& right,
                    EvalStats* stats) const;

  const graph::GraphDatabase* db_;
  EvaluatorOptions options_;
};

}  // namespace sparqlsim::engine
