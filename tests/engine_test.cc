#include "engine/evaluator.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "engine/required_triples.h"
#include "sparql/parser.h"

namespace sparqlsim::engine {
namespace {

using sparql::Parser;

sparql::Query Q(const char* text) {
  auto r = Parser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.error_message();
  return std::move(r).value();
}

/// Collects rows as sets of (var, name) pairs for order-independent
/// comparison, skipping unbound values.
std::set<std::set<std::pair<std::string, std::string>>> Materialize(
    const SolutionSet& rows, const graph::GraphDatabase& db) {
  std::set<std::set<std::pair<std::string, std::string>>> out;
  for (size_t i = 0; i < rows.NumRows(); ++i) {
    std::set<std::pair<std::string, std::string>> row;
    for (size_t c = 0; c < rows.Arity(); ++c) {
      uint32_t v = rows.Row(i)[c];
      if (v != kUnbound) row.emplace(rows.vars()[c], db.nodes().Name(v));
    }
    out.insert(std::move(row));
  }
  return out;
}

class EngineSemantics : public ::testing::TestWithParam<JoinOrderPolicy> {
 protected:
  graph::GraphDatabase db_ = datagen::MakeMovieDatabase();
  Evaluator Make() const { return Evaluator(&db_, {GetParam()}); }
};

TEST_P(EngineSemantics, QueryX1TwoMatches) {
  // (X1) on Fig. 1(a) retrieves exactly the two bold subgraphs.
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(Q(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "?director <worked_with> ?coworker . }"));
  auto result = Materialize(rows, db_);
  std::set<std::set<std::pair<std::string, std::string>>> expected = {
      {{"director", "B. De Palma"},
       {"movie", "Mission: Impossible"},
       {"coworker", "D. Koepp"}},
      {{"director", "G. Hamilton"},
       {"movie", "Goldfinger"},
       {"coworker", "H. Saltzman"}},
  };
  EXPECT_EQ(result, expected);
}

TEST_P(EngineSemantics, QueryX2OptionalAddsPartialMatches) {
  // (X2): all directors, coworker bound only where one exists — the bold
  // plus the semi-thick subgraphs (D. Koepp and T. Young join in).
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(Q(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "OPTIONAL { ?director <worked_with> ?coworker . } }"));
  auto result = Materialize(rows, db_);
  std::set<std::set<std::pair<std::string, std::string>>> expected = {
      {{"director", "B. De Palma"},
       {"movie", "Mission: Impossible"},
       {"coworker", "D. Koepp"}},
      {{"director", "G. Hamilton"},
       {"movie", "Goldfinger"},
       {"coworker", "H. Saltzman"}},
      {{"director", "D. Koepp"}, {"movie", "Mortdecai"}},
      {{"director", "T. Young"}, {"movie", "From Russia with Love"}},
  };
  EXPECT_EQ(result, expected);
}

TEST_P(EngineSemantics, ConstantsRestrict) {
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(
      Q("SELECT * WHERE { ?d <directed> <Goldfinger> . }"));
  auto result = Materialize(rows, db_);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count({{"d", "G. Hamilton"}}));
}

TEST_P(EngineSemantics, LiteralLookup) {
  Evaluator eval = Make();
  SolutionSet rows =
      eval.Evaluate(Q("SELECT * WHERE { ?c <population> \"70063\" . }"));
  auto result = Materialize(rows, db_);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count({{"c", "Saint John"}}));
}

TEST_P(EngineSemantics, UnknownConstantEmpty) {
  Evaluator eval = Make();
  EXPECT_EQ(
      eval.Evaluate(Q("SELECT * WHERE { ?d <directed> <NoFilm> . }")).NumRows(),
      0u);
}

TEST_P(EngineSemantics, UnknownPredicateEmpty) {
  Evaluator eval = Make();
  EXPECT_EQ(eval.Evaluate(Q("SELECT * WHERE { ?a <nope> ?b . }")).NumRows(),
            0u);
}

TEST_P(EngineSemantics, UnionCombines) {
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(Q(
      "SELECT * WHERE { { ?m <awarded> <Oscar> . } UNION "
      "{ ?m <awarded> <BAFTA Awards> . } }"));
  auto result = Materialize(rows, db_);
  EXPECT_EQ(result.size(), 3u);
  EXPECT_TRUE(result.count({{"m", "From Russia with Love"}}));
}

TEST_P(EngineSemantics, ProjectionAndDistinct) {
  Evaluator eval = Make();
  // Two movies share the Action genre: projecting the genre without
  // DISTINCT yields two rows, with DISTINCT one.
  SolutionSet plain =
      eval.Evaluate(Q("SELECT ?g WHERE { ?m <genre> ?g . }"));
  EXPECT_EQ(plain.NumRows(), 2u);
  SolutionSet distinct =
      eval.Evaluate(Q("SELECT DISTINCT ?g WHERE { ?m <genre> ?g . }"));
  EXPECT_EQ(distinct.NumRows(), 1u);
}

TEST_P(EngineSemantics, SelfJoinSameVariableTwice) {
  // ?x worked_with ?x has no match (no reflexive edge).
  Evaluator eval = Make();
  EXPECT_EQ(
      eval.Evaluate(Q("SELECT * WHERE { ?x <worked_with> ?x . }")).NumRows(),
      0u);
}

TEST_P(EngineSemantics, CyclicQuery) {
  // sequel_of + shared genre triangle around Goldfinger.
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(Q(
      "SELECT * WHERE { ?s <sequel_of> ?m . ?m <genre> ?g . }"));
  auto result = Materialize(rows, db_);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count(
      {{"s", "Thunderball"}, {"m", "Goldfinger"}, {"g", "Action"}}));
}

TEST_P(EngineSemantics, EmptyGroupYieldsUnit) {
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(Q("SELECT * WHERE { }"));
  EXPECT_EQ(rows.NumRows(), 1u);
  EXPECT_EQ(rows.Arity(), 0u);
}

TEST_P(EngineSemantics, OptionalOfEmptyLeft) {
  // OPTIONAL at group start: unit left-extended by the optional matches.
  Evaluator eval = Make();
  SolutionSet rows = eval.Evaluate(
      Q("SELECT * WHERE { OPTIONAL { ?d <directed> <Mortdecai> . } }"));
  auto result = Materialize(rows, db_);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count({{"d", "D. Koepp"}}));
}

INSTANTIATE_TEST_SUITE_P(Policies, EngineSemantics,
                         ::testing::Values(JoinOrderPolicy::kRdfoxLike,
                                           JoinOrderPolicy::kVirtuosoLike,
                                           JoinOrderPolicy::kAsWritten));

TEST(EngineFig5Test, QueryX3MatchesFig5) {
  // Fig. 5: database (a) admits the matches (b) — with the optional
  // b-triple bound — and (c) — cross-product style with v3/v4 from the
  // second conjunct and no b-edge (non-well-designed behaviour).
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("1", "a", "2").ok());
  EXPECT_TRUE(b.AddTriple("2", "a", "3").ok());
  EXPECT_TRUE(b.AddTriple("4", "b", "2").ok());
  EXPECT_TRUE(b.AddTriple("4", "c", "5").ok());
  EXPECT_TRUE(b.AddTriple("5", "d", "3").ok());
  EXPECT_TRUE(b.AddTriple("6", "d", "5").ok());
  graph::GraphDatabase db = std::move(b).Build();

  Evaluator eval(&db);
  SolutionSet rows = eval.Evaluate(Q(
      "SELECT * WHERE { ?v1 <a> ?v2 . OPTIONAL { ?v3 <b> ?v2 . } "
      "?v3 <c> ?v4 . }"));
  auto result = Materialize(rows, db);

  std::set<std::set<std::pair<std::string, std::string>>> expected = {
      // Fig. 5(b): v1=1, v2=2, v3=4, v4=5 (optional b-edge bound).
      {{"v1", "1"}, {"v2", "2"}, {"v3", "4"}, {"v4", "5"}},
      // Fig. 5(c): v1=2, v2=3 with no b-edge; join still forces v3=4,v4=5.
      {{"v1", "2"}, {"v2", "3"}, {"v3", "4"}, {"v4", "5"}},
  };
  EXPECT_EQ(result, expected);
}

TEST(EngineRequiredTriplesTest, MovieX1RequiresFourTriples) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Evaluator eval(&db);
  auto required = CollectRequiredTriples(
      Q("SELECT * WHERE { ?director <directed> ?movie . "
        "?director <worked_with> ?coworker . }"),
      db, eval);
  // Two matches x two triple patterns.
  EXPECT_EQ(required.size(), 4u);
}

TEST(EngineRequiredTriplesTest, OptionalTriplesCountOnlyWhenBound) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Evaluator eval(&db);
  auto required = CollectRequiredTriples(
      Q("SELECT * WHERE { ?director <directed> ?movie . "
        "OPTIONAL { ?director <worked_with> ?coworker . } }"),
      db, eval);
  // Four directed triples + two worked_with triples actually witnessed.
  EXPECT_EQ(required.size(), 6u);
}

TEST(EngineStatsTest, IntermediateRowsTracked) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Evaluator eval(&db);
  EvalStats stats;
  eval.Evaluate(Q("SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }"),
                &stats);
  EXPECT_GT(stats.intermediate_rows, 0u);
  EXPECT_GE(stats.seconds, 0.0);
}

}  // namespace
}  // namespace sparqlsim::engine
