#include "sim/solver.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "util/candidate_set.h"
#include "util/counted_accumulator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

namespace {

/// Unified inequality handle: indices [0, M) are matrix inequalities,
/// [M, M + S) are subordinations.
struct Work {
  std::vector<uint32_t> current;
  std::vector<uint32_t> next;
  std::vector<bool> queued;  // membership in `next`
};

/// What the evaluation phase decided for one unstable inequality. The
/// merge phase replays these tags in worklist order, so the tag plus the
/// mask fully determine the round's effect.
enum class EvalKind : uint8_t {
  kSkip,   // lhs already empty at round start: nothing to do
  kClear,  // rhs empty / predicate absent: lhs drains to the empty set
  kRow,    // mask = chi(rhs) *b A (Eq. 9), computed in full
  kCol,    // mask = chi(lhs) filtered by per-column intersection tests
  kSub,    // mask = chi(rhs) (subordination, Eq. 14/15)
  kDelta,  // mask = accumulator product after counted retraction of the
           // rows that left chi(rhs); identical to the kRow mask
};

/// Per-matrix-inequality incremental state, persistent across rounds.
///
/// Two tiers, both exploiting that candidate sets only ever shrink (the
/// accumulated removal delta since the last synchronization is exactly
/// `last_rhs` minus the current chi(rhs), and its *size* is a free count
/// difference):
///
///  * Snapshot tier — every full row-wise evaluation keeps its product
///    and the selection it was computed from (two bit-vector copies, a
///    negligible premium over the Multiply itself). A re-evaluation with
///    a small delta then *retracts*: only columns reachable from removed
///    rows can leave the product, and each such column is re-checked with
///    one early-exit cover probe against the current selection (row of
///    A^T vs chi(rhs)).
///  * Counted tier — an inequality that demonstrably iterates escalates
///    to a util::CountedAccumulator, whose per-column cover counts make
///    every retraction O(1) per touched column (no probes, GQ-Fast-style
///    counted index). Building counts writes 4 bytes per selected-nnz
///    entry where a product writes a bit, so the build is only risked on
///    *collapsed* selections, where it is near-free and every later
///    retraction is pure profit.
///
/// State is touched exclusively by the one evaluation task that owns the
/// inequality in a round (each inequality appears at most once per
/// round), so the evaluation phase stays race-free; its evolution is a
/// pure function of the worklist and the round-start assignments, so it
/// is scheduling-independent too.
struct IneqState {
  util::BitVector product;   // snapshot tier: chi(rhs) *b A for last_rhs
  util::BitVector last_rhs;  // selection both tiers are synchronized to
  size_t last_count = 0;     // == last_rhs.Count(), kept for the cost rule
  bool product_valid = false;
  util::CountedAccumulator acc;  // counted tier (escalation)
  bool acc_valid = false;
  /// Delta evaluations this inequality has completed, saturating — past
  /// retraction is the only reliable predictor of the future retractions
  /// that amortize the counted build (visit counts are not: for an
  /// inequality the fixpoint evaluates k times, any visit threshold
  /// tends to trigger exactly at the k-th, final, visit).
  uint8_t deltas_done = 0;
};

/// Escalation gate to the counted tier: at least this many delta
/// evaluations already performed...
constexpr uint8_t kAccDeltaThreshold = 2;
/// ...and a selection collapsed below 1/kAccBuildFraction of the
/// universe, so the counter-array build premium is negligible.
constexpr size_t kAccBuildFraction = 8;

/// Snapshot-tier cost asymmetry: a probe retraction pays an early-exit
/// row scan per touched column where a recompute pays a bit write per
/// entry, so probing is only chosen for deltas this many times smaller
/// than the full evaluation (counted-tier decrements are O(1) per column
/// and keep the plain removed-vs-full comparison).
constexpr size_t kProbePenalty = 8;

/// SolverOptions::KernelMode → the per-set representation policy.
util::CandidateSet::Policy PolicyFor(SolverOptions::KernelMode mode) {
  switch (mode) {
    case SolverOptions::KernelMode::kDense:
      return util::CandidateSet::Policy::kDense;
    case SolverOptions::KernelMode::kCompressed:
      return util::CandidateSet::Policy::kCompressed;
    case SolverOptions::KernelMode::kAuto:
      break;
  }
  return util::CandidateSet::Policy::kAuto;
}

}  // namespace

void SolveStats::Accumulate(const SolveStats& other) {
  rounds += other.rounds;
  evaluations += other.evaluations;
  updates += other.updates;
  row_evals += other.row_evals;
  col_evals += other.col_evals;
  solve_seconds += other.solve_seconds;
  delta_evals += other.delta_evals;
  full_evals += other.full_evals;
  acc_rebuilds += other.acc_rebuilds;
  cols_cleared += other.cols_cleared;
  blocks_skipped += other.blocks_skipped;
  compressed_ops += other.compressed_ops;
  repr_compressions += other.repr_compressions;
  repr_decompressions += other.repr_decompressions;
  parallel_rounds += other.parallel_rounds;
  max_round_width = std::max(max_round_width, other.max_round_width);
  threads_used = std::max(threads_used, other.threads_used);
}

bool Solution::AnyCandidate() const {
  for (const util::BitVector& c : candidates) {
    if (c.Any()) return true;
  }
  return false;
}

size_t Solution::RelationSize() const {
  size_t total = 0;
  for (const util::BitVector& c : candidates) total += c.Count();
  return total;
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial) {
  std::unique_ptr<util::ThreadPool> transient;
  if (options.ResolvedThreads() > 1) {
    transient = std::make_unique<util::ThreadPool>(options.ResolvedThreads());
  }
  return SolveSoi(soi, db, options, initial, transient.get());
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial,
                  util::ThreadPool* pool) {
  util::Stopwatch timer;
  const size_t n = db.NumNodes();
  const size_t num_vars = soi.NumVars();
  const size_t num_matrix = soi.matrix_ineqs.size();
  const size_t num_ineqs = num_matrix + soi.sub_ineqs.size();

  Solution solution;
  // Empty slots only: every candidate vector is moved in from chi at the
  // end of the solve, so allocating dense vectors here would be wasted.
  solution.candidates.resize(num_vars);
  // Candidate sets live behind the CandidateSet representation switch for
  // the whole fixpoint: hierarchical-dense (zero-block skipping over the
  // SIMD word kernels) or GAP/RLE-compressed per the kernel mode, with
  // kAuto compressing sets as they collapse. Flat vectors are moved into
  // the Solution at the end.
  const util::CandidateSet::Policy policy = PolicyFor(options.kernel_mode);
  std::vector<util::CandidateSet> chi;
  chi.reserve(num_vars);
  for (size_t v = 0; v < num_vars; ++v) chi.emplace_back(n, policy);
  std::vector<size_t> counts(num_vars, 0);

  // --- Initialization: Eq. (12) or Eq. (13), constants per Sect. 4.5. ---
  for (size_t v = 0; v < num_vars; ++v) {
    if (soi.unsatisfiable_vars[v]) continue;  // stays empty
    if (initial != nullptr) {
      chi[v] = util::CandidateSet((*initial)[v], policy);
      if (soi.constants[v]) {
        util::BitVector pin(n);
        pin.Set(*soi.constants[v]);
        chi[v].AndWith(pin);
      }
      continue;
    }
    if (soi.constants[v]) {
      chi[v].Set(*soi.constants[v]);
    } else {
      chi[v].SetAll();
    }
  }
  if (options.summary_init) {
    for (const Soi::Edge& e : soi.edges) {
      if (e.predicate == kEmptyPredicate) {
        chi[e.subject_var].ClearAll();
        chi[e.object_var].ClearAll();
        continue;
      }
      chi[e.subject_var].AndWith(db.ForwardSummary(e.predicate));
      chi[e.object_var].AndWith(db.BackwardSummary(e.predicate));
    }
  }
  for (size_t v = 0; v < num_vars; ++v) counts[v] = chi[v].Count();

  // --- Dependency index: ineqs whose right-hand side reads var v. ---
  std::vector<std::vector<uint32_t>> dependents(num_vars);
  for (size_t i = 0; i < num_matrix; ++i) {
    dependents[soi.matrix_ineqs[i].rhs].push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < soi.sub_ineqs.size(); ++i) {
    dependents[soi.sub_ineqs[i].rhs].push_back(
        static_cast<uint32_t>(num_matrix + i));
  }

  // --- Initial worklist order (sparsity heuristic, Sect. 3.3). ---
  std::vector<uint32_t> order(num_ineqs);
  std::iota(order.begin(), order.end(), 0);
  if (options.order_by_sparsity) {
    auto key = [&](uint32_t idx) -> size_t {
      if (idx >= num_matrix) return SIZE_MAX;  // subordinations last
      const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
      if (m.predicate == kEmptyPredicate) return 0;
      // More empty columns in A first. The counts are precomputed per
      // predicate at database build time; ascending (cols - empty) is the
      // same order as the descending empty-column sort of Sect. 3.3.
      return n - (m.forward ? db.EmptyForwardColumns(m.predicate)
                            : db.EmptyBackwardColumns(m.predicate));
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
  }

  Work work;
  work.current = order;
  work.queued.assign(num_ineqs, false);

  // Per-matrix-inequality incremental state (accumulator + selection
  // snapshot); see IneqState. Allocated once, lazily populated.
  std::vector<IneqState> inc_state(options.incremental_eval ? num_matrix : 0);

  // Per-inequality result slots, reused across rounds. chi and counts are
  // frozen during the evaluation phase — every mask is a pure function of
  // the round-start assignment — so the phase parallelizes with no
  // synchronization beyond the end-of-round barrier, and the sequential
  // merge below replays the slots in worklist order for a scheduling-
  // independent outcome. `mask_ptrs[k]` designates the mask the merge
  // applies: the slot's own `masks[k]`, or the owning inequality's
  // accumulator product (stable storage in `inc_state`, untouched during
  // the merge).
  std::vector<util::BitVector> masks;
  std::vector<EvalKind> kinds;
  std::vector<const util::BitVector*> mask_ptrs;
  std::vector<size_t> cleared;  // columns cleared by a kDelta retraction
  std::vector<uint8_t> rebuilt;  // slot performed an accumulator build

  auto on_change = [&](uint32_t var) {
    counts[var] = chi[var].Count();
    for (uint32_t dep : dependents[var]) {
      if (!work.queued[dep]) {
        work.queued[dep] = true;
        work.next.push_back(dep);
      }
    }
  };

  auto evaluate = [&](size_t k) {
    rebuilt[k] = 0;
    const uint32_t idx = work.current[k];
    if (idx >= num_matrix) {
      const Soi::SubIneq& s = soi.sub_ineqs[idx - num_matrix];
      kinds[k] = EvalKind::kSub;
      chi[s.rhs].MaterializeInto(&masks[k]);
      mask_ptrs[k] = &masks[k];
      return;
    }

    const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
    if (counts[m.lhs] == 0) {  // cannot shrink further
      kinds[k] = EvalKind::kSkip;
      return;
    }
    if (m.predicate == kEmptyPredicate || counts[m.rhs] == 0) {
      kinds[k] = EvalKind::kClear;
      return;
    }

    const util::BitMatrix& a =
        m.forward ? db.Forward(m.predicate) : db.Backward(m.predicate);
    const util::BitMatrix& a_t =
        m.forward ? db.Backward(m.predicate) : db.Forward(m.predicate);

    bool row_wise = true;
    switch (options.eval_mode) {
      case SolverOptions::EvalMode::kRowWise:
        row_wise = true;
        break;
      case SolverOptions::EvalMode::kColumnWise:
        row_wise = false;
        break;
      case SolverOptions::EvalMode::kDynamic:
        // Paper's rule: row-wise iff chi(rhs) has fewer bits than chi(lhs).
        row_wise = counts[m.rhs] < counts[m.lhs];
        break;
    }

    if (options.incremental_eval) {
      IneqState& st = inc_state[idx];

      // Cost rule, same flavor as the row/column dynamic rule: retract
      // iff the rows removed since the sync point are fewer than what the
      // chosen full strategy would touch. The monotone shrink makes the
      // removal count an exact count difference — no set difference is
      // needed to *decide*.
      if (st.acc_valid || st.product_valid) {
        const size_t removed = st.last_count - counts[m.rhs];
        const size_t full_cost = row_wise ? counts[m.rhs] : counts[m.lhs];
        // Which tier (if any) evaluates this delta: the counted tier
        // whenever its counts are live; otherwise escalate from the
        // snapshot tier when the inequality keeps iterating on a
        // collapsed selection; otherwise probe — but only for deltas
        // small enough to beat recomputation despite the probe premium.
        const bool counted_ok = st.acc_valid && removed < full_cost;
        const bool escalate_ok = !st.acc_valid && removed < full_cost &&
                                 st.deltas_done >= kAccDeltaThreshold &&
                                 counts[m.rhs] * kAccBuildFraction < n;
        const bool probe_ok =
            !st.acc_valid && !escalate_ok && removed * kProbePenalty < full_cost;
        if (counted_ok || escalate_ok || probe_ok) {
          kinds[k] = EvalKind::kDelta;
          cleared[k] = 0;
          if (st.deltas_done < kAccDeltaThreshold) ++st.deltas_done;
          if (escalate_ok) {
            // Build the cover counts on the current (collapsed)
            // selection; the build subsumes this retraction and makes
            // every later one O(1) per column.
            rebuilt[k] = 1;
            if (chi[m.rhs].compressed()) {
              // Rebuild's wide branch probes Test per non-empty row; give
              // it a flat O(1)-Test view of a compressed selection.
              util::BitVector sel;
              chi[m.rhs].MaterializeInto(&sel);
              st.acc.Rebuild(a, sel);
            } else {
              st.acc.Rebuild(a, chi[m.rhs]);
            }
            st.acc_valid = true;
            st.product_valid = false;
          } else if (removed != 0) {
            util::BitVector gone = st.last_rhs;
            chi[m.rhs].ClearBitsIn(&gone);
            if (st.acc_valid) {
              cleared[k] = st.acc.Retract(a, gone);
            } else {
              // Snapshot tier: only columns of removed rows can leave the
              // product; re-check each with one early-exit cover probe
              // (column c of A is row c of A^T). Probes hit Test() per
              // neighbour, which is a stream scan on a compressed set, so
              // pay one O(n/64) materialization up front instead.
              util::BitVector rhs_view;
              const bool probe_view = chi[m.rhs].compressed();
              if (probe_view) chi[m.rhs].MaterializeInto(&rhs_view);
              size_t probe_cleared = 0;
              gone.ForEachSetBit([&](uint32_t r) {
                for (uint32_t c : a.Row(r)) {
                  if (st.product.Test(c) &&
                      !(probe_view ? a_t.RowIntersectsAny(c, rhs_view)
                                   : a_t.RowIntersectsAny(c, chi[m.rhs]))) {
                    st.product.Reset(c);
                    ++probe_cleared;
                  }
                }
              });
              cleared[k] = probe_cleared;
            }
          }
          if (removed != 0 || rebuilt[k]) {
            chi[m.rhs].MaterializeInto(&st.last_rhs);
            st.last_count = counts[m.rhs];
          }
          // Either tier's product equals chi(rhs) *b A exactly — the same
          // mask a full kRow evaluation would produce.
          mask_ptrs[k] = st.acc_valid ? &st.acc.result() : &st.product;
          return;
        }
      }

      if (row_wise) {
        // Full product; refresh the snapshot tier from it so the next
        // visit can retract. The two copies are a negligible premium over
        // the Multiply itself, and a stale counted tier is dropped (its
        // counts no longer match any snapshot we keep).
        kinds[k] = EvalKind::kRow;
        masks[k].Resize(n);
        a.Multiply(chi[m.rhs], &masks[k]);
        st.product = masks[k];
        chi[m.rhs].MaterializeInto(&st.last_rhs);
        st.last_count = counts[m.rhs];
        st.product_valid = true;
        st.acc_valid = false;
        mask_ptrs[k] = &masks[k];
        return;
      }
    }

    if (row_wise) {
      kinds[k] = EvalKind::kRow;
      masks[k].Resize(n);
      a.Multiply(chi[m.rhs], &masks[k]);
      mask_ptrs[k] = &masks[k];
    } else {
      kinds[k] = EvalKind::kCol;
      // Keep candidate j of lhs iff column j of A intersects chi(rhs);
      // column j of A is row j of A^T. The per-candidate probes call
      // Test() once per neighbour — a stream scan on a compressed rhs —
      // so flatten a compressed chi(rhs) once before the loop.
      chi[m.lhs].MaterializeInto(&masks[k]);
      if (chi[m.rhs].compressed()) {
        util::BitVector rhs_view;
        chi[m.rhs].MaterializeInto(&rhs_view);
        masks[k].ForEachSetBit([&](uint32_t j) {
          if (!a_t.RowIntersectsAny(j, rhs_view)) masks[k].Reset(j);
        });
      } else {
        masks[k].ForEachSetBit([&](uint32_t j) {
          if (!a_t.RowIntersectsAny(j, chi[m.rhs])) masks[k].Reset(j);
        });
      }
      mask_ptrs[k] = &masks[k];
    }
  };

  SolveStats& stats = solution.stats;
  stats.threads_used = pool != nullptr ? pool->NumThreads() : 1;
  while (!work.current.empty()) {
    if (options.max_rounds != 0 && stats.rounds >= options.max_rounds) break;
    ++stats.rounds;
    const size_t width = work.current.size();
    stats.max_round_width = std::max(stats.max_round_width, width);
    if (masks.size() < width) {
      masks.resize(width);
      kinds.resize(width);
      mask_ptrs.resize(width);
      cleared.resize(width);
      rebuilt.resize(width);
    }

    // Evaluation phase: chi/counts are read-only until the barrier.
    if (pool != nullptr && width > 1) {
      ++stats.parallel_rounds;
      util::ParallelFor(pool, width, evaluate);
    } else {
      for (size_t k = 0; k < width; ++k) evaluate(k);
    }

    // Merge phase, single-threaded, in worklist order.
    for (size_t k = 0; k < width; ++k) {
      ++stats.evaluations;
      const uint32_t idx = work.current[k];
      const uint32_t lhs = idx >= num_matrix
                               ? soi.sub_ineqs[idx - num_matrix].lhs
                               : soi.matrix_ineqs[idx].lhs;
      bool changed = false;
      switch (kinds[k]) {
        case EvalKind::kSkip:
          ++stats.full_evals;
          continue;
        case EvalKind::kClear:
          ++stats.full_evals;
          changed = chi[lhs].Any();
          if (changed) chi[lhs].ClearAll();
          break;
        case EvalKind::kRow:
          ++stats.full_evals;
          ++stats.row_evals;
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
        case EvalKind::kCol:
          ++stats.full_evals;
          ++stats.col_evals;
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
        case EvalKind::kSub:
          ++stats.full_evals;
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
        case EvalKind::kDelta:
          ++stats.delta_evals;
          stats.acc_rebuilds += rebuilt[k];
          stats.cols_cleared += cleared[k];
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
      }
      if (changed) {
        ++stats.updates;
        on_change(lhs);
      }
    }

    work.current.clear();
    std::swap(work.current, work.next);
    std::fill(work.queued.begin(), work.queued.end(), false);
  }

  // Export the flat candidate vectors; harvest the representation-layer
  // counters first (TakeBits discards the summary/run structure).
  for (size_t v = 0; v < num_vars; ++v) {
    const util::CandidateSet::ReprStats repr = chi[v].TakeStats();
    stats.blocks_skipped += repr.blocks_skipped;
    stats.compressed_ops += repr.compressed_ops;
    stats.repr_compressions += repr.compressions;
    stats.repr_decompressions += repr.decompressions;
    solution.candidates[v] = std::move(chi[v]).TakeBits();
  }

  stats.solve_seconds = timer.ElapsedSeconds();
  return solution;
}

}  // namespace sparqlsim::sim
