#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sparqlsim::util {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace sparqlsim::util
