#include "sparql/printer.h"

#include <sstream>

namespace sparqlsim::sparql {

namespace {

void Print(const Pattern& p, std::ostringstream* out) {
  switch (p.kind()) {
    case PatternKind::kBgp:
      *out << "{ ";
      for (const TriplePattern& t : p.triples()) *out << t.ToString() << " ";
      *out << "}";
      break;
    case PatternKind::kJoin:
      *out << "{ ";
      Print(p.left(), out);
      *out << " ";
      Print(p.right(), out);
      *out << " }";
      break;
    case PatternKind::kOptional:
      *out << "{ ";
      Print(p.left(), out);
      *out << " OPTIONAL ";
      Print(p.right(), out);
      *out << " }";
      break;
    case PatternKind::kUnion:
      *out << "{ ";
      Print(p.left(), out);
      *out << " UNION ";
      Print(p.right(), out);
      *out << " }";
      break;
  }
}

}  // namespace

std::string ToString(const Pattern& pattern) {
  std::ostringstream out;
  Print(pattern, &out);
  return out.str();
}

std::string ToString(const Query& query) {
  std::ostringstream out;
  out << "SELECT ";
  if (query.distinct) out << "DISTINCT ";
  if (query.projection.empty()) {
    out << "*";
  } else {
    for (const std::string& v : query.projection) out << "?" << v << " ";
  }
  out << " WHERE ";
  Print(*query.where, &out);
  return out.str();
}

}  // namespace sparqlsim::sparql
