#include "util/bitmatrix.h"

#include <algorithm>
#include <cassert>

#include "util/candidate_set.h"
#include "util/hierarchical_bitvector.h"

namespace sparqlsim::util {

BitMatrix BitMatrix::Build(size_t rows, size_t cols,
                           std::vector<std::pair<uint32_t, uint32_t>>&& entries) {
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  BitMatrix m(rows, cols);
  m.row_offsets_.clear();
  m.cols_index_.reserve(entries.size());
  for (size_t pos = 0; pos < entries.size();) {
    uint32_t r = entries[pos].first;
    assert(r < rows);
    m.rows_index_.push_back(r);
    m.row_offsets_.push_back(static_cast<uint32_t>(m.cols_index_.size()));
    while (pos < entries.size() && entries[pos].first == r) {
      assert(entries[pos].second < cols);
      m.cols_index_.push_back(entries[pos].second);
      ++pos;
    }
  }
  m.row_offsets_.push_back(static_cast<uint32_t>(m.cols_index_.size()));
  return m;
}

int64_t BitMatrix::FindRowSlot(size_t r) const {
  auto it = std::lower_bound(rows_index_.begin(), rows_index_.end(),
                             static_cast<uint32_t>(r));
  if (it == rows_index_.end() || *it != r) return -1;
  return it - rows_index_.begin();
}

std::span<const uint32_t> BitMatrix::Row(size_t r) const {
  int64_t slot = FindRowSlot(r);
  if (slot < 0) return {};
  return {cols_index_.data() + row_offsets_[slot],
          row_offsets_[slot + 1] - row_offsets_[slot]};
}

bool BitMatrix::Test(size_t r, size_t c) const {
  auto row = Row(r);
  return std::binary_search(row.begin(), row.end(), static_cast<uint32_t>(c));
}

void BitMatrix::Multiply(const BitVector& x, BitVector* out) const {
  assert(x.size() == rows_);
  assert(out->size() == cols_);
  MultiplyImpl(x, out);
}

void BitMatrix::Multiply(const HierarchicalBitVector& x, BitVector* out) const {
  assert(x.size() == rows_);
  assert(out->size() == cols_);
  MultiplyImpl(x, out);
}

void BitMatrix::Multiply(const CandidateSet& x, BitVector* out) const {
  assert(x.size() == rows_);
  assert(out->size() == cols_);
  // MultiplyImpl's wide branch probes x.Test per non-empty row, which is a
  // run-stream scan on a compressed set. When that branch would be taken,
  // flatten the runs once (O(size/64)) and multiply the flat vector; the
  // narrow branch streams ForEachSetBit and is cheap in either layout.
  if (x.compressed() && x.Count() * 8 >= NonEmptyRows().size()) {
    BitVector flat;
    x.MaterializeInto(&flat);
    MultiplyImpl(flat, out);
    return;
  }
  MultiplyImpl(x, out);
}

void BitMatrix::MultiplyRange(const BitVector& x, size_t col_begin,
                              size_t col_end, BitVector* out) const {
  assert(x.size() == rows_);
  assert(out->size() == cols_);
  assert(col_begin % BitVector::kWordBits == 0);
  assert(col_end == cols_ || col_end % BitVector::kWordBits == 0);
  assert(col_begin <= col_end && col_end <= cols_);
  MultiplyRangeImpl(x, col_begin, col_end, out);
}

void BitMatrix::MultiplyRange(const HierarchicalBitVector& x, size_t col_begin,
                              size_t col_end, BitVector* out) const {
  assert(x.size() == rows_);
  assert(out->size() == cols_);
  MultiplyRangeImpl(x, col_begin, col_end, out);
}

void BitMatrix::MultiplyRange(const CandidateSet& x, size_t col_begin,
                              size_t col_end, BitVector* out) const {
  assert(x.size() == rows_);
  assert(out->size() == cols_);
  // Same flatten rule as Multiply — but note the solver materializes
  // compressed selections once per inequality *before* fanning out its
  // shard lanes, so this per-call flatten is only paid by direct callers.
  if (x.compressed() && x.Count() * 8 >= NonEmptyRows().size()) {
    BitVector flat;
    x.MaterializeInto(&flat);
    MultiplyRangeImpl(flat, col_begin, col_end, out);
    return;
  }
  MultiplyRangeImpl(x, col_begin, col_end, out);
}

bool BitMatrix::RowIntersects(size_t r, const BitVector& y) const {
  assert(y.size() == cols_);
  for (uint32_t c : Row(r)) {
    if (y.Test(c)) return true;
  }
  return false;
}

BitVector BitMatrix::RowSummary() const {
  BitVector summary(rows_);
  for (uint32_t r : rows_index_) summary.Set(r);
  return summary;
}

BitVector BitMatrix::ColSummary() const {
  BitVector summary(cols_);
  for (uint32_t c : cols_index_) summary.Set(c);
  return summary;
}

BitMatrix BitMatrix::Transposed() const {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  entries.reserve(Nnz());
  for (size_t slot = 0; slot < rows_index_.size(); ++slot) {
    uint32_t r = rows_index_[slot];
    for (uint32_t i = row_offsets_[slot]; i < row_offsets_[slot + 1]; ++i) {
      entries.emplace_back(cols_index_[i], r);
    }
  }
  return Build(cols_, rows_, std::move(entries));
}

size_t BitMatrix::ApproxBytes() const {
  return rows_index_.size() * sizeof(uint32_t) +
         row_offsets_.size() * sizeof(uint32_t) +
         cols_index_.size() * sizeof(uint32_t) + sizeof(*this);
}

}  // namespace sparqlsim::util
