#pragma once

// Internal line-level N-Triples grammar shared by the sequential loader
// (ntriples.cc) and the chunked parallel loader (ntriples_parallel.cc).
// Not part of the public API — include graph/ntriples.h instead.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sparqlsim::graph::internal {

/// Syntactic category of a parsed term. Blank nodes are interned like IRI
/// nodes (their `_:label` spelling is the dictionary name); the kind only
/// matters for serialization and for the literal-in-subject check.
enum class TermKind : uint8_t { kIri, kBlank, kLiteral };

/// One statement, fully unescaped. For literals, `object` holds the lexical
/// form only: datatype IRIs (`^^<...>`) and language tags (`@en`) are
/// syntax-checked and dropped, because the engine's literal universe L is
/// untyped strings (Def. 1).
struct Statement {
  std::string subject;
  std::string predicate;
  std::string object;
  TermKind subject_kind = TermKind::kIri;  // kIri or kBlank
  TermKind object_kind = TermKind::kIri;
};

enum class LineOutcome {
  kStatement,  // *out holds a triple
  kEmpty,      // blank line or comment
  kError,      // *error holds a message (without a line-number prefix)
};

/// Parses one logical line. The line must not contain '\n'; a trailing
/// '\r' (CRLF input) is tolerated and ignored. Grammar per the W3C
/// N-Triples spec, minus the datatype/langtag retention noted above:
///
///   subject:   IRIREF | BLANK_NODE_LABEL
///   predicate: IRIREF
///   object:    IRIREF | BLANK_NODE_LABEL | STRING_LITERAL_QUOTE
///              (with optional '^^IRIREF' or LANGTAG suffix)
///
/// Escapes: \t \b \n \r \f \" \' \\ in literals, \uXXXX and \UXXXXXXXX
/// (decoded to UTF-8) in literals and IRIs. A '#' comment may follow the
/// terminating '.'.
LineOutcome ParseLine(std::string_view line, Statement* out,
                      std::string* error);

/// True for characters allowed in a `_:label` blank node label
/// ([A-Za-z0-9_-], the subset this parser accepts). The writer uses it to
/// decide whether a `_:`-prefixed node name can be emitted bare.
bool IsBlankLabelChar(char c);

/// Formats the shared "n-triples line N: ..." diagnostic. Both loaders
/// must produce byte-equal messages for the same input (a tested
/// contract), so the format lives in exactly one place.
std::string LineError(size_t line_number, const std::string& what);

/// The diagnostic body for a line longer than
/// NTriplesOptions::max_line_bytes. Lives here for the same reason as
/// LineError: the sequential loader, the chunk parser, and the chunk
/// reader's truncation path must all report byte-equal messages.
std::string OversizeLineError(size_t max_line_bytes);

}  // namespace sparqlsim::graph::internal
