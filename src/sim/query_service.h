#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_database.h"
#include "sim/sim_engine.h"
#include "sim/soi_cache.h"
#include "sim/solver.h"
#include "sim/standing_query.h"
#include "sparql/ast.h"
#include "util/admission_gate.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

struct QueryServiceOptions {
  /// Service worker threads executing whole queries (query-level
  /// parallelism); 0 = hardware concurrency. Intra-query parallelism is a
  /// separate knob: `solver.num_threads` (default 1 keeps each query on its
  /// worker, the right shape for a loaded server). Column sharding of each
  /// fixpoint round is a third, orthogonal knob: `solver.num_shards`.
  size_t num_workers = 0;

  /// Max queries admitted but not yet completed. Submit blocks once the
  /// bound is reached — backpressure instead of unbounded queue growth.
  /// Coalesced duplicates ride along without consuming a slot. 0 is
  /// clamped to 1.
  size_t queue_depth = 64;

  /// Entry bound of the service's SoiCache (0 = unbounded); an entry is
  /// one SOI plus, once solved, its attached solution.
  size_t cache_capacity = 0;

  /// Per-query solver policy; `cache_sois`/`cache_solutions` toggle the
  /// service cache as for a plain SimEngine.
  SolverOptions solver;

  /// Test seam: invoked on the worker thread immediately before a query is
  /// solved. Lets tests pin a worker mid-flight to observe deterministic
  /// coalescing/backpressure. Null in production.
  std::function<void()> solve_hook;
};

/// Per-submission knobs; the default value is the historical behavior
/// (high priority, no deadline).
struct SubmitOptions {
  /// Admission class. kLow yields freed slots to every waiting kHigh
  /// producer — bulk traffic cannot starve interactive queries; see
  /// util::AdmissionGate.
  util::AdmissionGate::Priority priority =
      util::AdmissionGate::Priority::kHigh;

  /// Compute budget, measured from Submit() (queueing counts against it).
  /// On expiry the fixpoint stops at the next round boundary and the
  /// report comes back with `truncated` set — a sound over-approximation,
  /// never cached and never shared: a deadlined submission bypasses
  /// in-flight coalescing entirely, so it can neither serve another
  /// waiter a truncated answer nor be slowed down by a shared solve.
  std::optional<std::chrono::milliseconds> deadline;
};

/// The async front end above SimEngine: accepts queries from any thread,
/// runs them on an owned util::ThreadPool behind a bounded two-class
/// admission queue, and deduplicates in-flight identical queries.
///
///   Submit(query)  ->  std::future<PruneReport>
///
/// Identity for deduplication is (database generation,
/// sparql::CanonicalPatternKey of the WHERE pattern): two submissions whose
/// patterns are canonically equal, admitted against the same snapshot,
/// share one solve while the first is in flight, and every waiter receives
/// the full PruneReport. After the in-flight entry completes, the next
/// identical submission admits a fresh solve — which then typically ends in
/// the SoiCache's solution layer instead of solver work.
///
/// MVCC serving: the service owns an evolving chain of immutable database
/// snapshots (graph::GraphDatabase::Snapshot(), copy-on-write per-predicate
/// slabs). A query pins the snapshot current at its admission and solves
/// against it for its whole lifetime; ApplyRestrict()/IngestTriples()
/// build the successor version from the newest snapshot and publish it
/// without blocking readers — in-flight queries keep their pinned version,
/// later admissions see the new one. Publication never invalidates the
/// whole cache: entries are keyed by generation, an unchanged predicate
/// slab is shared (so a no-op publish keeps even the generation), and the
/// cache is swept against the *live* generation set — everything some
/// pinned snapshot can still reach — rather than nuked on every write.
///
/// Determinism: every query solves through a SimEngine whose results are
/// bit-identical for any thread/shard count, and concurrent queries share
/// only immutable snapshots and the mutex-guarded SoiCache (whose contents
/// never change a result, only whether it is recomputed). A concurrent
/// submission mix therefore yields reports bit-identical to a sequential
/// SimEngine::Prune of the same queries against the snapshots they pinned,
/// for any worker count, queue depth, or cache capacity —
/// tests/query_service_test.cc and tests/snapshot_mvcc_test.cc hold this
/// under TSan.
///
/// Thread-safety: all public methods may be called from any thread;
/// writers (ApplyRestrict/IngestTriples) serialize among themselves but
/// not against readers. The destructor drains in-flight queries; do not
/// race it against Submit.
class QueryService {
 public:
  struct Stats {
    /// Submissions accepted (Submit calls; SubmitBatch counts each query).
    size_t submitted = 0;
    /// Queries actually solved on a worker.
    size_t executed = 0;
    /// Submissions answered by attaching to an in-flight duplicate.
    /// submitted == executed + coalesced once drained.
    size_t coalesced = 0;
    /// High-water mark of admitted-but-unfinished queries (bounded by
    /// queue_depth).
    size_t peak_in_flight = 0;
    /// Service cache snapshot (zero-valued when caching is off).
    SoiCache::Stats cache;
    size_t cached_sois = 0;
    size_t cached_solutions = 0;
    /// Content-changing publications (ApplyRestrict/IngestTriples that
    /// produced a new generation; no-op writes don't count).
    size_t snapshots_published = 0;
    /// Snapshot versions currently reachable: the serving snapshot plus
    /// every retired one still pinned by an in-flight query.
    size_t snapshots_live = 0;
    size_t peak_snapshots_live = 0;
    /// Reports returned with `truncated` set (deadline expiry).
    size_t deadline_truncated = 0;
    /// Standing queries currently registered (live Subscription handles).
    size_t subscriptions = 0;
    /// Reports delivered to subscriptions: one per live subscription per
    /// publication, plus each subscription's initial cold report.
    size_t subscription_reports = 0;
    /// Per-priority-class admission counters (waits, blocks).
    util::AdmissionGate::Stats gate;
    /// Scratch-pool counters, aggregated across every snapshot lane (the
    /// pool outlives individual snapshot engines). All zero when scratch
    /// reuse is off. scratch_allocs should go flat once serving reaches
    /// steady state — the zero-allocation property the bench asserts.
    uint64_t scratch_reuses = 0;
    uint64_t scratch_allocs = 0;
    uint64_t bytes_recycled = 0;
    uint64_t words_cleared_sparse = 0;
  };

  /// A standing query registered with Subscribe(). The service drives it
  /// from the publish path: every ApplyRestrict/IngestTriples/
  /// DeleteTriples re-converges the standing solution onto the published
  /// snapshot (incremental maintenance; see sim::StandingQuery) and
  /// appends the resulting PruneReport, in publish order, for the
  /// subscriber to drain with TakeReports(). The first pending report is
  /// the registration-time cold solve. Dropping the shared_ptr handle
  /// unsubscribes (the service holds subscriptions weakly).
  ///
  /// Thread-safety: TakeReports/Current/stats may race the publish path
  /// freely; maintenance itself runs on the publisher's thread, so
  /// publish latency includes subscription upkeep — the price of reports
  /// that are exact per generation and never skip one.
  class Subscription {
   public:
    /// Reports not yet taken, in publish order; empties the queue.
    std::vector<PruneReport> TakeReports();
    /// Copy of the latest converged report.
    PruneReport Current() const;
    /// Maintenance counters (maintained vs recomputed branches, arming
    /// fractions, carried state).
    StandingStats stats() const;
    /// Generation the standing solution is currently converged against.
    uint64_t generation() const;

   private:
    friend class QueryService;
    Subscription(const sparql::Query& query,
                 std::shared_ptr<const graph::GraphDatabase> snapshot,
                 StandingQueryOptions options);
    /// Publish-path hook: re-converge onto `next` and queue the report.
    void OnPublish(std::shared_ptr<const graph::GraphDatabase> next);

    mutable std::mutex mutex_;
    StandingQuery standing_;
    std::vector<PruneReport> pending_;
  };

  /// Binds the service to a snapshot of `*db` taken at construction
  /// (copy-on-write: O(predicates) pointer copies). The pointee is not
  /// retained — later changes to `*db` are invisible; evolve the service's
  /// database through ApplyRestrict()/IngestTriples().
  explicit QueryService(const graph::GraphDatabase* db,
                        QueryServiceOptions options = {});
  /// Drains: blocks until every admitted query has completed.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query. Blocks while queue_depth queries are in flight
  /// (unless the query coalesces onto an in-flight duplicate). The future
  /// never carries an exception.
  std::future<PruneReport> Submit(const sparql::Query& query,
                                  const SubmitOptions& submit = {});

  /// Submits all queries (concurrently, subject to the admission bound) and
  /// blocks for the results, returned in submission order.
  std::vector<PruneReport> SubmitBatch(
      const std::vector<sparql::Query>& queries);

  /// Publishes the restriction of the *newest* snapshot to `kept` as the
  /// next database version (see GraphDatabase::Restrict). Returns the
  /// published generation — unchanged if the restriction was a no-op.
  /// Does not block readers; in-flight queries finish on their pinned
  /// snapshots.
  uint64_t ApplyRestrict(std::span<const graph::Triple> kept);

  /// Publishes the newest snapshot plus `added` (ids must be interned; see
  /// GraphDatabase::WithTriplesAdded) as the next version. Returns the
  /// published generation. Does not block readers.
  uint64_t IngestTriples(std::span<const graph::Triple> added);

  /// Publishes the newest snapshot minus `removed` (absent triples are
  /// ignored; node ids are never compacted — see
  /// GraphDatabase::WithTriplesRemoved) as the next version. Returns the
  /// published generation — unchanged if nothing was removed. Does not
  /// block readers.
  uint64_t DeleteTriples(std::span<const graph::Triple> removed);

  /// Registers `query` as a standing query against the current snapshot
  /// (cold-solving it inline) and returns its handle; every later publish
  /// appends an incrementally maintained report. Dropping the handle
  /// unsubscribes.
  std::shared_ptr<Subscription> Subscribe(const sparql::Query& query);

  /// The snapshot new admissions currently pin. Holding the returned
  /// pointer keeps the version (and its cache generation) alive.
  std::shared_ptr<const graph::GraphDatabase> CurrentSnapshot() const;
  /// generation() of CurrentSnapshot().
  uint64_t CurrentGeneration() const;

  /// Blocks until no query is in flight.
  void Drain();

  Stats stats() const;
  const QueryServiceOptions& options() const { return options_; }
  /// The engine serving the current snapshot. Only meaningful while no
  /// publisher runs concurrently (the engine may be retired underneath a
  /// caller that races ApplyRestrict/IngestTriples) — a test/tool accessor.
  const SimEngine& engine() const;

 private:
  /// One published database version: the pinned snapshot and the engine
  /// lane solving against it. Queries hold the context shared_ptr for
  /// their whole run — destruction of a retired version happens exactly
  /// when its last query finishes (observable through `retired_`).
  struct SnapshotContext {
    std::shared_ptr<const graph::GraphDatabase> db;
    SimEngine engine;

    SnapshotContext(std::shared_ptr<const graph::GraphDatabase> snapshot,
                    const SolverOptions& solver,
                    std::shared_ptr<SoiCache> cache,
                    std::shared_ptr<ScratchPool> scratch_pool)
        : db(std::move(snapshot)),
          engine(db.get(), solver, std::move(cache),
                 std::move(scratch_pool)) {}
  };

  struct InFlight {
    std::vector<std::promise<PruneReport>> waiters;
  };

  /// Dedup key: queries pinned to different snapshot generations must not
  /// share a solve (their answers may differ).
  static std::string MakeKey(uint64_t generation, const std::string& key);

  std::shared_ptr<const SnapshotContext> CurrentContext() const;

  /// Installs `next` as the serving version; the previous context retires
  /// (tracked weakly until its pins drain). Caller holds publish_mutex_.
  uint64_t PublishLocked(graph::GraphDatabase&& next);

  /// Drops drained retired versions, refreshes the live-snapshot gauges,
  /// and sweeps the cache down to the live generation set. mutex_ held.
  void SweepSnapshotsLocked();

  /// Re-converges every live subscription onto the just-published snapshot
  /// (pruning dead weak_ptrs). Caller holds publish_mutex_, so reports are
  /// delivered in publish order and no generation is skipped; maintenance
  /// runs on the publisher's thread.
  void NotifySubscribersLocked();

  /// Worker-side: solve on the pinned snapshot, then settle every waiter
  /// of `full_key`.
  void RunQuery(const std::string& full_key,
                std::shared_ptr<const SnapshotContext> context,
                std::shared_ptr<const sparql::Query> query);

  /// Worker-side deadline path: solo solve (no dedup entry to settle).
  void RunDeadlineQuery(std::shared_ptr<const SnapshotContext> context,
                        std::shared_ptr<const sparql::Query> query,
                        std::chrono::steady_clock::time_point deadline,
                        std::promise<PruneReport> promise);

  QueryServiceOptions options_;
  std::shared_ptr<SoiCache> cache_;  // null when caching is off
  /// One scratch pool shared by every snapshot lane (null when scratch
  /// reuse is off): publishing a new version must not discard the warmed
  /// buffers, and the universe rarely changes across versions, so the
  /// successor engine recycles the predecessor's scratches.
  std::shared_ptr<ScratchPool> scratch_pool_;
  util::AdmissionGate gate_;

  /// Serializes writers: compute-next-version + publish is one critical
  /// section so concurrent ApplyRestrict/IngestTriples linearize. Readers
  /// never take it.
  std::mutex publish_mutex_;

  mutable std::mutex mutex_;
  std::shared_ptr<const SnapshotContext> current_;
  /// Retired versions, held weakly: alive exactly while some in-flight
  /// query still pins them.
  std::vector<std::weak_ptr<const SnapshotContext>> retired_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
  size_t submitted_ = 0;
  size_t executed_ = 0;
  size_t coalesced_ = 0;
  size_t peak_in_flight_ = 0;
  size_t snapshots_published_ = 0;
  size_t snapshots_live_ = 1;
  size_t peak_snapshots_live_ = 1;
  size_t deadline_truncated_ = 0;
  /// Standing queries, held weakly: a dropped handle unsubscribes itself
  /// at the next publish. Guarded by mutex_; OnPublish runs outside it.
  std::vector<std::weak_ptr<Subscription>> subscriptions_;
  size_t subscription_reports_ = 0;

  /// Declared last: destroyed first, which joins the workers while every
  /// member they touch is still alive.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace sparqlsim::sim
