#include "sim/equivalence.h"

#include <map>

namespace sparqlsim::sim {

EquivalenceClasses ComputeEquivalenceClasses(const Solution& solution,
                                             size_t num_nodes) {
  EquivalenceClasses result;
  result.class_of.assign(num_nodes, -1);

  // Signatures are sparse: visit candidate sets once and accumulate the
  // variable list per touched node.
  std::vector<std::vector<uint32_t>> node_signature(num_nodes);
  for (uint32_t v = 0; v < solution.candidates.size(); ++v) {
    solution.candidates[v].ForEachSetBit(
        [&](uint32_t node) { node_signature[node].push_back(v); });
  }

  std::map<std::vector<uint32_t>, int64_t> class_ids;
  for (size_t node = 0; node < num_nodes; ++node) {
    if (node_signature[node].empty()) {
      ++result.num_discarded;
      continue;
    }
    auto [it, inserted] = class_ids.try_emplace(
        node_signature[node], static_cast<int64_t>(result.num_classes));
    if (inserted) {
      ++result.num_classes;
      result.class_sizes.push_back(0);
      result.signatures.push_back(node_signature[node]);
    }
    result.class_of[node] = it->second;
    ++result.class_sizes[it->second];
  }
  return result;
}

}  // namespace sparqlsim::sim
