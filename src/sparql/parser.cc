#include "sparql/parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>

namespace sparqlsim::sparql {

namespace {

/// The IRI the keyword `a` abbreviates. The synthetic datasets in this
/// repository intern their type predicate under exactly this name.
constexpr const char* kRdfType = "rdf:type";

struct Token {
  enum class Type {
    kEof,
    kKeyword,   // SELECT, DISTINCT, WHERE, OPTIONAL, UNION, PREFIX, a
    kVariable,  // ?x
    kIri,       // <...> (already stripped)
    kPname,     // prefix:local (unexpanded)
    kLiteral,   // "..." (already unescaped)
    kPunct,     // { } . * :
  };
  Type type;
  std::string text;
  size_t offset;
};

bool IsKeyword(const std::string& upper) {
  return upper == "SELECT" || upper == "DISTINCT" || upper == "WHERE" ||
         upper == "OPTIONAL" || upper == "UNION" || upper == "PREFIX";
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  util::Status Tokenize() {
    size_t pos = 0;
    while (pos < text_.size()) {
      char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (pos < text_.size() && text_[pos] != '\n') ++pos;
        continue;
      }
      if (c == '{' || c == '}' || c == '.' || c == '*') {
        tokens_.push_back({Token::Type::kPunct, std::string(1, c), pos});
        ++pos;
        continue;
      }
      if (c == '?' || c == '$') {
        size_t start = ++pos;
        while (pos < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                          text_[pos])) ||
                                      text_[pos] == '_')) {
          ++pos;
        }
        if (pos == start) return Error(pos, "empty variable name");
        tokens_.push_back({Token::Type::kVariable,
                           std::string(text_.substr(start, pos - start)),
                           start});
        continue;
      }
      if (c == '<') {
        size_t end = text_.find('>', pos + 1);
        if (end == std::string_view::npos) return Error(pos, "unclosed IRI");
        tokens_.push_back({Token::Type::kIri,
                           std::string(text_.substr(pos + 1, end - pos - 1)),
                           pos});
        pos = end + 1;
        continue;
      }
      if (c == '"') {
        std::string value;
        size_t i = pos + 1;
        bool closed = false;
        while (i < text_.size()) {
          if (text_[i] == '\\' && i + 1 < text_.size()) {
            value.push_back(text_[i + 1]);
            i += 2;
            continue;
          }
          if (text_[i] == '"') {
            closed = true;
            ++i;
            break;
          }
          value.push_back(text_[i]);
          ++i;
        }
        if (!closed) return Error(pos, "unclosed literal");
        // Skip datatype / language suffix.
        if (i < text_.size() && text_[i] == '@') {
          while (i < text_.size() &&
                 (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                  text_[i] == '@' || text_[i] == '-')) {
            ++i;
          }
        } else if (i + 1 < text_.size() && text_[i] == '^' &&
                   text_[i + 1] == '^') {
          i += 2;
          if (i < text_.size() && text_[i] == '<') {
            size_t end = text_.find('>', i);
            if (end == std::string_view::npos) {
              return Error(i, "unclosed datatype IRI");
            }
            i = end + 1;
          }
        }
        tokens_.push_back({Token::Type::kLiteral, value, pos});
        pos = i;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+') {
        size_t start = pos;
        ++pos;
        while (pos < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos])) ||
                text_[pos] == '.')) {
          ++pos;
        }
        // A trailing '.' is the triple terminator, not part of the number.
        if (text_[pos - 1] == '.') --pos;
        tokens_.push_back({Token::Type::kLiteral,
                           std::string(text_.substr(start, pos - start)),
                           start});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos;
        while (pos < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos])) ||
                text_[pos] == '_' || text_[pos] == '-')) {
          ++pos;
        }
        std::string word(text_.substr(start, pos - start));
        // Prefixed name?
        if (pos < text_.size() && text_[pos] == ':') {
          size_t local_start = ++pos;
          while (pos < text_.size() &&
                 (std::isalnum(static_cast<unsigned char>(text_[pos])) ||
                  text_[pos] == '_' || text_[pos] == '-')) {
            ++pos;
          }
          tokens_.push_back(
              {Token::Type::kPname,
               word + ":" + std::string(text_.substr(local_start,
                                                     pos - local_start)),
               start});
          continue;
        }
        std::string upper = word;
        for (char& ch : upper) ch = static_cast<char>(std::toupper(
                                   static_cast<unsigned char>(ch)));
        if (IsKeyword(upper)) {
          tokens_.push_back({Token::Type::kKeyword, upper, start});
        } else if (word == "a") {
          tokens_.push_back({Token::Type::kKeyword, "a", start});
        } else {
          return Error(start, "unexpected identifier '" + word + "'");
        }
        continue;
      }
      return Error(pos, std::string("unexpected character '") + c + "'");
    }
    tokens_.push_back({Token::Type::kEof, "", text_.size()});
    return util::Status::Ok();
  }

  const std::vector<Token>& tokens() const { return tokens_; }

 private:
  util::Status Error(size_t pos, const std::string& what) const {
    std::ostringstream msg;
    msg << "parse error at offset " << pos << ": " << what;
    return util::Status::Error(msg.str());
  }

  std::string_view text_;
  std::vector<Token> tokens_;
};

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<Query> ParseQuery() {
    if (auto s = ParsePrologue(); !s.ok()) return s;

    Query query;
    if (!ConsumeKeyword("SELECT")) return Fail("expected SELECT");
    if (PeekKeyword("DISTINCT")) {
      Advance();
      query.distinct = true;
    }
    if (PeekPunct("*")) {
      Advance();
    } else {
      while (Peek().type == Token::Type::kVariable) {
        query.projection.push_back(Peek().text);
        Advance();
      }
      if (query.projection.empty()) {
        return Fail("expected '*' or projection variables");
      }
    }
    if (PeekKeyword("WHERE")) Advance();

    auto where = ParseGroup();
    if (!where.ok()) return where.status();
    query.where = std::move(where).value();

    if (Peek().type != Token::Type::kEof) {
      return Fail("trailing input after query");
    }
    return query;
  }

  util::Result<std::unique_ptr<Pattern>> ParseLonePattern() {
    if (auto s = ParsePrologue(); !s.ok()) return s;
    auto g = ParseGroup();
    if (!g.ok()) return g.status();
    if (Peek().type != Token::Type::kEof) {
      return Fail("trailing input after pattern");
    }
    return g;
  }

 private:
  util::Status ParsePrologue() {
    while (PeekKeyword("PREFIX")) {
      Advance();
      // PNAME token carries "prefix:" (empty local part) or "prefix:local".
      if (Peek().type != Token::Type::kPname) {
        return util::Status::Error("expected prefix name after PREFIX");
      }
      std::string pname = Peek().text;
      size_t colon = pname.find(':');
      std::string prefix = pname.substr(0, colon);
      Advance();
      if (Peek().type != Token::Type::kIri) {
        return util::Status::Error("expected <iri> after PREFIX " + prefix);
      }
      prefixes_[prefix] = Peek().text;
      Advance();
    }
    return util::Status::Ok();
  }

  util::Result<std::unique_ptr<Pattern>> ParseGroup() {
    if (!PeekPunct("{")) return Fail("expected '{'");
    Advance();

    std::unique_ptr<Pattern> acc;
    std::vector<TriplePattern> pending;

    auto flush = [&]() {
      if (pending.empty()) return;
      auto bgp = Pattern::Bgp(std::move(pending));
      pending.clear();
      if (!acc) {
        acc = std::move(bgp);
      } else if (acc->IsBgp()) {
        // BGP AND BGP is the merged BGP (standard algebra simplification).
        std::vector<TriplePattern> merged = acc->triples();
        for (const TriplePattern& t : bgp->triples()) merged.push_back(t);
        acc = Pattern::Bgp(std::move(merged));
      } else {
        acc = Pattern::Join(std::move(acc), std::move(bgp));
      }
    };

    while (true) {
      if (PeekPunct("}")) {
        Advance();
        break;
      }
      if (PeekKeyword("OPTIONAL")) {
        Advance();
        flush();
        auto rhs = ParseGroup();
        if (!rhs.ok()) return rhs.status();
        if (!acc) acc = Pattern::Bgp({});
        acc = Pattern::Optional(std::move(acc), std::move(rhs).value());
        continue;
      }
      if (PeekPunct("{")) {
        flush();
        auto sub = ParseGroupOrUnion();
        if (!sub.ok()) return sub.status();
        acc = acc ? Pattern::Join(std::move(acc), std::move(sub).value())
                  : std::move(sub).value();
        continue;
      }
      if (Peek().type == Token::Type::kEof) return Fail("unclosed group");

      auto triple = ParseTriple();
      if (!triple.ok()) return triple.status();
      pending.push_back(std::move(triple).value());
      if (PeekPunct(".")) Advance();
    }
    flush();
    if (!acc) acc = Pattern::Bgp({});
    return acc;
  }

  util::Result<std::unique_ptr<Pattern>> ParseGroupOrUnion() {
    auto left = ParseGroup();
    if (!left.ok()) return left;
    std::unique_ptr<Pattern> acc = std::move(left).value();
    while (PeekKeyword("UNION")) {
      Advance();
      auto right = ParseGroup();
      if (!right.ok()) return right;
      acc = Pattern::Union(std::move(acc), std::move(right).value());
    }
    return acc;
  }

  util::Result<TriplePattern> ParseTriple() {
    auto s = ParseTerm(/*predicate_position=*/false);
    if (!s.ok()) return s.status();
    auto p = ParseTerm(/*predicate_position=*/true);
    if (!p.ok()) return p.status();
    auto o = ParseTerm(/*predicate_position=*/false);
    if (!o.ok()) return o.status();
    return TriplePattern{std::move(s).value(), std::move(p).value(),
                         std::move(o).value()};
  }

  util::Result<Term> ParseTerm(bool predicate_position) {
    const Token& tok = Peek();
    switch (tok.type) {
      case Token::Type::kVariable:
        if (predicate_position) {
          return Fail(
              "predicate variables are not supported: the paper's graph "
              "model fixes the edge-label alphabet (Sect. 2)");
        }
        Advance();
        return Term::Var(tok.text);
      case Token::Type::kIri:
        Advance();
        return Term::Iri(tok.text);
      case Token::Type::kPname: {
        size_t colon = tok.text.find(':');
        std::string prefix = tok.text.substr(0, colon);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Fail("undeclared prefix '" + prefix + ":'");
        }
        Advance();
        return Term::Iri(it->second + tok.text.substr(colon + 1));
      }
      case Token::Type::kLiteral:
        if (predicate_position) return Fail("literal in predicate position");
        Advance();
        return Term::Literal(tok.text);
      case Token::Type::kKeyword:
        if (tok.text == "a" && predicate_position) {
          Advance();
          return Term::Iri(kRdfType);
        }
        return Fail("unexpected keyword '" + tok.text + "' in triple");
      default:
        return Fail("expected term");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == Token::Type::kKeyword && Peek().text == kw;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool PeekPunct(const std::string& p) const {
    return Peek().type == Token::Type::kPunct && Peek().text == p;
  }

  util::Status Fail(const std::string& what) const {
    std::ostringstream msg;
    msg << "parse error at offset " << Peek().offset << ": " << what;
    return util::Status::Error(msg.str());
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

util::Result<Query> Parser::Parse(std::string_view text) {
  Lexer lexer(text);
  if (auto s = lexer.Tokenize(); !s.ok()) return s;
  ParserImpl parser(lexer.tokens());
  return parser.ParseQuery();
}

util::Result<std::unique_ptr<Pattern>> Parser::ParsePattern(
    std::string_view text) {
  Lexer lexer(text);
  if (auto s = lexer.Tokenize(); !s.ok()) return s;
  ParserImpl parser(lexer.tokens());
  return parser.ParseLonePattern();
}

}  // namespace sparqlsim::sparql
