// Throughput bench for the QueryService front end, three axes:
//
//  * worker sweep — a fixed mix of benchmark queries (with duplicates, so
//    dedup and the solution cache get real work) submitted concurrently at
//    1/2/4/... service workers;
//  * shard sweep — the same mix at a fixed worker count with column
//    sharding of each fixpoint round (solver.num_shards);
//  * snapshot churn — readers racing a publisher that alternates triple
//    ingest and restriction, exercising MVCC snapshot pinning.
//
// Every report is checked bit-identical against a sequential, cache-free
// SimEngine::Prune of the same query — on the snapshot the query pinned,
// in the churn phase — the service must never trade correctness for
// throughput. Set SPARQLSIM_BENCH_JSON=<path> to archive numbers as JSON
// (tools/run_benches.sh does).
//
// Knobs: SPARQLSIM_SERVICE_QUERIES (mix size, default 48),
//        SPARQLSIM_SERVICE_QUEUE_DEPTH (default 16),
//        SPARQLSIM_SERVICE_CACHE_CAPACITY (default 32, 0 = unbounded),
//        SPARQLSIM_SERVICE_PUBLISHES (churn publications, default 8),
//        --db <file.gdb> / SPARQLSIM_DB for a real ingested database.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "sim/query_service.h"
#include "sim/sim_engine.h"
#include "sparql/normalize.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

/// The submission mix: every parseable benchmark query, cycled until
/// `count` entries. Cycling guarantees duplicates once count exceeds the
/// distinct pool — the service's dedup/cache workload.
std::vector<sparql::Query> MakeMix(size_t count) {
  std::vector<sparql::Query> pool;
  for (const auto& [id, text] : datagen::BenchmarkQueries()) {
    sparql::Query q = bench::ParseOrDie(text);
    if (q.where->NumTriples() > 0) pool.push_back(std::move(q));
  }
  for (const auto& [id, text] : datagen::DbpediaQueries()) {
    sparql::Query q = bench::ParseOrDie(text);
    if (q.where->NumTriples() > 0) pool.push_back(std::move(q));
  }
  std::vector<sparql::Query> mix;
  mix.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    mix.push_back(pool[i % pool.size()].Clone());
  }
  return mix;
}

struct Sample {
  size_t workers = 0;
  size_t shards = 1;
  double seconds = 0;
  double qps = 0;
  size_t executed = 0;
  size_t coalesced = 0;
  size_t solution_hits = 0;
  size_t lru_evictions = 0;
};

/// The snapshot-churn axis: readers hammer the mix while one publisher
/// alternates triple ingest and restriction. Reports are gated
/// bit-identical against a sequential solve on the exact snapshot each
/// query pinned.
struct ChurnSample {
  double seconds = 0;
  double qps = 0;
  size_t queries = 0;
  size_t publishes = 0;
  size_t generations_served = 0;
  size_t peak_snapshots_live = 0;
  size_t generation_evictions = 0;
};

/// The steady-state axis: a warmed service answering the same mix over and
/// over with the solution cache off, so every submission is a real solve.
/// This is the regime the scratch pool targets — after the warm-up pass
/// every checkout recycles and scratch_allocs stays flat (zero-allocation
/// steady state). Run twice from the same binary, pool on and pool off,
/// for the paired comparison the allocation-counter seam reports.
struct SteadySample {
  bool pooled = false;
  size_t queries = 0;
  double seconds = 0;
  double qps = 0;
  uint64_t scratch_reuses = 0;
  uint64_t scratch_allocs = 0;
  /// scratch_allocs incurred *after* the warm-up pass — the steady-state
  /// allocation count the bench-smoke gate asserts is 0 when pooled.
  uint64_t steady_allocs = 0;
  uint64_t bytes_recycled = 0;
  uint64_t words_cleared_sparse = 0;
};

SteadySample RunSteadyPhase(
    const graph::GraphDatabase& db, const std::vector<sparql::Query>& mix,
    size_t queue_depth,
    const std::map<std::string, sim::PruneReport>& reference, bool pooled) {
  sim::QueryServiceOptions options;
  options.num_workers = 2;
  options.queue_depth = queue_depth;
  // Solution caching off: a cache hit skips the solver entirely, which
  // would measure the cache, not the scratch pool.
  options.solver.cache_sois = false;
  options.solver.cache_solutions = false;
  options.solver.reuse_scratch = pooled;
  sim::QueryService service(&db, options);

  auto run_pass = [&] {
    // Sequential submission: no in-flight duplicate to coalesce onto, so
    // every submission solves.
    for (const sparql::Query& q : mix) {
      sim::PruneReport report = service.Submit(q).get();
      const sim::PruneReport& want =
          reference.at(sparql::CanonicalPatternKey(*q.where));
      if (report.kept_triples != want.kept_triples ||
          report.var_candidates != want.var_candidates) {
        std::fprintf(stderr,
                     "FATAL: steady-state report differs from sequential "
                     "solve (pooled=%d)\n",
                     pooled ? 1 : 0);
        std::abort();
      }
    }
  };

  run_pass();  // warm-up: first checkouts allocate/reshape
  const uint64_t allocs_after_warmup = service.stats().scratch_allocs;

  const size_t passes = 3;
  util::Stopwatch watch;
  for (size_t p = 0; p < passes; ++p) run_pass();
  const double seconds = watch.ElapsedSeconds();

  sim::QueryService::Stats stats = service.stats();
  SteadySample s;
  s.pooled = pooled;
  s.queries = passes * mix.size();
  s.seconds = seconds;
  s.qps = seconds > 0 ? static_cast<double>(s.queries) / seconds : 0.0;
  s.scratch_reuses = stats.scratch_reuses;
  s.scratch_allocs = stats.scratch_allocs;
  s.steady_allocs = stats.scratch_allocs - allocs_after_warmup;
  s.bytes_recycled = stats.bytes_recycled;
  s.words_cleared_sparse = stats.words_cleared_sparse;
  return s;
}

std::vector<graph::Triple> RandomTriples(const graph::GraphDatabase& db,
                                         util::Rng& rng, size_t count) {
  std::vector<graph::Triple> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back({static_cast<uint32_t>(rng.NextBounded(db.NumNodes())),
                   static_cast<uint32_t>(rng.NextBounded(db.NumPredicates())),
                   static_cast<uint32_t>(rng.NextBounded(db.NumNodes()))});
  }
  return out;
}

ChurnSample RunChurnPhase(const graph::GraphDatabase& db,
                          const std::vector<sparql::Query>& mix,
                          size_t queue_depth, size_t cache_capacity) {
  sim::QueryServiceOptions options;
  options.num_workers = 4;
  options.queue_depth = queue_depth;
  options.cache_capacity = cache_capacity;
  sim::QueryService service(&db, options);

  // Version ledger: with a single publisher, CurrentSnapshot() right after
  // each publish is exactly the published version, so every generation a
  // reader can pin has a retained snapshot for the post-hoc gate.
  std::mutex ledger_mutex;
  std::unordered_map<uint64_t, std::shared_ptr<const graph::GraphDatabase>>
      ledger;
  ledger.emplace(service.CurrentGeneration(), service.CurrentSnapshot());

  const size_t publishes = bench::EnvSize("SPARQLSIM_SERVICE_PUBLISHES", 8);
  util::Stopwatch watch;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    util::Rng rng(97);
    for (size_t round = 0; round < publishes; ++round) {
      if (round % 2 == 0) {
        service.IngestTriples(RandomTriples(db, rng, 20));
      } else {
        // Drop every 13th triple of the newest version.
        std::vector<graph::Triple> all =
            service.CurrentSnapshot()->AllTriples();
        std::vector<graph::Triple> kept;
        kept.reserve(all.size());
        for (size_t i = 0; i < all.size(); ++i) {
          if (i % 13 != 0) kept.push_back(all[i]);
        }
        service.ApplyRestrict(kept);
      }
      std::lock_guard<std::mutex> lock(ledger_mutex);
      ledger.emplace(service.CurrentGeneration(), service.CurrentSnapshot());
    }
    stop.store(true);
  });

  std::mutex results_mutex;
  std::vector<std::pair<size_t, sim::PruneReport>> results;
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      do {
        const size_t which = i % mix.size();
        sim::PruneReport report = service.Submit(mix[which]).get();
        std::lock_guard<std::mutex> lock(results_mutex);
        results.emplace_back(which, std::move(report));
        ++i;
      } while (!stop.load());
    });
  }
  publisher.join();
  for (std::thread& t : readers) t.join();
  service.Drain();
  const double seconds = watch.ElapsedSeconds();

  // Bit-identical gate, per pinned generation: one sequential cache-free
  // reference solve per (generation, pattern) actually served.
  sim::SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  std::map<std::pair<uint64_t, std::string>, sim::PruneReport> reference;
  std::vector<uint64_t> generations_served;
  for (const auto& [which, report] : results) {
    auto snapshot = ledger.find(report.snapshot_generation);
    if (snapshot == ledger.end()) {
      std::fprintf(stderr, "FATAL: report pinned unknown generation %llu\n",
                   static_cast<unsigned long long>(report.snapshot_generation));
      std::abort();
    }
    generations_served.push_back(report.snapshot_generation);
    const std::string key = sparql::CanonicalPatternKey(*mix[which].where);
    auto ref = reference.find({report.snapshot_generation, key});
    if (ref == reference.end()) {
      sim::SimEngine engine(snapshot->second.get(), plain);
      ref = reference
                .emplace(std::make_pair(report.snapshot_generation, key),
                         engine.Prune(mix[which]))
                .first;
    }
    if (report.kept_triples != ref->second.kept_triples ||
        report.var_candidates != ref->second.var_candidates) {
      std::fprintf(stderr,
                   "FATAL: churn query %zu differs from sequential solve on "
                   "its pinned generation %llu\n",
                   which,
                   static_cast<unsigned long long>(report.snapshot_generation));
      std::abort();
    }
  }
  std::sort(generations_served.begin(), generations_served.end());
  generations_served.erase(
      std::unique(generations_served.begin(), generations_served.end()),
      generations_served.end());

  sim::QueryService::Stats stats = service.stats();
  ChurnSample churn;
  churn.seconds = seconds;
  churn.queries = results.size();
  churn.qps =
      seconds > 0 ? static_cast<double>(results.size()) / seconds : 0.0;
  churn.publishes = stats.snapshots_published;
  churn.generations_served = generations_served.size();
  churn.peak_snapshots_live = stats.peak_snapshots_live;
  churn.generation_evictions = stats.cache.generation_evictions;
  return churn;
}

int Run(int argc, char** argv) {
  std::printf("QueryService throughput (bounded admission + LRU cache)\n");
  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  graph::GraphDatabase db =
      override_db ? std::move(*override_db) : bench::MakeBenchDbpedia();

  const size_t count = bench::EnvSize("SPARQLSIM_SERVICE_QUERIES", 48);
  const size_t queue_depth =
      bench::EnvSize("SPARQLSIM_SERVICE_QUEUE_DEPTH", 16);
  const size_t cache_capacity =
      bench::EnvSize("SPARQLSIM_SERVICE_CACHE_CAPACITY", 32);
  std::vector<sparql::Query> mix = MakeMix(count);

  // Sequential ground truth, keyed by canonical pattern (the mix repeats
  // queries; one reference solve per distinct pattern).
  sim::SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  sim::SimEngine reference_engine(&db, plain);
  std::map<std::string, sim::PruneReport> reference;
  for (const sparql::Query& q : mix) {
    std::string key = sparql::CanonicalPatternKey(*q.where);
    if (!reference.count(key)) {
      reference.emplace(key, reference_engine.Prune(q));
    }
  }

  std::vector<size_t> worker_counts = {1, 2, 4};
  size_t hw = util::ThreadPool::ResolveThreadCount(0);
  if (hw > 4) worker_counts.push_back(hw);

  std::printf("  mix: %zu submissions, %zu distinct patterns, queue depth "
              "%zu, cache capacity %zu\n",
              mix.size(), reference.size(), queue_depth, cache_capacity);
  std::printf("  %-8s %-7s %10s %10s %9s %10s %10s %9s\n", "workers",
              "shards", "time(s)", "q/s", "executed", "coalesced", "sol.hits",
              "lru.evict");

  auto run_sample = [&](size_t workers, size_t shards) {
    sim::QueryServiceOptions options;
    options.num_workers = workers;
    options.queue_depth = queue_depth;
    options.cache_capacity = cache_capacity;
    options.solver.num_shards = shards;
    sim::QueryService service(&db, options);

    util::Stopwatch watch;
    std::vector<std::future<sim::PruneReport>> futures;
    futures.reserve(mix.size());
    for (const sparql::Query& q : mix) futures.push_back(service.Submit(q));
    std::vector<sim::PruneReport> reports;
    reports.reserve(mix.size());
    for (auto& f : futures) reports.push_back(f.get());
    double seconds = watch.ElapsedSeconds();

    // Correctness gate: concurrent == sequential, bit for bit — for any
    // worker count AND any shard count.
    for (size_t i = 0; i < mix.size(); ++i) {
      const sim::PruneReport& want =
          reference.at(sparql::CanonicalPatternKey(*mix[i].where));
      if (reports[i].kept_triples != want.kept_triples ||
          reports[i].var_candidates != want.var_candidates) {
        std::fprintf(stderr,
                     "FATAL: query %zu differs from sequential at %zu "
                     "workers, %zu shards\n",
                     i, workers, shards);
        std::abort();
      }
    }

    sim::QueryService::Stats stats = service.stats();
    Sample s;
    s.workers = workers;
    s.shards = shards;
    s.seconds = seconds;
    s.qps = seconds > 0 ? static_cast<double>(mix.size()) / seconds : 0.0;
    s.executed = stats.executed;
    s.coalesced = stats.coalesced;
    s.solution_hits = stats.cache.solution_hits;
    s.lru_evictions =
        stats.cache.soi_evictions + stats.cache.solution_evictions;
    std::printf("  %-8zu %-7zu %10.5f %10.1f %9zu %10zu %10zu %9zu\n",
                workers, shards, seconds, s.qps, s.executed, s.coalesced,
                s.solution_hits, s.lru_evictions);
    return s;
  };

  std::vector<Sample> samples;
  for (size_t workers : worker_counts) {
    samples.push_back(run_sample(workers, /*shards=*/1));
  }
  // Shard axis: fixed worker count, column sharding of each fixpoint round.
  for (size_t shards : {size_t{2}, size_t{4}}) {
    samples.push_back(run_sample(/*workers=*/4, shards));
  }

  std::printf("  steady: warmed service, solution cache off, repeated mix\n");
  SteadySample steady_on =
      RunSteadyPhase(db, mix, queue_depth, reference, /*pooled=*/true);
  SteadySample steady_off =
      RunSteadyPhase(db, mix, queue_depth, reference, /*pooled=*/false);
  for (const SteadySample* s : {&steady_on, &steady_off}) {
    std::printf(
        "  pool %-3s %zu queries in %.5fs (%.1f q/s), reuses %llu, "
        "allocs %llu (steady %llu), %.1f MiB recycled, %llu words "
        "sparse-cleared\n",
        s->pooled ? "on" : "off", s->queries, s->seconds, s->qps,
        static_cast<unsigned long long>(s->scratch_reuses),
        static_cast<unsigned long long>(s->scratch_allocs),
        static_cast<unsigned long long>(s->steady_allocs),
        static_cast<double>(s->bytes_recycled) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(s->words_cleared_sparse));
  }

  std::printf("  churn: queries racing ingest + restrict publications\n");
  ChurnSample churn = RunChurnPhase(db, mix, queue_depth, cache_capacity);
  std::printf("  %zu queries in %.5fs (%.1f q/s) across %zu publications, "
              "%zu generations served, peak %zu snapshots live, %zu cache "
              "generation evictions\n",
              churn.queries, churn.seconds, churn.qps, churn.publishes,
              churn.generations_served, churn.peak_snapshots_live,
              churn.generation_evictions);

  FILE* out = stdout;
  const char* json_path = std::getenv("SPARQLSIM_BENCH_JSON");
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  std::fprintf(out, "{\n  \"bench\": \"service\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"mix\": {\"submissions\": %zu, \"distinct\": %zu, "
               "\"queue_depth\": %zu, \"cache_capacity\": %zu},\n",
               mix.size(), reference.size(), queue_depth, cache_capacity);
  std::fprintf(out, "  \"samples\": [");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "%s\n    {\"workers\": %zu, \"shards\": %zu, "
                 "\"seconds\": %.6f, "
                 "\"qps\": %.2f, \"executed\": %zu, \"coalesced\": %zu, "
                 "\"solution_hits\": %zu, \"lru_evictions\": %zu}",
                 i == 0 ? "" : ",", s.workers, s.shards, s.seconds, s.qps,
                 s.executed, s.coalesced, s.solution_hits, s.lru_evictions);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"steady\": {");
  for (const SteadySample* s : {&steady_on, &steady_off}) {
    std::fprintf(
        out,
        "%s\n    \"%s\": {\"queries\": %zu, \"seconds\": %.6f, "
        "\"qps\": %.2f, \"scratch_reuses\": %llu, \"scratch_allocs\": %llu, "
        "\"steady_allocs\": %llu, \"bytes_recycled\": %llu, "
        "\"words_cleared_sparse\": %llu}",
        s == &steady_on ? "" : ",", s->pooled ? "pooled" : "unpooled",
        s->queries, s->seconds, s->qps,
        static_cast<unsigned long long>(s->scratch_reuses),
        static_cast<unsigned long long>(s->scratch_allocs),
        static_cast<unsigned long long>(s->steady_allocs),
        static_cast<unsigned long long>(s->bytes_recycled),
        static_cast<unsigned long long>(s->words_cleared_sparse));
  }
  std::fprintf(out, "\n  },\n");
  std::fprintf(out,
               "  \"churn\": {\"queries\": %zu, \"seconds\": %.6f, "
               "\"qps\": %.2f, \"publishes\": %zu, "
               "\"generations_served\": %zu, \"peak_snapshots_live\": %zu, "
               "\"generation_evictions\": %zu}\n}\n",
               churn.queries, churn.seconds, churn.qps, churn.publishes,
               churn.generations_served, churn.peak_snapshots_live,
               churn.generation_evictions);
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "[bench] JSON written to %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
