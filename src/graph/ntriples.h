#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph_database.h"
#include "util/status.h"

namespace sparqlsim::graph {

/// Line-based N-Triples reader/writer.
///
/// Supported syntax per line: `<subject> <predicate> <object> .` where the
/// object may alternatively be a quoted literal `"..."` (with `\"` and `\\`
/// escapes). `#`-comment lines and blank lines are skipped. This is the
/// interchange format for the example programs and for dumping pruned
/// databases.
class NTriples {
 public:
  /// Parses a stream into the builder. Stops at the first malformed line.
  static util::Status Load(std::istream& in, GraphDatabaseBuilder* builder);

  /// Parses a file into the builder.
  static util::Status LoadFile(const std::string& path,
                               GraphDatabaseBuilder* builder);

  /// Serializes all triples of `db`.
  static void Write(const GraphDatabase& db, std::ostream& out);
};

}  // namespace sparqlsim::graph
