#include "sim/simulation.h"

#include "sim/soi.h"

namespace sparqlsim::sim {

Solution LargestSimulation(const graph::Graph& pattern,
                           const graph::GraphDatabase& db,
                           SimulationKind kind,
                           const SolverOptions& options) {
  Soi soi = BuildSoiFromGraph(pattern);
  if (kind != SimulationKind::kDual) {
    // Keep only the matching half of each edge's inequality pair. Careful
    // with the correspondence: Def. 2(i) — every candidate of the subject
    // has an a-successor among the object's candidates — says the subject
    // set is contained in the backward reach of the object set, i.e. the
    // `subject <= object x B_p` inequality (forward = false). Dually,
    // Def. 2(ii) is `object <= subject x F_p` (forward = true).
    std::vector<Soi::MatrixIneq> kept;
    for (const Soi::MatrixIneq& m : soi.matrix_ineqs) {
      if ((kind == SimulationKind::kForward) == !m.forward) {
        kept.push_back(m);
      }
    }
    soi.matrix_ineqs = std::move(kept);
  }

  // Eq. (13) initialization must also be one-sided, or it would already
  // enforce the dropped direction; run with the plain Eq. (12) start and
  // let the remaining inequalities do the restricting.
  SolverOptions adjusted = options;
  if (kind != SimulationKind::kDual) adjusted.summary_init = false;
  return SolveSoi(soi, db, adjusted);
}

}  // namespace sparqlsim::sim
