// End-to-end tests of the sparqlsim_batch tool: a tiny inline N-Triples
// database plus a multi-query file driven through the async QueryService
// path, checking per-query output, dedup/cache statistics (including the
// eviction counters the bounded LRU must report), and flag handling.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "cli_test_common.h"

namespace {

using sparqlsim_test::RunCommand;

class CliBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    {
      std::ofstream out(NtPath());
      out << "<alice> <knows> <bob> .\n"
             "<bob> <knows> <carol> .\n"
             "<carol> <knows> <alice> .\n"
             "<dave> <likes> <carol> .\n"
             "<erin> <likes> <alice> .\n";
      ASSERT_TRUE(out.good());
    }
    {
      // Three queries: blank-line separated, with comments; the third is a
      // triple-order permutation of the first, so their canonical keys
      // match and the cache (or dedup) must serve one from the other.
      std::ofstream out(QueriesPath());
      out << "# batch query file\n"
             "SELECT * WHERE { ?x <knows> ?y . ?y <knows> ?z . }\n"
             "\n"
             "SELECT * WHERE { ?a <likes> ?b . }\n"
             "\n"
             "# permutation of query 0\n"
             "SELECT * WHERE { ?y <knows> ?z . ?x <knows> ?y . }\n";
      ASSERT_TRUE(out.good());
    }
  }
  static std::string NtPath() {
    return ::testing::TempDir() + "sparqlsim_batch.nt";
  }
  static std::string QueriesPath() {
    return ::testing::TempDir() + "sparqlsim_batch_queries.rq";
  }
  static std::string Batch() { return std::string(SPARQLSIM_BATCH); }
};

TEST_F(CliBatchTest, RunsAllQueriesAndPrintsServiceStats) {
  int code = 0;
  std::string out = RunCommand(
      Batch() + " --threads 4 --queue-depth 2 " + NtPath() + " " +
          QueriesPath(),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("q000"), std::string::npos) << out;
  EXPECT_NE(out.find("q001"), std::string::npos);
  EXPECT_NE(out.find("q002"), std::string::npos);
  EXPECT_NE(out.find("batch: 3 queries"), std::string::npos) << out;
  EXPECT_NE(out.find("submitted 3"), std::string::npos) << out;
  // The mandatory stats lines are always present.
  EXPECT_NE(out.find("cache:"), std::string::npos);
  EXPECT_NE(out.find("cache evictions:"), std::string::npos) << out;
}

TEST_F(CliBatchTest, RepeatsHitTheSolutionCacheOrCoalesce) {
  int code = 0;
  std::string out = RunCommand(
      Batch() + " --repeat 4 " + NtPath() + " " + QueriesPath(), &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("batch: 12 queries"), std::string::npos) << out;
  EXPECT_NE(out.find("submitted 12"), std::string::npos) << out;
  // 12 submissions of 2 distinct union-free patterns (q0 and q2 are
  // canonical-key-equal permutations). Dedup guarantees at most one
  // in-flight execution per pattern, so each pattern misses the solution
  // cache exactly once; every other submission either coalesced onto an
  // in-flight duplicate or executed into a solution-cache hit. These
  // counter identities hold for ANY scheduling:
  //   solution_misses == 2
  //   executed + coalesced == 12
  //   solution_hits == executed - 2
  size_t spos = out.find("solution ");
  ASSERT_NE(spos, std::string::npos) << out;
  int solution_hits = std::atoi(out.c_str() + spos + 9);
  size_t slash = out.find("/ ", spos);
  ASSERT_NE(slash, std::string::npos) << out;
  int solution_misses = std::atoi(out.c_str() + slash + 2);
  size_t epos = out.find("executed ");
  ASSERT_NE(epos, std::string::npos) << out;
  int executed = std::atoi(out.c_str() + epos + 9);
  size_t cpos = out.find("coalesced ", epos);
  ASSERT_NE(cpos, std::string::npos) << out;
  int coalesced = std::atoi(out.c_str() + cpos + 10);

  EXPECT_EQ(solution_misses, 2) << out;
  EXPECT_EQ(executed + coalesced, 12) << out;
  EXPECT_EQ(solution_hits, executed - 2) << out;
}

TEST_F(CliBatchTest, CacheCapacityBoundIsReportedAndRespected) {
  int code = 0;
  std::string out = RunCommand(
      Batch() + " --cache-capacity 1 --repeat 2 " + NtPath() + " " +
          QueriesPath(),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("(capacity 1)"), std::string::npos) << out;
  // With 2 distinct patterns and capacity 1, residency never exceeds 1
  // per layer; the report prints "resident S sois + T solutions".
  size_t pos = out.find("resident ");
  ASSERT_NE(pos, std::string::npos) << out;
  int resident_sois = std::atoi(out.c_str() + pos + 9);
  EXPECT_LE(resident_sois, 1) << out;
}

TEST_F(CliBatchTest, NoCacheDisablesTheCacheEntirely) {
  int code = 0;
  std::string out = RunCommand(
      Batch() + " --no-cache --repeat 2 " + NtPath() + " " + QueriesPath(),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("soi 0 hits / 0 misses"), std::string::npos) << out;
  EXPECT_NE(out.find("resident 0 sois + 0 solutions"), std::string::npos)
      << out;
}

TEST_F(CliBatchTest, BadQueryFileFailsLoudly) {
  std::string bad = ::testing::TempDir() + "sparqlsim_batch_bad.rq";
  {
    std::ofstream out(bad);
    out << "SELECT * WHERE { this is not sparql\n";
  }
  int code = 0;
  RunCommand(Batch() + " " + NtPath() + " " + bad, &code);
  EXPECT_NE(code, 0);
}

TEST_F(CliBatchTest, UnknownFlagIsUsageError) {
  int code = 0;
  RunCommand(Batch() + " --bogus " + NtPath() + " " + QueriesPath(), &code);
  EXPECT_EQ(code, 2);
}

}  // namespace
