#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph_database.h"
#include "graph/triple.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/solver.h"
#include "sparql/ast.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

/// A batched triple-level graph delta. Both halves use ids of the standing
/// query's pinned node/predicate universe (dictionaries never grow or
/// compact across versions — see GraphDatabase::WithTriplesAdded/
/// WithTriplesRemoved). Deleting an absent triple and inserting a
/// duplicate are no-ops; a delta whose effect is empty keeps the database
/// generation and costs the standing query nothing.
struct TripleDelta {
  std::vector<graph::Triple> inserts;
  std::vector<graph::Triple> deletes;

  bool Empty() const { return inserts.empty() && deletes.empty(); }
};

struct StandingQueryOptions {
  /// Per-solve policy (threads, shards, kernels, incremental tiers). The
  /// cache toggles are ignored — a standing query *is* its own cache: it
  /// holds the converged solution and incremental state per branch.
  SolverOptions solver;

  /// Escalation policy seam (the maintenance analogue of the solver's
  /// kAccDeltaThreshold constants): kAuto applies the cost model below,
  /// the forced modes pin the decision for differential tests — results
  /// are bit-identical across all three, only wall-clock and the
  /// maintained/recomputed counters differ.
  ///
  /// Cost model (kAuto): a branch is recomputed from cold exactly when the
  /// *affected cone* of an insert-carrying delta covers every SOI
  /// variable. Insertions can only enlarge candidate sets of variables
  /// reading a grown predicate — and, transitively, of variables reading
  /// those (the cone); cone variables restart from the cold
  /// initialization while the rest keep their converged sets. A full cone
  /// therefore makes the warm start equal to the cold start plus arming
  /// bookkeeping: maintenance has provably lost, so recompute. Deletions
  /// never enter the cone (retraction resumes from the old fixpoint,
  /// which stays a sound over-approximation), so delete-only deltas
  /// always maintain.
  enum class Policy { kAuto, kForceMaintain, kForceRecompute };
  Policy policy = Policy::kAuto;
};

/// Maintenance counters of one StandingQuery, cumulative since
/// registration.
struct StandingStats {
  /// Apply calls that saw a content change (generation advanced).
  size_t applies = 0;
  /// Apply calls whose delta was contentless (duplicate inserts, absent
  /// deletes): the generation — and the report — were reused outright.
  size_t noop_applies = 0;
  /// Branch re-convergences solved warm from the carried state.
  size_t maintained = 0;
  /// Branch solves from cold (escalated by the cost model, or forced).
  size_t recomputed = 0;
  /// Branches whose predicates were all clean for a delta: no solve, no
  /// re-extraction, the stored branch state was reused as-is.
  size_t untouched_branches = 0;
  /// Inequalities armed across all warm solves, and the system sizes they
  /// were armed out of: armed_ineqs < total_ineqs is the "maintenance did
  /// strictly less than a full first round" engagement signal.
  size_t armed_ineqs = 0;
  size_t total_ineqs = 0;
  /// Incremental-state entries (snapshot products / counted accumulators)
  /// adopted from the carry across warm solves — state actually reused
  /// across generations, not rebuilt.
  size_t carried_entries = 0;
  /// Wall time spent inside Apply/ApplySnapshot (solves + extraction).
  double maintain_seconds = 0.0;
};

/// A registered query whose dual-simulation solution is maintained across
/// graph versions instead of recomputed from cold (the live pruned views
/// of the ROADMAP; maintenance-under-updates in the spirit of the
/// external-memory bisimulation line of PAPERS.md).
///
/// The standing query pins a GraphDatabase snapshot and holds, per
/// union-free branch of the query, its SOI, the converged Solution, the
/// extracted kept-triples, and the solver's IncrementalCarry (snapshot
/// products + counted accumulators). Apply(delta) — or ApplySnapshot with
/// a successor version from a COW publish chain — re-converges from that
/// state:
///
///  * the per-predicate dirty set falls out of COW slab identity
///    (GraphDatabase::ChangedPredicates — pointer diff is content diff
///    along a publish chain);
///  * deletions retract through the solver's existing per-column
///    decrement path: the old fixpoint is a sound over-approximation of
///    the new one, so the warm start begins at the converged assignment
///    and re-arms only inequalities reading a dirty predicate (plus the
///    dependents of variables whose summary initialization shrank);
///  * insertions reset the *affected cone* (variables reading a grown
///    predicate, closed under inequality reading) to the cold
///    initialization — outside the cone the old assignment provably *is*
///    the new fixpoint, so it is kept verbatim;
///  * the cost model escalates to a full cold recompute when the cone
///    covers every variable (see StandingQueryOptions::Policy).
///
/// Correctness bar (held by tests/standing_query_test.cc): after every
/// applied delta the maintained solution, kept-triple set, and
/// per-variable candidates are bit-identical to a cold
/// SimEngine::Prune on the post-delta snapshot — for every policy,
/// thread, shard, and kernel configuration.
///
/// Not thread-safe: one writer at a time (QueryService::Subscribe wraps a
/// StandingQuery in a mutex and drives it from the publish path).
class StandingQuery {
 public:
  /// Registers `query` against `snapshot` and solves it cold; report()
  /// is valid immediately.
  StandingQuery(const sparql::Query& query,
                std::shared_ptr<const graph::GraphDatabase> snapshot,
                StandingQueryOptions options = {});

  StandingQuery(StandingQuery&&) noexcept = default;
  StandingQuery& operator=(StandingQuery&&) noexcept = default;

  /// The last converged report: bit-identical to what
  /// SimEngine(db()).Prune(query) would produce on the pinned snapshot
  /// (modulo SolveStats/seconds, which describe the maintenance work
  /// actually performed, and solution_cache_hits, which is always 0).
  const PruneReport& report() const { return report_; }
  /// The pinned snapshot the report is converged against.
  const graph::GraphDatabase& db() const { return *snapshot_; }
  uint64_t generation() const { return snapshot_->generation(); }
  const StandingStats& stats() const { return stats_; }
  const StandingQueryOptions& options() const { return options_; }

  /// Applies `delta` (deletes first, then inserts — both COW publishes
  /// against the pinned snapshot; ids must be interned) and re-converges.
  /// Returns the new report.
  const PruneReport& Apply(const TripleDelta& delta);

  /// Re-converges directly onto `next`, a successor of the pinned
  /// snapshot sharing its node and predicate universe — the entry point
  /// for publish chains owned elsewhere (QueryService). A `next` with the
  /// pinned generation is a no-op.
  const PruneReport& ApplySnapshot(
      std::shared_ptr<const graph::GraphDatabase> next);

 private:
  struct BranchState {
    std::shared_ptr<const Soi> soi;
    Solution solution;
    std::vector<graph::Triple> kept;
    IncrementalCarry carry;
  };

  /// Re-converges one branch onto `next` given the per-predicate dirty
  /// set; `grown` lazily classifies a dirty predicate as insert-carrying.
  /// Accumulates solver work into `stats`.
  template <typename GrownFn>
  void MaintainBranch(BranchState& b, const graph::GraphDatabase& next,
                      const std::vector<bool>& dirty, GrownFn&& grown,
                      SolveStats* stats);

  /// Re-extracts the branch's kept triples against `db` (the Sect. 5
  /// extraction, same loop as SimEngine::ProcessBranch).
  static void ExtractTriples(BranchState& b, const graph::GraphDatabase& db);

  /// Reassembles report_ from the per-branch state (the single-writer
  /// merge of SimEngine::Prune, minus the concurrency).
  void RebuildReport(const SolveStats& stats, double seconds);

  StandingQueryOptions options_;
  std::shared_ptr<const graph::GraphDatabase> snapshot_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<BranchState> branches_;
  /// Private recyclable solve workspace (null when scratch reuse is off).
  /// Owned, never pool-shared: each branch's IncrementalCarry holds
  /// buffers moved out of solves, and the solver's carry-ownership rule
  /// (see SolveScratch) pairs carries with solve-local state — a scratch
  /// recycled elsewhere could never be allowed to back a live carry.
  std::unique_ptr<SolveScratch> scratch_;
  PruneReport report_;
  StandingStats stats_;
};

}  // namespace sparqlsim::sim
