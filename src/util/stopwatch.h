#pragma once

#include <chrono>

namespace sparqlsim::util {

/// Wall-clock stopwatch used by benchmarks and solver statistics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sparqlsim::util
