// sparqlsim_batch — concurrent batch front end over sim::QueryService.
//
// Reads a query file (queries separated by blank lines; '#' starts a
// comment line), submits every query to a QueryService at once, and prints
// per-query timing plus the service's queue/dedup/cache statistics. This is
// the command-line face of the async serving layer: admission is bounded
// (--queue-depth), in-flight duplicates coalesce, and the SOI/solution
// cache is a capacity-bounded LRU (--cache-capacity).
//
// Usage:
//   sparqlsim_batch [options] <data.nt> <queries.rq>
//   sparqlsim_batch [options] --db file.gdb <queries.rq>
//
// Options:
//   --threads N         service worker threads (0 = all hardware, default)
//   --queue-depth N     max queries in flight before Submit blocks (def. 64)
//   --cache-capacity N  LRU entry bound per cache layer (0 = unbounded)
//   --cache|--no-cache  toggle the SOI/solution cache (on by default)
//   --incremental|--no-incremental
//                       toggle delta-driven fixpoint evaluation (on by
//                       default; bit-identical results either way)
//   --scratch-pool|--no-scratch-pool
//                       toggle solve-scratch recycling (on by default;
//                       bit-identical results either way — the off state
//                       is the differential oracle's allocation profile)
//   --kernel MODE       candidate-set representation: auto (default),
//                       dense, or compressed (bit-identical results)
//   --shards N          column-shard each fixpoint round into N ranges
//                       (bit-identical results for every value)
//   --deadline-ms N     per-query compute budget; expired queries return a
//                       sound over-approximation marked "truncated"
//   --priority high|low default admission class for untagged queries
//   --repeat K          submit the whole file K times (default 1); repeats
//                       exercise dedup + the solution cache
//   --db FILE           read the database from binary SQSIMDB1 format
//   --subscribe         register every query as a *standing query* instead
//                       of submitting it once: each publication re-converges
//                       the stored solution incrementally (sim::StandingQuery)
//                       and emits a report per subscription per generation
//   --deltas FILE       update stream for --subscribe: lines
//                         + <subject> <predicate> <object>
//                         - <subject> <predicate> <object>
//                       with whitespace-separated dictionary names ('#'
//                       comments); a blank line applies the accumulated
//                       batch (deletes first, then inserts). Names not in
//                       the database's dictionaries warn and are skipped
//                       (the node/predicate universe is pinned).
//
// A query block may be tagged with a line that is exactly `!high` or
// `!low`: that block admits under the tagged class, overriding --priority.
// Low-priority blocks yield admission slots to waiting high-priority ones
// (see util::AdmissionGate), which the per-class wait statistics printed
// after the batch make visible.
//
// Example:
//   printf 'SELECT * WHERE { ?d <directed> ?m . }\n' > q.rq
//   sparqlsim_batch --queue-depth 8 --cache-capacity 64 movie.nt q.rq

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph_database.h"
#include "sim/query_service.h"
#include "sparql/parser.h"
#include "tool_common.h"
#include "util/admission_gate.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: sparqlsim_batch [--threads N] [--queue-depth N]\n"
      "                       [--cache-capacity N] [--cache|--no-cache]\n"
      "                       [--incremental|--no-incremental]\n"
      "                       [--scratch-pool|--no-scratch-pool]\n"
      "                       [--kernel auto|dense|compressed]\n"
      "                       [--shards N] [--deadline-ms N]\n"
      "                       [--priority high|low]\n"
      "                       [--repeat K] [--db file.gdb] "
      "[--resident-mb M]\n"
      "                       [--subscribe [--deltas updates.txt]] [data.nt] "
      "<queries.rq>\n"
      "       query file: one query per blank-line-separated block, "
      "'#' comments,\n"
      "       '!high'/'!low' lines tag the block's admission class\n");
  return 2;
}

using tools::LoadDatabase;

/// Splits the query file into blank-line-separated blocks, dropping '#'
/// comment lines, and parses each block. A line that is exactly `!high` or
/// `!low` (modulo surrounding whitespace) tags the enclosing block's
/// admission class; untagged blocks get `default_priority`.
bool LoadQueries(const char* path,
                 util::AdmissionGate::Priority default_priority,
                 std::vector<sparql::Query>* queries,
                 std::vector<util::AdmissionGate::Priority>* priorities) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open query file %s\n", path);
    return false;
  }
  std::vector<std::string> blocks(1);
  std::vector<util::AdmissionGate::Priority> tags(1, default_priority);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      if (!blocks.back().empty()) {
        blocks.emplace_back();
        tags.push_back(default_priority);
      }
      continue;
    }
    const size_t last = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(first, last - first + 1);
    if (token == "!high") {
      tags.back() = util::AdmissionGate::Priority::kHigh;
      continue;
    }
    if (token == "!low") {
      tags.back() = util::AdmissionGate::Priority::kLow;
      continue;
    }
    blocks.back() += line;
    blocks.back() += '\n';
  }
  if (blocks.back().empty()) {
    blocks.pop_back();
    tags.pop_back();
  }
  if (blocks.empty()) {
    std::fprintf(stderr, "no queries in %s\n", path);
    return false;
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    auto parsed = sparql::Parser::Parse(blocks[i]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", i,
                   parsed.error_message().c_str());
      return false;
    }
    queries->push_back(std::move(parsed).value());
    priorities->push_back(tags[i]);
  }
  return true;
}

/// The --subscribe flow: every query becomes a standing query; the delta
/// stream (if any) drives publications; each batch prints one report line
/// per subscription. Returns the process exit code.
int RunSubscribe(sim::QueryService& service,
                 const std::vector<sparql::Query>& queries,
                 const char* deltas_path) {
  std::vector<std::shared_ptr<sim::QueryService::Subscription>> subs;
  subs.reserve(queries.size());
  for (const sparql::Query& q : queries) subs.push_back(service.Subscribe(q));

  auto print_reports = [&](const char* tag) {
    for (size_t s = 0; s < subs.size(); ++s) {
      for (const sim::PruneReport& r : subs[s]->TakeReports()) {
        const sim::StandingStats st = subs[s]->stats();
        std::printf("%s q%03zu gen=%llu kept=%zu vars=%zu "
                    "(maintained %zu, recomputed %zu)%s\n",
                    tag, s,
                    static_cast<unsigned long long>(r.snapshot_generation),
                    r.kept_triples.size(), r.var_candidates.size(),
                    st.maintained, st.recomputed,
                    r.kept_triples.empty() ? "  [empty]" : "");
      }
    }
  };
  print_reports("cold ");

  if (deltas_path != nullptr) {
    std::ifstream in(deltas_path);
    if (!in) {
      std::fprintf(stderr, "cannot open delta file %s\n", deltas_path);
      return 1;
    }
    // Pin the registration snapshot for its dictionaries (shared,
    // unchanged across versions — the universe is pinned).
    const std::shared_ptr<const graph::GraphDatabase> dict_snapshot =
        service.CurrentSnapshot();
    const graph::GraphDatabase& dict_db = *dict_snapshot;
    std::vector<graph::Triple> inserts, deletes;
    size_t batch = 0, line_no = 0, skipped = 0;
    auto apply = [&] {
      if (inserts.empty() && deletes.empty()) return;
      // Deletes first: a batch that moves a triple is a replace, not a
      // transient duplicate.
      if (!deletes.empty()) service.DeleteTriples(deletes);
      if (!inserts.empty()) service.IngestTriples(inserts);
      std::printf("batch %zu: -%zu/+%zu -> gen %llu\n", batch,
                  deletes.size(), inserts.size(),
                  static_cast<unsigned long long>(
                      service.CurrentGeneration()));
      print_reports("  ");
      deletes.clear();
      inserts.clear();
      ++batch;
    };
    std::string line;
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line[0] == '#') continue;
      std::istringstream tokens(line);
      std::string op, s, p, o;
      if (!(tokens >> op)) {
        apply();  // blank line: apply the accumulated batch
        continue;
      }
      if ((op != "+" && op != "-") || !(tokens >> s >> p >> o)) {
        std::fprintf(stderr, "%s:%zu: expected '+|- subj pred obj'\n",
                     deltas_path, line_no);
        return 1;
      }
      // Dictionaries intern IRIs without the angle brackets; accept both
      // spellings so delta files can mirror query syntax.
      auto strip = [](std::string name) {
        if (name.size() >= 2 && name.front() == '<' && name.back() == '>') {
          return name.substr(1, name.size() - 2);
        }
        return name;
      };
      auto subject = dict_db.nodes().Lookup(strip(s));
      auto predicate = dict_db.predicates().Lookup(strip(p));
      auto object = dict_db.nodes().Lookup(strip(o));
      if (!subject || !predicate || !object) {
        std::fprintf(stderr,
                     "%s:%zu: unknown name (universe is pinned), skipping\n",
                     deltas_path, line_no);
        ++skipped;
        continue;
      }
      graph::Triple t{*subject, *predicate, *object};
      (op == "+" ? inserts : deletes).push_back(t);
    }
    apply();  // trailing batch without a final blank line
    if (skipped > 0) {
      std::fprintf(stderr, "skipped %zu delta lines with unknown names\n",
                   skipped);
    }
  }

  const sim::QueryService::Stats stats = service.stats();
  std::printf("\nsubscriptions: %zu live, %zu reports delivered, "
              "%zu publications\n",
              stats.subscriptions, stats.subscription_reports,
              stats.snapshots_published);
  for (size_t s = 0; s < subs.size(); ++s) {
    const sim::StandingStats st = subs[s]->stats();
    std::printf("q%03zu: %zu applies (%zu no-op), %zu maintained / %zu "
                "recomputed / %zu untouched branches, %zu/%zu ineqs armed, "
                "%zu carried entries, %.4fs maintaining\n",
                s, st.applies, st.noop_applies, st.maintained, st.recomputed,
                st.untouched_branches, st.armed_ineqs, st.total_ineqs,
                st.carried_entries, st.maintain_seconds);
  }
  return 0;
}

int Run(int argc, char** argv) {
  sim::QueryServiceOptions options;
  options.num_workers = 0;  // all hardware threads
  size_t repeat = 1;
  size_t deadline_ms = 0;  // 0 = no deadline
  auto default_priority = util::AdmissionGate::Priority::kHigh;
  const char* db_path = nullptr;
  size_t resident_mb = tools::kResidentMbFromEnv;
  bool subscribe = false;
  const char* deltas_path = nullptr;
  std::vector<const char*> args;

  auto parse_size = [](const char* text, size_t* out) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') return false;
    *out = static_cast<size_t>(value);
    return true;
  };
  auto flag_value = [&](int& i, const char* name,
                        const char** out) -> bool {
    size_t len = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    }
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      *out = argv[i] + len + 1;
      return true;
    }
    *out = nullptr;
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (!flag_value(i, "--threads", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &options.num_workers)) return Usage();
      continue;
    }
    if (!flag_value(i, "--queue-depth", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &options.queue_depth)) return Usage();
      continue;
    }
    if (!flag_value(i, "--cache-capacity", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &options.cache_capacity)) return Usage();
      continue;
    }
    if (!flag_value(i, "--repeat", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &repeat) || repeat == 0) return Usage();
      continue;
    }
    if (!flag_value(i, "--shards", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &options.solver.num_shards)) return Usage();
      continue;
    }
    if (!flag_value(i, "--deadline-ms", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &deadline_ms)) return Usage();
      continue;
    }
    if (!flag_value(i, "--priority", &value)) return Usage();
    if (value != nullptr) {
      if (std::strcmp(value, "high") == 0) {
        default_priority = util::AdmissionGate::Priority::kHigh;
      } else if (std::strcmp(value, "low") == 0) {
        default_priority = util::AdmissionGate::Priority::kLow;
      } else {
        return Usage();
      }
      continue;
    }
    if (!flag_value(i, "--db", &value)) return Usage();
    if (value != nullptr) {
      db_path = value;
      continue;
    }
    if (!flag_value(i, "--resident-mb", &value)) return Usage();
    if (value != nullptr) {
      if (!parse_size(value, &resident_mb)) return Usage();
      continue;
    }
    if (!flag_value(i, "--deltas", &value)) return Usage();
    if (value != nullptr) {
      deltas_path = value;
      continue;
    }
    if (std::strcmp(argv[i], "--subscribe") == 0) {
      subscribe = true;
      continue;
    }
    if (std::strcmp(argv[i], "--cache") == 0) {
      options.solver.cache_sois = options.solver.cache_solutions = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.solver.cache_sois = options.solver.cache_solutions = false;
      continue;
    }
    if (std::strcmp(argv[i], "--incremental") == 0) {
      options.solver.incremental_eval = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-incremental") == 0) {
      options.solver.incremental_eval = false;
      continue;
    }
    if (std::strcmp(argv[i], "--scratch-pool") == 0) {
      options.solver.reuse_scratch = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-scratch-pool") == 0) {
      options.solver.reuse_scratch = false;
      continue;
    }
    if (!flag_value(i, "--kernel", &value)) return Usage();
    if (value != nullptr) {
      if (std::strcmp(value, "auto") == 0) {
        options.solver.kernel_mode = sim::SolverOptions::KernelMode::kAuto;
      } else if (std::strcmp(value, "dense") == 0) {
        options.solver.kernel_mode = sim::SolverOptions::KernelMode::kDense;
      } else if (std::strcmp(value, "compressed") == 0) {
        options.solver.kernel_mode =
            sim::SolverOptions::KernelMode::kCompressed;
      } else {
        return Usage();
      }
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) return Usage();
    args.push_back(argv[i]);
  }

  const char* query_path = nullptr;
  std::optional<graph::GraphDatabase> db;
  if (db_path != nullptr) {
    if (args.size() != 1) return Usage();
    query_path = args[0];
    db = LoadDatabase(db_path, /*force_binary=*/true, resident_mb);
  } else {
    if (args.size() != 2) return Usage();
    query_path = args[1];
    db = LoadDatabase(args[0], /*force_binary=*/false, resident_mb);
  }
  if (!db) return 1;

  std::vector<sparql::Query> queries;
  std::vector<util::AdmissionGate::Priority> priorities;
  if (!LoadQueries(query_path, default_priority, &queries, &priorities)) {
    return 1;
  }

  if (deltas_path != nullptr && !subscribe) {
    std::fprintf(stderr, "--deltas requires --subscribe\n");
    return Usage();
  }

  sim::QueryService service(&*db, std::move(options));
  if (subscribe) return RunSubscribe(service, queries, deltas_path);
  const size_t total = queries.size() * repeat;
  std::fprintf(stderr, "submitting %zu queries (%zu x %zu) ...\n", total,
               queries.size(), repeat);

  util::Stopwatch watch;
  std::vector<std::future<sim::PruneReport>> futures;
  futures.reserve(total);
  for (size_t r = 0; r < repeat; ++r) {
    for (size_t q = 0; q < queries.size(); ++q) {
      sim::SubmitOptions submit;
      submit.priority = priorities[q];
      if (deadline_ms > 0) {
        submit.deadline = std::chrono::milliseconds(deadline_ms);
      }
      futures.push_back(service.Submit(queries[q], submit));
    }
  }
  std::vector<sim::PruneReport> reports;
  reports.reserve(total);
  for (auto& f : futures) reports.push_back(f.get());
  double wall = watch.ElapsedSeconds();

  std::printf("%-6s %10s %9s %8s %10s\n", "query", "solve(s)", "branches",
              "rounds", "kept");
  for (size_t i = 0; i < reports.size(); ++i) {
    const sim::PruneReport& r = reports[i];
    std::printf("q%03zu   %10.5f %9zu %8zu %10zu%s\n", i, r.total_seconds,
                r.num_branches, r.stats.rounds, r.kept_triples.size(),
                r.truncated ? "  [truncated]" : "");
  }

  const sim::QueryService::Stats stats = service.stats();
  const sim::QueryServiceOptions& opts = service.options();
  std::printf("\nbatch: %zu queries in %.4fs (%.1f q/s, %zu workers, "
              "queue depth %zu)\n",
              total, wall, wall > 0 ? static_cast<double>(total) / wall : 0.0,
              util::ThreadPool::ResolveThreadCount(opts.num_workers),
              opts.queue_depth);
  std::printf("service: submitted %zu, executed %zu, coalesced %zu, "
              "peak in-flight %zu\n",
              stats.submitted, stats.executed, stats.coalesced,
              stats.peak_in_flight);
  auto mean_wait = [](const util::AdmissionGate::ClassStats& cls) {
    return cls.blocked == 0 ? 0.0 : cls.wait_seconds / cls.blocked;
  };
  std::printf("admission: high %zu admitted / %zu blocked (mean wait "
              "%.4fs), low %zu admitted / %zu blocked (mean wait %.4fs)\n",
              stats.gate.high.admitted, stats.gate.high.blocked,
              mean_wait(stats.gate.high), stats.gate.low.admitted,
              stats.gate.low.blocked, mean_wait(stats.gate.low));
  std::printf("snapshots: %zu live (peak %zu), %zu published, "
              "%zu deadline-truncated\n",
              stats.snapshots_live, stats.peak_snapshots_live,
              stats.snapshots_published, stats.deadline_truncated);
  std::printf("cache: soi %zu hits / %zu misses, solution %zu hits / %zu "
              "misses\n",
              stats.cache.soi_hits, stats.cache.soi_misses,
              stats.cache.solution_hits, stats.cache.solution_misses);
  const std::string capacity =
      opts.cache_capacity == 0 ? "unbounded"
                               : std::to_string(opts.cache_capacity);
  std::printf("cache evictions: %zu lru (soi %zu, solution %zu), "
              "%zu generation-gc; resident %zu sois + %zu solutions"
              " (capacity %s)\n",
              stats.cache.soi_evictions + stats.cache.solution_evictions,
              stats.cache.soi_evictions, stats.cache.solution_evictions,
              stats.cache.generation_evictions, stats.cached_sois,
              stats.cached_solutions, capacity.c_str());
  std::printf("scratch: %llu reuses / %llu allocs, %llu bytes recycled, "
              "%llu words cleared sparsely\n",
              static_cast<unsigned long long>(stats.scratch_reuses),
              static_cast<unsigned long long>(stats.scratch_allocs),
              static_cast<unsigned long long>(stats.bytes_recycled),
              static_cast<unsigned long long>(stats.words_cleared_sparse));
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
