#include "sim/validate.h"

#include <sstream>

namespace sparqlsim::sim {

namespace {

void Explain(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
}

}  // namespace

bool SatisfiesSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const std::vector<util::BitVector>& candidates,
                  std::string* why) {
  graph::ResidencyPin residency_pin = db.PinResidency();
  if (candidates.size() != soi.NumVars()) {
    Explain(why, "candidate vector count does not match SOI variables");
    return false;
  }
  const size_t n = db.NumNodes();
  util::BitVector product(n);

  for (const Soi::MatrixIneq& m : soi.matrix_ineqs) {
    if (m.predicate == kEmptyPredicate) {
      if (candidates[m.lhs].Any()) {
        Explain(why, "non-empty candidates through an absent predicate for " +
                         soi.var_names[m.lhs]);
        return false;
      }
      continue;
    }
    const util::BitMatrix& a =
        m.forward ? db.Forward(m.predicate) : db.Backward(m.predicate);
    a.Multiply(candidates[m.rhs], &product);
    if (!candidates[m.lhs].IsSubsetOf(product)) {
      std::ostringstream msg;
      msg << soi.var_names[m.lhs] << " <= " << soi.var_names[m.rhs] << " x "
          << (m.forward ? "F_" : "B_") << db.predicates().Name(m.predicate)
          << " violated";
      Explain(why, msg.str());
      return false;
    }
  }
  for (const Soi::SubIneq& s : soi.sub_ineqs) {
    if (!candidates[s.lhs].IsSubsetOf(candidates[s.rhs])) {
      Explain(why, soi.var_names[s.lhs] + " <= " + soi.var_names[s.rhs] +
                       " violated");
      return false;
    }
  }
  for (size_t v = 0; v < soi.NumVars(); ++v) {
    if (soi.constants[v] && candidates[v].Any()) {
      if (candidates[v].Count() != 1 ||
          !candidates[v].Test(*soi.constants[v])) {
        Explain(why, "constant variable " + soi.var_names[v] +
                         " bound to a non-constant set");
        return false;
      }
    }
    if (soi.unsatisfiable_vars[v] && candidates[v].Any()) {
      Explain(why, "unsatisfiable variable " + soi.var_names[v] +
                       " has candidates");
      return false;
    }
  }
  return true;
}

bool IsDualSimulation(const graph::Graph& pattern,
                      const graph::GraphDatabase& db,
                      const std::vector<util::BitVector>& candidates,
                      std::string* why) {
  if (candidates.size() != pattern.NumNodes()) {
    Explain(why, "candidate vector count does not match pattern nodes");
    return false;
  }
  for (const graph::LabeledEdge& e : pattern.edges()) {
    if (e.label == kEmptyPredicate) {
      if (candidates[e.from].Any() || candidates[e.to].Any()) {
        Explain(why, "candidates across an absent label");
        return false;
      }
      continue;
    }
    const util::BitMatrix& fwd = db.Forward(e.label);
    const util::BitMatrix& bwd = db.Backward(e.label);
    bool ok = true;
    // Def. 2(i): every candidate of e.from has an e.label successor among
    // the candidates of e.to.
    candidates[e.from].ForEachSetBit([&](uint32_t x) {
      if (!fwd.RowIntersects(x, candidates[e.to])) ok = false;
    });
    if (!ok) {
      std::ostringstream msg;
      msg << "Def. 2(i) violated on pattern edge (" << e.from << ","
          << db.predicates().Name(e.label) << "," << e.to << ")";
      Explain(why, msg.str());
      return false;
    }
    // Def. 2(ii).
    candidates[e.to].ForEachSetBit([&](uint32_t y) {
      if (!bwd.RowIntersects(y, candidates[e.from])) ok = false;
    });
    if (!ok) {
      std::ostringstream msg;
      msg << "Def. 2(ii) violated on pattern edge (" << e.from << ","
          << db.predicates().Name(e.label) << "," << e.to << ")";
      Explain(why, msg.str());
      return false;
    }
  }
  return true;
}

}  // namespace sparqlsim::sim
