#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// One strong simulation match: a ball center and the per-pattern-node
/// candidate sets of the largest dual simulation inside the ball.
struct StrongMatch {
  uint32_t center;
  std::vector<util::BitVector> candidates;
};

struct StrongSimOptions {
  SolverOptions solver;
  /// Stop after this many matches (0 = unlimited).
  size_t max_matches = 0;
};

struct StrongSimResult {
  std::vector<StrongMatch> matches;
  /// Pattern diameter used as the ball radius d_Q.
  size_t radius = 0;
  size_t balls_checked = 0;
  double seconds = 0.0;
};

/// Strong simulation (Ma et al. [20]): dual simulation with locality.
///
/// A strong simulation match is a ball \hat{B}(w, d_Q) — the subgraph
/// induced by all nodes within undirected distance d_Q (the pattern
/// diameter) of a center w — that dual-simulates the pattern with w
/// participating in the relation. Strong simulation restores the topology
/// dual simulation loses ("performance improvements by dual simulation
/// come with a loss of topology", Sect. 6) at the price of one bounded
/// dual-simulation fixpoint per candidate center.
///
/// This implementation applies the paper's own recipe as a prefilter: the
/// *global* largest dual simulation is computed first, ball centers are
/// drawn from its surviving candidates only, and balls grow inside the
/// surviving node set (non-candidates can participate in no match graph).
/// Duplicate balls yielding identical relations are deduplicated.
StrongSimResult StrongSimulation(const graph::Graph& pattern,
                                 const graph::GraphDatabase& db,
                                 const StrongSimOptions& options = {});

/// Undirected diameter of a (connected) pattern graph; the ball radius
/// d_Q of strong simulation. Returns 0 for single-node patterns.
size_t PatternDiameter(const graph::Graph& pattern);

}  // namespace sparqlsim::sim
