#include "sim/query_service.h"

#include <algorithm>
#include <utility>

#include "sparql/normalize.h"

namespace sparqlsim::sim {
namespace {

/// The service decides the cache lifecycle itself: one database per
/// service, so stale generations are dead weight (generation GC on) and
/// the entry count is bounded by the configured capacity.
std::shared_ptr<SoiCache> MakeServiceCache(const QueryServiceOptions& options) {
  if (!options.solver.cache_sois && !options.solver.cache_solutions) {
    return nullptr;
  }
  return std::make_shared<SoiCache>(
      SoiCache::Options{options.cache_capacity, /*generation_gc=*/true});
}

}  // namespace

QueryService::QueryService(const graph::GraphDatabase* db,
                           QueryServiceOptions options)
    : options_(std::move(options)),
      engine_(db, options_.solver, MakeServiceCache(options_)),
      gate_(options_.queue_depth),
      pool_(std::make_unique<util::ThreadPool>(options_.num_workers)) {}

QueryService::~QueryService() {
  // Joining the workers completes every admitted query (the pool drains its
  // queue on destruction), so all outstanding futures get settled.
  pool_.reset();
}

std::future<PruneReport> QueryService::Submit(const sparql::Query& query) {
  const std::string key = sparql::CanonicalPatternKey(*query.where);
  std::promise<PruneReport> promise;
  std::future<PruneReport> future = promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;
    auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      ++coalesced_;
      it->second->waiters.push_back(std::move(promise));
      return future;
    }
  }

  // New work: take an admission slot. This is the backpressure point — it
  // blocks while queue_depth queries are in flight, and must happen outside
  // the map lock so coalescing submissions and finishing workers proceed.
  gate_.Acquire();

  auto owned = std::make_shared<const sparql::Query>(query.Clone());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Someone may have admitted the same key while we waited for the slot.
    auto [it, inserted] = in_flight_.try_emplace(key);
    if (!inserted) {
      ++coalesced_;
      it->second->waiters.push_back(std::move(promise));
      gate_.Release();
      return future;
    }
    it->second = std::make_shared<InFlight>();
    it->second->waiters.push_back(std::move(promise));
    peak_in_flight_ = std::max(peak_in_flight_, gate_.InUse());
  }
  pool_->Submit([this, key, owned] { RunQuery(key, owned); });
  return future;
}

void QueryService::RunQuery(const std::string& key,
                            std::shared_ptr<const sparql::Query> query) {
  if (options_.solve_hook) options_.solve_hook();
  PruneReport report = engine_.Prune(*query);

  std::vector<std::promise<PruneReport>> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(key);
    waiters = std::move(it->second->waiters);
    in_flight_.erase(it);
    ++executed_;
  }
  // Slot freed before settling the promises: a waiter that immediately
  // resubmits the same query must find the map entry gone (fresh solve),
  // and a producer blocked in Acquire should not wait on promise fan-out.
  gate_.Release();

  for (size_t i = 0; i + 1 < waiters.size(); ++i) {
    waiters[i].set_value(report);
  }
  waiters.back().set_value(std::move(report));
}

std::vector<PruneReport> QueryService::SubmitBatch(
    const std::vector<sparql::Query>& queries) {
  std::vector<std::future<PruneReport>> futures;
  futures.reserve(queries.size());
  for (const sparql::Query& query : queries) futures.push_back(Submit(query));
  std::vector<PruneReport> reports;
  reports.reserve(queries.size());
  for (std::future<PruneReport>& f : futures) reports.push_back(f.get());
  return reports;
}

void QueryService::Drain() { gate_.WaitIdle(); }

QueryService::Stats QueryService::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.submitted = submitted_;
    out.executed = executed_;
    out.coalesced = coalesced_;
    out.peak_in_flight = peak_in_flight_;
  }
  if (const SoiCache* cache = engine_.cache()) {
    out.cache = cache->stats();
    out.cached_sois = cache->NumSois();
    out.cached_solutions = cache->NumSolutions();
  }
  return out;
}

}  // namespace sparqlsim::sim
