#!/usr/bin/env bash
# Populates data/ with the benchmark datasets of docs/DATASETS.md and
# records sha256 checksums so converted artifacts are reproducible and
# shareable.
#
# Two sources, mirroring the paper's Sect. 5 setup:
#   * LUBM(N): generated locally with sparqlsim_datagen (the repo's
#     LUBM-like generator at paper-style scales). Fully offline.
#   * DBpedia: a real slice is downloaded only when a URL is provided via
#     SPARQLSIM_DBPEDIA_URL (the canonical dumps move between releases, so
#     no URL is hard-coded); otherwise the DBpedia-like generator stands in.
#     Downloads may be .nt or .nt.gz — sparqlsim_ingest reads both.
#
# Usage: tools/fetch_datasets.sh [build_dir] [data_dir]
#
# Env knobs (exported only if unset):
#   SPARQLSIM_LUBM_SIZES      university counts to generate (default "1 5 20";
#                             20 is the >= 1M-triple paper-scale dump)
#   SPARQLSIM_DBPEDIA_SCALES  DBpedia-like generator scales (default "2")
#   SPARQLSIM_DBPEDIA_URL     optional real DBpedia N-Triples slice URL
#   SPARQLSIM_CONVERT         1 (default) to also ingest every .nt into the
#                             binary .gdb format; 0 to skip
#   SPARQLSIM_INGEST_FLAGS    extra sparqlsim_ingest flags (e.g. --permissive,
#                             recommended for real dumps)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
DATA_DIR="${2:-$REPO_ROOT/data}"
DATAGEN="$BUILD_DIR/sparqlsim_datagen"
INGEST="$BUILD_DIR/sparqlsim_ingest"

SPARQLSIM_LUBM_SIZES="${SPARQLSIM_LUBM_SIZES:-1 5 20}"
SPARQLSIM_DBPEDIA_SCALES="${SPARQLSIM_DBPEDIA_SCALES:-2}"
SPARQLSIM_DBPEDIA_URL="${SPARQLSIM_DBPEDIA_URL:-}"
SPARQLSIM_CONVERT="${SPARQLSIM_CONVERT:-1}"
SPARQLSIM_INGEST_FLAGS="${SPARQLSIM_INGEST_FLAGS:-}"

if [[ ! -x "$DATAGEN" ]]; then
  echo "error: $DATAGEN not built (run: cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

mkdir -p "$DATA_DIR"
CHECKSUMS="$DATA_DIR/CHECKSUMS.sha256"
: >"$CHECKSUMS.tmp"

record_checksum() {
  (cd "$DATA_DIR" && sha256sum "$(basename "$1")") >>"$CHECKSUMS.tmp"
}

convert() {
  local nt="$1"
  local gdb="${nt%.nt}.gdb"
  if [[ "$SPARQLSIM_CONVERT" != "1" ]]; then
    return 0
  fi
  if [[ ! -x "$INGEST" ]]; then
    echo "[fetch_datasets] $INGEST not built, skipping conversion" >&2
    return 0
  fi
  if [[ ! -f "$gdb" || "$nt" -nt "$gdb" ]]; then
    echo "[fetch_datasets] ingesting $(basename "$nt") ..." >&2
    # shellcheck disable=SC2086  # flags are intentionally word-split
    "$INGEST" $SPARQLSIM_INGEST_FLAGS "$nt" "$gdb"
  fi
  record_checksum "$gdb"
}

# --- LUBM(N): deterministic local generation (seed fixed in datagen) -------
for n in $SPARQLSIM_LUBM_SIZES; do
  nt="$DATA_DIR/lubm-$n.nt"
  if [[ ! -f "$nt" ]]; then
    echo "[fetch_datasets] generating LUBM($n) ..." >&2
    "$DATAGEN" lubm "$n" >"$nt.partial"
    mv "$nt.partial" "$nt"
  fi
  record_checksum "$nt"
  convert "$nt"
done

# --- DBpedia: real slice when a URL is given, generator otherwise ----------
if [[ -n "$SPARQLSIM_DBPEDIA_URL" ]]; then
  base="$(basename "$SPARQLSIM_DBPEDIA_URL")"
  target="$DATA_DIR/$base"
  if [[ ! -f "$target" ]]; then
    echo "[fetch_datasets] downloading $SPARQLSIM_DBPEDIA_URL ..." >&2
    if command -v curl >/dev/null; then
      curl -L --fail -o "$target.partial" "$SPARQLSIM_DBPEDIA_URL"
    elif command -v wget >/dev/null; then
      wget -O "$target.partial" "$SPARQLSIM_DBPEDIA_URL"
    else
      echo "error: neither curl nor wget available" >&2
      exit 1
    fi
    mv "$target.partial" "$target"
  fi
  record_checksum "$target"
  if [[ "$target" == *.nt ]]; then
    convert "$target"
  elif [[ "$SPARQLSIM_CONVERT" == "1" && -x "$INGEST" ]]; then
    gdb="$DATA_DIR/${base%%.nt.gz}.gdb"
    if [[ ! -f "$gdb" || "$target" -nt "$gdb" ]]; then
      echo "[fetch_datasets] ingesting $base ..." >&2
      # shellcheck disable=SC2086
      "$INGEST" $SPARQLSIM_INGEST_FLAGS "$target" "$gdb"
    fi
    record_checksum "$gdb"
  fi
else
  for scale in $SPARQLSIM_DBPEDIA_SCALES; do
    nt="$DATA_DIR/dbpedia-like-$scale.nt"
    if [[ ! -f "$nt" ]]; then
      echo "[fetch_datasets] generating DBpedia-like(scale=$scale) ..." >&2
      "$DATAGEN" dbpedia "$scale" >"$nt.partial"
      mv "$nt.partial" "$nt"
    fi
    record_checksum "$nt"
    convert "$nt"
  done
fi

sort -k2 "$CHECKSUMS.tmp" >"$CHECKSUMS"
rm -f "$CHECKSUMS.tmp"
echo "[fetch_datasets] datasets ready in $DATA_DIR" >&2
ls -l "$DATA_DIR" >&2
