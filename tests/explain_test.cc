#include "engine/explain.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "sparql/parser.h"

namespace sparqlsim::engine {
namespace {

sparql::Query Q(const char* text) {
  auto r = sparql::Parser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.error_message();
  return std::move(r).value();
}

TEST(ExplainTest, ShowsJoinOrderAndStats) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  std::string plan = ExplainQuery(
      Q("SELECT * WHERE { ?d <directed> ?m . ?m <awarded> ?a . }"), db);
  EXPECT_NE(plan.find("rdfox-like"), std::string::npos);
  EXPECT_NE(plan.find("BGP (2 patterns)"), std::string::npos);
  EXPECT_NE(plan.find("card="), std::string::npos);
  EXPECT_NE(plan.find("1. "), std::string::npos);
  EXPECT_NE(plan.find("2. "), std::string::npos);
}

TEST(ExplainTest, ShowsAlgebraNodes) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  std::string plan = ExplainQuery(
      Q("SELECT ?d WHERE { ?d <directed> ?m . OPTIONAL { ?d <worked_with> "
        "?c . } }"),
      db, {JoinOrderPolicy::kVirtuosoLike});
  EXPECT_NE(plan.find("virtuoso-like"), std::string::npos);
  EXPECT_NE(plan.find("LEFT OUTER JOIN"), std::string::npos);
  EXPECT_NE(plan.find("project: ?d"), std::string::npos);
}

TEST(ExplainTest, MarksAbsentPredicates) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  std::string plan =
      ExplainQuery(Q("SELECT * WHERE { ?a <nope> ?b . }"), db);
  EXPECT_NE(plan.find("absent predicate"), std::string::npos);
}

TEST(ExplainTest, UnionBranches) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  std::string plan = ExplainQuery(
      Q("SELECT * WHERE { { ?a <directed> ?b . } UNION { ?a <born_in> ?b . "
        "} }"),
      db);
  EXPECT_NE(plan.find("UNION"), std::string::npos);
}

TEST(ExplainTest, PoliciesCanDiffer) {
  // The constant-anchored pattern is cheapest for the greedy policy but
  // the static policy orders purely by cardinality.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q(
      "SELECT * WHERE { ?d <directed> ?m . ?d <born_in> <Newark> . "
      "?m <genre> ?g . }");
  std::string greedy = ExplainQuery(q, db, {JoinOrderPolicy::kRdfoxLike});
  std::string as_written =
      ExplainQuery(q, db, {JoinOrderPolicy::kAsWritten});
  // Greedy starts with the constant-anchored born_in pattern.
  size_t greedy_first = greedy.find("1. ");
  EXPECT_NE(greedy.substr(greedy_first, 60).find("born_in"),
            std::string::npos)
      << greedy;
  // As-written keeps the textual order.
  size_t written_first = as_written.find("1. ");
  EXPECT_NE(as_written.substr(written_first, 60).find("directed"),
            std::string::npos)
      << as_written;
}

}  // namespace
}  // namespace sparqlsim::engine
