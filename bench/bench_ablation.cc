// Ablation of the Sect. 3.3 solver strategies on representative queries:
//   * Eq. (13) summary initialization vs plain Eq. (12),
//   * sparsity-first inequality ordering on/off,
//   * row-wise vs column-wise vs dynamic product evaluation.
// The paper's observation: no single heuristic fits all inputs, but the
// dynamic default is never far from the best.

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/pruner.h"

namespace sparqlsim {
namespace {

struct Variant {
  const char* name;
  sim::SolverOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  auto make = [](bool summary, bool order, sim::SolverOptions::EvalMode mode) {
    sim::SolverOptions o;
    o.summary_init = summary;
    o.order_by_sparsity = order;
    o.eval_mode = mode;
    return o;
  };
  using Mode = sim::SolverOptions::EvalMode;
  variants.push_back({"default(13+order+dyn)", make(true, true, Mode::kDynamic)});
  variants.push_back({"init12", make(false, true, Mode::kDynamic)});
  variants.push_back({"no-order", make(true, false, Mode::kDynamic)});
  variants.push_back({"row-only", make(true, true, Mode::kRowWise)});
  variants.push_back({"col-only", make(true, true, Mode::kColumnWise)});
  variants.push_back({"naive(12,noord,row)", make(false, false, Mode::kRowWise)});
  return variants;
}

void RunQuery(const char* id, const graph::GraphDatabase& db,
              const std::string& text) {
  sparql::Query query = bench::ParseOrDie(text);
  sim::SparqlSimProcessor processor(&db);

  std::printf("\n%s:\n", id);
  std::printf("  %-22s %12s %8s %10s %10s\n", "variant", "time(s)", "rounds",
              "row-evals", "col-evals");
  for (const Variant& v : Variants()) {
    sim::PruneReport report;
    double seconds = bench::TimeAverage(
        [&] { report = processor.Prune(query, v.options); });
    std::printf("  %-22s %12.5f %8zu %10zu %10zu\n", v.name, seconds,
                report.stats.rounds, report.stats.row_evals,
                report.stats.col_evals);
  }
}

int Run() {
  std::printf("Solver strategy ablation (Sect. 3.3)\n");
  graph::GraphDatabase lubm = bench::MakeBenchLubm();
  auto lubm_queries = datagen::LubmQueries();
  RunQuery("L0 (cyclic, low selectivity)", lubm, lubm_queries[0].text);
  RunQuery("L1 (Fig. 6(b) cycle)", lubm, lubm_queries[1].text);

  graph::GraphDatabase dbp = bench::MakeBenchDbpedia();
  auto b = datagen::BenchmarkQueries();
  RunQuery("B1 (large chain)", dbp, b[1].text);
  RunQuery("B14 (large star)", dbp, b[14].text);
  RunQuery("B8 (cyclic triangle)", dbp, b[8].text);
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main() { return sparqlsim::Run(); }
