#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitvector.h"

namespace sparqlsim::util {

/// A BitVector with one extra summary level: one bit per block of 64
/// words (4096 payload bits), set iff the block contains any set bit.
///
/// Candidate sets chi(v) shrink monotonically during the SOI fixpoint
/// (Sect. 3.2 of the paper), so by the late rounds a full-universe vector
/// is mostly zero words. The summary lets the bulk kernels — AndWith,
/// Count, ForEachSetBit, and the boolean product through
/// BitMatrix::Multiply — skip whole zero blocks instead of word-scanning
/// dead memory, turning their cost from O(universe/64) into
/// O(live blocks). On a 1M-node universe that is 245 summary-guided
/// blocks instead of 15625 words.
///
/// Invariant: summary bit b is set *iff* block b has a nonzero word
/// (exact, not conservative), and the underlying BitVector keeps its own
/// tail invariant (bits at positions >= size() stay zero). The mutator
/// set is deliberately minimal — Set / SetRange / SetAll / ClearAll /
/// ClearLive / AndWith plus the recycle helpers ResetForReuse and
/// AssignFrom — which is everything the solver's monotone-shrink loop
/// and the scratch-pool recycle path need; there is no single-bit Reset,
/// whose summary maintenance would need a block rescan.
///
/// `blocks_skipped()` counts the zero blocks the AndWith kernels skipped.
/// Only AndWith counts (the solver calls it single-threaded, in the
/// init and merge phases); the const readers stay counter-free so they
/// can be shared by concurrent evaluation tasks without a data race.
class HierarchicalBitVector {
 public:
  static constexpr size_t kWordsPerBlock = 64;
  static constexpr size_t kBitsPerBlock =
      kWordsPerBlock * BitVector::kWordBits;

  HierarchicalBitVector() = default;

  /// A vector of `num_bits` bits, all set to `initial`.
  explicit HierarchicalBitVector(size_t num_bits, bool initial = false);

  /// Adopts an existing BitVector (moved in) and builds its summary.
  explicit HierarchicalBitVector(BitVector bits);

  size_t size() const { return bits_.size(); }

  /// The underlying flat vector, for kernels that take a plain BitVector
  /// (copying a mask, RowIntersects, AndNotWith deltas).
  const BitVector& bits() const { return bits_; }

  /// Moves the flat vector out (the summary is discarded). Used to export
  /// the solved candidate sets into a Solution without copying.
  BitVector TakeBits() && { return std::move(bits_); }

  void Set(size_t i);
  bool Test(size_t i) const { return bits_.Test(i); }
  void SetAll();
  void ClearAll();

  /// Zeroes only the blocks whose summary bit is set. Because the summary
  /// is exact (not conservative), this is observationally identical to
  /// ClearAll — ClearAll simply delegates here — but a recycled, mostly
  /// drained vector pays O(live blocks) instead of O(universe/64). The
  /// payload words actually zeroed are added to words_cleared().
  void ClearLive();

  /// Sets the `len` bits starting at `begin` and marks the touched blocks
  /// live. Word-filled like BitVector::SetRange; the run materialization
  /// path when refilling a recycled dense payload from a gap encoding.
  void SetRange(size_t begin, size_t len);

  /// Reshapes to an all-zero vector of `num_bits`, reusing the existing
  /// word storage: same-size vectors pay only a ClearLive, resizes keep
  /// whatever capacity the allocator already handed out. Logically
  /// equivalent to `*this = HierarchicalBitVector(num_bits)` minus the
  /// allocation; the skip/clear counters are left untouched (they are
  /// harvested independently).
  void ResetForReuse(size_t num_bits);

  /// Copy-assigns the payload from `src` (reusing capacity) and rebuilds
  /// the summary. Logically `*this = HierarchicalBitVector(copy_of_src)`.
  void AssignFrom(const BitVector& src);

  /// Number of set bits; zero blocks are skipped via the summary.
  size_t Count() const;
  /// True iff any bit is set — scans only the summary words.
  bool Any() const;

  /// this &= other, skipping blocks that are already zero on this side
  /// and draining blocks that are zero on the other side (the
  /// hierarchical overload knows without reading a word of payload).
  /// Returns true iff any bit changed.
  bool AndWith(const BitVector& other);
  bool AndWith(const HierarchicalBitVector& other);

  /// Calls fn(index) for every set bit in ascending order, skipping zero
  /// blocks via the summary. Safe for concurrent readers (const, no
  /// counter updates).
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    const uint64_t* words = bits_.words();
    const size_t word_count = bits_.WordCount();
    for (size_t sw = 0; sw < summary_.size(); ++sw) {
      uint64_t sword = summary_[sw];
      while (sword != 0) {
        const size_t block =
            sw * 64 + static_cast<size_t>(__builtin_ctzll(sword));
        sword &= sword - 1;
        const size_t w_end =
            std::min((block + 1) * kWordsPerBlock, word_count);
        for (size_t w = block * kWordsPerBlock; w < w_end; ++w) {
          uint64_t word = words[w];
          while (word != 0) {
            const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
            fn(static_cast<uint32_t>(w * BitVector::kWordBits + bit));
            word &= word - 1;
          }
        }
      }
    }
  }

  /// Zero blocks skipped by AndWith so far (see class comment).
  uint64_t blocks_skipped() const { return blocks_skipped_; }
  /// Returns and resets the skip counter (stat harvesting at solve end).
  uint64_t TakeBlocksSkipped() {
    uint64_t taken = blocks_skipped_;
    blocks_skipped_ = 0;
    return taken;
  }

  /// Payload words zeroed by ClearLive so far — the price actually paid
  /// for wiping recycled buffers, as opposed to the O(universe/64) a
  /// dense memset would cost. Same single-threaded mutator discipline as
  /// blocks_skipped().
  uint64_t words_cleared() const { return words_cleared_; }
  uint64_t TakeWordsCleared() {
    uint64_t taken = words_cleared_;
    words_cleared_ = 0;
    return taken;
  }

 private:
  size_t NumBlocks() const {
    return (bits_.WordCount() + kWordsPerBlock - 1) / kWordsPerBlock;
  }
  /// Recomputes the summary from the payload (ctor / SetAll).
  void RebuildSummary();

  BitVector bits_;
  std::vector<uint64_t> summary_;  // bit b: block b has a nonzero word
  uint64_t blocks_skipped_ = 0;
  uint64_t words_cleared_ = 0;
};

}  // namespace sparqlsim::util
