// Reproduces Table 4 of the paper: query processing times on the full and
// the dual-simulation-pruned database for the RDFox-like engine (greedy
// dynamic join ordering), plus the combined pruning + query time.
//
// Expected shape (paper): pruning improves the engine most where
// intermediate results are large (the L1 analogue by an order of
// magnitude); for queries where the fixpoint itself is slow (L0),
// pruning + sim loses to the plain engine.

#include "bench/bench_table45_common.h"

int main(int argc, char** argv) {
  return sparqlsim::bench::RunTable(
      "Table 4: full vs pruned query times, RDFox-like engine (seconds)",
      sparqlsim::engine::JoinOrderPolicy::kRdfoxLike, argc, argv);
}
