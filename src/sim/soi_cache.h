#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "sim/soi.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// Cache of per-query-structure artifacts, keyed by
/// (database generation, sparql::CanonicalPatternKey of the union-free
/// branch). One entry carries two layers:
///
///  * SOI layer — the constructed system of inequalities. Reusable whenever
///    the same normalized branch is solved again against the same database
///    (SOIs embed database predicate/constant ids, so the generation is part
///    of the key).
///  * Solution layer — the solved fixpoint, attached to the entry of the
///    SOI instance it was solved on. The largest solution is unique
///    (Prop. 1), independent of every solver heuristic, so a cached
///    solution is valid for any SolverOptions as long as the run was not
///    truncated (SimEngine never stores max_rounds-limited runs) and the
///    database generation matches. A Restrict()ed or reloaded database gets
///    a fresh generation, which invalidates implicitly — stale entries are
///    unreachable, never wrong.
///
/// The two layers live in ONE entry on purpose: canonically-equal patterns
/// may number their SOI variables differently (construction follows triple
/// order, the key does not), so a solution is only meaningful against the
/// exact SOI instance it was solved on. Solution lookups and inserts
/// therefore carry that instance, and the cache answers a hit only when
/// the entry still holds the same instance — eviction can cost a recompute
/// but can never mis-pair a solution with a rebuilt SOI.
///
/// Lifecycle: entries form an LRU bounded by `Options::capacity`
/// (0 = unbounded, the historical behavior); inserting past the bound
/// evicts the least-recently-used entry, attached solution included. With
/// `Options::generation_gc` set, the first operation carrying a *newer*
/// database generation eagerly evicts every entry of an older generation —
/// the right policy when the cache serves a single evolving database
/// (sim::QueryService and private SimEngine caches turn it on). Leave it
/// off for a cache deliberately shared by engines bound to *different*
/// databases: generation-distinct entries then coexist, each reachable
/// only by its own database, and `EvictStaleGenerations` is available for
/// manual GC.
///
/// All methods are thread-safe; branch batches probe the cache
/// concurrently. Artifacts are shared_ptr<const ...> so a hit is a pointer
/// copy, not a deep copy (an evicted artifact stays alive while anyone
/// still holds the pointer).
class SoiCache {
 public:
  struct Options {
    /// Max entries (each holding an SOI and possibly its solution);
    /// 0 = unbounded.
    size_t capacity = 0;
    /// Eagerly drop entries of older generations whenever a newer one is
    /// seen (single-database caches only; see class comment).
    bool generation_gc = false;
  };

  struct Stats {
    size_t soi_hits = 0;
    size_t soi_misses = 0;
    size_t solution_hits = 0;
    size_t solution_misses = 0;
    /// Capacity (LRU) evictions: entries dropped, and how many of those
    /// carried an attached solution.
    size_t soi_evictions = 0;
    size_t solution_evictions = 0;
    /// Artifacts dropped by generation GC (SOIs + attached solutions,
    /// eager + manual).
    size_t generation_evictions = 0;
  };

  SoiCache() = default;
  explicit SoiCache(Options options) : options_(options) {}

  /// Returns the cached SOI for (generation, key), or null (counting a
  /// miss).
  std::shared_ptr<const Soi> FindSoi(uint64_t generation,
                                     const std::string& key);
  /// Stores `soi` and returns the (possibly pre-existing) cached value.
  std::shared_ptr<const Soi> InsertSoi(uint64_t generation,
                                       const std::string& key, Soi soi);

  /// Returns the cached full-fixpoint solution for (generation, key), but
  /// only if it was solved on exactly `solved_on` — the SOI instance the
  /// caller obtained from FindSoi/InsertSoi. Anything else (no entry, no
  /// solution yet, or an entry whose SOI was rebuilt since) is a miss.
  std::shared_ptr<const Solution> FindSolution(uint64_t generation,
                                               const std::string& key,
                                               const Soi* solved_on);
  /// Attaches `solution` (solved on `solved_on`) to its SOI's entry and
  /// returns the canonical cached value. If the entry is gone or now holds
  /// a different SOI instance, the solution is returned un-cached — never
  /// stored against a mismatched SOI.
  std::shared_ptr<const Solution> InsertSolution(uint64_t generation,
                                                 const std::string& key,
                                                 const Soi* solved_on,
                                                 Solution solution);

  /// Manual generation GC: drops every entry whose generation differs from
  /// `live_generation`; returns the number of artifacts dropped (SOIs +
  /// attached solutions). Counted in Stats::generation_evictions.
  size_t EvictStaleGenerations(uint64_t live_generation);

  /// MVCC-aware generation GC: drops every entry whose generation is not
  /// in `live_generations` — the set of generations still reachable
  /// through a pinned snapshot, as reported by the serving layer's
  /// snapshot refcounts. This is the correct sweep under concurrent
  /// serving: the newest generation alone is NOT the live set while
  /// in-flight queries still pin older snapshots (evicting their entries
  /// would thrash), and a generation no pin can reach again must be
  /// dropped even if some raw integer comparison would call it "new".
  /// Returns artifacts dropped; counted in Stats::generation_evictions.
  size_t EvictStaleGenerations(std::span<const uint64_t> live_generations);

  const Options& options() const { return options_; }
  Stats stats() const;
  /// Resident entries (each entry holds one SOI).
  size_t NumSois() const;
  /// Resident entries with an attached solution (<= NumSois()).
  size_t NumSolutions() const;
  void Clear();

 private:
  struct Entry {
    uint64_t generation = 0;
    std::shared_ptr<const Soi> soi;
    std::shared_ptr<const Solution> solution;  // null until attached
    std::list<std::string>::iterator lru_pos;
  };

  static std::string MakeKey(uint64_t generation, const std::string& key);
  /// The following assume mutex_ is held.
  void MaybeCollectGenerationsLocked(uint64_t generation);
  Entry* FindEntryLocked(const std::string& full_key);
  void EvictOverCapacityLocked();
  size_t EvictStaleLocked(std::span<const uint64_t> live_generations);

  mutable std::mutex mutex_;
  Options options_;
  uint64_t newest_generation_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  /// Recency list of full keys; front = most recently used.
  std::list<std::string> lru_;
  size_t num_solutions_ = 0;
  Stats stats_;
};

}  // namespace sparqlsim::sim
