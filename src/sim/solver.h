#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_database.h"
#include "sim/soi.h"
#include "util/bitvector.h"

namespace sparqlsim::sim {

/// Strategy knobs for the SOI fixpoint (Sect. 3.3 of the paper). The
/// defaults are the paper's SPARQLSIM configuration; the ablation bench
/// toggles them individually.
struct SolverOptions {
  /// Initialize candidate sets from the per-label summary vectors f^a/b^a
  /// (Eq. 13) instead of the all-ones vectors of Eq. (12).
  bool summary_init = true;

  /// How to evaluate `x <= y *b A`.
  enum class EvalMode {
    kRowWise,     // always materialize the product (Eq. 9)
    kColumnWise,  // always per-candidate intersection tests via A^T
    kDynamic,     // paper's rule: row-wise iff |chi(y)| < |chi(x)|
  };
  EvalMode eval_mode = EvalMode::kDynamic;

  /// Order the initial worklist so that inequalities whose matrix has the
  /// most empty columns (highest pruning potential) come first.
  bool order_by_sparsity = true;

  /// Safety valve for experiments; 0 means no limit.
  size_t max_rounds = 0;
};

/// Counters describing one fixpoint run.
struct SolveStats {
  /// Fixpoint rounds: one round processes every inequality that was
  /// unstable when the round began. This is the paper's "iterations"
  /// metric (L0 needs 30+, L1 only 2; Sect. 5.3).
  size_t rounds = 0;
  size_t evaluations = 0;  // inequality evaluations
  size_t updates = 0;      // evaluations that shrank a candidate set
  size_t row_evals = 0;
  size_t col_evals = 0;
  double solve_seconds = 0.0;

  /// Adds `other`'s counters and time into this (multi-branch aggregation).
  void Accumulate(const SolveStats& other);
};

/// The largest solution of an SOI: one candidate bit-vector per SOI
/// variable. The induced relation {(v, o) | o in candidates[v]} is the
/// largest dual simulation (Prop. 2 of the paper).
struct Solution {
  std::vector<util::BitVector> candidates;
  SolveStats stats;

  /// True iff the induced relation is non-empty.
  bool AnyCandidate() const;
  /// Sum of candidate-set sizes (size of the induced relation).
  size_t RelationSize() const;
};

/// Computes the largest solution of `soi` against `db` by the worklist
/// fixpoint of Sect. 3.2/3.3: start from Eq. (12)/(13), repeatedly pick an
/// unstable inequality, AND the left-hand side with the right-hand-side
/// product, and re-activate every inequality whose right-hand side reads a
/// changed variable.
///
/// When `initial` is non-null it replaces the all-ones start of Eq. (12):
/// the fixpoint then computes the largest solution *below* the given
/// assignment. This is how restricted instances — e.g. the distance-bounded
/// balls of strong simulation — reuse the solver.
Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options = {},
                  const std::vector<util::BitVector>* initial = nullptr);

}  // namespace sparqlsim::sim
