#include "sim/solver.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>

#include "util/candidate_set.h"
#include "util/counted_accumulator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

namespace {

/// Unified inequality handle: indices [0, M) are matrix inequalities,
/// [M, M + S) are subordinations.
struct Work {
  std::vector<uint32_t> current;
  std::vector<uint32_t> next;
  /// Membership in `next`. A BitVector rather than vector<bool>: Test/Set
  /// compile to single word ops instead of the bit-proxy's shift dance,
  /// and the end-of-round reset is one word-parallel ClearAll.
  util::BitVector queued;
};

/// What the evaluation phase decided for one unstable inequality. The
/// merge phase replays these tags in worklist order, so the tag plus the
/// mask fully determine the round's effect.
enum class EvalKind : uint8_t {
  kSkip,   // lhs already empty at round start: nothing to do
  kClear,  // rhs empty / predicate absent: lhs drains to the empty set
  kRow,    // mask = chi(rhs) *b A (Eq. 9), computed in full
  kCol,    // mask = chi(lhs) filtered by per-column intersection tests
  kSub,    // mask = chi(rhs) (subordination, Eq. 14/15)
  kDelta,  // mask = accumulator product after counted retraction of the
           // rows that left chi(rhs); identical to the kRow mask
};

/// Per-matrix-inequality incremental state, persistent across rounds.
///
/// Two tiers, both exploiting that candidate sets only ever shrink (the
/// accumulated removal delta since the last synchronization is exactly
/// `last_rhs` minus the current chi(rhs), and its *size* is a free count
/// difference):
///
///  * Snapshot tier — every full row-wise evaluation keeps its product
///    and the selection it was computed from (two bit-vector copies, a
///    negligible premium over the Multiply itself). A re-evaluation with
///    a small delta then *retracts*: only columns reachable from removed
///    rows can leave the product, and each such column is re-checked with
///    one early-exit cover probe against the current selection (row of
///    A^T vs chi(rhs)).
///  * Counted tier — an inequality that demonstrably iterates escalates
///    to a util::CountedAccumulator, whose per-column cover counts make
///    every retraction O(1) per touched column (no probes, GQ-Fast-style
///    counted index). Building counts writes 4 bytes per selected-nnz
///    entry where a product writes a bit, so the build is only risked on
///    *collapsed* selections, where it is near-free and every later
///    retraction is pure profit.
///
/// State is touched exclusively by the one evaluation task that owns the
/// inequality in a round (each inequality appears at most once per
/// round), so the evaluation phase stays race-free; its evolution is a
/// pure function of the worklist and the round-start assignments, so it
/// is scheduling-independent too.
struct IneqState {
  util::BitVector product;   // snapshot tier: chi(rhs) *b A for last_rhs
  util::BitVector last_rhs;  // selection both tiers are synchronized to
  size_t last_count = 0;     // == last_rhs.Count(), kept for the cost rule
  bool product_valid = false;
  util::CountedAccumulator acc;  // counted tier (escalation)
  bool acc_valid = false;
  /// Delta evaluations this inequality has completed, saturating — past
  /// retraction is the only reliable predictor of the future retractions
  /// that amortize the counted build (visit counts are not: for an
  /// inequality the fixpoint evaluates k times, any visit threshold
  /// tends to trigger exactly at the k-th, final, visit).
  uint8_t deltas_done = 0;
};

/// Escalation gate to the counted tier: at least this many delta
/// evaluations already performed...
constexpr uint8_t kAccDeltaThreshold = 2;
/// ...and a selection collapsed below 1/kAccBuildFraction of the
/// universe, so the counter-array build premium is negligible.
constexpr size_t kAccBuildFraction = 8;

/// Snapshot-tier cost asymmetry: a probe retraction pays an early-exit
/// row scan per touched column where a recompute pays a bit write per
/// entry, so probing is only chosen for deltas this many times smaller
/// than the full evaluation (counted-tier decrements are O(1) per column
/// and keep the plain removed-vs-full comparison).
constexpr size_t kProbePenalty = 8;

/// SolverOptions::KernelMode → the per-set representation policy.
util::CandidateSet::Policy PolicyFor(SolverOptions::KernelMode mode) {
  switch (mode) {
    case SolverOptions::KernelMode::kDense:
      return util::CandidateSet::Policy::kDense;
    case SolverOptions::KernelMode::kCompressed:
      return util::CandidateSet::Policy::kCompressed;
    case SolverOptions::KernelMode::kAuto:
      break;
  }
  return util::CandidateSet::Policy::kAuto;
}

/// What one inequality's shard tasks need from its plan step, beyond the
/// EvalKind tag: which matrices to read, which chi set is the selection,
/// and which incremental tier (if any) performs the data work. Written by
/// plan(k), read by every shard_eval(k, s) of the same round.
struct SlotPlan {
  const util::BitMatrix* a = nullptr;
  const util::BitMatrix* a_t = nullptr;
  IneqState* st = nullptr;
  uint32_t rhs = 0;
  /// kDelta data work: 0 = none (bookkeeping-only sync), 1 = counted
  /// retraction, 2 = snapshot probe, 3 = accumulator rebuild.
  uint8_t delta_tier = 0;
  /// Selection was materialized into the slot's flat view (compressed
  /// chi(rhs), where per-shard Test/walk would re-scan the run stream).
  bool use_view = false;
  /// kRow under incremental_eval: copy the finished mask into the
  /// snapshot-tier product after the shard barrier.
  bool refresh_product = false;
};

/// fn(position) for every set bit of v in [begin, end); `begin` must be
/// word-aligned and `end` word-aligned or == v.size(), so shard tasks may
/// walk (and Reset bits in) disjoint ranges of one vector concurrently.
template <typename Fn>
void ForEachSetBitInRange(const util::BitVector& v, size_t begin, size_t end,
                          Fn&& fn) {
  const uint64_t* words = v.words();
  const size_t word_begin = begin / util::BitVector::kWordBits;
  const size_t word_end =
      (end + util::BitVector::kWordBits - 1) / util::BitVector::kWordBits;
  for (size_t w = word_begin; w < word_end; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      fn(static_cast<uint32_t>(w * util::BitVector::kWordBits + bit));
    }
  }
}

}  // namespace

/// Carried incremental state: the per-inequality tier vector of the last
/// converged solve plus the shard shape it was built under (accumulator
/// count lanes are wide iff the solve sharded, so a shard-shape change
/// invalidates the whole carry).
struct IncrementalCarry::Impl {
  std::vector<IneqState> states;
  size_t shards = 1;
};

IncrementalCarry::IncrementalCarry() = default;
IncrementalCarry::~IncrementalCarry() = default;
IncrementalCarry::IncrementalCarry(IncrementalCarry&&) noexcept = default;
IncrementalCarry& IncrementalCarry::operator=(IncrementalCarry&&) noexcept =
    default;

void IncrementalCarry::Clear() { impl_.reset(); }

size_t IncrementalCarry::LiveEntries() const {
  if (impl_ == nullptr) return 0;
  size_t live = 0;
  for (const IneqState& st : impl_->states) {
    if (st.product_valid || st.acc_valid) ++live;
  }
  return live;
}

/// The recyclable workspace behind sim::SolveScratch (class comment in
/// solver.h). Everything here is a buffer SolveSoiWarm historically
/// allocated per call; the prepare step at the top of the solve reshapes
/// them in place — growing, never shrinking, so spare width keeps serving
/// the rest of a mixed query workload — and `prepared`/`universe` key
/// whether the next solve recycles wholesale.
struct SolveScratch::Impl {
  bool prepared = false;
  size_t universe = 0;
  /// Payload footprint of the recyclable bit-vector buffers as of the last
  /// solve; credited to SolveStats::bytes_recycled on reuse.
  size_t payload_bytes = 0;

  std::vector<util::CandidateSet> chi;
  std::vector<size_t> counts;
  std::vector<std::vector<uint32_t>> dependents;
  std::vector<uint32_t> order;
  Work work;
  /// Incremental state for carry-less solves only. A solve threaded
  /// through an IncrementalCarry keeps its IneqStates in a solve-local
  /// vector instead (the carry-ownership rule): the carry deposit moves
  /// that vector out, so recycling this scratch can never dangle buffers
  /// under a carry that outlives it.
  std::vector<IneqState> ineq_state;

  /// Per-round slot vectors, lazily grown to the widest round seen.
  /// Recycled entries hold stale content by design: every slot a round
  /// reads is fully written first (plans/kinds/rebuilt per slot in the
  /// plan step; masks/views/gone overwritten whole by MaterializeInto,
  /// copy-assign, or the write-what-you-clear MultiplyRange; cleared_ks
  /// zeroed in the plan step for kDelta slots).
  std::vector<util::BitVector> masks;
  std::vector<EvalKind> kinds;
  std::vector<const util::BitVector*> mask_ptrs;
  std::vector<size_t> cleared;
  std::vector<uint8_t> rebuilt;
  std::vector<SlotPlan> plans;
  std::vector<util::BitVector> views;
  std::vector<util::BitVector> gone;
  std::vector<size_t> cleared_ks;
};

SolveScratch::SolveScratch() : impl_(std::make_unique<Impl>()) {}
SolveScratch::~SolveScratch() = default;
SolveScratch::SolveScratch(SolveScratch&&) noexcept = default;
SolveScratch& SolveScratch::operator=(SolveScratch&&) noexcept = default;

std::unique_ptr<SolveScratch> ScratchPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<SolveScratch> scratch = std::move(idle_.back());
      idle_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<SolveScratch>();
}

void ScratchPool::Release(std::unique_ptr<SolveScratch> scratch) {
  if (scratch == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.size() < kMaxIdle) idle_.push_back(std::move(scratch));
  // else: drop — the pool bounds idle workspaces, not in-flight ones.
}

void ScratchPool::Record(const SolveStats& stats) {
  reuses_.fetch_add(stats.scratch_reuses, std::memory_order_relaxed);
  allocs_.fetch_add(stats.scratch_allocs, std::memory_order_relaxed);
  bytes_recycled_.fetch_add(stats.bytes_recycled, std::memory_order_relaxed);
  words_cleared_.fetch_add(stats.words_cleared_sparse,
                           std::memory_order_relaxed);
}

ScratchPool::Stats ScratchPool::stats() const {
  Stats out;
  out.reuses = reuses_.load(std::memory_order_relaxed);
  out.allocs = allocs_.load(std::memory_order_relaxed);
  out.bytes_recycled = bytes_recycled_.load(std::memory_order_relaxed);
  out.words_cleared_sparse = words_cleared_.load(std::memory_order_relaxed);
  return out;
}

bool SolverOptions::EffectiveReuseScratch() const {
  // Parsed once per process, like SPARQLSIM_FORCE_SHARDS: the env override
  // lets CI re-run whole suites with recycling force-disabled (the
  // differential oracle configuration) without touching any options.
  static const bool env_disabled = [] {
    const char* env = std::getenv("SPARQLSIM_NO_SCRATCH");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return reuse_scratch && !env_disabled;
}

size_t SolverOptions::ResolvedShards(size_t num_columns) const {
  size_t shards = num_shards;
  if (shards == 0) {
    // Default comes from the environment override (CI's shard-determinism
    // leg re-runs existing suites under SPARQLSIM_FORCE_SHARDS=3), parsed
    // once; explicit num_shards values are never overridden, so
    // differential configs stay exact.
    static const size_t forced = [] {
      const char* env = std::getenv("SPARQLSIM_FORCE_SHARDS");
      if (env == nullptr || *env == '\0') return size_t{1};
      char* end = nullptr;
      const unsigned long long value = std::strtoull(env, &end, 10);
      if (end == env || *end != '\0' || value == 0) return size_t{1};
      return static_cast<size_t>(value);
    }();
    shards = forced;
  }
  const size_t words =
      (num_columns + util::BitVector::kWordBits - 1) / util::BitVector::kWordBits;
  return std::max<size_t>(1, std::min(shards, std::max<size_t>(1, words)));
}

std::vector<std::pair<uint32_t, uint32_t>> MakeShardPlan(size_t num_columns,
                                                         size_t num_shards) {
  const size_t words =
      (num_columns + util::BitVector::kWordBits - 1) / util::BitVector::kWordBits;
  const size_t shards =
      std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, words)));
  std::vector<std::pair<uint32_t, uint32_t>> plan;
  plan.reserve(shards);
  size_t word_begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t count = words / shards + (s < words % shards ? 1 : 0);
    const size_t begin = word_begin * util::BitVector::kWordBits;
    const size_t end = std::min(
        num_columns, (word_begin + count) * util::BitVector::kWordBits);
    plan.emplace_back(static_cast<uint32_t>(begin),
                      static_cast<uint32_t>(end));
    word_begin += count;
  }
  return plan;
}

void SolveStats::Accumulate(const SolveStats& other) {
  rounds += other.rounds;
  evaluations += other.evaluations;
  updates += other.updates;
  row_evals += other.row_evals;
  col_evals += other.col_evals;
  solve_seconds += other.solve_seconds;
  delta_evals += other.delta_evals;
  full_evals += other.full_evals;
  acc_rebuilds += other.acc_rebuilds;
  cols_cleared += other.cols_cleared;
  blocks_skipped += other.blocks_skipped;
  compressed_ops += other.compressed_ops;
  repr_compressions += other.repr_compressions;
  repr_decompressions += other.repr_decompressions;
  parallel_rounds += other.parallel_rounds;
  max_round_width = std::max(max_round_width, other.max_round_width);
  threads_used = std::max(threads_used, other.threads_used);
  shards_used = std::max(shards_used, other.shards_used);
  scratch_reuses += other.scratch_reuses;
  scratch_allocs += other.scratch_allocs;
  bytes_recycled += other.bytes_recycled;
  words_cleared_sparse += other.words_cleared_sparse;
}

bool Solution::AnyCandidate() const {
  for (const util::BitVector& c : candidates) {
    if (c.Any()) return true;
  }
  return false;
}

size_t Solution::RelationSize() const {
  size_t total = 0;
  for (const util::BitVector& c : candidates) total += c.Count();
  return total;
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial) {
  std::unique_ptr<util::ThreadPool> transient;
  if (options.ResolvedThreads() > 1) {
    transient = std::make_unique<util::ThreadPool>(options.ResolvedThreads());
  }
  return SolveSoi(soi, db, options, initial, transient.get());
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial,
                  util::ThreadPool* pool, const SolveControl* control) {
  return SolveSoiWarm(soi, db, options, initial, pool, control,
                      /*warm=*/nullptr);
}

Solution SolveSoiWarm(const Soi& soi, const graph::GraphDatabase& db,
                      const SolverOptions& options,
                      const std::vector<util::BitVector>* initial,
                      util::ThreadPool* pool, const SolveControl* control,
                      const WarmStart* warm, SolveScratch* scratch) {
  util::Stopwatch timer;
  // Every solver entry point funnels through here: one residency pin keeps
  // lazily-materialized matrix slabs resident (out-of-core tier) for the
  // whole fixpoint. Free for in-memory databases.
  graph::ResidencyPin residency_pin = db.PinResidency();
  const size_t n = db.NumNodes();
  const size_t num_vars = soi.NumVars();
  const size_t num_matrix = soi.matrix_ineqs.size();
  const size_t num_ineqs = num_matrix + soi.sub_ineqs.size();

  Solution solution;
  SolveStats& stats = solution.stats;
  // Empty slots only: every candidate vector is copied out of chi at the
  // end of the solve, so allocating dense vectors here would be wasted.
  solution.candidates.resize(num_vars);

  // --- Workspace: the caller's recyclable scratch, or a transient one. ---
  // Either way the solve runs on the same Impl through one code path, so
  // pooled and unpooled solves are bit-identical by construction; they
  // differ only in where the buffers came from. A scratch prepared for the
  // same node universe recycles wholesale; anything else (first use,
  // universe change, a query shape wider than the scratch has seen —
  // tracked via `grew`) reshapes in place and counts a scratch_alloc.
  std::unique_ptr<SolveScratch> transient_scratch;
  if (scratch == nullptr) {
    transient_scratch = std::make_unique<SolveScratch>();
    scratch = transient_scratch.get();
  }
  SolveScratch::Impl& S = *scratch->impl_;
  const bool recycled = S.prepared && S.universe == n;
  bool grew = false;

  // Candidate sets live behind the CandidateSet representation switch for
  // the whole fixpoint: hierarchical-dense (zero-block skipping over the
  // SIMD word kernels) or GAP/RLE-compressed per the kernel mode, with
  // kAuto compressing sets as they collapse. Recycled sets are reset to
  // fresh-constructed state (ResetForReuse is observationally a fresh
  // ctor); flat vectors are copied into the Solution at the end.
  const util::CandidateSet::Policy policy = PolicyFor(options.kernel_mode);
  std::vector<util::CandidateSet>& chi = S.chi;
  const size_t chi_ready = std::min(chi.size(), num_vars);
  for (size_t v = 0; v < chi_ready; ++v) chi[v].ResetForReuse(n, policy);
  if (chi.size() < num_vars) {
    grew = true;
    chi.reserve(num_vars);
    while (chi.size() < num_vars) chi.emplace_back(n, policy);
  }
  S.counts.assign(num_vars, 0);
  std::vector<size_t>& counts = S.counts;

  // --- Initialization: Eq. (12) or Eq. (13), constants per Sect. 4.5. ---
  for (size_t v = 0; v < num_vars; ++v) {
    if (soi.unsatisfiable_vars[v]) continue;  // stays empty
    if (initial != nullptr) {
      chi[v].ResetTo((*initial)[v], policy);
      if (soi.constants[v]) {
        util::BitVector pin(n);
        pin.Set(*soi.constants[v]);
        chi[v].AndWith(pin);
      }
      continue;
    }
    if (soi.constants[v]) {
      chi[v].Set(*soi.constants[v]);
    } else {
      chi[v].SetAll();
    }
  }
  if (options.summary_init) {
    for (const Soi::Edge& e : soi.edges) {
      if (e.predicate == kEmptyPredicate) {
        chi[e.subject_var].ClearAll();
        chi[e.object_var].ClearAll();
        continue;
      }
      chi[e.subject_var].AndWith(db.ForwardSummary(e.predicate));
      chi[e.object_var].AndWith(db.BackwardSummary(e.predicate));
    }
  }
  for (size_t v = 0; v < num_vars; ++v) counts[v] = chi[v].Count();

  // --- Dependency index: ineqs whose right-hand side reads var v. ---
  // Recycled adjacency lists keep their per-slot capacity across solves.
  if (S.dependents.size() < num_vars) S.dependents.resize(num_vars);
  for (size_t v = 0; v < num_vars; ++v) S.dependents[v].clear();
  std::vector<std::vector<uint32_t>>& dependents = S.dependents;
  for (size_t i = 0; i < num_matrix; ++i) {
    dependents[soi.matrix_ineqs[i].rhs].push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < soi.sub_ineqs.size(); ++i) {
    dependents[soi.sub_ineqs[i].rhs].push_back(
        static_cast<uint32_t>(num_matrix + i));
  }

  // --- Initial worklist order (sparsity heuristic, Sect. 3.3). ---
  S.order.resize(num_ineqs);
  std::vector<uint32_t>& order = S.order;
  std::iota(order.begin(), order.end(), 0);
  if (options.order_by_sparsity) {
    auto key = [&](uint32_t idx) -> size_t {
      if (idx >= num_matrix) return SIZE_MAX;  // subordinations last
      const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
      if (m.predicate == kEmptyPredicate) return 0;
      // More empty columns in A first. The counts are precomputed per
      // predicate at database build time; ascending (cols - empty) is the
      // same order as the descending empty-column sort of Sect. 3.3.
      return n - (m.forward ? db.EmptyForwardColumns(m.predicate)
                            : db.EmptyBackwardColumns(m.predicate));
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
  }

  Work& work = S.work;
  work.current = order;
  work.next.clear();
  // Warm start (sim::StandingQuery): seed the first round with the armed
  // subset only — in sparsity order, like a full first round would be.
  // Unarmed inequalities hold at `initial` by the WarmStart contract and
  // re-activate through `dependents` if an input of theirs later shrinks.
  if (warm != nullptr && warm->armed != nullptr) {
    std::erase_if(work.current,
                  [&](uint32_t idx) { return !(*warm->armed)[idx]; });
  }
  work.queued.Resize(num_ineqs);
  work.queued.ClearAll();

  // Per-matrix-inequality incremental state (accumulator + selection
  // snapshot); see IneqState. Allocated once, lazily populated — or
  // adopted from a WarmStart carry, minus the entries the caller declared
  // stale, so retractions resume from products synchronized during the
  // previous converged solve of this Soi.
  //
  // Carry-ownership rule: a solve that may deposit its states into an
  // IncrementalCarry works on a solve-local vector (`owned_states`), never
  // the scratch's slots — the deposit moves the vector out, and a carry
  // holding pointers into pooled scratch would dangle the moment the
  // scratch is recycled by another query. Only carry-free incremental
  // solves run on S.ineq_state; their recycled entries get every validity
  // flag reset so stale accumulators/snapshots are rebuilt before first
  // read (the retained buffers are what makes the reuse pay).
  IncrementalCarry* carry =
      warm != nullptr && options.incremental_eval ? warm->carry : nullptr;
  std::vector<IneqState> owned_states;
  if (carry != nullptr) {
    owned_states.resize(num_matrix);
  } else if (options.incremental_eval) {
    if (S.ineq_state.size() < num_matrix) {
      grew = true;
      S.ineq_state.resize(num_matrix);
    }
    for (size_t i = 0; i < num_matrix; ++i) {
      IneqState& st = S.ineq_state[i];
      st.last_count = 0;
      st.product_valid = false;
      st.acc_valid = false;
      st.deltas_done = 0;
    }
  }
  std::vector<IneqState>& inc_state =
      (carry != nullptr || !options.incremental_eval) ? owned_states
                                                      : S.ineq_state;
  if (warm != nullptr && warm->carry != nullptr && carry == nullptr) {
    // incremental_eval off: whatever the carry holds is from a different
    // configuration and must not survive into a later incremental solve.
    warm->carry->Clear();
  }

  // --- Column-shard plan (SolverOptions::num_shards). --------------------
  // The universe is cut into contiguous word-aligned ranges; each round's
  // data work fans out as one task per (inequality, shard), every task
  // writing only its range's words of the shared slots. The *decision*
  // logic — eval kinds, cost rules, incremental-tier transitions — runs
  // once per inequality in the plan step regardless of the partition, so
  // trajectories are bit-identical for any shard count, 1 included (a
  // 1-shard plan is a single full-universe range through the same code).
  const std::vector<std::pair<uint32_t, uint32_t>> shard_plan =
      MakeShardPlan(n, options.ResolvedShards(n));
  const size_t num_shards = shard_plan.size();

  if (carry != nullptr && carry->impl_ != nullptr) {
    IncrementalCarry::Impl& held = *carry->impl_;
    if (held.states.size() == num_matrix && held.shards == num_shards) {
      inc_state = std::move(held.states);
      if (warm->carry_invalid != nullptr) {
        for (size_t i = 0; i < num_matrix; ++i) {
          if ((*warm->carry_invalid)[i]) inc_state[i] = IneqState{};
        }
      }
    }
    // Moved-from or shape-mismatched state must not be adopted twice.
    carry->impl_.reset();
  }

  // Per-inequality result slots, reused across rounds. chi and counts are
  // frozen during the evaluation phase — every mask is a pure function of
  // the round-start assignment — so the phase parallelizes with no
  // synchronization beyond the end-of-round barrier, and the sequential
  // merge below replays the slots in worklist order for a scheduling-
  // independent outcome. `mask_ptrs[k]` designates the mask the merge
  // applies: the slot's own `masks[k]`, or the owning inequality's
  // accumulator product (stable storage in `inc_state`, untouched during
  // the merge).
  // The slot arrays live in the scratch and keep whatever stale content
  // the previous solve left: every round's plan step rewrites kinds[k],
  // plans[k], and rebuilt[k] for each live slot before anything reads
  // them, mask_ptrs[k] is only dereferenced for kinds that just wrote it,
  // and the mask/view/gone payloads are fully overwritten by the kernels
  // that claim them (MultiplyRange zeroes the words it is about to write;
  // MaterializeInto and copy-assign overwrite wholesale).
  std::vector<util::BitVector>& masks = S.masks;
  std::vector<EvalKind>& kinds = S.kinds;
  std::vector<const util::BitVector*>& mask_ptrs = S.mask_ptrs;
  std::vector<size_t>& cleared = S.cleared;  // kDelta-retraction clears
  std::vector<uint8_t>& rebuilt = S.rebuilt;  // slot rebuilt an accumulator
  std::vector<SlotPlan>& plans = S.plans;
  std::vector<util::BitVector>& views = S.views;  // flat compressed chi(rhs)
  std::vector<util::BitVector>& gone = S.gone;  // rows gone from chi(rhs)
  std::vector<size_t>& cleared_ks = S.cleared_ks;  // (slot, shard) clears

  auto on_change = [&](uint32_t var) {
    counts[var] = chi[var].Count();
    for (uint32_t dep : dependents[var]) {
      if (!work.queued.Test(dep)) {
        work.queued.Set(dep);
        work.next.push_back(dep);
      }
    }
  };

  // --- Plan step: one task per inequality. --------------------------------
  // Replays the per-inequality decision logic exactly as the fused
  // evaluator did (same tags, same counter splits, same incremental-state
  // evolution), but defers all column-proportional data work to the shard
  // tasks below. Mutates only slot k and the one IneqState this inequality
  // owns this round, so plan tasks parallelize like evaluations always did.
  auto plan = [&](size_t k) {
    rebuilt[k] = 0;
    plans[k] = SlotPlan{};
    SlotPlan& sp = plans[k];
    const uint32_t idx = work.current[k];
    if (idx >= num_matrix) {
      const Soi::SubIneq& s = soi.sub_ineqs[idx - num_matrix];
      kinds[k] = EvalKind::kSub;
      chi[s.rhs].MaterializeInto(&masks[k]);
      mask_ptrs[k] = &masks[k];
      return;
    }

    const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
    if (counts[m.lhs] == 0) {  // cannot shrink further
      kinds[k] = EvalKind::kSkip;
      return;
    }
    if (m.predicate == kEmptyPredicate || counts[m.rhs] == 0) {
      kinds[k] = EvalKind::kClear;
      return;
    }

    const util::BitMatrix& a =
        m.forward ? db.Forward(m.predicate) : db.Backward(m.predicate);
    const util::BitMatrix& a_t =
        m.forward ? db.Backward(m.predicate) : db.Forward(m.predicate);
    sp.a = &a;
    sp.a_t = &a_t;
    sp.rhs = m.rhs;

    bool row_wise = true;
    switch (options.eval_mode) {
      case SolverOptions::EvalMode::kRowWise:
        row_wise = true;
        break;
      case SolverOptions::EvalMode::kColumnWise:
        row_wise = false;
        break;
      case SolverOptions::EvalMode::kDynamic:
        // Paper's rule: row-wise iff chi(rhs) has fewer bits than chi(lhs).
        row_wise = counts[m.rhs] < counts[m.lhs];
        break;
    }

    // A compressed selection would make every shard re-scan the run
    // stream (Test probes and wide-branch walks); flatten it once here
    // instead, under the same conditions the fused kernels flattened.
    auto prepare_view = [&](bool needed) {
      if (needed && chi[m.rhs].compressed()) {
        chi[m.rhs].MaterializeInto(&views[k]);
        sp.use_view = true;
      }
    };

    if (options.incremental_eval) {
      IneqState& st = inc_state[idx];
      sp.st = &st;

      // Cost rule, same flavor as the row/column dynamic rule: retract
      // iff the rows removed since the sync point are fewer than what the
      // chosen full strategy would touch. The monotone shrink makes the
      // removal count an exact count difference — no set difference is
      // needed to *decide*.
      if (st.acc_valid || st.product_valid) {
        const size_t removed = st.last_count - counts[m.rhs];
        const size_t full_cost = row_wise ? counts[m.rhs] : counts[m.lhs];
        // Which tier (if any) evaluates this delta: the counted tier
        // whenever its counts are live; otherwise escalate from the
        // snapshot tier when the inequality keeps iterating on a
        // collapsed selection; otherwise probe — but only for deltas
        // small enough to beat recomputation despite the probe premium.
        const bool counted_ok = st.acc_valid && removed < full_cost;
        const bool escalate_ok = !st.acc_valid && removed < full_cost &&
                                 st.deltas_done >= kAccDeltaThreshold &&
                                 counts[m.rhs] * kAccBuildFraction < n;
        const bool probe_ok =
            !st.acc_valid && !escalate_ok && removed * kProbePenalty < full_cost;
        if (counted_ok || escalate_ok || probe_ok) {
          kinds[k] = EvalKind::kDelta;
          for (size_t s = 0; s < num_shards; ++s) {
            cleared_ks[k * num_shards + s] = 0;
          }
          if (st.deltas_done < kAccDeltaThreshold) ++st.deltas_done;
          if (escalate_ok) {
            // Build the cover counts on the current (collapsed)
            // selection; the build subsumes this retraction and makes
            // every later one O(1) per column. The serial half
            // (PrepareRebuild) runs here; the fill is sharded. Multi-shard
            // rebuilds pin the wide count lanes — see PrepareRebuild.
            rebuilt[k] = 1;
            sp.delta_tier = 3;
            st.acc.PrepareRebuild(a.cols(), /*force_wide=*/num_shards > 1);
            prepare_view(true);
            st.acc_valid = true;
            st.product_valid = false;
          } else if (removed != 0) {
            gone[k] = st.last_rhs;
            chi[m.rhs].ClearBitsIn(&gone[k]);
            if (st.acc_valid) {
              sp.delta_tier = 1;
            } else {
              // Snapshot tier: only columns of removed rows can leave the
              // product; each is re-checked with one early-exit cover
              // probe in the shard tasks. Probes hit Test() per
              // neighbour, a stream scan on a compressed set, so pay one
              // O(n/64) materialization up front instead.
              sp.delta_tier = 2;
              prepare_view(true);
            }
          }
          if (removed != 0 || rebuilt[k]) {
            chi[m.rhs].MaterializeInto(&st.last_rhs);
            st.last_count = counts[m.rhs];
          }
          // Either tier's product equals chi(rhs) *b A exactly — the same
          // mask a full kRow evaluation would produce.
          mask_ptrs[k] = st.acc_valid ? &st.acc.result() : &st.product;
          return;
        }
      }

      if (row_wise) {
        // Full product; the snapshot tier is refreshed from the finished
        // mask after the shard barrier (refresh_product) so the next
        // visit can retract. The copies are a negligible premium over
        // the Multiply itself, and a stale counted tier is dropped (its
        // counts no longer match any snapshot we keep).
        kinds[k] = EvalKind::kRow;
        masks[k].Resize(n);
        prepare_view(counts[m.rhs] * 8 >= a.NonEmptyRows().size());
        sp.refresh_product = true;
        chi[m.rhs].MaterializeInto(&st.last_rhs);
        st.last_count = counts[m.rhs];
        st.product_valid = true;
        st.acc_valid = false;
        mask_ptrs[k] = &masks[k];
        return;
      }
    }

    if (row_wise) {
      kinds[k] = EvalKind::kRow;
      masks[k].Resize(n);
      // Same flatten rule as BitMatrix::Multiply's CandidateSet overload:
      // only the wide branch probes Test per non-empty row.
      prepare_view(counts[m.rhs] * 8 >= a.NonEmptyRows().size());
      mask_ptrs[k] = &masks[k];
    } else {
      kinds[k] = EvalKind::kCol;
      // Keep candidate j of lhs iff column j of A intersects chi(rhs);
      // column j of A is row j of A^T.
      chi[m.lhs].MaterializeInto(&masks[k]);
      prepare_view(true);
      mask_ptrs[k] = &masks[k];
    }
  };

  // --- Data step: one task per (inequality, shard). -----------------------
  // Pure column-range-restricted data work, driven entirely by the plan:
  // each task reads round-start state plus its slot's plan and writes only
  // its own words of the slot's mask / the owning accumulator / the
  // snapshot product, plus its own cleared_ks counter — disjoint memory
  // across shards, no synchronization beyond the phase barrier.
  auto shard_eval = [&](size_t k, size_t s) {
    const auto [range_begin, range_end] = shard_plan[s];
    const SlotPlan& sp = plans[k];
    switch (kinds[k]) {
      case EvalKind::kRow:
        if (sp.use_view) {
          sp.a->MultiplyRange(views[k], range_begin, range_end, &masks[k]);
        } else {
          sp.a->MultiplyRange(chi[sp.rhs], range_begin, range_end, &masks[k]);
        }
        break;
      case EvalKind::kCol:
        ForEachSetBitInRange(masks[k], range_begin, range_end, [&](uint32_t j) {
          const bool covered =
              sp.use_view ? sp.a_t->RowIntersectsAny(j, views[k])
                          : sp.a_t->RowIntersectsAny(j, chi[sp.rhs]);
          if (!covered) masks[k].Reset(j);
        });
        break;
      case EvalKind::kDelta: {
        IneqState& st = *sp.st;
        if (sp.delta_tier == 3) {
          if (sp.use_view) {
            st.acc.RebuildRange(*sp.a, views[k], range_begin, range_end);
          } else {
            st.acc.RebuildRange(*sp.a, chi[sp.rhs], range_begin, range_end);
          }
        } else if (sp.delta_tier == 1) {
          cleared_ks[k * num_shards + s] =
              st.acc.RetractRange(*sp.a, gone[k], range_begin, range_end);
        } else if (sp.delta_tier == 2) {
          size_t probe_cleared = 0;
          gone[k].ForEachSetBit([&](uint32_t r) {
            const auto row = sp.a->Row(r);
            auto it = std::lower_bound(row.begin(), row.end(),
                                       static_cast<uint32_t>(range_begin));
            for (; it != row.end() && *it < range_end; ++it) {
              const uint32_t c = *it;
              if (st.product.Test(c) &&
                  !(sp.use_view ? sp.a_t->RowIntersectsAny(c, views[k])
                                : sp.a_t->RowIntersectsAny(c, chi[sp.rhs]))) {
                st.product.Reset(c);
                ++probe_cleared;
              }
            }
          });
          cleared_ks[k * num_shards + s] = probe_cleared;
        }
        break;
      }
      case EvalKind::kSkip:
      case EvalKind::kClear:
      case EvalKind::kSub:
        break;  // no data phase
    }
  };

  stats.threads_used = pool != nullptr ? pool->NumThreads() : 1;
  stats.shards_used = num_shards;
  while (!work.current.empty()) {
    if (options.max_rounds != 0 && stats.rounds >= options.max_rounds) {
      solution.truncated = true;
      break;
    }
    // Cooperative cancellation/deadline check, once per round: a truncated
    // fixpoint stops between rounds, so the exported candidates are a
    // sound over-approximation of the true solution (supersets).
    if (control != nullptr && control->Expired()) {
      solution.truncated = true;
      break;
    }
    ++stats.rounds;
    const size_t width = work.current.size();
    stats.max_round_width = std::max(stats.max_round_width, width);
    if (masks.size() < width) {
      grew = true;
      masks.resize(width);
      kinds.resize(width);
      mask_ptrs.resize(width);
      cleared.resize(width);
      rebuilt.resize(width);
      plans.resize(width);
      views.resize(width);
      gone.resize(width);
    }
    if (cleared_ks.size() < width * num_shards) {
      grew = true;
      cleared_ks.resize(width * num_shards);
    }

    // Evaluation phase: chi/counts are read-only until the barrier.
    if (pool == nullptr || width * num_shards <= 1) {
      for (size_t k = 0; k < width; ++k) {
        plan(k);
        for (size_t s = 0; s < num_shards; ++s) shard_eval(k, s);
      }
    } else if (num_shards == 1) {
      // Unsharded pooled rounds keep the historical one-barrier shape:
      // plan and data work fused per inequality.
      if (width > 1) ++stats.parallel_rounds;
      util::ParallelFor(pool, width, [&](size_t k) {
        plan(k);
        shard_eval(k, 0);
      });
    } else {
      // Sharded rounds: plan per inequality, then fan the data work out
      // as width x shards range tasks. Each phase writes per-task-disjoint
      // memory; the second phase additionally splits along columns.
      if (width > 1) ++stats.parallel_rounds;
      util::ParallelFor(pool, width, plan);
      util::ParallelFor(pool, width * num_shards, [&](size_t t) {
        shard_eval(t / num_shards, t % num_shards);
      });
    }

    // Merge phase, single-threaded, in worklist order.
    for (size_t k = 0; k < width; ++k) {
      ++stats.evaluations;
      if (kinds[k] == EvalKind::kRow && plans[k].refresh_product) {
        plans[k].st->product = masks[k];
      }
      if (kinds[k] == EvalKind::kDelta) {
        cleared[k] = 0;
        for (size_t s = 0; s < num_shards; ++s) {
          cleared[k] += cleared_ks[k * num_shards + s];
        }
      }
      const uint32_t idx = work.current[k];
      const uint32_t lhs = idx >= num_matrix
                               ? soi.sub_ineqs[idx - num_matrix].lhs
                               : soi.matrix_ineqs[idx].lhs;
      bool changed = false;
      switch (kinds[k]) {
        case EvalKind::kSkip:
          ++stats.full_evals;
          continue;
        case EvalKind::kClear:
          ++stats.full_evals;
          changed = chi[lhs].Any();
          if (changed) chi[lhs].ClearAll();
          break;
        case EvalKind::kRow:
          ++stats.full_evals;
          ++stats.row_evals;
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
        case EvalKind::kCol:
          ++stats.full_evals;
          ++stats.col_evals;
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
        case EvalKind::kSub:
          ++stats.full_evals;
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
        case EvalKind::kDelta:
          ++stats.delta_evals;
          stats.acc_rebuilds += rebuilt[k];
          stats.cols_cleared += cleared[k];
          changed = chi[lhs].AndWith(*mask_ptrs[k]);
          break;
      }
      if (changed) {
        ++stats.updates;
        on_change(lhs);
      }
    }

    work.current.clear();
    std::swap(work.current, work.next);
    work.queued.ClearAll();
  }

  // Deposit the incremental state for the next warm solve of this Soi —
  // but only from a converged run: a truncated run's products are
  // synchronized to selections that are not a fixpoint, and the carry's
  // validity reasoning (monotone shrink from the deposited state) starts
  // from convergence.
  if (carry != nullptr && !solution.truncated) {
    carry->impl_ = std::make_unique<IncrementalCarry::Impl>();
    carry->impl_->states = std::move(inc_state);
    carry->impl_->shards = num_shards;
  }

  // Export the flat candidate vectors; harvest the representation-layer
  // counters first. MaterializeInto (not TakeBits) so chi keeps its
  // summary/run structure for the next solve on this scratch.
  for (size_t v = 0; v < num_vars; ++v) {
    const util::CandidateSet::ReprStats repr = chi[v].TakeStats();
    stats.blocks_skipped += repr.blocks_skipped;
    stats.compressed_ops += repr.compressed_ops;
    stats.repr_compressions += repr.compressions;
    stats.repr_decompressions += repr.decompressions;
    stats.words_cleared_sparse += repr.words_cleared;
    chi[v].MaterializeInto(&solution.candidates[v]);
  }

  // Scratch accounting, stamped at solve end so slot growth during the
  // rounds (a query shape wider than this scratch had seen) demotes the
  // checkout from a reuse to an alloc. bytes_recycled credits the payload
  // the scratch held at checkout, so stamp before recomputing it.
  if (recycled && !grew) {
    stats.scratch_reuses = 1;
    stats.bytes_recycled = S.payload_bytes;
  } else {
    stats.scratch_allocs = 1;
  }
  size_t payload = work.queued.WordCount() * sizeof(uint64_t);
  for (const util::CandidateSet& c : chi) payload += c.PayloadBytes();
  for (const util::BitVector& m : masks) {
    payload += m.WordCount() * sizeof(uint64_t);
  }
  for (const util::BitVector& v : views) {
    payload += v.WordCount() * sizeof(uint64_t);
  }
  for (const util::BitVector& g : gone) {
    payload += g.WordCount() * sizeof(uint64_t);
  }
  for (const IneqState& st : S.ineq_state) {
    payload +=
        (st.product.WordCount() + st.last_rhs.WordCount()) * sizeof(uint64_t);
  }
  S.payload_bytes = payload;
  S.universe = n;
  S.prepared = true;

  stats.solve_seconds = timer.ElapsedSeconds();
  return solution;
}

}  // namespace sparqlsim::sim
