#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// An HHK-style dual simulation algorithm (Henzinger, Henzinger, Kopke
/// [17]) adapted to the labeled pattern-vs-data graph query setting, as
/// analysed in Sect. 3.3 of the paper.
///
/// The distinguishing feature of the HHK family is removal bookkeeping
/// that makes the total work proportional to the data edges touched rather
/// than to the number of sweeps. We realize it with the standard counter
/// formulation: for every pattern edge e = (v, a, w) and every data node x,
///
///   cnt_fwd[e][x] = |F_a(x)  intersect  sim(w)|
///   cnt_bwd[e][y] = |B_a(y)  intersect  sim(v)|
///
/// A node is disqualified exactly when one of its counters hits zero, and
/// every disqualification decrements the counters of its data-graph
/// neighbours — each data edge is charged O(1) times per pattern edge,
/// giving the O(|E1| * |E2|) bound discussed in the paper (specialized
/// per-label, the O(|Sigma(G1)| * |V2|^2) form).
///
/// Returns the unique largest dual simulation; stats.evaluations counts
/// queue pops (node disqualifications).
Solution HhkDualSimulation(
    const graph::Graph& pattern, const graph::GraphDatabase& db,
    const std::vector<std::optional<uint32_t>>& constants = {});

}  // namespace sparqlsim::sim
