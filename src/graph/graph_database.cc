#include "graph/graph_database.h"

#include <atomic>
#include <utility>

#include "util/gap_codec.h"

namespace sparqlsim::graph {

GraphDatabaseBuilder::GraphDatabaseBuilder()
    : nodes_(std::make_shared<Dictionary>()),
      predicates_(std::make_shared<Dictionary>()),
      is_literal_(std::make_shared<std::vector<bool>>()) {}

uint32_t GraphDatabaseBuilder::InternNode(std::string_view name) {
  uint32_t id = nodes_->Intern(name);
  if (id >= is_literal_->size()) is_literal_->resize(id + 1, false);
  return id;
}

uint32_t GraphDatabaseBuilder::InternLiteral(std::string_view value) {
  uint32_t id = nodes_->Intern(value);
  if (id >= is_literal_->size()) {
    is_literal_->resize(id + 1, false);
    (*is_literal_)[id] = true;
  }
  return id;
}

uint32_t GraphDatabaseBuilder::InternPredicate(std::string_view name) {
  return predicates_->Intern(name);
}

util::Status GraphDatabaseBuilder::AddTriple(std::string_view s,
                                             std::string_view p,
                                             std::string_view o) {
  // Intern in subject-predicate-object order so id assignment does not
  // depend on the compiler's argument evaluation order.
  uint32_t s_id = InternNode(s);
  uint32_t p_id = InternPredicate(p);
  uint32_t o_id = InternNode(o);
  return AddTripleIds(s_id, p_id, o_id);
}

util::Status GraphDatabaseBuilder::AddTripleLiteral(std::string_view s,
                                                    std::string_view p,
                                                    std::string_view literal) {
  uint32_t s_id = InternNode(s);
  uint32_t p_id = InternPredicate(p);
  uint32_t o_id = InternLiteral(literal);
  return AddTripleIds(s_id, p_id, o_id);
}

util::Status GraphDatabaseBuilder::AddTripleIds(uint32_t s, uint32_t p,
                                                uint32_t o) {
  if (s >= is_literal_->size() || o >= is_literal_->size() ||
      p >= predicates_->size()) {
    return util::Status::Error("triple references unknown id");
  }
  if ((*is_literal_)[s]) {
    return util::Status::Error("literal '" + nodes_->Name(s) +
                               "' used in subject position (Def. 1)");
  }
  triples_.push_back({s, p, o});
  return util::Status::Ok();
}

GraphDatabase GraphDatabaseBuilder::Build() && {
  GraphDatabase db;
  db.nodes_ = nodes_;
  db.predicates_ = predicates_;
  db.is_literal_ = is_literal_;
  db.BuildMatrices(std::move(triples_));
  return db;
}

void GraphDatabase::BuildMatrices(std::vector<Triple>&& triples) {
  static std::atomic<uint64_t> next_generation{0};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed) + 1;

  size_t n = NumNodes();
  size_t num_predicates = NumPredicates();

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      num_predicates);
  for (const Triple& t : triples) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
  }
  triples.clear();
  triples.shrink_to_fit();

  forward_.reserve(num_predicates);
  backward_.reserve(num_predicates);
  forward_summary_.reserve(num_predicates);
  backward_summary_.reserve(num_predicates);
  subject_counts_.resize(num_predicates);
  object_counts_.resize(num_predicates);
  empty_forward_cols_.resize(num_predicates);
  empty_backward_cols_.resize(num_predicates);
  num_triples_ = 0;

  for (size_t p = 0; p < num_predicates; ++p) {
    forward_.push_back(
        util::BitMatrix::Build(n, n, std::move(per_predicate[p])));
    backward_.push_back(forward_.back().Transposed());
    forward_summary_.push_back(forward_.back().RowSummary());
    backward_summary_.push_back(backward_.back().RowSummary());
    subject_counts_[p] = forward_summary_.back().Count();
    object_counts_[p] = backward_summary_.back().Count();
    // Columns of F_p are objects and columns of B_p are subjects, so the
    // empty-column counts fall out of the summary counts for free — no
    // extra O(nnz) pass.
    empty_forward_cols_[p] = n - object_counts_[p];
    empty_backward_cols_[p] = n - subject_counts_[p];
    num_triples_ += forward_.back().Nnz();
  }
}

std::vector<Triple> GraphDatabase::AllTriples() const {
  std::vector<Triple> result;
  result.reserve(num_triples_);
  ForEachTriple([&](const Triple& t) { result.push_back(t); });
  return result;
}

GraphDatabase GraphDatabase::Restrict(std::span<const Triple> kept) const {
  GraphDatabase db;
  db.nodes_ = nodes_;
  db.predicates_ = predicates_;
  db.is_literal_ = is_literal_;
  db.BuildMatrices(std::vector<Triple>(kept.begin(), kept.end()));
  return db;
}

size_t GraphDatabase::ApproxMatrixBytes() const {
  size_t total = 0;
  for (const util::BitMatrix& m : forward_) total += m.ApproxBytes();
  for (const util::BitMatrix& m : backward_) total += m.ApproxBytes();
  return total;
}

size_t GraphDatabase::GapEncodedMatrixBytes() const {
  size_t total = 0;
  size_t n = NumNodes();
  for (const util::BitMatrix& m : forward_) {
    for (uint32_t r : m.NonEmptyRows()) {
      total += util::GapCodec::EncodedSizeFromIndices(m.Row(r), n);
    }
  }
  return total;
}

}  // namespace sparqlsim::graph
