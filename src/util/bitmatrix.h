#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/bitvector.h"

namespace sparqlsim::util {

class CandidateSet;
class HierarchicalBitVector;

/// A boolean matrix in sparse-row-indexed CSR form.
///
/// This is the in-memory representation of the per-label adjacency matrices
/// F_a / B_a of the graph database (Sect. 3.2 of the paper). Knowledge-graph
/// adjacency matrices are extremely sparse — the paper reports 99% of
/// DBpedia's 65k predicate matrices allocating under 1 MB with
/// gap-length-encoded rows — so this structure stores only non-empty rows:
/// a sorted array of row ids plus CSR offsets into a column-index array.
/// Memory is O(nnz + distinct_rows) regardless of the node-universe size,
/// which is what makes keeping both F_a and its transpose B_a for every
/// label affordable.
///
/// The boolean vector-matrix product x *b A (Eq. 9) unions the rows selected
/// by x into a dense accumulator; it adaptively iterates either the set bits
/// of x or the non-empty row list, whichever is cheaper. Column-wise
/// evaluation of the SOI (Sect. 3.3) never needs column access here because
/// the graph database always keeps the transposed matrix: column j of F_a is
/// row j of B_a.
///
/// The matrix is immutable after Build().
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Creates an empty rows x cols matrix (no set bits).
  BitMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    row_offsets_.push_back(0);
  }

  /// Builds a matrix from (row, col) pairs; duplicates are merged.
  /// `entries` is consumed (sorted in place).
  static BitMatrix Build(size_t rows, size_t cols,
                         std::vector<std::pair<uint32_t, uint32_t>>&& entries);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Number of set bits (stored edges).
  size_t Nnz() const { return cols_index_.size(); }
  /// Number of non-empty rows.
  size_t NumNonEmptyRows() const { return rows_index_.size(); }

  /// Sorted ids of all non-empty rows.
  std::span<const uint32_t> NonEmptyRows() const { return rows_index_; }

  /// Sorted column indices of row r (empty span if the row has no bits).
  std::span<const uint32_t> Row(size_t r) const;

  /// Column indices of the slot-th non-empty row (row id
  /// NonEmptyRows()[slot]); O(1), no row-id binary search. Callers
  /// iterating all rows should walk slots, not row ids.
  std::span<const uint32_t> RowBySlot(size_t slot) const {
    return {cols_index_.data() + row_offsets_[slot],
            row_offsets_[slot + 1] - row_offsets_[slot]};
  }

  size_t RowDegree(size_t r) const { return Row(r).size(); }
  bool RowAny(size_t r) const { return !Row(r).empty(); }

  /// True iff entry (r, c) is set.
  bool Test(size_t r, size_t c) const;

  /// out = x *b this: the union of all rows r with x(r) = 1 (Eq. 9).
  /// `out` must have size cols(); it is cleared first.
  void Multiply(const BitVector& x, BitVector* out) const;

  /// Same product for a hierarchical selector: Count and the set-bit walk
  /// skip x's zero blocks, so sparse selections (late fixpoint rounds)
  /// cost O(live blocks + selected nnz) instead of O(universe/64).
  /// Output is bit-identical to the BitVector overload.
  void Multiply(const HierarchicalBitVector& x, BitVector* out) const;

  /// Same product for a representation-switching selector: compressed
  /// selectors stream their runs (never inflated to words), dense ones
  /// take the hierarchical path. Output is bit-identical to both.
  void Multiply(const CandidateSet& x, BitVector* out) const;

  /// Column-range-restricted product: writes the bits of x *b this that
  /// fall in [col_begin, col_end) into the matching positions of `out`
  /// (sized cols()), leaving every other *word* of `out` untouched.
  /// `col_begin` must be a multiple of BitVector::kWordBits and `col_end`
  /// word-aligned or == cols(), so only the words covering the range are
  /// written — disjoint word-aligned ranges of one output vector may then
  /// be filled concurrently (the solver's shard lanes do exactly that).
  /// The union over a partition of [0, cols()) is bit-identical to
  /// Multiply(); rows exploit the per-row column sort to enter at
  /// lower_bound(col_begin) instead of scanning from the front.
  void MultiplyRange(const BitVector& x, size_t col_begin, size_t col_end,
                     BitVector* out) const;
  void MultiplyRange(const HierarchicalBitVector& x, size_t col_begin,
                     size_t col_end, BitVector* out) const;
  void MultiplyRange(const CandidateSet& x, size_t col_begin, size_t col_end,
                     BitVector* out) const;

  /// True iff row r and the dense vector y share a set bit; this is the
  /// single-pair existence check of Eq. (4), used for column-wise evaluation
  /// and by the baseline algorithms.
  bool RowIntersects(size_t r, const BitVector& y) const;

  /// RowIntersects for any selector exposing Test(size_t) — the chi sets
  /// behind the CandidateSet layer in particular.
  template <typename SetT>
  bool RowIntersectsAny(size_t r, const SetT& y) const {
    for (uint32_t c : Row(r)) {
      if (y.Test(c)) return true;
    }
    return false;
  }

  /// Dense summary with bit r set iff row r is non-empty. For a forward
  /// matrix F_a this is the vector f^a of Eq. (13).
  BitVector RowSummary() const;

  /// Dense summary with bit c set iff column c is non-empty.
  BitVector ColSummary() const;

  /// Number of all-zero columns; the solver's ordering heuristic prefers
  /// inequalities whose matrix has many empty columns (Sect. 3.3).
  size_t CountEmptyColumns() const { return cols_ - ColSummary().Count(); }

  /// Transposed copy (used to derive B_a from F_a).
  BitMatrix Transposed() const;

  /// Approximate heap footprint in bytes.
  size_t ApproxBytes() const;

 private:
  /// Shared body of the two Multiply overloads: `SelT` is BitVector or
  /// HierarchicalBitVector (Count/ForEachSetBit/Test over row indices).
  /// Instantiated in bitmatrix.cc, where both selector types are complete.
  template <typename SelT>
  void MultiplyImpl(const SelT& x, BitVector* out) const {
    // The full ClearAll is fine here: every Multiply caller is a cold
    // path (the solution validator, tests, microbenches). The solver's
    // hot loop always goes through MultiplyRange — even its unsharded
    // shape is one full-width range — which zeroes only the words it is
    // about to write, so recycled scratch masks never pay an
    // O(universe/64) fill per evaluation.
    out->ClearAll();
    size_t selected = x.Count();
    // Iterate whichever index is smaller: the set bits of x (with a row
    // lookup each) or the non-empty row list (with a bit test each).
    if (selected * 8 < rows_index_.size()) {
      x.ForEachSetBit([&](uint32_t r) {
        for (uint32_t c : Row(r)) out->Set(c);
      });
    } else {
      for (size_t slot = 0; slot < rows_index_.size(); ++slot) {
        if (!x.Test(rows_index_[slot])) continue;
        for (uint32_t i = row_offsets_[slot]; i < row_offsets_[slot + 1];
             ++i) {
          out->Set(cols_index_[i]);
        }
      }
    }
  }

  /// Shared body of the MultiplyRange overloads: zeroes the destination
  /// words covering [col_begin, col_end), then unions the in-range slice
  /// of every selected row via a per-row lower_bound entry point. Same
  /// adaptive row-walk rule as MultiplyImpl — deliberately keyed on the
  /// *whole* selection size, not the per-range share, so every range of a
  /// partition walks rows the same way and their union replays Multiply
  /// bit for bit. Zeroing exactly the words it writes (rather than
  /// ClearAll on the destination) is also what makes recycled scratch
  /// masks free to reuse: stale content outside the union of ranges is
  /// never read, stale content inside is overwritten.
  template <typename SelT>
  void MultiplyRangeImpl(const SelT& x, size_t col_begin, size_t col_end,
                         BitVector* out) const {
    uint64_t* words = out->mutable_words();
    const size_t word_begin = col_begin / BitVector::kWordBits;
    const size_t word_end =
        (col_end + BitVector::kWordBits - 1) / BitVector::kWordBits;
    for (size_t w = word_begin; w < word_end; ++w) words[w] = 0;
    auto add_row_range = [&](std::span<const uint32_t> row) {
      auto it = std::lower_bound(row.begin(), row.end(),
                                 static_cast<uint32_t>(col_begin));
      for (; it != row.end() && *it < col_end; ++it) out->Set(*it);
    };
    if (x.Count() * 8 < rows_index_.size()) {
      x.ForEachSetBit([&](uint32_t r) { add_row_range(Row(r)); });
    } else {
      for (size_t slot = 0; slot < rows_index_.size(); ++slot) {
        if (!x.Test(rows_index_[slot])) continue;
        add_row_range(RowBySlot(slot));
      }
    }
  }

  /// Index into rows_index_ for row r, or -1 if the row is empty.
  int64_t FindRowSlot(size_t r) const;

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint32_t> rows_index_;   // sorted non-empty row ids
  std::vector<uint32_t> row_offsets_;  // rows_index_.size() + 1 entries
  std::vector<uint32_t> cols_index_;   // nnz entries, sorted per row
};

}  // namespace sparqlsim::util
