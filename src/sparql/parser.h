#pragma once

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

namespace sparqlsim::sparql {

/// Recursive-descent parser for the SPARQL fragment studied by the paper.
///
/// Grammar (case-insensitive keywords):
///
///   Query    := Prefix* 'SELECT' 'DISTINCT'? ('*' | Var+) 'WHERE'? Group
///   Prefix   := 'PREFIX' PNAME ':' IRIREF
///   Group    := '{' ( Triple ('.' )? | 'OPTIONAL' Group
///                   | Group ('UNION' Group)* )* '}'
///   Triple   := Term Term Term
///   Term     := '?'Name | '<'iri'>' | pname':'local | '"'text'"' | number
///               | 'a'  (expands to the predicate IRI rdf:type)
///
/// Group elements fold left: triples accumulate into BGPs, sub-groups join
/// (AND), OPTIONAL groups attach as left-outer extensions — the standard
/// SPARQL algebra translation. Predicate positions must be IRIs (the
/// paper's graph model has a fixed edge-label alphabet, Sect. 2), so a
/// variable predicate is a parse error.
class Parser {
 public:
  /// Parses a full SELECT query.
  static util::Result<Query> Parse(std::string_view text);

  /// Parses just a group graph pattern, e.g. "{ ?s <p> ?o . }".
  static util::Result<std::unique_ptr<Pattern>> ParsePattern(
      std::string_view text);
};

}  // namespace sparqlsim::sparql
