// End-to-end tests of the command-line tools: generate a dataset, convert
// formats, and run every subcommand. The binary paths are injected by
// CMake (SPARQLSIM_CLI / SPARQLSIM_DATAGEN point at the built tools).

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "cli_test_common.h"

namespace {

using sparqlsim_test::RunCommand;

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    int code = 0;
    RunCommand(std::string(SPARQLSIM_DATAGEN) + " movies > " + NtPath(), &code);
    ASSERT_EQ(code, 0);
  }
  static std::string NtPath() { return "/tmp/sparqlsim_cli_test_movies.nt"; }
  static std::string GdbPath() {
    return "/tmp/sparqlsim_cli_test_movies.gdb";
  }
};

TEST_F(CliTest, DatagenWritesTriples) {
  std::ifstream in(NtPath());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 20u);  // Fig. 1(a) has 20 triples
}

TEST_F(CliTest, StatsCommand) {
  int code = 0;
  std::string out =
      RunCommand(std::string(SPARQLSIM_CLI) + " stats " + NtPath(), &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("triples:    20"), std::string::npos);
  EXPECT_NE(out.find("directed"), std::string::npos);
}

TEST_F(CliTest, QueryCommand) {
  int code = 0;
  std::string out = RunCommand(
      "echo 'SELECT * WHERE { ?d <directed> ?m . }' | " +
          std::string(SPARQLSIM_CLI) + " query " + NtPath() + " -",
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("B. De Palma"), std::string::npos);
  EXPECT_NE(out.find("Mortdecai"), std::string::npos);
}

TEST_F(CliTest, SimCommand) {
  int code = 0;
  std::string out = RunCommand(
      "echo 'SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }' "
      "| " +
          std::string(SPARQLSIM_CLI) + " sim " + NtPath() + " -",
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("?d: 2 candidates"), std::string::npos);
}

TEST_F(CliTest, PruneCommandWritesOutput) {
  int code = 0;
  std::string pruned_path = "/tmp/sparqlsim_cli_test_pruned.nt";
  RunCommand("echo 'SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }' "
      "| " +
          std::string(SPARQLSIM_CLI) + " prune " + NtPath() + " - " +
          pruned_path,
      &code);
  EXPECT_EQ(code, 0);
  std::ifstream in(pruned_path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4u);  // the two bold subgraphs of Fig. 1(a)
}

TEST_F(CliTest, ConvertAndBinaryLoad) {
  int code = 0;
  RunCommand(std::string(SPARQLSIM_CLI) + " convert " + NtPath() + " " + GdbPath(),
      &code);
  EXPECT_EQ(code, 0);
  std::string out =
      RunCommand(std::string(SPARQLSIM_CLI) + " stats " + GdbPath(), &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("triples:    20"), std::string::npos);
}

TEST_F(CliTest, ExplainCommand) {
  int code = 0;
  std::string out = RunCommand(
      "echo 'SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }' | " +
          std::string(SPARQLSIM_CLI) + " explain " + NtPath() + " -",
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("rdfox-like"), std::string::npos);
  EXPECT_NE(out.find("virtuoso-like"), std::string::npos);
}

TEST_F(CliTest, BenchCommand) {
  int code = 0;
  std::string out = RunCommand(
      "echo 'SELECT * WHERE { ?d <directed> ?m . }' | " +
          std::string(SPARQLSIM_CLI) + " bench " + NtPath() + " -",
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("SOI solver"), std::string::npos);
  EXPECT_NE(out.find("Ma et al."), std::string::npos);
  EXPECT_NE(out.find("HHK-style"), std::string::npos);
}

TEST_F(CliTest, BadInputsFailCleanly) {
  int code = 0;
  RunCommand(std::string(SPARQLSIM_CLI) + " stats /nonexistent.nt", &code);
  EXPECT_NE(code, 0);
  RunCommand("echo 'NOT A QUERY' | " + std::string(SPARQLSIM_CLI) + " query " +
          NtPath() + " -",
      &code);
  EXPECT_NE(code, 0);
  RunCommand(std::string(SPARQLSIM_CLI) + " frobnicate " + NtPath(), &code);
  EXPECT_NE(code, 0);
}

}  // namespace
