#include "graph/ntriples.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/ntriples_line.h"

namespace sparqlsim::graph {

namespace internal {

namespace {

void SkipWs(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++(*pos);
  }
}

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

uint32_t HexValue(char c) {
  if (c >= '0' && c <= '9') return static_cast<uint32_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<uint32_t>(c - 'a' + 10);
  return static_cast<uint32_t>(c - 'A' + 10);
}

/// Appends the UTF-8 encoding of `cp`. Fails on surrogates and
/// out-of-range code points.
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp >= 0xD800 && cp <= 0xDFFF) return false;
  if (cp > 0x10FFFF) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

/// Decodes `\uXXXX` / `\UXXXXXXXX` starting at the 'u'/'U' in line[*pos].
bool ParseUcharEscape(std::string_view line, size_t* pos, std::string* out,
                      std::string* error) {
  size_t digits = line[*pos] == 'u' ? 4 : 8;
  if (*pos + digits + 1 > line.size()) {
    *error = "truncated \\u escape";
    return false;
  }
  uint32_t cp = 0;
  for (size_t i = 1; i <= digits; ++i) {
    char c = line[*pos + i];
    if (!IsHexDigit(c)) {
      *error = "bad hex digit in \\u escape";
      return false;
    }
    cp = (cp << 4) | HexValue(c);
  }
  if (!AppendUtf8(cp, out)) {
    *error = "\\u escape is not a valid Unicode code point";
    return false;
  }
  *pos += digits + 1;
  return true;
}

/// Parses `<...>`, unescaping \u/\U, returning the text between brackets.
bool ParseIriRef(std::string_view line, size_t* pos, std::string* out,
                 std::string* error) {
  if (*pos >= line.size() || line[*pos] != '<') {
    *error = "expected '<'";
    return false;
  }
  out->clear();
  size_t i = *pos + 1;
  while (i < line.size()) {
    char c = line[i];
    if (c == '>') {
      *pos = i + 1;
      return true;
    }
    if (c == '\\' && i + 1 < line.size() &&
        (line[i + 1] == 'u' || line[i + 1] == 'U')) {
      ++i;
      if (!ParseUcharEscape(line, &i, out, error)) return false;
      continue;
    }
    out->push_back(c);
    ++i;
  }
  *error = "unterminated IRI (missing '>')";
  return false;
}

}  // namespace

bool IsBlankLabelChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

namespace {

/// Parses `_:label`, storing the full `_:label` spelling as the name.
bool ParseBlankNode(std::string_view line, size_t* pos, std::string* out,
                    std::string* error) {
  if (*pos + 1 >= line.size() || line[*pos] != '_' || line[*pos + 1] != ':') {
    *error = "expected '_:'";
    return false;
  }
  size_t i = *pos + 2;
  size_t start = i;
  while (i < line.size() && IsBlankLabelChar(line[i])) ++i;
  if (i == start) {
    *error = "empty blank node label";
    return false;
  }
  *out = std::string(line.substr(*pos, i - *pos));
  *pos = i;
  return true;
}

/// Parses `"..."` with ECHAR/UCHAR escapes plus an optional `@lang` or
/// `^^<datatype>` suffix (validated, then dropped — see ntriples.h).
bool ParseLiteral(std::string_view line, size_t* pos, std::string* out,
                  std::string* error) {
  if (*pos >= line.size() || line[*pos] != '"') {
    *error = "expected '\"'";
    return false;
  }
  out->clear();
  size_t i = *pos + 1;
  bool closed = false;
  while (i < line.size()) {
    char c = line[i];
    if (c == '"') {
      closed = true;
      ++i;
      break;
    }
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        *error = "dangling backslash in literal";
        return false;
      }
      char esc = line[i + 1];
      switch (esc) {
        case 't': out->push_back('\t'); i += 2; continue;
        case 'b': out->push_back('\b'); i += 2; continue;
        case 'n': out->push_back('\n'); i += 2; continue;
        case 'r': out->push_back('\r'); i += 2; continue;
        case 'f': out->push_back('\f'); i += 2; continue;
        case '"': out->push_back('"'); i += 2; continue;
        case '\'': out->push_back('\''); i += 2; continue;
        case '\\': out->push_back('\\'); i += 2; continue;
        case 'u':
        case 'U': {
          ++i;
          if (!ParseUcharEscape(line, &i, out, error)) return false;
          continue;
        }
        default:
          *error = std::string("unknown escape '\\") + esc + "' in literal";
          return false;
      }
    }
    out->push_back(c);
    ++i;
  }
  if (!closed) {
    *error = "unterminated literal (missing '\"')";
    return false;
  }

  // Optional suffix: language tag or datatype IRI. LANGTAG per the spec:
  // [a-zA-Z]+('-'[a-zA-Z0-9]+)*.
  if (i < line.size() && line[i] == '@') {
    ++i;
    auto is_alpha = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    };
    auto is_alnum = [&](char c) { return is_alpha(c) || (c >= '0' && c <= '9'); };
    size_t start = i;
    while (i < line.size() && is_alpha(line[i])) ++i;
    if (i == start) {
      *error = "malformed language tag";
      return false;
    }
    while (i < line.size() && line[i] == '-') {
      ++i;
      size_t subtag = i;
      while (i < line.size() && is_alnum(line[i])) ++i;
      if (i == subtag) {
        *error = "malformed language tag";
        return false;
      }
    }
  } else if (i + 1 < line.size() && line[i] == '^' && line[i + 1] == '^') {
    i += 2;
    std::string datatype;
    if (!ParseIriRef(line, &i, &datatype, error)) {
      *error = "malformed datatype IRI: " + *error;
      return false;
    }
  } else if (i < line.size() && line[i] == '^') {
    *error = "malformed datatype suffix (expected '^^<iri>')";
    return false;
  }
  *pos = i;
  return true;
}

}  // namespace

LineOutcome ParseLine(std::string_view line, Statement* out,
                      std::string* error) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  size_t pos = 0;
  SkipWs(line, &pos);
  if (pos >= line.size() || line[pos] == '#') return LineOutcome::kEmpty;

  // Subject: IRI or blank node.
  if (line[pos] == '_') {
    if (!ParseBlankNode(line, &pos, &out->subject, error)) {
      return LineOutcome::kError;
    }
    out->subject_kind = TermKind::kBlank;
  } else {
    if (!ParseIriRef(line, &pos, &out->subject, error)) {
      *error = "bad subject: " + *error;
      return LineOutcome::kError;
    }
    out->subject_kind = TermKind::kIri;
  }
  SkipWs(line, &pos);

  // Predicate: IRI only.
  if (!ParseIriRef(line, &pos, &out->predicate, error)) {
    *error = "bad predicate: " + *error;
    return LineOutcome::kError;
  }
  SkipWs(line, &pos);

  // Object: IRI, blank node, or literal.
  if (pos < line.size() && line[pos] == '"') {
    if (!ParseLiteral(line, &pos, &out->object, error)) {
      return LineOutcome::kError;
    }
    out->object_kind = TermKind::kLiteral;
  } else if (pos < line.size() && line[pos] == '_') {
    if (!ParseBlankNode(line, &pos, &out->object, error)) {
      return LineOutcome::kError;
    }
    out->object_kind = TermKind::kBlank;
  } else {
    if (!ParseIriRef(line, &pos, &out->object, error)) {
      *error = "bad object: " + *error;
      return LineOutcome::kError;
    }
    out->object_kind = TermKind::kIri;
  }

  SkipWs(line, &pos);
  if (pos >= line.size() || line[pos] != '.') {
    *error = "expected '.'";
    return LineOutcome::kError;
  }
  ++pos;
  SkipWs(line, &pos);
  if (pos < line.size() && line[pos] != '#') {
    *error = "trailing garbage after '.'";
    return LineOutcome::kError;
  }
  return LineOutcome::kStatement;
}

std::string LineError(size_t line_number, const std::string& what) {
  std::ostringstream msg;
  msg << "n-triples line " << line_number << ": " << what;
  return msg.str();
}

std::string OversizeLineError(size_t max_line_bytes) {
  std::ostringstream msg;
  msg << "line exceeds the " << max_line_bytes << "-byte line limit";
  return msg.str();
}

}  // namespace internal

namespace {

/// Hands one parsed statement to the builder, routing literals through
/// AddTripleLiteral so the object is interned into the literal universe.
util::Status AddStatement(const internal::Statement& statement,
                          GraphDatabaseBuilder* builder) {
  if (statement.object_kind == internal::TermKind::kLiteral) {
    return builder->AddTripleLiteral(statement.subject, statement.predicate,
                                     statement.object);
  }
  return builder->AddTriple(statement.subject, statement.predicate,
                            statement.object);
}

std::string EscapeLiteral(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Only names the parser would read back as the same blank node are
/// written bare; a `_:` name with out-of-alphabet characters falls back
/// to the (escaped) IRI spelling so round-trips never lose it.
bool IsBlankName(const std::string& name) {
  if (name.size() <= 2 || name[0] != '_' || name[1] != ':') return false;
  for (size_t i = 2; i < name.size(); ++i) {
    if (!internal::IsBlankLabelChar(name[i])) return false;
  }
  return true;
}

/// Writes `<name>`, \u-escaping the characters that would corrupt the
/// line grammar on re-parse ('>' ends the IRI early, a raw backslash
/// could splice a `\u` escape, controls break the line structure).
void WriteIriEscaped(const std::string& name, std::ostream& out) {
  out.put('<');
  for (char raw : name) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (c < 0x20 || c == '<' || c == '>' || c == '"' || c == '\\') {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04X", c);
      out << buffer;
    } else {
      out.put(raw);
    }
  }
  out.put('>');
}

}  // namespace

util::Status NTriples::Load(std::istream& in, GraphDatabaseBuilder* builder,
                            const NTriplesOptions& options,
                            NTriplesStats* stats) {
  NTriplesStats local;
  std::string line;
  internal::Statement statement;
  std::string error;
  util::Status result = util::Status::Ok();

  while (std::getline(in, line)) {
    ++local.lines;
    if (line.size() > local.peak_chunk_bytes) {
      local.peak_chunk_bytes = line.size();
    }
    internal::LineOutcome outcome;
    if (options.max_line_bytes > 0 && line.size() > options.max_line_bytes) {
      outcome = internal::LineOutcome::kError;
      error = internal::OversizeLineError(options.max_line_bytes);
    } else {
      outcome = internal::ParseLine(line, &statement, &error);
    }
    if (outcome == internal::LineOutcome::kEmpty) continue;

    if (outcome == internal::LineOutcome::kStatement) {
      util::Status added = AddStatement(statement, builder);
      if (added.ok()) {
        ++local.triples;
        continue;
      }
      error = added.message();
    }

    std::string diagnostic = internal::LineError(local.lines, error);
    if (!options.permissive) {
      result = util::Status::Error(diagnostic);
      break;
    }
    ++local.malformed_lines;
    if (local.first_error.empty()) local.first_error = diagnostic;
  }

  if (stats != nullptr) *stats = local;
  return result;
}

util::Status NTriples::LoadFile(const std::string& path,
                                GraphDatabaseBuilder* builder,
                                const NTriplesOptions& options,
                                NTriplesStats* stats) {
  std::ifstream in(path);
  if (!in) return util::Status::Error("cannot open " + path);
  return Load(in, builder, options, stats);
}

util::Status NTriples::LoadFileParallel(const std::string& path,
                                        GraphDatabaseBuilder* builder,
                                        const NTriplesOptions& options,
                                        NTriplesStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("cannot open " + path);
  return LoadParallel(in, builder, options, stats);
}

void NTriples::Write(const GraphDatabase& db, std::ostream& out) {
  auto write_node = [&](uint32_t node) {
    const std::string& name = db.nodes().Name(node);
    if (IsBlankName(name)) {
      out << name;
    } else {
      WriteIriEscaped(name, out);
    }
  };
  db.ForEachTriple([&](const Triple& t) {
    write_node(t.subject);
    out << ' ';
    WriteIriEscaped(db.predicates().Name(t.predicate), out);
    out << ' ';
    if (db.IsLiteral(t.object)) {
      out << '"' << EscapeLiteral(db.nodes().Name(t.object)) << '"';
    } else {
      write_node(t.object);
    }
    out << " .\n";
  });
}

}  // namespace sparqlsim::graph
