#pragma once

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// Which half of Def. 2 to enforce.
///
/// Dual simulation (the paper's notion) is the conjunction of plain
/// forward simulation — every outgoing pattern edge must be matched — and
/// backward simulation on incoming edges. The plain variants are what the
/// applications surveyed in Sect. 6 use (social-position detection,
/// Panda's pruning, exemplar queries), so the library exposes them too.
enum class SimulationKind {
  kForward,   // Def. 2(i) only
  kBackward,  // Def. 2(ii) only
  kDual,      // both (the paper's dual simulation)
};

/// Computes the largest simulation of the requested kind between a pattern
/// graph (labels = database predicate ids) and a database, via the same
/// SOI machinery: forward simulation keeps only the `w <= v x F_a`
/// inequalities, backward only the `v <= w x B_a` ones.
Solution LargestSimulation(const graph::Graph& pattern,
                           const graph::GraphDatabase& db,
                           SimulationKind kind,
                           const SolverOptions& options = {});

}  // namespace sparqlsim::sim
