// The SimEngine concurrency contract: bit-exact identical solutions for any
// thread count (random SOIs and UNION batching), deadlock-free nested
// ParallelFor, and SOI/solution cache hit/miss/invalidation behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/validate.h"
#include "sparql/normalize.h"
#include "sparql/parser.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor primitives
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  util::ParallelFor(&pool, kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  std::vector<int> hits(64, 0);
  util::ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Branch batching runs ParallelFor tasks that themselves call ParallelFor
  // on the same pool; with a pool smaller than the outer fan-out this only
  // terminates because the caller participates in its own loop.
  util::ThreadPool pool(2);
  std::atomic<size_t> total{0};
  util::ParallelFor(&pool, 8, [&](size_t) {
    util::ParallelFor(&pool, 8, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(util::ThreadPool::ResolveThreadCount(3), 3u);
  EXPECT_GE(util::ThreadPool::ResolveThreadCount(0), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: bit-exact solutions for any thread count
// ---------------------------------------------------------------------------

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminism, RandomSoiSolvesIdenticallyAcrossThreadCounts) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 120;
  config.num_edges = 500;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 3, seed + 1000);
  Soi soi = BuildSoiFromGraph(pattern);

  Solution reference;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SolverOptions options;
    options.num_threads = threads;
    SimEngine engine(&db, options);
    Solution solution = engine.Solve(soi);
    if (threads == 1) {
      reference = std::move(solution);
      std::string why;
      EXPECT_TRUE(SatisfiesSoi(soi, db, reference.candidates, &why)) << why;
      continue;
    }
    ASSERT_EQ(solution.candidates.size(), reference.candidates.size());
    for (size_t v = 0; v < reference.candidates.size(); ++v) {
      EXPECT_EQ(solution.candidates[v], reference.candidates[v])
          << "seed " << seed << ", " << threads << " threads, var " << v;
    }
    // Identical fixpoint trajectory, not just the same fixpoint: the merge
    // order is scheduling-independent, so the round/evaluation counters
    // must agree too.
    EXPECT_EQ(solution.stats.rounds, reference.stats.rounds);
    EXPECT_EQ(solution.stats.evaluations, reference.stats.evaluations);
    EXPECT_EQ(solution.stats.updates, reference.stats.updates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ParallelPruneTest, UnionBatchingIsDeterministicAcrossThreadCounts) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { { ?d <directed> ?m . } UNION "
      "{ ?d <worked_with> ?c . } UNION "
      "{ ?m <genre> ?g . ?d <directed> ?m . } UNION "
      "{ ?d <directed> ?m . OPTIONAL { ?d <worked_with> ?c . } } }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  PruneReport reference;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SolverOptions options;
    options.num_threads = threads;
    SimEngine engine(&db, options);
    PruneReport report = engine.Prune(query);
    if (threads == 1) {
      reference = std::move(report);
      EXPECT_EQ(reference.num_branches, 4u);
      EXPECT_FALSE(reference.kept_triples.empty());
      continue;
    }
    EXPECT_EQ(report.kept_triples, reference.kept_triples);
    ASSERT_EQ(report.var_candidates.size(), reference.var_candidates.size());
    for (const auto& [var, bits] : reference.var_candidates) {
      auto it = report.var_candidates.find(var);
      ASSERT_NE(it, report.var_candidates.end()) << var;
      EXPECT_EQ(it->second, bits) << var << " at " << threads << " threads";
    }
  }
}

TEST(ParallelPruneTest, StatsAccumulateCombinesParallelCounters) {
  SolveStats a;
  a.rounds = 2;
  a.parallel_rounds = 1;
  a.max_round_width = 7;
  a.threads_used = 2;
  SolveStats b;
  b.rounds = 3;
  b.parallel_rounds = 2;
  b.max_round_width = 4;
  b.threads_used = 8;
  a.Accumulate(b);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.parallel_rounds, 3u);
  EXPECT_EQ(a.max_round_width, 7u);  // max, not sum
  EXPECT_EQ(a.threads_used, 8u);     // max, not sum
}

// ---------------------------------------------------------------------------
// Caching
// ---------------------------------------------------------------------------

TEST(CanonicalKeyTest, InvariantUnderTripleOrderButNotStructure) {
  auto p1 = sparql::Parser::ParsePattern(
      "{ ?d <directed> ?m . ?d <worked_with> ?c . }");
  auto p2 = sparql::Parser::ParsePattern(
      "{ ?d <worked_with> ?c . ?d <directed> ?m . }");
  auto p3 = sparql::Parser::ParsePattern(
      "{ ?d <directed> ?m . }");
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  EXPECT_EQ(sparql::CanonicalPatternKey(*p1.value()),
            sparql::CanonicalPatternKey(*p2.value()));
  EXPECT_NE(sparql::CanonicalPatternKey(*p1.value()),
            sparql::CanonicalPatternKey(*p3.value()));
}

TEST(SoiCacheTest, RepeatedQueryHitsSoiAndSolutionLayers) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SimEngine engine(&db);  // caches on by default
  ASSERT_NE(engine.cache(), nullptr);

  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }");
  ASSERT_TRUE(parsed.ok());
  sparql::Query query = std::move(parsed).value();

  PruneReport first = engine.Prune(query);
  SoiCache::Stats after_first = engine.cache()->stats();
  EXPECT_EQ(after_first.soi_hits, 0u);
  EXPECT_EQ(after_first.soi_misses, 1u);
  EXPECT_EQ(after_first.solution_hits, 0u);
  EXPECT_EQ(after_first.solution_misses, 1u);
  EXPECT_EQ(first.solution_cache_hits, 0u);
  EXPECT_GE(first.stats.rounds, 1u);

  // Same query again, triples permuted: canonical key matches, whole
  // solution is reused, no solver work happens.
  auto permuted = sparql::Parser::Parse(
      "SELECT * WHERE { ?d <worked_with> ?c . ?d <directed> ?m . }");
  ASSERT_TRUE(permuted.ok());
  PruneReport second = engine.Prune(permuted.value());
  SoiCache::Stats after_second = engine.cache()->stats();
  EXPECT_EQ(after_second.solution_hits, 1u);
  EXPECT_EQ(second.solution_cache_hits, 1u);
  EXPECT_EQ(second.stats.rounds, 0u);  // no solve ran

  EXPECT_EQ(second.kept_triples, first.kept_triples);
  for (const auto& [var, bits] : first.var_candidates) {
    EXPECT_EQ(second.var_candidates.at(var), bits);
  }
}

TEST(SoiCacheTest, DifferentDatabaseGenerationInvalidates) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  auto cache = std::make_shared<SoiCache>();
  SimEngine engine(&db, SolverOptions{}, cache);

  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { ?d <directed> ?m . }");
  ASSERT_TRUE(parsed.ok());
  sparql::Query query = std::move(parsed).value();

  PruneReport on_full = engine.Prune(query);
  EXPECT_EQ(cache->stats().solution_misses, 1u);

  // Restrict() produces a database with a fresh generation; an engine
  // sharing the same cache must not reuse the full database's solution.
  graph::GraphDatabase pruned = db.Restrict(on_full.kept_triples);
  EXPECT_NE(pruned.generation(), db.generation());
  SimEngine pruned_engine(&pruned, SolverOptions{}, cache);
  PruneReport on_pruned = pruned_engine.Prune(query);
  EXPECT_EQ(cache->stats().solution_hits, 0u);
  EXPECT_EQ(cache->stats().solution_misses, 2u);
  EXPECT_EQ(on_pruned.solution_cache_hits, 0u);
  EXPECT_GE(on_pruned.stats.rounds, 1u);

  // A *copy* of a database keeps its generation (same immutable content),
  // so it may share cached solutions.
  graph::GraphDatabase copy = db;
  EXPECT_EQ(copy.generation(), db.generation());
  SimEngine copy_engine(&copy, SolverOptions{}, cache);
  PruneReport on_copy = copy_engine.Prune(query);
  EXPECT_EQ(on_copy.solution_cache_hits, 1u);
  EXPECT_EQ(on_copy.kept_triples, on_full.kept_triples);
}

TEST(SoiCacheTest, TruncatedRunsBypassTheSolutionLayer) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolverOptions options;
  options.max_rounds = 1;  // truncated: not the canonical fixpoint
  SimEngine engine(&db, options);
  ASSERT_NE(engine.cache(), nullptr);

  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }");
  ASSERT_TRUE(parsed.ok());
  sparql::Query query = std::move(parsed).value();
  engine.Prune(query);
  engine.Prune(query);
  EXPECT_EQ(engine.cache()->stats().solution_hits, 0u);
  EXPECT_EQ(engine.cache()->NumSolutions(), 0u);
  // The SOI layer is still valid (construction does not depend on rounds).
  EXPECT_EQ(engine.cache()->stats().soi_hits, 1u);
}

TEST(SoiCacheTest, SolutionLayerRequiresSoiLayer) {
  // Regression: canonically-equal patterns may number their SOI variables
  // differently (construction follows triple order, the canonical key does
  // not). With the SOI layer disabled, a cached solution paired with a
  // freshly built SOI once returned another pattern's candidate vectors;
  // the solution layer must be inert without the SOI layer.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolverOptions options;
  options.cache_sois = false;
  options.cache_solutions = true;
  SimEngine engine(&db, options);
  ASSERT_NE(engine.cache(), nullptr);

  auto qa = sparql::Parser::Parse(
      "SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }");
  auto qb = sparql::Parser::Parse(
      "SELECT * WHERE { ?m <genre> ?g . ?d <directed> ?m . }");
  ASSERT_TRUE(qa.ok() && qb.ok());
  engine.Prune(qa.value());
  PruneReport second = engine.Prune(qb.value());
  EXPECT_EQ(engine.cache()->stats().solution_hits, 0u);
  EXPECT_EQ(engine.cache()->NumSolutions(), 0u);

  SolverOptions plain;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  PruneReport reference = SimEngine(&db, plain).Prune(qb.value());
  EXPECT_EQ(second.kept_triples, reference.kept_triples);
  for (const auto& [var, bits] : reference.var_candidates) {
    EXPECT_EQ(second.var_candidates.at(var), bits) << var;
  }
}

TEST(SoiCacheTest, CachesOffMeansNoCacheObject) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolverOptions options;
  options.cache_sois = false;
  options.cache_solutions = false;
  SimEngine engine(&db, options);
  EXPECT_EQ(engine.cache(), nullptr);
}

// ---------------------------------------------------------------------------
// Parallel path exercised end to end through an engine-owned pool
// ---------------------------------------------------------------------------

TEST(SimEngineTest, ParallelEngineReportsPoolCounters) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 150;
  config.num_edges = 600;
  config.num_labels = 2;
  config.seed = 3;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 2, 17);
  Soi soi = BuildSoiFromGraph(pattern);

  SolverOptions options;
  options.num_threads = 4;
  SimEngine engine(&db, options);
  ASSERT_NE(engine.pool(), nullptr);
  EXPECT_EQ(engine.pool()->NumThreads(), 4u);

  Solution solution = engine.Solve(soi);
  EXPECT_EQ(solution.stats.threads_used, 4u);
  // 6 nodes / 10 edges => 20 matrix inequalities in round one.
  EXPECT_GE(solution.stats.max_round_width, 2u);
  EXPECT_GE(solution.stats.parallel_rounds, 1u);
}

}  // namespace
}  // namespace sparqlsim::sim
