#include "sim/dual_simulation.h"

#include "sim/soi.h"

namespace sparqlsim::sim {

Solution LargestDualSimulation(const graph::Graph& pattern,
                               const graph::GraphDatabase& db,
                               const SolverOptions& options) {
  Soi soi = BuildSoiFromGraph(pattern);
  return SolveSoi(soi, db, options);
}

bool DualSimulates(const graph::Graph& pattern, const graph::GraphDatabase& db,
                   const SolverOptions& options) {
  return LargestDualSimulation(pattern, db, options).AnyCandidate();
}

}  // namespace sparqlsim::sim
