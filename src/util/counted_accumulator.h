#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitmatrix.h"
#include "util/bitvector.h"

namespace sparqlsim::util {

/// A counted boolean vector-matrix product: maintains, for one matrix A
/// and a *shrinking* row-selection x, the per-column cover counts
///
///     counts[c] = |{ r : x(r) = 1 and A(r, c) = 1 }|
///
/// together with the product bit-vector  result = x *b A  (bit c set iff
/// counts[c] > 0, exactly the union-of-selected-rows of Eq. (9) in the
/// paper).
///
/// This is the amortization behind HHK-style simulation algorithms applied
/// to the paper's matrix formulation: because the SOI fixpoint only ever
/// *removes* bits from chi(rhs), a re-evaluation of `lhs <= rhs *b A` does
/// not need to re-union every selected row — it can decrement counts along
/// the rows that *left* the selection (Retract) and clear exactly the
/// columns whose count reaches zero. Per-round cost becomes proportional
/// to the removal delta instead of to nnz of the selected submatrix.
///
/// The accumulator is a plain value type; the solver keeps one per matrix
/// inequality (lazily, from the second row-wise evaluation on) alongside a
/// snapshot of the selection it was built against.
///
/// Counts are stored as 16-bit lanes by default — cover counts above 65535
/// need a column covered by more selected rows than most per-label
/// matrices have rows, so the narrow lanes halve^2 the footprint of the
/// per-inequality state the incremental tier keeps resident. The fallback
/// is exact: the first increment that would overflow a lane widens every
/// count to 32 bits before applying it, and the accumulator stays wide
/// (sticky) until it is re-sized for a different matrix. Every observable
/// count is identical to what a plain uint32 array would hold.
class CountedAccumulator {
 public:
  /// Rebuilds counts/result from scratch for the given selection. Cost:
  /// the nnz of the selected rows plus clearing the *previous* product's
  /// columns (counts is zero wherever the product bit is clear — a class
  /// invariant — so a full O(cols) wipe is only ever paid on first use).
  /// `SelT` is BitVector, HierarchicalBitVector, or CandidateSet
  /// (anything with Count/ForEachSetBit/Test over row indices).
  template <typename SelT>
  void Rebuild(const BitMatrix& a, const SelT& selected) {
    if (counts16_.size() != a.cols()) {
      wide_ = false;
      counts32_.clear();
      counts32_.shrink_to_fit();
      counts16_.assign(a.cols(), 0);
      result_.Resize(a.cols());
      result_.ClearAll();
    } else {
      WipeLive();
    }
    // Mirror Multiply's adaptive rule: walk the selection (row lookup
    // each) when it is small, the non-empty row list (bit test each)
    // otherwise.
    const auto rows = a.NonEmptyRows();
    if (selected.Count() * 8 < rows.size()) {
      selected.ForEachSetBit([&](uint32_t r) { AddRow(a.Row(r)); });
    } else {
      for (size_t slot = 0; slot < rows.size(); ++slot) {
        if (selected.Test(rows[slot])) AddRow(a.RowBySlot(slot));
      }
    }
  }

  /// Removes `removed` rows from the selection: decrements counts along
  /// each removed row and clears the columns whose count hits zero.
  /// Every removed row must have been part of the selection the counts
  /// were built/retracted to (the solver guarantees this by construction:
  /// removed = previous chi(rhs) minus current chi(rhs), and chi only
  /// shrinks). Cost: O(nnz of the removed rows). Returns the number of
  /// columns cleared.
  size_t Retract(const BitMatrix& a, const BitVector& removed);

  /// Column-range-restricted rebuild for the solver's shard lanes, split
  /// into a serial and a concurrent part. PrepareRebuild performs what
  /// Rebuild does before touching the selection: (re)size the lanes or
  /// clear the previous product's counts, and wipe the result vector.
  /// After it, RebuildRange calls over disjoint word-aligned column ranges
  /// may run concurrently — each touches only its range's count lanes and
  /// result words, and their union reproduces Rebuild bit for bit.
  ///
  /// `force_wide` pins the 32-bit lanes up front: a narrow-lane overflow
  /// inside RebuildRange would have to widen the *whole* array mid-fill,
  /// which is exactly the cross-range write the concurrent phase must not
  /// perform, so multi-shard rebuilds pre-pay the wide layout. Counts (and
  /// therefore result and every retraction after it) are identical either
  /// way — lane width is never observable in a solve trajectory.
  void PrepareRebuild(size_t cols, bool force_wide);

  /// The concurrent half of the sharded rebuild; see PrepareRebuild.
  /// Same adaptive row-walk rule as Rebuild, keyed on the whole selection
  /// size so every range walks rows identically.
  template <typename SelT>
  void RebuildRange(const BitMatrix& a, const SelT& selected,
                    size_t col_begin, size_t col_end) {
    auto add_range = [&](std::span<const uint32_t> row) {
      auto it = std::lower_bound(row.begin(), row.end(),
                                 static_cast<uint32_t>(col_begin));
      for (; it != row.end() && *it < col_end; ++it) Increment(*it);
    };
    const auto rows = a.NonEmptyRows();
    if (selected.Count() * 8 < rows.size()) {
      selected.ForEachSetBit([&](uint32_t r) { add_range(a.Row(r)); });
    } else {
      for (size_t slot = 0; slot < rows.size(); ++slot) {
        if (selected.Test(rows[slot])) add_range(a.RowBySlot(slot));
      }
    }
  }

  /// Column-range-restricted Retract: decrements only the removed rows'
  /// entries in [col_begin, col_end) and clears in-range columns whose
  /// count hits zero. Safe to run concurrently over disjoint word-aligned
  /// ranges (counts and result words are disjoint per range; Decrement
  /// never changes lane width). The sum of the per-range returns over a
  /// partition equals Retract's return.
  size_t RetractRange(const BitMatrix& a, const BitVector& removed,
                      size_t col_begin, size_t col_end);

  /// The product x *b A for the current selection x.
  const BitVector& result() const { return result_; }

  /// Cover count of column c (test/debug accessor). Exact regardless of
  /// lane width.
  uint32_t count(size_t c) const {
    return wide_ ? counts32_[c] : counts16_[c];
  }

  /// True once an overflow forced the 32-bit lanes (test/debug accessor).
  bool wide() const { return wide_; }

 private:
  void AddRow(std::span<const uint32_t> row) {
    for (uint32_t c : row) Increment(c);
  }

  void Increment(uint32_t c) {
    if (!wide_) {
      uint16_t& narrow = counts16_[c];
      if (narrow != UINT16_MAX) {
        if (narrow++ == 0) result_.Set(c);
        return;
      }
      Widen();
    }
    if (counts32_[c]++ == 0) result_.Set(c);
  }

  /// Returns the decremented count of column c.
  uint32_t Decrement(uint32_t c) {
    return wide_ ? --counts32_[c] : static_cast<uint32_t>(--counts16_[c]);
  }

  /// Copies every 16-bit lane into 32-bit lanes; called at most once per
  /// matrix size (wide_ is sticky until the accumulator is re-sized).
  void Widen();

  /// The incremental wipe shared by Rebuild and PrepareRebuild, fused
  /// into one pass: counts is zero wherever the previous product bit is
  /// clear (class invariant), so walking result_'s nonzero words zeroes
  /// each set bit's count lane and the word itself without a second
  /// O(cols/64) ClearAll sweep.
  void WipeLive();

  bool wide_ = false;
  std::vector<uint16_t> counts16_;  // primary lanes (authoritative iff !wide_)
  std::vector<uint32_t> counts32_;  // overflow lanes (authoritative iff wide_)
  BitVector result_;
};

}  // namespace sparqlsim::util
