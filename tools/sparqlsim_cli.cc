// sparqlsim — command-line dual simulation processor for graph databases.
//
// Subcommands:
//   stats   <data.nt>                      database statistics
//   query   <data.nt> <query.rq|->        evaluate a SPARQL query exactly
//   prune   <data.nt> <query.rq|-> [out]  dual-simulation prune; optional
//                                          N-Triples dump of the kept set
//   sim     <data.nt> <query.rq|->        largest dual simulation per
//                                          variable (candidates only)
//   bench   <data.nt> <query.rq|->        compare SOI vs Ma et al. vs HHK
//   explain <data.nt> <query.rq|->        show both engines' query plans
//   convert <data.nt> <out.gdb>           convert to the binary format
//
// Options (anywhere on the command line):
//   --threads N   solver worker threads for sim/prune/bench; 0 = all
//                 hardware threads (the default). Results are bit-identical
//                 for every value.
//   --no-cache    disable the SimEngine SOI/solution caches (--cache
//                 re-enables; on by default).
//   --cache-capacity N  bound each cache layer to N entries (LRU
//                 eviction); 0 = unbounded (the default).
//   --no-incremental  disable delta-driven incremental fixpoint evaluation
//                 (--incremental re-enables; on by default). Purely a
//                 wall-clock knob: results are bit-identical either way.
//   --no-scratch-pool  disable solve-scratch recycling (--scratch-pool
//                 re-enables; on by default). Every solve then allocates
//                 fresh buffers — the differential oracle configuration.
//                 Purely an allocation knob: results are bit-identical
//                 either way. SPARQLSIM_NO_SCRATCH=1 sets the same switch
//                 from the environment.
//   --kernel MODE candidate-set representation kernel: auto (occupancy-
//                 driven GAP/RLE compression with hysteresis, the default),
//                 dense (always hierarchical word arrays), or compressed
//                 (always run lists). Bit-identical results in every mode.
//   --shards N    column-shard each fixpoint round into N word-aligned
//                 ranges (0 = env default SPARQLSIM_FORCE_SHARDS or 1).
//                 Bit-identical results for every value.
//   --deadline-ms N  per-query compute budget for sim/prune; an expired
//                 query stops at the next round boundary and reports a
//                 sound over-approximation (marked "truncated").
//   --priority P  admission class for sim/prune: high (default) or low
//                 (yields to waiting high-priority work).
//   --db FILE     read the database from a binary SQSIMDB file (as written
//                 by sparqlsim_ingest or `convert`) and drop the positional
//                 <data> argument: `sparqlsim --db lubm.gdb stats`.
//                 SQSIMDB2 files are mmap-ed and loaded lazily per
//                 predicate.
//   --resident-mb M  resident-byte budget in MiB for lazily opened
//                 SQSIMDB2 databases (0 = unbounded, the default;
//                 SPARQLSIM_RESIDENT_MB sets the same knob from the
//                 environment, the flag wins).
//
// --deadline-ms/--priority route sim/prune through a sim::QueryService (the
// serving layer), whose admission and snapshot statistics print afterwards.
//
// Databases load from N-Triples (.nt) or the binary format (.gdb).
// Queries are read from a file or stdin ("-"). Example:
//   echo 'SELECT * WHERE { ?d <directed> ?m . }' | sparqlsim query movie.nt -

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/evaluator.h"
#include "engine/explain.h"
#include "graph/binary_io.h"
#include "graph/graph_database.h"
#include "graph/ntriples.h"
#include "sim/hhk_baseline.h"
#include "sim/ma_baseline.h"
#include "sim/query_service.h"
#include "sim/sim_engine.h"
#include "sparql/ast.h"
#include "sparql/parser.h"
#include "sparql/printer.h"
#include "tool_common.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: sparqlsim [--threads N] [--cache|--no-cache] "
               "[--cache-capacity N] [--incremental|--no-incremental] "
               "[--scratch-pool|--no-scratch-pool] "
               "[--kernel auto|dense|compressed] [--shards N] "
               "[--deadline-ms N] [--priority high|low] "
               "[--db file.gdb] [--resident-mb M] "
               "<stats|query|prune|sim|bench|explain|convert> "
               "[data.nt] [query.rq|-] [out.nt]\n"
               "       (the positional data argument is omitted when "
               "--db is given)\n");
  return 2;
}

using tools::LoadDatabase;

bool ReadQuery(const char* path, sparql::Query* query) {
  std::string text;
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open query file %s\n", path);
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  auto parsed = sparql::Parser::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error_message().c_str());
    return false;
  }
  *query = std::move(parsed).value();
  return true;
}

int CmdStats(const graph::GraphDatabase& db) {
  std::printf("nodes:      %zu\n", db.NumNodes());
  std::printf("predicates: %zu\n", db.NumPredicates());
  std::printf("triples:    %zu\n", db.NumTriples());
  std::printf("matrices:   %.2f MB CSR, %.2f MB gap-encoded\n",
              db.ApproxMatrixBytes() / 1e6, db.GapEncodedMatrixBytes() / 1e6);
  std::printf("\n%-40s %10s %10s %10s\n", "predicate", "triples", "subjects",
              "objects");
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    std::printf("%-40s %10zu %10zu %10zu\n", db.predicates().Name(p).c_str(),
                db.PredicateCardinality(p), db.DistinctSubjects(p),
                db.DistinctObjects(p));
  }
  return 0;
}

int CmdQuery(const graph::GraphDatabase& db, const sparql::Query& query) {
  engine::Evaluator evaluator(&db);
  engine::EvalStats stats;
  engine::SolutionSet rows = evaluator.Evaluate(query, &stats);
  std::printf("%s", rows.ToString(db, 50).c_str());
  std::fprintf(stderr, "%zu rows in %.4fs (%zu intermediate rows)\n",
               rows.NumRows(), stats.seconds, stats.intermediate_rows);
  return 0;
}

int PrintSim(const graph::GraphDatabase& db, const sim::PruneReport& report) {
  for (const auto& [var, candidates] : report.var_candidates) {
    std::printf("?%s: %zu candidates\n", var.c_str(), candidates.Count());
    size_t shown = 0;
    candidates.ForEachSetBit([&](uint32_t node) {
      if (shown++ < 10) {
        std::printf("  %s\n", db.nodes().Name(node).c_str());
      }
    });
    if (shown > 10) std::printf("  ... (%zu more)\n", shown - 10);
  }
  std::fprintf(stderr, "solved in %.4fs (%zu rounds, %zu branches, "
               "%zu shards)%s\n",
               report.total_seconds, report.stats.rounds, report.num_branches,
               report.stats.shards_used,
               report.truncated ? " [truncated: deadline expired; candidate "
                                  "sets are a sound over-approximation]"
                                : "");
  return 0;
}

int PrintPrune(const graph::GraphDatabase& db, const sim::PruneReport& report,
               const char* out_path) {
  std::printf("kept %zu of %zu triples (%.3f%%) in %.4fs%s\n",
              report.kept_triples.size(), db.NumTriples(),
              100.0 * static_cast<double>(report.kept_triples.size()) /
                  static_cast<double>(std::max<size_t>(1, db.NumTriples())),
              report.total_seconds,
              report.truncated ? " [truncated: superset of the exact prune]"
                               : "");
  if (out_path != nullptr) {
    graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    graph::NTriples::Write(pruned, out);
    std::fprintf(stderr, "pruned database written to %s\n", out_path);
  }
  return 0;
}

void PrintServiceStats(const sim::QueryService::Stats& stats) {
  auto mean_wait = [](const util::AdmissionGate::ClassStats& cls) {
    return cls.blocked == 0 ? 0.0 : cls.wait_seconds / cls.blocked;
  };
  std::fprintf(stderr,
               "service: admission high %zu admitted / %zu blocked "
               "(mean wait %.4fs), low %zu admitted / %zu blocked "
               "(mean wait %.4fs)\n",
               stats.gate.high.admitted, stats.gate.high.blocked,
               mean_wait(stats.gate.high), stats.gate.low.admitted,
               stats.gate.low.blocked, mean_wait(stats.gate.low));
  std::fprintf(stderr,
               "service: snapshots %zu live (peak %zu), %zu published, "
               "%zu deadline-truncated\n",
               stats.snapshots_live, stats.peak_snapshots_live,
               stats.snapshots_published, stats.deadline_truncated);
}

int CmdBench(const sim::SimEngine& engine, const sparql::Query& query) {
  const graph::GraphDatabase& db = engine.db();
  if (!query.where->IsBgp()) {
    std::fprintf(stderr, "bench requires a plain BGP query\n");
    return 1;
  }

  util::Stopwatch watch;
  sim::Solution soi = engine.SolvePattern(*query.where);
  double t_soi = watch.ElapsedSeconds();

  std::vector<sparql::Term> node_terms;
  std::vector<std::string> label_names;
  graph::Graph raw =
      sparql::BgpToGraph(query.where->triples(), &node_terms, &label_names);
  graph::Graph pattern(raw.NumNodes());
  for (const graph::LabeledEdge& e : raw.edges()) {
    auto id = db.predicates().Lookup(label_names[e.label]);
    pattern.AddEdge(e.from, id ? *id : sim::kEmptyPredicate, e.to);
  }
  std::vector<std::optional<uint32_t>> constants(raw.NumNodes());
  for (size_t v = 0; v < node_terms.size(); ++v) {
    if (node_terms[v].IsConstant()) {
      constants[v] = db.nodes().Lookup(node_terms[v].text()).value_or(0);
    }
  }

  watch.Restart();
  sim::Solution ma = sim::MaDualSimulation(pattern, db, constants);
  double t_ma = watch.ElapsedSeconds();
  watch.Restart();
  sim::Solution hhk = sim::HhkDualSimulation(pattern, db, constants);
  double t_hhk = watch.ElapsedSeconds();

  std::printf("SOI solver:  %10.5fs  (%zu rounds, relation %zu)\n", t_soi,
              soi.stats.rounds, soi.RelationSize());
  std::printf("Ma et al.:   %10.5fs  (%zu sweeps, relation %zu)\n", t_ma,
              ma.stats.rounds, ma.RelationSize());
  std::printf("HHK-style:   %10.5fs  (relation %zu)\n", t_hhk,
              hhk.RelationSize());
  return 0;
}

int Run(int argc, char** argv) {
  // Peel off --threads/--cache options (anywhere); the rest stays
  // positional: <command> <data> [query] [out].
  sim::SolverOptions options;
  options.num_threads = 0;  // CLI default: all hardware threads
  const char* db_path = nullptr;
  size_t resident_mb = tools::kResidentMbFromEnv;
  size_t deadline_ms = 0;  // 0 = no deadline
  auto priority = util::AdmissionGate::Priority::kHigh;
  bool use_service = false;  // --deadline-ms/--priority route via the service
  std::vector<const char*> args;
  auto parse_size_flag = [](const char* text, const char* name, size_t* out) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "invalid %s value '%s'\n", name, text);
      return false;
    }
    *out = static_cast<size_t>(value);
    return true;
  };
  auto parse_threads = [&](const char* text) {
    return parse_size_flag(text, "--threads", &options.num_threads);
  };
  auto parse_shards = [&](const char* text) {
    return parse_size_flag(text, "--shards", &options.num_shards);
  };
  auto parse_deadline = [&](const char* text) {
    if (!parse_size_flag(text, "--deadline-ms", &deadline_ms)) return false;
    use_service = true;
    return true;
  };
  auto parse_priority = [&](const char* text) {
    if (std::strcmp(text, "high") == 0) {
      priority = util::AdmissionGate::Priority::kHigh;
    } else if (std::strcmp(text, "low") == 0) {
      priority = util::AdmissionGate::Priority::kLow;
    } else {
      std::fprintf(stderr,
                   "invalid --priority value '%s' (expected high|low)\n",
                   text);
      return false;
    }
    use_service = true;
    return true;
  };
  auto parse_kernel = [&](const char* text) {
    if (std::strcmp(text, "auto") == 0) {
      options.kernel_mode = sim::SolverOptions::KernelMode::kAuto;
    } else if (std::strcmp(text, "dense") == 0) {
      options.kernel_mode = sim::SolverOptions::KernelMode::kDense;
    } else if (std::strcmp(text, "compressed") == 0) {
      options.kernel_mode = sim::SolverOptions::KernelMode::kCompressed;
    } else {
      std::fprintf(stderr,
                   "invalid --kernel value '%s' "
                   "(expected auto|dense|compressed)\n",
                   text);
      return false;
    }
    return true;
  };
  auto parse_capacity = [&](const char* text) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "invalid --cache-capacity value '%s'\n", text);
      return false;
    }
    options.cache_capacity = static_cast<size_t>(value);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc || !parse_threads(argv[++i])) return Usage();
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      if (!parse_threads(argv[i] + 10)) return Usage();
      continue;
    }
    if (std::strcmp(argv[i], "--db") == 0) {
      if (i + 1 >= argc) return Usage();
      db_path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--db=", 5) == 0) {
      db_path = argv[i] + 5;
      continue;
    }
    if (std::strcmp(argv[i], "--resident-mb") == 0) {
      if (i + 1 >= argc) return Usage();
      resident_mb = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (std::strncmp(argv[i], "--resident-mb=", 14) == 0) {
      resident_mb =
          static_cast<size_t>(std::strtoull(argv[i] + 14, nullptr, 10));
      continue;
    }
    if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      if (i + 1 >= argc || !parse_capacity(argv[++i])) return Usage();
      continue;
    }
    if (std::strncmp(argv[i], "--cache-capacity=", 17) == 0) {
      if (!parse_capacity(argv[i] + 17)) return Usage();
      continue;
    }
    if (std::strcmp(argv[i], "--cache") == 0) {
      options.cache_sois = options.cache_solutions = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.cache_sois = options.cache_solutions = false;
      continue;
    }
    if (std::strcmp(argv[i], "--incremental") == 0) {
      options.incremental_eval = true;
      continue;
    }
    if (std::strcmp(argv[i], "--scratch-pool") == 0) {
      options.reuse_scratch = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-scratch-pool") == 0) {
      options.reuse_scratch = false;
      continue;
    }
    if (std::strcmp(argv[i], "--no-incremental") == 0) {
      options.incremental_eval = false;
      continue;
    }
    if (std::strcmp(argv[i], "--kernel") == 0) {
      if (i + 1 >= argc || !parse_kernel(argv[++i])) return Usage();
      continue;
    }
    if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      if (!parse_kernel(argv[i] + 9)) return Usage();
      continue;
    }
    if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc || !parse_shards(argv[++i])) return Usage();
      continue;
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      if (!parse_shards(argv[i] + 9)) return Usage();
      continue;
    }
    if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (i + 1 >= argc || !parse_deadline(argv[++i])) return Usage();
      continue;
    }
    if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      if (!parse_deadline(argv[i] + 14)) return Usage();
      continue;
    }
    if (std::strcmp(argv[i], "--priority") == 0) {
      if (i + 1 >= argc || !parse_priority(argv[++i])) return Usage();
      continue;
    }
    if (std::strncmp(argv[i], "--priority=", 11) == 0) {
      if (!parse_priority(argv[i] + 11)) return Usage();
      continue;
    }
    args.push_back(argv[i]);
  }

  if (args.empty()) return Usage();
  const char* command = args[0];

  // With --db the database comes from the flag and every positional after
  // the command shifts left by one.
  std::optional<graph::GraphDatabase> loaded;
  size_t next = 1;
  if (db_path != nullptr) {
    loaded = LoadDatabase(db_path, /*force_binary=*/true, resident_mb);
  } else {
    if (args.size() < 2) return Usage();
    loaded = LoadDatabase(args[1], /*force_binary=*/false, resident_mb);
    next = 2;
  }
  if (!loaded) return 1;
  const graph::GraphDatabase& db = *loaded;

  if (std::strcmp(command, "stats") == 0) return CmdStats(db);
  if (std::strcmp(command, "convert") == 0) {
    if (args.size() < next + 1) return Usage();
    util::Status status = graph::BinaryIo::SaveFile(db, args[next]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "written %s\n", args[next]);
    return 0;
  }

  if (args.size() < next + 1) return Usage();
  sparql::Query query;
  if (!ReadQuery(args[next], &query)) return 1;

  if (std::strcmp(command, "query") == 0) return CmdQuery(db, query);

  const bool is_sim = std::strcmp(command, "sim") == 0;
  const bool is_prune = std::strcmp(command, "prune") == 0;
  if (is_sim || is_prune) {
    sim::PruneReport report;
    if (use_service) {
      // Serving-layer path: admission class and deadline are service
      // concepts, so the query goes through a (single-slot) QueryService.
      sim::QueryServiceOptions service_options;
      service_options.num_workers = 1;
      service_options.queue_depth = 1;
      service_options.solver = options;
      sim::QueryService service(&db, service_options);
      sim::SubmitOptions submit;
      submit.priority = priority;
      if (deadline_ms > 0) {
        submit.deadline = std::chrono::milliseconds(deadline_ms);
      }
      report = service.Submit(query, submit).get();
      service.Drain();
      PrintServiceStats(service.stats());
    } else {
      sim::SimEngine engine(&db, options);
      report = engine.Prune(query);
    }
    if (is_sim) return PrintSim(db, report);
    return PrintPrune(db, report,
                      args.size() > next + 1 ? args[next + 1] : nullptr);
  }

  sim::SimEngine engine(&db, options);
  if (std::strcmp(command, "bench") == 0) return CmdBench(engine, query);
  if (std::strcmp(command, "explain") == 0) {
    std::printf("%s",
                engine::ExplainQuery(
                    query, db, {engine::JoinOrderPolicy::kRdfoxLike})
                    .c_str());
    std::printf("---\n%s",
                engine::ExplainQuery(
                    query, db, {engine::JoinOrderPolicy::kVirtuosoLike})
                    .c_str());
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
