#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sparql/term.h"

namespace sparqlsim::sparql {

/// Algebra node kinds for the query language S of the paper (Sect. 4.3)
/// plus UNION (Sect. 4.2): Q ::= BGP | Q AND Q | Q OPTIONAL Q | Q UNION Q.
enum class PatternKind { kBgp, kJoin, kOptional, kUnion };

/// A graph-pattern algebra tree.
///
/// Leaves are basic graph patterns (sets of triple patterns); inner nodes
/// are AND (inner join), OPTIONAL (left outer join), and UNION. The helpers
/// implement the paper's static notions: vars(Q), mand(Q) (Sect. 4.3), and
/// the well-designedness check of Sect. 4.5.
class Pattern {
 public:
  static std::unique_ptr<Pattern> Bgp(std::vector<TriplePattern> triples);
  static std::unique_ptr<Pattern> Join(std::unique_ptr<Pattern> left,
                                       std::unique_ptr<Pattern> right);
  static std::unique_ptr<Pattern> Optional(std::unique_ptr<Pattern> left,
                                           std::unique_ptr<Pattern> right);
  static std::unique_ptr<Pattern> Union(std::unique_ptr<Pattern> left,
                                        std::unique_ptr<Pattern> right);

  PatternKind kind() const { return kind_; }
  bool IsBgp() const { return kind_ == PatternKind::kBgp; }

  /// Triple patterns; only valid for kBgp nodes.
  const std::vector<TriplePattern>& triples() const { return triples_; }
  const Pattern& left() const { return *left_; }
  const Pattern& right() const { return *right_; }

  /// vars(Q): all variables occurring anywhere in the pattern.
  std::set<std::string> Vars() const;

  /// mand(Q) per Sect. 4.3: mand(BGP) = vars, mand(AND) = union,
  /// mand(OPTIONAL) = mand of the left side. For UNION we use the
  /// intersection (a variable is certainly bound only if bound in every
  /// branch), the standard conservative extension.
  std::set<std::string> MandatoryVars() const;

  bool IsUnionFree() const;

  /// Number of triple patterns in the whole tree.
  size_t NumTriples() const;

  std::unique_ptr<Pattern> Clone() const;

 private:
  explicit Pattern(PatternKind kind) : kind_(kind) {}

  void CollectVars(std::set<std::string>* out) const;

  PatternKind kind_;
  std::vector<TriplePattern> triples_;
  std::unique_ptr<Pattern> left_;
  std::unique_ptr<Pattern> right_;
};

/// A parsed SELECT query: projection plus a graph pattern.
struct Query {
  /// Projected variable names; empty means SELECT *.
  std::vector<std::string> projection;
  bool distinct = false;
  std::unique_ptr<Pattern> where;

  std::set<std::string> Vars() const { return where->Vars(); }

  Query Clone() const {
    return Query{projection, distinct, where->Clone()};
  }
};

/// Well-designedness check (Sect. 4.5 / [27]): Q is well-designed iff for
/// every sub-pattern O = (Q1 OPTIONAL Q2) and every variable v in vars(Q2)
/// that also occurs in Q outside of O, v also occurs in vars(Q1).
bool IsWellDesigned(const Pattern& root);

/// Converts a BGP to its pattern-graph representation G(G) (Sect. 4.1):
/// nodes are the distinct subject/object terms (variables and constants),
/// labels are predicate ids assigned densely in first-seen order.
/// `node_terms`/`label_names` receive the term of each graph node and the
/// predicate text of each label. Only valid for BGP patterns.
graph::Graph BgpToGraph(const std::vector<TriplePattern>& bgp,
                        std::vector<Term>* node_terms,
                        std::vector<std::string>* label_names);

}  // namespace sparqlsim::sparql
