#pragma once

#include <string>

#include "sparql/ast.h"

namespace sparqlsim::sparql {

/// Serializes a pattern back to SPARQL group syntax (round-trippable
/// through Parser::ParsePattern).
std::string ToString(const Pattern& pattern);

/// Serializes a full query back to SPARQL.
std::string ToString(const Query& query);

}  // namespace sparqlsim::sparql
