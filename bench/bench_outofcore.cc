// Out-of-core tier bench: cold-open and first-query latency of the
// SQSIMDB2 lazy-loading path against the eager loaders.
//
// The source database (LUBM by default; `--db file.gdb` / SPARQLSIM_DB
// substitutes a real ingested one) is serialized to /tmp in both formats,
// then each variant measures
//   * open      — LoadFile wall-clock (v2-lazy parses only the directory),
//   * first query — a single-predicate solve straight after the open (the
//     lazy variants materialize just the predicates the query touches),
// and reports the backing counters afterwards. `v2-lazy-budget` caps
// resident matrix bytes at SPARQLSIM_RESIDENT_MB (default 1) to exercise
// the evict-and-refault path. Every variant must produce the same relation
// size — the bench fails loudly on any mismatch.
//
// SPARQLSIM_BENCH_JSON=<path> archives the rows as JSON;
// tools/run_benches.sh folds that into the repo-root BENCH_summary.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/pruner.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

struct VariantRow {
  std::string name;
  double open_seconds = 0;
  double first_query_seconds = 0;
  size_t relation_size = 0;
  graph::BackingStats backing;
};

size_t FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<size_t>(size);
}

/// The densest predicate gives the first query real work while still
/// touching only one of the database's matrices — exactly the access
/// pattern the lazy tier is built for.
std::string DensestPredicate(const graph::GraphDatabase& db) {
  uint32_t best = 0;
  size_t best_nnz = 0;
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    if (db.PredicateCardinality(p) > best_nnz) {
      best_nnz = db.PredicateCardinality(p);
      best = p;
    }
  }
  return db.predicates().Name(best);
}

VariantRow RunVariant(const char* name, const std::string& path,
                      const graph::BinaryIo::LoadOptions& options,
                      const sparql::Query& query, size_t reps) {
  VariantRow row;
  row.name = name;
  for (size_t rep = 0; rep < reps; ++rep) {
    util::Stopwatch open_watch;
    auto loaded = graph::BinaryIo::LoadFile(path, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "[bench] cannot load %s: %s\n", path.c_str(),
                   loaded.error_message().c_str());
      std::abort();
    }
    graph::GraphDatabase db = std::move(loaded).value();
    row.open_seconds += open_watch.ElapsedSeconds();

    sim::SparqlSimProcessor processor(&db);
    util::Stopwatch query_watch;
    sim::Solution solution = processor.Solve(*query.where);
    row.first_query_seconds += query_watch.ElapsedSeconds();
    row.relation_size = solution.RelationSize();
    row.backing = db.backing_stats();
  }
  row.open_seconds /= static_cast<double>(reps);
  row.first_query_seconds /= static_cast<double>(reps);
  return row;
}

void WriteJson(const std::vector<VariantRow>& rows, size_t v1_bytes,
               size_t v2_bytes, const std::string& predicate, FILE* out) {
  std::fprintf(out, "{\n  \"bench\": \"outofcore\",\n");
  std::fprintf(out, "  \"v1_bytes\": %zu,\n  \"v2_bytes\": %zu,\n", v1_bytes,
               v2_bytes);
  std::fprintf(out, "  \"query_predicate\": \"%s\",\n", predicate.c_str());
  std::fprintf(out, "  \"variants\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const VariantRow& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"open_seconds\": %.6f, "
                 "\"first_query_seconds\": %.6f, \"relation_size\": %zu, "
                 "\"lazy_predicates\": %zu, \"resident\": %zu, "
                 "\"materializations\": %zu, \"evictions\": %zu, "
                 "\"resident_bytes\": %zu, \"budget_bytes\": %zu}%s\n",
                 r.name.c_str(), r.open_seconds, r.first_query_seconds,
                 r.relation_size, r.backing.predicates, r.backing.resident,
                 r.backing.materializations, r.backing.evictions,
                 r.backing.resident_bytes, r.backing.budget_bytes,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  std::printf("Out-of-core tier: cold open + first query, v1 vs v2\n");

  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  graph::GraphDatabase source =
      override_db ? std::move(*override_db) : bench::MakeBenchLubm();

  const std::string v1_path = "/tmp/sparqlsim_bench_outofcore_v1.gdb";
  const std::string v2_path = "/tmp/sparqlsim_bench_outofcore_v2.gdb";
  if (auto s = graph::BinaryIo::SaveFile(source, v1_path); !s.ok()) {
    std::fprintf(stderr, "[bench] cannot write %s: %s\n", v1_path.c_str(),
                 s.message().c_str());
    return 1;
  }
  if (auto s = graph::BinaryIo::SaveV2File(source, v2_path); !s.ok()) {
    std::fprintf(stderr, "[bench] cannot write %s: %s\n", v2_path.c_str(),
                 s.message().c_str());
    return 1;
  }
  const size_t v1_bytes = FileSizeBytes(v1_path);
  const size_t v2_bytes = FileSizeBytes(v2_path);
  std::printf("db: %zu triples, %zu predicates; v1 %zu bytes, v2 %zu bytes\n",
              source.NumTriples(), source.NumPredicates(), v1_bytes, v2_bytes);

  const std::string predicate = DensestPredicate(source);
  sparql::Query query = bench::ParseOrDie(
      "SELECT * WHERE { ?s <" + predicate + "> ?o . }");
  std::printf("first query: ?s <%s> ?o\n\n", predicate.c_str());

  const size_t reps = bench::EnvSize("SPARQLSIM_BENCH_REPS", 3);
  const size_t budget_mb = bench::EnvSize("SPARQLSIM_RESIDENT_MB", 1);

  graph::BinaryIo::LoadOptions eager;
  eager.eager = true;
  graph::BinaryIo::LoadOptions lazy;
  graph::BinaryIo::LoadOptions lazy_budget;
  lazy_budget.resident_budget_bytes = budget_mb << 20;

  std::vector<VariantRow> rows;
  rows.push_back(RunVariant("v1-eager", v1_path, eager, query, reps));
  rows.push_back(RunVariant("v2-eager", v2_path, eager, query, reps));
  rows.push_back(RunVariant("v2-lazy", v2_path, lazy, query, reps));
  rows.push_back(
      RunVariant("v2-lazy-budget", v2_path, lazy_budget, query, reps));

  std::printf("  %-16s %10s %12s %10s %9s %8s %9s\n", "variant", "open(s)",
              "1st-query(s)", "relation", "resident", "mat.", "evict");
  bench::PrintRule(80);
  for (const VariantRow& r : rows) {
    std::printf("  %-16s %10.5f %12.5f %10zu %5zu/%-3zu %8zu %9zu\n",
                r.name.c_str(), r.open_seconds, r.first_query_seconds,
                r.relation_size, r.backing.resident, r.backing.predicates,
                r.backing.materializations, r.backing.evictions);
  }

  // Determinism gate: the backing tier must never change answers.
  for (const VariantRow& r : rows) {
    if (r.relation_size != rows[0].relation_size) {
      std::fprintf(stderr,
                   "[bench] relation-size mismatch: %s=%zu vs %s=%zu\n",
                   r.name.c_str(), r.relation_size, rows[0].name.c_str(),
                   rows[0].relation_size);
      return 1;
    }
  }
  // The lazy open must leave untouched predicates on disk: a one-predicate
  // query over a multi-predicate database may not materialize everything.
  const VariantRow& lazy_row = rows[2];
  if (source.NumPredicates() > 1 &&
      lazy_row.backing.materializations >= source.NumPredicates()) {
    std::fprintf(stderr,
                 "[bench] lazy open materialized all %zu predicates for a "
                 "single-predicate query\n",
                 source.NumPredicates());
    return 1;
  }

  const char* json_path = std::getenv("SPARQLSIM_BENCH_JSON");
  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    WriteJson(rows, v1_bytes, v2_bytes, predicate, out);
    std::fclose(out);
    std::fprintf(stderr, "[bench] JSON written to %s\n", json_path);
  } else {
    WriteJson(rows, v1_bytes, v2_bytes, predicate, stdout);
  }
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
