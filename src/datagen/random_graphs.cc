#include "datagen/random_graphs.h"

#include <string>

namespace sparqlsim::datagen {

graph::GraphDatabase MakeRandomDatabase(const RandomGraphConfig& config) {
  util::Rng rng(config.seed);
  graph::GraphDatabaseBuilder builder;
  std::vector<uint32_t> nodes;
  nodes.reserve(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    nodes.push_back(builder.InternNode("n" + std::to_string(i)));
  }
  std::vector<uint32_t> predicates;
  predicates.reserve(config.num_labels);
  for (size_t i = 0; i < config.num_labels; ++i) {
    predicates.push_back(builder.InternPredicate("p" + std::to_string(i)));
  }
  for (size_t i = 0; i < config.num_edges; ++i) {
    uint32_t s = nodes[rng.NextBounded(nodes.size())];
    uint32_t p = predicates[rng.NextBounded(predicates.size())];
    uint32_t o = nodes[rng.NextBounded(nodes.size())];
    util::Status status = builder.AddTripleIds(s, p, o);
    (void)status;
  }
  return std::move(builder).Build();
}

graph::Graph MakeRandomPattern(size_t num_nodes, size_t num_extra_edges,
                               size_t num_labels, uint64_t seed) {
  util::Rng rng(seed);
  graph::Graph g(num_nodes);
  // Random spanning structure: node i attaches to a random earlier node,
  // in a random direction, so the pattern is connected.
  for (size_t i = 1; i < num_nodes; ++i) {
    uint32_t other = static_cast<uint32_t>(rng.NextBounded(i));
    uint32_t label = static_cast<uint32_t>(rng.NextBounded(num_labels));
    if (rng.NextBool(0.5)) {
      g.AddEdge(static_cast<uint32_t>(i), label, other);
    } else {
      g.AddEdge(other, label, static_cast<uint32_t>(i));
    }
  }
  for (size_t i = 0; i < num_extra_edges; ++i) {
    uint32_t from = static_cast<uint32_t>(rng.NextBounded(num_nodes));
    uint32_t to = static_cast<uint32_t>(rng.NextBounded(num_nodes));
    uint32_t label = static_cast<uint32_t>(rng.NextBounded(num_labels));
    g.AddEdge(from, label, to);
  }
  return g;
}

}  // namespace sparqlsim::datagen
