#include "engine/evaluator.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

#include "sparql/normalize.h"
#include "util/stopwatch.h"

namespace sparqlsim::engine {

namespace {

/// A triple-pattern position resolved against the database dictionary.
struct Slot {
  bool is_var = false;
  int var_index = -1;         // schema position when is_var
  uint32_t constant = kUnbound;  // node id when constant; kUnbound = missing
  bool missing = false;       // constant not present in the dictionary
};

struct ResolvedPattern {
  Slot subject;
  Slot object;
  uint32_t predicate = kUnbound;  // kUnbound = predicate not in dictionary
};

struct RowKeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t v : key) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

std::vector<std::string> BgpVars(
    const std::vector<sparql::TriplePattern>& triples) {
  std::vector<std::string> vars;
  auto add = [&](const sparql::Term& t) {
    if (!t.IsVariable()) return;
    if (std::find(vars.begin(), vars.end(), t.text()) == vars.end()) {
      vars.push_back(t.text());
    }
  };
  for (const sparql::TriplePattern& t : triples) {
    add(t.subject);
    add(t.object);
  }
  return vars;
}

}  // namespace

std::vector<size_t> Evaluator::PlanBgp(
    const std::vector<sparql::TriplePattern>& triples) const {
  std::vector<size_t> plan(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) plan[i] = i;
  if (options_.policy == JoinOrderPolicy::kAsWritten || triples.size() <= 1) {
    return plan;
  }

  auto cardinality = [&](const sparql::TriplePattern& t) -> double {
    auto p = db_->predicates().Lookup(t.predicate.text());
    return p ? static_cast<double>(db_->PredicateCardinality(*p)) : 0.0;
  };
  auto vars_of = [](const sparql::TriplePattern& t) {
    std::vector<std::string> vars;
    if (t.subject.IsVariable()) vars.push_back(t.subject.text());
    if (t.object.IsVariable()) vars.push_back(t.object.text());
    return vars;
  };

  std::vector<size_t> order;
  std::vector<bool> used(triples.size(), false);
  std::set<std::string> bound;

  for (size_t step = 0; step < triples.size(); ++step) {
    double best_cost = 0;
    int best = -1;
    for (size_t i = 0; i < triples.size(); ++i) {
      if (used[i]) continue;
      const sparql::TriplePattern& t = triples[i];
      bool s_bound = t.subject.IsConstant() ||
                     (t.subject.IsVariable() && bound.count(t.subject.text()));
      bool o_bound = t.object.IsConstant() ||
                     (t.object.IsVariable() && bound.count(t.object.text()));
      double card = cardinality(t);
      double cost;
      if (options_.policy == JoinOrderPolicy::kRdfoxLike) {
        // Bound-aware greedy estimate.
        auto p = db_->predicates().Lookup(t.predicate.text());
        if (!p || card == 0) {
          cost = 0;  // guaranteed empty; evaluate first and finish
        } else if (s_bound && o_bound) {
          cost = 1;
        } else if (s_bound) {
          cost = std::max(1.0, card / std::max<size_t>(
                                          1, db_->DistinctSubjects(*p)));
        } else if (o_bound) {
          cost = std::max(1.0, card / std::max<size_t>(
                                          1, db_->DistinctObjects(*p)));
        } else {
          cost = card;
        }
        bool connected = s_bound || o_bound;
        if (!bound.empty() && !connected) cost *= 1e6;  // defer cartesians
      } else {
        // Virtuoso-like: static per-predicate cardinality, preferring
        // patterns connected to the bound set. Patterns whose only
        // "binding" is a constant are scannable but join nothing, so
        // variable connectivity wins ties — without this, a re-planned
        // order on a pruned database can produce cartesian blow-ups far
        // beyond the (real) D4-style anomaly of the paper.
        bool var_connected =
            (t.subject.IsVariable() && bound.count(t.subject.text())) ||
            (t.object.IsVariable() && bound.count(t.object.text()));
        cost = card;
        bool connected = var_connected || s_bound || o_bound || bound.empty();
        if (!connected) cost += 1e15;
        if (!var_connected && !bound.empty()) cost += 0.5;  // tie-break
      }
      if (best < 0 || cost < best_cost) {
        best = static_cast<int>(i);
        best_cost = cost;
      }
    }
    order.push_back(static_cast<size_t>(best));
    used[best] = true;
    for (const std::string& v : vars_of(triples[best])) bound.insert(v);
  }
  return order;
}

SolutionSet Evaluator::EvalBgp(
    const std::vector<sparql::TriplePattern>& triples,
    EvalStats* stats) const {
  std::vector<std::string> vars = BgpVars(triples);
  SolutionSet result(vars);
  std::map<std::string, int> vidx;
  for (size_t i = 0; i < vars.size(); ++i) vidx[vars[i]] = static_cast<int>(i);

  auto resolve_slot = [&](const sparql::Term& t) {
    Slot s;
    if (t.IsVariable()) {
      s.is_var = true;
      s.var_index = vidx[t.text()];
    } else {
      auto id = db_->nodes().Lookup(t.text());
      if (id) {
        s.constant = *id;
      } else {
        s.missing = true;
      }
    }
    return s;
  };

  // The unit table: one row with every variable unbound.
  const size_t w = vars.size();
  std::vector<uint32_t> rows(w, kUnbound);
  size_t num_rows = 1;

  for (size_t index : PlanBgp(triples)) {
    const sparql::TriplePattern& t = triples[index];
    ResolvedPattern rp;
    rp.subject = resolve_slot(t.subject);
    rp.object = resolve_slot(t.object);
    auto p = db_->predicates().Lookup(t.predicate.text());
    if (!p || rp.subject.missing || rp.object.missing) {
      num_rows = 0;
      rows.clear();
      break;
    }
    rp.predicate = *p;

    const util::BitMatrix& fwd = db_->Forward(rp.predicate);
    const util::BitMatrix& bwd = db_->Backward(rp.predicate);

    std::vector<uint32_t> next;
    size_t next_rows = 0;
    auto emit = [&](const uint32_t* row, int idx1, uint32_t val1, int idx2,
                    uint32_t val2) {
      size_t at = next.size();
      next.insert(next.end(), row, row + w);
      if (idx1 >= 0) next[at + idx1] = val1;
      if (idx2 >= 0) next[at + idx2] = val2;
      ++next_rows;
    };

    for (size_t r = 0; r < num_rows; ++r) {
      const uint32_t* row = rows.data() + r * w;
      uint32_t sval = rp.subject.is_var ? row[rp.subject.var_index]
                                        : rp.subject.constant;
      uint32_t oval =
          rp.object.is_var ? row[rp.object.var_index] : rp.object.constant;

      if (sval != kUnbound && oval != kUnbound) {
        if (fwd.Test(sval, oval)) emit(row, -1, 0, -1, 0);
      } else if (sval != kUnbound) {
        for (uint32_t o : fwd.Row(sval)) {
          emit(row, rp.object.var_index, o, -1, 0);
        }
      } else if (oval != kUnbound) {
        for (uint32_t s : bwd.Row(oval)) {
          emit(row, rp.subject.var_index, s, -1, 0);
        }
      } else if (rp.subject.is_var && rp.object.is_var &&
                 rp.subject.var_index == rp.object.var_index) {
        // Self-loop pattern ?x p ?x.
        for (uint32_t s : fwd.NonEmptyRows()) {
          if (fwd.Test(s, s)) emit(row, rp.subject.var_index, s, -1, 0);
        }
      } else {
        for (uint32_t s : fwd.NonEmptyRows()) {
          for (uint32_t o : fwd.Row(s)) {
            emit(row, rp.subject.var_index, s, rp.object.var_index, o);
          }
        }
      }
    }
    rows = std::move(next);
    num_rows = next_rows;
    if (stats) stats->intermediate_rows += num_rows;
    if (num_rows == 0) break;
  }

  if (w == 0) {
    // All-constant BGP: the unit solution survives iff all triples hold.
    for (size_t i = 0; i < num_rows; ++i) result.AddUnboundRow();
    return result;
  }
  for (size_t r = 0; r < num_rows; ++r) {
    result.AddRow({rows.data() + r * w, w});
  }
  return result;
}

SolutionSet Evaluator::Join(const SolutionSet& left, const SolutionSet& right,
                            bool left_outer, EvalStats* stats) const {
  // Output schema: left vars, then right-only vars.
  std::vector<std::string> out_vars = left.vars();
  std::vector<std::string> shared;
  for (const std::string& v : right.vars()) {
    if (left.IndexOf(v) >= 0) {
      shared.push_back(v);
    } else {
      out_vars.push_back(v);
    }
  }
  SolutionSet out(out_vars);

  std::vector<int> l_shared, r_shared;
  for (const std::string& v : shared) {
    l_shared.push_back(left.IndexOf(v));
    r_shared.push_back(right.IndexOf(v));
  }
  // Mapping from output column to right column (or -1 = take from left).
  std::vector<int> out_from_right(out_vars.size(), -1);
  for (size_t i = 0; i < out_vars.size(); ++i) {
    out_from_right[i] = right.IndexOf(out_vars[i]);
  }

  auto merge = [&](std::span<const uint32_t> l, std::span<const uint32_t> r) {
    std::vector<uint32_t> row(out_vars.size());
    for (size_t i = 0; i < out_vars.size(); ++i) {
      uint32_t value = i < l.size() ? l[i] : kUnbound;
      if (value == kUnbound && out_from_right[i] >= 0 && !r.empty()) {
        value = r[out_from_right[i]];
      }
      row[i] = value;
    }
    out.AddRow(row);
  };

  auto compatible = [&](std::span<const uint32_t> l,
                        std::span<const uint32_t> r) {
    for (size_t i = 0; i < l_shared.size(); ++i) {
      uint32_t a = l[l_shared[i]];
      uint32_t b = r[r_shared[i]];
      if (a != kUnbound && b != kUnbound && a != b) return false;
    }
    return true;
  };

  // Hash join is valid when no shared column contains kUnbound.
  bool hashable = !shared.empty();
  for (size_t r = 0; hashable && r < left.NumRows(); ++r) {
    for (int c : l_shared) {
      if (left.Row(r)[c] == kUnbound) {
        hashable = false;
        break;
      }
    }
  }
  for (size_t r = 0; hashable && r < right.NumRows(); ++r) {
    for (int c : r_shared) {
      if (right.Row(r)[c] == kUnbound) {
        hashable = false;
        break;
      }
    }
  }

  if (shared.empty()) {
    // Cartesian product; with left_outer and empty right, pad.
    for (size_t l = 0; l < left.NumRows(); ++l) {
      if (right.NumRows() == 0) {
        if (left_outer) merge(left.Row(l), {});
        continue;
      }
      for (size_t r = 0; r < right.NumRows(); ++r) {
        merge(left.Row(l), right.Row(r));
      }
    }
  } else if (hashable) {
    std::unordered_map<std::vector<uint32_t>, std::vector<uint32_t>, RowKeyHash>
        table;
    std::vector<uint32_t> key(r_shared.size());
    for (size_t r = 0; r < right.NumRows(); ++r) {
      for (size_t i = 0; i < r_shared.size(); ++i) {
        key[i] = right.Row(r)[r_shared[i]];
      }
      table[key].push_back(static_cast<uint32_t>(r));
    }
    for (size_t l = 0; l < left.NumRows(); ++l) {
      for (size_t i = 0; i < l_shared.size(); ++i) {
        key[i] = left.Row(l)[l_shared[i]];
      }
      auto it = table.find(key);
      if (it == table.end()) {
        if (left_outer) merge(left.Row(l), {});
        continue;
      }
      for (uint32_t r : it->second) merge(left.Row(l), right.Row(r));
    }
  } else {
    // General compatibility join (unbound values possible): nested loop.
    for (size_t l = 0; l < left.NumRows(); ++l) {
      bool matched = false;
      for (size_t r = 0; r < right.NumRows(); ++r) {
        if (compatible(left.Row(l), right.Row(r))) {
          merge(left.Row(l), right.Row(r));
          matched = true;
        }
      }
      if (!matched && left_outer) merge(left.Row(l), {});
    }
  }

  if (stats) stats->intermediate_rows += out.NumRows();
  return out;
}

SolutionSet Evaluator::Union(const SolutionSet& left, const SolutionSet& right,
                             EvalStats* stats) const {
  std::vector<std::string> out_vars = left.vars();
  for (const std::string& v : right.vars()) {
    if (left.IndexOf(v) < 0) out_vars.push_back(v);
  }
  SolutionSet out(out_vars);
  std::vector<int> from_left(out_vars.size()), from_right(out_vars.size());
  for (size_t i = 0; i < out_vars.size(); ++i) {
    from_left[i] = left.IndexOf(out_vars[i]);
    from_right[i] = right.IndexOf(out_vars[i]);
  }
  std::vector<uint32_t> row(out_vars.size());
  for (size_t r = 0; r < left.NumRows(); ++r) {
    for (size_t i = 0; i < out_vars.size(); ++i) {
      row[i] = left.Value(r, from_left[i]);
    }
    out.AddRow(row);
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    for (size_t i = 0; i < out_vars.size(); ++i) {
      row[i] = right.Value(r, from_right[i]);
    }
    out.AddRow(row);
  }
  if (stats) stats->intermediate_rows += out.NumRows();
  return out;
}

SolutionSet Evaluator::EvalNode(const sparql::Pattern& pattern,
                                EvalStats* stats) const {
  switch (pattern.kind()) {
    case sparql::PatternKind::kBgp:
      return EvalBgp(pattern.triples(), stats);
    case sparql::PatternKind::kJoin:
      return Join(EvalNode(pattern.left(), stats),
                  EvalNode(pattern.right(), stats), /*left_outer=*/false,
                  stats);
    case sparql::PatternKind::kOptional: {
      SolutionSet left = EvalNode(pattern.left(), stats);
      // Exact pruned evaluation: the non-monotone OPTIONAL extension must
      // be decided against the unpruned database (see EvaluatorOptions).
      SolutionSet right =
          options_.optional_rhs_db != nullptr
              ? Evaluator(options_.optional_rhs_db, options_)
                    .EvalNode(pattern.right(), stats)
              : EvalNode(pattern.right(), stats);
      return Join(left, right, /*left_outer=*/true, stats);
    }
    case sparql::PatternKind::kUnion:
      return Union(EvalNode(pattern.left(), stats),
                   EvalNode(pattern.right(), stats), stats);
  }
  return SolutionSet{};
}

SolutionSet Evaluator::EvaluatePattern(const sparql::Pattern& pattern,
                                       EvalStats* stats) const {
  util::Stopwatch timer;
  // Merging adjacent BGPs lets the planner order whole conjunctive blocks.
  std::unique_ptr<sparql::Pattern> merged =
      sparql::MergeBgps(pattern.Clone());
  SolutionSet result = EvalNode(*merged, stats);
  if (stats) stats->seconds = timer.ElapsedSeconds();
  return result;
}

SolutionSet Evaluator::Evaluate(const sparql::Query& query,
                                EvalStats* stats) const {
  util::Stopwatch timer;
  SolutionSet all = EvaluatePattern(*query.where, stats);
  SolutionSet result = std::move(all);
  if (!query.projection.empty()) {
    SolutionSet projected(query.projection);
    std::vector<int> source(query.projection.size());
    for (size_t i = 0; i < query.projection.size(); ++i) {
      source[i] = result.IndexOf(query.projection[i]);
    }
    std::vector<uint32_t> row(query.projection.size());
    for (size_t r = 0; r < result.NumRows(); ++r) {
      for (size_t i = 0; i < row.size(); ++i) {
        row[i] = result.Value(r, source[i]);
      }
      projected.AddRow(row);
    }
    result = std::move(projected);
  }
  if (query.distinct) result.SortAndDedupe();
  if (stats) stats->seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sparqlsim::engine
