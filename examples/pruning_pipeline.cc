// Per-query database pruning at dataset scale (the Sect. 5 application):
// generates a LUBM-like database, runs the Fig. 6(b) query L1 through the
// pruning pipeline, and compares query times on the full versus pruned
// database — a single-query rendition of the paper's Table 4.
//
// Build & run:  ./build/examples/pruning_pipeline

#include <cstdio>

#include "datagen/lubm.h"
#include "datagen/queries.h"
#include "engine/evaluator.h"
#include "sim/pruner.h"
#include "sparql/parser.h"
#include "util/stopwatch.h"

int main() {
  using namespace sparqlsim;

  datagen::LubmConfig config;
  config.num_universities = 3;
  graph::GraphDatabase db = datagen::MakeLubmDatabase(config);
  std::printf("LUBM-like database: %zu triples, %zu nodes, %zu predicates\n",
              db.NumTriples(), db.NumNodes(), db.NumPredicates());
  std::printf("adjacency matrices: %.1f MB CSR (%.1f MB gap-encoded)\n",
              db.ApproxMatrixBytes() / 1e6, db.GapEncodedMatrixBytes() / 1e6);

  // L1: the publication/student/professor/department/university cycle.
  const std::string text = datagen::LubmQueries()[1].text;
  std::printf("\nquery L1:\n%s\n", text.c_str());
  sparql::Query query = std::move(sparql::Parser::Parse(text)).value();

  // Full-database evaluation.
  engine::Evaluator full(&db);
  util::Stopwatch watch;
  engine::SolutionSet full_rows = full.Evaluate(query);
  double t_full = watch.ElapsedSeconds();
  std::printf("\nfull database:   %8zu results in %.4fs\n",
              full_rows.NumRows(), t_full);

  // Dual simulation pruning.
  sim::SparqlSimProcessor processor(&db);
  sim::PruneReport report = processor.Prune(query);
  std::printf("dual simulation: kept %zu of %zu triples (%.2f%%) in %.4fs "
              "(%zu fixpoint rounds)\n",
              report.kept_triples.size(), db.NumTriples(),
              100.0 * static_cast<double>(report.kept_triples.size()) /
                  static_cast<double>(db.NumTriples()),
              report.total_seconds, report.stats.rounds);

  // Pruned-database evaluation.
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  engine::Evaluator on_pruned(&pruned);
  watch.Restart();
  engine::SolutionSet pruned_rows = on_pruned.Evaluate(query);
  double t_pruned = watch.ElapsedSeconds();
  std::printf("pruned database: %8zu results in %.4fs\n",
              pruned_rows.NumRows(), t_pruned);

  if (pruned_rows.NumRows() != full_rows.NumRows()) {
    std::fprintf(stderr, "soundness violation!\n");
    return 1;
  }
  std::printf("\nspeedup on the engine: %.2fx (plus %.4fs pruning time)\n",
              t_full / (t_pruned > 0 ? t_pruned : 1e-9),
              report.total_seconds);
  return 0;
}
