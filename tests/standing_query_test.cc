// Standing-query maintenance contract: after every applied delta batch the
// incrementally maintained solution must be *bit-identical* to a cold
// solve on the post-delta database — for every escalation policy, thread
// count, kernel, and shard count. The randomized differential suite below
// drives logged seeds through insert-only, delete-only, mixed, and
// no-op/duplicate batches (UNION and OPTIONAL patterns included) and
// checks each maintained report against a cold reference chain; scripted
// tests pin the edge cases (a delta emptying the selection, a delta
// restoring retracted candidates) and the engagement guards (maintenance
// must actually do less work than a first round, not silently recompute).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/random_graphs.h"
#include "graph/graph_database.h"
#include "graph/triple.h"
#include "sim/sim_engine.h"
#include "sim/standing_query.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace sparqlsim::sim {
namespace {

sparql::Query ParseQuery(const std::string& text) {
  auto parsed = sparql::Parser::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error_message() << " in " << text;
  return std::move(parsed).value();
}

// The full configuration matrix the differential invariant must hold
// over: threads x kernel x shards. Policies are a separate axis
// (PolicyAgreement below) so the matrix stays affordable.
struct MatrixConfig {
  size_t threads;
  SolverOptions::KernelMode kernel;
  size_t shards;
};

std::vector<MatrixConfig> FullMatrix() {
  std::vector<MatrixConfig> out;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (auto kernel :
         {SolverOptions::KernelMode::kAuto, SolverOptions::KernelMode::kDense,
          SolverOptions::KernelMode::kCompressed}) {
      for (size_t shards : {size_t{1}, size_t{4}}) {
        out.push_back({threads, kernel, shards});
      }
    }
  }
  return out;
}

std::string Describe(const MatrixConfig& c) {
  const char* kernel = c.kernel == SolverOptions::KernelMode::kAuto ? "auto"
                       : c.kernel == SolverOptions::KernelMode::kDense
                           ? "dense"
                           : "compressed";
  return "threads=" + std::to_string(c.threads) + " kernel=" + kernel +
         " shards=" + std::to_string(c.shards);
}

bool Contains(const std::vector<graph::Triple>& sorted,
              const graph::Triple& t) {
  return std::binary_search(sorted.begin(), sorted.end(), t);
}

/// A reproducible delta stream cycling through the four batch kinds:
/// delete-only, insert-only (restores + fresh triples), mixed, and
/// no-op/duplicate (deleting absent triples, inserting present ones).
/// `content` tracks the expected post-batch triple set.
std::vector<TripleDelta> MakeDeltaStream(const graph::GraphDatabase& db,
                                         util::Rng& rng, size_t batches) {
  std::vector<graph::Triple> content = db.AllTriples();
  std::sort(content.begin(), content.end());
  std::vector<graph::Triple> retracted;

  auto random_triple = [&] {
    return graph::Triple{
        static_cast<uint32_t>(rng.NextBounded(db.NumNodes())),
        static_cast<uint32_t>(rng.NextBounded(db.NumPredicates())),
        static_cast<uint32_t>(rng.NextBounded(db.NumNodes()))};
  };
  auto sample_present = [&](size_t count) {
    std::vector<graph::Triple> out;
    for (size_t i = 0; i < count && !content.empty(); ++i) {
      out.push_back(content[rng.NextBounded(content.size())]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  std::vector<TripleDelta> stream;
  for (size_t batch = 0; batch < batches; ++batch) {
    TripleDelta delta;
    switch (batch % 4) {
      case 0:  // delete-only
        delta.deletes = sample_present(12);
        break;
      case 1: {  // insert-only: restore some retractions + fresh triples
        const size_t restore = std::min<size_t>(retracted.size(), 6);
        delta.inserts.assign(
            retracted.end() - static_cast<ptrdiff_t>(restore),
            retracted.end());
        retracted.resize(retracted.size() - restore);
        for (size_t i = 0; i < 6; ++i) {
          graph::Triple t = random_triple();
          if (!Contains(content, t)) delta.inserts.push_back(t);
        }
        break;
      }
      case 2:  // mixed: disjoint deletes (present) + inserts (absent)
        delta.deletes = sample_present(8);
        for (size_t i = 0; i < 5; ++i) {
          graph::Triple t = random_triple();
          if (!Contains(content, t)) delta.inserts.push_back(t);
        }
        break;
      case 3:  // no-op: absent deletes + duplicate inserts
        for (size_t i = 0; i < 5; ++i) {
          graph::Triple t = random_triple();
          if (!Contains(content, t)) delta.deletes.push_back(t);
        }
        delta.inserts = sample_present(4);
        break;
    }
    // Maintain the expected content set.
    for (const graph::Triple& t : delta.deletes) {
      auto it = std::lower_bound(content.begin(), content.end(), t);
      if (it != content.end() && *it == t) {
        content.erase(it);
        retracted.push_back(t);
      }
    }
    for (const graph::Triple& t : delta.inserts) {
      auto it = std::lower_bound(content.begin(), content.end(), t);
      if (it == content.end() || *it != t) content.insert(it, t);
    }
    stream.push_back(std::move(delta));
  }
  return stream;
}

/// Cold reference chain: db_0 = base, db_i = db_{i-1} - deletes + inserts,
/// solved sequentially without caches. Index 0 is the pre-delta solve.
struct ReferenceChain {
  std::vector<graph::GraphDatabase> dbs;
  std::vector<PruneReport> reports;
};

ReferenceChain MakeReferenceChain(const graph::GraphDatabase& base,
                                  const std::vector<TripleDelta>& stream,
                                  const sparql::Query& query) {
  SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  ReferenceChain chain;
  chain.dbs.push_back(base.Restrict(base.AllTriples()));  // content copy
  for (const TripleDelta& delta : stream) {
    graph::GraphDatabase next =
        chain.dbs.back().WithTriplesRemoved(delta.deletes).WithTriplesAdded(
            delta.inserts);
    chain.dbs.push_back(std::move(next));
  }
  for (const graph::GraphDatabase& db : chain.dbs) {
    SimEngine engine(&db, plain);
    chain.reports.push_back(engine.Prune(query));
  }
  return chain;
}

void ExpectSameSolution(const PruneReport& got, const PruneReport& want,
                        const std::string& context) {
  EXPECT_EQ(got.kept_triples, want.kept_triples) << context;
  EXPECT_EQ(got.var_candidates, want.var_candidates) << context;
  EXPECT_EQ(got.num_branches, want.num_branches) << context;
}

// ---------------------------------------------------------------------------
// Randomized differential suite over the full configuration matrix
// ---------------------------------------------------------------------------

class StandingDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StandingDifferentialTest, MaintainedEqualsColdAcrossFullMatrix) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  datagen::RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 240;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase base = datagen::MakeRandomDatabase(config);

  const std::vector<std::string> texts = {
      "SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?a . }",
      "SELECT * WHERE { ?a <p1> ?b . OPTIONAL { ?b <p2> ?c . } }",
      "SELECT * WHERE { { ?a <p0> ?b . ?b <p1> ?c . } UNION "
      "{ ?a <p2> ?b . ?b <p2> ?c . } }",
  };

  util::Rng rng(seed * 7919 + 13);
  const std::vector<TripleDelta> stream = MakeDeltaStream(base, rng, 6);

  for (size_t q = 0; q < texts.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    const sparql::Query query = ParseQuery(texts[q]);
    const ReferenceChain chain = MakeReferenceChain(base, stream, query);

    for (const MatrixConfig& mc : FullMatrix()) {
      StandingQueryOptions options;
      options.solver.num_threads = mc.threads;
      options.solver.kernel_mode = mc.kernel;
      options.solver.num_shards = mc.shards;
      options.solver.cache_sois = false;
      options.solver.cache_solutions = false;

      StandingQuery standing(query.Clone(), base.Snapshot(), options);
      ExpectSameSolution(standing.report(), chain.reports[0],
                         Describe(mc) + " cold");
      for (size_t batch = 0; batch < stream.size(); ++batch) {
        const PruneReport& got = standing.Apply(stream[batch]);
        ExpectSameSolution(got, chain.reports[batch + 1],
                           Describe(mc) + " batch " + std::to_string(batch));
      }
      // The stream's no-op batches (kind 3) must have taken the
      // contentless fast path at least once.
      EXPECT_GT(standing.stats().noop_applies, 0u) << Describe(mc);
      EXPECT_EQ(standing.stats().applies + standing.stats().noop_applies,
                stream.size())
          << Describe(mc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StandingDifferentialTest,
                         ::testing::Values(11, 23, 37, 41, 59, 67, 83, 97));

// ---------------------------------------------------------------------------
// Escalation policy: forced maintenance, forced recompute, and the cost
// model must be observationally identical
// ---------------------------------------------------------------------------

class StandingPolicyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StandingPolicyTest, AllPoliciesAgreeBitIdentically) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  datagen::RandomGraphConfig config;
  config.num_nodes = 50;
  config.num_edges = 200;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase base = datagen::MakeRandomDatabase(config);
  const sparql::Query query =
      ParseQuery("SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . ?a <p2> ?c . }");

  util::Rng rng(seed + 1);
  const std::vector<TripleDelta> stream = MakeDeltaStream(base, rng, 8);
  const ReferenceChain chain = MakeReferenceChain(base, stream, query);

  for (auto policy : {StandingQueryOptions::Policy::kAuto,
                      StandingQueryOptions::Policy::kForceMaintain,
                      StandingQueryOptions::Policy::kForceRecompute}) {
    StandingQueryOptions options;
    options.policy = policy;
    options.solver.cache_sois = false;
    options.solver.cache_solutions = false;
    StandingQuery standing(query.Clone(), base.Snapshot(), options);
    const std::string tag = "policy=" + std::to_string(static_cast<int>(policy));
    ExpectSameSolution(standing.report(), chain.reports[0], tag + " cold");
    for (size_t batch = 0; batch < stream.size(); ++batch) {
      ExpectSameSolution(standing.Apply(stream[batch]),
                         chain.reports[batch + 1],
                         tag + " batch " + std::to_string(batch));
    }
    // The forced modes must do what they say (on batches that solved).
    const StandingStats& stats = standing.stats();
    if (policy == StandingQueryOptions::Policy::kForceMaintain) {
      EXPECT_EQ(stats.recomputed, 0u);
      EXPECT_GT(stats.maintained, 0u);
    }
    if (policy == StandingQueryOptions::Policy::kForceRecompute) {
      EXPECT_EQ(stats.maintained, 0u);
      EXPECT_GT(stats.recomputed, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StandingPolicyTest,
                         ::testing::Values(5, 17, 29, 43));

// The engagement guard: on a gradual-erosion workload (delete-only small
// batches — the LC standing-query regime) the cost model must keep
// maintaining, never silently escalate, and must arm strictly fewer
// inequalities than a cold first round evaluates.
TEST(StandingEscalationTest, GradualErosionStaysOnTheMaintenancePath) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 80;
  config.num_edges = 400;
  config.num_labels = 3;
  config.seed = 31;
  graph::GraphDatabase base = datagen::MakeRandomDatabase(config);
  const sparql::Query query =
      ParseQuery("SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?d . }");

  StandingQueryOptions options;
  options.solver.cache_sois = false;
  options.solver.cache_solutions = false;
  StandingQuery standing(query.Clone(), base.Snapshot(), options);

  // Erode a single predicate: the dirty set stays {p2}, so arming must be
  // a strict subset of the system (only inequalities reading p2 or
  // depending on its adjacent variables re-run).
  std::vector<graph::Triple> content;
  const uint32_t p2 = *base.predicates().Lookup("p2");
  for (const graph::Triple& t : base.AllTriples()) {
    if (t.predicate == p2) content.push_back(t);
  }
  ASSERT_FALSE(content.empty());
  util::Rng rng(77);
  size_t content_batches = 0;
  for (size_t batch = 0; batch < 6; ++batch) {
    TripleDelta delta;
    for (size_t i = 0; i < 10 && !content.empty(); ++i) {
      const size_t at = rng.NextBounded(content.size());
      delta.deletes.push_back(content[at]);
      content.erase(content.begin() + static_cast<ptrdiff_t>(at));
    }
    if (delta.Empty()) break;
    standing.Apply(delta);
    ++content_batches;
  }

  const StandingStats& stats = standing.stats();
  // Deletions never enter the affected cone, so kAuto must maintain every
  // batch — a recompute here means the cost model regressed.
  EXPECT_EQ(stats.applies, content_batches);
  EXPECT_EQ(stats.recomputed, 0u);
  EXPECT_GT(stats.maintained, 0u);
  // Engagement: strictly fewer armed inequalities than system size, and
  // incremental state actually carried across generations.
  EXPECT_GT(stats.total_ineqs, 0u);
  EXPECT_LT(stats.armed_ineqs, stats.total_ineqs);
  EXPECT_GT(stats.carried_entries, 0u);
}

// UNION branches whose predicates a delta does not touch must be reused
// verbatim — no solve, no re-extraction.
TEST(StandingEscalationTest, UntouchedUnionBranchesAreSkipped) {
  graph::GraphDatabaseBuilder builder;
  for (int i = 0; i < 8; ++i) builder.InternNode("n" + std::to_string(i));
  builder.InternPredicate("left");
  builder.InternPredicate("right");
  ASSERT_TRUE(builder.AddTriple("n0", "left", "n1").ok());
  ASSERT_TRUE(builder.AddTriple("n1", "left", "n2").ok());
  ASSERT_TRUE(builder.AddTriple("n3", "right", "n4").ok());
  ASSERT_TRUE(builder.AddTriple("n4", "right", "n5").ok());
  graph::GraphDatabase base = std::move(builder).Build();

  const sparql::Query query = ParseQuery(
      "SELECT * WHERE { { ?a <left> ?b . ?b <left> ?c . } UNION "
      "{ ?a <right> ?b . ?b <right> ?c . } }");
  StandingQueryOptions options;
  options.solver.cache_sois = false;
  options.solver.cache_solutions = false;
  StandingQuery standing(query.Clone(), base.Snapshot(), options);
  ASSERT_EQ(standing.report().num_branches, 2u);

  // Delete a <left> triple: the <right> branch must be reused as-is.
  const uint32_t left = *base.predicates().Lookup("left");
  const uint32_t n1 = *base.nodes().Lookup("n1");
  const uint32_t n2 = *base.nodes().Lookup("n2");
  TripleDelta delta;
  delta.deletes.push_back({n1, left, n2});
  const PruneReport& report = standing.Apply(delta);
  EXPECT_EQ(standing.stats().untouched_branches, 1u);

  SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  SimEngine cold(&standing.db(), plain);
  ExpectSameSolution(report, cold.Prune(query), "after left-delete");
}

// ---------------------------------------------------------------------------
// Scripted edge cases: emptying the selection, restoring retracted
// candidates, duplicate/absent deltas
// ---------------------------------------------------------------------------

TEST(StandingQueryTest, DeltaEmptiesSelectionAndRestoreBringsItBack) {
  graph::GraphDatabaseBuilder builder;
  for (int i = 0; i < 6; ++i) builder.InternNode("n" + std::to_string(i));
  builder.InternPredicate("e");
  builder.InternPredicate("f");
  // A chain n0 -e-> n1 -f-> n2 plus a decoy edge n3 -e-> n4.
  ASSERT_TRUE(builder.AddTriple("n0", "e", "n1").ok());
  ASSERT_TRUE(builder.AddTriple("n1", "f", "n2").ok());
  ASSERT_TRUE(builder.AddTriple("n3", "e", "n4").ok());
  graph::GraphDatabase base = std::move(builder).Build();

  const sparql::Query query =
      ParseQuery("SELECT * WHERE { ?a <e> ?b . ?b <f> ?c . }");
  StandingQueryOptions options;
  options.solver.cache_sois = false;
  options.solver.cache_solutions = false;
  StandingQuery standing(query.Clone(), base.Snapshot(), options);
  const PruneReport initial = standing.report();
  ASSERT_FALSE(initial.kept_triples.empty());

  const uint32_t f = *base.predicates().Lookup("f");
  const uint32_t n1 = *base.nodes().Lookup("n1");
  const uint32_t n2 = *base.nodes().Lookup("n2");
  const graph::Triple bridge{n1, f, n2};

  // Deleting the only <f> bridge empties the whole selection.
  TripleDelta retract;
  retract.deletes.push_back(bridge);
  const PruneReport& empty = standing.Apply(retract);
  EXPECT_TRUE(empty.kept_triples.empty());
  for (const auto& [var, bits] : empty.var_candidates) {
    EXPECT_TRUE(bits.None()) << "?" << var;
  }

  // Restoring it brings back exactly the original solution.
  TripleDelta restore;
  restore.inserts.push_back(bridge);
  const PruneReport& back = standing.Apply(restore);
  ExpectSameSolution(back, initial, "after restore");

  // Deleting an absent triple / re-inserting a present one is free: the
  // generation is reused and no solve happens.
  const uint64_t generation = standing.generation();
  const size_t applies = standing.stats().applies;
  TripleDelta noop;
  noop.deletes.push_back(bridge);  // just restored, so delete it...
  noop.deletes.pop_back();
  noop.deletes.push_back({n2, f, n1});  // absent
  noop.inserts.push_back(bridge);       // present
  standing.Apply(noop);
  EXPECT_EQ(standing.generation(), generation);
  EXPECT_EQ(standing.stats().applies, applies);
  EXPECT_GT(standing.stats().noop_applies, 0u);
}

TEST(StandingQueryTest, EmptyDeltaIsFree) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 30;
  config.num_edges = 90;
  config.seed = 2;
  graph::GraphDatabase base = datagen::MakeRandomDatabase(config);
  StandingQuery standing(
      ParseQuery("SELECT * WHERE { ?a <p0> ?b . }"), base.Snapshot());
  const uint64_t generation = standing.generation();
  standing.Apply(TripleDelta{});
  EXPECT_EQ(standing.generation(), generation);
  EXPECT_EQ(standing.stats().applies, 0u);
  EXPECT_EQ(standing.stats().noop_applies, 1u);
}

}  // namespace
}  // namespace sparqlsim::sim
