#include "sim/standing_query.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sparql/normalize.h"
#include "util/stopwatch.h"

namespace sparqlsim::sim {

namespace {

/// True iff `next` holds an entry `prev` lacks — the insert-carrying test
/// for one predicate, an O(nnz) sorted-merge walk over the CSR rows. A
/// dirty predicate that did not grow only lost triples, which keeps it on
/// the pure retraction path (no cone).
bool ForwardGrew(const util::BitMatrix& next, const util::BitMatrix& prev) {
  const std::span<const uint32_t> rows = next.NonEmptyRows();
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    const std::span<const uint32_t> nrow = next.RowBySlot(slot);
    const std::span<const uint32_t> prow = prev.Row(rows[slot]);
    if (!std::includes(prow.begin(), prow.end(), nrow.begin(), nrow.end())) {
      return true;
    }
  }
  return false;
}

}  // namespace

StandingQuery::StandingQuery(
    const sparql::Query& query,
    std::shared_ptr<const graph::GraphDatabase> snapshot,
    StandingQueryOptions options)
    : options_(std::move(options)), snapshot_(std::move(snapshot)) {
  if (options_.solver.ResolvedThreads() > 1) {
    pool_ =
        std::make_unique<util::ThreadPool>(options_.solver.ResolvedThreads());
  }
  if (options_.solver.EffectiveReuseScratch()) {
    scratch_ = std::make_unique<SolveScratch>();
  }
  util::Stopwatch timer;
  SolveStats stats;
  std::vector<std::unique_ptr<sparql::Pattern>> branches =
      sparql::UnionNormalForm(*query.where);
  branches_.reserve(branches.size());
  for (const std::unique_ptr<sparql::Pattern>& branch : branches) {
    BranchState b;
    b.soi = std::make_shared<const Soi>(
        BuildSoiFromPattern(*branch, *snapshot_));
    // Even the registration solve threads the carry, so the first delta
    // already retracts from products synchronized at this fixpoint.
    WarmStart warm;
    warm.carry = &b.carry;
    b.solution = SolveSoiWarm(*b.soi, *snapshot_, options_.solver,
                              /*initial=*/nullptr, pool_.get(),
                              /*control=*/nullptr, &warm, scratch_.get());
    stats.Accumulate(b.solution.stats);
    ExtractTriples(b, *snapshot_);
    branches_.push_back(std::move(b));
  }
  RebuildReport(stats, timer.ElapsedSeconds());
}

const PruneReport& StandingQuery::Apply(const TripleDelta& delta) {
  graph::GraphDatabase next = snapshot_->WithTriplesRemoved(delta.deletes);
  if (!delta.inserts.empty()) {
    next = next.WithTriplesAdded(delta.inserts);
  }
  return ApplySnapshot(
      std::make_shared<const graph::GraphDatabase>(std::move(next)));
}

const PruneReport& StandingQuery::ApplySnapshot(
    std::shared_ptr<const graph::GraphDatabase> next) {
  assert(next->NumNodes() == snapshot_->NumNodes() &&
         next->NumPredicates() == snapshot_->NumPredicates() &&
         "successor snapshot must share the standing query's universe");
  util::Stopwatch timer;
  if (next->generation() == snapshot_->generation()) {
    // Content-identical publish (no-op/duplicate delta): nothing about the
    // fixpoint can differ, so the converged state — report included — is
    // reused outright. Repin so the caller's chain owner may drop `next`.
    snapshot_ = std::move(next);
    ++stats_.noop_applies;
    stats_.maintain_seconds += timer.ElapsedSeconds();
    return report_;
  }

  // Exact per-predicate dirty set of the COW publish chain; grown
  // classification is lazy and memoized — a branch not reading predicate
  // p never pays p's O(nnz) subset walk.
  const std::vector<uint32_t> changed = snapshot_->ChangedPredicates(*next);
  std::vector<bool> dirty(snapshot_->NumPredicates(), false);
  for (uint32_t p : changed) dirty[p] = true;
  std::vector<uint8_t> grown_memo(snapshot_->NumPredicates(), 2);
  auto grown = [&](uint32_t p) {
    if (grown_memo[p] == 2) {
      grown_memo[p] =
          ForwardGrew(next->Forward(p), snapshot_->Forward(p)) ? 1 : 0;
    }
    return grown_memo[p] == 1;
  };

  SolveStats stats;
  for (BranchState& b : branches_) {
    MaintainBranch(b, *next, dirty, grown, &stats);
  }

  snapshot_ = std::move(next);
  ++stats_.applies;
  RebuildReport(stats, timer.ElapsedSeconds());
  stats_.maintain_seconds += report_.total_seconds;
  return report_;
}

template <typename GrownFn>
void StandingQuery::MaintainBranch(BranchState& b,
                                   const graph::GraphDatabase& next,
                                   const std::vector<bool>& dirty,
                                   GrownFn&& grown, SolveStats* stats) {
  const Soi& soi = *b.soi;
  const size_t num_vars = soi.NumVars();
  const size_t num_matrix = soi.matrix_ineqs.size();
  const size_t num_ineqs = num_matrix + soi.sub_ineqs.size();

  // `touched`: variables whose warm-start value may *shrink* at
  // initialization (they read a dirty predicate, so the Eq. (13) summary
  // AND may remove candidates) — their dependents must be armed.
  // `cone` seeds: variables whose candidates may *grow* (they read a
  // predicate that gained entries, through an inequality product or a
  // summary) — they restart from the cold initialization.
  std::vector<bool> touched(num_vars, false);
  std::vector<bool> cone(num_vars, false);
  bool any_dirty = false;
  auto mark = [&](uint32_t predicate, uint32_t u, uint32_t v) {
    if (predicate == kEmptyPredicate || !dirty[predicate]) return;
    any_dirty = true;
    touched[u] = touched[v] = true;
    if (grown(predicate)) cone[u] = cone[v] = true;
  };
  for (const Soi::Edge& e : soi.edges) {
    mark(e.predicate, e.subject_var, e.object_var);
  }
  for (const Soi::MatrixIneq& m : soi.matrix_ineqs) {
    mark(m.predicate, m.lhs, m.rhs);
  }
  if (!any_dirty) {
    // Every predicate this branch reads kept its slab: the SOI, the
    // fixpoint, and the extraction inputs are all unchanged, so the
    // stored branch state *is* the post-delta answer.
    ++stats_.untouched_branches;
    return;
  }

  // Affected-cone closure: a variable reset toward the cold start can
  // only force resets in variables that read it, i.e. along rhs -> lhs of
  // both inequality kinds. Outside the closed cone, every inequality
  // writing a variable has a clean matrix and a non-cone right-hand side,
  // so that subsystem is unchanged and closed — its old fixpoint values
  // remain exact, which is what lets the warm start keep them verbatim.
  {
    std::vector<std::vector<uint32_t>> readers(num_vars);
    for (const Soi::MatrixIneq& m : soi.matrix_ineqs) {
      readers[m.rhs].push_back(m.lhs);
    }
    for (const Soi::SubIneq& s : soi.sub_ineqs) {
      readers[s.rhs].push_back(s.lhs);
    }
    std::vector<uint32_t> queue;
    for (uint32_t v = 0; v < num_vars; ++v) {
      if (cone[v]) queue.push_back(v);
    }
    while (!queue.empty()) {
      const uint32_t v = queue.back();
      queue.pop_back();
      for (uint32_t lhs : readers[v]) {
        if (!cone[lhs]) {
          cone[lhs] = true;
          queue.push_back(lhs);
        }
      }
    }
  }

  size_t cone_count = 0;
  for (uint32_t v = 0; v < num_vars; ++v) {
    if (cone[v] || soi.unsatisfiable_vars[v]) ++cone_count;
  }
  const bool cone_full = cone_count == num_vars;

  bool recompute = false;
  switch (options_.policy) {
    case StandingQueryOptions::Policy::kForceRecompute:
      recompute = true;
      break;
    case StandingQueryOptions::Policy::kForceMaintain:
      recompute = false;
      break;
    case StandingQueryOptions::Policy::kAuto:
      recompute = cone_full;
      break;
  }

  Solution solved;
  if (recompute) {
    // Cold solve, still threading the (cleared) carry so the *next* delta
    // retracts from products synchronized at this fixpoint.
    b.carry.Clear();
    WarmStart warm;
    warm.carry = &b.carry;
    solved = SolveSoiWarm(soi, next, options_.solver, /*initial=*/nullptr,
                          pool_.get(), /*control=*/nullptr, &warm,
                          scratch_.get());
    ++stats_.recomputed;
  } else {
    // Arm: inequalities reading a dirty matrix; inequalities whose lhs is
    // in the cone (their lhs restarted high and must be re-shrunk); and
    // dependents of any variable whose round-start value differs from the
    // old fixpoint (cone = may have grown, touched = summary AND may have
    // shrunk it at initialization without a round to queue dependents).
    std::vector<bool> armed(num_ineqs, false);
    std::vector<bool> carry_invalid(num_matrix, false);
    size_t armed_count = 0;
    for (size_t i = 0; i < num_matrix; ++i) {
      const Soi::MatrixIneq& m = soi.matrix_ineqs[i];
      const bool pred_dirty =
          m.predicate != kEmptyPredicate && dirty[m.predicate];
      if (pred_dirty || cone[m.lhs] || cone[m.rhs] || touched[m.rhs]) {
        armed[i] = true;
        ++armed_count;
      }
      // A carried product/accumulator retracts soundly iff its matrix is
      // unchanged and the selection only shrank since the sync point;
      // a cone rhs may exceed it, a merely-touched rhs cannot.
      if (pred_dirty || cone[m.rhs]) carry_invalid[i] = true;
    }
    for (size_t s = 0; s < soi.sub_ineqs.size(); ++s) {
      const Soi::SubIneq& si = soi.sub_ineqs[s];
      if (cone[si.lhs] || cone[si.rhs] || touched[si.rhs]) {
        armed[num_matrix + s] = true;
        ++armed_count;
      }
    }

    const size_t n = next.NumNodes();
    std::vector<util::BitVector> start(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v) {
      if (cone[v]) {
        // Cold restart for this variable: all-ones; the solver re-ANDs
        // the constant pin and the Eq. (13) summaries, reproducing the
        // exact cold initialization.
        start[v] = util::BitVector(n);
        start[v].SetAll();
      } else {
        start[v] = b.solution.candidates[v];
      }
    }

    stats_.carried_entries += b.carry.LiveEntries();
    WarmStart warm;
    warm.armed = &armed;
    warm.carry = &b.carry;
    warm.carry_invalid = &carry_invalid;
    solved = SolveSoiWarm(soi, next, options_.solver, &start, pool_.get(),
                          /*control=*/nullptr, &warm, scratch_.get());
    ++stats_.maintained;
    stats_.armed_ineqs += armed_count;
    stats_.total_ineqs += num_ineqs;
  }
  stats->Accumulate(solved.stats);
  b.solution = std::move(solved);
  ExtractTriples(b, next);
}

void StandingQuery::ExtractTriples(BranchState& b,
                                   const graph::GraphDatabase& db) {
  graph::ResidencyPin residency_pin = db.PinResidency();
  b.kept.clear();
  const Soi& soi = *b.soi;
  for (const Soi::Edge& e : soi.edges) {
    if (e.predicate == kEmptyPredicate) continue;
    const util::BitVector& subjects = b.solution.candidates[e.subject_var];
    const util::BitVector& objects = b.solution.candidates[e.object_var];
    if (subjects.None() || objects.None()) continue;
    const util::BitMatrix& fwd = db.Forward(e.predicate);
    subjects.ForEachSetBit([&](uint32_t s) {
      for (uint32_t o : fwd.Row(s)) {
        if (objects.Test(o)) {
          b.kept.push_back({s, e.predicate, o});
        }
      }
    });
  }
}

void StandingQuery::RebuildReport(const SolveStats& stats, double seconds) {
  report_ = PruneReport{};
  report_.snapshot_generation = snapshot_->generation();
  report_.num_branches = branches_.size();
  report_.stats = stats;
  const size_t n = snapshot_->NumNodes();
  for (const BranchState& b : branches_) {
    for (const auto& [var, groups] : b.soi->query_var_groups) {
      auto [it, inserted] =
          report_.var_candidates.try_emplace(var, util::BitVector(n));
      for (uint32_t g : groups) {
        it->second.OrWith(b.solution.candidates[g]);
      }
    }
    report_.kept_triples.insert(report_.kept_triples.end(), b.kept.begin(),
                                b.kept.end());
  }
  std::sort(report_.kept_triples.begin(), report_.kept_triples.end());
  report_.kept_triples.erase(
      std::unique(report_.kept_triples.begin(), report_.kept_triples.end()),
      report_.kept_triples.end());
  report_.total_seconds = seconds;
}

}  // namespace sparqlsim::sim
