// End-to-end coverage of the ingestion pipeline:
//   sparqlsim_datagen lubm  ->  .nt dump
//   sparqlsim_ingest        ->  SQSIMDB1 binary (1 vs 8 threads, gz)
//   sparqlsim_cli --db      ->  stats / sim over the ingested database
// plus the determinism contract at the file level: byte-identical output
// for every thread count and for the gzip-compressed input.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_test_common.h"

namespace sparqlsim {
namespace {

using sparqlsim_test::RunCommand;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CliIngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    int exit_code = 0;
    RunCommand(std::string(SPARQLSIM_DATAGEN) + " lubm 1 > " + kNt,
               &exit_code);
    ASSERT_EQ(exit_code, 0);
  }

  static constexpr const char* kNt = "/tmp/sparqlsim_ingest_test.nt";
};

TEST_F(CliIngestTest, ThreadCountsProduceIdenticalBinaries) {
  int exit_code = 0;
  RunCommand(std::string(SPARQLSIM_INGEST) + " --threads 1 " + kNt +
                 " /tmp/sparqlsim_ingest_t1.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);
  RunCommand(std::string(SPARQLSIM_INGEST) +
                 " --threads 8 --chunk-mb 1 " + kNt +
                 " /tmp/sparqlsim_ingest_t8.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);

  std::string t1 = ReadFileBytes("/tmp/sparqlsim_ingest_t1.gdb");
  std::string t8 = ReadFileBytes("/tmp/sparqlsim_ingest_t8.gdb");
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8);
}

TEST_F(CliIngestTest, GzipInputMatchesPlain) {
  int exit_code = 0;
  RunCommand(std::string("gzip -c ") + kNt +
                 " > /tmp/sparqlsim_ingest_test.nt.gz",
             &exit_code);
  ASSERT_EQ(exit_code, 0);
  RunCommand(std::string(SPARQLSIM_INGEST) +
                 " /tmp/sparqlsim_ingest_test.nt.gz "
                 "/tmp/sparqlsim_ingest_gz.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);
  RunCommand(std::string(SPARQLSIM_INGEST) + " " + kNt +
                 " /tmp/sparqlsim_ingest_plain.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);
  EXPECT_EQ(ReadFileBytes("/tmp/sparqlsim_ingest_gz.gdb"),
            ReadFileBytes("/tmp/sparqlsim_ingest_plain.gdb"));
}

TEST_F(CliIngestTest, CliRunsOnIngestedDatabase) {
  int exit_code = 0;
  RunCommand(std::string(SPARQLSIM_INGEST) + " " + kNt +
                 " /tmp/sparqlsim_ingest_cli.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);

  std::string stats = RunCommand(
      std::string(SPARQLSIM_CLI) + " --db /tmp/sparqlsim_ingest_cli.gdb "
                                   "stats",
      &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(stats.find("triples:"), std::string::npos);

  std::string sim = RunCommand(
      std::string("echo 'SELECT * WHERE { ?x <rdf:type> <University> . }' | ") +
          SPARQLSIM_CLI + " --db /tmp/sparqlsim_ingest_cli.gdb sim -",
      &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(sim.find("?x: 1 candidates"), std::string::npos) << sim;
}

TEST_F(CliIngestTest, PermissiveModeReportsSkippedLines) {
  const char* dirty = "/tmp/sparqlsim_ingest_dirty.nt";
  {
    std::ofstream out(dirty);
    out << "<a> <p> <b> .\n"
        << "utter garbage line\n"
        << "<c> <p> \"l\"@en .\n";
  }
  int exit_code = 0;
  // Strict mode fails...
  RunCommand(std::string(SPARQLSIM_INGEST) + " " + dirty +
                 " /tmp/sparqlsim_ingest_dirty.gdb",
             &exit_code);
  EXPECT_NE(exit_code, 0);
  // ...permissive mode converts and counts.
  std::string output = RunCommand(
      std::string(SPARQLSIM_INGEST) + " --permissive --stats " + dirty +
          " /tmp/sparqlsim_ingest_dirty.gdb",
      &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(output.find("malformed lines:  1"), std::string::npos) << output;
  EXPECT_NE(output.find("triples (dedup):  2"), std::string::npos) << output;
}

TEST_F(CliIngestTest, RejectsUsageErrors) {
  int exit_code = 0;
  RunCommand(std::string(SPARQLSIM_INGEST), &exit_code);
  EXPECT_EQ(exit_code, 2);
  RunCommand(std::string(SPARQLSIM_INGEST) + " --bogus a b", &exit_code);
  EXPECT_EQ(exit_code, 2);
  RunCommand(std::string(SPARQLSIM_INGEST) + " /nonexistent/in.nt "
                                             "/tmp/out.gdb",
             &exit_code);
  EXPECT_EQ(exit_code, 1);
  RunCommand(std::string(SPARQLSIM_INGEST) + " --format v3 a b", &exit_code);
  EXPECT_EQ(exit_code, 2);
}

// Regression: a truncated .gz (interrupted download, partial copy) must
// fail the ingest AND leave nothing at the output path — the tmp-file +
// atomic-rename write means the destination either holds a complete
// database or doesn't exist. Before the hardening an interrupted write
// could leave a partial .gdb that later loads rejected confusingly (or,
// worse, an old stale file survived as if it were the new conversion).
TEST_F(CliIngestTest, TruncatedGzipFailsWithoutOutput) {
  int exit_code = 0;
  RunCommand(std::string("gzip -c ") + kNt +
                 " > /tmp/sparqlsim_ingest_trunc_full.nt.gz",
             &exit_code);
  ASSERT_EQ(exit_code, 0);
  // Chop the archive mid-stream.
  RunCommand(
      "head -c 2000 /tmp/sparqlsim_ingest_trunc_full.nt.gz "
      "> /tmp/sparqlsim_ingest_trunc.nt.gz",
      &exit_code);
  ASSERT_EQ(exit_code, 0);

  const char* out = "/tmp/sparqlsim_ingest_trunc.gdb";
  std::remove(out);
  // RunCommand silences stderr; the subshell folds it into stdout first.
  std::string output = RunCommand(
      std::string("( ") + SPARQLSIM_INGEST +
          " --permissive /tmp/sparqlsim_ingest_trunc.nt.gz " + out +
          " 2>&1 )",
      &exit_code);
  EXPECT_NE(exit_code, 0) << output;
  EXPECT_NE(output.find("decompression command failed"), std::string::npos)
      << output;
  std::ifstream leftover(out);
  EXPECT_FALSE(leftover.good()) << "partial output left at " << out;
}

TEST_F(CliIngestTest, FormatV2RoundTripsThroughTheCli) {
  int exit_code = 0;
  RunCommand(std::string(SPARQLSIM_INGEST) + " --format v2 --threads 1 " +
                 kNt + " /tmp/sparqlsim_ingest_v2_t1.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);
  RunCommand(std::string(SPARQLSIM_INGEST) + " --format=v2 --threads 8 " +
                 kNt + " /tmp/sparqlsim_ingest_v2_t8.gdb",
             &exit_code);
  ASSERT_EQ(exit_code, 0);

  // The v2 writer is deterministic across thread counts, like v1.
  std::string t1 = ReadFileBytes("/tmp/sparqlsim_ingest_v2_t1.gdb");
  std::string t8 = ReadFileBytes("/tmp/sparqlsim_ingest_v2_t8.gdb");
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8);
  EXPECT_EQ(t1.substr(0, 8), "SQSIMDB2");

  // The CLI opens v2 via --db (lazily) and answers the same query as the
  // v1 database — including under a 1 MiB forced-eviction budget.
  for (const char* env :
       {"", "SPARQLSIM_RESIDENT_MB=1 ", "SPARQLSIM_RESIDENT_MB=0 "}) {
    std::string sim = RunCommand(
        std::string("echo 'SELECT * WHERE { ?x <rdf:type> <University> . }'"
                    " | ") +
            env + SPARQLSIM_CLI +
            " --db /tmp/sparqlsim_ingest_v2_t1.gdb sim -",
        &exit_code);
    EXPECT_EQ(exit_code, 0) << "env: " << env;
    EXPECT_NE(sim.find("?x: 1 candidates"), std::string::npos)
        << "env: " << env << "\n" << sim;
  }
  // The --resident-mb flag takes the same path as the env knob.
  std::string stats = RunCommand(
      std::string(SPARQLSIM_CLI) +
          " --resident-mb 1 --db /tmp/sparqlsim_ingest_v2_t1.gdb stats",
      &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(stats.find("triples:"), std::string::npos);
}

}  // namespace
}  // namespace sparqlsim
