#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"

namespace sparqlsim::sim {

/// Brute-force reference implementation of the largest dual simulation,
/// working directly from Def. 2 over an explicit pair set, with no bit
/// kernels and no shared code with the production solver. Quadratic-ish in
/// everything — strictly for cross-checking the SOI solver and baselines
/// on small inputs in tests.
std::set<std::pair<uint32_t, uint32_t>> OracleLargestDualSimulation(
    const graph::Graph& pattern, const graph::GraphDatabase& db,
    const std::vector<std::optional<uint32_t>>& constants = {});

}  // namespace sparqlsim::sim
