#include "util/hierarchical_bitvector.h"

#include <cassert>

#include "util/simd_dispatch.h"

namespace sparqlsim::util {

namespace {
/// Summary words needed for `num_blocks` summary bits.
constexpr size_t SummaryWordsFor(size_t num_blocks) {
  return (num_blocks + 63) / 64;
}
}  // namespace

HierarchicalBitVector::HierarchicalBitVector(size_t num_bits, bool initial)
    : bits_(num_bits, initial) {
  summary_.assign(SummaryWordsFor(NumBlocks()), 0);
  if (initial) RebuildSummary();
}

HierarchicalBitVector::HierarchicalBitVector(BitVector bits)
    : bits_(std::move(bits)) {
  summary_.assign(SummaryWordsFor(NumBlocks()), 0);
  RebuildSummary();
}

void HierarchicalBitVector::Set(size_t i) {
  bits_.Set(i);
  const size_t block = i / kBitsPerBlock;
  summary_[block / 64] |= uint64_t{1} << (block % 64);
}

void HierarchicalBitVector::SetAll() {
  bits_.SetAll();
  RebuildSummary();
}

void HierarchicalBitVector::ClearAll() {
  // The summary is exact, so wiping only the live blocks clears every set
  // bit — ClearAll and ClearLive are the same operation at different cost.
  ClearLive();
}

void HierarchicalBitVector::ClearLive() {
  uint64_t* w = bits_.mutable_words();
  const size_t word_count = bits_.WordCount();
  for (size_t sw = 0; sw < summary_.size(); ++sw) {
    uint64_t sword = summary_[sw];
    if (sword == 0) continue;
    summary_[sw] = 0;
    while (sword != 0) {
      const size_t block =
          sw * 64 + static_cast<size_t>(__builtin_ctzll(sword));
      sword &= sword - 1;
      const size_t w_begin = block * kWordsPerBlock;
      const size_t w_end = std::min(w_begin + kWordsPerBlock, word_count);
      for (size_t i = w_begin; i < w_end; ++i) w[i] = 0;
      words_cleared_ += w_end - w_begin;
    }
  }
}

void HierarchicalBitVector::SetRange(size_t begin, size_t len) {
  if (len == 0) return;
  bits_.SetRange(begin, len);
  const size_t first_block = begin / kBitsPerBlock;
  const size_t last_block = (begin + len - 1) / kBitsPerBlock;
  for (size_t block = first_block; block <= last_block; ++block) {
    summary_[block / 64] |= uint64_t{1} << (block % 64);
  }
}

void HierarchicalBitVector::ResetForReuse(size_t num_bits) {
  // Clear first so a subsequent shrink/grow only ever sees zero payload
  // (BitVector::Resize zeroes new bits but keeps surviving ones).
  ClearLive();
  if (bits_.size() != num_bits) {
    bits_.Resize(num_bits);
    summary_.resize(SummaryWordsFor(NumBlocks()));
    std::fill(summary_.begin(), summary_.end(), 0);
  }
}

void HierarchicalBitVector::AssignFrom(const BitVector& src) {
  bits_ = src;
  summary_.resize(SummaryWordsFor(NumBlocks()));
  RebuildSummary();
}

size_t HierarchicalBitVector::Count() const {
  const uint64_t* words = bits_.words();
  const size_t word_count = bits_.WordCount();
  size_t count = 0;
  for (size_t sw = 0; sw < summary_.size(); ++sw) {
    uint64_t sword = summary_[sw];
    while (sword != 0) {
      const size_t block = sw * 64 + static_cast<size_t>(__builtin_ctzll(sword));
      sword &= sword - 1;
      const size_t w_begin = block * kWordsPerBlock;
      const size_t w_end = std::min(w_begin + kWordsPerBlock, word_count);
      count += ActiveKernels().popcount_words(words + w_begin,
                                              w_end - w_begin);
    }
  }
  return count;
}

bool HierarchicalBitVector::Any() const {
  for (uint64_t sword : summary_) {
    if (sword != 0) return true;
  }
  return false;
}

bool HierarchicalBitVector::AndWith(const BitVector& other) {
  assert(size() == other.size());
  const uint64_t* ow = other.words();
  uint64_t* w = bits_.mutable_words();
  const size_t word_count = bits_.WordCount();
  const size_t num_blocks = NumBlocks();
  bool changed = false;
  for (size_t sw = 0; sw < summary_.size(); ++sw) {
    const size_t blocks_here = std::min<size_t>(64, num_blocks - sw * 64);
    uint64_t sword = summary_[sw];
    blocks_skipped_ +=
        blocks_here - static_cast<size_t>(__builtin_popcountll(sword));
    while (sword != 0) {
      const size_t block = sw * 64 + static_cast<size_t>(__builtin_ctzll(sword));
      sword &= sword - 1;
      const size_t w_begin = block * kWordsPerBlock;
      const size_t w_end = std::min(w_begin + kWordsPerBlock, word_count);
      bool block_changed = false;
      const uint64_t live = ActiveKernels().and_words(
          w + w_begin, ow + w_begin, w_end - w_begin, &block_changed);
      changed |= block_changed;
      if (live == 0) {
        summary_[sw] &= ~(uint64_t{1} << (block % 64));
      }
    }
  }
  return changed;
}

bool HierarchicalBitVector::AndWith(const HierarchicalBitVector& other) {
  assert(size() == other.size());
  const uint64_t* ow = other.bits_.words();
  uint64_t* w = bits_.mutable_words();
  const size_t word_count = bits_.WordCount();
  const size_t num_blocks = NumBlocks();
  bool changed = false;
  for (size_t sw = 0; sw < summary_.size(); ++sw) {
    const size_t blocks_here = std::min<size_t>(64, num_blocks - sw * 64);
    uint64_t sword = summary_[sw];
    blocks_skipped_ +=
        blocks_here - static_cast<size_t>(__builtin_popcountll(sword));
    while (sword != 0) {
      const size_t block = sw * 64 + static_cast<size_t>(__builtin_ctzll(sword));
      const uint64_t bit = sword & (~sword + 1);
      sword &= sword - 1;
      const size_t w_begin = block * kWordsPerBlock;
      const size_t w_end = std::min(w_begin + kWordsPerBlock, word_count);
      if ((other.summary_[sw] & bit) == 0) {
        // Our block is live, theirs is provably zero: drain ours without
        // reading a word of their payload.
        for (size_t i = w_begin; i < w_end; ++i) w[i] = 0;
        summary_[sw] &= ~bit;
        changed = true;
        continue;
      }
      bool block_changed = false;
      const uint64_t live = ActiveKernels().and_words(
          w + w_begin, ow + w_begin, w_end - w_begin, &block_changed);
      changed |= block_changed;
      if (live == 0) {
        summary_[sw] &= ~bit;
      }
    }
  }
  return changed;
}

void HierarchicalBitVector::RebuildSummary() {
  std::fill(summary_.begin(), summary_.end(), 0);
  const uint64_t* words = bits_.words();
  const size_t word_count = bits_.WordCount();
  for (size_t w = 0; w < word_count; ++w) {
    if (words[w] != 0) {
      const size_t block = w / kWordsPerBlock;
      summary_[block / 64] |= uint64_t{1} << (block % 64);
    }
  }
}

}  // namespace sparqlsim::util
