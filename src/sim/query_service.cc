#include "sim/query_service.h"

#include <algorithm>
#include <utility>

#include "sparql/normalize.h"

namespace sparqlsim::sim {
namespace {

/// The service decides the cache lifecycle itself: entries are bounded by
/// the configured capacity, and stale generations are swept against the
/// *live snapshot set* (SweepSnapshotsLocked), not eagerly on the first
/// newer stamp — with MVCC several generations are legitimately alive at
/// once, so the cache's own eager generation GC must stay off.
std::shared_ptr<SoiCache> MakeServiceCache(const QueryServiceOptions& options) {
  if (!options.solver.cache_sois && !options.solver.cache_solutions) {
    return nullptr;
  }
  return std::make_shared<SoiCache>(
      SoiCache::Options{options.cache_capacity, /*generation_gc=*/false});
}

}  // namespace

QueryService::QueryService(const graph::GraphDatabase* db,
                           QueryServiceOptions options)
    : options_(std::move(options)),
      cache_(MakeServiceCache(options_)),
      scratch_pool_(options_.solver.EffectiveReuseScratch()
                        ? std::make_shared<ScratchPool>()
                        : nullptr),
      gate_(options_.queue_depth),
      current_(std::make_shared<const SnapshotContext>(
          db->Snapshot(), options_.solver, cache_, scratch_pool_)),
      pool_(std::make_unique<util::ThreadPool>(options_.num_workers)) {}

QueryService::~QueryService() {
  // Joining the workers completes every admitted query (the pool drains its
  // queue on destruction), so all outstanding futures get settled.
  pool_.reset();
}

std::string QueryService::MakeKey(uint64_t generation,
                                  const std::string& key) {
  return std::to_string(generation) + '\n' + key;
}

std::shared_ptr<const QueryService::SnapshotContext>
QueryService::CurrentContext() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<const graph::GraphDatabase> QueryService::CurrentSnapshot()
    const {
  return CurrentContext()->db;
}

uint64_t QueryService::CurrentGeneration() const {
  return CurrentContext()->db->generation();
}

const SimEngine& QueryService::engine() const { return CurrentContext()->engine; }

std::future<PruneReport> QueryService::Submit(const sparql::Query& query,
                                              const SubmitOptions& submit) {
  const std::string key = sparql::CanonicalPatternKey(*query.where);
  std::promise<PruneReport> promise;
  std::future<PruneReport> future = promise.get_future();

  if (submit.deadline.has_value()) {
    // Deadline path: the budget starts now (queueing counts against it),
    // and the solve is solo — a truncated report is only ever delivered to
    // the submission that asked for the deadline, and dedup waiters are
    // never slowed down by a budgeted run or served its truncation.
    const auto deadline = std::chrono::steady_clock::now() + *submit.deadline;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++submitted_;
    }
    gate_.Acquire(submit.priority);
    auto owned = std::make_shared<const sparql::Query>(query.Clone());
    std::shared_ptr<const SnapshotContext> context;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      context = current_;  // pin at admission
      peak_in_flight_ = std::max(peak_in_flight_, gate_.InUse());
    }
    auto shared_promise =
        std::make_shared<std::promise<PruneReport>>(std::move(promise));
    pool_->Submit([this, context, owned, deadline, shared_promise]() mutable {
      RunDeadlineQuery(std::move(context), std::move(owned), deadline,
                       std::move(*shared_promise));
    });
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;
    auto it = in_flight_.find(MakeKey(current_->db->generation(), key));
    if (it != in_flight_.end()) {
      ++coalesced_;
      it->second->waiters.push_back(std::move(promise));
      return future;
    }
  }

  // New work: take an admission slot. This is the backpressure point — it
  // blocks while queue_depth queries are in flight, and must happen outside
  // the map lock so coalescing submissions and finishing workers proceed.
  gate_.Acquire(submit.priority);

  auto owned = std::make_shared<const sparql::Query>(query.Clone());
  std::shared_ptr<const SnapshotContext> context;
  std::string full_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Pin the snapshot current *now* — the database may have advanced while
    // we waited for the slot, and the query must solve against one
    // consistent version for its whole run.
    context = current_;
    full_key = MakeKey(context->db->generation(), key);
    // Someone may have admitted the same (generation, key) while we waited.
    auto [it, inserted] = in_flight_.try_emplace(full_key);
    if (!inserted) {
      ++coalesced_;
      it->second->waiters.push_back(std::move(promise));
      gate_.Release();
      return future;
    }
    it->second = std::make_shared<InFlight>();
    it->second->waiters.push_back(std::move(promise));
    peak_in_flight_ = std::max(peak_in_flight_, gate_.InUse());
  }
  // Move the pin into the task: RunQuery must drop the *last* in-flight
  // reference when it sweeps, or the retired snapshot outlives its sweep
  // inside the lambda capture.
  pool_->Submit([this, full_key, context = std::move(context),
                 owned]() mutable {
    RunQuery(full_key, std::move(context), owned);
  });
  return future;
}

void QueryService::RunQuery(const std::string& full_key,
                            std::shared_ptr<const SnapshotContext> context,
                            std::shared_ptr<const sparql::Query> query) {
  if (options_.solve_hook) options_.solve_hook();
  PruneReport report = context->engine.Prune(*query);

  std::vector<std::promise<PruneReport>> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(full_key);
    waiters = std::move(it->second->waiters);
    in_flight_.erase(it);
    ++executed_;
    // Dropping the pin below may retire this query's snapshot for good;
    // sweep so its cache generation is collected promptly, not on the
    // next publish.
    context.reset();
    SweepSnapshotsLocked();
  }
  // Slot freed before settling the promises: a waiter that immediately
  // resubmits the same query must find the map entry gone (fresh solve),
  // and a producer blocked in Acquire should not wait on promise fan-out.
  gate_.Release();

  for (size_t i = 0; i + 1 < waiters.size(); ++i) {
    waiters[i].set_value(report);
  }
  waiters.back().set_value(std::move(report));
}

void QueryService::RunDeadlineQuery(
    std::shared_ptr<const SnapshotContext> context,
    std::shared_ptr<const sparql::Query> query,
    std::chrono::steady_clock::time_point deadline,
    std::promise<PruneReport> promise) {
  if (options_.solve_hook) options_.solve_hook();
  SolveControl control;
  control.deadline = deadline;
  PruneReport report = context->engine.Prune(*query, &control);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++executed_;
    if (report.truncated) ++deadline_truncated_;
    context.reset();
    SweepSnapshotsLocked();
  }
  gate_.Release();
  promise.set_value(std::move(report));
}

std::vector<PruneReport> QueryService::SubmitBatch(
    const std::vector<sparql::Query>& queries) {
  std::vector<std::future<PruneReport>> futures;
  futures.reserve(queries.size());
  for (const sparql::Query& query : queries) futures.push_back(Submit(query));
  std::vector<PruneReport> reports;
  reports.reserve(queries.size());
  for (std::future<PruneReport>& f : futures) reports.push_back(f.get());
  return reports;
}

uint64_t QueryService::PublishLocked(graph::GraphDatabase&& next) {
  auto next_context = std::make_shared<const SnapshotContext>(
      std::make_shared<const graph::GraphDatabase>(std::move(next)),
      options_.solver, cache_, scratch_pool_);
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t previous_generation = current_->db->generation();
  const uint64_t generation = next_context->db->generation();
  retired_.push_back(current_);
  current_ = std::move(next_context);
  if (generation != previous_generation) ++snapshots_published_;
  SweepSnapshotsLocked();
  return generation;
}

uint64_t QueryService::ApplyRestrict(std::span<const graph::Triple> kept) {
  // publish_mutex_ makes compute+publish atomic against other writers, so
  // each writer derives from the latest version; readers are untouched —
  // they keep solving on their pinned snapshots throughout.
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  graph::GraphDatabase next = CurrentContext()->db->Restrict(kept);
  const uint64_t generation = PublishLocked(std::move(next));
  NotifySubscribersLocked();
  return generation;
}

uint64_t QueryService::IngestTriples(std::span<const graph::Triple> added) {
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  graph::GraphDatabase next = CurrentContext()->db->WithTriplesAdded(added);
  const uint64_t generation = PublishLocked(std::move(next));
  NotifySubscribersLocked();
  return generation;
}

uint64_t QueryService::DeleteTriples(std::span<const graph::Triple> removed) {
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  graph::GraphDatabase next = CurrentContext()->db->WithTriplesRemoved(removed);
  const uint64_t generation = PublishLocked(std::move(next));
  NotifySubscribersLocked();
  return generation;
}

QueryService::Subscription::Subscription(
    const sparql::Query& query,
    std::shared_ptr<const graph::GraphDatabase> snapshot,
    StandingQueryOptions options)
    : standing_(query, std::move(snapshot), std::move(options)) {
  // The registration-time cold solve is the subscriber's first report.
  pending_.push_back(standing_.report());
}

void QueryService::Subscription::OnPublish(
    std::shared_ptr<const graph::GraphDatabase> next) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(standing_.ApplySnapshot(std::move(next)));
}

std::vector<PruneReport> QueryService::Subscription::TakeReports() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PruneReport> out;
  out.swap(pending_);
  return out;
}

PruneReport QueryService::Subscription::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return standing_.report();
}

StandingStats QueryService::Subscription::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return standing_.stats();
}

uint64_t QueryService::Subscription::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return standing_.generation();
}

std::shared_ptr<QueryService::Subscription> QueryService::Subscribe(
    const sparql::Query& query) {
  // Under publish_mutex_ so the cold solve and the weak registration are
  // atomic against publishes: the subscription sees exactly one report per
  // generation from its pinned snapshot onward — none skipped, none
  // doubled.
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  StandingQueryOptions standing_options;
  standing_options.solver = options_.solver;
  auto subscription = std::shared_ptr<Subscription>(new Subscription(
      query, CurrentContext()->db, std::move(standing_options)));
  std::lock_guard<std::mutex> lock(mutex_);
  subscriptions_.push_back(subscription);
  ++subscription_reports_;  // the initial cold report
  return subscription;
}

void QueryService::NotifySubscribersLocked() {
  std::vector<std::shared_ptr<Subscription>> live;
  std::shared_ptr<const graph::GraphDatabase> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = current_->db;
    subscriptions_.erase(
        std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                       [](const auto& weak) { return weak.expired(); }),
        subscriptions_.end());
    if (subscriptions_.empty()) return;
    live.reserve(subscriptions_.size());
    for (const auto& weak : subscriptions_) {
      if (auto pinned = weak.lock()) live.push_back(std::move(pinned));
    }
  }
  // Maintenance runs outside mutex_ (readers keep submitting) but under
  // publish_mutex_ (reports stay in publish order). Lock order:
  // publish_mutex_ -> Subscription::mutex_, and separately
  // publish_mutex_ -> mutex_; never mutex_ -> Subscription::mutex_.
  for (const auto& subscription : live) {
    subscription->OnPublish(snapshot);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  subscription_reports_ += live.size();
}

void QueryService::SweepSnapshotsLocked() {
  // A retired version is dead once its last pinning query finished; the
  // weak_ptr observes exactly that.
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const auto& weak) { return weak.expired(); }),
                 retired_.end());
  std::vector<uint64_t> live_generations;
  live_generations.reserve(retired_.size() + 1);
  live_generations.push_back(current_->db->generation());
  size_t live = 1;
  for (const auto& weak : retired_) {
    if (auto pinned = weak.lock()) {
      ++live;
      live_generations.push_back(pinned->db->generation());
    }
  }
  snapshots_live_ = live;
  peak_snapshots_live_ = std::max(peak_snapshots_live_, live);
  if (cache_ != nullptr) {
    // MVCC-exact cache GC: drop entries for every generation no pinned
    // snapshot can reach anymore, keep everything a live version may
    // still query. (The raw-integer newest-generation sweep would evict
    // entries still serving pinned readers.)
    std::sort(live_generations.begin(), live_generations.end());
    live_generations.erase(
        std::unique(live_generations.begin(), live_generations.end()),
        live_generations.end());
    cache_->EvictStaleGenerations(live_generations);
  }
}

void QueryService::Drain() { gate_.WaitIdle(); }

QueryService::Stats QueryService::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.submitted = submitted_;
    out.executed = executed_;
    out.coalesced = coalesced_;
    out.peak_in_flight = peak_in_flight_;
    out.snapshots_published = snapshots_published_;
    out.snapshots_live = snapshots_live_;
    out.peak_snapshots_live = peak_snapshots_live_;
    out.deadline_truncated = deadline_truncated_;
    out.subscription_reports = subscription_reports_;
    for (const auto& weak : subscriptions_) {
      if (!weak.expired()) ++out.subscriptions;
    }
  }
  out.gate = gate_.stats();
  if (cache_ != nullptr) {
    out.cache = cache_->stats();
    out.cached_sois = cache_->NumSois();
    out.cached_solutions = cache_->NumSolutions();
  }
  if (scratch_pool_ != nullptr) {
    const ScratchPool::Stats scratch = scratch_pool_->stats();
    out.scratch_reuses = scratch.reuses;
    out.scratch_allocs = scratch.allocs;
    out.bytes_recycled = scratch.bytes_recycled;
    out.words_cleared_sparse = scratch.words_cleared_sparse;
  }
  return out;
}

}  // namespace sparqlsim::sim
