#include "datagen/movies.h"

namespace sparqlsim::datagen {

graph::GraphDatabase MakeMovieDatabase() {
  graph::GraphDatabaseBuilder builder;
  auto add = [&](const char* s, const char* p, const char* o) {
    util::Status status = builder.AddTriple(s, p, o);
    (void)status;
  };
  auto add_lit = [&](const char* s, const char* p, const char* o) {
    util::Status status = builder.AddTripleLiteral(s, p, o);
    (void)status;
  };

  // Fig. 1(a), transcribed edge by edge.
  add("B. De Palma", "directed", "Mission: Impossible");
  add("Mission: Impossible", "awarded", "Oscar");
  add("B. De Palma", "born_in", "Newark");
  add("Mission: Impossible", "genre", "Action");
  add("Goldfinger", "genre", "Action");
  add("G. Hamilton", "directed", "Goldfinger");
  add("G. Hamilton", "born_in", "Paris");
  add("Thunderball", "sequel_of", "Goldfinger");
  add("Thunderball", "awarded", "Oscar");
  add("G. Hamilton", "worked_with", "H. Saltzman");
  add("H. Saltzman", "born_in", "Saint John");
  add("From Russia with Love", "prequel_of", "Goldfinger");
  add("T. Young", "directed", "From Russia with Love");
  add("From Russia with Love", "awarded", "BAFTA Awards");
  add("B. De Palma", "worked_with", "D. Koepp");
  add("D. Koepp", "directed", "Mortdecai");
  // Note the direction: T. Young has only an *incoming* worked_with edge,
  // which is why (X1) does not list him as a director while the optional
  // query (X2) does (Sect. 4.3).
  add("P.R. Hunt", "worked_with", "T. Young");
  add_lit("Newark", "population", "277140");
  add_lit("Paris", "population", "2220445");
  add_lit("Saint John", "population", "70063");

  return std::move(builder).Build();
}

}  // namespace sparqlsim::datagen
