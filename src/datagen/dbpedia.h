#pragma once

#include <cstdint>

#include "graph/graph_database.h"

namespace sparqlsim::datagen {

/// Configuration of the DBpedia-like knowledge-graph generator.
///
/// The paper's DBpedia findings (Sect. 5) hinge on *high predicate
/// selectivity*: 65k predicates over 751M triples, where almost every
/// predicate touches only a tiny fraction of the graph and SPARQLSIM's
/// Eq. (13) initialization plus the sparsity ordering heuristic prune in a
/// split-second. This generator reproduces the profile: a typed entity
/// graph (people, films, cities, bands, books, companies, ...) with a
/// couple dozen semantic predicates plus a long Zipf-distributed tail of
/// rare predicates.
struct DbpediaConfig {
  /// Linear multiplier on all entity counts.
  size_t scale = 1;
  /// Number of rare tail predicates ("tail0", "tail1", ...).
  size_t num_tail_predicates = 150;
  /// Total number of tail edges, Zipf-distributed over the tail predicates.
  /// Together with the literal attributes this is the query-unrelated bulk
  /// of the graph — the reason real-DBpedia prunes exceed 95% even for
  /// queries that touch a whole entity class.
  size_t num_tail_edges = 120000;
  uint64_t seed = 7;
};

/// Node naming: "Person123", "Film42", "City17", "Country3", "Genre5",
/// "Band7", "Album9", "Book11", "Company0", "Univ3", "Award2"; classes are
/// "Person", "Actor", "Director", "Writer", "MusicArtist", "Film", ...
/// Persons with index % 20 == 0 are directors, % 4 == 0 actors,
/// % 10 == 0 writers, % 7 == 0 music artists (so e.g. "Person0" is
/// guaranteed to be a director — benchmark queries rely on this).
graph::GraphDatabase MakeDbpediaDatabase(const DbpediaConfig& config = {});

}  // namespace sparqlsim::datagen
