#pragma once

#include <string>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/soi.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// Checks that `candidates` is a valid assignment of the SOI, i.e. every
/// matrix and subordination inequality holds (Prop. 2: valid assignments
/// are exactly the dual simulations). Returns an explanatory message via
/// `why` on failure. Used by tests as an oracle independent of the solver.
bool SatisfiesSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const std::vector<util::BitVector>& candidates,
                  std::string* why = nullptr);

/// Checks Def. 2 directly: the relation induced by `candidates` over the
/// pattern graph is a dual simulation between `pattern` and `db`.
bool IsDualSimulation(const graph::Graph& pattern,
                      const graph::GraphDatabase& db,
                      const std::vector<util::BitVector>& candidates,
                      std::string* why = nullptr);

}  // namespace sparqlsim::sim
