#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_database.h"

namespace sparqlsim::engine {

/// Sentinel for a variable left unbound by an OPTIONAL or UNION branch —
/// the partial-mapping semantics of SPARQL (dom(mu), Sect. 4.1).
constexpr uint32_t kUnbound = 0xFFFFFFFF;

/// A table of solution mappings over a fixed variable schema.
///
/// Each row assigns a database node id (or kUnbound) to every schema
/// variable; rows are stored flat for locality. This is the engine's
/// counterpart of the paper's match sets [[Q]]_DB.
class SolutionSet {
 public:
  SolutionSet() = default;
  explicit SolutionSet(std::vector<std::string> vars);

  size_t Arity() const { return vars_.size(); }
  size_t NumRows() const {
    return vars_.empty() ? unit_rows_ : data_.size() / vars_.size();
  }

  const std::vector<std::string>& vars() const { return vars_; }

  /// Schema position of `var`, or -1.
  int IndexOf(const std::string& var) const;

  /// Row i as node ids in schema order (entries may be kUnbound).
  std::span<const uint32_t> Row(size_t i) const {
    return {data_.data() + i * vars_.size(), vars_.size()};
  }

  /// Appends a row; `row` must have exactly Arity() entries.
  void AddRow(std::span<const uint32_t> row);

  /// Adds a row where every variable is unbound (or, for arity 0, the
  /// empty mapping — the unit solution).
  void AddUnboundRow();

  /// Value of `var` in row i (kUnbound if var is not in the schema).
  uint32_t Value(size_t i, int var_index) const {
    return var_index < 0 ? kUnbound : Row(i)[var_index];
  }

  /// Lexicographically sorts rows and removes duplicates (DISTINCT).
  void SortAndDedupe();

  /// Renders up to max_rows rows with dictionary names, for examples.
  std::string ToString(const graph::GraphDatabase& db,
                       size_t max_rows = 20) const;

 private:
  std::vector<std::string> vars_;
  std::unordered_map<std::string, int> index_;
  std::vector<uint32_t> data_;
  size_t unit_rows_ = 0;  // row count when arity is 0
};

}  // namespace sparqlsim::engine
