#include "sim/pruner.h"

#include <algorithm>

#include "sim/soi.h"
#include "sparql/normalize.h"
#include "util/stopwatch.h"

namespace sparqlsim::sim {

Solution SparqlSimProcessor::Solve(const sparql::Pattern& union_free_pattern,
                                   const SolverOptions& options) const {
  Soi soi = BuildSoiFromPattern(union_free_pattern, *db_);
  return SolveSoi(soi, *db_, options);
}

PruneReport SparqlSimProcessor::Prune(const sparql::Query& query,
                                      const SolverOptions& options) const {
  util::Stopwatch timer;
  PruneReport report;
  const size_t n = db_->NumNodes();

  std::vector<std::unique_ptr<sparql::Pattern>> branches =
      sparql::UnionNormalForm(*query.where);
  report.num_branches = branches.size();

  for (const auto& branch : branches) {
    Soi soi = BuildSoiFromPattern(*branch, *db_);
    Solution solution = SolveSoi(soi, *db_, options);
    report.stats.Accumulate(solution.stats);

    // Candidate sets per original query variable: union over occurrence
    // groups; surrogates are subsumed by their anchors (Sect. 4.3), but
    // unanchored optional groups each contribute.
    for (const auto& [var, groups] : soi.query_var_groups) {
      auto [it, inserted] =
          report.var_candidates.try_emplace(var, util::BitVector(n));
      for (uint32_t g : groups) it->second.OrWith(solution.candidates[g]);
    }

    // Triple extraction: a data triple survives iff some pattern edge
    // (v, a, w) admits it with subject in chi(v) and object in chi(w).
    for (const Soi::Edge& e : soi.edges) {
      if (e.predicate == kEmptyPredicate) continue;
      const util::BitVector& subjects = solution.candidates[e.subject_var];
      const util::BitVector& objects = solution.candidates[e.object_var];
      if (subjects.None() || objects.None()) continue;
      const util::BitMatrix& fwd = db_->Forward(e.predicate);
      // Iterate the sparser side of the row index.
      subjects.ForEachSetBit([&](uint32_t s) {
        for (uint32_t o : fwd.Row(s)) {
          if (objects.Test(o)) {
            report.kept_triples.push_back({s, e.predicate, o});
          }
        }
      });
    }
  }

  std::sort(report.kept_triples.begin(), report.kept_triples.end());
  report.kept_triples.erase(
      std::unique(report.kept_triples.begin(), report.kept_triples.end()),
      report.kept_triples.end());

  report.total_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace sparqlsim::sim
