// Optional patterns and the SOI construction of Sect. 4: queries (X2) and
// (X3) of the paper, the well-designedness check, surrogate variables and
// subordination inequalities, and soundness of the prune for both.
//
// Build & run:  ./build/examples/optional_patterns

#include <cstdio>

#include "datagen/movies.h"
#include "engine/evaluator.h"
#include "sim/pruner.h"
#include "sim/soi.h"
#include "sparql/normalize.h"
#include "sparql/parser.h"

namespace {

void Show(const char* name, const char* text,
          const sparqlsim::graph::GraphDatabase& db) {
  using namespace sparqlsim;
  auto parsed = sparql::Parser::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error_message().c_str());
    return;
  }
  sparql::Query query = std::move(parsed).value();

  std::printf("\n=== %s ===\n%s\n", name, text);
  std::printf("well-designed: %s\n",
              sparql::IsWellDesigned(*query.where) ? "yes" : "no");

  // The system of inequalities, Fig. 3 style. Optional occurrences show up
  // as renamed surrogates (?v@2 ...) with subordination inequalities.
  sim::Soi soi = sim::BuildSoiFromPattern(*query.where, db);
  std::printf("system of inequalities:\n%s", soi.ToString(db).c_str());

  engine::Evaluator evaluator(&db);
  engine::SolutionSet matches = evaluator.Evaluate(query);
  std::printf("matches (%zu):\n%s", matches.NumRows(),
              matches.ToString(db).c_str());

  sim::SparqlSimProcessor processor(&db);
  sim::PruneReport report = processor.Prune(query);
  std::printf("pruned to %zu of %zu triples\n", report.kept_triples.size(),
              db.NumTriples());
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  size_t on_pruned = engine::Evaluator(&pruned).Evaluate(query).NumRows();
  if (on_pruned == matches.NumRows()) {
    std::printf("matches on the prune: %zu (identical result set)\n",
                on_pruned);
  } else {
    // OPTIONAL is non-monotone: pruning triples no full match needs can
    // unblock additional rows. This is the overapproximation the paper
    // describes in Sect. 1 — no match is ever lost, and a final exact
    // evaluation or filter removes the spurious rows.
    std::printf("matches on the prune: %zu >= %zu — a sound "
                "overapproximation (no match lost; OPTIONAL is "
                "non-monotone)\n",
                on_pruned, matches.NumRows());
    // Exact pruned evaluation: OPTIONAL right-hand sides read the full
    // database, which removes the superset.
    engine::EvaluatorOptions exact;
    exact.optional_rhs_db = &db;
    size_t exact_rows =
        engine::Evaluator(&pruned, exact).Evaluate(query).NumRows();
    std::printf("exact pruned evaluation: %zu matches (equals the full "
                "result)\n",
                exact_rows);
  }
}

}  // namespace

int main() {
  using namespace sparqlsim;
  graph::GraphDatabase db = datagen::MakeMovieDatabase();

  // (X2): optional coworkers — D. Koepp and T. Young join the result.
  Show("(X2) well-designed optional",
       "SELECT * WHERE { ?director <directed> ?movie . "
       "OPTIONAL { ?director <worked_with> ?coworker . } }",
       db);

  // (X3)-style non-well-designed pattern on the movie graph: the variable
  // ?other occurs optionally (as a co-worker) and mandatorily (as a
  // director of some film).
  Show("(X3)-style non-well-designed",
       "SELECT * WHERE { ?director <directed> ?movie . "
       "OPTIONAL { ?director <worked_with> ?other . } "
       "?other <directed> ?film . }",
       db);
  return 0;
}
