// SoiCache lifecycle unit tests: the capacity bound is respected at every
// step, eviction order is LRU, generation GC (eager and manual) drops
// exactly the stale entries, the hit/miss/eviction counters are exact, and
// a solution can never pair with an SOI instance it was not solved on
// (the eviction-rebuild hazard).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/soi_cache.h"

namespace sparqlsim::sim {
namespace {

/// A distinguishable SOI: `var_names[0]` carries the tag so tests can
/// verify *which* instance a hit returns.
Soi TaggedSoi(const std::string& tag) {
  Soi soi;
  soi.var_names = {tag};
  return soi;
}

Solution TaggedSolution(size_t rounds) {
  Solution solution;
  solution.stats.rounds = rounds;
  return solution;
}

bool ExpectStats(const SoiCache::Stats& actual, const SoiCache::Stats& want) {
  EXPECT_EQ(actual.soi_hits, want.soi_hits);
  EXPECT_EQ(actual.soi_misses, want.soi_misses);
  EXPECT_EQ(actual.solution_hits, want.solution_hits);
  EXPECT_EQ(actual.solution_misses, want.solution_misses);
  EXPECT_EQ(actual.soi_evictions, want.soi_evictions);
  EXPECT_EQ(actual.solution_evictions, want.solution_evictions);
  EXPECT_EQ(actual.generation_evictions, want.generation_evictions);
  return !::testing::Test::HasNonfatalFailure();
}

TEST(SoiCacheLruTest, CapacityBoundHoldsAtEveryInsert) {
  SoiCache cache(SoiCache::Options{3, false});
  for (int i = 0; i < 10; ++i) {
    std::string key = "q" + std::to_string(i);
    auto soi = cache.InsertSoi(1, key, TaggedSoi(key));
    cache.InsertSolution(1, key, soi.get(), TaggedSolution(i));
    EXPECT_LE(cache.NumSois(), 3u) << "after insert " << i;
    EXPECT_LE(cache.NumSolutions(), 3u) << "after insert " << i;
  }
  EXPECT_EQ(cache.NumSois(), 3u);
  EXPECT_EQ(cache.NumSolutions(), 3u);
  // 10 inserts into capacity 3: exactly 7 entries evicted, each carrying
  // its attached solution.
  EXPECT_EQ(cache.stats().soi_evictions, 7u);
  EXPECT_EQ(cache.stats().solution_evictions, 7u);
  // The survivors are the three most recently inserted.
  for (int i = 7; i < 10; ++i) {
    EXPECT_NE(cache.FindSoi(1, "q" + std::to_string(i)), nullptr) << i;
  }
  EXPECT_EQ(cache.FindSoi(1, "q6"), nullptr);
}

TEST(SoiCacheLruTest, FindRefreshesRecencySoEvictionIsLeastRecentlyUsed) {
  SoiCache cache(SoiCache::Options{2, false});
  cache.InsertSoi(1, "a", TaggedSoi("a"));
  cache.InsertSoi(1, "b", TaggedSoi("b"));
  // Touch "a": now "b" is the LRU entry.
  ASSERT_NE(cache.FindSoi(1, "a"), nullptr);
  cache.InsertSoi(1, "c", TaggedSoi("c"));
  EXPECT_EQ(cache.NumSois(), 2u);
  EXPECT_EQ(cache.FindSoi(1, "b"), nullptr);  // evicted
  auto a = cache.FindSoi(1, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->var_names[0], "a");
  EXPECT_NE(cache.FindSoi(1, "c"), nullptr);
  EXPECT_EQ(cache.stats().soi_evictions, 1u);
}

TEST(SoiCacheLruTest, ReinsertRefreshesRecencyAndKeepsFirstValue) {
  SoiCache cache(SoiCache::Options{2, false});
  cache.InsertSoi(1, "a", TaggedSoi("a-first"));
  cache.InsertSoi(1, "b", TaggedSoi("b"));
  // Re-inserting "a" must keep the original instance (first insert wins)
  // and refresh its recency.
  auto kept = cache.InsertSoi(1, "a", TaggedSoi("a-second"));
  EXPECT_EQ(kept->var_names[0], "a-first");
  cache.InsertSoi(1, "c", TaggedSoi("c"));
  EXPECT_EQ(cache.FindSoi(1, "b"), nullptr);  // "b" was LRU, not "a"
  EXPECT_NE(cache.FindSoi(1, "a"), nullptr);
}

TEST(SoiCacheLruTest, SolutionsRideOnTheirSoiEntry) {
  SoiCache cache(SoiCache::Options{2, false});
  auto a = cache.InsertSoi(1, "a", TaggedSoi("a"));
  auto attached = cache.InsertSolution(1, "a", a.get(), TaggedSolution(4));
  EXPECT_EQ(attached->stats.rounds, 4u);
  EXPECT_EQ(cache.NumSolutions(), 1u);
  // A hit requires the exact instance the solution was solved on.
  EXPECT_NE(cache.FindSolution(1, "a", a.get()), nullptr);

  // Evicting the entry takes the attached solution with it.
  cache.InsertSoi(1, "b", TaggedSoi("b"));
  cache.InsertSoi(1, "c", TaggedSoi("c"));  // recency [c, b] — "a" evicted
  EXPECT_EQ(cache.NumSolutions(), 0u);
  EXPECT_EQ(cache.stats().soi_evictions, 1u);
  EXPECT_EQ(cache.stats().solution_evictions, 1u);
  EXPECT_EQ(cache.FindSolution(1, "a", a.get()), nullptr);
}

TEST(SoiCacheLruTest, SolutionNeverPairsWithARebuiltSoiInstance) {
  // Regression for the eviction-rebuild hazard: canonically-equal patterns
  // may number their SOI variables differently, so after an entry is
  // evicted and rebuilt, a solution solved on the OLD instance must not be
  // stored or served against the NEW one (and vice versa).
  SoiCache cache(SoiCache::Options{1, false});
  auto old_soi = cache.InsertSoi(1, "q", TaggedSoi("old"));

  // Entry for "q" evicted by capacity pressure, then rebuilt (think: a
  // triple-order permutation of the same pattern, different numbering).
  cache.InsertSoi(1, "other", TaggedSoi("other"));
  ASSERT_EQ(cache.FindSoi(1, "q"), nullptr);
  auto new_soi = cache.InsertSoi(1, "q", TaggedSoi("new"));
  ASSERT_NE(old_soi.get(), new_soi.get());

  // A solve that raced with the eviction finishes against the old
  // instance: its solution is handed back but NOT cached.
  auto stale = cache.InsertSolution(1, "q", old_soi.get(), TaggedSolution(7));
  EXPECT_EQ(stale->stats.rounds, 7u);
  EXPECT_EQ(cache.NumSolutions(), 0u);
  // Neither instance can fetch it.
  EXPECT_EQ(cache.FindSolution(1, "q", new_soi.get()), nullptr);
  EXPECT_EQ(cache.FindSolution(1, "q", old_soi.get()), nullptr);

  // A solution solved on the CURRENT instance caches and serves normally —
  // but only to callers holding that instance.
  cache.InsertSolution(1, "q", new_soi.get(), TaggedSolution(9));
  EXPECT_EQ(cache.NumSolutions(), 1u);
  ASSERT_NE(cache.FindSolution(1, "q", new_soi.get()), nullptr);
  EXPECT_EQ(cache.FindSolution(1, "q", new_soi.get())->stats.rounds, 9u);
  EXPECT_EQ(cache.FindSolution(1, "q", old_soi.get()), nullptr);
}

TEST(SoiCacheLruTest, EagerGenerationGcDropsStaleEntriesOnNewerGeneration) {
  SoiCache cache(SoiCache::Options{0, /*generation_gc=*/true});
  auto a = cache.InsertSoi(7, "a", TaggedSoi("a"));
  cache.InsertSoi(7, "b", TaggedSoi("b"));
  cache.InsertSolution(7, "a", a.get(), TaggedSolution(1));
  EXPECT_EQ(cache.NumSois(), 2u);
  EXPECT_EQ(cache.NumSolutions(), 1u);

  // First operation carrying a newer generation sweeps everything older:
  // 2 SOIs + 1 attached solution.
  cache.InsertSoi(9, "a", TaggedSoi("a-gen9"));
  EXPECT_EQ(cache.NumSois(), 1u);
  EXPECT_EQ(cache.NumSolutions(), 0u);
  EXPECT_EQ(cache.stats().generation_evictions, 3u);
  auto fresh = cache.FindSoi(9, "a");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->var_names[0], "a-gen9");
  // The stale generation is gone for good.
  EXPECT_EQ(cache.FindSoi(7, "a"), nullptr);
}

TEST(SoiCacheLruTest, FindWithNewerGenerationAlsoTriggersGc) {
  SoiCache cache(SoiCache::Options{0, /*generation_gc=*/true});
  auto soi = cache.InsertSoi(3, "q", TaggedSoi("q"));
  cache.InsertSolution(3, "q", soi.get(), TaggedSolution(2));
  EXPECT_EQ(cache.FindSolution(4, "q", soi.get()), nullptr);  // miss + GC
  EXPECT_EQ(cache.NumSois(), 0u);
  EXPECT_EQ(cache.NumSolutions(), 0u);
  EXPECT_EQ(cache.stats().generation_evictions, 2u);  // SOI + solution
}

TEST(SoiCacheLruTest, GcOffKeepsGenerationsSideBySide) {
  SoiCache cache;  // defaults: unbounded, generation_gc off
  cache.InsertSoi(1, "q", TaggedSoi("gen1"));
  cache.InsertSoi(2, "q", TaggedSoi("gen2"));
  EXPECT_EQ(cache.NumSois(), 2u);
  EXPECT_EQ(cache.FindSoi(1, "q")->var_names[0], "gen1");
  EXPECT_EQ(cache.FindSoi(2, "q")->var_names[0], "gen2");
  EXPECT_EQ(cache.stats().generation_evictions, 0u);
}

TEST(SoiCacheLruTest, ManualEvictStaleGenerationsKeepsOnlyTheLiveOne) {
  SoiCache cache;
  auto a = cache.InsertSoi(1, "a", TaggedSoi("a"));
  cache.InsertSoi(2, "b", TaggedSoi("b"));
  cache.InsertSoi(3, "c", TaggedSoi("c"));
  cache.InsertSolution(1, "a", a.get(), TaggedSolution(1));
  // Dropped artifacts: SOI a + its solution + SOI c.
  EXPECT_EQ(cache.EvictStaleGenerations(2), 3u);
  EXPECT_EQ(cache.NumSois(), 1u);
  EXPECT_EQ(cache.NumSolutions(), 0u);
  EXPECT_NE(cache.FindSoi(2, "b"), nullptr);
  EXPECT_EQ(cache.stats().generation_evictions, 3u);
}

TEST(SoiCacheLruTest, CountersExactOverScriptedSequence) {
  SoiCache cache(SoiCache::Options{2, /*generation_gc=*/true});
  SoiCache::Stats want;

  EXPECT_EQ(cache.FindSoi(1, "a"), nullptr);
  ++want.soi_misses;
  auto a = cache.InsertSoi(1, "a", TaggedSoi("a"));
  EXPECT_NE(cache.FindSoi(1, "a"), nullptr);
  ++want.soi_hits;

  cache.InsertSoi(1, "b", TaggedSoi("b"));
  // Recency is now [b, a]; inserting "c" into capacity 2 evicts "a".
  cache.InsertSoi(1, "c", TaggedSoi("c"));
  ++want.soi_evictions;
  EXPECT_EQ(cache.FindSoi(1, "a"), nullptr);
  ++want.soi_misses;

  auto b = cache.FindSoi(1, "b");
  ++want.soi_hits;
  EXPECT_EQ(cache.FindSolution(1, "b", b.get()), nullptr);
  ++want.solution_misses;
  cache.InsertSolution(1, "b", b.get(), TaggedSolution(1));
  EXPECT_NE(cache.FindSolution(1, "b", b.get()), nullptr);
  ++want.solution_hits;

  // Solving against an evicted instance neither stores nor hits.
  cache.InsertSolution(1, "a", a.get(), TaggedSolution(5));
  EXPECT_EQ(cache.FindSolution(1, "a", a.get()), nullptr);
  ++want.solution_misses;

  // Generation bump: SOIs b, c + b's attached solution swept.
  cache.InsertSoi(2, "a", TaggedSoi("a2"));
  want.generation_evictions += 3;

  EXPECT_TRUE(ExpectStats(cache.stats(), want));
  EXPECT_EQ(cache.NumSois(), 1u);
  EXPECT_EQ(cache.NumSolutions(), 0u);
}

TEST(SoiCacheLruTest, ClearResetsEntriesAndCounters) {
  SoiCache cache(SoiCache::Options{2, true});
  auto a = cache.InsertSoi(1, "a", TaggedSoi("a"));
  cache.InsertSolution(1, "a", a.get(), TaggedSolution(1));
  cache.FindSoi(1, "a");
  cache.Clear();
  EXPECT_EQ(cache.NumSois(), 0u);
  EXPECT_EQ(cache.NumSolutions(), 0u);
  SoiCache::Stats zero;
  EXPECT_TRUE(ExpectStats(cache.stats(), zero));
  // A fresh start: the pre-Clear generation does not count as "seen", so
  // re-inserting at generation 1 is not a stale insert.
  cache.InsertSoi(1, "a", TaggedSoi("a"));
  EXPECT_NE(cache.FindSoi(1, "a"), nullptr);
}

}  // namespace
}  // namespace sparqlsim::sim
