#include "sim/ma_baseline.h"

#include "util/stopwatch.h"

namespace sparqlsim::sim {

Solution MaDualSimulation(
    const graph::Graph& pattern, const graph::GraphDatabase& db,
    const std::vector<std::optional<uint32_t>>& constants) {
  util::Stopwatch timer;
  graph::ResidencyPin residency_pin = db.PinResidency();
  const size_t n = db.NumNodes();
  const size_t k = pattern.NumNodes();

  Solution solution;
  solution.candidates.assign(k, util::BitVector(n));
  std::vector<util::BitVector>& sim = solution.candidates;

  // S_0 = V1 x V2 (constants restrict their node to a singleton).
  for (size_t v = 0; v < k; ++v) {
    if (v < constants.size() && constants[v]) {
      sim[v].Set(*constants[v]);
    } else {
      sim[v].SetAll();
    }
  }

  SolveStats& stats = solution.stats;
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.rounds;
    for (const graph::LabeledEdge& e : pattern.edges()) {
      ++stats.evaluations;
      if (e.label == kEmptyPredicate) {
        if (sim[e.from].Any()) {
          sim[e.from].ClearAll();
          changed = true;
        }
        if (sim[e.to].Any()) {
          sim[e.to].ClearAll();
          changed = true;
        }
        continue;
      }
      const util::BitMatrix& fwd = db.Forward(e.label);
      const util::BitMatrix& bwd = db.Backward(e.label);

      // Def. 2(i): every candidate of e.from needs an e.label-successor
      // among the candidates of e.to.
      sim[e.from].ForEachSetBit([&](uint32_t x) {
        if (!fwd.RowIntersects(x, sim[e.to])) {
          sim[e.from].Reset(x);
          changed = true;
          ++stats.updates;
        }
      });
      // Def. 2(ii): every candidate of e.to needs an e.label-predecessor
      // among the candidates of e.from.
      sim[e.to].ForEachSetBit([&](uint32_t y) {
        if (!bwd.RowIntersects(y, sim[e.from])) {
          sim[e.to].Reset(y);
          changed = true;
          ++stats.updates;
        }
      });
    }
  }

  stats.solve_seconds = timer.ElapsedSeconds();
  return solution;
}

}  // namespace sparqlsim::sim
