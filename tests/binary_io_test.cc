#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "datagen/lubm.h"
#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "graph/ntriples.h"

namespace sparqlsim::graph {
namespace {

void ExpectSameDatabase(const GraphDatabase& a, const GraphDatabase& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumPredicates(), b.NumPredicates());
  ASSERT_EQ(a.NumTriples(), b.NumTriples());
  for (uint32_t node = 0; node < a.NumNodes(); ++node) {
    EXPECT_EQ(a.nodes().Name(node), b.nodes().Name(node));
    EXPECT_EQ(a.IsLiteral(node), b.IsLiteral(node));
  }
  for (uint32_t p = 0; p < a.NumPredicates(); ++p) {
    EXPECT_EQ(a.predicates().Name(p), b.predicates().Name(p));
    EXPECT_EQ(a.PredicateCardinality(p), b.PredicateCardinality(p));
  }
  std::vector<Triple> ta = a.AllTriples();
  std::vector<Triple> tb = b.AllTriples();
  EXPECT_EQ(ta, tb);
}

TEST(BinaryIoTest, MovieRoundTrip) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  ExpectSameDatabase(db, loaded.value());
}

TEST(BinaryIoTest, RandomRoundTrips) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    datagen::RandomGraphConfig config;
    config.num_nodes = 100;
    config.num_edges = 500;
    config.num_labels = 4;
    config.seed = seed;
    GraphDatabase db = datagen::MakeRandomDatabase(config);
    std::stringstream buffer;
    BinaryIo::Save(db, buffer);
    auto loaded = BinaryIo::Load(buffer);
    ASSERT_TRUE(loaded.ok()) << loaded.error_message();
    ExpectSameDatabase(db, loaded.value());
  }
}

TEST(BinaryIoTest, LubmRoundTripPreservesIds) {
  datagen::LubmConfig config;
  config.num_universities = 1;
  GraphDatabase db = datagen::MakeLubmDatabase(config);
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  // Dense first-seen interning preserves ids exactly.
  EXPECT_EQ(*loaded.value().nodes().Lookup("U0/D0"),
            *db.nodes().Lookup("U0/D0"));
  ExpectSameDatabase(db, loaded.value());
}

// Regression for the delete path: WithTriplesRemoved must never compact
// node ids or reorder dictionary interning — even when a node loses its
// last triple — so that delete + re-insert round-trips to *byte-identical*
// serialization. Cache keys and .gdb reproducibility both hang on this.
TEST(BinaryIoTest, DeleteThenRestoreSerializesByteIdentically) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 200;
  config.num_labels = 3;
  config.seed = 9;
  GraphDatabase db = datagen::MakeRandomDatabase(config);
  std::stringstream original;
  BinaryIo::Save(db, original);

  // Remove every triple touching node 0 (orphaning it) plus a spread of
  // others; the universe must survive unchanged.
  std::vector<Triple> all = db.AllTriples();
  std::vector<Triple> removed;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].subject == 0 || all[i].object == 0 || i % 7 == 0) {
      removed.push_back(all[i]);
    }
  }
  ASSERT_FALSE(removed.empty());
  GraphDatabase pruned = db.WithTriplesRemoved(removed);
  EXPECT_EQ(pruned.NumNodes(), db.NumNodes());
  EXPECT_EQ(pruned.NumPredicates(), db.NumPredicates());
  EXPECT_EQ(pruned.NumTriples(), db.NumTriples() - removed.size());
  for (uint32_t node = 0; node < db.NumNodes(); ++node) {
    EXPECT_EQ(pruned.nodes().Name(node), db.nodes().Name(node));
  }

  // The pruned database round-trips through serialization on its own...
  std::stringstream pruned_bytes;
  BinaryIo::Save(pruned, pruned_bytes);
  auto reloaded = BinaryIo::Load(pruned_bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error_message();
  ExpectSameDatabase(pruned, reloaded.value());

  // ...and restoring the removed triples reproduces the original bytes
  // exactly: same intern order, same ids, same slabs content.
  GraphDatabase restored = pruned.WithTriplesAdded(removed);
  std::stringstream restored_bytes;
  BinaryIo::Save(restored, restored_bytes);
  EXPECT_EQ(restored_bytes.str(), original.str());

  // Removing absent triples is a content no-op: generation kept, bytes
  // identical.
  Triple absent{1, 0, 1};
  while (db.Forward(absent.predicate).Test(absent.subject, absent.object)) {
    ++absent.object;  // find a (1, p0, o) edge the graph doesn't have
  }
  GraphDatabase noop = db.WithTriplesRemoved({&absent, 1});
  EXPECT_EQ(noop.generation(), db.generation());
  std::stringstream noop_bytes;
  BinaryIo::Save(noop, noop_bytes);
  EXPECT_EQ(noop_bytes.str(), original.str());
}

TEST(BinaryIoTest, RejectsGarbage) {
  std::stringstream buffer("not a database at all");
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("not a sparqlsim"),
            std::string::npos);
}

TEST(BinaryIoTest, RejectsUnknownVersion) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  std::string bytes = buffer.str();
  bytes[7] = '9';  // future format version
  std::stringstream patched(bytes);
  auto loaded = BinaryIo::Load(patched);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("unsupported"), std::string::npos)
      << loaded.error_message();
}

TEST(BinaryIoTest, RejectsCorruptStringLengthWithoutAllocating) {
  // Magic + a varint string length of ~2^62: the loader must fail with a
  // clean Status at the stream's end, not attempt a multi-exabyte resize.
  std::string bytes = "SQSIMDB1";
  bytes += '\x05';  // num_nodes = 5
  bytes += '\x01';  // num_predicates = 1
  for (int i = 0; i < 8; ++i) bytes += '\xff';
  bytes += '\x3f';  // 9-byte varint ~= 4.6e18 as the first name's length
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("truncated"), std::string::npos);
}

TEST(BinaryIoTest, RejectsOversizedHeaderCounts) {
  std::string bytes = "SQSIMDB1";
  for (int i = 0; i < 9; ++i) bytes += '\xff';
  bytes += '\x01';  // num_nodes > 2^32
  bytes += '\x01';  // num_predicates = 1
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("corrupt header"), std::string::npos)
      << loaded.error_message();
}

TEST(BinaryIoTest, RejectsTruncation) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  std::string bytes = buffer.str();
  // Chop the stream at several points; every prefix must fail cleanly.
  for (size_t cut : {size_t{4}, size_t{12}, bytes.size() / 2,
                     bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = BinaryIo::Load(truncated);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  const std::string path = "/tmp/sparqlsim_binary_io_test.gdb";
  ASSERT_TRUE(BinaryIo::SaveFile(db, path).ok());
  auto loaded = BinaryIo::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  ExpectSameDatabase(db, loaded.value());
  EXPECT_FALSE(BinaryIo::LoadFile("/nonexistent/x.gdb").ok());
}

TEST(BinaryIoTest, BinaryIsSmallerThanNTriples) {
  datagen::LubmConfig config;
  config.num_universities = 1;
  GraphDatabase db = datagen::MakeLubmDatabase(config);
  std::stringstream binary;
  BinaryIo::Save(db, binary);
  // Rough comparison against the text serialization.
  std::stringstream text;
  NTriples::Write(db, text);
  EXPECT_LT(binary.str().size(), text.str().size());
}

// --- SQSIMDB2 ------------------------------------------------------------

std::string SaveV1Bytes(const GraphDatabase& db) {
  std::stringstream out;
  BinaryIo::Save(db, out);
  return out.str();
}

std::string SaveV2Bytes(const GraphDatabase& db) {
  std::stringstream out;
  BinaryIo::SaveV2(db, out);
  return out.str();
}

TEST(BinaryIoV2Test, StreamRoundTrip) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::SaveV2(db, buffer);
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  // Stream loads of v2 are eager: no backing machinery left attached.
  EXPECT_FALSE(loaded.value().HasBacking());
  ExpectSameDatabase(db, loaded.value());
  // Re-serializing through BOTH formats reproduces the original bytes.
  EXPECT_EQ(SaveV1Bytes(loaded.value()), SaveV1Bytes(db));
  EXPECT_EQ(SaveV2Bytes(loaded.value()), buffer.str());
}

TEST(BinaryIoV2Test, EdgeCaseRoundTrips) {
  // Empty database.
  GraphDatabase empty = GraphDatabaseBuilder().Build();
  // Nodes but no predicates (and hence no triples).
  GraphDatabaseBuilder nodes_only_builder;
  nodes_only_builder.InternNode("a");
  nodes_only_builder.InternLiteral("lit");
  GraphDatabase nodes_only = std::move(nodes_only_builder).Build();
  // A single triple.
  GraphDatabaseBuilder single_builder;
  ASSERT_TRUE(single_builder.AddTriple("s", "p", "o").ok());
  GraphDatabase single = std::move(single_builder).Build();
  // Node ids straddling the varint byte boundaries (128, 16384), with the
  // maximum id as both an isolated name and a triple endpoint.
  GraphDatabaseBuilder wide_builder;
  for (int i = 0; i < 17000; ++i) {
    wide_builder.InternNode("n" + std::to_string(i));
  }
  ASSERT_TRUE(wide_builder.AddTriple("n16999", "p", "n0").ok());
  ASSERT_TRUE(wide_builder.AddTriple("n127", "p", "n128").ok());
  ASSERT_TRUE(wide_builder.AddTriple("n16383", "q", "n16384").ok());
  GraphDatabase wide = std::move(wide_builder).Build();

  for (const GraphDatabase* db : {&empty, &nodes_only, &single, &wide}) {
    std::stringstream buffer;
    BinaryIo::SaveV2(*db, buffer);
    auto loaded = BinaryIo::Load(buffer);
    ASSERT_TRUE(loaded.ok()) << loaded.error_message();
    ExpectSameDatabase(*db, loaded.value());
    EXPECT_EQ(SaveV2Bytes(loaded.value()), buffer.str());
    EXPECT_EQ(SaveV1Bytes(loaded.value()), SaveV1Bytes(*db));
  }
}

TEST(BinaryIoV2Test, FileWriterThreadCountNeverChangesTheBytes) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 300;
  config.num_edges = 2000;
  config.num_labels = 9;  // enough predicate blocks to overlap
  config.seed = 17;
  GraphDatabase db = datagen::MakeRandomDatabase(config);

  std::string reference = SaveV2Bytes(db);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    const std::string path =
        "/tmp/sparqlsim_v2_threads_" + std::to_string(threads) + ".gdb";
    ASSERT_TRUE(BinaryIo::SaveV2File(db, path, threads).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    EXPECT_EQ(bytes.str(), reference) << "threads=" << threads;
  }
}

TEST(BinaryIoV2Test, LazyAndEagerFileOpensMatchV1) {
  datagen::LubmConfig config;
  config.num_universities = 1;
  GraphDatabase db = datagen::MakeLubmDatabase(config);
  const std::string path = "/tmp/sparqlsim_v2_file_test.gdb";
  ASSERT_TRUE(BinaryIo::SaveV2File(db, path).ok());

  auto lazy = BinaryIo::LoadFile(path);
  ASSERT_TRUE(lazy.ok()) << lazy.error_message();
  EXPECT_TRUE(lazy.value().HasBacking());

  BinaryIo::LoadOptions eager_options;
  eager_options.eager = true;
  auto eager = BinaryIo::LoadFile(path, eager_options);
  ASSERT_TRUE(eager.ok()) << eager.error_message();
  EXPECT_FALSE(eager.value().HasBacking());

  ExpectSameDatabase(db, lazy.value());
  ExpectSameDatabase(db, eager.value());
  EXPECT_EQ(SaveV1Bytes(lazy.value()), SaveV1Bytes(db));
  EXPECT_EQ(SaveV1Bytes(eager.value()), SaveV1Bytes(db));
  EXPECT_EQ(SaveV2Bytes(lazy.value()), SaveV2Bytes(db));
}

// The delete/restore byte-identity contract must hold through the v2
// format exactly as it does through v1.
TEST(BinaryIoV2Test, DeleteThenRestoreSerializesByteIdenticallyViaV2) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 200;
  config.num_labels = 3;
  config.seed = 9;
  GraphDatabase db = datagen::MakeRandomDatabase(config);
  const std::string original = SaveV2Bytes(db);

  std::vector<Triple> all = db.AllTriples();
  std::vector<Triple> removed;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].subject == 0 || all[i].object == 0 || i % 7 == 0) {
      removed.push_back(all[i]);
    }
  }
  ASSERT_FALSE(removed.empty());
  GraphDatabase pruned = db.WithTriplesRemoved(removed);
  GraphDatabase restored = pruned.WithTriplesAdded(removed);
  EXPECT_EQ(SaveV2Bytes(restored), original);

  // And through an actual v2 reload of the pruned snapshot.
  std::stringstream pruned_bytes(SaveV2Bytes(pruned));
  auto reloaded = BinaryIo::Load(pruned_bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error_message();
  GraphDatabase restored2 = reloaded.value().WithTriplesAdded(removed);
  EXPECT_EQ(SaveV2Bytes(restored2), original);
}

TEST(BinaryIoV2Test, RejectsCorruptFooterAndDirectory) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::string bytes = SaveV2Bytes(db);

  // Break the footer tail magic.
  std::string bad_footer = bytes;
  bad_footer[bad_footer.size() - 1] ^= 0x5A;
  std::stringstream footer_in(bad_footer);
  auto footer_load = BinaryIo::Load(footer_in);
  ASSERT_FALSE(footer_load.ok());
  EXPECT_NE(footer_load.error_message().find("footer"), std::string::npos)
      << footer_load.error_message();

  // Flip a byte inside the directory (just before the 32-byte footer):
  // the directory checksum must catch it.
  std::string bad_dir = bytes;
  bad_dir[bad_dir.size() - 33] ^= 0x01;
  std::stringstream dir_in(bad_dir);
  auto dir_load = BinaryIo::Load(dir_in);
  ASSERT_FALSE(dir_load.ok());
  EXPECT_NE(dir_load.error_message().find("directory"), std::string::npos)
      << dir_load.error_message();
}

TEST(BinaryIoV2Test, RejectsCorruptPredicateBlock) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::string bytes = SaveV2Bytes(db);
  // Flip one byte in the middle of the file — inside some predicate
  // block's row payload. The per-block checksum fails the (eager) load.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  std::stringstream in(corrupt);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
}

TEST(BinaryIoV2Test, RejectsTruncation) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::string bytes = SaveV2Bytes(db);
  for (size_t cut : {size_t{4}, size_t{12}, size_t{40}, bytes.size() / 2,
                     bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = BinaryIo::Load(truncated);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
}

// --- v1 payload hardening (regressions for the varint delta sweep) -------

// Builds the v1 header for a 4-node, 1-predicate database; the caller
// appends the forward-matrix payload under test.
std::string V1HeaderFourNodesOnePredicate() {
  std::string bytes = "SQSIMDB1";
  bytes += '\x04';  // num_nodes
  bytes += '\x01';  // num_predicates
  for (char c : {'a', 'b', 'c', 'd'}) {
    bytes += '\x01';  // name length
    bytes += c;
    bytes += '\x00';  // not a literal
  }
  bytes += '\x01';  // predicate name length
  bytes += 'p';
  return bytes;
}

// A ~2^64 varint delta used to wrap the accumulator back under num_nodes,
// pass the range check, and intern a garbage triple. Both delta kinds
// must now be rejected before any addition happens.
TEST(BinaryIoV1HardeningTest, RejectsWrappingColumnDelta) {
  std::string bytes = V1HeaderFourNodesOnePredicate();
  bytes += '\x01';  // num_rows = 1
  bytes += '\x00';  // row_delta = 0 (row 0)
  bytes += '\x02';  // degree = 2
  bytes += '\x01';  // col_delta = 1 (col 1)
  // col_delta = 2^64 - 1: wraps col to 0 if accumulated before checking.
  for (int i = 0; i < 9; ++i) bytes += '\xff';
  bytes += '\x01';
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("column delta out of range"),
            std::string::npos)
      << loaded.error_message();
}

TEST(BinaryIoV1HardeningTest, RejectsWrappingRowDelta) {
  std::string bytes = V1HeaderFourNodesOnePredicate();
  bytes += '\x02';  // num_rows = 2
  bytes += '\x01';  // row_delta = 1 (row 1)
  bytes += '\x01';  // degree = 1
  bytes += '\x02';  // col 2
  // row_delta = 2^64 - 1: wraps row from 1 back to 0.
  for (int i = 0; i < 9; ++i) bytes += '\xff';
  bytes += '\x01';
  bytes += '\x01';  // degree = 1 (read together with the delta)
  bytes += '\x01';  // col 1
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("row delta out of range"),
            std::string::npos)
      << loaded.error_message();
}

TEST(BinaryIoV1HardeningTest, RejectsNonAscendingRepeats) {
  // A zero delta after the first element would re-add the same row/column
  // — canonical encodings ascend strictly, so repeats are corruption.
  std::string bytes = V1HeaderFourNodesOnePredicate();
  bytes += '\x01';  // num_rows = 1
  bytes += '\x00';  // row 0
  bytes += '\x02';  // degree = 2
  bytes += '\x01';  // col 1
  bytes += '\x00';  // col_delta = 0: a repeat
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("column delta out of range"),
            std::string::npos);
}

TEST(BinaryIoV1HardeningTest, RejectsOversizedDegree) {
  std::string bytes = V1HeaderFourNodesOnePredicate();
  bytes += '\x01';  // num_rows = 1
  bytes += '\x00';  // row 0
  // degree ~= 2^62: must be rejected before the column loop spins.
  for (int i = 0; i < 8; ++i) bytes += '\xff';
  bytes += '\x3f';
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("degree exceeds"), std::string::npos)
      << loaded.error_message();
}

}  // namespace
}  // namespace sparqlsim::graph
