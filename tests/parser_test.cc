#include "sparql/parser.h"

#include <gtest/gtest.h>

#include "sparql/printer.h"

namespace sparqlsim::sparql {
namespace {

TEST(ParserTest, SingleTriplePattern) {
  auto r = Parser::Parse("SELECT * WHERE { ?s <p> ?o . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const Query& q = r.value();
  EXPECT_TRUE(q.projection.empty());
  EXPECT_FALSE(q.distinct);
  ASSERT_TRUE(q.where->IsBgp());
  ASSERT_EQ(q.where->triples().size(), 1u);
  const TriplePattern& t = q.where->triples()[0];
  EXPECT_EQ(t.subject, Term::Var("s"));
  EXPECT_EQ(t.predicate, Term::Iri("p"));
  EXPECT_EQ(t.object, Term::Var("o"));
}

TEST(ParserTest, IntroductoryQueryX1) {
  // Query (X1) from the paper.
  auto r = Parser::Parse(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "?director <worked_with> ?coworker . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  ASSERT_TRUE(r.value().where->IsBgp());
  EXPECT_EQ(r.value().where->triples().size(), 2u);
  EXPECT_EQ(r.value().Vars(),
            (std::set<std::string>{"director", "movie", "coworker"}));
}

TEST(ParserTest, OptionalQueryX2) {
  // Query (X2) from the paper.
  auto r = Parser::Parse(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "OPTIONAL { ?director <worked_with> ?coworker . } }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const Pattern& p = *r.value().where;
  ASSERT_EQ(p.kind(), PatternKind::kOptional);
  EXPECT_TRUE(p.left().IsBgp());
  EXPECT_TRUE(p.right().IsBgp());
  EXPECT_EQ(p.MandatoryVars(), (std::set<std::string>{"director", "movie"}));
}

TEST(ParserTest, ProjectionAndDistinct) {
  auto r = Parser::Parse("SELECT DISTINCT ?a ?b WHERE { ?a <p> ?b . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_TRUE(r.value().distinct);
  EXPECT_EQ(r.value().projection, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, PrefixExpansion) {
  auto r = Parser::Parse(
      "PREFIX dbo: <http://dbpedia.org/ontology/> "
      "SELECT * WHERE { ?f dbo:director ?d . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().where->triples()[0].predicate,
            Term::Iri("http://dbpedia.org/ontology/director"));
}

TEST(ParserTest, AKeywordExpandsToRdfType) {
  auto r = Parser::Parse("SELECT * WHERE { ?x a <Person> . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().where->triples()[0].predicate, Term::Iri("rdf:type"));
}

TEST(ParserTest, LiteralObjects) {
  auto r = Parser::Parse(
      "SELECT * WHERE { ?c <population> \"70063\" . ?c <label> \"Saint "
      "John\"@en . ?c <area> \"12.5\"^^<xsd:decimal> . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const auto& ts = r.value().where->triples();
  EXPECT_EQ(ts[0].object, Term::Literal("70063"));
  EXPECT_EQ(ts[1].object, Term::Literal("Saint John"));
  EXPECT_EQ(ts[2].object, Term::Literal("12.5"));
}

TEST(ParserTest, NumericLiteral) {
  auto r = Parser::Parse("SELECT * WHERE { ?c <population> 70063 . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().where->triples()[0].object, Term::Literal("70063"));
}

TEST(ParserTest, UnionPattern) {
  auto r = Parser::Parse(
      "SELECT * WHERE { { ?x <p> ?y . } UNION { ?x <q> ?y . } }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().where->kind(), PatternKind::kUnion);
  EXPECT_FALSE(r.value().where->IsUnionFree());
}

TEST(ParserTest, NestedGroupsJoin) {
  auto r = Parser::Parse(
      "SELECT * WHERE { { ?x <p> ?y . } { ?y <q> ?z . } }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().where->kind(), PatternKind::kJoin);
}

TEST(ParserTest, TriplesMergeIntoOneBgp) {
  auto r = Parser::Parse(
      "SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> ?x . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  ASSERT_TRUE(r.value().where->IsBgp());
  EXPECT_EQ(r.value().where->triples().size(), 3u);
}

TEST(ParserTest, TrailingTriplesAfterOptional) {
  auto r = Parser::Parse(
      "SELECT * WHERE { ?x <p> ?y . OPTIONAL { ?x <q> ?z . } ?y <r> ?w . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  // Left fold: Join(Optional(BGP, BGP), BGP).
  EXPECT_EQ(r.value().where->kind(), PatternKind::kJoin);
  EXPECT_EQ(r.value().where->left().kind(), PatternKind::kOptional);
}

TEST(ParserTest, QueryX3Structure) {
  // (X3): ({(v1,a,v2)} OPTIONAL {(v3,b,v2)}) AND {(v3,c,v4)}.
  auto r = Parser::Parse(
      "SELECT * WHERE { ?v1 <a> ?v2 . OPTIONAL { ?v3 <b> ?v2 . } "
      "?v3 <c> ?v4 . }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const Pattern& p = *r.value().where;
  ASSERT_EQ(p.kind(), PatternKind::kJoin);
  EXPECT_EQ(p.left().kind(), PatternKind::kOptional);
  EXPECT_FALSE(IsWellDesigned(p));  // Sect. 4.5: (X3) is not well-designed
}

TEST(ParserTest, WellDesignedPositive) {
  auto r = Parser::Parse(
      "SELECT * WHERE { ?x <p> ?y . OPTIONAL { ?x <q> ?z . } }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_TRUE(IsWellDesigned(*r.value().where));
}

TEST(ParserTest, VariablePredicateRejected) {
  auto r = Parser::Parse("SELECT * WHERE { ?s ?p ?o . }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("predicate variables"), std::string::npos);
}

TEST(ParserTest, ErrorsAreDiagnosed) {
  EXPECT_FALSE(Parser::Parse("SELECT * WHERE { ?s <p> }").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * WHERE { ?s <p ?o . }").ok());
  EXPECT_FALSE(Parser::Parse("SELECT WHERE { ?s <p> ?o . }").ok());
  EXPECT_FALSE(Parser::Parse("FOO * WHERE { }").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * WHERE { ?s <p> ?o . } garbage").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * WHERE { ?s pre:x ?o . }").ok());
}

TEST(ParserTest, CommentsAreSkipped) {
  auto r = Parser::Parse(
      "# leading comment\nSELECT * WHERE { ?s <p> ?o . # trailing\n }");
  ASSERT_TRUE(r.ok()) << r.error_message();
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char* queries[] = {
      "SELECT * WHERE { ?s <p> ?o . }",
      "SELECT ?a WHERE { ?a <p> ?b . OPTIONAL { ?b <q> ?c . } }",
      "SELECT * WHERE { { ?x <p> ?y . } UNION { ?x <q> ?y . } }",
      "SELECT DISTINCT ?x WHERE { ?x <p> <c> . ?x <q> \"lit\" . }",
  };
  for (const char* text : queries) {
    auto first = Parser::Parse(text);
    ASSERT_TRUE(first.ok()) << first.error_message();
    std::string printed = ToString(first.value());
    auto second = Parser::Parse(printed);
    ASSERT_TRUE(second.ok()) << printed << ": " << second.error_message();
    EXPECT_EQ(printed, ToString(second.value()));
  }
}

TEST(ParserTest, ParsePatternEntryPoint) {
  auto r = Parser::ParsePattern("{ ?s <p> ?o . OPTIONAL { ?o <q> ?x . } }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value()->kind(), PatternKind::kOptional);
}

TEST(ParserTest, EmptyGroup) {
  auto r = Parser::Parse("SELECT * WHERE { }");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_TRUE(r.value().where->IsBgp());
  EXPECT_TRUE(r.value().where->triples().empty());
}

}  // namespace
}  // namespace sparqlsim::sparql
