#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph_database.h"
#include "util/status.h"

namespace sparqlsim::graph {

/// Compact binary serialization of a graph database — the at-rest format
/// in the spirit of the BitMat storage the paper connects to (Sect. 3.3):
/// dictionaries plus, per predicate, the forward adjacency rows with
/// delta-varint-encoded column indices (the CSR analogue of gap-length
/// encoded bit rows). Loading is typically ~5x faster than re-parsing
/// N-Triples and reproduces identical node/predicate ids.
///
/// Layout (all integers LEB128 varints):
///   magic "SQSIMDB1"
///   num_nodes, num_predicates
///   nodes:      num_nodes x (length, bytes, is_literal byte)
///   predicates: num_predicates x (length, bytes)
///   matrices:   num_predicates x (num_rows, rows)
///               row = (row-id delta, degree, column-id deltas)
class BinaryIo {
 public:
  static void Save(const GraphDatabase& db, std::ostream& out);
  static util::Status SaveFile(const GraphDatabase& db,
                               const std::string& path);

  static util::Result<GraphDatabase> Load(std::istream& in);
  static util::Result<GraphDatabase> LoadFile(const std::string& path);
};

}  // namespace sparqlsim::graph
