#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/dual_simulation.h"

namespace sparqlsim::sim {
namespace {

graph::GraphDatabase ChainWithBranch() {
  // x -a-> y -a-> z, plus w -a-> y.
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("x", "a", "y").ok());
  EXPECT_TRUE(b.AddTriple("y", "a", "z").ok());
  EXPECT_TRUE(b.AddTriple("w", "a", "y").ok());
  return std::move(b).Build();
}

TEST(SimulationTest, ForwardIgnoresIncomingEdges) {
  graph::GraphDatabase db = ChainWithBranch();
  uint32_t a = *db.predicates().Lookup("a");
  graph::Graph edge(2);  // v0 -a-> v1
  edge.AddEdge(0, a, 1);

  Solution forward = LargestSimulation(edge, db, SimulationKind::kForward);
  // v0 candidates: nodes with an a-successor = {x, y, w}.
  auto id = [&](const char* n) { return *db.nodes().Lookup(n); };
  EXPECT_TRUE(forward.candidates[0].Test(id("x")));
  EXPECT_TRUE(forward.candidates[0].Test(id("y")));
  EXPECT_TRUE(forward.candidates[0].Test(id("w")));
  EXPECT_FALSE(forward.candidates[0].Test(id("z")));
  // v1 is unconstrained under forward simulation (no outgoing pattern
  // edges from v1): all nodes survive.
  EXPECT_EQ(forward.candidates[1].Count(), db.NumNodes());
}

TEST(SimulationTest, BackwardIgnoresOutgoingEdges) {
  graph::GraphDatabase db = ChainWithBranch();
  uint32_t a = *db.predicates().Lookup("a");
  graph::Graph edge(2);
  edge.AddEdge(0, a, 1);

  Solution backward = LargestSimulation(edge, db, SimulationKind::kBackward);
  auto id = [&](const char* n) { return *db.nodes().Lookup(n); };
  // v1 candidates: nodes with an a-predecessor = {y, z}.
  EXPECT_TRUE(backward.candidates[1].Test(id("y")));
  EXPECT_TRUE(backward.candidates[1].Test(id("z")));
  EXPECT_FALSE(backward.candidates[1].Test(id("x")));
  // v0 unconstrained.
  EXPECT_EQ(backward.candidates[0].Count(), db.NumNodes());
}

TEST(SimulationTest, DualIsIntersectionOrSmaller) {
  // Dual simulation refines both one-directional simulations: every dual
  // candidate is both a forward and a backward candidate (the converse
  // fails in general).
  datagen::RandomGraphConfig config;
  config.num_nodes = 40;
  config.num_edges = 150;
  config.num_labels = 2;
  config.seed = 15;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(4, 2, 2, 16);

  Solution dual = LargestSimulation(pattern, db, SimulationKind::kDual);
  Solution fwd = LargestSimulation(pattern, db, SimulationKind::kForward);
  Solution bwd = LargestSimulation(pattern, db, SimulationKind::kBackward);
  for (size_t v = 0; v < pattern.NumNodes(); ++v) {
    EXPECT_TRUE(dual.candidates[v].IsSubsetOf(fwd.candidates[v]));
    EXPECT_TRUE(dual.candidates[v].IsSubsetOf(bwd.candidates[v]));
  }
}

TEST(SimulationTest, DualKindMatchesLargestDualSimulation) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 30;
  config.num_edges = 100;
  config.num_labels = 3;
  config.seed = 25;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(3, 2, 3, 26);

  Solution via_kind = LargestSimulation(pattern, db, SimulationKind::kDual);
  Solution direct = LargestDualSimulation(pattern, db);
  for (size_t v = 0; v < pattern.NumNodes(); ++v) {
    EXPECT_EQ(via_kind.candidates[v], direct.candidates[v]);
  }
}

TEST(SimulationTest, ForwardSimulationOracle) {
  // Direct fixpoint re-check of the forward-simulation definition on a
  // random instance.
  datagen::RandomGraphConfig config;
  config.num_nodes = 25;
  config.num_edges = 80;
  config.num_labels = 2;
  config.seed = 35;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(3, 1, 2, 36);

  Solution s = LargestSimulation(pattern, db, SimulationKind::kForward);
  // Validity: every candidate of every pattern node satisfies Def. 2(i).
  for (const graph::LabeledEdge& e : pattern.edges()) {
    s.candidates[e.from].ForEachSetBit([&](uint32_t x) {
      EXPECT_TRUE(db.Forward(e.label).RowIntersects(x, s.candidates[e.to]));
    });
  }
  // Maximality: adding any dropped node violates Def. 2(i) somewhere.
  for (uint32_t v = 0; v < pattern.NumNodes(); ++v) {
    for (uint32_t node = 0; node < db.NumNodes(); ++node) {
      if (s.candidates[v].Test(node)) continue;
      bool violates = false;
      for (const graph::LabeledEdge& e : pattern.edges()) {
        if (e.from == v &&
            !db.Forward(e.label).RowIntersects(node, s.candidates[e.to])) {
          violates = true;
        }
      }
      EXPECT_TRUE(violates) << "node " << node << " wrongly dropped from "
                            << v;
    }
  }
}

TEST(SimulationTest, MovieForwardSimulationOfX1) {
  // Forward simulation of the (X1) pattern keeps T. Young out (no
  // outgoing worked_with) but is blind to incoming requirements.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  graph::Graph x1(3);
  x1.AddEdge(0, *db.predicates().Lookup("directed"), 1);
  x1.AddEdge(0, *db.predicates().Lookup("worked_with"), 2);
  Solution forward = LargestSimulation(x1, db, SimulationKind::kForward);
  auto id = [&](const char* n) { return *db.nodes().Lookup(n); };
  EXPECT_TRUE(forward.candidates[0].Test(id("B. De Palma")));
  EXPECT_TRUE(forward.candidates[0].Test(id("G. Hamilton")));
  EXPECT_FALSE(forward.candidates[0].Test(id("T. Young")));
  // The movie position is unconstrained forward — even literals survive.
  EXPECT_EQ(forward.candidates[1].Count(), db.NumNodes());
}

}  // namespace
}  // namespace sparqlsim::sim
