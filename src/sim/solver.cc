#include "sim/solver.h"

#include <algorithm>
#include <numeric>

#include "util/stopwatch.h"

namespace sparqlsim::sim {

namespace {

/// Unified inequality handle: indices [0, M) are matrix inequalities,
/// [M, M + S) are subordinations.
struct Work {
  std::vector<uint32_t> current;
  std::vector<uint32_t> next;
  std::vector<bool> queued;  // membership in `next`
};

}  // namespace

void SolveStats::Accumulate(const SolveStats& other) {
  rounds += other.rounds;
  evaluations += other.evaluations;
  updates += other.updates;
  row_evals += other.row_evals;
  col_evals += other.col_evals;
  solve_seconds += other.solve_seconds;
}

bool Solution::AnyCandidate() const {
  for (const util::BitVector& c : candidates) {
    if (c.Any()) return true;
  }
  return false;
}

size_t Solution::RelationSize() const {
  size_t total = 0;
  for (const util::BitVector& c : candidates) total += c.Count();
  return total;
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial) {
  util::Stopwatch timer;
  const size_t n = db.NumNodes();
  const size_t num_vars = soi.NumVars();
  const size_t num_matrix = soi.matrix_ineqs.size();
  const size_t num_ineqs = num_matrix + soi.sub_ineqs.size();

  Solution solution;
  solution.candidates.assign(num_vars, util::BitVector(n));
  std::vector<util::BitVector>& chi = solution.candidates;
  std::vector<size_t> counts(num_vars, 0);

  // --- Initialization: Eq. (12) or Eq. (13), constants per Sect. 4.5. ---
  for (size_t v = 0; v < num_vars; ++v) {
    if (soi.unsatisfiable_vars[v]) continue;  // stays empty
    if (initial != nullptr) {
      chi[v] = (*initial)[v];
      if (soi.constants[v]) {
        util::BitVector pin(n);
        pin.Set(*soi.constants[v]);
        chi[v].AndWith(pin);
      }
      continue;
    }
    if (soi.constants[v]) {
      chi[v].Set(*soi.constants[v]);
    } else {
      chi[v].SetAll();
    }
  }
  if (options.summary_init) {
    for (const Soi::Edge& e : soi.edges) {
      if (e.predicate == kEmptyPredicate) {
        chi[e.subject_var].ClearAll();
        chi[e.object_var].ClearAll();
        continue;
      }
      chi[e.subject_var].AndWith(db.ForwardSummary(e.predicate));
      chi[e.object_var].AndWith(db.BackwardSummary(e.predicate));
    }
  }
  for (size_t v = 0; v < num_vars; ++v) counts[v] = chi[v].Count();

  // --- Dependency index: ineqs whose right-hand side reads var v. ---
  std::vector<std::vector<uint32_t>> dependents(num_vars);
  for (size_t i = 0; i < num_matrix; ++i) {
    dependents[soi.matrix_ineqs[i].rhs].push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < soi.sub_ineqs.size(); ++i) {
    dependents[soi.sub_ineqs[i].rhs].push_back(
        static_cast<uint32_t>(num_matrix + i));
  }

  // --- Initial worklist order (sparsity heuristic, Sect. 3.3). ---
  std::vector<uint32_t> order(num_ineqs);
  std::iota(order.begin(), order.end(), 0);
  if (options.order_by_sparsity) {
    auto key = [&](uint32_t idx) -> size_t {
      if (idx >= num_matrix) return SIZE_MAX;  // subordinations last
      const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
      if (m.predicate == kEmptyPredicate) return 0;
      // More empty columns in A == fewer distinct targets: ascending
      // distinct objects (forward) / subjects (backward).
      return m.forward ? db.DistinctObjects(m.predicate)
                       : db.DistinctSubjects(m.predicate);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
  }

  Work work;
  work.current = order;
  work.queued.assign(num_ineqs, false);

  util::BitVector scratch(n);

  auto on_change = [&](uint32_t var) {
    counts[var] = chi[var].Count();
    for (uint32_t dep : dependents[var]) {
      if (!work.queued[dep]) {
        work.queued[dep] = true;
        work.next.push_back(dep);
      }
    }
  };

  SolveStats& stats = solution.stats;
  while (!work.current.empty()) {
    if (options.max_rounds != 0 && stats.rounds >= options.max_rounds) break;
    ++stats.rounds;
    for (uint32_t idx : work.current) {
      ++stats.evaluations;
      if (idx >= num_matrix) {
        const Soi::SubIneq& s = soi.sub_ineqs[idx - num_matrix];
        if (chi[s.lhs].AndWith(chi[s.rhs])) {
          ++stats.updates;
          on_change(s.lhs);
        }
        continue;
      }

      const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
      if (counts[m.lhs] == 0) continue;  // cannot shrink further
      if (m.predicate == kEmptyPredicate || counts[m.rhs] == 0) {
        chi[m.lhs].ClearAll();
        ++stats.updates;
        on_change(m.lhs);
        continue;
      }

      const util::BitMatrix& a =
          m.forward ? db.Forward(m.predicate) : db.Backward(m.predicate);
      const util::BitMatrix& a_t =
          m.forward ? db.Backward(m.predicate) : db.Forward(m.predicate);

      bool row_wise = true;
      switch (options.eval_mode) {
        case SolverOptions::EvalMode::kRowWise:
          row_wise = true;
          break;
        case SolverOptions::EvalMode::kColumnWise:
          row_wise = false;
          break;
        case SolverOptions::EvalMode::kDynamic:
          // Paper's rule: row-wise iff chi(rhs) has fewer bits than
          // chi(lhs).
          row_wise = counts[m.rhs] < counts[m.lhs];
          break;
      }

      bool changed = false;
      if (row_wise) {
        ++stats.row_evals;
        a.Multiply(chi[m.rhs], &scratch);
        changed = chi[m.lhs].AndWith(scratch);
      } else {
        ++stats.col_evals;
        // Keep candidate j of lhs iff column j of A intersects chi(rhs);
        // column j of A is row j of A^T.
        chi[m.lhs].ForEachSetBit([&](uint32_t j) {
          if (!a_t.RowIntersects(j, chi[m.rhs])) {
            chi[m.lhs].Reset(j);
            changed = true;
          }
        });
      }
      if (changed) {
        ++stats.updates;
        on_change(m.lhs);
      }
    }
    work.current.clear();
    std::swap(work.current, work.next);
    std::fill(work.queued.begin(), work.queued.end(), false);
  }

  stats.solve_seconds = timer.ElapsedSeconds();
  return solution;
}

}  // namespace sparqlsim::sim
