// Reproduces Fig. 6 and the Sect. 5.3 iteration analysis: the mandatory
// (BGP) cores of queries L0 and L1, and the fixpoint behaviour that makes
// them the two extreme cases of the paper —
//   L0: small cyclic triangle over low-selectivity predicates, needs many
//       fixpoint rounds (the paper reports 30+);
//   L1: larger cyclic query, stabilizes after ~2 rounds and prunes fast.

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/pruner.h"
#include "sim/soi.h"
#include "sparql/normalize.h"

namespace sparqlsim {
namespace {

void Analyze(const char* id, const graph::GraphDatabase& db,
             const std::string& text) {
  sparql::Query query = bench::ParseOrDie(text);
  // The mandatory core: drop OPTIONAL parts (Fig. 6 shows the BGP cores).
  auto branches = sparql::UnionNormalForm(*query.where);
  const sparql::Pattern* core = branches[0].get();
  while (!core->IsBgp()) core = &core->left();

  std::printf("\n%s mandatory core (%zu triple patterns):\n", id,
              core->triples().size());
  for (const auto& t : core->triples()) {
    std::printf("  %s\n", t.ToString().c_str());
  }

  sim::Soi soi = sim::BuildSoiFromPattern(*core, db);
  std::printf("system of inequalities (%zu vars, %zu matrix + %zu "
              "subordination inequalities):\n",
              soi.NumVars(), soi.matrix_ineqs.size(), soi.sub_ineqs.size());
  std::printf("%s", soi.ToString(db).c_str());

  sim::SparqlSimProcessor processor(&db);
  sim::Solution solution;
  double seconds =
      bench::TimeAverage([&] { solution = processor.Solve(*core); });
  std::printf("fixpoint: rounds=%zu evaluations=%zu updates=%zu "
              "(row-wise %zu, column-wise %zu)  time=%.5fs\n",
              solution.stats.rounds, solution.stats.evaluations,
              solution.stats.updates, solution.stats.row_evals,
              solution.stats.col_evals, seconds);
  std::printf("surviving relation size: %zu node assignments\n",
              solution.RelationSize());
}

int Run() {
  std::printf("Fig. 6 / Sect. 5.3: the L0 and L1 cores and their fixpoint "
              "iteration behaviour\n");
  graph::GraphDatabase db = bench::MakeBenchLubm();
  auto queries = datagen::LubmQueries();
  Analyze("L0", db, queries[0].text);
  Analyze("L1", db, queries[1].text);

  std::printf("\nExpected shape per the paper: L0 needs an order of "
              "magnitude more rounds than L1.\n");
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main() { return sparqlsim::Run(); }
