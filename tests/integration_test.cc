// End-to-end integration at dataset scale: the full benchmark pipeline
// (generator -> parser -> SOI -> solver -> pruner -> engine) on the
// LUBM-like and DBpedia-like databases with the paper's query workloads.

#include <gtest/gtest.h>

#include "datagen/dbpedia.h"
#include "datagen/lubm.h"
#include "datagen/queries.h"
#include "engine/evaluator.h"
#include "engine/required_triples.h"
#include "sim/pruner.h"
#include "sparql/parser.h"

namespace sparqlsim {
namespace {

class LubmPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LubmConfig config;
    config.num_universities = 1;
    config.seed = 3;
    db_ = new graph::GraphDatabase(datagen::MakeLubmDatabase(config));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static graph::GraphDatabase* db_;
};
graph::GraphDatabase* LubmPipeline::db_ = nullptr;

class DbpediaPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DbpediaConfig config;
    config.scale = 1;
    config.seed = 3;
    db_ = new graph::GraphDatabase(datagen::MakeDbpediaDatabase(config));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static graph::GraphDatabase* db_;
};
graph::GraphDatabase* DbpediaPipeline::db_ = nullptr;

/// The three core guarantees checked per query:
///  1. candidates cover every match binding (Thm. 2 / Def. 3),
///  2. the prune is a superset of the required triples,
///  3. evaluating on the pruned database loses no match (and is exact for
///     the monotone fragment).
void CheckQuery(const graph::GraphDatabase& db, const std::string& id,
                const std::string& text) {
  SCOPED_TRACE(id);
  auto parsed = sparql::Parser::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  engine::Evaluator evaluator(&db);
  engine::SolutionSet rows = evaluator.EvaluatePattern(*query.where);

  sim::SparqlSimProcessor processor(&db);
  sim::PruneReport report = processor.Prune(query);

  // (1) Candidates cover matches.
  for (size_t i = 0; i < rows.NumRows(); ++i) {
    for (size_t c = 0; c < rows.Arity(); ++c) {
      uint32_t value = rows.Row(i)[c];
      if (value == engine::kUnbound) continue;
      ASSERT_TRUE(report.var_candidates.at(rows.vars()[c]).Test(value))
          << "row " << i << " var " << rows.vars()[c];
    }
  }

  // (2) kept ⊇ required.
  auto required = engine::CollectRequiredTriples(query, db, evaluator);
  std::set<graph::Triple> kept(report.kept_triples.begin(),
                               report.kept_triples.end());
  for (const graph::Triple& t : required) {
    ASSERT_TRUE(kept.count(t))
        << db.nodes().Name(t.subject) << " "
        << db.predicates().Name(t.predicate) << " "
        << db.nodes().Name(t.object);
  }

  // (3) No match lost on the prune.
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  engine::Evaluator pruned_eval(&pruned);
  engine::SolutionSet pruned_rows = pruned_eval.EvaluatePattern(*query.where);
  EXPECT_GE(pruned_rows.NumRows(), rows.NumRows());

  // Both engine policies agree on the result cardinality.
  engine::Evaluator virtuoso(&db,
                             {engine::JoinOrderPolicy::kVirtuosoLike});
  EXPECT_EQ(virtuoso.EvaluatePattern(*query.where).NumRows(), rows.NumRows());
}

TEST_F(LubmPipeline, L0) { CheckQuery(*db_, "L0", datagen::LubmQueries()[0].text); }
TEST_F(LubmPipeline, L1) { CheckQuery(*db_, "L1", datagen::LubmQueries()[1].text); }
TEST_F(LubmPipeline, L2) { CheckQuery(*db_, "L2", datagen::LubmQueries()[2].text); }
TEST_F(LubmPipeline, L3) { CheckQuery(*db_, "L3", datagen::LubmQueries()[3].text); }
TEST_F(LubmPipeline, L4) { CheckQuery(*db_, "L4", datagen::LubmQueries()[4].text); }
TEST_F(LubmPipeline, L5) { CheckQuery(*db_, "L5", datagen::LubmQueries()[5].text); }

TEST_F(DbpediaPipeline, DQueries) {
  for (const auto& [id, text] : datagen::DbpediaQueries()) {
    CheckQuery(*db_, id, text);
  }
}

TEST_F(DbpediaPipeline, BQueriesSelective) {
  for (const auto& [id, text] : datagen::BenchmarkQueries()) {
    // Skip the largest result sets to keep the suite quick; they are
    // exercised by the benches.
    if (id == "B14" || id == "B17" || id == "B2") continue;
    CheckQuery(*db_, id, text);
  }
}

TEST_F(DbpediaPipeline, PruningIsIdempotent) {
  // Pruning the pruned database changes nothing: the largest dual
  // simulation of the prune keeps every kept triple.
  sparql::Query query =
      std::move(sparql::Parser::Parse(datagen::DbpediaQueries()[3].text))
          .value();
  sim::SparqlSimProcessor processor(db_);
  sim::PruneReport first = processor.Prune(query);
  graph::GraphDatabase pruned = db_->Restrict(first.kept_triples);
  sim::SparqlSimProcessor second_processor(&pruned);
  sim::PruneReport second = second_processor.Prune(query);
  EXPECT_EQ(first.kept_triples, second.kept_triples);
}

TEST_F(LubmPipeline, UnionQueryAcrossWorkloads) {
  CheckQuery(*db_,
             "union",
             "SELECT * WHERE { { ?x <headOf> ?d . } UNION "
             "{ ?x <worksFor> ?d . ?x a <FullProfessor> . } }");
}

TEST_F(LubmPipeline, NestedOptionalQuery) {
  CheckQuery(*db_,
             "nested-opt",
             "SELECT * WHERE { ?s <advisor> ?p . OPTIONAL { ?p <teacherOf> "
             "?c . OPTIONAL { ?s <takesCourse> ?c2 . } } }");
}

}  // namespace
}  // namespace sparqlsim
