// Standing-query maintenance bench: the update-heavy regime where a
// registered query's dual-simulation solution is maintained across
// small triple deltas instead of recomputed from cold.
//
// One cyclic LUBM query is registered as a sim::StandingQuery, then a
// stream of small delta batches is applied: delete-heavy erosion of the
// predicates the query reads, with periodic restore batches that
// re-insert previously deleted triples (so the retract *and* the grow
// path of maintenance get timed work). After every batch the maintained
// report is gated bit-identical against a cold, cache-free
// SimEngine::Prune on the post-delta snapshot — the bench aborts on the
// first divergence — and both sides are timed. The headline is the
// total maintain time vs the total cold-recompute time over the stream.
//
// Knobs: SPARQLSIM_STANDING_BATCHES (default 8),
//        SPARQLSIM_STANDING_DELTA   (triples per batch, default 32),
//        SPARQLSIM_LUBM_UNIVERSITIES (dataset scale, default 6),
//        --db <file.gdb> / SPARQLSIM_DB for a real ingested database.
// Set SPARQLSIM_BENCH_JSON=<path> to archive numbers as JSON
// (tools/run_benches.sh does).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "sim/sim_engine.h"
#include "sim/standing_query.h"
#include "sparql/ast.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

// Cyclic multi-join touching eight predicates: enough structure that a
// cold solve does real fixpoint work, while a 32-triple delta dirties
// only a sliver of it — the regime standing queries exist for.
const char* kStandingQuery =
    "SELECT * WHERE { "
    "?x <memberOf> ?d . "
    "?x <takesCourse> ?c . "
    "?y <teacherOf> ?c . "
    "?y <worksFor> ?d . "
    "?x <advisor> ?y . "
    "?y <doctoralDegreeFrom> ?u . "
    "?d <subOrganizationOf> ?u2 . "
    "?p <publicationAuthor> ?x . }";

struct BatchSample {
  size_t batch = 0;
  size_t deletes = 0;
  size_t inserts = 0;
  bool maintained_all = false;  // no branch escalated to recompute
  double maintain_seconds = 0;
  double cold_seconds = 0;
  size_t kept = 0;
};

int Run(int argc, char** argv) {
  std::printf("Standing-query maintenance vs cold recompute (small deltas)\n");
  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  graph::GraphDatabase base =
      override_db ? std::move(*override_db) : bench::MakeBenchLubm();

  const size_t batches = bench::EnvSize("SPARQLSIM_STANDING_BATCHES", 8);
  const size_t delta_size = bench::EnvSize("SPARQLSIM_STANDING_DELTA", 32);

  sparql::Query query = bench::ParseOrDie(kStandingQuery);

  sim::StandingQueryOptions options;
  options.solver.cache_sois = false;
  options.solver.cache_solutions = false;
  std::shared_ptr<const graph::GraphDatabase> snapshot = base.Snapshot();

  util::Stopwatch register_watch;
  sim::StandingQuery standing(query, snapshot, options);
  const double register_seconds = register_watch.ElapsedSeconds();
  std::printf("  registered: %zu kept triples, cold solve %.5fs\n",
              standing.report().kept_triples.size(), register_seconds);

  // The erodible pool: every triple carrying a predicate the query reads
  // (taken from the kept-triple set, so absent predicates drop out).
  // Deleting from this pool is the worst honest case for maintenance —
  // each batch actually dirties the standing query's matrices.
  std::vector<uint32_t> query_preds;
  for (const graph::Triple& t : standing.report().kept_triples) {
    query_preds.push_back(t.predicate);
  }
  std::sort(query_preds.begin(), query_preds.end());
  query_preds.erase(std::unique(query_preds.begin(), query_preds.end()),
                    query_preds.end());
  std::vector<graph::Triple> pool;
  for (const graph::Triple& t : base.AllTriples()) {
    if (std::binary_search(query_preds.begin(), query_preds.end(),
                           t.predicate)) {
      pool.push_back(t);
    }
  }
  if (pool.empty()) {
    std::fprintf(stderr,
                 "FATAL: empty standing solution on the base dataset — "
                 "nothing to erode\n");
    return 1;
  }
  std::printf("  erodible pool: %zu triples over the query's predicates\n",
              pool.size());

  sim::SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;

  util::Rng rng(4242);
  std::vector<graph::Triple> retracted;  // deleted so far, restore source
  std::vector<BatchSample> samples;
  double maintain_total = 0, cold_total = 0;
  size_t next_pool = 0;

  for (size_t batch = 0; batch < batches; ++batch) {
    sim::TripleDelta delta;
    const bool restore_batch = batch % 3 == 2 && !retracted.empty();
    if (restore_batch) {
      // Re-insert a prefix of what we retracted: grown predicates, the
      // cone/escalation path.
      const size_t take = std::min(delta_size, retracted.size());
      delta.inserts.assign(retracted.end() - static_cast<ptrdiff_t>(take),
                           retracted.end());
      retracted.resize(retracted.size() - take);
    }
    for (size_t i = 0; i < delta_size && next_pool < pool.size(); ++i) {
      // Stride through the pool at a random skip so erosion spreads over
      // universities instead of draining one department first.
      next_pool += 1 + rng.NextBounded(7);
      if (next_pool >= pool.size()) break;
      delta.deletes.push_back(pool[next_pool]);
      retracted.push_back(pool[next_pool]);
    }
    if (delta.Empty()) break;

    const sim::StandingStats before = standing.stats();
    util::Stopwatch maintain_watch;
    const sim::PruneReport& maintained = standing.Apply(delta);
    const double maintain_seconds = maintain_watch.ElapsedSeconds();
    const sim::StandingStats after = standing.stats();

    util::Stopwatch cold_watch;
    sim::SimEngine cold_engine(&standing.db(), plain);
    sim::PruneReport cold = cold_engine.Prune(query);
    const double cold_seconds = cold_watch.ElapsedSeconds();

    if (maintained.kept_triples != cold.kept_triples ||
        maintained.var_candidates != cold.var_candidates) {
      std::fprintf(stderr,
                   "FATAL: batch %zu maintained report diverges from cold "
                   "recompute (maintained %zu kept, cold %zu kept)\n",
                   batch, maintained.kept_triples.size(),
                   cold.kept_triples.size());
      std::abort();
    }

    BatchSample s;
    s.batch = batch;
    s.deletes = delta.deletes.size();
    s.inserts = delta.inserts.size();
    s.maintained_all = after.recomputed == before.recomputed;
    s.maintain_seconds = maintain_seconds;
    s.cold_seconds = cold_seconds;
    s.kept = maintained.kept_triples.size();
    samples.push_back(s);
    maintain_total += maintain_seconds;
    cold_total += cold_seconds;

    std::printf("  batch %2zu: -%zu/+%zu  maintain %.5fs  cold %.5fs  "
                "(%s, %zu kept)\n",
                batch, s.deletes, s.inserts, maintain_seconds, cold_seconds,
                s.maintained_all ? "maintained" : "escalated", s.kept);
  }

  const sim::StandingStats stats = standing.stats();
  const double speedup =
      maintain_total > 0 ? cold_total / maintain_total : 0.0;
  std::printf("  totals: maintain %.5fs vs cold %.5fs  speedup %.2fx  "
              "(%zu maintained, %zu recomputed, %zu untouched branches, "
              "%zu/%zu ineqs armed, %zu carried entries)\n",
              maintain_total, cold_total, speedup, stats.maintained,
              stats.recomputed, stats.untouched_branches, stats.armed_ineqs,
              stats.total_ineqs, stats.carried_entries);

  FILE* out = stdout;
  const char* json_path = std::getenv("SPARQLSIM_BENCH_JSON");
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  std::fprintf(out, "{\n  \"bench\": \"standing\",\n");
  std::fprintf(out,
               "  \"config\": {\"batches\": %zu, \"delta_size\": %zu, "
               "\"pool\": %zu, \"register_seconds\": %.6f},\n",
               batches, delta_size, pool.size(), register_seconds);
  std::fprintf(out, "  \"batches\": [");
  for (size_t i = 0; i < samples.size(); ++i) {
    const BatchSample& s = samples[i];
    std::fprintf(out,
                 "%s\n    {\"batch\": %zu, \"deletes\": %zu, \"inserts\": "
                 "%zu, \"maintained\": %s, \"maintain_seconds\": %.6f, "
                 "\"cold_seconds\": %.6f, \"kept\": %zu}",
                 i == 0 ? "" : ",", s.batch, s.deletes, s.inserts,
                 s.maintained_all ? "true" : "false", s.maintain_seconds,
                 s.cold_seconds, s.kept);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out,
               "  \"headline\": {\"batches\": %zu, \"delta_size\": %zu, "
               "\"maintained\": %zu, \"recomputed\": %zu, "
               "\"maintain_seconds\": %.6f, \"recompute_seconds\": %.6f, "
               "\"speedup\": %.3f}\n}\n",
               samples.size(), delta_size, stats.maintained, stats.recomputed,
               maintain_total, cold_total, speedup);
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "[bench] JSON written to %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
