#include "sparql/normalize.h"

#include <algorithm>
#include <sstream>

namespace sparqlsim::sparql {

std::vector<std::unique_ptr<Pattern>> UnionNormalForm(const Pattern& pattern) {
  std::vector<std::unique_ptr<Pattern>> result;
  switch (pattern.kind()) {
    case PatternKind::kBgp:
      result.push_back(pattern.Clone());
      break;
    case PatternKind::kUnion: {
      for (auto& p : UnionNormalForm(pattern.left())) {
        result.push_back(std::move(p));
      }
      for (auto& p : UnionNormalForm(pattern.right())) {
        result.push_back(std::move(p));
      }
      break;
    }
    case PatternKind::kJoin:
    case PatternKind::kOptional: {
      auto lefts = UnionNormalForm(pattern.left());
      auto rights = UnionNormalForm(pattern.right());
      for (const auto& l : lefts) {
        for (const auto& r : rights) {
          if (pattern.kind() == PatternKind::kJoin) {
            result.push_back(Pattern::Join(l->Clone(), r->Clone()));
          } else {
            result.push_back(Pattern::Optional(l->Clone(), r->Clone()));
          }
        }
      }
      break;
    }
  }
  return result;
}

std::unique_ptr<Pattern> MergeBgps(std::unique_ptr<Pattern> pattern) {
  if (pattern->IsBgp()) return pattern;

  auto left = MergeBgps(pattern->left().Clone());
  auto right = MergeBgps(pattern->right().Clone());

  if (pattern->kind() == PatternKind::kJoin && left->IsBgp() &&
      right->IsBgp()) {
    std::vector<TriplePattern> merged = left->triples();
    for (const TriplePattern& t : right->triples()) merged.push_back(t);
    return Pattern::Bgp(std::move(merged));
  }

  switch (pattern->kind()) {
    case PatternKind::kJoin:
      return Pattern::Join(std::move(left), std::move(right));
    case PatternKind::kOptional:
      return Pattern::Optional(std::move(left), std::move(right));
    case PatternKind::kUnion:
      return Pattern::Union(std::move(left), std::move(right));
    case PatternKind::kBgp:
      break;
  }
  return pattern;
}

namespace {

/// Kind-tagged surface form so `?x`, `<x>` and `"x"` never collide even if
/// the surface syntax were ever to change.
void PrintTerm(const Term& t, std::ostringstream* out) {
  switch (t.kind()) {
    case Term::Kind::kVariable:
      *out << "v?";
      break;
    case Term::Kind::kIri:
      *out << "i<";
      break;
    case Term::Kind::kLiteral:
      *out << "l\"";
      break;
  }
  *out << t.text();
}

std::string TripleKey(const TriplePattern& t) {
  std::ostringstream out;
  PrintTerm(t.subject, &out);
  out << '\x1f';
  PrintTerm(t.predicate, &out);
  out << '\x1f';
  PrintTerm(t.object, &out);
  return out.str();
}

void PrintCanonical(const Pattern& p, std::ostringstream* out) {
  switch (p.kind()) {
    case PatternKind::kBgp: {
      std::vector<std::string> keys;
      keys.reserve(p.triples().size());
      for (const TriplePattern& t : p.triples()) keys.push_back(TripleKey(t));
      std::sort(keys.begin(), keys.end());
      *out << "B(";
      for (const std::string& k : keys) *out << k << '\x1e';
      *out << ')';
      break;
    }
    case PatternKind::kJoin:
    case PatternKind::kOptional:
    case PatternKind::kUnion:
      *out << (p.kind() == PatternKind::kJoin
                   ? "J("
                   : p.kind() == PatternKind::kOptional ? "O(" : "U(");
      PrintCanonical(p.left(), out);
      *out << ',';
      PrintCanonical(p.right(), out);
      *out << ')';
      break;
  }
}

}  // namespace

std::string CanonicalPatternKey(const Pattern& pattern) {
  std::ostringstream out;
  PrintCanonical(pattern, &out);
  return out.str();
}

}  // namespace sparqlsim::sparql
