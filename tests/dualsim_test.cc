#include "sim/dual_simulation.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/soi.h"

namespace sparqlsim::sim {
namespace {

using graph::Graph;
using graph::GraphDatabase;
using graph::GraphDatabaseBuilder;

/// Builds the data graph of Fig. 2(b): place <-born_in- director
/// -worked_with-> coworker, director -directed-> movie.
GraphDatabase MakeFig2b() {
  GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("director", "born_in", "place").ok());
  EXPECT_TRUE(b.AddTriple("director", "worked_with", "coworker").ok());
  EXPECT_TRUE(b.AddTriple("director", "directed", "movie").ok());
  return std::move(b).Build();
}

/// Pattern graph of Fig. 2(a): two directors, one with a coworker, one
/// with a movie, both born in the same place. Labels are interned against
/// a database's predicate dictionary.
Graph MakeFig2a(const GraphDatabase& db) {
  auto label = [&](const char* name) {
    auto id = db.predicates().Lookup(name);
    return id ? *id : kEmptyPredicate;
  };
  Graph g(5);  // 0=place, 1=director1, 2=director2, 3=coworker, 4=movie
  g.AddEdge(1, label("born_in"), 0);
  g.AddEdge(2, label("born_in"), 0);
  g.AddEdge(1, label("worked_with"), 3);
  g.AddEdge(2, label("directed"), 4);
  return g;
}

TEST(DualSimulationTest, Fig2bDualSimulatesFig2a) {
  // The worked example of Sect. 2: relation (1) is the largest dual
  // simulation between Fig. 2(a) and Fig. 2(b).
  GraphDatabase db = MakeFig2b();
  Graph pattern = MakeFig2a(db);
  Solution s = LargestDualSimulation(pattern, db);
  ASSERT_TRUE(s.AnyCandidate());

  auto id = [&](const char* name) { return *db.nodes().Lookup(name); };
  // place -> {place}, director1/2 -> {director}, coworker -> {coworker},
  // movie -> {movie}.
  EXPECT_EQ(s.candidates[0].ToIndexVector(),
            (std::vector<uint32_t>{id("place")}));
  EXPECT_EQ(s.candidates[1].ToIndexVector(),
            (std::vector<uint32_t>{id("director")}));
  EXPECT_EQ(s.candidates[2].ToIndexVector(),
            (std::vector<uint32_t>{id("director")}));
  EXPECT_EQ(s.candidates[3].ToIndexVector(),
            (std::vector<uint32_t>{id("coworker")}));
  EXPECT_EQ(s.candidates[4].ToIndexVector(),
            (std::vector<uint32_t>{id("movie")}));
}

TEST(DualSimulationTest, Fig1bNotDualSimulatedByFig2a) {
  // Sect. 2: the graph of Fig. 2(a) neither dual simulates nor is dual
  // simulated by the (X1) pattern of Fig. 1(b). Here: Fig. 2(a) as data
  // does not dual simulate the (X1) pattern, because its directors split
  // the directed/worked_with obligations.
  GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("director1", "born_in", "place").ok());
  EXPECT_TRUE(b.AddTriple("director2", "born_in", "place").ok());
  EXPECT_TRUE(b.AddTriple("director1", "worked_with", "coworker").ok());
  EXPECT_TRUE(b.AddTriple("director2", "directed", "movie").ok());
  GraphDatabase db = std::move(b).Build();

  auto label = [&](const char* name) { return *db.predicates().Lookup(name); };
  Graph x1(3);  // 0=director, 1=movie, 2=coworker
  x1.AddEdge(0, label("directed"), 1);
  x1.AddEdge(0, label("worked_with"), 2);

  EXPECT_FALSE(DualSimulates(x1, db));
}

TEST(DualSimulationTest, MovieDatabaseMatchesPaperRelationTwo) {
  // Dual simulation (2) of Sect. 2: evaluating the (X1) pattern against
  // the Fig. 1(a) database keeps exactly De Palma/Hamilton as directors,
  // Koepp/Saltzman as coworkers, and the two directed movies.
  GraphDatabase db = datagen::MakeMovieDatabase();
  auto label = [&](const char* name) { return *db.predicates().Lookup(name); };
  Graph x1(3);  // 0=director, 1=movie, 2=coworker
  x1.AddEdge(0, label("directed"), 1);
  x1.AddEdge(0, label("worked_with"), 2);

  Solution s = LargestDualSimulation(x1, db);
  auto id = [&](const char* name) { return *db.nodes().Lookup(name); };

  std::vector<uint32_t> directors = {id("B. De Palma"), id("G. Hamilton")};
  std::sort(directors.begin(), directors.end());
  std::vector<uint32_t> movies = {id("Mission: Impossible"), id("Goldfinger")};
  std::sort(movies.begin(), movies.end());
  std::vector<uint32_t> coworkers = {id("D. Koepp"), id("H. Saltzman")};
  std::sort(coworkers.begin(), coworkers.end());

  EXPECT_EQ(s.candidates[0].ToIndexVector(), directors);
  EXPECT_EQ(s.candidates[1].ToIndexVector(), movies);
  EXPECT_EQ(s.candidates[2].ToIndexVector(), coworkers);
}

TEST(DualSimulationTest, Fig4TransitivityCounterexample) {
  // Fig. 4 / Sect. 4.1: node p4 survives dual simulation for the P pattern
  // (v -knows-> w, w -knows-> v) although it belongs to no homomorphic
  // match — dual simulation over-approximates.
  GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("p1", "knows", "p2").ok());
  EXPECT_TRUE(b.AddTriple("p2", "knows", "p1").ok());
  EXPECT_TRUE(b.AddTriple("p3", "knows", "p2").ok());
  EXPECT_TRUE(b.AddTriple("p2", "knows", "p3").ok());
  EXPECT_TRUE(b.AddTriple("p3", "knows", "p4").ok());
  EXPECT_TRUE(b.AddTriple("p4", "knows", "p3").ok());
  GraphDatabase db = std::move(b).Build();

  auto label = [&](const char* name) { return *db.predicates().Lookup(name); };
  Graph p(2);  // 0=v, 1=w
  p.AddEdge(0, label("knows"), 1);
  p.AddEdge(1, label("knows"), 0);

  Solution s = LargestDualSimulation(p, db);
  // All four nodes survive for both pattern variables.
  EXPECT_EQ(s.candidates[0].Count(), 4u);
  EXPECT_EQ(s.candidates[1].Count(), 4u);
  EXPECT_TRUE(s.candidates[0].Test(*db.nodes().Lookup("p4")));
}

TEST(DualSimulationTest, EmptyWhenLabelAbsent) {
  GraphDatabase db = MakeFig2b();
  Graph pattern(2);
  pattern.AddEdge(0, kEmptyPredicate, 1);
  EXPECT_FALSE(DualSimulates(pattern, db));
}

TEST(DualSimulationTest, DisconnectedComponentsIndependent) {
  // A pattern component with no match empties only its own component.
  GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("a", "p", "b").ok());
  GraphDatabase db = std::move(b).Build();
  auto label = [&](const char* name) { return *db.predicates().Lookup(name); };

  Graph pattern(4);
  pattern.AddEdge(0, label("p"), 1);       // satisfiable component
  pattern.AddEdge(2, kEmptyPredicate, 3);  // unsatisfiable component
  Solution s = LargestDualSimulation(pattern, db);
  EXPECT_TRUE(s.candidates[0].Any());
  EXPECT_TRUE(s.candidates[1].Any());
  EXPECT_TRUE(s.candidates[2].None());
  EXPECT_TRUE(s.candidates[3].None());
}

TEST(DualSimulationTest, CycleInPatternRequiresCycleInData) {
  // A 2-cycle pattern is not dual simulated by a plain 2-chain.
  GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("x", "e", "y").ok());
  EXPECT_TRUE(b.AddTriple("y", "e", "z").ok());
  GraphDatabase chain = std::move(b).Build();
  auto label = [&](const char* n) { return *chain.predicates().Lookup(n); };

  Graph cycle(2);
  cycle.AddEdge(0, label("e"), 1);
  cycle.AddEdge(1, label("e"), 0);
  EXPECT_FALSE(DualSimulates(cycle, chain));

  // But it is dual simulated by a data graph containing a cycle.
  GraphDatabaseBuilder b2;
  EXPECT_TRUE(b2.AddTriple("x", "e", "y").ok());
  EXPECT_TRUE(b2.AddTriple("y", "e", "x").ok());
  GraphDatabase loop = std::move(b2).Build();
  Graph cycle2(2);
  cycle2.AddEdge(0, *loop.predicates().Lookup("e"), 1);
  cycle2.AddEdge(1, *loop.predicates().Lookup("e"), 0);
  EXPECT_TRUE(DualSimulates(cycle2, loop));
}

TEST(DualSimulationTest, SelfLoopDataSimulatesAnyPathPattern) {
  // A single node with a self-loop dual simulates arbitrarily long path
  // patterns of the same label (classic simulation folklore).
  GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("n", "e", "n").ok());
  GraphDatabase db = std::move(b).Build();
  uint32_t e = *db.predicates().Lookup("e");
  for (size_t len : {1u, 3u, 7u}) {
    Graph path(len + 1);
    for (uint32_t i = 0; i < len; ++i) path.AddEdge(i, e, i + 1);
    EXPECT_TRUE(DualSimulates(path, db)) << "path length " << len;
  }
}

TEST(DualSimulationTest, SingleNodePatternWithoutEdges) {
  // An edgeless single-node pattern is dual simulated by every node.
  GraphDatabase db = MakeFig2b();
  Graph pattern(1);
  Solution s = LargestDualSimulation(pattern, db);
  EXPECT_EQ(s.candidates[0].Count(), db.NumNodes());
}

}  // namespace
}  // namespace sparqlsim::sim
