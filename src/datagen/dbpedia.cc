#include "datagen/dbpedia.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace sparqlsim::datagen {

graph::GraphDatabase MakeDbpediaDatabase(const DbpediaConfig& config) {
  util::Rng rng(config.seed);
  graph::GraphDatabaseBuilder builder;

  auto node = [&](const std::string& n) { return builder.InternNode(n); };
  auto add = [&](uint32_t s, uint32_t p, uint32_t o) {
    util::Status status = builder.AddTripleIds(s, p, o);
    (void)status;
  };
  auto attr = [&](uint32_t s, uint32_t p, const std::string& value) {
    util::Status status =
        builder.AddTripleIds(s, p, builder.InternLiteral(value));
    (void)status;
  };

  // --- Predicates ---
  uint32_t type_p = builder.InternPredicate("rdf:type");
  uint32_t birth_place = builder.InternPredicate("birthPlace");
  uint32_t death_place = builder.InternPredicate("deathPlace");
  uint32_t country_p = builder.InternPredicate("country");
  uint32_t located_in = builder.InternPredicate("locatedIn");
  uint32_t director_p = builder.InternPredicate("director");
  uint32_t starring_p = builder.InternPredicate("starring");
  uint32_t writer_p = builder.InternPredicate("writer");
  uint32_t genre_p = builder.InternPredicate("genre");
  uint32_t artist_p = builder.InternPredicate("artist");
  uint32_t author_p = builder.InternPredicate("author");
  uint32_t spouse_p = builder.InternPredicate("spouse");
  uint32_t alma_mater = builder.InternPredicate("almaMater");
  uint32_t employer_p = builder.InternPredicate("employer");
  uint32_t founded_by = builder.InternPredicate("foundedBy");
  uint32_t sequel_of = builder.InternPredicate("sequel_of");
  uint32_t award_p = builder.InternPredicate("award");
  uint32_t band_member = builder.InternPredicate("bandMember");
  uint32_t population_p = builder.InternPredicate("populationTotal");
  uint32_t name_p = builder.InternPredicate("name");
  uint32_t runtime_p = builder.InternPredicate("runtime");
  uint32_t abstract_p = builder.InternPredicate("abstract");

  // --- Classes ---
  uint32_t c_person = node("Person");
  uint32_t c_actor = node("Actor");
  uint32_t c_director = node("Director");
  uint32_t c_writer = node("Writer");
  uint32_t c_music = node("MusicArtist");
  uint32_t c_film = node("Film");
  uint32_t c_city = node("City");
  uint32_t c_country = node("Country");
  uint32_t c_genre = node("Genre");
  uint32_t c_band = node("Band");
  uint32_t c_album = node("Album");
  uint32_t c_book = node("Book");
  uint32_t c_company = node("Company");
  uint32_t c_university = node("University");
  uint32_t c_award = node("Award");

  const size_t s = config.scale;
  const size_t num_countries = 120;
  const size_t num_cities = 2500 * s;
  const size_t num_genres = 40;
  const size_t num_universities = 400 * s;
  const size_t num_persons = 30000 * s;
  const size_t num_films = 9000 * s;
  const size_t num_bands = 2000 * s;
  const size_t num_albums = 6000 * s;
  const size_t num_books = 5000 * s;
  const size_t num_companies = 3000 * s;
  const size_t num_awards = 25;

  // --- Base entities ---
  std::vector<uint32_t> countries, cities, genres, universities, persons,
      films, bands, companies, awards;
  for (size_t i = 0; i < num_countries; ++i) {
    uint32_t c = node("Country" + std::to_string(i));
    add(c, type_p, c_country);
    countries.push_back(c);
  }
  for (size_t i = 0; i < num_genres; ++i) {
    uint32_t g = node("Genre" + std::to_string(i));
    add(g, type_p, c_genre);
    genres.push_back(g);
  }
  for (size_t i = 0; i < num_awards; ++i) {
    uint32_t a = node("Award" + std::to_string(i));
    add(a, type_p, c_award);
    awards.push_back(a);
  }
  for (size_t i = 0; i < num_cities; ++i) {
    uint32_t c = node("City" + std::to_string(i));
    add(c, type_p, c_city);
    add(c, country_p, countries[rng.NextBounded(countries.size())]);
    attr(c, population_p, std::to_string(1000 + rng.NextBounded(5000000)));
    cities.push_back(c);
  }
  for (size_t i = 0; i < num_universities; ++i) {
    uint32_t u = node("Univ" + std::to_string(i));
    add(u, type_p, c_university);
    add(u, located_in, cities[rng.NextBounded(cities.size())]);
    universities.push_back(u);
  }

  // --- People: role pools are index-residue based so that benchmark
  // queries can rely on, e.g., "Person0" being a director. ---
  std::vector<uint32_t> actors, directors, writers, musicians;
  for (size_t i = 0; i < num_persons; ++i) {
    uint32_t p = node("Person" + std::to_string(i));
    persons.push_back(p);
    add(p, type_p, c_person);
    if (i % 4 == 0) {
      add(p, type_p, c_actor);
      actors.push_back(p);
    }
    if (i % 20 == 0) {
      add(p, type_p, c_director);
      directors.push_back(p);
    }
    if (i % 10 == 0) {
      add(p, type_p, c_writer);
      writers.push_back(p);
    }
    if (i % 7 == 0) {
      add(p, type_p, c_music);
      musicians.push_back(p);
    }
    if (rng.NextBool(0.9)) {
      add(p, birth_place, cities[rng.NextBounded(cities.size())]);
    }
    if (rng.NextBool(0.2)) {
      add(p, death_place, cities[rng.NextBounded(cities.size())]);
    }
    if (rng.NextBool(0.3)) {
      add(p, alma_mater, universities[rng.NextBounded(universities.size())]);
    }
    if (rng.NextBool(0.4)) {
      attr(p, name_p, "Person" + std::to_string(i) + "-name");
    }
    if (rng.NextBool(0.6)) {
      attr(p, abstract_p, "Person" + std::to_string(i) + "-abstract");
    }
  }
  // Spouses between persons (symmetric-ish but stored one way).
  for (size_t i = 0; i < num_persons / 7; ++i) {
    uint32_t a = persons[rng.NextBounded(persons.size())];
    uint32_t b = persons[rng.NextBounded(persons.size())];
    if (a != b) add(a, spouse_p, b);
  }

  // --- Companies ---
  for (size_t i = 0; i < num_companies; ++i) {
    uint32_t c = node("Company" + std::to_string(i));
    companies.push_back(c);
    add(c, type_p, c_company);
    add(c, located_in, cities[rng.NextBounded(cities.size())]);
    if (rng.NextBool(0.6)) {
      add(c, founded_by, persons[rng.NextBounded(persons.size())]);
    }
  }
  // Employment back-edges on people.
  for (size_t i = 0; i < num_persons / 5; ++i) {
    add(persons[rng.NextBounded(persons.size())], employer_p,
        companies[rng.NextBounded(companies.size())]);
  }

  // --- Films ---
  for (size_t i = 0; i < num_films; ++i) {
    uint32_t f = node("Film" + std::to_string(i));
    films.push_back(f);
    add(f, type_p, c_film);
    add(f, director_p, directors[rng.NextBounded(directors.size())]);
    if (rng.NextBool(0.15)) {
      add(f, director_p, directors[rng.NextBounded(directors.size())]);
    }
    size_t cast = 3 + rng.NextBounded(5);
    for (size_t a = 0; a < cast; ++a) {
      add(f, starring_p, actors[rng.NextBounded(actors.size())]);
    }
    if (rng.NextBool(0.5)) {
      add(f, writer_p, writers[rng.NextBounded(writers.size())]);
    }
    add(f, genre_p, genres[rng.NextBounded(genres.size())]);
    if (rng.NextBool(0.3)) {
      add(f, genre_p, genres[rng.NextBounded(genres.size())]);
    }
    add(f, country_p, countries[rng.NextBounded(countries.size())]);
    if (i > 0 && rng.NextBool(0.08)) {
      add(f, sequel_of, films[rng.NextBounded(i)]);
    }
    if (rng.NextBool(0.04)) {
      add(f, award_p, awards[rng.NextBounded(awards.size())]);
    }
    if (rng.NextBool(0.3)) {
      attr(f, runtime_p, std::to_string(70 + rng.NextBounded(120)));
    }
    attr(f, abstract_p, "Film" + std::to_string(i) + "-abstract");
  }

  // --- Bands and albums ---
  for (size_t i = 0; i < num_bands; ++i) {
    uint32_t b = node("Band" + std::to_string(i));
    bands.push_back(b);
    add(b, type_p, c_band);
    add(b, genre_p, genres[rng.NextBounded(genres.size())]);
    size_t members = 2 + rng.NextBounded(4);
    for (size_t m = 0; m < members; ++m) {
      add(b, band_member, musicians[rng.NextBounded(musicians.size())]);
    }
  }
  for (size_t i = 0; i < num_albums; ++i) {
    uint32_t a = node("Album" + std::to_string(i));
    add(a, type_p, c_album);
    add(a, artist_p, rng.NextBool(0.7)
                         ? bands[rng.NextBounded(bands.size())]
                         : musicians[rng.NextBounded(musicians.size())]);
    add(a, genre_p, genres[rng.NextBounded(genres.size())]);
  }

  // --- Books ---
  for (size_t i = 0; i < num_books; ++i) {
    uint32_t b = node("Book" + std::to_string(i));
    add(b, type_p, c_book);
    add(b, author_p, writers[rng.NextBounded(writers.size())]);
    if (rng.NextBool(0.15)) {
      add(b, author_p, writers[rng.NextBounded(writers.size())]);
    }
    add(b, genre_p, genres[rng.NextBounded(genres.size())]);
  }

  // --- Zipf tail of rare predicates (the 65k-predicate diversity knob) ---
  std::vector<uint32_t> tail_predicates;
  for (size_t i = 0; i < config.num_tail_predicates; ++i) {
    tail_predicates.push_back(
        builder.InternPredicate("tail" + std::to_string(i)));
  }
  std::vector<uint32_t>* pools[] = {&persons, &films,   &cities,
                                    &bands,   &companies, &universities};
  if (!tail_predicates.empty()) {
    util::ZipfSampler zipf(tail_predicates.size(), 1.1);
    for (size_t i = 0; i < config.num_tail_edges * s; ++i) {
      uint32_t p = tail_predicates[zipf.Sample(&rng)];
      std::vector<uint32_t>& from = *pools[rng.NextBounded(6)];
      std::vector<uint32_t>& to = *pools[rng.NextBounded(6)];
      add(from[rng.NextBounded(from.size())], p,
          to[rng.NextBounded(to.size())]);
    }
  }

  return std::move(builder).Build();
}

}  // namespace sparqlsim::datagen
