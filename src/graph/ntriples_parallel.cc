// Chunked parallel N-Triples parsing (NTriples::LoadParallel).
//
// The input stream is cut into ~chunk_bytes pieces ending on line
// boundaries. Each chunk is parsed on a util::ThreadPool into a
// chunk-local result: a local term/predicate dictionary (distinct names in
// chunk-first-seen order, each with the kind it first appeared as) plus
// the chunk's statements over local ids. The calling thread then merges
// chunk results in file order, interning each chunk's local names into the
// global builder in their local first-seen order.
//
// Determinism argument: a name's global id is its position in the global
// first-seen order. Merging chunks in file order and, within a chunk,
// local names in chunk scan order reproduces exactly the file scan order —
// so the merged builder state equals the sequential Load's for EVERY
// thread count and chunk size, and the BinaryIo serialization is
// byte-identical (tests/ntriples_test.cc and cli_ingest_test.cc enforce
// this). Work assignment inside a wave is nondeterministic; the results
// vector indexed by chunk position makes that invisible.

#include <algorithm>
#include <istream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/ntriples.h"
#include "graph/ntriples_line.h"
#include "util/thread_pool.h"

namespace sparqlsim::graph {

namespace {

using internal::LineOutcome;
using internal::Statement;
using internal::TermKind;

/// Everything a worker extracts from one chunk, over chunk-local ids.
struct ChunkResult {
  struct Stmt {
    uint32_t subject;
    uint32_t predicate;
    uint32_t object;
    uint32_t line;  // 1-based, chunk-relative (for diagnostics)
  };

  std::vector<std::string> terms;      // distinct, chunk-first-seen order
  std::vector<TermKind> term_kinds;    // kind at first local occurrence
  std::vector<std::string> predicates;
  std::vector<Stmt> statements;

  size_t lines = 0;      // logical lines scanned
  size_t malformed = 0;  // permissive mode: skipped lines

  // First parse error, chunk-relative. In strict mode scanning stops
  // here; in permissive mode it is only reported in the stats.
  bool failed = false;
  size_t error_line = 0;
  std::string error;
};

/// Chunk-local interner mirroring the builder's first-seen-kind-wins
/// semantics (InternNode / InternLiteral on an existing id never change
/// its literal flag).
class LocalDict {
 public:
  uint32_t Intern(const std::string& name, TermKind kind,
                  std::vector<std::string>* names,
                  std::vector<TermKind>* kinds) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names->size());
    names->push_back(name);
    if (kinds != nullptr) kinds->push_back(kind);
    index_.emplace(name, id);
    return id;
  }

 private:
  std::unordered_map<std::string, uint32_t> index_;
};

ChunkResult ParseChunk(std::string_view text, bool permissive,
                       size_t max_line_bytes) {
  ChunkResult result;
  LocalDict terms;
  LocalDict predicates;
  Statement statement;
  std::string error;

  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++result.lines;

    LineOutcome outcome;
    if (max_line_bytes > 0 && line.size() > max_line_bytes) {
      // Same check and message as the sequential loader; NextChunk has
      // already discarded everything past max_line_bytes + 1 bytes.
      outcome = LineOutcome::kError;
      error = internal::OversizeLineError(max_line_bytes);
    } else {
      outcome = internal::ParseLine(line, &statement, &error);
    }
    if (outcome == LineOutcome::kEmpty) continue;
    if (outcome == LineOutcome::kError) {
      if (!permissive) {
        result.failed = true;
        result.error_line = result.lines;
        result.error = std::move(error);
        return result;
      }
      ++result.malformed;
      if (result.error.empty()) {
        result.error_line = result.lines;
        result.error = std::move(error);
      }
      error.clear();
      continue;
    }

    // Intern in subject-predicate-object order — the same order the
    // sequential AddTriple uses, which the merge replays globally.
    uint32_t s = terms.Intern(statement.subject, statement.subject_kind,
                              &result.terms, &result.term_kinds);
    uint32_t p = predicates.Intern(statement.predicate, TermKind::kIri,
                                   &result.predicates, nullptr);
    uint32_t o = terms.Intern(statement.object, statement.object_kind,
                              &result.terms, &result.term_kinds);
    result.statements.push_back(
        {s, p, o, static_cast<uint32_t>(result.lines)});
  }
  return result;
}

using internal::LineError;

/// Interns one chunk's names and replays its statements into the global
/// builder. `total->lines` on entry is the line offset of this chunk.
util::Status MergeChunk(const ChunkResult& chunk,
                        GraphDatabaseBuilder* builder,
                        const NTriplesOptions& options,
                        NTriplesStats* total) {
  size_t base_line = total->lines;

  std::vector<uint32_t> node_ids;
  node_ids.reserve(chunk.terms.size());
  for (size_t i = 0; i < chunk.terms.size(); ++i) {
    node_ids.push_back(chunk.term_kinds[i] == TermKind::kLiteral
                           ? builder->InternLiteral(chunk.terms[i])
                           : builder->InternNode(chunk.terms[i]));
  }
  std::vector<uint32_t> predicate_ids;
  predicate_ids.reserve(chunk.predicates.size());
  for (const std::string& name : chunk.predicates) {
    predicate_ids.push_back(builder->InternPredicate(name));
  }

  for (const ChunkResult::Stmt& stmt : chunk.statements) {
    // In strict mode a parse error that precedes this statement must win,
    // exactly as the line-by-line sequential loader would report it.
    if (chunk.failed && chunk.error_line < stmt.line) break;

    util::Status added = builder->AddTripleIds(
        node_ids[stmt.subject], predicate_ids[stmt.predicate],
        node_ids[stmt.object]);
    if (added.ok()) {
      ++total->triples;
      continue;
    }
    // Semantic rejection (literal in subject position, Def. 1).
    std::string diagnostic =
        LineError(base_line + stmt.line, added.message());
    if (!options.permissive) {
      // Match the sequential loader's stats: lines counts up to and
      // including the failing line.
      total->lines = base_line + stmt.line;
      return util::Status::Error(diagnostic);
    }
    ++total->malformed_lines;
    if (total->first_error.empty() &&
        (chunk.error.empty() || stmt.line < chunk.error_line)) {
      total->first_error = std::move(diagnostic);
    }
  }

  if (chunk.failed) {
    total->lines = base_line + chunk.error_line;
    return util::Status::Error(
        LineError(base_line + chunk.error_line, chunk.error));
  }
  total->malformed_lines += chunk.malformed;
  if (total->first_error.empty() && !chunk.error.empty()) {
    total->first_error = LineError(base_line + chunk.error_line, chunk.error);
  }
  total->lines += chunk.lines;
  return util::Status::Ok();
}

/// Reads the next chunk, ending on a line boundary except at EOF. Bytes
/// after the last newline stay in `carry` for the next call. Returns
/// false when the input is exhausted.
///
/// A single line longer than chunk_bytes is kept whole (lines never split
/// across chunks) — but only up to max_line_bytes: past that the line is
/// already malformed, so the reader keeps a max_line_bytes + 1 byte prefix
/// (enough for ParseChunk to diagnose it as oversize) and DISCARDS the
/// rest up to the newline instead of buffering it. Before this cap a
/// newline-free multi-gigabyte input was slurped into one chunk whole.
bool NextChunk(std::istream& in, std::string* carry, size_t chunk_bytes,
               size_t max_line_bytes, std::string* chunk) {
  // Small chunk_bytes (tests, tiny-memory configs) should not be undone
  // by a 1 MiB read granularity.
  constexpr size_t kMaxReadBlock = size_t{1} << 20;
  const size_t read_block =
      std::min(kMaxReadBlock, std::max<size_t>(chunk_bytes, 4096));
  *chunk = std::move(*carry);
  carry->clear();
  for (;;) {
    if (chunk->size() >= chunk_bytes) {
      size_t newline = chunk->rfind('\n');
      if (newline != std::string::npos) {
        carry->assign(*chunk, newline + 1, chunk->size() - newline - 1);
        chunk->resize(newline + 1);
        return true;
      }
      if (max_line_bytes > 0 && chunk->size() > max_line_bytes) {
        // The chunk is one giant unterminated line that already blew the
        // limit. Keep the over-limit prefix, skip to the newline.
        chunk->resize(max_line_bytes + 1);
        std::string block(read_block, '\0');
        for (;;) {
          in.read(block.data(), static_cast<std::streamsize>(read_block));
          size_t got = static_cast<size_t>(in.gcount());
          if (got == 0) return true;  // EOF ends the line
          size_t nl = std::string_view(block.data(), got).find('\n');
          if (nl != std::string_view::npos) {
            carry->assign(block, nl + 1, got - nl - 1);
            chunk->push_back('\n');
            return true;
          }
        }
      }
    }
    size_t old_size = chunk->size();
    chunk->resize(old_size + read_block);
    in.read(chunk->data() + old_size,
            static_cast<std::streamsize>(read_block));
    size_t got = static_cast<size_t>(in.gcount());
    chunk->resize(old_size + got);
    if (got == 0) return !chunk->empty();
  }
}

}  // namespace

util::Status NTriples::LoadParallel(std::istream& in,
                                    GraphDatabaseBuilder* builder,
                                    const NTriplesOptions& options,
                                    NTriplesStats* stats) {
  size_t threads = util::ThreadPool::ResolveThreadCount(options.num_threads);
  size_t chunk_bytes = options.chunk_bytes > 0 ? options.chunk_bytes : 1;
  if (threads <= 1) {
    // Same result by construction; skip the pool and the chunk copies.
    return Load(in, builder, options, stats);
  }

  util::ThreadPool pool(threads);
  NTriplesStats total;
  std::string carry;
  std::vector<std::string> chunks;
  std::vector<ChunkResult> results;
  // One wave per pool pass: caller + workers all parse, then the caller
  // merges in order. Peak memory ~ (threads + 1) * chunk_bytes.
  const size_t wave_size = threads + 1;
  bool exhausted = false;

  while (!exhausted) {
    chunks.clear();
    while (chunks.size() < wave_size) {
      std::string chunk;
      if (!NextChunk(in, &carry, chunk_bytes, options.max_line_bytes,
                     &chunk)) {
        exhausted = true;
        break;
      }
      total.peak_chunk_bytes = std::max(total.peak_chunk_bytes, chunk.size());
      chunks.push_back(std::move(chunk));
    }
    if (chunks.empty()) break;

    results.assign(chunks.size(), ChunkResult{});
    util::ParallelFor(&pool, chunks.size(), [&](size_t i) {
      results[i] =
          ParseChunk(chunks[i], options.permissive, options.max_line_bytes);
    });

    for (const ChunkResult& chunk : results) {
      util::Status merged = MergeChunk(chunk, builder, options, &total);
      if (!merged.ok()) {
        if (stats != nullptr) *stats = total;
        return merged;
      }
    }
  }

  if (stats != nullptr) *stats = total;
  return util::Status::Ok();
}

}  // namespace sparqlsim::graph
