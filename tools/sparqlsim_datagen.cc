// sparqlsim-datagen — dumps the built-in synthetic datasets as N-Triples,
// so the sparqlsim CLI (and any other RDF tool) can consume them.
//
//   sparqlsim-datagen movies                > movies.nt
//   sparqlsim-datagen lubm    <universities> [seed] > lubm.nt
//   sparqlsim-datagen dbpedia <scale> [seed]        > dbpedia.nt
//   sparqlsim-datagen queries                       # prints the workloads

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "datagen/dbpedia.h"
#include "datagen/lubm.h"
#include "datagen/movies.h"
#include "datagen/queries.h"
#include "graph/ntriples.h"

namespace sparqlsim {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: sparqlsim-datagen movies | lubm <universities> [seed] "
               "| dbpedia <scale> [seed] | queries\n");
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();

  if (std::strcmp(argv[1], "movies") == 0) {
    graph::NTriples::Write(datagen::MakeMovieDatabase(), std::cout);
    return 0;
  }
  if (std::strcmp(argv[1], "lubm") == 0) {
    if (argc < 3) return Usage();
    datagen::LubmConfig config;
    config.num_universities = std::strtoull(argv[2], nullptr, 10);
    if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);
    graph::NTriples::Write(datagen::MakeLubmDatabase(config), std::cout);
    return 0;
  }
  if (std::strcmp(argv[1], "dbpedia") == 0) {
    if (argc < 3) return Usage();
    datagen::DbpediaConfig config;
    config.scale = std::strtoull(argv[2], nullptr, 10);
    if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);
    graph::NTriples::Write(datagen::MakeDbpediaDatabase(config), std::cout);
    return 0;
  }
  if (std::strcmp(argv[1], "queries") == 0) {
    for (const auto& [id, text] : datagen::LubmQueries()) {
      std::printf("# %s (LUBM-like)\n%s\n\n", id.c_str(), text.c_str());
    }
    for (const auto& [id, text] : datagen::DbpediaQueries()) {
      std::printf("# %s (DBpedia-like)\n%s\n\n", id.c_str(), text.c_str());
    }
    for (const auto& [id, text] : datagen::BenchmarkQueries()) {
      std::printf("# %s (DBpedia-like)\n%s\n\n", id.c_str(), text.c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
