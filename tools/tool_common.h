// Small helpers shared by the command-line tools.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>

#include "graph/binary_io.h"
#include "graph/graph_database.h"
#include "graph/ntriples.h"
#include "util/stopwatch.h"

namespace sparqlsim::tools {

/// Sentinel for LoadDatabase's resident_mb: fall back to the
/// SPARQLSIM_RESIDENT_MB environment variable (unbounded when unset).
inline constexpr size_t kResidentMbFromEnv = static_cast<size_t>(-1);

/// Resolves the resident-budget knob: an explicit --resident-mb value
/// wins, otherwise SPARQLSIM_RESIDENT_MB, otherwise 0 (unbounded). The
/// budget only affects lazily opened SQSIMDB2 files.
inline size_t ResolveResidentBudgetBytes(size_t resident_mb) {
  if (resident_mb == kResidentMbFromEnv) {
    const char* env = std::getenv("SPARQLSIM_RESIDENT_MB");
    resident_mb =
        env != nullptr ? static_cast<size_t>(std::strtoull(env, nullptr, 10))
                       : 0;
  }
  return resident_mb << 20;
}

/// True when `path` ends with `suffix` — the tools' format-dispatch
/// primitive (".gdb" → binary, ".gz" → gzip pipe, anything else →
/// N-Triples text).
inline bool HasSuffix(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

/// Loads N-Triples or binary by suffix; `force_binary` (the --db flag's
/// behavior) always reads the SQSIMDB binary formats regardless of
/// suffix. SQSIMDB2 files open mmap-ed and lazy, with the resident
/// budget from `resident_mb` (see ResolveResidentBudgetBytes). Reports
/// load time on stderr; returns nullopt (with a diagnostic) on failure.
/// Shared by sparqlsim_cli and sparqlsim_batch.
inline std::optional<graph::GraphDatabase> LoadDatabase(
    const char* path, bool force_binary = false,
    size_t resident_mb = kResidentMbFromEnv) {
  util::Stopwatch watch;
  std::optional<graph::GraphDatabase> db;
  if (force_binary || HasSuffix(path, ".gdb")) {
    graph::BinaryIo::LoadOptions load_options;
    load_options.resident_budget_bytes =
        ResolveResidentBudgetBytes(resident_mb);
    auto loaded = graph::BinaryIo::LoadFile(path, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path,
                   loaded.error_message().c_str());
      return std::nullopt;
    }
    db = std::move(loaded).value();
  } else {
    graph::GraphDatabaseBuilder builder;
    util::Status status = graph::NTriples::LoadFile(path, &builder);
    if (!status.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path,
                   status.message().c_str());
      return std::nullopt;
    }
    db = std::move(builder).Build();
  }
  std::fprintf(stderr,
               "loaded %zu triples (%zu nodes, %zu predicates) in %.2fs\n",
               db->NumTriples(), db->NumNodes(), db->NumPredicates(),
               watch.ElapsedSeconds());
  if (db->HasBacking()) {
    graph::BackingStats backing = db->backing_stats();
    std::fprintf(stderr,
                 "out-of-core: %zu/%zu predicate matrices resident, "
                 "budget %zu MiB%s\n",
                 backing.resident, backing.predicates,
                 backing.budget_bytes >> 20,
                 backing.budget_bytes == 0 ? " (unbounded)" : "");
  }
  return db;
}

}  // namespace sparqlsim::tools
