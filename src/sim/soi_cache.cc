#include "sim/soi_cache.h"

#include <algorithm>
#include <utility>

namespace sparqlsim::sim {

std::string SoiCache::MakeKey(uint64_t generation, const std::string& key) {
  return std::to_string(generation) + '\n' + key;
}

SoiCache::Entry* SoiCache::FindEntryLocked(const std::string& full_key) {
  auto it = entries_.find(full_key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return &it->second;
}

void SoiCache::EvictOverCapacityLocked() {
  while (options_.capacity != 0 && entries_.size() > options_.capacity) {
    auto victim = entries_.find(lru_.back());
    ++stats_.soi_evictions;
    if (victim->second.solution != nullptr) {
      ++stats_.solution_evictions;
      --num_solutions_;
    }
    entries_.erase(victim);
    lru_.pop_back();
  }
}

size_t SoiCache::EvictStaleLocked(std::span<const uint64_t> live_generations) {
  size_t dropped = 0;
  auto live = [&](uint64_t g) {
    return std::find(live_generations.begin(), live_generations.end(), g) !=
           live_generations.end();
  };
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!live(it->second.generation)) {
      ++dropped;
      if (it->second.solution != nullptr) {
        ++dropped;
        --num_solutions_;
      }
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

void SoiCache::MaybeCollectGenerationsLocked(uint64_t generation) {
  if (generation <= newest_generation_) return;
  // Generations are process-unique and monotonically increasing, so a
  // newer stamp means every older entry belongs to a database build that
  // this cache's owner has moved past.
  if (options_.generation_gc && newest_generation_ != 0) {
    const uint64_t live[] = {generation};
    stats_.generation_evictions += EvictStaleLocked(live);
  }
  newest_generation_ = generation;
}

std::shared_ptr<const Soi> SoiCache::FindSoi(uint64_t generation,
                                             const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeCollectGenerationsLocked(generation);
  Entry* entry = FindEntryLocked(MakeKey(generation, key));
  if (entry == nullptr) {
    ++stats_.soi_misses;
    return nullptr;
  }
  ++stats_.soi_hits;
  return entry->soi;
}

std::shared_ptr<const Soi> SoiCache::InsertSoi(uint64_t generation,
                                               const std::string& key,
                                               Soi soi) {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeCollectGenerationsLocked(generation);
  std::string full_key = MakeKey(generation, key);
  auto [it, inserted] = entries_.try_emplace(full_key);
  if (!inserted) {
    // First insert wins (concurrent builders race to store the same
    // artifact); refresh recency and hand back the canonical instance.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.soi;
  }
  lru_.push_front(std::move(full_key));
  it->second.generation = generation;
  it->second.soi = std::make_shared<const Soi>(std::move(soi));
  it->second.lru_pos = lru_.begin();
  std::shared_ptr<const Soi> stored = it->second.soi;
  EvictOverCapacityLocked();
  return stored;
}

std::shared_ptr<const Solution> SoiCache::FindSolution(uint64_t generation,
                                                       const std::string& key,
                                                       const Soi* solved_on) {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeCollectGenerationsLocked(generation);
  Entry* entry = FindEntryLocked(MakeKey(generation, key));
  // A solution only pairs with the exact SOI instance it was solved on:
  // if the entry was evicted and rebuilt since the caller fetched its SOI,
  // the variable numbering may differ — that is a miss, never a wrong hit.
  if (entry == nullptr || entry->solution == nullptr ||
      entry->soi.get() != solved_on) {
    ++stats_.solution_misses;
    return nullptr;
  }
  ++stats_.solution_hits;
  return entry->solution;
}

std::shared_ptr<const Solution> SoiCache::InsertSolution(
    uint64_t generation, const std::string& key, const Soi* solved_on,
    Solution solution) {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeCollectGenerationsLocked(generation);
  Entry* entry = FindEntryLocked(MakeKey(generation, key));
  if (entry == nullptr || entry->soi.get() != solved_on) {
    // The SOI this solution was solved on is no longer the cached instance
    // (evicted, possibly rebuilt with different variable numbering): hand
    // the solution back un-cached.
    return std::make_shared<const Solution>(std::move(solution));
  }
  if (entry->solution == nullptr) {
    entry->solution = std::make_shared<const Solution>(std::move(solution));
    ++num_solutions_;
  }
  return entry->solution;
}

size_t SoiCache::EvictStaleGenerations(uint64_t live_generation) {
  const uint64_t live[] = {live_generation};
  return EvictStaleGenerations(std::span<const uint64_t>(live));
}

size_t SoiCache::EvictStaleGenerations(
    std::span<const uint64_t> live_generations) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = EvictStaleLocked(live_generations);
  stats_.generation_evictions += dropped;
  for (uint64_t g : live_generations) {
    if (g > newest_generation_) newest_generation_ = g;
  }
  return dropped;
}

SoiCache::Stats SoiCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t SoiCache::NumSois() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t SoiCache::NumSolutions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_solutions_;
}

void SoiCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  num_solutions_ = 0;
  stats_ = Stats{};
  newest_generation_ = 0;
}

}  // namespace sparqlsim::sim
