#pragma once

#include <cstdint>

#include "graph/graph_database.h"

namespace sparqlsim::datagen {

/// Configuration of the LUBM-like university generator.
///
/// The paper's LUBM findings (Sect. 5) hinge on the dataset's *low label
/// diversity*: 18 predicates spread over a billion triples, which makes
/// predicates unselective, drives the SOI fixpoint to many iterations on
/// cyclic queries (L0), and weakens pruning (L1). This generator keeps
/// LUBM's schema — universities, departments, faculty, students, courses,
/// publications and exactly the LUBM-style predicate set — and scales the
/// instance count down to laptop size.
struct LubmConfig {
  size_t num_universities = 3;
  uint64_t seed = 42;
  /// Emit name/email/telephone literal attributes.
  bool attribute_triples = true;
  /// Probability that a graduate student's undergraduate degree is from
  /// the university of their own department — the knob that makes the
  /// cyclic L1 query satisfiable.
  double same_university_degree_rate = 0.2;
};

/// Node naming: "U3" (university), "U3/D5" (department), "U3/D5/FP0"
/// full / "ACP" associate / "ASP" assistant professors, "G" graduate and
/// "UG" undergraduate students, "C" courses, "P" publications. Class nodes
/// ("University", "FullProfessor", ...) hang off the "rdf:type" predicate.
graph::GraphDatabase MakeLubmDatabase(const LubmConfig& config = {});

}  // namespace sparqlsim::datagen
