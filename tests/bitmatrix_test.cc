#include "util/bitmatrix.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/counted_accumulator.h"
#include "util/hierarchical_bitvector.h"
#include "util/rng.h"

namespace sparqlsim::util {
namespace {

BitMatrix MakeFigureMatrix() {
  // F_born_in of Fig. 2(a) in the paper: nodes are
  // 0=place, 1=director1, 2=director2, 3=coworker, 4=movie;
  // edges director1 -> place, director2 -> place.
  return BitMatrix::Build(5, 5, {{1, 0}, {2, 0}});
}

TEST(BitMatrixTest, BuildAndAccess) {
  BitMatrix m = MakeFigureMatrix();
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.Nnz(), 2u);
  EXPECT_TRUE(m.Test(1, 0));
  EXPECT_TRUE(m.Test(2, 0));
  EXPECT_FALSE(m.Test(0, 1));
  EXPECT_EQ(m.NumNonEmptyRows(), 2u);
}

TEST(BitMatrixTest, BuildMergesDuplicates) {
  BitMatrix m = BitMatrix::Build(3, 3, {{0, 1}, {0, 1}, {2, 2}});
  EXPECT_EQ(m.Nnz(), 2u);
}

TEST(BitMatrixTest, PaperExampleProducts) {
  // Sect. 3.2: chi(director) = 11111, multiplied by F_born_in gives 10000;
  // chi(place) = 11111 multiplied by B_born_in gives 01100.
  BitMatrix fwd = MakeFigureMatrix();
  BitMatrix bwd = fwd.Transposed();
  BitVector all(5, true);
  BitVector out(5);
  fwd.Multiply(all, &out);
  EXPECT_EQ(out.ToString(), "10000");
  bwd.Multiply(all, &out);
  EXPECT_EQ(out.ToString(), "01100");
}

TEST(BitMatrixTest, MultiplySelectsRows) {
  BitMatrix m = BitMatrix::Build(4, 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  BitVector x = BitVector::FromIndices(4, {0, 2});
  BitVector out(4);
  m.Multiply(x, &out);
  EXPECT_EQ(out.ToIndexVector(), (std::vector<uint32_t>{1, 3}));
}

TEST(BitMatrixTest, MultiplyEmptySelection) {
  BitMatrix m = MakeFigureMatrix();
  BitVector x(5);
  BitVector out(5, true);
  m.Multiply(x, &out);
  EXPECT_TRUE(out.None());
}

TEST(BitMatrixTest, RowIntersects) {
  BitMatrix m = BitMatrix::Build(3, 5, {{0, 1}, {0, 3}, {2, 4}});
  BitVector y = BitVector::FromIndices(5, {3});
  EXPECT_TRUE(m.RowIntersects(0, y));
  EXPECT_FALSE(m.RowIntersects(1, y));
  EXPECT_FALSE(m.RowIntersects(2, y));
}

TEST(BitMatrixTest, Summaries) {
  BitMatrix m = MakeFigureMatrix();
  EXPECT_EQ(m.RowSummary().ToString(), "01100");  // f^born_in of Fig. 2(a)
  EXPECT_EQ(m.ColSummary().ToString(), "10000");  // b^born_in
  EXPECT_EQ(m.CountEmptyColumns(), 4u);
}

TEST(BitMatrixTest, TransposeRoundTrip) {
  Rng rng(5);
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (int i = 0; i < 300; ++i) {
    entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(40)),
                         static_cast<uint32_t>(rng.NextBounded(60)));
  }
  BitMatrix m = BitMatrix::Build(40, 60, std::move(entries));
  BitMatrix tt = m.Transposed().Transposed();
  EXPECT_EQ(m.Nnz(), tt.Nnz());
  for (size_t r = 0; r < 40; ++r) {
    for (size_t c = 0; c < 60; ++c) {
      EXPECT_EQ(m.Test(r, c), tt.Test(r, c));
    }
  }
}

TEST(BitMatrixTest, MultiplyMatchesNaive) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    size_t rows = 1 + rng.NextBounded(80);
    size_t cols = 1 + rng.NextBounded(80);
    std::vector<std::pair<uint32_t, uint32_t>> entries;
    size_t nnz = rng.NextBounded(200);
    for (size_t i = 0; i < nnz; ++i) {
      entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(rows)),
                           static_cast<uint32_t>(rng.NextBounded(cols)));
    }
    std::vector<std::pair<uint32_t, uint32_t>> copy = entries;
    BitMatrix m = BitMatrix::Build(rows, cols, std::move(entries));

    BitVector x(rows);
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextBool(0.4)) x.Set(r);
    }
    BitVector expected(cols);
    for (const auto& [r, c] : copy) {
      if (x.Test(r)) expected.Set(c);
    }
    BitVector out(cols);
    m.Multiply(x, &out);
    EXPECT_EQ(out, expected);
  }
}

TEST(BitMatrixTest, EmptyMatrix) {
  BitMatrix m(10, 10);
  EXPECT_EQ(m.Nnz(), 0u);
  EXPECT_FALSE(m.RowAny(3));
  BitVector all(10, true);
  BitVector out(10);
  m.Multiply(all, &out);
  EXPECT_TRUE(out.None());
}

TEST(BitMatrixTest, RowBySlotMatchesRowLookup) {
  BitMatrix m = BitMatrix::Build(8, 8, {{1, 2}, {1, 5}, {4, 0}, {7, 7}});
  auto rows = m.NonEmptyRows();
  ASSERT_EQ(rows.size(), 3u);
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    auto by_slot = m.RowBySlot(slot);
    auto by_id = m.Row(rows[slot]);
    ASSERT_EQ(by_slot.size(), by_id.size());
    for (size_t i = 0; i < by_slot.size(); ++i) {
      EXPECT_EQ(by_slot[i], by_id[i]);
    }
  }
}

TEST(BitMatrixTest, HierarchicalMultiplyMatchesPlain) {
  Rng rng(7100);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t rows = 1 + rng.NextBounded(5000);
    const size_t cols = 1 + rng.NextBounded(5000);
    std::vector<std::pair<uint32_t, uint32_t>> entries;
    const size_t nnz = rng.NextBounded(400);
    for (size_t i = 0; i < nnz; ++i) {
      entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(rows)),
                           static_cast<uint32_t>(rng.NextBounded(cols)));
    }
    BitMatrix m = BitMatrix::Build(rows, cols, std::move(entries));
    BitVector x(rows);
    for (size_t r = 0; r < rows; ++r) {
      // Alternate dense and sparse selectors to hit both Multiply paths.
      if (rng.NextBool(trial % 2 == 0 ? 0.6 : 0.01)) x.Set(r);
    }
    BitVector plain(cols);
    m.Multiply(x, &plain);
    BitVector viah(cols);
    m.Multiply(HierarchicalBitVector(x), &viah);
    EXPECT_EQ(viah, plain) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// CountedAccumulator: the incremental product must track the full product
// exactly through arbitrary monotone removal sequences.
// ---------------------------------------------------------------------------

TEST(CountedAccumulatorTest, RebuildMatchesMultiply) {
  BitMatrix m = BitMatrix::Build(6, 6, {{0, 1}, {0, 2}, {2, 2}, {5, 0}});
  BitVector sel = BitVector::FromIndices(6, {0, 2, 5});
  CountedAccumulator acc;
  acc.Rebuild(m, sel);
  BitVector expected(6);
  m.Multiply(sel, &expected);
  EXPECT_EQ(acc.result(), expected);
  EXPECT_EQ(acc.count(2), 2u);  // covered by rows 0 and 2
  EXPECT_EQ(acc.count(1), 1u);
  EXPECT_EQ(acc.count(0), 1u);
}

TEST(CountedAccumulatorTest, RetractClearsExactlyZeroCountColumns) {
  BitMatrix m = BitMatrix::Build(6, 6, {{0, 1}, {0, 2}, {2, 2}, {5, 0}});
  CountedAccumulator acc;
  acc.Rebuild(m, BitVector(6, true));
  // Remove row 0: column 1 loses its only cover, column 2 keeps row 2's.
  EXPECT_EQ(acc.Retract(m, BitVector::FromIndices(6, {0})), 1u);
  EXPECT_FALSE(acc.result().Test(1));
  EXPECT_TRUE(acc.result().Test(2));
  EXPECT_EQ(acc.count(2), 1u);
  // Removing a row with no entries clears nothing.
  EXPECT_EQ(acc.Retract(m, BitVector::FromIndices(6, {3})), 0u);
  // Remove the remaining covers.
  EXPECT_EQ(acc.Retract(m, BitVector::FromIndices(6, {2, 5})), 2u);
  EXPECT_TRUE(acc.result().None());
}

TEST(CountedAccumulatorTest, RandomizedRetractionMatchesRebuild) {
  Rng rng(5150);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t n = 10 + rng.NextBounded(300);
    std::vector<std::pair<uint32_t, uint32_t>> entries;
    const size_t nnz = 1 + rng.NextBounded(4 * n);
    for (size_t i = 0; i < nnz; ++i) {
      entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                           static_cast<uint32_t>(rng.NextBounded(n)));
    }
    BitMatrix m = BitMatrix::Build(n, n, std::move(entries));

    BitVector selected(n, true);
    CountedAccumulator acc;
    acc.Rebuild(m, selected);
    while (selected.Any()) {
      // Retract a random non-empty subset of the current selection.
      BitVector gone(n);
      selected.ForEachSetBit([&](uint32_t r) {
        if (rng.NextBool(0.4)) gone.Set(r);
      });
      if (gone.None()) gone.Set(static_cast<size_t>(selected.FindFirst()));
      selected.AndNotWith(gone);
      size_t before = acc.result().Count();
      size_t cleared = acc.Retract(m, gone);
      EXPECT_EQ(acc.result().Count(), before - cleared);

      CountedAccumulator fresh;
      fresh.Rebuild(m, selected);
      ASSERT_EQ(acc.result(), fresh.result()) << "trial " << trial;
      BitVector product(n);
      m.Multiply(selected, &product);
      ASSERT_EQ(acc.result(), product) << "trial " << trial;
    }
  }
}

TEST(CountedAccumulatorTest, RebuildFromHierarchicalSelector) {
  BitMatrix m = BitMatrix::Build(5000, 5000, {{4999, 1}, {100, 4098}});
  HierarchicalBitVector sel(5000, true);
  CountedAccumulator acc;
  acc.Rebuild(m, sel);
  EXPECT_TRUE(acc.result().Test(1));
  EXPECT_TRUE(acc.result().Test(4098));
  EXPECT_EQ(acc.result().Count(), 2u);
}

}  // namespace
}  // namespace sparqlsim::util
