#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datagen/lubm.h"
#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "graph/ntriples.h"

namespace sparqlsim::graph {
namespace {

void ExpectSameDatabase(const GraphDatabase& a, const GraphDatabase& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumPredicates(), b.NumPredicates());
  ASSERT_EQ(a.NumTriples(), b.NumTriples());
  for (uint32_t node = 0; node < a.NumNodes(); ++node) {
    EXPECT_EQ(a.nodes().Name(node), b.nodes().Name(node));
    EXPECT_EQ(a.IsLiteral(node), b.IsLiteral(node));
  }
  for (uint32_t p = 0; p < a.NumPredicates(); ++p) {
    EXPECT_EQ(a.predicates().Name(p), b.predicates().Name(p));
    EXPECT_EQ(a.PredicateCardinality(p), b.PredicateCardinality(p));
  }
  std::vector<Triple> ta = a.AllTriples();
  std::vector<Triple> tb = b.AllTriples();
  EXPECT_EQ(ta, tb);
}

TEST(BinaryIoTest, MovieRoundTrip) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  ExpectSameDatabase(db, loaded.value());
}

TEST(BinaryIoTest, RandomRoundTrips) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    datagen::RandomGraphConfig config;
    config.num_nodes = 100;
    config.num_edges = 500;
    config.num_labels = 4;
    config.seed = seed;
    GraphDatabase db = datagen::MakeRandomDatabase(config);
    std::stringstream buffer;
    BinaryIo::Save(db, buffer);
    auto loaded = BinaryIo::Load(buffer);
    ASSERT_TRUE(loaded.ok()) << loaded.error_message();
    ExpectSameDatabase(db, loaded.value());
  }
}

TEST(BinaryIoTest, LubmRoundTripPreservesIds) {
  datagen::LubmConfig config;
  config.num_universities = 1;
  GraphDatabase db = datagen::MakeLubmDatabase(config);
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  // Dense first-seen interning preserves ids exactly.
  EXPECT_EQ(*loaded.value().nodes().Lookup("U0/D0"),
            *db.nodes().Lookup("U0/D0"));
  ExpectSameDatabase(db, loaded.value());
}

// Regression for the delete path: WithTriplesRemoved must never compact
// node ids or reorder dictionary interning — even when a node loses its
// last triple — so that delete + re-insert round-trips to *byte-identical*
// serialization. Cache keys and .gdb reproducibility both hang on this.
TEST(BinaryIoTest, DeleteThenRestoreSerializesByteIdentically) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 200;
  config.num_labels = 3;
  config.seed = 9;
  GraphDatabase db = datagen::MakeRandomDatabase(config);
  std::stringstream original;
  BinaryIo::Save(db, original);

  // Remove every triple touching node 0 (orphaning it) plus a spread of
  // others; the universe must survive unchanged.
  std::vector<Triple> all = db.AllTriples();
  std::vector<Triple> removed;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].subject == 0 || all[i].object == 0 || i % 7 == 0) {
      removed.push_back(all[i]);
    }
  }
  ASSERT_FALSE(removed.empty());
  GraphDatabase pruned = db.WithTriplesRemoved(removed);
  EXPECT_EQ(pruned.NumNodes(), db.NumNodes());
  EXPECT_EQ(pruned.NumPredicates(), db.NumPredicates());
  EXPECT_EQ(pruned.NumTriples(), db.NumTriples() - removed.size());
  for (uint32_t node = 0; node < db.NumNodes(); ++node) {
    EXPECT_EQ(pruned.nodes().Name(node), db.nodes().Name(node));
  }

  // The pruned database round-trips through serialization on its own...
  std::stringstream pruned_bytes;
  BinaryIo::Save(pruned, pruned_bytes);
  auto reloaded = BinaryIo::Load(pruned_bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error_message();
  ExpectSameDatabase(pruned, reloaded.value());

  // ...and restoring the removed triples reproduces the original bytes
  // exactly: same intern order, same ids, same slabs content.
  GraphDatabase restored = pruned.WithTriplesAdded(removed);
  std::stringstream restored_bytes;
  BinaryIo::Save(restored, restored_bytes);
  EXPECT_EQ(restored_bytes.str(), original.str());

  // Removing absent triples is a content no-op: generation kept, bytes
  // identical.
  Triple absent{1, 0, 1};
  while (db.Forward(absent.predicate).Test(absent.subject, absent.object)) {
    ++absent.object;  // find a (1, p0, o) edge the graph doesn't have
  }
  GraphDatabase noop = db.WithTriplesRemoved({&absent, 1});
  EXPECT_EQ(noop.generation(), db.generation());
  std::stringstream noop_bytes;
  BinaryIo::Save(noop, noop_bytes);
  EXPECT_EQ(noop_bytes.str(), original.str());
}

TEST(BinaryIoTest, RejectsGarbage) {
  std::stringstream buffer("not a database at all");
  auto loaded = BinaryIo::Load(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("not a sparqlsim"),
            std::string::npos);
}

TEST(BinaryIoTest, RejectsUnknownVersion) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  std::string bytes = buffer.str();
  bytes[7] = '9';  // future format version
  std::stringstream patched(bytes);
  auto loaded = BinaryIo::Load(patched);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("unsupported"), std::string::npos)
      << loaded.error_message();
}

TEST(BinaryIoTest, RejectsCorruptStringLengthWithoutAllocating) {
  // Magic + a varint string length of ~2^62: the loader must fail with a
  // clean Status at the stream's end, not attempt a multi-exabyte resize.
  std::string bytes = "SQSIMDB1";
  bytes += '\x05';  // num_nodes = 5
  bytes += '\x01';  // num_predicates = 1
  for (int i = 0; i < 8; ++i) bytes += '\xff';
  bytes += '\x3f';  // 9-byte varint ~= 4.6e18 as the first name's length
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("truncated"), std::string::npos);
}

TEST(BinaryIoTest, RejectsOversizedHeaderCounts) {
  std::string bytes = "SQSIMDB1";
  for (int i = 0; i < 9; ++i) bytes += '\xff';
  bytes += '\x01';  // num_nodes > 2^32
  bytes += '\x01';  // num_predicates = 1
  std::stringstream in(bytes);
  auto loaded = BinaryIo::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error_message().find("corrupt header"), std::string::npos)
      << loaded.error_message();
}

TEST(BinaryIoTest, RejectsTruncation) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  std::stringstream buffer;
  BinaryIo::Save(db, buffer);
  std::string bytes = buffer.str();
  // Chop the stream at several points; every prefix must fail cleanly.
  for (size_t cut : {size_t{4}, size_t{12}, bytes.size() / 2,
                     bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = BinaryIo::Load(truncated);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  GraphDatabase db = datagen::MakeMovieDatabase();
  const std::string path = "/tmp/sparqlsim_binary_io_test.gdb";
  ASSERT_TRUE(BinaryIo::SaveFile(db, path).ok());
  auto loaded = BinaryIo::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  ExpectSameDatabase(db, loaded.value());
  EXPECT_FALSE(BinaryIo::LoadFile("/nonexistent/x.gdb").ok());
}

TEST(BinaryIoTest, BinaryIsSmallerThanNTriples) {
  datagen::LubmConfig config;
  config.num_universities = 1;
  GraphDatabase db = datagen::MakeLubmDatabase(config);
  std::stringstream binary;
  BinaryIo::Save(db, binary);
  // Rough comparison against the text serialization.
  std::stringstream text;
  NTriples::Write(db, text);
  EXPECT_LT(binary.str().size(), text.str().size());
}

}  // namespace
}  // namespace sparqlsim::graph
