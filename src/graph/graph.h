#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sparqlsim::graph {

/// A labeled directed edge of a pattern graph.
struct LabeledEdge {
  uint32_t from;
  uint32_t label;
  uint32_t to;

  friend bool operator==(const LabeledEdge&, const LabeledEdge&) = default;
};

/// An edge-labeled directed graph G = (V, Sigma, E) with nodes 0..n-1
/// (Sect. 2 of the paper).
///
/// This small edge-list representation is used for *pattern* graphs: the
/// graph representation G(G) of a basic graph pattern, the left-hand side
/// of a dual simulation. Data graphs use the matrix-backed GraphDatabase.
class Graph {
 public:
  Graph() = default;
  /// Creates a graph with nodes 0..num_nodes-1 and no edges.
  explicit Graph(size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Adds a node and returns its id.
  uint32_t AddNode() { return static_cast<uint32_t>(num_nodes_++); }

  /// Adds edge (from, label, to); endpoints must already exist.
  void AddEdge(uint32_t from, uint32_t label, uint32_t to);

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return edges_.size(); }
  /// All edges in insertion order.
  std::span<const LabeledEdge> edges() const { return edges_; }

  /// Largest label id used, plus one (0 for an edgeless graph).
  uint32_t LabelUpperBound() const { return label_bound_; }

  /// True iff every node is reachable from node 0 when edge directions are
  /// ignored. Isolated-node patterns degrade dual simulation guarantees, so
  /// generators assert this.
  bool IsConnected() const;

 private:
  size_t num_nodes_ = 0;
  uint32_t label_bound_ = 0;
  std::vector<LabeledEdge> edges_;
};

}  // namespace sparqlsim::graph
