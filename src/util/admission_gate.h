#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace sparqlsim::util {

/// A counting gate that bounds how many units of work are admitted but not
/// yet finished. This is the backpressure primitive of the query-service
/// layer: producers block in Acquire() once `limit` units are in flight,
/// instead of growing an unbounded queue, and consumers Release() as work
/// completes. WaitIdle() is the matching drain barrier.
///
/// Deliberately not a semaphore initialized to `limit`: the gate also knows
/// when it is *idle* (nothing admitted), which a counting semaphore cannot
/// express without a second primitive.
class AdmissionGate {
 public:
  /// `limit` = max units in flight; 0 is clamped to 1 (a gate that admits
  /// nothing would deadlock its first producer).
  explicit AdmissionGate(size_t limit) : limit_(limit == 0 ? 1 : limit) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Blocks until a slot is free, then takes it.
  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return in_use_ < limit_; });
    ++in_use_;
  }

  /// Takes a slot iff one is free right now.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_use_ >= limit_) return false;
    ++in_use_;
    return true;
  }

  /// Returns a slot taken by Acquire()/TryAcquire().
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_use_;
    }
    // Wake both blocked producers (slot free) and drain waiters (maybe
    // idle); the predicates sort out who proceeds.
    cv_.notify_all();
  }

  /// Blocks until no slot is in use.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return in_use_ == 0; });
  }

  size_t InUse() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_use_;
  }

  size_t limit() const { return limit_; }

 private:
  const size_t limit_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t in_use_ = 0;
};

}  // namespace sparqlsim::util
