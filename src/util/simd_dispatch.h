#pragma once

#include <cstddef>
#include <cstdint>

namespace sparqlsim::util {

/// Runtime-dispatched word-array kernels for the bit-vector hot loops.
///
/// The solver's AND/popcount kernels run over contiguous 64-bit word
/// spans (whole vectors, or the 64-word payload blocks the
/// HierarchicalBitVector summary selects). On x86-64 an AVX2 lane
/// processes four words per step; everywhere else — and whenever the
/// `SPARQLSIM_SIMD=scalar` environment override is set — the scalar loop
/// runs instead. Both implementations are exact and produce bit-identical
/// results by construction (AND and popcount have no reassociation
/// freedom), so the scalar path doubles as the differential oracle the
/// kernel-verification harness compares against; KernelsFor() exposes
/// every table so tests can drive both paths in one process.
///
/// Dispatch resolves once per process (first use) from CPUID plus the
/// environment:
///   SPARQLSIM_SIMD=scalar|off  force the scalar fallback (CI exercises
///                              this leg on AVX2 runners)
///   SPARQLSIM_SIMD=avx2        request AVX2 (scalar if unsupported)
///   unset / auto               use the best supported level
enum class SimdLevel : uint8_t { kScalar = 0, kAvx2 = 1 };

struct WordKernels {
  /// dst[i] &= src[i] for i in [0, n). Returns the OR of the resulting
  /// words (zero iff the span drained) and sets *changed iff any word
  /// changed value.
  uint64_t (*and_words)(uint64_t* dst, const uint64_t* src, size_t n,
                        bool* changed);
  /// Sum of popcounts over words[0, n).
  size_t (*popcount_words)(const uint64_t* words, size_t n);
  const char* name;
};

/// Highest level the CPU supports (ignores the environment override).
SimdLevel DetectedSimdLevel();

/// The level dispatch resolved to: CPU support clamped by SPARQLSIM_SIMD.
/// Cached after the first call.
SimdLevel ActiveSimdLevel();

/// Kernel table for an explicit level; requesting an unsupported level
/// returns the scalar table. Intended for the differential harness.
const WordKernels& KernelsFor(SimdLevel level);

/// Kernel table for ActiveSimdLevel().
const WordKernels& ActiveKernels();

}  // namespace sparqlsim::util
