#include "engine/solution_set.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace sparqlsim::engine {

SolutionSet::SolutionSet(std::vector<std::string> vars)
    : vars_(std::move(vars)) {
  for (size_t i = 0; i < vars_.size(); ++i) {
    index_.emplace(vars_[i], static_cast<int>(i));
  }
}

int SolutionSet::IndexOf(const std::string& var) const {
  auto it = index_.find(var);
  return it == index_.end() ? -1 : it->second;
}

void SolutionSet::AddRow(std::span<const uint32_t> row) {
  assert(row.size() == vars_.size());
  if (vars_.empty()) {
    ++unit_rows_;
    return;
  }
  data_.insert(data_.end(), row.begin(), row.end());
}

void SolutionSet::AddUnboundRow() {
  if (vars_.empty()) {
    ++unit_rows_;
    return;
  }
  data_.insert(data_.end(), vars_.size(), kUnbound);
}

void SolutionSet::SortAndDedupe() {
  if (vars_.empty()) {
    unit_rows_ = unit_rows_ > 0 ? 1 : 0;
    return;
  }
  const size_t w = vars_.size();
  const size_t rows = NumRows();
  std::vector<uint32_t> perm(rows);
  std::iota(perm.begin(), perm.end(), 0);
  auto cmp = [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(
        data_.begin() + a * w, data_.begin() + (a + 1) * w,
        data_.begin() + b * w, data_.begin() + (b + 1) * w);
  };
  auto eq = [&](uint32_t a, uint32_t b) {
    return std::equal(data_.begin() + a * w, data_.begin() + (a + 1) * w,
                      data_.begin() + b * w);
  };
  std::sort(perm.begin(), perm.end(), cmp);
  std::vector<uint32_t> out;
  out.reserve(data_.size());
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0 && eq(perm[i], perm[i - 1])) continue;
    out.insert(out.end(), data_.begin() + perm[i] * w,
               data_.begin() + (perm[i] + 1) * w);
  }
  data_ = std::move(out);
}

std::string SolutionSet::ToString(const graph::GraphDatabase& db,
                                  size_t max_rows) const {
  std::ostringstream out;
  for (const std::string& v : vars_) out << "?" << v << "\t";
  out << "\n";
  size_t rows = std::min(NumRows(), max_rows);
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t value : Row(i)) {
      if (value == kUnbound) {
        out << "--\t";
      } else {
        out << db.nodes().Name(value) << "\t";
      }
    }
    out << "\n";
  }
  if (NumRows() > max_rows) {
    out << "... (" << NumRows() - max_rows << " more rows)\n";
  }
  return out.str();
}

}  // namespace sparqlsim::engine
