#include "util/bitvector.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/hierarchical_bitvector.h"
#include "util/rng.h"

namespace sparqlsim::util {
namespace {

TEST(BitVectorTest, StartsEmpty) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.None());
  EXPECT_FALSE(v.Any());
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector v(70, true);
  EXPECT_EQ(v.Count(), 70u);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(69));
}

TEST(BitVectorTest, SetResetTest) {
  BitVector v(130);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Reset(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, SetAllMasksTail) {
  BitVector v(67);
  v.SetAll();
  EXPECT_EQ(v.Count(), 67u);
}

TEST(BitVectorTest, AndWithReportsChange) {
  BitVector a = BitVector::FromIndices(128, {1, 5, 70});
  BitVector b = BitVector::FromIndices(128, {1, 5, 70, 90});
  EXPECT_FALSE(a.AndWith(b));  // subset: no change
  BitVector c = BitVector::FromIndices(128, {1, 70});
  EXPECT_TRUE(a.AndWith(c));
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_FALSE(a.Test(5));
}

TEST(BitVectorTest, OrWithReportsChange) {
  BitVector a = BitVector::FromIndices(64, {3});
  BitVector b = BitVector::FromIndices(64, {3});
  EXPECT_FALSE(a.OrWith(b));
  BitVector c = BitVector::FromIndices(64, {9});
  EXPECT_TRUE(a.OrWith(c));
  EXPECT_TRUE(a.Test(9));
}

TEST(BitVectorTest, AndNotWith) {
  BitVector a = BitVector::FromIndices(64, {1, 2, 3});
  BitVector b = BitVector::FromIndices(64, {2});
  EXPECT_TRUE(a.AndNotWith(b));
  EXPECT_EQ(a.ToIndexVector(), (std::vector<uint32_t>{1, 3}));
  EXPECT_FALSE(a.AndNotWith(b));
}

TEST(BitVectorTest, IntersectsWith) {
  BitVector a = BitVector::FromIndices(200, {150});
  BitVector b = BitVector::FromIndices(200, {150, 7});
  BitVector c = BitVector::FromIndices(200, {7});
  EXPECT_TRUE(a.IntersectsWith(b));
  EXPECT_FALSE(a.IntersectsWith(c));
}

TEST(BitVectorTest, IsSubsetOf) {
  BitVector a = BitVector::FromIndices(100, {10, 20});
  BitVector b = BitVector::FromIndices(100, {10, 20, 30});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  BitVector empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
}

TEST(BitVectorTest, FindFirstNext) {
  BitVector v = BitVector::FromIndices(300, {5, 64, 299});
  EXPECT_EQ(v.FindFirst(), 5);
  EXPECT_EQ(v.FindNext(5), 64);
  EXPECT_EQ(v.FindNext(64), 299);
  EXPECT_EQ(v.FindNext(299), -1);
  BitVector empty(300);
  EXPECT_EQ(empty.FindFirst(), -1);
}

TEST(BitVectorTest, ForEachSetBitVisitsAscending) {
  std::vector<uint32_t> indices = {0, 63, 64, 127, 128, 200};
  BitVector v = BitVector::FromIndices(256, indices);
  std::vector<uint32_t> seen;
  v.ForEachSetBit([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, indices);
}

TEST(BitVectorTest, ResizeKeepsPrefix) {
  BitVector v = BitVector::FromIndices(64, {10, 63});
  v.Resize(128);
  EXPECT_TRUE(v.Test(10));
  EXPECT_TRUE(v.Test(63));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, ToStringFormat) {
  BitVector v = BitVector::FromIndices(5, {0, 3});
  EXPECT_EQ(v.ToString(), "10010");
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a.Set(3);
  EXPECT_NE(a, b);
}

/// Word-boundary property sweep: every bulk operation must behave at
/// sizes straddling the 64-bit word boundaries (the MaskTail invariant).
class BitVectorBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorBoundary, BulkOpsRespectSize) {
  const size_t n = GetParam();
  Rng rng(n * 7 + 1);
  BitVector a(n), b(n);
  std::vector<bool> ra(n, false), rb(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.5)) {
      a.Set(i);
      ra[i] = true;
    }
    if (rng.NextBool(0.5)) {
      b.Set(i);
      rb[i] = true;
    }
  }

  BitVector all(n, true);
  EXPECT_EQ(all.Count(), n);

  BitVector and_copy = a;
  and_copy.AndWith(b);
  BitVector or_copy = a;
  or_copy.OrWith(b);
  BitVector andnot_copy = a;
  andnot_copy.AndNotWith(b);
  size_t expected_and = 0, expected_or = 0, expected_andnot = 0;
  bool expected_intersects = false, expected_subset = true;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(and_copy.Test(i), ra[i] && rb[i]);
    EXPECT_EQ(or_copy.Test(i), ra[i] || rb[i]);
    EXPECT_EQ(andnot_copy.Test(i), ra[i] && !rb[i]);
    expected_and += (ra[i] && rb[i]) ? 1 : 0;
    expected_or += (ra[i] || rb[i]) ? 1 : 0;
    expected_andnot += (ra[i] && !rb[i]) ? 1 : 0;
    expected_intersects |= (ra[i] && rb[i]);
    expected_subset &= (!ra[i] || rb[i]);
  }
  EXPECT_EQ(and_copy.Count(), expected_and);
  EXPECT_EQ(or_copy.Count(), expected_or);
  EXPECT_EQ(andnot_copy.Count(), expected_andnot);
  EXPECT_EQ(a.IntersectsWith(b), expected_intersects);
  EXPECT_EQ(a.IsSubsetOf(b), expected_subset);

  // SetAll never leaks past the logical size.
  BitVector full(n);
  full.SetAll();
  EXPECT_EQ(full.Count(), n);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitVectorBoundary,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           191, 192, 193, 255, 256, 1000));

TEST(BitVectorTest, RandomizedAgainstReferenceSet) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.NextBounded(500);
    BitVector v(n);
    std::vector<bool> ref(n, false);
    for (int ops = 0; ops < 200; ++ops) {
      size_t i = rng.NextBounded(n);
      if (rng.NextBool(0.5)) {
        v.Set(i);
        ref[i] = true;
      } else {
        v.Reset(i);
        ref[i] = false;
      }
    }
    size_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(v.Test(i), ref[i]);
      expected += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(v.Count(), expected);
  }
}

// ---------------------------------------------------------------------------
// HierarchicalBitVector: the summary level must never change observable
// results, only skip work — every test compares against plain BitVector.
// ---------------------------------------------------------------------------

TEST(HierarchicalBitVectorTest, ConstructSetTestCount) {
  HierarchicalBitVector h(10000);
  EXPECT_EQ(h.size(), 10000u);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_FALSE(h.Any());
  h.Set(0);
  h.Set(4095);   // last bit of block 0
  h.Set(4096);   // first bit of block 1
  h.Set(9999);
  EXPECT_TRUE(h.Test(0));
  EXPECT_TRUE(h.Test(4095));
  EXPECT_TRUE(h.Test(4096));
  EXPECT_TRUE(h.Test(9999));
  EXPECT_FALSE(h.Test(1));
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_TRUE(h.Any());
}

TEST(HierarchicalBitVectorTest, AdoptsBitVectorAndExportsIt) {
  BitVector flat = BitVector::FromIndices(9000, {7, 4100, 8999});
  HierarchicalBitVector h(flat);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.bits(), flat);
  BitVector back = std::move(h).TakeBits();
  EXPECT_EQ(back, flat);
}

TEST(HierarchicalBitVectorTest, SetAllClearAllAndTailInvariant) {
  HierarchicalBitVector h(4100, true);  // spills 4 bits into block 1
  EXPECT_EQ(h.Count(), 4100u);
  // The flat vector's tail invariant must hold so word-wise comparison
  // against a plain all-ones vector agrees.
  EXPECT_EQ(h.bits(), BitVector(4100, true));
  h.ClearAll();
  EXPECT_FALSE(h.Any());
  EXPECT_EQ(h.Count(), 0u);
  h.SetAll();
  EXPECT_EQ(h.Count(), 4100u);
}

TEST(HierarchicalBitVectorTest, AndWithMatchesPlainAndSkipsZeroBlocks) {
  const size_t n = 3 * HierarchicalBitVector::kBitsPerBlock + 77;
  // Only block 1 occupied; blocks 0, 2, 3 are zero and must be skipped.
  HierarchicalBitVector h(n);
  h.Set(HierarchicalBitVector::kBitsPerBlock + 5);
  h.Set(HierarchicalBitVector::kBitsPerBlock + 600);
  BitVector mask(n, true);
  mask.Reset(HierarchicalBitVector::kBitsPerBlock + 5);

  BitVector plain = h.bits();
  bool plain_changed = plain.AndWith(mask);
  EXPECT_TRUE(h.AndWith(mask));
  EXPECT_TRUE(plain_changed);
  EXPECT_EQ(h.bits(), plain);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.blocks_skipped(), 3u);
  EXPECT_EQ(h.TakeBlocksSkipped(), 3u);
  EXPECT_EQ(h.blocks_skipped(), 0u);
}

TEST(HierarchicalBitVectorTest, AndWithHierarchicalDrainsForeignZeroBlocks) {
  const size_t n = 2 * HierarchicalBitVector::kBitsPerBlock + 10;
  HierarchicalBitVector a(n, true);
  HierarchicalBitVector b(n);
  b.Set(3);  // block 0 partially live in b; blocks 1, 2 zero in b
  EXPECT_TRUE(a.AndWith(b));
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(3));
  // Draining must update a's summary: a second AND now skips everything.
  a.TakeBlocksSkipped();
  EXPECT_FALSE(a.AndWith(b));
  EXPECT_EQ(a.blocks_skipped(), 2u);  // the two drained blocks
}

TEST(HierarchicalBitVectorTest, ForEachSetBitAscendingAcrossBlocks) {
  const size_t n = 4 * HierarchicalBitVector::kBitsPerBlock;
  std::vector<uint32_t> indices = {
      0, 63, 64, 4095, 4096,
      static_cast<uint32_t>(3 * HierarchicalBitVector::kBitsPerBlock + 1),
      static_cast<uint32_t>(n - 1)};
  HierarchicalBitVector h{BitVector::FromIndices(n, indices)};
  std::vector<uint32_t> seen;
  h.ForEachSetBit([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, indices);
}

TEST(HierarchicalBitVectorTest, RandomizedDifferentialAgainstBitVector) {
  Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 1 + rng.NextBounded(3 * 4096 + 500);
    BitVector flat(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(trial % 2 == 0 ? 0.3 : 0.005)) flat.Set(i);
    }
    HierarchicalBitVector h(flat);
    // A sequence of shrinking ANDs, mirrored on the plain vector.
    for (int step = 0; step < 4; ++step) {
      BitVector mask(n);
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextBool(0.7)) mask.Set(i);
      }
      bool plain_changed = flat.AndWith(mask);
      EXPECT_EQ(h.AndWith(mask), plain_changed);
      ASSERT_EQ(h.bits(), flat) << "trial " << trial << " step " << step;
      EXPECT_EQ(h.Count(), flat.Count());
      EXPECT_EQ(h.Any(), flat.Any());
      std::vector<uint32_t> seen;
      h.ForEachSetBit([&](uint32_t i) { seen.push_back(i); });
      EXPECT_EQ(seen, flat.ToIndexVector());
    }
  }
}

}  // namespace
}  // namespace sparqlsim::util
