#include "sparql/normalize.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "engine/evaluator.h"
#include "sparql/parser.h"
#include "sparql/printer.h"

namespace sparqlsim::sparql {
namespace {

std::unique_ptr<Pattern> P(const char* text) {
  auto r = Parser::ParsePattern(text);
  EXPECT_TRUE(r.ok()) << r.error_message();
  return std::move(r).value();
}

TEST(NormalizeTest, BgpIsItsOwnNormalForm) {
  auto branches = UnionNormalForm(*P("{ ?x <p> ?y . }"));
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_TRUE(branches[0]->IsBgp());
}

TEST(NormalizeTest, TopLevelUnionSplits) {
  auto branches =
      UnionNormalForm(*P("{ { ?x <p> ?y . } UNION { ?x <q> ?y . } }"));
  EXPECT_EQ(branches.size(), 2u);
  for (const auto& b : branches) EXPECT_TRUE(b->IsUnionFree());
}

TEST(NormalizeTest, JoinDistributesOverUnion) {
  // (A UNION B) AND (C UNION D) -> 4 branches (DNF style, Prop. 3).
  auto branches = UnionNormalForm(*P(
      "{ { { ?x <p> ?y . } UNION { ?x <q> ?y . } } "
      "{ { ?y <r> ?z . } UNION { ?y <s> ?z . } } }"));
  EXPECT_EQ(branches.size(), 4u);
  for (const auto& b : branches) EXPECT_TRUE(b->IsUnionFree());
}

TEST(NormalizeTest, UnionUnderOptionalSplits) {
  auto branches = UnionNormalForm(
      *P("{ ?x <p> ?y . OPTIONAL { { ?y <q> ?z . } UNION { ?y <r> ?z . } } "
         "}"));
  EXPECT_EQ(branches.size(), 2u);
  for (const auto& b : branches) {
    EXPECT_TRUE(b->IsUnionFree());
    EXPECT_EQ(b->kind(), PatternKind::kOptional);
  }
}

TEST(NormalizeTest, NestedUnionsFlatten) {
  auto branches = UnionNormalForm(*P(
      "{ { ?x <p> ?y . } UNION { ?x <q> ?y . } UNION { ?x <r> ?y . } }"));
  EXPECT_EQ(branches.size(), 3u);
}

TEST(NormalizeTest, UnionFreeBranchesCoverOriginalResults) {
  // Exactness on the Join/Union fragment: the union of branch results
  // equals the original result set.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  engine::Evaluator eval(&db);

  auto pattern = P(
      "{ ?d <directed> ?m . { { ?m <awarded> ?a . } UNION "
      "{ ?m <genre> ?a . } } }");
  engine::SolutionSet original = eval.EvaluatePattern(*pattern);

  size_t total = 0;
  for (const auto& branch : UnionNormalForm(*pattern)) {
    total += eval.EvaluatePattern(*branch).NumRows();
  }
  EXPECT_EQ(total, original.NumRows());
}

TEST(MergeBgpsTest, JoinOfBgpsCollapses) {
  auto merged = MergeBgps(P("{ { ?x <p> ?y . } { ?y <q> ?z . } }"));
  ASSERT_TRUE(merged->IsBgp());
  EXPECT_EQ(merged->triples().size(), 2u);
}

TEST(MergeBgpsTest, KeepsOptionalStructure) {
  auto merged = MergeBgps(
      P("{ ?x <p> ?y . OPTIONAL { { ?y <q> ?z . } { ?z <r> ?w . } } }"));
  ASSERT_EQ(merged->kind(), PatternKind::kOptional);
  EXPECT_TRUE(merged->right().IsBgp());
  EXPECT_EQ(merged->right().triples().size(), 2u);
}

TEST(MergeBgpsTest, DeepNesting) {
  auto merged = MergeBgps(
      P("{ { { ?a <p> ?b . } { ?b <q> ?c . } } { ?c <r> ?d . } }"));
  ASSERT_TRUE(merged->IsBgp());
  EXPECT_EQ(merged->triples().size(), 3u);
}

TEST(MandatoryVarsTest, PaperDefinition) {
  // Sect. 4.3: mand(Q1 OPTIONAL Q2) = mand(Q1).
  auto p = P("{ ?a <p> ?b . OPTIONAL { ?b <q> ?c . } }");
  EXPECT_EQ(p->MandatoryVars(), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(p->Vars(), (std::set<std::string>{"a", "b", "c"}));

  // mand(UNION) = intersection of branch mands.
  auto u = P("{ { ?a <p> ?b . } UNION { ?a <q> ?c . } }");
  EXPECT_EQ(u->MandatoryVars(), (std::set<std::string>{"a"}));
}

TEST(CloneTest, DeepCopyIsIndependent) {
  auto p = P("{ ?a <p> ?b . OPTIONAL { ?b <q> ?c . } }");
  auto clone = p->Clone();
  EXPECT_EQ(ToString(*p), ToString(*clone));
  EXPECT_NE(p.get(), clone.get());
  EXPECT_EQ(clone->NumTriples(), 2u);
}

}  // namespace
}  // namespace sparqlsim::sparql
