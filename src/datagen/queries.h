#pragma once

#include <string>
#include <vector>

namespace sparqlsim::datagen {

/// A benchmark query: its paper id (L0, D3, B17, ...) and SPARQL text.
struct NamedQuery {
  std::string id;
  std::string text;
};

/// The L0-L5 analogues for the LUBM-like dataset (the paper relies on
/// Atre's LUBM OPTIONAL queries; the mandatory cores of L0/L1 follow
/// Fig. 6 exactly). All six carry OPTIONAL parts.
std::vector<NamedQuery> LubmQueries();

/// The D0-D5 analogues for the DBpedia-like dataset: OPTIONAL-heavy
/// queries in the style of Atre's DBpedia workload (D1 is empty).
std::vector<NamedQuery> DbpediaQueries();

/// The B0-B19 analogues of the DBpedia SPARQL benchmark BGPs: stars,
/// chains, cycles, constant-bound and empty queries (B4/B5/B15 are empty).
std::vector<NamedQuery> BenchmarkQueries();

}  // namespace sparqlsim::datagen
