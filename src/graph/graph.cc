#include "graph/graph.h"

#include <cassert>

namespace sparqlsim::graph {

void Graph::AddEdge(uint32_t from, uint32_t label, uint32_t to) {
  assert(from < num_nodes_ && to < num_nodes_);
  edges_.push_back({from, label, to});
  if (label >= label_bound_) label_bound_ = label + 1;
}

bool Graph::IsConnected() const {
  if (num_nodes_ == 0) return true;
  std::vector<std::vector<uint32_t>> adjacency(num_nodes_);
  for (const LabeledEdge& e : edges_) {
    adjacency[e.from].push_back(e.to);
    adjacency[e.to].push_back(e.from);
  }
  std::vector<bool> seen(num_nodes_, false);
  std::vector<uint32_t> stack = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t w : adjacency[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == num_nodes_;
}

}  // namespace sparqlsim::graph
