#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sparqlsim::util {

/// A fixed-size vector of bits backed by 64-bit words.
///
/// BitVector is the workhorse of the SOI solver: every pattern variable's
/// candidate set chi(v) (the row of the simulation matrix, Sect. 3.2 of the
/// paper) is one BitVector over the database's node universe. All bulk
/// operations are word-parallel; the predicates used in the fixpoint
/// (IntersectsWith, IsSubsetOf) exit early on the first deciding word.
///
/// Bits beyond size() in the last word are kept at zero as a class
/// invariant, so Count(), Any() and word-wise comparisons never need
/// masking on the read path.
class BitVector {
 public:
  static constexpr size_t kWordBits = 64;

  BitVector() = default;

  /// Creates a vector of `num_bits` bits, all set to `initial`.
  explicit BitVector(size_t num_bits, bool initial = false);

  /// Builds a vector of `num_bits` bits with exactly the given indices set.
  static BitVector FromIndices(size_t num_bits,
                               const std::vector<uint32_t>& indices);

  /// Number of bits.
  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }
  size_t WordCount() const { return words_.size(); }

  /// Grows or shrinks to `num_bits`; new bits are zero.
  void Resize(size_t num_bits);

  void Set(size_t i);
  void Reset(size_t i);
  void Assign(size_t i, bool value);
  bool Test(size_t i) const;

  /// Sets the `len` bits starting at `begin` (word-filled, not per-bit);
  /// the run materialization path of the gap-compressed representation.
  void SetRange(size_t begin, size_t len);

  /// Clears the `len` bits starting at `begin` (word-filled). Together
  /// with SetRange this lets a run-encoded source overwrite a recycled
  /// destination in a single pass, without a full ClearAll first.
  void ClearRange(size_t begin, size_t len);

  /// Sets all bits to one / zero.
  void SetAll();
  void ClearAll();

  /// Number of set bits.
  size_t Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  /// this &= other. Returns true iff any bit changed. The change signal is
  /// what drives re-activation of inequalities in the SOI solver.
  bool AndWith(const BitVector& other);
  /// this |= other. Returns true iff any bit changed.
  bool OrWith(const BitVector& other);
  /// this &= ~other. Returns true iff any bit changed.
  bool AndNotWith(const BitVector& other);

  /// True iff this and other share at least one set bit (early exit).
  /// Implements the non-empty-intersection test of Eq. (4) in the paper.
  bool IntersectsWith(const BitVector& other) const;

  /// True iff every set bit of this is also set in other, i.e. this <= other
  /// in the component-wise order used by the system of inequalities.
  bool IsSubsetOf(const BitVector& other) const;

  /// Index of the first set bit, or -1 if none.
  int64_t FindFirst() const;
  /// Index of the first set bit at position > i, or -1 if none.
  int64_t FindNext(size_t i) const;

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(static_cast<uint32_t>(w * kWordBits + bit));
        word &= word - 1;
      }
    }
  }

  /// Ascending indices of all set bits.
  std::vector<uint32_t> ToIndexVector() const;

  /// Bit string like "10110", index 0 leftmost. Intended for tests/examples.
  std::string ToString() const;

  /// Raw word access for word-parallel kernels. Writers through
  /// mutable_words() must keep the tail invariant: bits at positions
  /// >= size() in the last word stay zero.
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }

 private:
  /// Zeroes the unused high bits of the last word (class invariant).
  void MaskTail();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sparqlsim::util
