#pragma once

#include <cstdint>
#include <functional>
#include <tuple>

namespace sparqlsim::graph {

/// A dictionary-encoded RDF triple (subject, predicate, object).
struct Triple {
  uint32_t subject;
  uint32_t predicate;
  uint32_t object;

  friend bool operator==(const Triple&, const Triple&) = default;
  /// Orders predicate-major to match the database's grouped-by-predicate
  /// storage, so a sorted triple vector streams straight into the
  /// per-predicate matrix builder (GraphDatabase::Restrict relies on this).
  friend auto operator<=>(const Triple& a, const Triple& b) {
    return std::tie(a.predicate, a.subject, a.object) <=>
           std::tie(b.predicate, b.subject, b.object);
  }
};

/// Hash functor for unordered containers of Triple (Fibonacci-style
/// multiply-mix over the three components).
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.subject;
    h = h * 0x9E3779B97F4A7C15ULL + t.predicate;
    h = h * 0x9E3779B97F4A7C15ULL + t.object;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

}  // namespace sparqlsim::graph
