#include "util/bitvector.h"

#include <algorithm>
#include <cassert>

#include "util/simd_dispatch.h"

namespace sparqlsim::util {

namespace {
constexpr size_t WordsFor(size_t num_bits) {
  return (num_bits + BitVector::kWordBits - 1) / BitVector::kWordBits;
}
}  // namespace

BitVector::BitVector(size_t num_bits, bool initial)
    : num_bits_(num_bits),
      words_(WordsFor(num_bits), initial ? ~uint64_t{0} : uint64_t{0}) {
  MaskTail();
}

BitVector BitVector::FromIndices(size_t num_bits,
                                 const std::vector<uint32_t>& indices) {
  BitVector v(num_bits);
  for (uint32_t i : indices) v.Set(i);
  return v;
}

void BitVector::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize(WordsFor(num_bits), 0);
  MaskTail();
}

void BitVector::Set(size_t i) {
  assert(i < num_bits_);
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void BitVector::Reset(size_t i) {
  assert(i < num_bits_);
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

void BitVector::Assign(size_t i, bool value) {
  if (value) {
    Set(i);
  } else {
    Reset(i);
  }
}

bool BitVector::Test(size_t i) const {
  assert(i < num_bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

void BitVector::SetRange(size_t begin, size_t len) {
  if (len == 0) return;
  assert(begin + len <= num_bits_);
  const size_t end = begin + len;  // exclusive
  size_t w = begin / kWordBits;
  const size_t w_last = (end - 1) / kWordBits;
  const uint64_t first_mask = ~uint64_t{0} << (begin % kWordBits);
  const uint64_t last_mask =
      end % kWordBits == 0 ? ~uint64_t{0}
                           : (uint64_t{1} << (end % kWordBits)) - 1;
  if (w == w_last) {
    words_[w] |= first_mask & last_mask;
    return;
  }
  words_[w] |= first_mask;
  for (++w; w < w_last; ++w) words_[w] = ~uint64_t{0};
  words_[w_last] |= last_mask;
}

void BitVector::ClearRange(size_t begin, size_t len) {
  if (len == 0) return;
  assert(begin + len <= num_bits_);
  const size_t end = begin + len;  // exclusive
  size_t w = begin / kWordBits;
  const size_t w_last = (end - 1) / kWordBits;
  const uint64_t first_mask = ~uint64_t{0} << (begin % kWordBits);
  const uint64_t last_mask =
      end % kWordBits == 0 ? ~uint64_t{0}
                           : (uint64_t{1} << (end % kWordBits)) - 1;
  if (w == w_last) {
    words_[w] &= ~(first_mask & last_mask);
    return;
  }
  words_[w] &= ~first_mask;
  for (++w; w < w_last; ++w) words_[w] = 0;
  words_[w_last] &= ~last_mask;
}

void BitVector::SetAll() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  MaskTail();
}

void BitVector::ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

size_t BitVector::Count() const {
  return ActiveKernels().popcount_words(words_.data(), words_.size());
}

bool BitVector::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool BitVector::AndWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  bool changed = false;
  ActiveKernels().and_words(words_.data(), other.words_.data(), words_.size(),
                            &changed);
  return changed;
}

bool BitVector::OrWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  bool changed = false;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t updated = words_[i] | other.words_[i];
    changed |= (updated != words_[i]);
    words_[i] = updated;
  }
  return changed;
}

bool BitVector::AndNotWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  bool changed = false;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t updated = words_[i] & ~other.words_[i];
    changed |= (updated != words_[i]);
    words_[i] = updated;
  }
  return changed;
}

bool BitVector::IntersectsWith(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool BitVector::IsSubsetOf(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

int64_t BitVector::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int64_t>(w * kWordBits +
                                  static_cast<size_t>(__builtin_ctzll(words_[w])));
    }
  }
  return -1;
}

int64_t BitVector::FindNext(size_t i) const {
  size_t next = i + 1;
  if (next >= num_bits_) return -1;
  size_t w = next / kWordBits;
  uint64_t word = words_[w] >> (next % kWordBits);
  if (word != 0) {
    return static_cast<int64_t>(next + static_cast<size_t>(__builtin_ctzll(word)));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int64_t>(w * kWordBits +
                                  static_cast<size_t>(__builtin_ctzll(words_[w])));
    }
  }
  return -1;
}

std::vector<uint32_t> BitVector::ToIndexVector() const {
  std::vector<uint32_t> indices;
  indices.reserve(Count());
  ForEachSetBit([&](uint32_t i) { indices.push_back(i); });
  return indices;
}

std::string BitVector::ToString() const {
  std::string out(num_bits_, '0');
  ForEachSetBit([&](uint32_t i) { out[i] = '1'; });
  return out;
}

void BitVector::MaskTail() {
  size_t tail = num_bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace sparqlsim::util
