#include "util/simd_dispatch.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__amd64__)
#define SPARQLSIM_X86_64 1
#include <immintrin.h>
#endif

namespace sparqlsim::util {

namespace {

uint64_t AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n,
                        bool* changed) {
  uint64_t live = 0;
  uint64_t diff = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t updated = dst[i] & src[i];
    diff |= updated ^ dst[i];
    dst[i] = updated;
    live |= updated;
  }
  *changed = diff != 0;
  return live;
}

size_t PopcountWordsScalar(const uint64_t* words, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return count;
}

constexpr WordKernels kScalarKernels = {AndWordsScalar, PopcountWordsScalar,
                                        "scalar"};

#if defined(SPARQLSIM_X86_64)

__attribute__((target("avx2"))) uint64_t AndWordsAvx2(uint64_t* dst,
                                                      const uint64_t* src,
                                                      size_t n,
                                                      bool* changed) {
  __m256i live = _mm256_setzero_si256();
  __m256i diff = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i updated = _mm256_and_si256(d, s);
    diff = _mm256_or_si256(diff, _mm256_xor_si256(updated, d));
    live = _mm256_or_si256(live, updated);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), updated);
  }
  alignas(32) uint64_t live_lanes[4];
  alignas(32) uint64_t diff_lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(live_lanes), live);
  _mm256_store_si256(reinterpret_cast<__m256i*>(diff_lanes), diff);
  uint64_t live_or =
      live_lanes[0] | live_lanes[1] | live_lanes[2] | live_lanes[3];
  uint64_t diff_or =
      diff_lanes[0] | diff_lanes[1] | diff_lanes[2] | diff_lanes[3];
  for (; i < n; ++i) {
    const uint64_t updated = dst[i] & src[i];
    diff_or |= updated ^ dst[i];
    dst[i] = updated;
    live_or |= updated;
  }
  *changed = diff_or != 0;
  return live_or;
}

/// Mula's vectorized popcount: per-byte nibble lookup via vpshufb, summed
/// horizontally with vpsadbw into 64-bit lanes.
__attribute__((target("avx2"))) size_t PopcountWordsAvx2(const uint64_t* words,
                                                         size_t n) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                          _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t count =
      static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return count;
}

constexpr WordKernels kAvx2Kernels = {AndWordsAvx2, PopcountWordsAvx2, "avx2"};

#endif  // SPARQLSIM_X86_64

SimdLevel ResolveActiveLevel() {
  SimdLevel level = DetectedSimdLevel();
  const char* env = std::getenv("SPARQLSIM_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "0") == 0) {
      level = SimdLevel::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      // Request, not demand: unsupported hardware still gets scalar.
      if (DetectedSimdLevel() != SimdLevel::kAvx2) level = SimdLevel::kScalar;
    }
    // "auto" or anything unrecognized keeps the detected level.
  }
  return level;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
#if defined(SPARQLSIM_X86_64)
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                        : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ResolveActiveLevel();
  return level;
}

const WordKernels& KernelsFor(SimdLevel level) {
#if defined(SPARQLSIM_X86_64)
  if (level == SimdLevel::kAvx2 && DetectedSimdLevel() == SimdLevel::kAvx2) {
    return kAvx2Kernels;
  }
#else
  (void)level;
#endif
  return kScalarKernels;
}

const WordKernels& ActiveKernels() {
  static const WordKernels& kernels = KernelsFor(ActiveSimdLevel());
  return kernels;
}

}  // namespace sparqlsim::util
