#include "engine/explain.h"

#include <sstream>

#include "sparql/normalize.h"

namespace sparqlsim::engine {

namespace {

void Indent(std::ostringstream* out, int depth) {
  for (int i = 0; i < depth; ++i) *out << "  ";
}

void ExplainNode(const sparql::Pattern& node, const graph::GraphDatabase& db,
                 const Evaluator& evaluator, int depth,
                 std::ostringstream* out) {
  switch (node.kind()) {
    case sparql::PatternKind::kBgp: {
      Indent(out, depth);
      *out << "BGP (" << node.triples().size() << " patterns)\n";
      std::vector<size_t> plan = evaluator.PlanBgp(node.triples());
      for (size_t step = 0; step < plan.size(); ++step) {
        const sparql::TriplePattern& t = node.triples()[plan[step]];
        Indent(out, depth + 1);
        *out << step + 1 << ". " << t.ToString();
        auto p = db.predicates().Lookup(t.predicate.text());
        if (p) {
          *out << "   [card=" << db.PredicateCardinality(*p)
               << " subj=" << db.DistinctSubjects(*p)
               << " obj=" << db.DistinctObjects(*p) << "]";
        } else {
          *out << "   [absent predicate -> empty]";
        }
        *out << "\n";
      }
      break;
    }
    case sparql::PatternKind::kJoin:
      Indent(out, depth);
      *out << "JOIN\n";
      ExplainNode(node.left(), db, evaluator, depth + 1, out);
      ExplainNode(node.right(), db, evaluator, depth + 1, out);
      break;
    case sparql::PatternKind::kOptional:
      Indent(out, depth);
      *out << "LEFT OUTER JOIN (OPTIONAL)\n";
      ExplainNode(node.left(), db, evaluator, depth + 1, out);
      ExplainNode(node.right(), db, evaluator, depth + 1, out);
      break;
    case sparql::PatternKind::kUnion:
      Indent(out, depth);
      *out << "UNION\n";
      ExplainNode(node.left(), db, evaluator, depth + 1, out);
      ExplainNode(node.right(), db, evaluator, depth + 1, out);
      break;
  }
}

}  // namespace

std::string ExplainQuery(const sparql::Query& query,
                         const graph::GraphDatabase& db,
                         const EvaluatorOptions& options) {
  Evaluator evaluator(&db, options);
  std::ostringstream out;
  out << "policy: ";
  switch (options.policy) {
    case JoinOrderPolicy::kRdfoxLike:
      out << "rdfox-like (greedy dynamic)\n";
      break;
    case JoinOrderPolicy::kVirtuosoLike:
      out << "virtuoso-like (static statistics)\n";
      break;
    case JoinOrderPolicy::kAsWritten:
      out << "as-written\n";
      break;
  }
  if (!query.projection.empty()) {
    out << "project:";
    for (const std::string& v : query.projection) out << " ?" << v;
    out << (query.distinct ? " (distinct)" : "") << "\n";
  }
  std::unique_ptr<sparql::Pattern> merged =
      sparql::MergeBgps(query.where->Clone());
  ExplainNode(*merged, db, evaluator, 0, &out);
  return out.str();
}

}  // namespace sparqlsim::engine
