#include "sparql/ast.h"

#include <cassert>
#include <map>

namespace sparqlsim::sparql {

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return "?" + text_;
    case Kind::kIri:
      return "<" + text_ + ">";
    case Kind::kLiteral:
      return "\"" + text_ + "\"";
  }
  return {};
}

std::string TriplePattern::ToString() const {
  return subject.ToString() + " " + predicate.ToString() + " " +
         object.ToString() + " .";
}

std::unique_ptr<Pattern> Pattern::Bgp(std::vector<TriplePattern> triples) {
  auto p = std::unique_ptr<Pattern>(new Pattern(PatternKind::kBgp));
  p->triples_ = std::move(triples);
  return p;
}

std::unique_ptr<Pattern> Pattern::Join(std::unique_ptr<Pattern> left,
                                       std::unique_ptr<Pattern> right) {
  auto p = std::unique_ptr<Pattern>(new Pattern(PatternKind::kJoin));
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

std::unique_ptr<Pattern> Pattern::Optional(std::unique_ptr<Pattern> left,
                                           std::unique_ptr<Pattern> right) {
  auto p = std::unique_ptr<Pattern>(new Pattern(PatternKind::kOptional));
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

std::unique_ptr<Pattern> Pattern::Union(std::unique_ptr<Pattern> left,
                                        std::unique_ptr<Pattern> right) {
  auto p = std::unique_ptr<Pattern>(new Pattern(PatternKind::kUnion));
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

void Pattern::CollectVars(std::set<std::string>* out) const {
  if (kind_ == PatternKind::kBgp) {
    for (const TriplePattern& t : triples_) {
      if (t.subject.IsVariable()) out->insert(t.subject.text());
      if (t.object.IsVariable()) out->insert(t.object.text());
    }
    return;
  }
  left_->CollectVars(out);
  right_->CollectVars(out);
}

std::set<std::string> Pattern::Vars() const {
  std::set<std::string> vars;
  CollectVars(&vars);
  return vars;
}

std::set<std::string> Pattern::MandatoryVars() const {
  switch (kind_) {
    case PatternKind::kBgp:
      return Vars();
    case PatternKind::kJoin: {
      std::set<std::string> vars = left_->MandatoryVars();
      std::set<std::string> right = right_->MandatoryVars();
      vars.insert(right.begin(), right.end());
      return vars;
    }
    case PatternKind::kOptional:
      return left_->MandatoryVars();
    case PatternKind::kUnion: {
      std::set<std::string> left = left_->MandatoryVars();
      std::set<std::string> right = right_->MandatoryVars();
      std::set<std::string> both;
      for (const std::string& v : left) {
        if (right.count(v)) both.insert(v);
      }
      return both;
    }
  }
  return {};
}

bool Pattern::IsUnionFree() const {
  if (kind_ == PatternKind::kUnion) return false;
  if (kind_ == PatternKind::kBgp) return true;
  return left_->IsUnionFree() && right_->IsUnionFree();
}

size_t Pattern::NumTriples() const {
  if (kind_ == PatternKind::kBgp) return triples_.size();
  return left_->NumTriples() + right_->NumTriples();
}

std::unique_ptr<Pattern> Pattern::Clone() const {
  if (kind_ == PatternKind::kBgp) return Bgp(triples_);
  auto p = std::unique_ptr<Pattern>(new Pattern(kind_));
  p->left_ = left_->Clone();
  p->right_ = right_->Clone();
  return p;
}

namespace {

/// Walks the tree; for each OPTIONAL node checks the well-designedness
/// condition against the set of variables occurring outside that node.
bool CheckWellDesigned(const Pattern& node, const Pattern& root) {
  if (node.kind() == PatternKind::kBgp) return true;
  if (node.kind() == PatternKind::kOptional) {
    // Count occurrences: a variable of the optional right-hand side that
    // appears anywhere in the tree outside this OPTIONAL node must appear
    // in the left-hand side.
    std::set<std::string> inside = node.right().Vars();
    std::set<std::string> left = node.left().Vars();

    // Collect variables occurring outside `node`.
    std::set<std::string> outside;
    std::vector<const Pattern*> stack = {&root};
    while (!stack.empty()) {
      const Pattern* p = stack.back();
      stack.pop_back();
      if (p == &node) continue;  // skip this subtree entirely
      if (p->kind() == PatternKind::kBgp) {
        for (const TriplePattern& t : p->triples()) {
          if (t.subject.IsVariable()) outside.insert(t.subject.text());
          if (t.object.IsVariable()) outside.insert(t.object.text());
        }
      } else {
        stack.push_back(&p->left());
        stack.push_back(&p->right());
      }
    }
    for (const std::string& v : inside) {
      if (outside.count(v) && !left.count(v)) return false;
    }
  }
  return CheckWellDesigned(node.left(), root) &&
         CheckWellDesigned(node.right(), root);
}

}  // namespace

bool IsWellDesigned(const Pattern& root) {
  if (root.kind() == PatternKind::kBgp) return true;
  return CheckWellDesigned(root, root);
}

graph::Graph BgpToGraph(const std::vector<TriplePattern>& bgp,
                        std::vector<Term>* node_terms,
                        std::vector<std::string>* label_names) {
  node_terms->clear();
  label_names->clear();
  graph::Graph g;
  std::map<std::pair<int, std::string>, uint32_t> node_ids;
  std::map<std::string, uint32_t> label_ids;

  auto intern_node = [&](const Term& term) {
    auto key = std::make_pair(static_cast<int>(term.kind()), term.text());
    auto it = node_ids.find(key);
    if (it != node_ids.end()) return it->second;
    uint32_t id = g.AddNode();
    node_ids.emplace(key, id);
    node_terms->push_back(term);
    return id;
  };
  auto intern_label = [&](const std::string& name) {
    auto it = label_ids.find(name);
    if (it != label_ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(label_names->size());
    label_ids.emplace(name, id);
    label_names->push_back(name);
    return id;
  };

  for (const TriplePattern& t : bgp) {
    assert(t.predicate.kind() == Term::Kind::kIri);
    uint32_t s = intern_node(t.subject);
    uint32_t o = intern_node(t.object);
    g.AddEdge(s, intern_label(t.predicate.text()), o);
  }
  return g;
}

}  // namespace sparqlsim::sparql
