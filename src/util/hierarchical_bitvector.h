#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitvector.h"

namespace sparqlsim::util {

/// A BitVector with one extra summary level: one bit per block of 64
/// words (4096 payload bits), set iff the block contains any set bit.
///
/// Candidate sets chi(v) shrink monotonically during the SOI fixpoint
/// (Sect. 3.2 of the paper), so by the late rounds a full-universe vector
/// is mostly zero words. The summary lets the bulk kernels — AndWith,
/// Count, ForEachSetBit, and the boolean product through
/// BitMatrix::Multiply — skip whole zero blocks instead of word-scanning
/// dead memory, turning their cost from O(universe/64) into
/// O(live blocks). On a 1M-node universe that is 245 summary-guided
/// blocks instead of 15625 words.
///
/// Invariant: summary bit b is set *iff* block b has a nonzero word
/// (exact, not conservative), and the underlying BitVector keeps its own
/// tail invariant (bits at positions >= size() stay zero). The mutator
/// set is deliberately minimal — Set / SetAll / ClearAll / AndWith —
/// which is everything the solver's monotone-shrink loop needs; there is
/// no single-bit Reset, whose summary maintenance would need a block
/// rescan.
///
/// `blocks_skipped()` counts the zero blocks the AndWith kernels skipped.
/// Only AndWith counts (the solver calls it single-threaded, in the
/// init and merge phases); the const readers stay counter-free so they
/// can be shared by concurrent evaluation tasks without a data race.
class HierarchicalBitVector {
 public:
  static constexpr size_t kWordsPerBlock = 64;
  static constexpr size_t kBitsPerBlock =
      kWordsPerBlock * BitVector::kWordBits;

  HierarchicalBitVector() = default;

  /// A vector of `num_bits` bits, all set to `initial`.
  explicit HierarchicalBitVector(size_t num_bits, bool initial = false);

  /// Adopts an existing BitVector (moved in) and builds its summary.
  explicit HierarchicalBitVector(BitVector bits);

  size_t size() const { return bits_.size(); }

  /// The underlying flat vector, for kernels that take a plain BitVector
  /// (copying a mask, RowIntersects, AndNotWith deltas).
  const BitVector& bits() const { return bits_; }

  /// Moves the flat vector out (the summary is discarded). Used to export
  /// the solved candidate sets into a Solution without copying.
  BitVector TakeBits() && { return std::move(bits_); }

  void Set(size_t i);
  bool Test(size_t i) const { return bits_.Test(i); }
  void SetAll();
  void ClearAll();

  /// Number of set bits; zero blocks are skipped via the summary.
  size_t Count() const;
  /// True iff any bit is set — scans only the summary words.
  bool Any() const;

  /// this &= other, skipping blocks that are already zero on this side
  /// and draining blocks that are zero on the other side (the
  /// hierarchical overload knows without reading a word of payload).
  /// Returns true iff any bit changed.
  bool AndWith(const BitVector& other);
  bool AndWith(const HierarchicalBitVector& other);

  /// Calls fn(index) for every set bit in ascending order, skipping zero
  /// blocks via the summary. Safe for concurrent readers (const, no
  /// counter updates).
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    const uint64_t* words = bits_.words();
    const size_t word_count = bits_.WordCount();
    for (size_t sw = 0; sw < summary_.size(); ++sw) {
      uint64_t sword = summary_[sw];
      while (sword != 0) {
        const size_t block =
            sw * 64 + static_cast<size_t>(__builtin_ctzll(sword));
        sword &= sword - 1;
        const size_t w_end =
            std::min((block + 1) * kWordsPerBlock, word_count);
        for (size_t w = block * kWordsPerBlock; w < w_end; ++w) {
          uint64_t word = words[w];
          while (word != 0) {
            const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
            fn(static_cast<uint32_t>(w * BitVector::kWordBits + bit));
            word &= word - 1;
          }
        }
      }
    }
  }

  /// Zero blocks skipped by AndWith so far (see class comment).
  uint64_t blocks_skipped() const { return blocks_skipped_; }
  /// Returns and resets the skip counter (stat harvesting at solve end).
  uint64_t TakeBlocksSkipped() {
    uint64_t taken = blocks_skipped_;
    blocks_skipped_ = 0;
    return taken;
  }

 private:
  size_t NumBlocks() const {
    return (bits_.WordCount() + kWordsPerBlock - 1) / kWordsPerBlock;
  }
  /// Recomputes the summary from the payload (ctor / SetAll).
  void RebuildSummary();

  BitVector bits_;
  std::vector<uint64_t> summary_;  // bit b: block b has a nonzero word
  uint64_t blocks_skipped_ = 0;
};

}  // namespace sparqlsim::util
