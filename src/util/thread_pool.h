#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sparqlsim::util {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// This is the execution substrate of the SimEngine: one pool is shared by
/// the per-round parallel inequality evaluation of the SOI solver and by the
/// branch batching of the pruning pipeline. There is deliberately no work
/// stealing and no priority machinery — SOI rounds produce coarse,
/// similar-sized tasks (one bit-vector kernel per inequality), so a single
/// locked deque is contention-free at the scales that matter and keeps the
/// implementation auditable.
///
/// Tasks must not throw; an escaping exception terminates the process.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Resolves the `num_threads = 0 means hardware` convention used by
  /// SolverOptions and the CLI.
  static size_t ResolveThreadCount(size_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Executes fn(i) for every i in [0, n), distributing iterations over the
/// pool. Blocks until all n calls completed.
///
/// Properties the SOI solver relies on:
///  * The *calling thread participates*: it claims iterations from the same
///    shared counter as the workers. This makes nesting deadlock-free — a
///    pool task may itself call ParallelFor on the same pool (the pruner's
///    branch tasks do exactly that for their fixpoint rounds) because the
///    nested call makes progress even if every helper task sits behind
///    blocked queue entries.
///  * Iterations are claimed dynamically, so the *assignment* of i to
///    threads is nondeterministic; callers must write results into
///    per-iteration slots and merge them on the calling thread afterwards
///    to keep outcomes deterministic.
///
/// With a null pool (or n <= 1) the loop runs inline on the caller.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace sparqlsim::util
