#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/rng.h"

namespace sparqlsim::datagen {

/// Parameters for a uniformly random edge-labeled directed multigraph.
struct RandomGraphConfig {
  size_t num_nodes = 50;
  size_t num_edges = 150;
  size_t num_labels = 3;
  uint64_t seed = 1;
};

/// Generates a random labeled data graph as a GraphDatabase (nodes named
/// n0..n{k-1}, predicates p0..p{l-1}). Property tests sweep seeds/sizes.
graph::GraphDatabase MakeRandomDatabase(const RandomGraphConfig& config);

/// Generates a random *connected* pattern graph: a random (undirected-
/// sense) spanning tree plus extra edges, labels uniform in
/// [0, num_labels). Suitable as the left-hand side of a dual simulation
/// against a database built with the same label count.
graph::Graph MakeRandomPattern(size_t num_nodes, size_t num_extra_edges,
                               size_t num_labels, uint64_t seed);

}  // namespace sparqlsim::datagen
