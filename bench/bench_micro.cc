// Micro-benchmarks (google-benchmark) of the bit kernel that carries the
// SOI solver: dense bit-vector ops, sparse boolean vector-matrix products
// in both evaluation strategies, gap-codec round trips, and an end-to-end
// solve of the paper's (X1) worked example.

#include <benchmark/benchmark.h>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/dual_simulation.h"
#include "sim/soi.h"
#include "util/bitmatrix.h"
#include "util/bitvector.h"
#include "util/gap_codec.h"
#include "util/rng.h"

namespace sparqlsim {
namespace {

util::BitVector RandomVector(size_t n, double density, uint64_t seed) {
  util::Rng rng(seed);
  util::BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(density)) v.Set(i);
  }
  return v;
}

util::BitMatrix RandomMatrix(size_t n, size_t nnz, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  entries.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                         static_cast<uint32_t>(rng.NextBounded(n)));
  }
  return util::BitMatrix::Build(n, n, std::move(entries));
}

void BM_BitVectorAnd(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::BitVector a = RandomVector(n, 0.5, 1);
  util::BitVector b = RandomVector(n, 0.5, 2);
  for (auto _ : state) {
    util::BitVector copy = a;
    benchmark::DoNotOptimize(copy.AndWith(b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n / 8);
}
BENCHMARK(BM_BitVectorAnd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitVectorCount(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::BitVector a = RandomVector(n, 0.3, 3);
  for (auto _ : state) benchmark::DoNotOptimize(a.Count());
}
BENCHMARK(BM_BitVectorCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitVectorIntersects(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  // Worst case: disjoint vectors force a full scan.
  util::BitVector a(n), b(n);
  for (size_t i = 0; i < n; i += 2) a.Set(i);
  for (size_t i = 1; i < n; i += 2) b.Set(i);
  for (auto _ : state) benchmark::DoNotOptimize(a.IntersectsWith(b));
}
BENCHMARK(BM_BitVectorIntersects)->Arg(1 << 12)->Arg(1 << 20);

void BM_MatrixMultiplyRowWise(benchmark::State& state) {
  size_t n = 1 << 16;
  size_t nnz = static_cast<size_t>(state.range(0));
  util::BitMatrix m = RandomMatrix(n, nnz, 4);
  util::BitVector x = RandomVector(n, 0.1, 5);
  util::BitVector out(n);
  for (auto _ : state) {
    m.Multiply(x, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nnz);
}
BENCHMARK(BM_MatrixMultiplyRowWise)->Arg(1 << 14)->Arg(1 << 18);

void BM_MatrixColumnIntersect(benchmark::State& state) {
  size_t n = 1 << 16;
  util::BitMatrix m = RandomMatrix(n, 1 << 18, 6);
  util::BitVector y = RandomVector(n, 0.05, 7);
  auto rows = m.NonEmptyRows();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.RowIntersects(rows[i % rows.size()], y));
    ++i;
  }
}
BENCHMARK(BM_MatrixColumnIntersect);

void BM_GapCodecRoundTrip(benchmark::State& state) {
  size_t n = 1 << 16;
  util::BitVector v = RandomVector(n, 0.01, 8);
  for (auto _ : state) {
    auto encoded = util::GapCodec::Encode(v);
    benchmark::DoNotOptimize(util::GapCodec::Decode(encoded, n));
  }
}
BENCHMARK(BM_GapCodecRoundTrip);

void BM_SolveMovieX1(benchmark::State& state) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  graph::Graph x1(3);
  x1.AddEdge(0, *db.predicates().Lookup("directed"), 1);
  x1.AddEdge(0, *db.predicates().Lookup("worked_with"), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::LargestDualSimulation(x1, db));
  }
}
BENCHMARK(BM_SolveMovieX1);

void BM_SolveRandomPattern(benchmark::State& state) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 20000;
  config.num_edges = 100000;
  config.num_labels = 4;
  config.seed = 11;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(5, 2, 4, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::LargestDualSimulation(pattern, db));
  }
}
BENCHMARK(BM_SolveRandomPattern);

}  // namespace
}  // namespace sparqlsim

BENCHMARK_MAIN();
