#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sparql/ast.h"

namespace sparqlsim::sparql {

/// Union normal form (Prop. 3 of the paper / Prop. 3.8 of Perez et al.):
/// rewrites a pattern into a list of union-free patterns whose combined
/// result set covers the original.
///
/// Distribution rules: UNION branches are flattened; Join distributes over
/// UNION on both sides (exact); OPTIONAL distributes over UNION on the left
/// side (exact — left outer join distributes over union of left inputs) and
/// on the right side (a sound over-approximation: every match of
/// Q1 OPTIONAL (A UNION B) is a match of Q1 OPTIONAL A or of Q1 OPTIONAL B,
/// though the converse may fail). The over-approximation is precisely what
/// the dual-simulation pruning path needs — soundness in the sense of
/// Def. 3 is preserved. The exact evaluation engine never uses this
/// normalization; it evaluates UNION nodes directly.
std::vector<std::unique_ptr<Pattern>> UnionNormalForm(const Pattern& pattern);

/// Bottom-up algebraic simplification: collapses Join(BGP, BGP) into a
/// single merged BGP (their SPARQL semantics coincide), recursively. This
/// gives the evaluation engine maximal freedom for join ordering within
/// conjunctive blocks.
std::unique_ptr<Pattern> MergeBgps(std::unique_ptr<Pattern> pattern);

/// Canonical cache key of a pattern: a deterministic serialization that is
/// invariant under the order of triple patterns inside each BGP (triples are
/// sorted by kind-tagged term text before printing). Two patterns with equal
/// keys pose the same solving problem against the same database — but their
/// SOIs may number variables differently (construction follows triple
/// appearance order), so cache consumers must reuse the cached SOI
/// *instance* together with anything derived from it (sim::SimEngine pairs
/// the cached SOI with its cached solution for exactly this reason).
///
/// This is a syntactic canonical form, not a graph-isomorphism one: queries
/// that differ only in variable *names* hash to different keys. That is the
/// right trade-off for the repeated-workload case the cache targets (the
/// same query text arriving again), and it errs on the side of a miss, never
/// a wrong hit.
std::string CanonicalPatternKey(const Pattern& pattern);

}  // namespace sparqlsim::sparql
