#include "sim/sim_engine.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

#include "sparql/normalize.h"
#include "util/stopwatch.h"

namespace sparqlsim::sim {

SimEngine::SimEngine(const graph::GraphDatabase* db, SolverOptions options,
                     std::shared_ptr<SoiCache> cache,
                     std::shared_ptr<ScratchPool> scratch_pool)
    : db_(db),
      options_(options),
      cache_(std::move(cache)),
      scratch_pool_(std::move(scratch_pool)) {
  if (options_.ResolvedThreads() > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.ResolvedThreads());
  }
  if (cache_ == nullptr && (options_.cache_sois || options_.cache_solutions)) {
    // A private cache serves exactly one database, so stale generations can
    // never be read again; generation GC keeps them from pinning memory.
    cache_ = std::make_shared<SoiCache>(
        SoiCache::Options{options_.cache_capacity, /*generation_gc=*/true});
  }
  if (scratch_pool_ == nullptr && options_.EffectiveReuseScratch()) {
    scratch_pool_ = std::make_shared<ScratchPool>();
  }
}

Solution SimEngine::Solve(const Soi& soi,
                          const std::vector<util::BitVector>* initial,
                          const SolveControl* control) const {
  if (scratch_pool_ == nullptr) {
    return SolveSoi(soi, *db_, options_, initial, pool_.get(), control);
  }
  // Checkout spans the solve only; an exception drops the scratch rather
  // than returning it, which is safe (the pool just mints a fresh one).
  std::unique_ptr<SolveScratch> scratch = scratch_pool_->Acquire();
  Solution solved = SolveSoiWarm(soi, *db_, options_, initial, pool_.get(),
                                 control, /*warm=*/nullptr, scratch.get());
  scratch_pool_->Record(solved.stats);
  scratch_pool_->Release(std::move(scratch));
  return solved;
}

SimEngine::BranchOutcome SimEngine::ProcessBranch(
    const sparql::Pattern& branch, bool extract_triples,
    const SolveControl* control) const {
  BranchOutcome out;
  const uint64_t generation = db_->generation();
  const bool cache_sois = cache_ != nullptr && options_.cache_sois;
  // The solution layer rides on the SOI layer: canonically-equal patterns
  // may number their SOI variables differently (construction follows triple
  // order, the key does not), so a cached Solution is only meaningful
  // against the cached SOI instance it was solved on — never against a
  // freshly built one. SoiCache enforces the pairing itself (solution
  // lookups carry the SOI instance), but without the SOI layer there is no
  // instance to pair against. Truncated runs (max_rounds != 0) are not the
  // canonical fixpoint and also bypass the layer.
  const bool cache_solutions = cache_sois && options_.cache_solutions &&
                               options_.max_rounds == 0;

  std::string key;
  if (cache_sois || cache_solutions) {
    key = sparql::CanonicalPatternKey(branch);
  }

  if (cache_sois) {
    out.soi = cache_->FindSoi(generation, key);
    if (out.soi == nullptr) {
      out.soi = cache_->InsertSoi(generation, key,
                                  BuildSoiFromPattern(branch, *db_));
    }
  } else {
    out.soi =
        std::make_shared<const Soi>(BuildSoiFromPattern(branch, *db_));
  }

  if (cache_solutions) {
    out.solution = cache_->FindSolution(generation, key, out.soi.get());
    out.solution_from_cache = out.solution != nullptr;
  }
  if (out.solution == nullptr) {
    Solution solved = Solve(*out.soi, /*initial=*/nullptr, control);
    // A truncated solve (deadline/cancel) is a sound over-approximation,
    // not the fixpoint — serve it to this caller but never cache it.
    if (cache_solutions && !solved.truncated) {
      out.solution = cache_->InsertSolution(generation, key, out.soi.get(),
                                            std::move(solved));
    } else {
      out.solution = std::make_shared<const Solution>(std::move(solved));
    }
  }

  if (extract_triples) {
    // Triple extraction (Sect. 5): a data triple survives iff some pattern
    // edge (v, a, w) admits it with subject in chi(v) and object in chi(w).
    const Soi& soi = *out.soi;
    const Solution& solution = *out.solution;
    for (const Soi::Edge& e : soi.edges) {
      if (e.predicate == kEmptyPredicate) continue;
      const util::BitVector& subjects = solution.candidates[e.subject_var];
      const util::BitVector& objects = solution.candidates[e.object_var];
      if (subjects.None() || objects.None()) continue;
      const util::BitMatrix& fwd = db_->Forward(e.predicate);
      subjects.ForEachSetBit([&](uint32_t s) {
        for (uint32_t o : fwd.Row(s)) {
          if (objects.Test(o)) {
            out.kept.push_back({s, e.predicate, o});
          }
        }
      });
    }
  }
  return out;
}

Solution SimEngine::SolvePattern(const sparql::Pattern& union_free_pattern,
                                 const SolveControl* control) const {
  return *ProcessBranch(union_free_pattern, /*extract_triples=*/false, control)
              .solution;
}

PruneReport SimEngine::Prune(const sparql::Query& query,
                             const SolveControl* control) const {
  util::Stopwatch timer;
  // Keeps lazily-loaded matrix slabs resident across every branch solve and
  // the triple-extraction passes between them.
  graph::ResidencyPin residency_pin = db_->PinResidency();
  PruneReport report;
  report.snapshot_generation = db_->generation();
  const size_t n = db_->NumNodes();

  std::vector<std::unique_ptr<sparql::Pattern>> branches =
      sparql::UnionNormalForm(*query.where);
  report.num_branches = branches.size();

  // Branch batch: every union-free branch builds/fetches its SOI, solves,
  // and extracts its triples as one pool task; a branch's fixpoint rounds
  // may themselves fan out on the same pool (ParallelFor nests safely).
  // Each task writes only its own outcome slot.
  std::vector<BranchOutcome> outcomes(branches.size());
  auto run_branch = [&](size_t i) {
    outcomes[i] = ProcessBranch(*branches[i], /*extract_triples=*/true, control);
  };
  util::ParallelFor(branches.size() > 1 ? pool_.get() : nullptr,
                    branches.size(), run_branch);

  // ---- Single-writer merge point. ----------------------------------------
  // ParallelFor is a barrier, so all branch work is done; only the
  // coordinating thread touches the report from here on, in branch order,
  // which keeps the aggregate deterministic for any thread count.
  // SolveStats::Accumulate and the candidate-map union are unsynchronized
  // by design and must never move into the branch tasks; the debug
  // assertion below fires if a refactor ever merges from a pool thread.
  [[maybe_unused]] const std::thread::id coordinator =
      std::this_thread::get_id();
  for (BranchOutcome& outcome : outcomes) {
    assert(std::this_thread::get_id() == coordinator &&
           "PruneReport merge must stay on the coordinating thread");
    if (outcome.solution_from_cache) {
      ++report.solution_cache_hits;
    } else {
      report.stats.Accumulate(outcome.solution->stats);
    }
    report.truncated = report.truncated || outcome.solution->truncated;

    // Candidate sets per original query variable: union over occurrence
    // groups; surrogates are subsumed by their anchors (Sect. 4.3), but
    // unanchored optional groups each contribute.
    for (const auto& [var, groups] : outcome.soi->query_var_groups) {
      auto [it, inserted] =
          report.var_candidates.try_emplace(var, util::BitVector(n));
      for (uint32_t g : groups) {
        it->second.OrWith(outcome.solution->candidates[g]);
      }
    }

    report.kept_triples.insert(report.kept_triples.end(),
                               outcome.kept.begin(), outcome.kept.end());
    outcome.kept.clear();
    outcome.kept.shrink_to_fit();
  }

  std::sort(report.kept_triples.begin(), report.kept_triples.end());
  report.kept_triples.erase(
      std::unique(report.kept_triples.begin(), report.kept_triples.end()),
      report.kept_triples.end());

  report.total_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace sparqlsim::sim
