#include <gtest/gtest.h>

#include "datagen/dbpedia.h"
#include "datagen/lubm.h"
#include "datagen/queries.h"
#include "engine/evaluator.h"
#include "sim/pruner.h"
#include "sparql/parser.h"

namespace sparqlsim::datagen {
namespace {

LubmConfig SmallLubm() {
  LubmConfig config;
  config.num_universities = 1;
  config.seed = 1;
  return config;
}

DbpediaConfig SmallDbpedia() {
  DbpediaConfig config;
  config.scale = 1;
  config.seed = 1;
  return config;
}

TEST(LubmGeneratorTest, DeterministicBySeed) {
  graph::GraphDatabase a = MakeLubmDatabase(SmallLubm());
  graph::GraphDatabase b = MakeLubmDatabase(SmallLubm());
  EXPECT_EQ(a.NumTriples(), b.NumTriples());
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
}

TEST(LubmGeneratorTest, SchemaShape) {
  graph::GraphDatabase db = MakeLubmDatabase(SmallLubm());
  // LUBM's signature property: 18 predicates, low label diversity.
  EXPECT_EQ(db.NumPredicates(), 18u);
  EXPECT_GT(db.NumTriples(), 10000u);

  // Guaranteed anchors used by the L-queries.
  EXPECT_TRUE(db.nodes().Lookup("U0").has_value());
  EXPECT_TRUE(db.nodes().Lookup("U0/D0").has_value());
  EXPECT_TRUE(db.nodes().Lookup("FullProfessor").has_value());
  EXPECT_TRUE(db.nodes().Lookup("Publication").has_value());

  // rdf:type is the dominant predicate, as in real LUBM.
  uint32_t type_p = *db.predicates().Lookup("rdf:type");
  EXPECT_GT(db.PredicateCardinality(type_p), db.NumTriples() / 10);
}

TEST(LubmGeneratorTest, StructuralInvariants) {
  graph::GraphDatabase db = MakeLubmDatabase(SmallLubm());
  uint32_t works_for = *db.predicates().Lookup("worksFor");
  uint32_t member_of = *db.predicates().Lookup("memberOf");
  uint32_t advisor = *db.predicates().Lookup("advisor");

  // Every advisor target works for some department.
  const util::BitVector& advisors = db.BackwardSummary(advisor);
  const util::BitVector& employees = db.ForwardSummary(works_for);
  EXPECT_TRUE(advisors.IsSubsetOf(employees));

  // Students (memberOf sources) and faculty (worksFor sources) disjoint.
  EXPECT_FALSE(db.ForwardSummary(member_of).IntersectsWith(employees));
}

TEST(LubmGeneratorTest, AttributeTogglesLiterals) {
  LubmConfig with = SmallLubm();
  LubmConfig without = SmallLubm();
  without.attribute_triples = false;
  graph::GraphDatabase a = MakeLubmDatabase(with);
  graph::GraphDatabase b = MakeLubmDatabase(without);
  EXPECT_GT(a.NumTriples(), b.NumTriples());
  EXPECT_EQ(*b.predicates().Lookup("name"),
            *a.predicates().Lookup("name"));  // predicate exists either way
}

TEST(DbpediaGeneratorTest, SchemaShape) {
  graph::GraphDatabase db = MakeDbpediaDatabase(SmallDbpedia());
  // High predicate diversity: core predicates + Zipf tail.
  EXPECT_GT(db.NumPredicates(), 100u);
  EXPECT_GT(db.NumTriples(), 100000u);

  // Query anchors promised by the generator contract.
  for (const char* name :
       {"Person0", "City0", "City17", "Genre0", "Genre3", "Company0",
        "Country0", "Actor", "Film", "Band", "Person"}) {
    EXPECT_TRUE(db.nodes().Lookup(name).has_value()) << name;
  }

  // "Person0" is a director (index % 20 == 0).
  uint32_t type_p = *db.predicates().Lookup("rdf:type");
  EXPECT_TRUE(db.Forward(type_p).Test(*db.nodes().Lookup("Person0"),
                                      *db.nodes().Lookup("Director")));
}

TEST(DbpediaGeneratorTest, ZipfTailIsSkewed) {
  graph::GraphDatabase db = MakeDbpediaDatabase(SmallDbpedia());
  uint32_t tail0 = *db.predicates().Lookup("tail0");
  uint32_t tail_last = *db.predicates().Lookup("tail149");
  EXPECT_GT(db.PredicateCardinality(tail0),
            db.PredicateCardinality(tail_last));
  // Most tail predicates are tiny (the "99% under 1 MB" profile).
  size_t tiny = 0;
  for (size_t i = 0; i < 150; ++i) {
    uint32_t p = *db.predicates().Lookup("tail" + std::to_string(i));
    if (db.PredicateCardinality(p) < 2000) ++tiny;
  }
  EXPECT_GT(tiny, 100u);
}

TEST(DbpediaGeneratorTest, LiteralsOnlyAsObjects) {
  graph::GraphDatabase db = MakeDbpediaDatabase(SmallDbpedia());
  db.ForEachTriple([&](const graph::Triple& t) {
    EXPECT_FALSE(db.IsLiteral(t.subject));
  });
}

TEST(QueryWorkloadTest, AllQueriesParse) {
  for (const auto& [id, text] : LubmQueries()) {
    EXPECT_TRUE(sparql::Parser::Parse(text).ok()) << id;
  }
  for (const auto& [id, text] : DbpediaQueries()) {
    EXPECT_TRUE(sparql::Parser::Parse(text).ok()) << id;
  }
  for (const auto& [id, text] : BenchmarkQueries()) {
    EXPECT_TRUE(sparql::Parser::Parse(text).ok()) << id;
  }
  EXPECT_EQ(LubmQueries().size(), 6u);
  EXPECT_EQ(DbpediaQueries().size(), 6u);
  EXPECT_EQ(BenchmarkQueries().size(), 20u);
}

TEST(QueryWorkloadTest, CardinalityProfile) {
  // The workload reproduces the paper's result-profile classes: L1/L3-L5
  // selective, L0/L2 large; D1 empty; B4/B5/B15 empty; B1/B14/B17 large.
  graph::GraphDatabase lubm = MakeLubmDatabase(SmallLubm());
  engine::Evaluator lubm_eval(&lubm);
  std::map<std::string, size_t> results;
  for (const auto& [id, text] : LubmQueries()) {
    auto q = sparql::Parser::Parse(text);
    ASSERT_TRUE(q.ok()) << id;
    results[id] = lubm_eval.Evaluate(q.value()).NumRows();
  }
  EXPECT_GT(results["L0"], 100u);
  EXPECT_GT(results["L1"], 0u);
  EXPECT_GT(results["L2"], results["L3"]);
  EXPECT_GT(results["L3"], 0u);
  EXPECT_GT(results["L4"], 0u);

  graph::GraphDatabase dbp = MakeDbpediaDatabase(SmallDbpedia());
  engine::Evaluator dbp_eval(&dbp);
  for (const auto& [id, text] : DbpediaQueries()) {
    auto q = sparql::Parser::Parse(text);
    ASSERT_TRUE(q.ok()) << id;
    results[id] = dbp_eval.Evaluate(q.value()).NumRows();
  }
  EXPECT_EQ(results["D1"], 0u);
  EXPECT_GT(results["D0"], 1000u);
  EXPECT_GT(results["D4"], 10000u);

  for (const auto& [id, text] : BenchmarkQueries()) {
    auto q = sparql::Parser::Parse(text);
    ASSERT_TRUE(q.ok()) << id;
    results[id] = dbp_eval.Evaluate(q.value()).NumRows();
  }
  EXPECT_EQ(results["B4"], 0u);
  EXPECT_EQ(results["B5"], 0u);
  EXPECT_EQ(results["B15"], 0u);
  EXPECT_GT(results["B1"], 10000u);
  EXPECT_GT(results["B14"], 10000u);
  EXPECT_GT(results["B16"], 0u);
  EXPECT_LT(results["B16"], 200u);
}

TEST(QueryWorkloadTest, L1IsSatisfiable) {
  // The same-university degree knob makes Fig. 6(b)'s cycle close.
  graph::GraphDatabase lubm = MakeLubmDatabase(SmallLubm());
  engine::Evaluator eval(&lubm);
  auto q = sparql::Parser::Parse(LubmQueries()[1].text);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(eval.Evaluate(q.value()).NumRows(), 0u);
}

}  // namespace
}  // namespace sparqlsim::datagen
