// Shared helpers for the table/figure reproduction benches: dataset
// construction scaled by environment variables, query parsing, and the
// BGP -> pattern-graph conversion the baseline algorithms consume.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "datagen/dbpedia.h"
#include "datagen/lubm.h"
#include "datagen/queries.h"
#include "graph/binary_io.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/soi.h"
#include "sparql/ast.h"
#include "sparql/parser.h"
#include "util/stopwatch.h"

namespace sparqlsim::bench {

/// Environment knobs so every bench can be scaled without recompiling:
///   SPARQLSIM_LUBM_UNIVERSITIES (default 6)
///   SPARQLSIM_DBPEDIA_SCALE     (default 2)
///   SPARQLSIM_BENCH_REPS        (default 3)
inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/// Database override for running the paper's tables on *real* ingested
/// data: `bench_* --db <file.gdb>` (or SPARQLSIM_DB=<file.gdb>) loads a
/// binary database written by `sparqlsim_ingest` and the bench uses it in
/// place of the synthetic generators. Returns nullopt when no override is
/// given; aborts with a diagnostic when the file cannot be loaded.
inline std::optional<graph::GraphDatabase> LoadDbOverride(int argc,
                                                          char** argv) {
  const char* path = std::getenv("SPARQLSIM_DB");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--db") == 0) {
      if (i + 1 >= argc) {
        // Falling back to synthetic data here would masquerade as a
        // real-database run; fail loudly instead.
        std::fprintf(stderr, "[bench] --db needs a value\n");
        std::abort();
      }
      path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--db=", 5) == 0) {
      path = argv[i] + 5;
    }
  }
  if (path == nullptr) return std::nullopt;
  std::fprintf(stderr, "[bench] loading database %s ...\n", path);
  // SQSIMDB2 files open lazily; SPARQLSIM_RESIDENT_MB bounds their
  // resident matrix bytes (0/unset = unbounded), mirroring the tools.
  graph::BinaryIo::LoadOptions load_options;
  load_options.resident_budget_bytes =
      EnvSize("SPARQLSIM_RESIDENT_MB", 0) << 20;
  auto loaded = graph::BinaryIo::LoadFile(path, load_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "[bench] cannot load %s: %s\n", path,
                 loaded.error_message().c_str());
    std::abort();
  }
  graph::GraphDatabase db = std::move(loaded).value();
  std::fprintf(stderr, "[bench] db: %zu triples, %zu nodes, %zu preds\n",
               db.NumTriples(), db.NumNodes(), db.NumPredicates());
  return db;
}

inline graph::GraphDatabase MakeBenchLubm() {
  datagen::LubmConfig config;
  config.num_universities = EnvSize("SPARQLSIM_LUBM_UNIVERSITIES", 6);
  config.seed = 42;
  std::fprintf(stderr, "[bench] generating LUBM(%zu)...\n",
               config.num_universities);
  graph::GraphDatabase db = datagen::MakeLubmDatabase(config);
  std::fprintf(stderr, "[bench] LUBM: %zu triples, %zu nodes, %zu preds\n",
               db.NumTriples(), db.NumNodes(), db.NumPredicates());
  return db;
}

inline graph::GraphDatabase MakeBenchDbpedia() {
  datagen::DbpediaConfig config;
  config.scale = EnvSize("SPARQLSIM_DBPEDIA_SCALE", 2);
  config.seed = 7;
  std::fprintf(stderr, "[bench] generating DBpedia-like(scale=%zu)...\n",
               config.scale);
  graph::GraphDatabase db = datagen::MakeDbpediaDatabase(config);
  std::fprintf(stderr, "[bench] DBpedia: %zu triples, %zu nodes, %zu preds\n",
               db.NumTriples(), db.NumNodes(), db.NumPredicates());
  return db;
}

inline sparql::Query ParseOrDie(const std::string& text) {
  auto r = sparql::Parser::Parse(text);
  if (!r.ok()) {
    std::fprintf(stderr, "query parse error: %s\n%s\n",
                 r.error_message().c_str(), text.c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Converts a BGP to the pure pattern-graph form consumed by the baseline
/// algorithms: labels are database predicate ids (kEmptyPredicate when the
/// predicate is absent) and constant terms become pinned nodes.
struct PatternWithConstants {
  graph::Graph pattern;
  std::vector<std::optional<uint32_t>> constants;
  /// False iff some constant term is absent from the database, in which
  /// case the largest dual simulation is empty without running anything.
  bool satisfiable = true;
};

inline PatternWithConstants BgpToDataPattern(
    const std::vector<sparql::TriplePattern>& bgp,
    const graph::GraphDatabase& db) {
  std::vector<sparql::Term> node_terms;
  std::vector<std::string> label_names;
  graph::Graph raw = sparql::BgpToGraph(bgp, &node_terms, &label_names);

  PatternWithConstants out;
  out.pattern = graph::Graph(raw.NumNodes());
  std::vector<uint32_t> label_map(label_names.size());
  for (size_t i = 0; i < label_names.size(); ++i) {
    auto id = db.predicates().Lookup(label_names[i]);
    label_map[i] = id ? *id : sim::kEmptyPredicate;
  }
  for (const graph::LabeledEdge& e : raw.edges()) {
    out.pattern.AddEdge(e.from, label_map[e.label], e.to);
  }
  out.constants.resize(raw.NumNodes());
  for (size_t v = 0; v < node_terms.size(); ++v) {
    if (node_terms[v].IsVariable()) continue;
    auto id = db.nodes().Lookup(node_terms[v].text());
    if (id) {
      out.constants[v] = *id;
    } else {
      out.satisfiable = false;  // unknown constant: no match possible
    }
  }
  return out;
}

/// Runs fn `reps` times and returns the average seconds.
inline double TimeAverage(const std::function<void()>& fn, size_t reps = 0) {
  if (reps == 0) reps = EnvSize("SPARQLSIM_BENCH_REPS", 3);
  util::Stopwatch watch;
  for (size_t i = 0; i < reps; ++i) fn();
  return watch.ElapsedSeconds() / static_cast<double>(reps);
}

inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace sparqlsim::bench
