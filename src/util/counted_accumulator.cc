#include "util/counted_accumulator.h"

#include <cassert>

namespace sparqlsim::util {

size_t CountedAccumulator::Retract(const BitMatrix& a,
                                   const BitVector& removed) {
  size_t cleared = 0;
  removed.ForEachSetBit([&](uint32_t r) {
    for (uint32_t c : a.Row(r)) {
      assert(counts_[c] > 0 && "retracting a row that was never selected");
      if (--counts_[c] == 0) {
        result_.Reset(c);
        ++cleared;
      }
    }
  });
  return cleared;
}

}  // namespace sparqlsim::util
