#include "sim/pruner.h"

#include "sim/soi.h"

namespace sparqlsim::sim {

Solution SparqlSimProcessor::Solve(const sparql::Pattern& union_free_pattern,
                                   const SolverOptions& options) const {
  // A transient single-branch solve can never hit a fresh cache; go
  // straight to the solver so the Table 2 timing path stays pure solver
  // (SolveSoi honors options.num_threads with a transient pool).
  Soi soi = BuildSoiFromPattern(union_free_pattern, *db_);
  return SolveSoi(soi, *db_, options);
}

PruneReport SparqlSimProcessor::Prune(const sparql::Query& query,
                                      const SolverOptions& options) const {
  return SimEngine(db_, options).Prune(query);
}

}  // namespace sparqlsim::sim
