#include "graph/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace sparqlsim::graph {

namespace {

// 7-byte format tag + 1-byte version; see docs/DATASETS.md for the spec
// and the versioning policy.
constexpr char kMagic[8] = {'S', 'Q', 'S', 'I', 'M', 'D', 'B', '1'};
constexpr char kVersion = '1';

void PutVarint(uint64_t value, std::ostream& out) {
  while (value >= 0x80) {
    out.put(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

bool GetVarint(std::istream& in, uint64_t* value) {
  *value = 0;
  unsigned shift = 0;
  while (true) {
    int byte = in.get();
    if (byte == EOF) return false;
    *value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift > 63) return false;
  }
}

void PutString(const std::string& s, std::ostream& out) {
  PutVarint(s.size(), out);
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& in, std::string* s) {
  uint64_t length = 0;
  if (!GetVarint(in, &length)) return false;
  // Read in bounded blocks: a corrupt varint length must fail at the
  // stream's actual end instead of attempting one multi-gigabyte resize.
  constexpr uint64_t kBlock = uint64_t{1} << 16;
  s->clear();
  while (length > 0) {
    uint64_t take = length < kBlock ? length : kBlock;
    size_t old_size = s->size();
    s->resize(old_size + take);
    in.read(s->data() + old_size, static_cast<std::streamsize>(take));
    if (static_cast<uint64_t>(in.gcount()) != take) return false;
    length -= take;
  }
  return true;
}

}  // namespace

void BinaryIo::Save(const GraphDatabase& db, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  PutVarint(db.NumNodes(), out);
  PutVarint(db.NumPredicates(), out);
  for (uint32_t node = 0; node < db.NumNodes(); ++node) {
    PutString(db.nodes().Name(node), out);
    out.put(db.IsLiteral(node) ? 1 : 0);
  }
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    PutString(db.predicates().Name(p), out);
  }
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    const util::BitMatrix& m = db.Forward(p);
    PutVarint(m.NumNonEmptyRows(), out);
    uint32_t previous_row = 0;
    for (uint32_t row : m.NonEmptyRows()) {
      auto cols = m.Row(row);
      PutVarint(row - previous_row, out);
      previous_row = row;
      PutVarint(cols.size(), out);
      uint32_t previous_col = 0;
      for (uint32_t col : cols) {
        PutVarint(col - previous_col, out);
        previous_col = col;
      }
    }
  }
}

util::Status BinaryIo::SaveFile(const GraphDatabase& db,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Error("cannot write " + path);
  Save(db, out);
  return out.good() ? util::Status::Ok()
                    : util::Status::Error("write failure on " + path);
}

util::Result<GraphDatabase> BinaryIo::Load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic) - 1) != 0) {
    return util::Status::Error(
        "not a sparqlsim binary database (bad magic; expected a file "
        "written by BinaryIo::Save / sparqlsim_ingest)");
  }
  if (magic[7] != kVersion) {
    return util::Status::Error(
        std::string("unsupported sparqlsim database version '") + magic[7] +
        "' (this build reads version '1')");
  }
  uint64_t num_nodes = 0, num_predicates = 0;
  if (!GetVarint(in, &num_nodes) || !GetVarint(in, &num_predicates)) {
    return util::Status::Error("truncated header");
  }
  if (num_nodes > UINT32_MAX || num_predicates > UINT32_MAX) {
    return util::Status::Error("corrupt header: counts exceed the 32-bit id "
                               "space");
  }

  GraphDatabaseBuilder builder;
  std::string name;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (!GetString(in, &name)) return util::Status::Error("truncated nodes");
    int literal = in.get();
    if (literal == EOF) return util::Status::Error("truncated nodes");
    // First-seen interning preserves the original dense ids.
    uint32_t id = literal ? builder.InternLiteral(name)
                          : builder.InternNode(name);
    if (id != i) return util::Status::Error("duplicate node entry");
  }
  for (uint64_t p = 0; p < num_predicates; ++p) {
    if (!GetString(in, &name)) {
      return util::Status::Error("truncated predicates");
    }
    if (builder.InternPredicate(name) != p) {
      return util::Status::Error("duplicate predicate entry");
    }
  }
  for (uint32_t p = 0; p < num_predicates; ++p) {
    uint64_t num_rows = 0;
    if (!GetVarint(in, &num_rows)) {
      return util::Status::Error("truncated matrix header");
    }
    uint64_t row = 0;
    for (uint64_t r = 0; r < num_rows; ++r) {
      uint64_t row_delta = 0, degree = 0;
      if (!GetVarint(in, &row_delta) || !GetVarint(in, &degree)) {
        return util::Status::Error("truncated row");
      }
      row += row_delta;
      uint64_t col = 0;
      for (uint64_t c = 0; c < degree; ++c) {
        uint64_t col_delta = 0;
        if (!GetVarint(in, &col_delta)) {
          return util::Status::Error("truncated columns");
        }
        col += col_delta;
        if (row >= num_nodes || col >= num_nodes) {
          return util::Status::Error("triple id out of range");
        }
        util::Status status =
            builder.AddTripleIds(static_cast<uint32_t>(row), p,
                                 static_cast<uint32_t>(col));
        if (!status.ok()) return status;
      }
    }
  }
  return std::move(builder).Build();
}

util::Result<GraphDatabase> BinaryIo::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("cannot open " + path);
  return Load(in);
}

}  // namespace sparqlsim::graph
