#include "util/gap_codec.h"

#include <cassert>

namespace sparqlsim::util {

namespace {

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

size_t VarintSize(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

uint64_t ReadVarint(const std::vector<uint8_t>& buffer, size_t* pos) {
  uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    assert(*pos < buffer.size());
    uint8_t byte = buffer[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

/// Calls fn(run_length) for every alternating run, starting with zeros.
template <typename Fn>
void ForEachRun(const BitVector& bits, Fn&& fn) {
  size_t pos = 0;
  bool current = false;
  while (pos < bits.size()) {
    size_t run = 0;
    while (pos + run < bits.size() && bits.Test(pos + run) == current) ++run;
    fn(run);
    pos += run;
    current = !current;
  }
}

}  // namespace

std::vector<uint8_t> GapCodec::Encode(const BitVector& bits) {
  std::vector<uint8_t> out;
  ForEachRun(bits, [&](size_t run) { AppendVarint(run, &out); });
  return out;
}

BitVector GapCodec::Decode(const std::vector<uint8_t>& buffer, size_t num_bits) {
  BitVector bits(num_bits);
  size_t pos = 0;
  size_t bit = 0;
  bool current = false;
  while (pos < buffer.size() && bit < num_bits) {
    uint64_t run = ReadVarint(buffer, &pos);
    if (current) {
      for (uint64_t i = 0; i < run; ++i) bits.Set(bit + i);
    }
    bit += run;
    current = !current;
  }
  assert(bit <= num_bits);
  return bits;
}

size_t GapCodec::EncodedSize(const BitVector& bits) {
  size_t total = 0;
  ForEachRun(bits, [&](size_t run) { total += VarintSize(run); });
  return total;
}

size_t GapCodec::EncodedSizeFromIndices(std::span<const uint32_t> indices,
                                        size_t num_bits) {
  size_t total = 0;
  size_t pos = 0;  // next unencoded bit position
  size_t i = 0;
  while (i < indices.size()) {
    // Zero run up to the next set bit.
    total += VarintSize(indices[i] - pos);
    // One run of consecutive indices.
    size_t run = 1;
    while (i + run < indices.size() &&
           indices[i + run] == indices[i] + run) {
      ++run;
    }
    total += VarintSize(run);
    pos = indices[i] + run;
    i += run;
  }
  if (pos < num_bits) total += VarintSize(num_bits - pos);
  return total;
}

}  // namespace sparqlsim::util
