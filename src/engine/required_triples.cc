#include "engine/required_triples.h"

#include <algorithm>

#include "sparql/normalize.h"

namespace sparqlsim::engine {

namespace {

void CollectTriplePatterns(const sparql::Pattern& p,
                           std::vector<sparql::TriplePattern>* out) {
  if (p.IsBgp()) {
    for (const sparql::TriplePattern& t : p.triples()) out->push_back(t);
    return;
  }
  CollectTriplePatterns(p.left(), out);
  CollectTriplePatterns(p.right(), out);
}

}  // namespace

std::vector<graph::Triple> CollectRequiredTriples(
    const sparql::Query& query, const graph::GraphDatabase& db,
    const Evaluator& evaluator) {
  std::vector<graph::Triple> required;

  for (const auto& branch : sparql::UnionNormalForm(*query.where)) {
    SolutionSet rows = evaluator.EvaluatePattern(*branch);
    std::vector<sparql::TriplePattern> patterns;
    CollectTriplePatterns(*branch, &patterns);

    // Pre-resolve pattern slots against the schema and dictionaries.
    struct Resolved {
      int s_index;        // schema position, or -1 for constants
      int o_index;
      uint32_t s_const;   // node id when constant
      uint32_t o_const;
      uint32_t predicate;
      bool usable;
    };
    std::vector<Resolved> resolved;
    for (const sparql::TriplePattern& t : patterns) {
      Resolved r{-1, -1, kUnbound, kUnbound, 0, true};
      auto p = db.predicates().Lookup(t.predicate.text());
      if (!p) {
        r.usable = false;
      } else {
        r.predicate = *p;
      }
      if (t.subject.IsVariable()) {
        r.s_index = rows.IndexOf(t.subject.text());
      } else if (auto id = db.nodes().Lookup(t.subject.text())) {
        r.s_const = *id;
      } else {
        r.usable = false;
      }
      if (t.object.IsVariable()) {
        r.o_index = rows.IndexOf(t.object.text());
      } else if (auto id = db.nodes().Lookup(t.object.text())) {
        r.o_const = *id;
      } else {
        r.usable = false;
      }
      resolved.push_back(r);
    }

    for (size_t i = 0; i < rows.NumRows(); ++i) {
      for (const Resolved& r : resolved) {
        if (!r.usable) continue;
        uint32_t s = r.s_index >= 0 ? rows.Row(i)[r.s_index] : r.s_const;
        uint32_t o = r.o_index >= 0 ? rows.Row(i)[r.o_index] : r.o_const;
        if (s == kUnbound || o == kUnbound) continue;
        if (!db.Forward(r.predicate).Test(s, o)) continue;
        required.push_back({s, r.predicate, o});
      }
    }
  }

  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()),
                 required.end());
  return required;
}

}  // namespace sparqlsim::engine
