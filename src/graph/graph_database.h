#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "graph/dictionary.h"
#include "graph/triple.h"
#include "util/bitmatrix.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace sparqlsim::graph {

class GraphDatabase;
class OutOfCoreBacking;
class BinaryIo;

/// Counters of the out-of-core backing layer (see OutOfCoreBacking). All
/// zero for a fully in-memory database. `resident`/`resident_bytes` are
/// instantaneous; the totals are monotone over the backing's lifetime.
struct BackingStats {
  size_t predicates = 0;        ///< predicates with lazy at-rest backing
  size_t resident = 0;          ///< currently materialized lazy predicates
  size_t materializations = 0;  ///< total decode-on-fault events
  size_t evictions = 0;         ///< slabs dropped to honor the budget
  size_t resident_bytes = 0;    ///< approx bytes of materialized slabs
  size_t budget_bytes = 0;      ///< 0 = unbounded residency
};

/// RAII residency pin (see GraphDatabase::PinResidency): while at least one
/// pin is held on a database's backing, the resident-budget enforcement is
/// deferred, so matrix references obtained under the pin stay valid until
/// it is released. Pins on a database without backing are no-ops.
class ResidencyPin {
 public:
  ResidencyPin() = default;
  explicit ResidencyPin(std::shared_ptr<OutOfCoreBacking> backing);
  ~ResidencyPin();

  ResidencyPin(ResidencyPin&& other) noexcept
      : backing_(std::move(other.backing_)) {}
  ResidencyPin& operator=(ResidencyPin&& other) noexcept;
  ResidencyPin(const ResidencyPin&) = delete;
  ResidencyPin& operator=(const ResidencyPin&) = delete;

 private:
  std::shared_ptr<OutOfCoreBacking> backing_;
};

/// Accumulates triples and dictionary entries, then freezes them into an
/// immutable GraphDatabase.
///
/// Enforces Def. 1 of the paper: literals may appear only in object
/// position; a triple whose subject is a known literal is rejected.
class GraphDatabaseBuilder {
 public:
  GraphDatabaseBuilder();

  /// Interns an IRI-like node (an object in the paper's universe O).
  uint32_t InternNode(std::string_view name);
  /// Interns a literal node (universe L); literals never gain out-edges.
  uint32_t InternLiteral(std::string_view value);
  /// Interns a predicate (edge label in the alphabet Sigma).
  uint32_t InternPredicate(std::string_view name);

  /// Adds (s, p, o) where all three are IRI-like names.
  util::Status AddTriple(std::string_view s, std::string_view p,
                         std::string_view o);
  /// Adds (s, p, "literal").
  util::Status AddTripleLiteral(std::string_view s, std::string_view p,
                                std::string_view literal);
  /// Adds a triple over already-interned ids.
  util::Status AddTripleIds(uint32_t s, uint32_t p, uint32_t o);

  /// Triples accepted so far, duplicates included (Build() dedupes).
  size_t NumTriplesAdded() const { return triples_.size(); }

  /// Freezes into a database. The builder is consumed.
  GraphDatabase Build() &&;

 private:
  std::shared_ptr<Dictionary> nodes_;
  std::shared_ptr<Dictionary> predicates_;
  std::shared_ptr<std::vector<bool>> is_literal_;
  std::vector<Triple> triples_;
};

/// An immutable graph database DB = (O_DB, Sigma, E_DB): dictionary-encoded
/// nodes/predicates plus, per predicate a, the forward adjacency matrix F_a
/// and its transpose B_a in compressed sparse form, with the summary
/// vectors f^a / b^a of Eq. (13) precomputed.
///
/// The per-label matrix pair is exactly what Sect. 3.2 of the paper needs:
/// row-wise products read F_a (or B_a), and the column-wise evaluation
/// strategy reads the respective transpose's rows.
///
/// Storage is copy-on-write per predicate: all per-label state (matrix
/// pair, summaries, cardinalities) lives in one refcounted immutable slab,
/// and copying a GraphDatabase copies slot pointers, not matrices. That
/// makes Snapshot() O(predicates), and lets Restrict()/WithTriplesAdded()
/// produce the next version of an evolving database while readers keep
/// solving against the old one — the MVCC substrate of sim::QueryService.
///
/// Out-of-core tier: a database opened from a SQSIMDB2 file (BinaryIo)
/// interposes an OutOfCoreBacking behind the slot pointers — a predicate's
/// slab then materializes on first touch (decode-on-fault) and can be
/// evicted again under a resident-byte budget. Snapshot(), generation(),
/// and ChangedPredicates() semantics are unchanged: slot identity, not
/// residency, is what versions share and compare.
class GraphDatabase {
 public:
  /// All per-predicate state, immutable once built and refcounted: the
  /// unit of copy-on-write sharing between database versions, and the unit
  /// of lazy materialization/eviction in the out-of-core tier.
  struct PredicateSlab {
    util::BitMatrix forward;
    util::BitMatrix backward;
    util::BitVector forward_summary;
    util::BitVector backward_summary;
    size_t subject_count = 0;
    size_t object_count = 0;
    size_t empty_forward_cols = 0;
    size_t empty_backward_cols = 0;
  };

  /// One predicate's storage indirection. Eager slots (the in-memory
  /// default) carry their slab forever; lazy slots (backing != nullptr)
  /// decode it from the at-rest bytes on first touch and may drop it again
  /// under budget pressure. Slot pointer identity is the COW sharing unit:
  /// an untouched predicate shares its *slot* across database versions, so
  /// a never-touched predicate stays unmaterialized through the whole
  /// publish chain.
  struct PredicateSlot {
    std::shared_ptr<OutOfCoreBacking> backing;  ///< null = eager slot
    uint32_t predicate = 0;  ///< directory index within the backing
    size_t nnz = 0;          ///< triple count, known without materializing

    mutable std::mutex mu;  ///< serializes fault/evict transitions
    mutable std::shared_ptr<const PredicateSlab> slab;
    mutable std::atomic<const PredicateSlab*> resident{nullptr};

    /// The slab, decoding it on first touch. The fast path is one acquire
    /// load. If the at-rest bytes turn out corrupt at fault time (possible
    /// only when the file changed after open — open-time validation covers
    /// the directory and structure), the process aborts with a diagnostic;
    /// use TryFault() for a Status-returning materialization.
    const PredicateSlab& Get() const {
      const PredicateSlab* s = resident.load(std::memory_order_acquire);
      if (s != nullptr) return *s;
      return Fault();
    }

    /// Materializes the slab, reporting decode failures as a Status.
    util::Status TryFault() const;

    bool IsResident() const {
      return resident.load(std::memory_order_acquire) != nullptr;
    }

   private:
    const PredicateSlab& Fault() const;
  };

  size_t NumNodes() const { return nodes_->size(); }
  size_t NumPredicates() const { return predicates_->size(); }
  size_t NumTriples() const { return num_triples_; }

  /// Process-unique generation stamp, assigned whenever a database's
  /// content changes — Build(), binary load, and any Restrict()/
  /// WithTriplesAdded() that rebuilt at least one predicate slab. Two
  /// GraphDatabase values share a generation only if their triple content
  /// is identical (copies, snapshots, and no-op restrictions), which makes
  /// the stamp a sound identity key for caches holding per-database
  /// artifacts (sim::SoiCache): different data can never alias a cached
  /// solution, while content-preserving versions keep their caches warm.
  uint64_t generation() const { return generation_; }

  /// An immutable refcounted view of this database: shares the
  /// dictionaries and every predicate slot (O(predicates) pointer copies,
  /// no matrix is touched) and keeps the generation. In-flight queries pin
  /// the snapshot they admitted under simply by holding the shared_ptr;
  /// publishing a successor via Restrict()/WithTriplesAdded() never
  /// invalidates or blocks a pinned snapshot.
  std::shared_ptr<const GraphDatabase> Snapshot() const {
    return std::make_shared<const GraphDatabase>(*this);
  }

  const Dictionary& nodes() const { return *nodes_; }
  const Dictionary& predicates() const { return *predicates_; }

  bool IsLiteral(uint32_t node) const { return (*is_literal_)[node]; }

  /// Forward adjacency matrix F_p (rows: subjects, cols: objects).
  const util::BitMatrix& Forward(uint32_t p) const {
    return slots_[p]->Get().forward;
  }
  /// Backward adjacency matrix B_p = transpose of F_p.
  const util::BitMatrix& Backward(uint32_t p) const {
    return slots_[p]->Get().backward;
  }

  /// f^p: bit v set iff v has an outgoing p-edge (Eq. 13).
  const util::BitVector& ForwardSummary(uint32_t p) const {
    return slots_[p]->Get().forward_summary;
  }
  /// b^p: bit v set iff v has an incoming p-edge (Eq. 13).
  const util::BitVector& BackwardSummary(uint32_t p) const {
    return slots_[p]->Get().backward_summary;
  }

  /// Number of triples with predicate p (basic statistic for join ordering
  /// and for the solver's sparsity heuristic). Slot metadata — never
  /// materializes a lazy predicate.
  size_t PredicateCardinality(uint32_t p) const { return slots_[p]->nnz; }
  size_t DistinctSubjects(uint32_t p) const {
    return slots_[p]->Get().subject_count;
  }
  size_t DistinctObjects(uint32_t p) const {
    return slots_[p]->Get().object_count;
  }

  /// Number of all-zero columns of F_p / B_p, precomputed at build time.
  /// The solver's order-by-sparsity heuristic (Sect. 3.3: inequalities
  /// whose matrix has many empty columns prune hardest) reads these
  /// instead of paying BitMatrix::CountEmptyColumns' O(nnz) ColSummary
  /// pass on every solve.
  size_t EmptyForwardColumns(uint32_t p) const {
    return slots_[p]->Get().empty_forward_cols;
  }
  size_t EmptyBackwardColumns(uint32_t p) const {
    return slots_[p]->Get().empty_backward_cols;
  }

  /// Calls fn(subject, object) for every triple with predicate p, in
  /// ascending (subject, object) order. Walks only the non-empty rows of
  /// F_p — O(distinct subjects + nnz), independent of the node-universe
  /// size, which keeps Restrict()/AllTriples() cheap for the tiny
  /// predicates real datasets are full of.
  template <typename Fn>
  void ForEachTriple(uint32_t p, Fn&& fn) const {
    const util::BitMatrix& m = slots_[p]->Get().forward;
    const auto rows = m.NonEmptyRows();
    for (size_t slot = 0; slot < rows.size(); ++slot) {
      for (uint32_t o : m.RowBySlot(slot)) fn(rows[slot], o);
    }
  }

  /// Calls fn(Triple) for every triple, grouped by predicate.
  template <typename Fn>
  void ForEachTriple(Fn&& fn) const {
    for (uint32_t p = 0; p < NumPredicates(); ++p) {
      ForEachTriple(p, [&](uint32_t s, uint32_t o) { fn(Triple{s, p, o}); });
    }
  }

  /// Materializes all triples (grouped by predicate).
  std::vector<Triple> AllTriples() const;

  /// Builds a database over the *same* dictionaries and node universe that
  /// contains only the given triples. This is how the pruned database of
  /// Sect. 5 is constructed: ids remain comparable with the original.
  ///
  /// Copy-on-write: a predicate whose triple set is unchanged shares its
  /// slab with this database (pointer copy); only changed predicates
  /// rebuild matrices. If *no* slab changed the result keeps this
  /// database's generation — content identity is what caches key on.
  GraphDatabase Restrict(std::span<const Triple> kept) const;

  /// Copy-on-write delta ingest over the existing node and predicate
  /// universe: the result contains this database's triples plus `added`
  /// (ids must already be interned — growing the dictionaries would change
  /// matrix dimensions and defeat slab sharing; intern through a builder
  /// for that). Only predicates occurring in `added` rebuild; a predicate
  /// whose additions were all duplicates shares its slab, and if every
  /// addition was a duplicate the generation is kept too.
  GraphDatabase WithTriplesAdded(std::span<const Triple> added) const;

  /// Copy-on-write delta deletion, the retraction mirror of
  /// WithTriplesAdded: the result contains this database's triples minus
  /// `removed`. Only predicates occurring in `removed` rebuild; removing a
  /// triple that is not present is a no-op, and if nothing was actually
  /// removed the generation is kept.
  ///
  /// The node and predicate dictionaries are shared untouched — ids are
  /// *never* compacted, even when a node loses its last triple — so
  /// dictionary intern order, binary serialization bytes of an unchanged
  /// triple set, and generation-keyed cache keys all survive a
  /// delete/re-insert round trip.
  GraphDatabase WithTriplesRemoved(std::span<const Triple> removed) const;

  /// Predicates whose slab *may* differ from `other`'s, by COW slot
  /// identity: along a Restrict()/WithTriplesAdded()/WithTriplesRemoved()
  /// chain an unchanged predicate shares its slot pointer, so pointer
  /// equality proves content equality and the returned set is the exact
  /// per-predicate dirty set of the publish chain between the two
  /// versions. For databases built independently the set over-approximates
  /// (equal content, different slots) — safe for consumers that treat
  /// "dirty" as "must re-examine". Both databases must share the same
  /// predicate universe.
  std::vector<uint32_t> ChangedPredicates(const GraphDatabase& other) const;

  /// Total CSR footprint of all adjacency matrices (materializes every
  /// lazy predicate — a whole-database statistic by definition).
  size_t ApproxMatrixBytes() const;
  /// What the footprint would be with gap-length-encoded dense rows
  /// (storage-economics report, Sect. 3.3 / 5.1).
  size_t GapEncodedMatrixBytes() const;

  /// True iff this database serves some predicates lazily from an at-rest
  /// backing (SQSIMDB2 open without --eager).
  bool HasBacking() const { return backing_ != nullptr; }

  /// Backing-layer counters; all-zero for a fully in-memory database.
  BackingStats backing_stats() const;

  /// True iff predicate p's slab is materialized right now (always true
  /// for eager slots).
  bool PredicateResident(uint32_t p) const {
    return slots_[p]->IsResident();
  }

  /// Pins residency for the duration of a query: while any pin is held,
  /// budget-driven eviction is deferred, so matrix references obtained
  /// after pinning stay valid until the pin drops. Every solver/engine
  /// entry point takes one; no-op (and free) for in-memory databases.
  ResidencyPin PinResidency() const;

  /// Sets the resident-byte budget on the backing (0 = unbounded).
  /// Enforcement is FIFO over materialization order and runs at
  /// materialization time and when the last pin drops — a single query's
  /// working set may therefore transiently exceed the budget, and one slab
  /// larger than the whole budget stays resident while in use. No-op for
  /// in-memory databases.
  void SetResidentBudget(size_t bytes) const;

 private:
  friend class GraphDatabaseBuilder;
  friend class BinaryIo;
  friend class OutOfCoreBacking;

  GraphDatabase() = default;

  void BuildMatrices(std::vector<Triple>&& triples);

  /// Builds one predicate's slab from its (subject, object) pairs
  /// (consumed; deduplicated by BitMatrix::Build).
  static std::shared_ptr<const PredicateSlab> BuildSlab(
      size_t n, std::vector<std::pair<uint32_t, uint32_t>>&& entries);

  /// Wraps an already-built slab in an always-resident slot.
  static std::shared_ptr<const PredicateSlot> MakeEagerSlot(
      std::shared_ptr<const PredicateSlab> slab);

  /// True iff the slab stores exactly the sorted, deduplicated `entries`.
  static bool SlabMatches(
      const PredicateSlab& slab,
      const std::vector<std::pair<uint32_t, uint32_t>>& entries);

  /// The process-unique stamp source behind generation().
  static uint64_t NextGeneration();

  /// Shared COW tail of Restrict()/WithTriplesAdded(): assembles a sibling
  /// database from per-predicate entry lists, sharing every slot that
  /// already stores its list and keeping the generation when all do.
  /// When `touched` is non-null, predicates it marks false share their
  /// slot unconditionally (their entry list is ignored).
  GraphDatabase RebuildChanged(
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>>&& per_predicate,
      const std::vector<bool>* touched) const;

  /// Faults in every lazy predicate (Status on decode failure) and rewraps
  /// the decoded slabs in eager slots, dropping the backing: the eager
  /// open mode of SQSIMDB2 files. Only sound on a freshly loaded database
  /// that no other version shares slots with yet.
  util::Status MaterializeAllAndDetach();

  std::shared_ptr<const Dictionary> nodes_;
  std::shared_ptr<const Dictionary> predicates_;
  std::shared_ptr<const std::vector<bool>> is_literal_;
  size_t num_triples_ = 0;
  uint64_t generation_ = 0;
  std::vector<std::shared_ptr<const PredicateSlot>> slots_;
  std::shared_ptr<OutOfCoreBacking> backing_;
};

/// The at-rest side of the out-of-core tier: decodes one predicate's slab
/// on demand from a (typically mmap-ed) SQSIMDB2 file, tracks residency
/// counters, and enforces the resident-byte budget.
///
/// Lifecycle of a lazy slab (see docs/ARCHITECTURE.md, "Out-of-core
/// backing"): on-disk → Get() faults → DecodeSlab() → resident (counted in
/// resident_bytes) → budget pressure at materialization time or at
/// last-unpin → evicted (slab freed, slot back to on-disk). Pins
/// (GraphDatabase::PinResidency) defer eviction so in-flight queries keep
/// their references valid.
///
/// Concrete backings (the mmap reader lives in binary_io.cc) implement
/// DecodeSlab(); everything else — counters, FIFO eviction, pin
/// accounting — is shared here.
class OutOfCoreBacking {
 public:
  virtual ~OutOfCoreBacking() = default;

  BackingStats stats() const;

  void SetBudgetBytes(size_t bytes);

  /// Pin accounting used by ResidencyPin. While pins > 0, budget
  /// enforcement is deferred; the last Unpin() runs it.
  void Pin();
  void Unpin();

  /// Drops every resident slab it can (pins permitting); used by tests and
  /// the forced-eviction CI leg. Returns the number of slabs evicted.
  size_t EvictAll();

 protected:
  using Slab = GraphDatabase::PredicateSlab;

  /// Decodes predicate `p` from the at-rest bytes. Thread-safe, called
  /// without backing locks held.
  virtual util::Result<std::shared_ptr<const Slab>> DecodeSlab(
      uint32_t p) const = 0;

  /// Forwarder so concrete backings can assemble slabs through the one
  /// canonical builder (summaries, counts, empty-column derivation).
  static std::shared_ptr<const Slab> BuildSlab(
      size_t n, std::vector<std::pair<uint32_t, uint32_t>>&& entries) {
    return GraphDatabase::BuildSlab(n, std::move(entries));
  }

  /// Registers the slot serving predicate `p` (held weakly; the databases
  /// own the slots). Called by the loader, once per predicate.
  void AttachSlot(uint32_t p,
                  std::weak_ptr<const GraphDatabase::PredicateSlot> slot);

 private:
  friend struct GraphDatabase::PredicateSlot;

  /// Approximate heap bytes of a materialized slab (budget accounting).
  static size_t SlabBytes(const Slab& slab);

  /// Called by PredicateSlot::Fault after a successful decode, outside the
  /// slot lock: updates counters, appends to the eviction FIFO, and — when
  /// over budget with no pins held — evicts oldest-first (never the slab
  /// just materialized).
  void NoteMaterialized(uint32_t p, size_t bytes);

  /// Must hold mu_. Evicts oldest-first until within budget; skips
  /// `keep_predicate` (pass UINT32_MAX to allow all).
  void EnforceBudgetLocked(uint32_t keep_predicate,
                           std::vector<std::shared_ptr<const Slab>>* freed);

  mutable std::mutex mu_;
  std::vector<std::weak_ptr<const GraphDatabase::PredicateSlot>> slots_;
  /// Materialization-order eviction queue: (predicate, approx bytes).
  std::vector<std::pair<uint32_t, size_t>> fifo_;
  size_t budget_bytes_ = 0;
  size_t resident_count_ = 0;
  size_t resident_bytes_ = 0;
  size_t materializations_ = 0;
  size_t evictions_ = 0;
  int64_t pins_ = 0;
  bool enforcement_deferred_ = false;
};

}  // namespace sparqlsim::graph
