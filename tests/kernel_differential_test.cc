// Randomized differential verification of the kernel/representation
// layer. The scalar-dense path is the oracle; everything else — the AVX2
// word lanes, the hierarchical dense layout, and the GAP/RLE-compressed
// layout — must reproduce it bit for bit on AndWith / Count /
// ForEachSetBit / Multiply, across occupancies from empty to full and
// sizes straddling the word and 64-word-block edges. Every randomized
// case derives its seed deterministically and logs it through
// SCOPED_TRACE, so a failure names the exact reproducing input.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/bitmatrix.h"
#include "util/bitvector.h"
#include "util/candidate_set.h"
#include "util/counted_accumulator.h"
#include "util/hierarchical_bitvector.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"

namespace sparqlsim::util {
namespace {

// Word (64) and hierarchical-block (4096 = 64 words) boundary sizes, plus
// small and mid-range interiors.
const size_t kBitSizes[] = {1,    63,   64,   65,   127,  128,  129,
                            511,  512,  513,  1000, 4095, 4096, 4097,
                            8191, 8192, 8193};

// Densities the solver actually visits: empty, late-fixpoint sparse,
// balanced, full.
const double kDensities[] = {0.0, 0.004, 0.1, 0.5, 1.0};

const CandidateSet::Policy kPolicies[] = {CandidateSet::Policy::kAuto,
                                          CandidateSet::Policy::kDense,
                                          CandidateSet::Policy::kCompressed};

// splitmix-style deterministic per-case seed; logged on failure.
uint64_t CaseSeed(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = 0x9E3779B97F4A7C15ull ^ (a * 0xBF58476D1CE4E5B9ull);
  x ^= (b + 0x94D049BB133111EBull) * 0xD6E8FEB86659FD93ull;
  x ^= c * 0xFF51AFD7ED558CCDull;
  return x ^ (x >> 33);
}

BitVector RandomVector(Rng* rng, size_t n, double density) {
  if (density <= 0.0) return BitVector(n);
  if (density >= 1.0) return BitVector(n, true);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextBool(density)) v.Set(i);
  }
  return v;
}

std::vector<uint32_t> Collect(const CandidateSet& s) {
  std::vector<uint32_t> out;
  s.ForEachSetBit([&](uint32_t i) { out.push_back(i); });
  return out;
}

const char* PolicyName(CandidateSet::Policy p) {
  switch (p) {
    case CandidateSet::Policy::kAuto:
      return "auto";
    case CandidateSet::Policy::kDense:
      return "dense";
    case CandidateSet::Policy::kCompressed:
      return "compressed";
  }
  return "?";
}

// --- Word-kernel lane differential: scalar vs AVX2 tables. ---

TEST(KernelDifferentialTest, AndWordsAgreesAcrossLanes) {
  const WordKernels& scalar = KernelsFor(SimdLevel::kScalar);
  const WordKernels& vec = KernelsFor(SimdLevel::kAvx2);
  if (DetectedSimdLevel() == SimdLevel::kScalar) {
    GTEST_LOG_(INFO) << "AVX2 not available; lane differential degenerate";
  }
  const size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 130};
  for (size_t n : kWordCounts) {
    for (double density : kDensities) {
      for (int rep = 0; rep < 5; ++rep) {
        const uint64_t seed =
            CaseSeed(n, static_cast<uint64_t>(density * 1000), rep);
        SCOPED_TRACE("and_words n=" + std::to_string(n) +
                     " seed=" + std::to_string(seed));
        Rng rng(seed);
        std::vector<uint64_t> dst(n), src(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = density >= 1.0   ? ~uint64_t{0}
                   : density <= 0.0 ? 0
                                    : rng.Next() & rng.Next();
          src[i] = rng.Next();
        }
        std::vector<uint64_t> a = dst, b = dst;
        bool a_changed = false, b_changed = false;
        const uint64_t a_live = scalar.and_words(a.data(), src.data(), n,
                                                 &a_changed);
        const uint64_t b_live = vec.and_words(b.data(), src.data(), n,
                                              &b_changed);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a_changed, b_changed);
        EXPECT_EQ(a_live, b_live);
      }
    }
  }
}

TEST(KernelDifferentialTest, PopcountWordsAgreesAcrossLanes) {
  const WordKernels& scalar = KernelsFor(SimdLevel::kScalar);
  const WordKernels& vec = KernelsFor(SimdLevel::kAvx2);
  const size_t kWordCounts[] = {0, 1, 3, 4, 5, 8, 9, 64, 65, 257};
  for (size_t n : kWordCounts) {
    for (int rep = 0; rep < 8; ++rep) {
      const uint64_t seed = CaseSeed(n, 77, rep);
      SCOPED_TRACE("popcount n=" + std::to_string(n) +
                   " seed=" + std::to_string(seed));
      Rng rng(seed);
      std::vector<uint64_t> words(n);
      size_t expected = 0;
      for (size_t i = 0; i < n; ++i) {
        words[i] = rng.Next() & rng.Next() & rng.Next();
        expected += static_cast<size_t>(__builtin_popcountll(words[i]));
      }
      EXPECT_EQ(scalar.popcount_words(words.data(), n), expected);
      EXPECT_EQ(vec.popcount_words(words.data(), n), expected);
    }
  }
}

// --- Representation differential: CandidateSet vs the flat oracle. ---

TEST(KernelDifferentialTest, AndCountForEachAgreeAcrossRepresentations) {
  for (size_t n : kBitSizes) {
    for (double density : kDensities) {
      for (int rep = 0; rep < 2; ++rep) {
        const uint64_t seed =
            CaseSeed(n, static_cast<uint64_t>(density * 1000) + 31, rep);
        SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                     std::to_string(seed));
        Rng rng(seed);
        const BitVector v = RandomVector(&rng, n, density);
        const BitVector m = RandomVector(&rng, n, rng.NextDouble());

        BitVector oracle = v;
        const bool oracle_changed = oracle.AndWith(m);
        const std::vector<uint32_t> oracle_bits = oracle.ToIndexVector();

        for (CandidateSet::Policy policy : kPolicies) {
          SCOPED_TRACE(PolicyName(policy));
          CandidateSet set(v, policy);
          EXPECT_EQ(set.Count(), v.Count());
          EXPECT_EQ(set.AndWith(m), oracle_changed);
          EXPECT_EQ(set.Count(), oracle.Count());
          EXPECT_EQ(set.Any(), oracle.Any());
          EXPECT_EQ(set.ToBitVector(), oracle);
          EXPECT_EQ(Collect(set), oracle_bits);
          for (int probe = 0; probe < 16; ++probe) {
            const size_t i = rng.NextBounded(n);
            EXPECT_EQ(set.Test(i), oracle.Test(i)) << "probe " << i;
          }
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, RepeatedAndsConvergeIdentically) {
  // Chains of shrinking ANDs — the solver's actual access pattern — with
  // auto-policy sets crossing the compression threshold mid-chain.
  for (size_t n : {513u, 4097u, 8192u}) {
    for (int rep = 0; rep < 4; ++rep) {
      const uint64_t seed = CaseSeed(n, 555, rep);
      SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                   std::to_string(seed));
      Rng rng(seed);
      BitVector oracle(n, true);
      CandidateSet sets[] = {CandidateSet(BitVector(n, true), kPolicies[0]),
                             CandidateSet(BitVector(n, true), kPolicies[1]),
                             CandidateSet(BitVector(n, true), kPolicies[2])};
      // Successively sparser masks force the occupancy through the
      // auto-compression threshold.
      for (double density : {0.6, 0.2, 0.02, 0.002}) {
        const BitVector mask = RandomVector(&rng, n, density);
        const bool oracle_changed = oracle.AndWith(mask);
        for (CandidateSet& set : sets) {
          SCOPED_TRACE(PolicyName(set.policy()));
          EXPECT_EQ(set.AndWith(mask), oracle_changed);
          EXPECT_EQ(set.Count(), oracle.Count());
          EXPECT_EQ(set.ToBitVector(), oracle);
        }
      }
      // The auto set must actually have compressed on a shrunken
      // occupancy (n >= 512 and final density ~0.002 guarantee it unless
      // the set drained entirely, which stays dense-representable).
      if (oracle.Any()) {
        EXPECT_TRUE(sets[0].compressed());
      }
      EXPECT_FALSE(sets[1].compressed());
      EXPECT_TRUE(sets[2].compressed());
    }
  }
}

TEST(KernelDifferentialTest, ClearBitsInAgreesAcrossRepresentations) {
  for (size_t n : {64u, 129u, 4096u, 8193u}) {
    for (double density : kDensities) {
      const uint64_t seed =
          CaseSeed(n, static_cast<uint64_t>(density * 1000) + 97, 0);
      SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                   std::to_string(seed));
      Rng rng(seed);
      const BitVector v = RandomVector(&rng, n, density);
      const BitVector target = RandomVector(&rng, n, 0.5);
      BitVector expected = target;
      expected.AndNotWith(v);
      for (CandidateSet::Policy policy : kPolicies) {
        SCOPED_TRACE(PolicyName(policy));
        const CandidateSet set(v, policy);
        BitVector got = target;
        set.ClearBitsIn(&got);
        EXPECT_EQ(got, expected);
      }
    }
  }
}

TEST(KernelDifferentialTest, MultiplyAgreesAcrossSelectorRepresentations) {
  for (size_t n : {65u, 513u, 4097u}) {
    for (double density : kDensities) {
      for (int rep = 0; rep < 2; ++rep) {
        const uint64_t seed =
            CaseSeed(n, static_cast<uint64_t>(density * 1000) + 13, rep);
        SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                     std::to_string(seed));
        Rng rng(seed);
        std::vector<std::pair<uint32_t, uint32_t>> entries;
        const size_t nnz = 4 * n;
        for (size_t e = 0; e < nnz; ++e) {
          entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                               static_cast<uint32_t>(rng.NextBounded(n)));
        }
        const BitMatrix a = BitMatrix::Build(n, n, std::move(entries));
        const BitVector x = RandomVector(&rng, n, density);

        BitVector expected(n);
        a.Multiply(x, &expected);

        BitVector via_hier(n);
        a.Multiply(HierarchicalBitVector(x), &via_hier);
        EXPECT_EQ(via_hier, expected);

        for (CandidateSet::Policy policy : kPolicies) {
          SCOPED_TRACE(PolicyName(policy));
          BitVector out(n);
          a.Multiply(CandidateSet(x, policy), &out);
          EXPECT_EQ(out, expected);
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, MutatorsAgreeAcrossRepresentations) {
  for (CandidateSet::Policy policy : kPolicies) {
    SCOPED_TRACE(PolicyName(policy));
    const size_t n = 5000;
    CandidateSet set(n, policy);
    EXPECT_EQ(set.Count(), 0u);
    EXPECT_FALSE(set.Any());

    set.SetAll();
    EXPECT_EQ(set.Count(), n);
    EXPECT_EQ(set.ToBitVector(), BitVector(n, true));

    set.ClearAll();
    EXPECT_EQ(set.Count(), 0u);
    EXPECT_EQ(set.ToBitVector(), BitVector(n));

    set.Set(0);
    set.Set(4096);
    set.Set(n - 1);
    set.Set(4096);  // idempotent
    EXPECT_EQ(set.Count(), 3u);
    EXPECT_TRUE(set.Test(0));
    EXPECT_TRUE(set.Test(4096));
    EXPECT_TRUE(set.Test(n - 1));
    EXPECT_FALSE(set.Test(1));
    EXPECT_EQ(Collect(set),
              (std::vector<uint32_t>{0, 4096, static_cast<uint32_t>(n - 1)}));
  }
}

TEST(KernelDifferentialTest, AutoPolicyHonorsMinimumWidth) {
  // Below kMinCompressBits a set never compresses, whatever its occupancy.
  CandidateSet small(CandidateSet::kMinCompressBits - 1,
                     CandidateSet::Policy::kAuto);
  small.Set(3);
  EXPECT_FALSE(small.compressed());
  // At the threshold width a sufficiently sparse set does.
  CandidateSet wide(CandidateSet::kMinCompressBits,
                    CandidateSet::Policy::kAuto);
  wide.Set(3);
  EXPECT_TRUE(wide.compressed());
}

// --- CountedAccumulator 16-bit lanes: exact widening at overflow. ---

TEST(KernelDifferentialTest, CountedAccumulatorWidensExactlyAtOverflow) {
  // 70000 rows all covering column 0 (crossing the uint16 maximum of
  // 65535), half of them also column 1 (staying narrow-range).
  const size_t rows = 70000;
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  entries.reserve(rows + rows / 2);
  for (uint32_t r = 0; r < rows; ++r) {
    entries.emplace_back(r, 0);
    if (r % 2 == 0) entries.emplace_back(r, 1);
  }
  const BitMatrix a = BitMatrix::Build(rows, 8, std::move(entries));

  CountedAccumulator acc;
  acc.Rebuild(a, BitVector(rows, true));
  EXPECT_TRUE(acc.wide());
  EXPECT_EQ(acc.count(0), 70000u);
  EXPECT_EQ(acc.count(1), 35000u);
  EXPECT_TRUE(acc.result().Test(0));
  EXPECT_TRUE(acc.result().Test(1));
  EXPECT_FALSE(acc.result().Test(2));

  // Retract the first 10000 rows; counts stay exact across the wide lanes.
  BitVector removed(rows);
  for (uint32_t r = 0; r < 10000; ++r) removed.Set(r);
  EXPECT_EQ(acc.Retract(a, removed), 0u);  // nothing drained yet
  EXPECT_EQ(acc.count(0), 60000u);
  EXPECT_EQ(acc.count(1), 30000u);

  // Retract everything else: both columns drain, in one call.
  BitVector rest(rows, true);
  rest.AndNotWith(removed);
  EXPECT_EQ(acc.Retract(a, rest), 2u);
  EXPECT_EQ(acc.count(0), 0u);
  EXPECT_FALSE(acc.result().Any());
}

TEST(KernelDifferentialTest, CountedAccumulatorNarrowStaysNarrow) {
  // A selection that never crosses 65535 keeps the 16-bit lanes, and the
  // counts match a straightforward recount.
  Rng rng(CaseSeed(42, 42, 42));
  const size_t rows = 500, cols = 40;
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (size_t e = 0; e < 4000; ++e) {
    entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(rows)),
                         static_cast<uint32_t>(rng.NextBounded(cols)));
  }
  const BitMatrix a = BitMatrix::Build(rows, cols, std::move(entries));
  const BitVector selected = RandomVector(&rng, rows, 0.7);

  CountedAccumulator acc;
  acc.Rebuild(a, selected);
  EXPECT_FALSE(acc.wide());

  std::vector<uint32_t> expected(cols, 0);
  selected.ForEachSetBit([&](uint32_t r) {
    for (uint32_t c : a.Row(r)) ++expected[c];
  });
  for (size_t c = 0; c < cols; ++c) {
    EXPECT_EQ(acc.count(c), expected[c]) << "col " << c;
    EXPECT_EQ(acc.result().Test(c), expected[c] > 0) << "col " << c;
  }
}

}  // namespace
}  // namespace sparqlsim::util
