// Differential property suite for delta-driven incremental evaluation
// (SolverOptions::incremental_eval): for random databases and patterns,
// solving with the counted-accumulator delta path must be *bit-identical*
// to solving with full re-evaluation — same candidate vectors, same
// fixpoint trajectory (rounds/evaluations/updates) — at every thread
// count, because a retracted accumulator product is exactly the Eq. (9)
// union a full evaluation computes. Also pins the counter algebra:
// delta_evals + full_evals == evaluations, delta_evals == 0 when the
// knob is off.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/validate.h"
#include "sparql/parser.h"

namespace sparqlsim::sim {
namespace {

SolverOptions MakeOptions(bool incremental, size_t threads) {
  SolverOptions options;
  options.incremental_eval = incremental;
  options.num_threads = threads;
  options.cache_sois = false;  // differential runs must actually solve
  options.cache_solutions = false;
  return options;
}

void ExpectCounterAlgebra(const SolveStats& stats, bool incremental) {
  EXPECT_EQ(stats.delta_evals + stats.full_evals, stats.evaluations);
  if (!incremental) {
    EXPECT_EQ(stats.delta_evals, 0u);
    EXPECT_EQ(stats.cols_cleared, 0u);
  }
}

class IncrementalDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalDifferential, RandomSoiBitIdenticalOnVsOffAcrossThreads) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 140;
  config.num_edges = 520;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  // Denser patterns than the database (6 nodes, 10 edges) take several
  // rounds to converge, so the delta path actually fires.
  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 3, seed + 500);
  Soi soi = BuildSoiFromGraph(pattern);

  Solution reference;  // incremental off, 1 thread
  bool have_reference = false;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (bool incremental : {false, true}) {
      SimEngine engine(&db, MakeOptions(incremental, threads));
      Solution solution = engine.Solve(soi);
      ExpectCounterAlgebra(solution.stats, incremental);
      if (!have_reference) {
        reference = std::move(solution);
        have_reference = true;
        std::string why;
        EXPECT_TRUE(SatisfiesSoi(soi, db, reference.candidates, &why)) << why;
        continue;
      }
      ASSERT_EQ(solution.candidates.size(), reference.candidates.size());
      for (size_t v = 0; v < reference.candidates.size(); ++v) {
        ASSERT_EQ(solution.candidates[v], reference.candidates[v])
            << "seed " << seed << ", threads " << threads << ", incremental "
            << incremental << ", var " << v;
      }
      // Identical trajectory, not merely the same fixpoint: the delta
      // path must not change what any round computes.
      EXPECT_EQ(solution.stats.rounds, reference.stats.rounds);
      EXPECT_EQ(solution.stats.evaluations, reference.stats.evaluations);
      EXPECT_EQ(solution.stats.updates, reference.stats.updates);
    }
  }
}

TEST_P(IncrementalDifferential, PruneReportsIdenticalOnVsOff) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 90;
  config.num_edges = 350;
  config.num_labels = 2;
  config.seed = seed + 77;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  // OPTIONAL + UNION exercise subordinations and branch batching on top
  // of the matrix inequalities.
  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { { ?x <p0> ?y . ?y <p1> ?z . ?z <p0> ?x . "
      "OPTIONAL { ?y <p0> ?w . } } UNION { ?a <p1> ?b . ?b <p1> ?a . } }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  PruneReport off = SimEngine(&db, MakeOptions(false, 1)).Prune(query);
  ExpectCounterAlgebra(off.stats, /*incremental=*/false);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    PruneReport on = SimEngine(&db, MakeOptions(true, threads)).Prune(query);
    ExpectCounterAlgebra(on.stats, /*incremental=*/true);
    EXPECT_EQ(on.kept_triples, off.kept_triples) << "seed " << seed;
    ASSERT_EQ(on.var_candidates.size(), off.var_candidates.size());
    for (const auto& [var, bits] : off.var_candidates) {
      auto it = on.var_candidates.find(var);
      ASSERT_NE(it, on.var_candidates.end()) << var;
      EXPECT_EQ(it->second, bits)
          << "seed " << seed << ", var " << var << ", " << threads
          << " threads";
    }
    EXPECT_EQ(on.stats.rounds, off.stats.rounds);
    EXPECT_EQ(on.stats.evaluations, off.stats.evaluations);
    EXPECT_EQ(on.stats.updates, off.stats.updates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferential,
                         ::testing::Range<uint64_t>(1, 10));  // 9 seeds

// The forced eval-mode ablations must stay differential-clean too: under
// kRowWise the delta path replaces repeat row evaluations; under
// kColumnWise no accumulator is ever built and the knob is inert.
TEST(IncrementalEvalModes, ForcedModesBitIdenticalAndCountersConsistent) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 130;
  config.num_edges = 650;
  config.num_labels = 2;
  config.seed = 11;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(6, 5, 2, 901);
  Soi soi = BuildSoiFromGraph(pattern);

  for (auto mode : {SolverOptions::EvalMode::kRowWise,
                    SolverOptions::EvalMode::kColumnWise,
                    SolverOptions::EvalMode::kDynamic}) {
    SolverOptions off = MakeOptions(false, 1);
    off.eval_mode = mode;
    SolverOptions on = MakeOptions(true, 1);
    on.eval_mode = mode;
    Solution s_off = SimEngine(&db, off).Solve(soi);
    Solution s_on = SimEngine(&db, on).Solve(soi);
    ExpectCounterAlgebra(s_off.stats, false);
    ExpectCounterAlgebra(s_on.stats, true);
    ASSERT_EQ(s_on.candidates.size(), s_off.candidates.size());
    for (size_t v = 0; v < s_off.candidates.size(); ++v) {
      EXPECT_EQ(s_on.candidates[v], s_off.candidates[v]);
    }
    EXPECT_EQ(s_on.stats.rounds, s_off.stats.rounds);
    EXPECT_EQ(s_on.stats.updates, s_off.stats.updates);
    if (mode == SolverOptions::EvalMode::kColumnWise) {
      EXPECT_EQ(s_on.stats.delta_evals, 0u);  // no row path, no accumulator
    }
  }
}

// Restricted solves (the strong-simulation ball path) start below the
// all-ones assignment via `initial`; monotone shrinking still holds, so
// the delta path must stay exact there as well.
TEST(IncrementalRestrictedSolves, InitialAssignmentRespected) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 80;
  config.num_edges = 300;
  config.num_labels = 2;
  config.seed = 23;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(5, 3, 2, 321);
  Soi soi = BuildSoiFromGraph(pattern);

  // Restrict every variable to the even nodes.
  std::vector<util::BitVector> initial(soi.NumVars(),
                                       util::BitVector(db.NumNodes()));
  for (auto& v : initial) {
    for (size_t i = 0; i < db.NumNodes(); i += 2) v.Set(i);
  }

  Solution off =
      SolveSoi(soi, db, MakeOptions(false, 1), &initial);
  Solution on = SolveSoi(soi, db, MakeOptions(true, 1), &initial);
  ASSERT_EQ(on.candidates.size(), off.candidates.size());
  for (size_t v = 0; v < off.candidates.size(); ++v) {
    EXPECT_EQ(on.candidates[v], off.candidates[v]) << "var " << v;
    EXPECT_TRUE(on.candidates[v].IsSubsetOf(initial[v]));
  }
  EXPECT_EQ(on.stats.rounds, off.stats.rounds);
  EXPECT_EQ(on.stats.updates, off.stats.updates);
}

// --- Kernel-mode axis: the candidate-set representation switch
// (SolverOptions::kernel_mode) composes with the incremental and thread
// axes. The dense mode is the oracle; auto and compressed must reproduce
// its solutions AND its semantic trajectory (rounds, evaluations,
// updates, eval-kind splits) exactly. Only the representation counters
// (compressed_ops, repr_*, blocks_skipped) may differ across modes. ---

SolverOptions MakeKernelOptions(SolverOptions::KernelMode kernel,
                                bool incremental, size_t threads) {
  SolverOptions options = MakeOptions(incremental, threads);
  options.kernel_mode = kernel;
  return options;
}

class KernelModeDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelModeDifferential, SolutionsAndTrajectoriesBitIdentical) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 140;
  config.num_edges = 520;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 3, seed + 500);
  Soi soi = BuildSoiFromGraph(pattern);

  const SolverOptions ref_options = MakeKernelOptions(
      SolverOptions::KernelMode::kDense, /*incremental=*/false, 1);
  Solution reference = SimEngine(&db, ref_options).Solve(soi);
  std::string why;
  EXPECT_TRUE(SatisfiesSoi(soi, db, reference.candidates, &why)) << why;

  for (auto kernel : {SolverOptions::KernelMode::kAuto,
                      SolverOptions::KernelMode::kDense,
                      SolverOptions::KernelMode::kCompressed}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (bool incremental : {false, true}) {
        SimEngine engine(&db,
                         MakeKernelOptions(kernel, incremental, threads));
        Solution solution = engine.Solve(soi);
        ExpectCounterAlgebra(solution.stats, incremental);
        ASSERT_EQ(solution.candidates.size(), reference.candidates.size());
        for (size_t v = 0; v < reference.candidates.size(); ++v) {
          ASSERT_EQ(solution.candidates[v], reference.candidates[v])
              << "seed " << seed << ", kernel " << static_cast<int>(kernel)
              << ", threads " << threads << ", incremental " << incremental
              << ", var " << v;
        }
        // The representation layer must not perturb what any round
        // computes: full semantic trajectory, not just the fixpoint.
        EXPECT_EQ(solution.stats.rounds, reference.stats.rounds);
        EXPECT_EQ(solution.stats.evaluations, reference.stats.evaluations);
        EXPECT_EQ(solution.stats.updates, reference.stats.updates);
        EXPECT_EQ(solution.stats.row_evals + solution.stats.col_evals +
                      solution.stats.delta_evals,
                  reference.stats.row_evals + reference.stats.col_evals)
            << "eval-kind split drifted across representations";
        if (kernel == SolverOptions::KernelMode::kDense) {
          EXPECT_EQ(solution.stats.compressed_ops, 0u);
          EXPECT_EQ(solution.stats.repr_compressions, 0u);
        }
      }
    }
  }
}

TEST_P(KernelModeDifferential, PruneReportsIdenticalAcrossKernelModes) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 90;
  config.num_edges = 350;
  config.num_labels = 2;
  config.seed = seed + 177;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { { ?x <p0> ?y . ?y <p1> ?z . ?z <p0> ?x . "
      "OPTIONAL { ?y <p0> ?w . } } UNION { ?a <p1> ?b . ?b <p1> ?a . } }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  PruneReport reference =
      SimEngine(&db, MakeKernelOptions(SolverOptions::KernelMode::kDense,
                                       true, 1))
          .Prune(query);
  for (auto kernel : {SolverOptions::KernelMode::kAuto,
                      SolverOptions::KernelMode::kCompressed}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      PruneReport got =
          SimEngine(&db, MakeKernelOptions(kernel, true, threads))
              .Prune(query);
      EXPECT_EQ(got.kept_triples, reference.kept_triples) << "seed " << seed;
      ASSERT_EQ(got.var_candidates.size(), reference.var_candidates.size());
      for (const auto& [var, bits] : reference.var_candidates) {
        auto it = got.var_candidates.find(var);
        ASSERT_NE(it, got.var_candidates.end()) << var;
        EXPECT_EQ(it->second, bits)
            << "seed " << seed << ", var " << var << ", kernel "
            << static_cast<int>(kernel) << ", " << threads << " threads";
      }
      EXPECT_EQ(got.stats.rounds, reference.stats.rounds);
      EXPECT_EQ(got.stats.evaluations, reference.stats.evaluations);
      EXPECT_EQ(got.stats.updates, reference.stats.updates);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelModeDifferential,
                         ::testing::Range<uint64_t>(1, 6));  // 5 seeds

// Forced-compressed solves must actually run compressed kernels, and the
// dense oracle must never touch them — otherwise the axis above would
// vacuously pass with an inert knob.
TEST(KernelModeEngagement, CompressedOpsFireUnderForcedCompression) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 900;  // wide enough to cross kMinCompressBits
  config.num_edges = 2600;
  config.num_labels = 2;
  config.seed = 9;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  size_t compressed_ops = 0, auto_compressions = 0;
  for (uint64_t pattern_seed = 1; pattern_seed <= 4; ++pattern_seed) {
    graph::Graph pattern = datagen::MakeRandomPattern(6, 5, 2, pattern_seed);
    Soi soi = BuildSoiFromGraph(pattern);

    Solution forced =
        SimEngine(&db, MakeKernelOptions(
                           SolverOptions::KernelMode::kCompressed, true, 1))
            .Solve(soi);
    compressed_ops += forced.stats.compressed_ops;

    Solution dense =
        SimEngine(&db,
                  MakeKernelOptions(SolverOptions::KernelMode::kDense, true, 1))
            .Solve(soi);
    EXPECT_EQ(dense.stats.compressed_ops, 0u);
    EXPECT_EQ(dense.stats.repr_compressions, 0u);
    EXPECT_EQ(dense.stats.repr_decompressions, 0u);

    Solution aut =
        SimEngine(&db,
                  MakeKernelOptions(SolverOptions::KernelMode::kAuto, true, 1))
            .Solve(soi);
    auto_compressions += aut.stats.repr_compressions;
  }
  EXPECT_GT(compressed_ops, 0u)
      << "forced-compressed solves never ran a compressed kernel";
  // Pruning workloads collapse candidate sets, so the auto policy should
  // compress at least some of them across four patterns.
  EXPECT_GT(auto_compressions, 0u)
      << "the auto policy never engaged compression on eroding sets";
}

// On a workload that iterates (a cyclic pattern over the movie graph),
// the delta path must actually engage — otherwise this whole suite
// would vacuously pass with an inert knob.
TEST(IncrementalEngagement, DeltaEvalsFireOnIterativeWorkloads) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 200;
  config.num_edges = 700;
  config.num_labels = 2;
  config.seed = 5;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  size_t total_delta = 0;
  for (uint64_t pattern_seed = 1; pattern_seed <= 6; ++pattern_seed) {
    graph::Graph pattern = datagen::MakeRandomPattern(6, 5, 2, pattern_seed);
    Soi soi = BuildSoiFromGraph(pattern);
    Solution s = SimEngine(&db, MakeOptions(true, 1)).Solve(soi);
    total_delta += s.stats.delta_evals;
  }
  EXPECT_GT(total_delta, 0u)
      << "the incremental path never engaged on any iterative workload";
}

}  // namespace
}  // namespace sparqlsim::sim
