#include "util/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace sparqlsim::util {

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t resolved = ResolveThreadCount(num_threads);
  workers_.reserve(resolved);
  for (size_t i = 0; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by the caller and every helper task; kept alive past the
  // caller's return by the helper closures, so a helper that only gets
  // scheduled after all iterations are done finds next >= n and exits
  // without touching `fn`.
  struct State {
    explicit State(size_t total, const std::function<void(size_t)>& f)
        : n(total), fn(&f) {}
    const size_t n;
    const std::function<void(size_t)>* fn;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>(n, fn);

  auto drain = [state] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      (*state->fn)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };

  // The caller is one executor; at most n - 1 helpers can do useful work.
  size_t helpers = std::min(pool->NumThreads(), n - 1);
  for (size_t h = 0; h < helpers; ++h) pool->Submit(drain);
  drain();

  // All iterations are claimed once drain() returns; wait for the ones
  // still executing on helper threads. Helpers that never ran hold no
  // iterations, so this wait never depends on queue progress (no deadlock
  // under nesting).
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= state->n;
  });
}

}  // namespace sparqlsim::util
