#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace sparqlsim::sparql {

/// One position of a triple pattern: a variable, an IRI constant, or a
/// literal constant.
///
/// Variables are stored without the leading '?'. IRIs are stored without
/// angle brackets (after PREFIX expansion), literals without quotes.
class Term {
 public:
  enum class Kind { kVariable, kIri, kLiteral };

  /// Factory constructors; text conventions as documented on the class.
  static Term Var(std::string name) {
    return Term(Kind::kVariable, std::move(name));
  }
  static Term Iri(std::string iri) { return Term(Kind::kIri, std::move(iri)); }
  static Term Literal(std::string value) {
    return Term(Kind::kLiteral, std::move(value));
  }

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsConstant() const { return kind_ != Kind::kVariable; }
  bool IsLiteral() const { return kind_ == Kind::kLiteral; }

  /// Variable name / IRI text / literal text, depending on kind().
  const std::string& text() const { return text_; }

  /// SPARQL surface form: `?name`, `<iri>`, or `"literal"`.
  std::string ToString() const;

  friend bool operator==(const Term&, const Term&) = default;

 private:
  Term(Kind kind, std::string text) : kind_(kind), text_(std::move(text)) {}

  Kind kind_;
  std::string text_;
};

/// A SPARQL triple pattern (s, p, o). The predicate must be an IRI: the
/// paper's data model treats predicates as a fixed edge-label alphabet
/// (Sect. 2), so predicate variables are rejected at parse time.
struct TriplePattern {
  Term subject;
  Term predicate;
  Term object;

  std::string ToString() const;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

}  // namespace sparqlsim::sparql
