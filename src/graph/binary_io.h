#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/graph_database.h"
#include "util/status.h"

namespace sparqlsim::graph {

/// Compact binary serialization of a graph database — the at-rest format
/// in the spirit of the BitMat storage the paper connects to (Sect. 3.3).
///
/// Two format versions coexist (the version byte after the shared
/// "SQSIMDB" magic dispatches; both specified byte-for-byte in
/// docs/DATASETS.md):
///
///  * SQSIMDB1 — dictionaries plus, per predicate, the forward adjacency
///    rows with delta-varint-encoded column indices. Always loaded eagerly.
///  * SQSIMDB2 — footer-indexed: dictionary block, then one independently
///    addressable, checksummed block per predicate holding the forward AND
///    backward matrices as GAP/RLE-compressed rows (util::GapCodec), with
///    a per-predicate directory of offsets/lengths/row counts/checksums.
///    mmap-able: LoadFile maps the file and materializes a predicate's
///    BitMatrix slabs on first touch (GraphDatabase's backing seam),
///    evictable under a resident-byte budget.
///
/// Loading either version reproduces identical node/predicate ids, which
/// is what lets `sparqlsim_ingest` pre-convert real dumps once and every
/// bench load them via `--db`.
class BinaryIo {
 public:
  /// How LoadFile opens a version-2 file (version-1 files are always
  /// eager; these options are ignored for them).
  struct LoadOptions {
    /// Materialize every predicate at open and drop the backing — the
    /// database then behaves exactly like a v1 load (no pins, no budget).
    bool eager = false;
    /// Resident-byte budget for lazy opens; 0 = unbounded.
    size_t resident_budget_bytes = 0;
  };

  /// Writes `db` to `out` in format version 1. The encoding is a pure
  /// function of the database content, so equal databases serialize
  /// byte-identically.
  static void Save(const GraphDatabase& db, std::ostream& out);
  /// Writes `db` to `path` in format version 1 (tmp file + atomic rename:
  /// the destination either holds the complete database or is untouched).
  static util::Status SaveFile(const GraphDatabase& db,
                               const std::string& path);

  /// Writes `db` to `out` in format version 2 (SQSIMDB2). Also a pure
  /// function of the database content — the thread count of the overlapped
  /// file writer never changes the bytes.
  static void SaveV2(const GraphDatabase& db, std::ostream& out);
  /// Writes `db` to `path` in format version 2, overlapping per-predicate
  /// block compression (on `threads` workers; 0 = hardware concurrency)
  /// with sequential file writes, tmp file + atomic rename as SaveFile.
  static util::Status SaveV2File(const GraphDatabase& db,
                                 const std::string& path, size_t threads = 0);

  /// Reads a database of either version from a stream (necessarily eager —
  /// there is no file to keep mapped). Rejects foreign files (bad magic),
  /// files written by a newer format version, and truncated/corrupt
  /// streams with a descriptive error — it never relies on stream state or
  /// throws.
  static util::Result<GraphDatabase> Load(std::istream& in);
  /// Reads a database from `path`. Version-2 files are mmap-ed and loaded
  /// lazily per predicate unless `options.eager` is set.
  static util::Result<GraphDatabase> LoadFile(const std::string& path,
                                              const LoadOptions& options);
  static util::Result<GraphDatabase> LoadFile(const std::string& path) {
    return LoadFile(path, LoadOptions());
  }

 private:
  /// SQSIMDB2 open path (footer/directory validation, lazy slot assembly);
  /// nested so it shares BinaryIo's friend access to GraphDatabase.
  class V2Loader;
};

}  // namespace sparqlsim::graph
