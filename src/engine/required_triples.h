#pragma once

#include <vector>

#include "engine/evaluator.h"
#include "graph/graph_database.h"
#include "graph/triple.h"
#include "sparql/ast.h"

namespace sparqlsim::engine {

/// Computes the set of database triples witnessed by at least one match of
/// the query — the "No. Req. Triples" column of Table 3 in the paper. This
/// is the information-theoretic lower bound any sound pruning must keep;
/// comparing it against the dual-simulation prune quantifies the
/// over-approximation (the paper's L1 keeps ~200x more than required).
///
/// Implementation: the query is split into union-free branches (Prop. 3),
/// every branch is evaluated exactly, and for every solution row each
/// triple pattern whose endpoints are bound in the row contributes its
/// instantiated triple (checked to exist — patterns under OPTIONAL whose
/// variables happen to be bound from the mandatory side do not count
/// unless the data edge is real).
///
/// Cost caveat: this enumerates every solution of every branch exactly, so
/// it is an analysis/report tool for test- and Table-3-scale inputs, not
/// part of the query-time pruning path.
std::vector<graph::Triple> CollectRequiredTriples(
    const sparql::Query& query, const graph::GraphDatabase& db,
    const Evaluator& evaluator);

}  // namespace sparqlsim::engine
