#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sparqlsim::util {

/// Deterministic 64-bit PRNG (splitmix64).
///
/// All synthetic data generators take a Rng seeded explicitly, so every
/// dataset, query workload, and property test in this repository is
/// reproducible bit-for-bit from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

 private:
  uint64_t state_;
};

/// Samples ranks from a Zipf distribution with exponent `s` over
/// {0, ..., n-1}; rank 0 is the most likely. Used by the DBpedia-like
/// generator to reproduce the heavily skewed predicate-selectivity profile
/// of real knowledge graphs.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sparqlsim::util
