#include <cassert>
#include <sstream>

#include "sim/soi.h"

namespace sparqlsim::sim {

namespace {

/// Incremental SOI construction with a union-find over SOI variables.
///
/// The paper's renaming discipline (Sect. 4.3/4.4) maps every *occurrence
/// group* of a query variable to its own SOI variable. We realize renaming
/// structurally: each BGP mints fresh SOI ids, and combination either
/// unifies two ids (Lemma 3: a variable mandatory on both sides of AND) or
/// records a subordination inequality (Lemma 4/5: optional occurrences sit
/// below their closest mandatory anchor). Nested optionals produce the
/// closest-occurrence chains of Sect. 4.4 automatically, because inner
/// combinations subordinate before outer ones.
class Builder {
 public:
  explicit Builder(const graph::GraphDatabase* db) : db_(db) {}

  Soi Run(const sparql::Pattern& pattern) {
    Env env = BuildRec(pattern);
    return Finish(env);
  }

  Soi RunGraph(const graph::Graph& pattern) {
    for (uint32_t v = 0; v < pattern.NumNodes(); ++v) {
      NewVar("v" + std::to_string(v), std::nullopt, /*known=*/true);
    }
    for (const graph::LabeledEdge& e : pattern.edges()) {
      AddEdge(e.from, e.label, e.to);
    }
    Env env;
    for (uint32_t v = 0; v < pattern.NumNodes(); ++v) {
      env["v" + std::to_string(v)] = Entry{v, {}};
    }
    return Finish(env);
  }

 private:
  /// Visible occurrence groups of one query variable at the current level:
  /// either a mandatory anchor (all optional groups already subordinated
  /// and closed) or a list of mutually unordered optional groups.
  struct Entry {
    std::optional<uint32_t> mandatory;
    std::vector<uint32_t> groups;
  };
  using Env = std::map<std::string, Entry>;

  uint32_t NewVar(std::string name, std::optional<uint32_t> constant,
                  bool known) {
    uint32_t id = static_cast<uint32_t>(soi_.var_names.size());
    soi_.var_names.push_back(std::move(name));
    soi_.constants.push_back(constant);
    soi_.unsatisfiable_vars.push_back(!known);
    parent_.push_back(id);
    return id;
  }

  uint32_t Find(uint32_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Unify(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

  void AddEdge(uint32_t s, uint32_t p, uint32_t o) {
    soi_.edges.push_back({s, p, o});
    // Eq. (11): object <= subject *b F_p ; subject <= object *b B_p.
    soi_.matrix_ineqs.push_back({o, s, p, /*forward=*/true});
    soi_.matrix_ineqs.push_back({s, o, p, /*forward=*/false});
  }

  uint32_t ResolvePredicate(const sparql::Term& term) {
    assert(term.kind() == sparql::Term::Kind::kIri);
    auto id = db_->predicates().Lookup(term.text());
    return id ? *id : kEmptyPredicate;
  }

  Env BuildBgp(const sparql::Pattern& bgp) {
    Env env;
    std::map<std::string, uint32_t> local;  // term key -> SOI id
    auto intern = [&](const sparql::Term& term) {
      std::string key = term.ToString();
      auto it = local.find(key);
      if (it != local.end()) return it->second;
      uint32_t id;
      if (term.IsVariable()) {
        id = NewVar(term.text(), std::nullopt, /*known=*/true);
        env[term.text()] = Entry{id, {}};
      } else {
        auto node = db_->nodes().Lookup(term.text());
        id = NewVar(key, node, /*known=*/node.has_value());
      }
      local.emplace(std::move(key), id);
      return id;
    };

    for (const sparql::TriplePattern& t : bgp.triples()) {
      uint32_t s = intern(t.subject);
      uint32_t o = intern(t.object);
      AddEdge(s, ResolvePredicate(t.predicate), o);
    }
    return env;
  }

  void Subordinate(uint32_t lower, uint32_t upper) {
    soi_.sub_ineqs.push_back({lower, upper});
  }

  Env BuildRec(const sparql::Pattern& p) {
    switch (p.kind()) {
      case sparql::PatternKind::kBgp:
        return BuildBgp(p);
      case sparql::PatternKind::kJoin: {
        Env left = BuildRec(p.left());
        Env right = BuildRec(p.right());
        // Lemma 3 / Lemma 5: mandatory-mandatory occurrences unify; an
        // optional group meeting a mandatory anchor is subordinated.
        for (auto& [var, rhs] : right) {
          auto it = left.find(var);
          if (it == left.end()) {
            left.emplace(var, std::move(rhs));
            continue;
          }
          Entry& lhs = it->second;
          if (lhs.mandatory && rhs.mandatory) {
            Unify(*lhs.mandatory, *rhs.mandatory);
          } else if (lhs.mandatory) {
            for (uint32_t g : rhs.groups) Subordinate(g, *lhs.mandatory);
          } else if (rhs.mandatory) {
            for (uint32_t g : lhs.groups) Subordinate(g, *rhs.mandatory);
            lhs = rhs;
          } else {
            for (uint32_t g : rhs.groups) lhs.groups.push_back(g);
          }
        }
        return left;
      }
      case sparql::PatternKind::kOptional: {
        Env left = BuildRec(p.left());
        Env right = BuildRec(p.right());
        // Lemma 4 / Sect. 4.4: occurrences inside the optional side are
        // subordinated to a mandatory anchor on the left if one exists;
        // otherwise they remain independent groups (the cross-product
        // behaviour of non-well-designed patterns).
        for (auto& [var, rhs] : right) {
          auto it = left.find(var);
          if (it == left.end()) {
            Entry demoted;
            if (rhs.mandatory) demoted.groups.push_back(*rhs.mandatory);
            for (uint32_t g : rhs.groups) demoted.groups.push_back(g);
            left.emplace(var, std::move(demoted));
            continue;
          }
          Entry& lhs = it->second;
          if (lhs.mandatory) {
            if (rhs.mandatory) Subordinate(*rhs.mandatory, *lhs.mandatory);
            for (uint32_t g : rhs.groups) Subordinate(g, *lhs.mandatory);
          } else {
            if (rhs.mandatory) lhs.groups.push_back(*rhs.mandatory);
            for (uint32_t g : rhs.groups) lhs.groups.push_back(g);
          }
        }
        return left;
      }
      case sparql::PatternKind::kUnion:
        assert(false &&
               "UNION must be removed via UnionNormalForm before SOI "
               "construction");
        return {};
    }
    return {};
  }

  /// Applies the union-find to all recorded ids, compacts variables, drops
  /// degenerate subordinations, and disambiguates display names.
  Soi Finish(const Env& env) {
    size_t raw = soi_.var_names.size();
    std::vector<uint32_t> remap(raw, 0);
    std::vector<bool> is_root(raw, false);
    for (uint32_t v = 0; v < raw; ++v) is_root[Find(v)] = true;

    // The mandatory anchor of each query variable keeps the plain name
    // (the paper renames only the optional occurrence groups to v_Q2 ...).
    std::map<std::string, uint32_t> plain_name_owner;
    for (const auto& [var, entry] : env) {
      if (entry.mandatory) plain_name_owner[var] = Find(*entry.mandatory);
    }

    Soi out;
    std::map<std::string, int> name_uses;
    for (uint32_t v = 0; v < raw; ++v) {
      if (!is_root[v]) continue;
      remap[v] = static_cast<uint32_t>(out.var_names.size());
      std::string name = soi_.var_names[v];
      auto owner = plain_name_owner.find(name);
      if (owner != plain_name_owner.end() && owner->second != v) {
        // Surrogate occurrence group: the paper's renamed form.
        name += "@" + std::to_string(++name_uses[name] + 1);
      } else if (owner == plain_name_owner.end()) {
        int uses = ++name_uses[name];
        if (uses > 1) name += "@" + std::to_string(uses);
      }
      out.var_names.push_back(std::move(name));
      out.constants.push_back(soi_.constants[v]);
      out.unsatisfiable_vars.push_back(soi_.unsatisfiable_vars[v]);
    }
    // Merge constant/unsatisfiable info of non-roots into roots.
    for (uint32_t v = 0; v < raw; ++v) {
      uint32_t root = remap[Find(v)];
      if (soi_.constants[v]) {
        if (out.constants[root] && *out.constants[root] != *soi_.constants[v]) {
          out.unsatisfiable_vars[root] = true;  // conflicting constants
        } else {
          out.constants[root] = soi_.constants[v];
        }
      }
      if (soi_.unsatisfiable_vars[v]) out.unsatisfiable_vars[root] = true;
    }

    auto map_id = [&](uint32_t v) { return remap[Find(v)]; };
    for (const Soi::MatrixIneq& m : soi_.matrix_ineqs) {
      out.matrix_ineqs.push_back(
          {map_id(m.lhs), map_id(m.rhs), m.predicate, m.forward});
    }
    for (const Soi::SubIneq& s : soi_.sub_ineqs) {
      uint32_t l = map_id(s.lhs);
      uint32_t r = map_id(s.rhs);
      if (l != r) out.sub_ineqs.push_back({l, r});
    }
    for (const Soi::Edge& e : soi_.edges) {
      out.edges.push_back(
          {map_id(e.subject_var), e.predicate, map_id(e.object_var)});
    }
    for (const auto& [var, entry] : env) {
      std::vector<uint32_t>& ids = out.query_var_groups[var];
      if (entry.mandatory) {
        ids.push_back(map_id(*entry.mandatory));
      } else {
        for (uint32_t g : entry.groups) ids.push_back(map_id(g));
      }
    }
    return out;
  }

  const graph::GraphDatabase* db_;
  Soi soi_;
  std::vector<uint32_t> parent_;
};

}  // namespace

Soi BuildSoiFromGraph(const graph::Graph& pattern) {
  Builder builder(nullptr);
  return builder.RunGraph(pattern);
}

Soi BuildSoiFromPattern(const sparql::Pattern& pattern,
                        const graph::GraphDatabase& db) {
  assert(pattern.IsUnionFree());
  Builder builder(&db);
  return builder.Run(pattern);
}

std::string Soi::ToString(const graph::GraphDatabase& db) const {
  std::ostringstream out;
  for (const MatrixIneq& m : matrix_ineqs) {
    out << var_names[m.lhs] << " <= " << var_names[m.rhs] << " x "
        << (m.forward ? "F_" : "B_")
        << (m.predicate == kEmptyPredicate ? "(absent)"
                                           : db.predicates().Name(m.predicate))
        << "\n";
  }
  for (const SubIneq& s : sub_ineqs) {
    out << var_names[s.lhs] << " <= " << var_names[s.rhs] << "\n";
  }
  return out.str();
}

}  // namespace sparqlsim::sim
