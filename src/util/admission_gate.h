#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace sparqlsim::util {

/// A counting gate that bounds how many units of work are admitted but not
/// yet finished. This is the backpressure primitive of the query-service
/// layer: producers block in Acquire() once `limit` units are in flight,
/// instead of growing an unbounded queue, and consumers Release() as work
/// completes. WaitIdle() is the matching drain barrier.
///
/// Two priority classes keep bulk traffic from starving interactive work:
/// a kHigh producer waits only for a free slot, while a kLow producer
/// additionally yields to every high-priority producer currently waiting —
/// freed slots therefore go to the high class first, and a steady stream
/// of low-priority bulk submissions can never push an interactive query's
/// wait beyond one slot turnaround. Within a class, the wakeup order is
/// whatever the condition variable gives (no FIFO guarantee).
///
/// Deliberately not a semaphore initialized to `limit`: the gate also knows
/// when it is *idle* (nothing admitted), which a counting semaphore cannot
/// express without a second primitive.
class AdmissionGate {
 public:
  enum class Priority { kHigh, kLow };

  /// Per-class admission counters. `blocked` counts Acquire() calls that
  /// had to park, incremented as parking begins — a currently-waiting
  /// producer is visible in the stats. Wait time is only accumulated by
  /// those calls, so `wait_seconds / blocked` is the mean queueing delay
  /// of the class under contention.
  struct ClassStats {
    size_t admitted = 0;
    size_t blocked = 0;
    double wait_seconds = 0.0;
  };
  struct Stats {
    ClassStats high;
    ClassStats low;
  };

  /// `limit` = max units in flight; 0 is clamped to 1 (a gate that admits
  /// nothing would deadlock its first producer).
  explicit AdmissionGate(size_t limit) : limit_(limit == 0 ? 1 : limit) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Blocks until the class may take a slot, then takes it.
  void Acquire(Priority priority = Priority::kHigh) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (Admissible(priority)) {
      ++in_use_;
      ++StatsFor(priority).admitted;
      return;
    }
    const auto blocked_at = std::chrono::steady_clock::now();
    ClassStats& cls = StatsFor(priority);
    ++cls.blocked;
    if (priority == Priority::kHigh) ++high_waiting_;
    cv_.wait(lock, [&] { return Admissible(priority); });
    if (priority == Priority::kHigh) --high_waiting_;
    ++in_use_;
    ++cls.admitted;
    cls.wait_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - blocked_at)
                            .count();
  }

  /// Takes a slot iff the class may have one right now.
  bool TryAcquire(Priority priority = Priority::kHigh) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!Admissible(priority)) return false;
    ++in_use_;
    ++StatsFor(priority).admitted;
    return true;
  }

  /// Returns a slot taken by Acquire()/TryAcquire().
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_use_;
    }
    // Wake both blocked producers (slot free) and drain waiters (maybe
    // idle); the predicates sort out who proceeds.
    cv_.notify_all();
  }

  /// Blocks until no slot is in use.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return in_use_ == 0; });
  }

  size_t InUse() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_use_;
  }

  size_t limit() const { return limit_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  /// Admission predicate (mutex_ held): high needs a slot; low needs a
  /// slot *and* no high producer waiting for one.
  bool Admissible(Priority priority) const {
    if (in_use_ >= limit_) return false;
    return priority == Priority::kHigh || high_waiting_ == 0;
  }

  ClassStats& StatsFor(Priority priority) {
    return priority == Priority::kHigh ? stats_.high : stats_.low;
  }

  const size_t limit_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t in_use_ = 0;
  size_t high_waiting_ = 0;
  Stats stats_;
};

}  // namespace sparqlsim::util
