// Direct unit tests of the two baseline algorithms on hand-computable
// instances (the equivalence sweep in baselines_test.cc covers the random
// case; these pin concrete behaviours and counters).

#include <gtest/gtest.h>

#include "sim/hhk_baseline.h"
#include "sim/ma_baseline.h"
#include "sim/soi.h"

namespace sparqlsim::sim {
namespace {

graph::GraphDatabase TwoChains() {
  // a1 -e-> b1 -e-> c1   and   a2 -e-> b2 (shorter chain).
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("a1", "e", "b1").ok());
  EXPECT_TRUE(b.AddTriple("b1", "e", "c1").ok());
  EXPECT_TRUE(b.AddTriple("a2", "e", "b2").ok());
  return std::move(b).Build();
}

graph::Graph TwoEdgePath(const graph::GraphDatabase& db) {
  graph::Graph g(3);  // v0 -e-> v1 -e-> v2
  uint32_t e = *db.predicates().Lookup("e");
  g.AddEdge(0, e, 1);
  g.AddEdge(1, e, 2);
  return g;
}

TEST(MaBaselineTest, TwoChainResult) {
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern = TwoEdgePath(db);
  Solution s = MaDualSimulation(pattern, db);
  auto id = [&](const char* n) { return *db.nodes().Lookup(n); };
  // Only the long chain supports the 2-edge path pattern.
  EXPECT_EQ(s.candidates[0].ToIndexVector(),
            (std::vector<uint32_t>{id("a1")}));
  EXPECT_EQ(s.candidates[1].ToIndexVector(),
            (std::vector<uint32_t>{id("b1")}));
  EXPECT_EQ(s.candidates[2].ToIndexVector(),
            (std::vector<uint32_t>{id("c1")}));
}

TEST(MaBaselineTest, SweepCountIsAtLeastTwo) {
  // Ma's passive strategy always needs a final full sweep to certify
  // stability, so a run that removes anything takes >= 2 sweeps.
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern = TwoEdgePath(db);
  Solution s = MaDualSimulation(pattern, db);
  EXPECT_GE(s.stats.rounds, 2u);
  EXPECT_GT(s.stats.updates, 0u);
}

TEST(MaBaselineTest, EmptyPatternLabel) {
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern(2);
  pattern.AddEdge(0, kEmptyPredicate, 1);
  Solution s = MaDualSimulation(pattern, db);
  EXPECT_FALSE(s.AnyCandidate());
}

TEST(HhkBaselineTest, TwoChainResult) {
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern = TwoEdgePath(db);
  Solution s = HhkDualSimulation(pattern, db);
  auto id = [&](const char* n) { return *db.nodes().Lookup(n); };
  EXPECT_EQ(s.candidates[0].ToIndexVector(),
            (std::vector<uint32_t>{id("a1")}));
  EXPECT_EQ(s.candidates[1].ToIndexVector(),
            (std::vector<uint32_t>{id("b1")}));
  EXPECT_EQ(s.candidates[2].ToIndexVector(),
            (std::vector<uint32_t>{id("c1")}));
}

TEST(HhkBaselineTest, CountsDisqualifications) {
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern = TwoEdgePath(db);
  Solution s = HhkDualSimulation(pattern, db);
  // Every node/variable pair outside the final relation was disqualified
  // exactly once; the queue processed each.
  size_t total_pairs = pattern.NumNodes() * db.NumNodes();
  EXPECT_EQ(s.stats.evaluations, total_pairs - s.RelationSize());
}

TEST(HhkBaselineTest, EmptyPatternLabel) {
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern(2);
  pattern.AddEdge(0, kEmptyPredicate, 1);
  Solution s = HhkDualSimulation(pattern, db);
  EXPECT_FALSE(s.AnyCandidate());
}

TEST(HhkBaselineTest, SelfLoopDataSurvives) {
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("n", "e", "n").ok());
  graph::GraphDatabase db = std::move(b).Build();
  graph::Graph cycle(2);
  uint32_t e = *db.predicates().Lookup("e");
  cycle.AddEdge(0, e, 1);
  cycle.AddEdge(1, e, 0);
  Solution s = HhkDualSimulation(cycle, db);
  EXPECT_TRUE(s.AnyCandidate());
  EXPECT_EQ(s.RelationSize(), 2u);  // (v0,n), (v1,n)
}

TEST(BaselineConstantsUnitTest, ConstantOnMiddleNode) {
  graph::GraphDatabase db = TwoChains();
  graph::Graph pattern = TwoEdgePath(db);
  std::vector<std::optional<uint32_t>> constants(3);
  constants[1] = *db.nodes().Lookup("b2");  // b2 has no successor
  Solution ma = MaDualSimulation(pattern, db, constants);
  Solution hhk = HhkDualSimulation(pattern, db, constants);
  EXPECT_FALSE(ma.AnyCandidate());
  EXPECT_FALSE(hhk.AnyCandidate());
}

}  // namespace
}  // namespace sparqlsim::sim
