#include "graph/binary_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "util/gap_codec.h"
#include "util/thread_pool.h"

namespace sparqlsim::graph {

namespace {

// 7-byte format tag + 1-byte version; see docs/DATASETS.md for the specs
// and the versioning policy. Save() writes v1, SaveV2() writes v2, Load*
// dispatches on the version byte.
constexpr char kMagic[8] = {'S', 'Q', 'S', 'I', 'M', 'D', 'B', '1'};
constexpr char kVersion1 = '1';
constexpr char kVersion2 = '2';
constexpr char kFooterMagic[8] = {'S', 'Q', 'S', 'I', 'M', 'F', 'T', '2'};
constexpr size_t kFooterBytes = 32;  // dir offset/length/checksum + magic

void PutVarint(uint64_t value, std::ostream& out) {
  while (value >= 0x80) {
    out.put(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool GetVarint(std::istream& in, uint64_t* value) {
  *value = 0;
  unsigned shift = 0;
  while (true) {
    int byte = in.get();
    if (byte == EOF) return false;
    // The final byte of a 10-byte varint may only carry bit 0: anything
    // wider encodes a value past 2^64 (GapReader applies the same rule).
    if (shift == 63 && (byte & 0x7E) != 0) return false;
    *value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift > 63) return false;
  }
}

void PutString(const std::string& s, std::ostream& out) {
  PutVarint(s.size(), out);
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& in, std::string* s) {
  uint64_t length = 0;
  if (!GetVarint(in, &length)) return false;
  // Read in bounded blocks: a corrupt varint length must fail at the
  // stream's actual end instead of attempting one multi-gigabyte resize.
  constexpr uint64_t kBlock = uint64_t{1} << 16;
  s->clear();
  while (length > 0) {
    uint64_t take = length < kBlock ? length : kBlock;
    size_t old_size = s->size();
    s->resize(old_size + take);
    in.read(s->data() + old_size, static_cast<std::streamsize>(take));
    if (static_cast<uint64_t>(in.gcount()) != take) return false;
    length -= take;
  }
  return true;
}

uint64_t Fnv1a64(std::span<const uint8_t> bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

void PutU64Le(uint64_t value, std::ostream& out) {
  for (int i = 0; i < 8; ++i) {
    out.put(static_cast<char>(value >> (8 * i)));
  }
}

uint64_t GetU64Le(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

/// Validating cursor over an in-memory (mmap-ed) byte region; the v2
/// counterpart of the istream helpers above.
struct ByteReader {
  std::span<const uint8_t> data;
  size_t pos = 0;

  bool ReadVarint(uint64_t* value) {
    *value = 0;
    unsigned shift = 0;
    while (true) {
      if (pos >= data.size() || shift > 63) return false;
      const uint8_t byte = data[pos++];
      if (shift == 63 && (byte & 0x7E) != 0) return false;
      *value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
  }

  bool ReadString(std::string* s) {
    uint64_t length = 0;
    if (!ReadVarint(&length)) return false;
    if (length > data.size() - pos) return false;
    s->assign(reinterpret_cast<const char*>(data.data() + pos),
              static_cast<size_t>(length));
    pos += static_cast<size_t>(length);
    return true;
  }

  bool ReadByte(uint8_t* byte) {
    if (pos >= data.size()) return false;
    *byte = data[pos++];
    return true;
  }

  size_t remaining() const { return data.size() - pos; }
};

/// Per-predicate directory entry of a SQSIMDB2 file.
struct V2DirEntry {
  uint64_t offset = 0;    ///< absolute file offset of the block
  uint64_t length = 0;    ///< block length in bytes
  uint64_t fwd_rows = 0;  ///< non-empty rows of F_p
  uint64_t bwd_rows = 0;  ///< non-empty rows of B_p
  uint64_t nnz = 0;       ///< triples with this predicate
  uint64_t checksum = 0;  ///< FNV-1a-64 of the block bytes
};

/// One compressed per-predicate block plus its directory metadata, built
/// independently of every other block (the unit of writer parallelism).
struct V2Block {
  std::vector<uint8_t> bytes;
  V2DirEntry entry;  // offset filled in by the sequential writer
};

/// Appends one matrix in v2 row form: per non-empty row, varint row delta
/// (absolute for the first row), varint byte length, then the canonical
/// GAP/RLE row encoding over the `n`-bit universe.
void AppendMatrixV2(const util::BitMatrix& m, size_t n,
                    std::vector<uint8_t>* out) {
  uint32_t previous_row = 0;
  std::vector<uint8_t> row_bytes;
  for (uint32_t row : m.NonEmptyRows()) {
    row_bytes.clear();
    util::GapCodec::EncodeFromIndices(m.Row(row), n, &row_bytes);
    AppendVarint(row - previous_row, out);
    previous_row = row;
    AppendVarint(row_bytes.size(), out);
    out->insert(out->end(), row_bytes.begin(), row_bytes.end());
  }
}

V2Block BuildPredicateBlock(const GraphDatabase& db, uint32_t p) {
  V2Block block;
  const util::BitMatrix& fwd = db.Forward(p);
  const util::BitMatrix& bwd = db.Backward(p);
  const size_t n = db.NumNodes();
  block.entry.fwd_rows = fwd.NumNonEmptyRows();
  block.entry.bwd_rows = bwd.NumNonEmptyRows();
  block.entry.nnz = fwd.Nnz();
  AppendMatrixV2(fwd, n, &block.bytes);
  AppendMatrixV2(bwd, n, &block.bytes);
  block.entry.length = block.bytes.size();
  block.entry.checksum = Fnv1a64(block.bytes);
  return block;
}

/// Serializes the dictionary block (shared verbatim between v1 and v2
/// after the magic): node/predicate counts, then names + literal flags.
void WriteDictionary(const GraphDatabase& db, std::ostream& out) {
  PutVarint(db.NumNodes(), out);
  PutVarint(db.NumPredicates(), out);
  for (uint32_t node = 0; node < db.NumNodes(); ++node) {
    PutString(db.nodes().Name(node), out);
    out.put(db.IsLiteral(node) ? 1 : 0);
  }
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    PutString(db.predicates().Name(p), out);
  }
}

void WriteDirectoryAndFooter(const std::vector<V2DirEntry>& dir,
                             uint64_t dir_offset, std::ostream& out) {
  std::vector<uint8_t> dir_bytes;
  for (const V2DirEntry& e : dir) {
    AppendVarint(e.offset, &dir_bytes);
    AppendVarint(e.length, &dir_bytes);
    AppendVarint(e.fwd_rows, &dir_bytes);
    AppendVarint(e.bwd_rows, &dir_bytes);
    AppendVarint(e.nnz, &dir_bytes);
    for (int i = 0; i < 8; ++i) {
      dir_bytes.push_back(static_cast<uint8_t>(e.checksum >> (8 * i)));
    }
  }
  out.write(reinterpret_cast<const char*>(dir_bytes.data()),
            static_cast<std::streamsize>(dir_bytes.size()));
  PutU64Le(dir_offset, out);
  PutU64Le(dir_bytes.size(), out);
  PutU64Le(Fnv1a64(dir_bytes), out);
  out.write(kFooterMagic, sizeof(kFooterMagic));
}

/// Commits a finished tmp file to its destination via rename, so `path`
/// either holds a complete database or is left untouched (satellite of the
/// I/O hardening sweep: an interrupted or failed write must never leave a
/// silently-truncated .gdb at the destination).
util::Status CommitTempFile(std::ofstream& out, const std::string& tmp,
                            const std::string& path) {
  out.flush();
  const bool good = out.good();
  out.close();
  if (!good) {
    std::remove(tmp.c_str());
    return util::Status::Error("write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::Error("cannot rename " + tmp + " to " + path);
  }
  return util::Status::Ok();
}

/// The mmap-backed decode-on-fault reader of SQSIMDB2 predicate blocks.
/// Owns either a real mapping or (fallback / stream loads) a heap buffer.
class MmapBacking : public OutOfCoreBacking {
 public:
  using OutOfCoreBacking::AttachSlot;  // loader wires slots up

  ~MmapBacking() override {
    if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
  }

  static std::shared_ptr<MmapBacking> FromBuffer(std::string buffer) {
    auto backing = std::make_shared<MmapBacking>();
    backing->buffer_ = std::move(buffer);
    return backing;
  }

  /// Maps `path` read-only; falls back to reading it into a heap buffer
  /// when mmap is unavailable for the file.
  static util::Result<std::shared_ptr<MmapBacking>> FromFile(
      const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return util::Status::Error("cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return util::Status::Error("cannot stat " + path);
    }
    auto backing = std::make_shared<MmapBacking>();
    const size_t len = static_cast<size_t>(st.st_size);
    if (len > 0) {
      void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        backing->map_base_ = base;
        backing->map_len_ = len;
      } else {
        // Filesystems without mmap support: same lazy semantics over a
        // heap copy of the file.
        backing->buffer_.resize(len);
        size_t done = 0;
        while (done < len) {
          ssize_t got = ::read(fd, backing->buffer_.data() + done,
                               len - done);
          if (got <= 0) {
            ::close(fd);
            return util::Status::Error("cannot read " + path);
          }
          done += static_cast<size_t>(got);
        }
      }
    }
    ::close(fd);
    return backing;
  }

  std::span<const uint8_t> data() const {
    if (map_base_ != nullptr) {
      return {static_cast<const uint8_t*>(map_base_), map_len_};
    }
    return {reinterpret_cast<const uint8_t*>(buffer_.data()),
            buffer_.size()};
  }

  size_t num_nodes = 0;
  std::vector<V2DirEntry> dir;

 protected:
  util::Result<std::shared_ptr<const Slab>> DecodeSlab(
      uint32_t p) const override {
    const V2DirEntry& e = dir[p];
    std::span<const uint8_t> block =
        data().subspan(e.offset, e.length);  // bounds validated at open
    if (Fnv1a64(block) != e.checksum) {
      return util::Status::Error("predicate block " + std::to_string(p) +
                                 ": checksum mismatch");
    }
    ByteReader reader{block};
    std::vector<std::pair<uint32_t, uint32_t>> fwd_entries;
    std::vector<std::pair<uint32_t, uint32_t>> bwd_entries;
    fwd_entries.reserve(e.nnz);
    bwd_entries.reserve(e.nnz);
    util::Status status =
        DecodeMatrixV2(&reader, e.fwd_rows, &fwd_entries, p);
    if (!status.ok()) return status;
    status = DecodeMatrixV2(&reader, e.bwd_rows, &bwd_entries, p);
    if (!status.ok()) return status;
    if (reader.pos != block.size()) {
      return util::Status::Error("predicate block " + std::to_string(p) +
                                 ": trailing bytes");
    }
    auto slab = std::make_shared<GraphDatabase::PredicateSlab>();
    slab->forward = util::BitMatrix::Build(num_nodes, num_nodes,
                                           std::move(fwd_entries));
    slab->backward = util::BitMatrix::Build(num_nodes, num_nodes,
                                            std::move(bwd_entries));
    if (slab->forward.Nnz() != e.nnz || slab->backward.Nnz() != e.nnz) {
      return util::Status::Error("predicate block " + std::to_string(p) +
                                 ": triple count disagrees with directory");
    }
    slab->forward_summary = slab->forward.RowSummary();
    slab->backward_summary = slab->backward.RowSummary();
    slab->subject_count = slab->forward_summary.Count();
    slab->object_count = slab->backward_summary.Count();
    slab->empty_forward_cols = num_nodes - slab->object_count;
    slab->empty_backward_cols = num_nodes - slab->subject_count;
    return std::shared_ptr<const Slab>(std::move(slab));
  }

 private:
  util::Status DecodeMatrixV2(
      ByteReader* reader, uint64_t rows,
      std::vector<std::pair<uint32_t, uint32_t>>* entries, uint32_t p) const {
    const size_t n = num_nodes;
    uint64_t row = 0;
    std::vector<uint32_t> indices;
    for (uint64_t i = 0; i < rows; ++i) {
      uint64_t delta = 0, length = 0;
      if (!reader->ReadVarint(&delta) || !reader->ReadVarint(&length)) {
        return util::Status::Error("predicate block " + std::to_string(p) +
                                   ": truncated row header");
      }
      // Rows ascend strictly, so both the delta and the accumulator stay
      // under the universe size — no wraparound is representable.
      if (delta >= n || (i > 0 && delta == 0)) {
        return util::Status::Error("predicate block " + std::to_string(p) +
                                   ": row delta out of range");
      }
      row += delta;
      if (row >= n) {
        return util::Status::Error("predicate block " + std::to_string(p) +
                                   ": row id out of range");
      }
      if (length > reader->remaining()) {
        return util::Status::Error("predicate block " + std::to_string(p) +
                                   ": truncated row payload");
      }
      indices.clear();
      if (!util::GapCodec::TryDecodeIndices(
              reader->data.subspan(reader->pos,
                                   static_cast<size_t>(length)),
              n, &indices) ||
          indices.empty()) {
        return util::Status::Error("predicate block " + std::to_string(p) +
                                   ": malformed row encoding");
      }
      reader->pos += static_cast<size_t>(length);
      for (uint32_t col : indices) {
        entries->emplace_back(static_cast<uint32_t>(row), col);
      }
    }
    return util::Status::Ok();
  }

  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  std::string buffer_;
};

}  // namespace

// ---------------------------------------------------------------------------
// V2 open path (footer -> directory -> dictionary -> lazy slots)
// ---------------------------------------------------------------------------

class BinaryIo::V2Loader {
 public:
  static util::Result<GraphDatabase> Open(std::shared_ptr<MmapBacking> backing,
                                          const LoadOptions& options) {
    std::span<const uint8_t> file = backing->data();
    if (file.size() < sizeof(kMagic) + kFooterBytes) {
      return util::Status::Error("truncated SQSIMDB2 file: no footer");
    }
    std::span<const uint8_t> footer = file.subspan(file.size() - kFooterBytes);
    if (std::memcmp(footer.data() + 24, kFooterMagic,
                    sizeof(kFooterMagic)) != 0) {
      return util::Status::Error(
          "truncated or corrupt SQSIMDB2 file: bad footer magic");
    }
    const uint64_t dir_offset = GetU64Le(footer.data());
    const uint64_t dir_length = GetU64Le(footer.data() + 8);
    const uint64_t dir_checksum = GetU64Le(footer.data() + 16);
    const uint64_t payload_end = file.size() - kFooterBytes;
    if (dir_offset < sizeof(kMagic) || dir_length > payload_end ||
        dir_offset > payload_end - dir_length) {
      return util::Status::Error(
          "corrupt SQSIMDB2 file: directory bounds out of range");
    }
    std::span<const uint8_t> dir_bytes =
        file.subspan(static_cast<size_t>(dir_offset),
                     static_cast<size_t>(dir_length));
    if (Fnv1a64(dir_bytes) != dir_checksum) {
      return util::Status::Error(
          "corrupt SQSIMDB2 file: directory checksum mismatch");
    }

    // Dictionary block, directly after the magic.
    ByteReader dict{file.subspan(sizeof(kMagic),
                                 static_cast<size_t>(dir_offset) -
                                     sizeof(kMagic))};
    uint64_t num_nodes = 0, num_predicates = 0;
    if (!dict.ReadVarint(&num_nodes) || !dict.ReadVarint(&num_predicates)) {
      return util::Status::Error("truncated header");
    }
    if (num_nodes > UINT32_MAX || num_predicates > UINT32_MAX) {
      return util::Status::Error(
          "corrupt header: counts exceed the 32-bit id space");
    }
    auto nodes = std::make_shared<Dictionary>();
    auto predicates = std::make_shared<Dictionary>();
    auto is_literal = std::make_shared<std::vector<bool>>();
    is_literal->reserve(num_nodes);
    std::string name;
    for (uint64_t i = 0; i < num_nodes; ++i) {
      uint8_t literal = 0;
      if (!dict.ReadString(&name) || !dict.ReadByte(&literal)) {
        return util::Status::Error("truncated nodes");
      }
      if (nodes->Intern(name) != i) {
        return util::Status::Error("duplicate node entry");
      }
      is_literal->push_back(literal != 0);
    }
    for (uint64_t p = 0; p < num_predicates; ++p) {
      if (!dict.ReadString(&name)) {
        return util::Status::Error("truncated predicates");
      }
      if (predicates->Intern(name) != p) {
        return util::Status::Error("duplicate predicate entry");
      }
    }
    const uint64_t dict_end = sizeof(kMagic) + dict.pos;

    // Per-predicate directory; every block's bounds are validated here so
    // the fault path can index the mapping without re-checking.
    ByteReader dr{dir_bytes};
    backing->dir.resize(num_predicates);
    uint64_t total_nnz = 0;
    for (uint64_t p = 0; p < num_predicates; ++p) {
      V2DirEntry& e = backing->dir[p];
      if (!dr.ReadVarint(&e.offset) || !dr.ReadVarint(&e.length) ||
          !dr.ReadVarint(&e.fwd_rows) || !dr.ReadVarint(&e.bwd_rows) ||
          !dr.ReadVarint(&e.nnz) || dr.remaining() < 8) {
        return util::Status::Error(
            "corrupt SQSIMDB2 file: truncated directory");
      }
      e.checksum = GetU64Le(dir_bytes.data() + dr.pos);
      dr.pos += 8;
      if (e.offset < dict_end || e.length > dir_offset ||
          e.offset > dir_offset - e.length) {
        return util::Status::Error("corrupt SQSIMDB2 file: predicate block " +
                                   std::to_string(p) + " out of bounds");
      }
      if (e.fwd_rows > num_nodes || e.bwd_rows > num_nodes ||
          e.fwd_rows > e.nnz || e.bwd_rows > e.nnz ||
          e.nnz > num_nodes * num_nodes) {
        return util::Status::Error("corrupt SQSIMDB2 file: predicate block " +
                                   std::to_string(p) +
                                   " row counts out of range");
      }
      total_nnz += e.nnz;
    }
    if (dr.pos != dir_bytes.size()) {
      return util::Status::Error(
          "corrupt SQSIMDB2 file: trailing directory bytes");
    }
    backing->num_nodes = static_cast<size_t>(num_nodes);

    GraphDatabase db;
    db.nodes_ = nodes;
    db.predicates_ = predicates;
    db.is_literal_ = is_literal;
    db.num_triples_ = static_cast<size_t>(total_nnz);
    db.generation_ = GraphDatabase::NextGeneration();
    db.backing_ = backing;
    db.slots_.reserve(num_predicates);
    for (uint64_t p = 0; p < num_predicates; ++p) {
      auto slot = std::make_shared<GraphDatabase::PredicateSlot>();
      slot->backing = backing;
      slot->predicate = static_cast<uint32_t>(p);
      slot->nnz = static_cast<size_t>(backing->dir[p].nnz);
      backing->AttachSlot(static_cast<uint32_t>(p), slot);
      db.slots_.push_back(std::move(slot));
    }

    if (options.eager) {
      util::Status status = db.MaterializeAllAndDetach();
      if (!status.ok()) return status;
    } else if (options.resident_budget_bytes > 0) {
      backing->SetBudgetBytes(options.resident_budget_bytes);
    }
    return db;
  }
};

// ---------------------------------------------------------------------------
// Save (v1), SaveV2, and the shared tmp-file + rename write path
// ---------------------------------------------------------------------------

void BinaryIo::Save(const GraphDatabase& db, std::ostream& out) {
  ResidencyPin pin = db.PinResidency();
  out.write(kMagic, sizeof(kMagic));
  WriteDictionary(db, out);
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    const util::BitMatrix& m = db.Forward(p);
    PutVarint(m.NumNonEmptyRows(), out);
    uint32_t previous_row = 0;
    for (uint32_t row : m.NonEmptyRows()) {
      auto cols = m.Row(row);
      PutVarint(row - previous_row, out);
      previous_row = row;
      PutVarint(cols.size(), out);
      uint32_t previous_col = 0;
      for (uint32_t col : cols) {
        PutVarint(col - previous_col, out);
        previous_col = col;
      }
    }
  }
}

util::Status BinaryIo::SaveFile(const GraphDatabase& db,
                                const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::Error("cannot write " + tmp);
  Save(db, out);
  return CommitTempFile(out, tmp, path);
}

void BinaryIo::SaveV2(const GraphDatabase& db, std::ostream& out) {
  ResidencyPin pin = db.PinResidency();
  std::ostringstream dict;
  WriteDictionary(db, dict);
  const std::string dict_bytes = dict.str();
  out.write(kMagic, sizeof(kMagic) - 1);
  out.put(kVersion2);
  out.write(dict_bytes.data(),
            static_cast<std::streamsize>(dict_bytes.size()));
  uint64_t offset = sizeof(kMagic) + dict_bytes.size();
  std::vector<V2DirEntry> dir(db.NumPredicates());
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    V2Block block = BuildPredicateBlock(db, p);
    block.entry.offset = offset;
    offset += block.entry.length;
    dir[p] = block.entry;
    out.write(reinterpret_cast<const char*>(block.bytes.data()),
              static_cast<std::streamsize>(block.bytes.size()));
  }
  WriteDirectoryAndFooter(dir, offset, out);
}

util::Status BinaryIo::SaveV2File(const GraphDatabase& db,
                                  const std::string& path, size_t threads) {
  ResidencyPin pin = db.PinResidency();
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::Error("cannot write " + tmp);

  std::ostringstream dict;
  WriteDictionary(db, dict);
  const std::string dict_bytes = dict.str();
  out.write(kMagic, sizeof(kMagic) - 1);
  out.put(kVersion2);
  out.write(dict_bytes.data(),
            static_cast<std::streamsize>(dict_bytes.size()));

  // Producer queue: workers compress per-predicate blocks ahead of the
  // file cursor while this thread writes finished blocks in predicate
  // order — compression and chunk I/O pipeline instead of alternating.
  // Bytes are identical for every thread count: block content is a pure
  // function of (db, p) and the write order is fixed.
  util::ThreadPool pool(util::ThreadPool::ResolveThreadCount(threads));
  const size_t window = 2 * pool.NumThreads() + 2;
  std::deque<std::future<V2Block>> inflight;
  uint64_t offset = sizeof(kMagic) + dict_bytes.size();
  std::vector<V2DirEntry> dir(db.NumPredicates());
  uint32_t next_write = 0;
  auto drain_one = [&] {
    V2Block block = inflight.front().get();
    inflight.pop_front();
    block.entry.offset = offset;
    offset += block.entry.length;
    dir[next_write++] = block.entry;
    out.write(reinterpret_cast<const char*>(block.bytes.data()),
              static_cast<std::streamsize>(block.bytes.size()));
  };
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    while (inflight.size() >= window) drain_one();
    auto promise = std::make_shared<std::promise<V2Block>>();
    inflight.push_back(promise->get_future());
    pool.Submit([&db, p, promise] {
      promise->set_value(BuildPredicateBlock(db, p));
    });
  }
  while (!inflight.empty()) drain_one();

  WriteDirectoryAndFooter(dir, offset, out);
  return CommitTempFile(out, tmp, path);
}

// ---------------------------------------------------------------------------
// Load (version dispatch), v1 body, file open
// ---------------------------------------------------------------------------

namespace {

util::Result<GraphDatabase> LoadV1Body(std::istream& in) {
  uint64_t num_nodes = 0, num_predicates = 0;
  if (!GetVarint(in, &num_nodes) || !GetVarint(in, &num_predicates)) {
    return util::Status::Error("truncated header");
  }
  if (num_nodes > UINT32_MAX || num_predicates > UINT32_MAX) {
    return util::Status::Error("corrupt header: counts exceed the 32-bit id "
                               "space");
  }

  GraphDatabaseBuilder builder;
  std::string name;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (!GetString(in, &name)) return util::Status::Error("truncated nodes");
    int literal = in.get();
    if (literal == EOF) return util::Status::Error("truncated nodes");
    // First-seen interning preserves the original dense ids.
    uint32_t id = literal ? builder.InternLiteral(name)
                          : builder.InternNode(name);
    if (id != i) return util::Status::Error("duplicate node entry");
  }
  for (uint64_t p = 0; p < num_predicates; ++p) {
    if (!GetString(in, &name)) {
      return util::Status::Error("truncated predicates");
    }
    if (builder.InternPredicate(name) != p) {
      return util::Status::Error("duplicate predicate entry");
    }
  }
  for (uint32_t p = 0; p < num_predicates; ++p) {
    uint64_t num_rows = 0;
    if (!GetVarint(in, &num_rows)) {
      return util::Status::Error("truncated matrix header");
    }
    if (num_rows > num_nodes) {
      return util::Status::Error(
          "corrupt matrix header: row count exceeds the node universe");
    }
    uint64_t row = 0;
    for (uint64_t r = 0; r < num_rows; ++r) {
      uint64_t row_delta = 0, degree = 0;
      if (!GetVarint(in, &row_delta) || !GetVarint(in, &degree)) {
        return util::Status::Error("truncated row");
      }
      // Rows ascend strictly within the universe, so any valid delta is
      // below num_nodes. Rejecting the delta *before* the addition keeps
      // the accumulator from wrapping: a ~2^64 varint delta would
      // otherwise overflow `row`/`col` back under num_nodes, pass the
      // range check, and intern a garbage triple via the uint32_t cast.
      if (row_delta >= num_nodes || (r > 0 && row_delta == 0)) {
        return util::Status::Error(
            "corrupt matrix payload: row delta out of range");
      }
      row += row_delta;
      if (row >= num_nodes) {
        return util::Status::Error(
            "corrupt matrix payload: row id out of range");
      }
      if (degree > num_nodes) {
        return util::Status::Error(
            "corrupt matrix payload: row degree exceeds the node universe");
      }
      uint64_t col = 0;
      for (uint64_t c = 0; c < degree; ++c) {
        uint64_t col_delta = 0;
        if (!GetVarint(in, &col_delta)) {
          return util::Status::Error("truncated columns");
        }
        if (col_delta >= num_nodes || (c > 0 && col_delta == 0)) {
          return util::Status::Error(
              "corrupt matrix payload: column delta out of range");
        }
        col += col_delta;
        if (col >= num_nodes) {
          return util::Status::Error(
              "corrupt matrix payload: column id out of range");
        }
        util::Status status =
            builder.AddTripleIds(static_cast<uint32_t>(row), p,
                                 static_cast<uint32_t>(col));
        if (!status.ok()) return status;
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace

util::Result<GraphDatabase> BinaryIo::Load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic) - 1) != 0) {
    return util::Status::Error(
        "not a sparqlsim binary database (bad magic; expected a file "
        "written by BinaryIo::Save / sparqlsim_ingest)");
  }
  if (magic[7] == kVersion1) return LoadV1Body(in);
  if (magic[7] == kVersion2) {
    // Stream loads are necessarily eager: slurp the remainder and decode
    // through the same validated in-memory path as the mmap reader.
    std::string buffer(magic, sizeof(magic));
    char block[1 << 16];
    while (in.read(block, sizeof(block)) || in.gcount() > 0) {
      buffer.append(block, static_cast<size_t>(in.gcount()));
    }
    LoadOptions options;
    options.eager = true;
    return V2Loader::Open(MmapBacking::FromBuffer(std::move(buffer)),
                          options);
  }
  return util::Status::Error(
      std::string("unsupported sparqlsim database version '") + magic[7] +
      "' (this build reads versions '1' and '2')");
}

util::Result<GraphDatabase> BinaryIo::LoadFile(const std::string& path,
                                               const LoadOptions& options) {
  char magic[8] = {0};
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return util::Status::Error("cannot open " + path);
    probe.read(magic, sizeof(magic));
    if (probe.gcount() == sizeof(magic) && magic[7] == kVersion1 &&
        std::memcmp(magic, kMagic, sizeof(kMagic) - 1) == 0) {
      probe.seekg(0);
      return Load(probe);
    }
  }
  // Not a v1 file: open through the mapping path, which re-validates the
  // magic and dispatches corrupt/foreign files to the same errors Load()
  // produces.
  if (std::memcmp(magic, kMagic, sizeof(kMagic) - 1) != 0) {
    std::ifstream in(path, std::ios::binary);
    return Load(in);
  }
  if (magic[7] != kVersion2) {
    return util::Status::Error(
        std::string("unsupported sparqlsim database version '") + magic[7] +
        "' (this build reads versions '1' and '2')");
  }
  auto backing = MmapBacking::FromFile(path);
  if (!backing.ok()) return backing.status();
  return V2Loader::Open(std::move(backing).value(), options);
}

}  // namespace sparqlsim::graph
