#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_database.h"
#include "sim/soi.h"
#include "util/bitvector.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

/// Strategy knobs for the SOI fixpoint (Sect. 3.3 of the paper). The
/// defaults are the paper's SPARQLSIM configuration; the ablation bench
/// toggles them individually.
struct SolverOptions {
  /// Initialize candidate sets from the per-label summary vectors f^a/b^a
  /// (Eq. 13) instead of the all-ones vectors of Eq. (12).
  bool summary_init = true;

  /// How to evaluate `x <= y *b A`.
  enum class EvalMode {
    kRowWise,     // always materialize the product (Eq. 9)
    kColumnWise,  // always per-candidate intersection tests via A^T
    kDynamic,     // paper's rule: row-wise iff |chi(y)| < |chi(x)|
  };
  EvalMode eval_mode = EvalMode::kDynamic;

  /// Order the initial worklist so that inequalities whose matrix has the
  /// most empty columns (highest pruning potential) come first.
  bool order_by_sparsity = true;

  /// Delta-driven incremental re-evaluation of matrix inequalities. The
  /// fixpoint shrinks candidate sets monotonically, so instead of
  /// re-unioning every row selected by chi(rhs) on each re-evaluation, the
  /// solver keeps a util::CountedAccumulator per inequality (per-column
  /// cover counts plus the product vector) and, when the removal delta is
  /// small, decrements counts along only the rows that *left* chi(rhs)
  /// since the accumulator was last synchronized — work proportional to
  /// the delta, not to nnz. A cost rule analogous to the row/column
  /// dynamic rule picks delta vs full evaluation per inequality; results
  /// are bit-identical either way (the accumulator's product is exactly
  /// the Eq. (9) union), so this is purely a wall-clock knob, ablatable
  /// for benchmarks. Accumulators are allocated lazily from an
  /// inequality's second row-wise evaluation on, so one-shot inequalities
  /// never pay the O(cols) counter memory.
  bool incremental_eval = true;

  /// Candidate-set representation kernel (util::CandidateSet policy).
  /// kDense pins every chi(v) to the hierarchical dense layout — the
  /// scalar-dense path is the differential oracle the other modes are
  /// verified against. kCompressed forces the GAP/RLE run-list layout.
  /// kAuto switches per set by occupancy with hysteresis. Solutions,
  /// fixpoint trajectories, and the semantic counters (rounds,
  /// evaluations, updates, eval-kind splits) are bit-identical across all
  /// three — only wall-clock and the representation counters differ.
  enum class KernelMode { kAuto, kDense, kCompressed };
  KernelMode kernel_mode = KernelMode::kAuto;

  /// Safety valve for experiments; 0 means no limit.
  size_t max_rounds = 0;

  /// Column-range sharding of the evaluation phase: the node universe is
  /// partitioned into this many contiguous word-aligned column ranges
  /// (MakeShardPlan) and every inequality's mask is computed as one task
  /// per (inequality, shard) — each shard solves the system restricted to
  /// its candidate columns, writing only its own words of the shared mask
  /// slots. The per-shard results meet at the existing single-writer merge
  /// point, and because the decision logic (eval kinds, cost rules,
  /// incremental-tier transitions) runs once per inequality regardless of
  /// the partition, solutions, fixpoint trajectories, and every semantic
  /// counter are bit-identical for any shard count — sharding is purely a
  /// wall-clock knob, like num_threads, but slicing *within* an inequality
  /// instead of across them (narrow rounds with huge candidate sets is
  /// exactly where num_threads runs out of work).
  ///
  /// 0 means "default": the SPARQLSIM_FORCE_SHARDS environment variable if
  /// set (CI's shard-determinism leg), else 1. Explicit values are never
  /// overridden by the environment. ResolvedShards clamps so no shard is
  /// empty.
  size_t num_shards = 0;

  /// Worker threads for the solving path: per-round parallel inequality
  /// evaluation and (through SimEngine) concurrent union-free branches.
  /// 0 means all hardware threads; 1 (the default) keeps everything on the
  /// calling thread. Results are bit-identical for every value — the solver
  /// evaluates each round against a stable snapshot and merges the results
  /// in a fixed order — so this is purely a wall-clock knob.
  size_t num_threads = 1;

  /// Cache toggles, honored by SimEngine (the free SolveSoi function has no
  /// cache to consult). `cache_sois` reuses the constructed SOI of a
  /// canonically-equal normalized pattern; `cache_solutions` additionally
  /// reuses whole solutions when the database generation matches. The
  /// solution layer requires the SOI layer (a cached solution is only valid
  /// against the cached SOI instance's variable numbering), so
  /// `cache_solutions` without `cache_sois` is inert. Solutions are never
  /// cached for truncated runs (max_rounds != 0), whose outcome is not the
  /// canonical fixpoint.
  bool cache_sois = true;
  bool cache_solutions = true;

  /// Entry bound of the cache a SimEngine creates privately (0 =
  /// unbounded); each entry holds one SOI and, once solved, its attached
  /// solution. Ignored when a shared cache is injected — the injected
  /// cache carries its own SoiCache::Options.
  size_t cache_capacity = 0;

  /// Recycle solve workspaces (chi sets, eval masks, per-inequality
  /// incremental state, worklist vectors) across queries instead of
  /// allocating and zero-filling them per solve. Honored by the owners of
  /// scratch state — SimEngine's ScratchPool, QueryService's shared pool,
  /// StandingQuery's per-query scratch; the free SolveSoi functions have
  /// nothing to recycle from. Results are bit-identical on or off (the
  /// differential suites sweep this axis); off is the oracle configuration
  /// and the CLI/batch `--no-scratch-pool` flag. SPARQLSIM_NO_SCRATCH=1
  /// force-disables it for whole-suite differential runs.
  bool reuse_scratch = true;

  /// `reuse_scratch` with the SPARQLSIM_NO_SCRATCH override applied (the
  /// environment is parsed once per process, like SPARQLSIM_FORCE_SHARDS).
  bool EffectiveReuseScratch() const;

  /// `num_threads` with the 0-means-hardware convention applied.
  size_t ResolvedThreads() const {
    return util::ThreadPool::ResolveThreadCount(num_threads);
  }

  /// `num_shards` with the 0-means-default convention applied and clamped
  /// so every shard covers at least one 64-bit word of an `num_columns`
  /// universe (always >= 1).
  size_t ResolvedShards(size_t num_columns) const;
};

/// Contiguous word-aligned [begin, end) column ranges covering
/// [0, num_columns): every boundary except the last is a multiple of 64,
/// so ranges touch disjoint words of any output bit-vector and shard
/// tasks may fill one vector concurrently. At most
/// ceil(num_columns / 64) non-empty ranges are returned (requesting more
/// shards yields fewer); num_columns == 0 yields one empty range.
std::vector<std::pair<uint32_t, uint32_t>> MakeShardPlan(size_t num_columns,
                                                         size_t num_shards);

/// Per-solve cooperative control, checked at fixpoint round boundaries
/// (and between union-free branches in SimEngine). Expiry or cancellation
/// stops the solve early with `Solution::truncated` set; the partial
/// assignment is still a sound over-approximation of the fixpoint (the
/// solve only ever removes candidates that can never match), it is just
/// not the canonical largest solution, so truncated results are never
/// cached.
struct SolveControl {
  /// Absolute deadline; unset = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// External cancellation flag (borrowed); null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;

  bool Expired() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline.has_value() &&
           std::chrono::steady_clock::now() >= *deadline;
  }
};

/// Counters describing one fixpoint run.
struct SolveStats {
  /// Fixpoint rounds: one round processes every inequality that was
  /// unstable when the round began. This is the paper's "iterations"
  /// metric (L0 needs 30+, L1 only 2; Sect. 5.3).
  size_t rounds = 0;
  size_t evaluations = 0;  // inequality evaluations
  size_t updates = 0;      // evaluations that shrank a candidate set
  size_t row_evals = 0;    // full row-wise products (Eq. 9)
  size_t col_evals = 0;    // full column-wise evaluations
  double solve_seconds = 0.0;

  /// Incremental-evaluation counters (SolverOptions::incremental_eval).
  /// Every evaluation is either a delta evaluation (counted retraction
  /// through the per-inequality accumulator) or a full one (row, column,
  /// subordination, skip, clear), so
  ///     delta_evals + full_evals == evaluations
  /// holds for every run; with incremental_eval off, delta_evals == 0.
  size_t delta_evals = 0;
  size_t full_evals = 0;
  /// Accumulator (re)builds — the speculative cost the delta evaluations
  /// amortize; a build is counted inside the row evaluation that performs
  /// it.
  size_t acc_rebuilds = 0;
  /// Columns cleared by counted retraction (cover count hit zero) — the
  /// actual pruning work the deltas performed.
  size_t cols_cleared = 0;
  /// Zero 64-word blocks the hierarchical candidate vectors skipped in
  /// the single-threaded AND kernels (initialization + merge phases);
  /// grows as candidate sets collapse.
  size_t blocks_skipped = 0;

  /// Representation-layer counters (SolverOptions::kernel_mode). Kernel
  /// executions performed directly on GAP/RLE-compressed candidate sets
  /// (ANDs and drains that never inflated to words), and layout switches
  /// either way. Representation-dependent by definition — they differ
  /// across kernel modes while the semantic counters above stay identical.
  size_t compressed_ops = 0;
  size_t repr_compressions = 0;
  size_t repr_decompressions = 0;

  /// Per-round parallelism counters: rounds whose evaluation phase ran on a
  /// thread pool, the widest round (unstable inequalities evaluated
  /// together — the available per-round parallelism), and the executor count
  /// the solve ran with (pool workers, or 1 for inline solves).
  /// `shards_used` is the resolved column-shard count
  /// (SolverOptions::num_shards); scheduling-dependent like threads_used,
  /// never part of a trajectory comparison.
  size_t parallel_rounds = 0;
  size_t max_round_width = 0;
  size_t threads_used = 1;
  size_t shards_used = 1;

  /// Scratch-recycling counters (SolverOptions::reuse_scratch).
  /// `scratch_reuses` is 1 when this solve ran entirely on a recycled
  /// workspace; `scratch_allocs` is 1 when the workspace had to be
  /// allocated or reshaped (first use, universe-width change, or a query
  /// shape wider than anything the scratch has seen) — including every
  /// solve with recycling off, so allocs == solves is the honest no-pool
  /// baseline. `bytes_recycled` is the recycled workspace's payload
  /// footprint (the malloc+memset traffic avoided); `words_cleared_sparse`
  /// counts the payload words the summary-guided sparse clears actually
  /// zeroed while wiping recycled buffers. Like threads_used these are
  /// scheduling/representation counters: exempt from trajectory
  /// comparisons, which assert the semantic counters above instead.
  size_t scratch_reuses = 0;
  size_t scratch_allocs = 0;
  size_t bytes_recycled = 0;
  size_t words_cleared_sparse = 0;

  /// Adds `other`'s counters and time into this (multi-branch aggregation);
  /// width/thread counters combine by max.
  ///
  /// Not synchronized: when branches are solved concurrently, each branch
  /// writes its own SolveStats and the coordinator calls Accumulate for all
  /// branches at a single-threaded merge point after the batch barrier
  /// (see SimEngine::Prune). Never call this from worker tasks.
  void Accumulate(const SolveStats& other);
};

struct Solution;
struct WarmStart;
class IncrementalCarry;
class SolveScratch;
Solution SolveSoiWarm(const Soi& soi, const graph::GraphDatabase& db,
                      const SolverOptions& options,
                      const std::vector<util::BitVector>* initial,
                      util::ThreadPool* pool, const SolveControl* control,
                      const WarmStart* warm, SolveScratch* scratch);

/// Opaque per-inequality incremental-solver state (snapshot products,
/// counted accumulators, and their synchronized selections) carried across
/// solves of the *same* Soi instance — the state half of standing-query
/// maintenance (sim::StandingQuery). A solve handed a carry through
/// WarmStart adopts every entry the caller did not declare stale and, on
/// reaching the fixpoint, deposits its final state back, so the next
/// delta's retraction resumes from products synchronized during this
/// solve instead of rebuilding them. Truncated solves deposit nothing
/// (the carry is cleared: their state is not anchored to a fixpoint).
///
/// Not thread-safe; a carry belongs to exactly one solve at a time.
class IncrementalCarry {
 public:
  IncrementalCarry();
  ~IncrementalCarry();
  IncrementalCarry(IncrementalCarry&&) noexcept;
  IncrementalCarry& operator=(IncrementalCarry&&) noexcept;

  /// Drops all carried state; the next solve starts with cold tiers.
  void Clear();
  /// Inequalities currently holding a live snapshot product or counted
  /// accumulator (an engagement gauge for tests and stats).
  size_t LiveEntries() const;

 private:
  friend Solution SolveSoiWarm(const Soi&, const graph::GraphDatabase&,
                               const SolverOptions&,
                               const std::vector<util::BitVector>*,
                               util::ThreadPool*, const SolveControl*,
                               const WarmStart*, SolveScratch*);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One recyclable solve workspace: the chi candidate sets, per-inequality
/// eval masks and plans, the worklist, the incremental IneqState array
/// (snapshot products, last-rhs vectors, counted accumulators), and the
/// shard-lane/delta buffers — everything SolveSoiWarm would otherwise
/// allocate per call. A scratch is keyed by the node-universe width it was
/// last prepared for: a solve on the same universe recycles every buffer
/// (wiping them with the summary-guided sparse clears), any other solve
/// reshapes in place and counts a scratch_alloc. A recycled workspace is
/// observationally indistinguishable from a fresh one — solutions,
/// PruneReports, and fixpoint trajectories are bit-identical with and
/// without recycling (the pool differential suites assert exactly that).
///
/// Carry-ownership rule: when a solve is handed an IncrementalCarry (the
/// StandingQuery path), its IneqState array lives in a solve-local vector
/// that is moved into the carry at deposit time — never in the scratch —
/// so recycling a scratch can never dangle buffers out from under a carry
/// that outlives it.
///
/// Not thread-safe; a scratch belongs to exactly one solve at a time.
/// Acquire one from a ScratchPool (concurrent servers) or own one directly
/// (StandingQuery).
class SolveScratch {
 public:
  SolveScratch();
  ~SolveScratch();
  SolveScratch(SolveScratch&&) noexcept;
  SolveScratch& operator=(SolveScratch&&) noexcept;

 private:
  friend Solution SolveSoiWarm(const Soi&, const graph::GraphDatabase&,
                               const SolverOptions&,
                               const std::vector<util::BitVector>*,
                               util::ThreadPool*, const SolveControl*,
                               const WarmStart*, SolveScratch*);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A mutex-guarded freelist of SolveScratch workspaces shared by the
/// concurrently callable solve paths (SimEngine::Solve from QueryService
/// workers and parallel Prune branches). Acquire pops a recycled scratch
/// or makes a fresh one; Release returns it for the next solve (the pool
/// keeps at most kMaxIdle idle workspaces — the high-water mark of
/// concurrent solves bounds live scratches, not queue depth). Dropping an
/// acquired scratch instead of releasing it is always safe, just a lost
/// recycle.
///
/// The pool also aggregates the per-solve scratch counters (Record) into
/// process-lifetime totals for QueryService::Stats and the benches.
class ScratchPool {
 public:
  struct Stats {
    uint64_t reuses = 0;
    uint64_t allocs = 0;
    uint64_t bytes_recycled = 0;
    uint64_t words_cleared_sparse = 0;
  };

  std::unique_ptr<SolveScratch> Acquire();
  void Release(std::unique_ptr<SolveScratch> scratch);

  /// Folds one solve's scratch_* counters into the pool totals.
  void Record(const SolveStats& stats);
  Stats stats() const;

 private:
  static constexpr size_t kMaxIdle = 8;

  std::mutex mutex_;
  std::vector<std::unique_ptr<SolveScratch>> idle_;
  std::atomic<uint64_t> reuses_{0};
  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> bytes_recycled_{0};
  std::atomic<uint64_t> words_cleared_{0};
};

/// Warm-start description for re-converging a previously solved SOI after
/// a graph delta (sim::StandingQuery). Combined with the `initial`
/// assignment parameter of SolveSoiWarm, the solver computes the largest
/// solution below `initial`, seeding the first round's worklist with only
/// the `armed` inequalities; everything else re-activates through the
/// normal dependency worklist when a variable it reads shrinks.
///
/// Soundness is the caller's contract: every unarmed inequality must
/// already hold at the initial assignment against the new database (true
/// for StandingQuery's construction — unarmed inequalities read only
/// unchanged predicates and variables whose initial value is the old
/// converged fixpoint). Given that, the solve's result is exactly the
/// canonical fixpoint a cold solve would produce.
struct WarmStart {
  /// Unified-index arming mask, sized matrix_ineqs.size() +
  /// sub_ineqs.size() with matrix inequalities first (the solver's
  /// internal handle space): true = place on the initial worklist. Null
  /// arms everything (plain solve semantics).
  const std::vector<bool>* armed = nullptr;
  /// Incremental state carried from the previous converged solve of the
  /// same Soi; may be null. Ignored — and cleared — when
  /// options.incremental_eval is off, and whenever the resolved shard
  /// count changed since the state was deposited (accumulator count lanes
  /// are shard-shape-dependent).
  IncrementalCarry* carry = nullptr;
  /// Per-matrix-inequality staleness for `carry` (sized
  /// matrix_ineqs.size()): true = drop the carried entry — its matrix
  /// changed, or chi(rhs) may exceed the entry's synchronized selection
  /// (retraction requires monotone shrink from the sync point). Null
  /// keeps every entry.
  const std::vector<bool>* carry_invalid = nullptr;
};

/// The largest solution of an SOI: one candidate bit-vector per SOI
/// variable. The induced relation {(v, o) | o in candidates[v]} is the
/// largest dual simulation (Prop. 2 of the paper).
struct Solution {
  std::vector<util::BitVector> candidates;
  SolveStats stats;

  /// The solve stopped before reaching the fixpoint — max_rounds hit, or
  /// SolveControl expiry/cancellation. The candidates are then a sound
  /// over-approximation of the largest solution (a superset per variable),
  /// not the canonical fixpoint; truncated solutions are never cached.
  bool truncated = false;

  /// True iff the induced relation is non-empty.
  bool AnyCandidate() const;
  /// Sum of candidate-set sizes (size of the induced relation).
  size_t RelationSize() const;
};

/// Computes the largest solution of `soi` against `db` by the worklist
/// fixpoint of Sect. 3.2/3.3: start from Eq. (12)/(13), repeatedly pick an
/// unstable inequality, AND the left-hand side with the right-hand-side
/// product, and re-activate every inequality whose right-hand side reads a
/// changed variable.
///
/// When `initial` is non-null it replaces the all-ones start of Eq. (12):
/// the fixpoint then computes the largest solution *below* the given
/// assignment. This is how restricted instances — e.g. the distance-bounded
/// balls of strong simulation — reuse the solver.
/// One fixpoint round evaluates every unstable inequality against the
/// round-start assignment (the results are per-inequality AND-masks), then
/// merges the masks into the candidate vectors in fixed worklist order on
/// the calling thread. Because each mask is a pure function of the
/// round-start state and the merge order never depends on scheduling, the
/// result is bit-identical for every thread count — and for
/// `incremental_eval` on vs off, since a delta-maintained accumulator
/// reproduces exactly the Eq. (9) product a full evaluation would compute
/// (rounds/evaluations/updates agree too, not just the fixpoint).
///
/// When `options.num_threads != 1` a transient pool is spun up for this one
/// call; long-lived consumers should hold a SimEngine, which owns a
/// persistent pool (and the caches) and passes it to the overload below.
Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options = {},
                  const std::vector<util::BitVector>* initial = nullptr);

/// Pool-reusing overload: evaluates rounds through `pool` when it is
/// non-null, inline otherwise. `options.num_threads` is ignored in favor of
/// the pool actually passed. `control` (borrowed, may be null) is checked
/// at round boundaries; see SolveControl.
Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial,
                  util::ThreadPool* pool,
                  const SolveControl* control = nullptr);

/// Warm-start entry point (sim::StandingQuery): like the pool overload of
/// SolveSoi, plus a WarmStart that seeds the first round's worklist with
/// only the armed inequalities and threads incremental state across
/// solves. `warm == nullptr` (or a default WarmStart) degrades to the
/// plain solve. With an all-false arming mask and an `initial` equal to a
/// converged fixpoint the solve performs zero rounds — a no-op delta is
/// free.
///
/// `scratch` (borrowed, may be null) is a recyclable workspace: non-null
/// runs the solve on the scratch's buffers and leaves them prepared for
/// the next same-width solve; null allocates a transient workspace through
/// the identical code path, so pooled and unpooled solves differ only in
/// where the buffers came from.
Solution SolveSoiWarm(const Soi& soi, const graph::GraphDatabase& db,
                      const SolverOptions& options,
                      const std::vector<util::BitVector>* initial,
                      util::ThreadPool* pool, const SolveControl* control,
                      const WarmStart* warm, SolveScratch* scratch = nullptr);

}  // namespace sparqlsim::sim
