// Tests the "specific data complexity hypothesis" of Sect. 3.3: naive
// implementations of HHK and of Ma et al.'s algorithm should show no
// *order-of-magnitude* difference in the labeled graph query setting,
// while the SOI solver with its adaptive strategies beats both.

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/hhk_baseline.h"
#include "sim/ma_baseline.h"
#include "sim/pruner.h"

namespace sparqlsim {
namespace {

void RunWorkload(const char* dataset_name, const graph::GraphDatabase& db,
                 const std::vector<datagen::NamedQuery>& queries) {
  sim::SparqlSimProcessor processor(&db);

  std::printf("\n[%s]\n", dataset_name);
  std::printf("%-6s %12s %12s %12s %14s\n", "Query", "t_SOI", "t_MA", "t_HHK",
              "MA/HHK ratio");
  bench::PrintRule(62);

  for (const auto& [id, text] : queries) {
    sparql::Query query = bench::ParseOrDie(text);
    if (!query.where->IsBgp()) continue;
    bench::PatternWithConstants p =
        bench::BgpToDataPattern(query.where->triples(), db);

    double t_soi =
        bench::TimeAverage([&] { processor.Solve(*query.where); });
    double t_ma = bench::TimeAverage([&] {
      if (p.satisfiable) sim::MaDualSimulation(p.pattern, db, p.constants);
    });
    double t_hhk = bench::TimeAverage([&] {
      if (p.satisfiable) sim::HhkDualSimulation(p.pattern, db, p.constants);
    });
    std::printf("%-6s %12.5f %12.5f %12.5f %13.2fx\n", id.c_str(), t_soi,
                t_ma, t_hhk, t_hhk > 0 ? t_ma / t_hhk : 0.0);
  }
}

int Run() {
  std::printf("Sect. 3.3 hypothesis: naive HHK vs naive Ma et al. in the "
              "labeled graph query setting (seconds)\n");
  graph::GraphDatabase dbp = bench::MakeBenchDbpedia();
  RunWorkload("DBpedia-like (B)", dbp, datagen::BenchmarkQueries());
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main() { return sparqlsim::Run(); }
