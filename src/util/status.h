#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sparqlsim::util {

/// Lightweight success/error carrier (no exceptions on parse paths).
class Status {
 public:
  /// The success value; ok() is true and message() is empty.
  static Status Ok() { return Status(true, {}); }
  /// An error with a human-readable message.
  static Status Error(std::string message) {
    return Status(false, std::move(message));
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  Status(bool ok, std::string message) : ok_(ok), message_(std::move(message)) {}

  bool ok_;
  std::string message_;
};

/// Either a value or an error status. Used by parsers and loaders.
///
/// Converts implicitly from both T and Status so `return value;` and
/// `return Status::Error(...);` work symmetrically; constructing from an
/// ok Status is a programming error (asserted).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Status& status() const {
    assert(!ok());
    return std::get<Status>(data_);
  }

  const std::string& error_message() const { return status().message(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sparqlsim::util
