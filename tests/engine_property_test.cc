// Property tests of the evaluation engine against a brute-force reference
// implementation of the SPARQL semantics of Sect. 4 of the paper:
// [[BGP]] by exhaustive candidate enumeration, AND as compatibility join,
// OPTIONAL per the left-outer definition, UNION as set union. The oracle
// shares no code with the engine.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "datagen/random_graphs.h"
#include "engine/evaluator.h"
#include "sim/sim_engine.h"
#include "sim/soi_cache.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace sparqlsim::engine {
namespace {

/// A candidate mapping mu: variable name -> node id (partial).
using Mu = std::map<std::string, uint32_t>;

bool Compatible(const Mu& a, const Mu& b) {
  for (const auto& [var, value] : a) {
    auto it = b.find(var);
    if (it != b.end() && it->second != value) return false;
  }
  return true;
}

Mu Merge(const Mu& a, const Mu& b) {
  Mu merged = a;
  merged.insert(b.begin(), b.end());
  return merged;
}

/// Exhaustive BGP evaluation: try every assignment of the pattern's
/// variables (tiny node universes only).
std::set<Mu> EvalBgpNaive(const std::vector<sparql::TriplePattern>& triples,
                          const graph::GraphDatabase& db) {
  std::vector<std::string> vars;
  for (const sparql::TriplePattern& t : triples) {
    for (const sparql::Term* term : {&t.subject, &t.object}) {
      if (term->IsVariable() &&
          std::find(vars.begin(), vars.end(), term->text()) == vars.end()) {
        vars.push_back(term->text());
      }
    }
  }
  std::set<Mu> result;
  const size_t n = db.NumNodes();
  std::vector<uint32_t> assignment(vars.size(), 0);
  while (true) {
    Mu mu;
    for (size_t i = 0; i < vars.size(); ++i) mu[vars[i]] = assignment[i];
    bool match = true;
    for (const sparql::TriplePattern& t : triples) {
      auto value = [&](const sparql::Term& term) -> std::optional<uint32_t> {
        if (term.IsVariable()) return mu.at(term.text());
        return db.nodes().Lookup(term.text());
      };
      auto s = value(t.subject);
      auto o = value(t.object);
      auto p = db.predicates().Lookup(t.predicate.text());
      if (!s || !o || !p || !db.Forward(*p).Test(*s, *o)) {
        match = false;
        break;
      }
    }
    if (match) result.insert(mu);
    // Next assignment (odometer).
    size_t pos = 0;
    while (pos < assignment.size()) {
      if (++assignment[pos] < n) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == assignment.size()) break;
    if (vars.empty()) break;
  }
  if (vars.empty()) {
    // All-constant BGP handled above with a single (empty) assignment.
    bool ok = true;
    for (const sparql::TriplePattern& t : triples) {
      auto s = db.nodes().Lookup(t.subject.text());
      auto o = db.nodes().Lookup(t.object.text());
      auto p = db.predicates().Lookup(t.predicate.text());
      if (!s || !o || !p || !db.Forward(*p).Test(*s, *o)) ok = false;
    }
    result.clear();
    if (ok) result.insert(Mu{});
  }
  return result;
}

/// Recursive reference semantics (Sect. 4.2/4.3 definitions verbatim).
std::set<Mu> EvalNaive(const sparql::Pattern& p,
                       const graph::GraphDatabase& db) {
  switch (p.kind()) {
    case sparql::PatternKind::kBgp:
      return EvalBgpNaive(p.triples(), db);
    case sparql::PatternKind::kJoin: {
      std::set<Mu> left = EvalNaive(p.left(), db);
      std::set<Mu> right = EvalNaive(p.right(), db);
      std::set<Mu> out;
      for (const Mu& a : left) {
        for (const Mu& b : right) {
          if (Compatible(a, b)) out.insert(Merge(a, b));
        }
      }
      return out;
    }
    case sparql::PatternKind::kOptional: {
      std::set<Mu> left = EvalNaive(p.left(), db);
      std::set<Mu> right = EvalNaive(p.right(), db);
      std::set<Mu> out;
      for (const Mu& a : left) {
        bool extended = false;
        for (const Mu& b : right) {
          if (Compatible(a, b)) {
            out.insert(Merge(a, b));
            extended = true;
          }
        }
        if (!extended) out.insert(a);
      }
      return out;
    }
    case sparql::PatternKind::kUnion: {
      std::set<Mu> out = EvalNaive(p.left(), db);
      std::set<Mu> right = EvalNaive(p.right(), db);
      out.insert(right.begin(), right.end());
      return out;
    }
  }
  return {};
}

std::set<Mu> FromSolutionSet(const SolutionSet& rows) {
  std::set<Mu> out;
  for (size_t i = 0; i < rows.NumRows(); ++i) {
    Mu mu;
    for (size_t c = 0; c < rows.Arity(); ++c) {
      if (rows.Row(i)[c] != kUnbound) mu[rows.vars()[c]] = rows.Row(i)[c];
    }
    out.insert(mu);
  }
  return out;
}

struct PropertyCase {
  uint64_t seed;
  JoinOrderPolicy policy;
};

class EngineVsOracle : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EngineVsOracle, RandomQueriesMatchReferenceSemantics) {
  const PropertyCase& param = GetParam();
  util::Rng rng(param.seed);

  datagen::RandomGraphConfig config;
  config.num_nodes = 6 + rng.NextBounded(5);  // tiny: oracle enumerates n^k
  config.num_edges = 15 + rng.NextBounded(25);
  config.num_labels = 2;
  config.seed = param.seed * 97 + 1;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  auto var = [&](int k) { return "?v" + std::to_string(rng.NextBounded(k)); };
  auto triple = [&](int k) {
    std::string p = "<p" + std::to_string(rng.NextBounded(2)) + ">";
    std::string s = rng.NextBool(0.15)
                        ? "<n" + std::to_string(rng.NextBounded(
                                     config.num_nodes)) + ">"
                        : var(k);
    return s + " " + p + " " + var(k) + " .";
  };

  // Random shapes: BGP / BGP+OPTIONAL / UNION of BGPs / BGP AND OPTIONAL.
  std::string text = "SELECT * WHERE { ";
  switch (rng.NextBounded(4)) {
    case 0:
      text += triple(3) + " " + triple(3) + " ";
      break;
    case 1:
      text += triple(2) + " OPTIONAL { " + triple(4) + " } ";
      break;
    case 2:
      text += "{ " + triple(2) + " } UNION { " + triple(2) + " } ";
      break;
    default:
      text += triple(2) + " OPTIONAL { " + triple(3) + " } " + triple(3) +
              " ";
      break;
  }
  text += "}";

  auto parsed = sparql::Parser::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  Evaluator evaluator(&db, {param.policy});
  std::set<Mu> actual = FromSolutionSet(evaluator.EvaluatePattern(*query.where));
  std::set<Mu> expected = EvalNaive(*query.where, db);
  EXPECT_EQ(actual, expected) << text;
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    cases.push_back({seed, JoinOrderPolicy::kRdfoxLike});
    cases.push_back({seed, JoinOrderPolicy::kVirtuosoLike});
    cases.push_back({seed, JoinOrderPolicy::kAsWritten});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineVsOracle,
                         ::testing::ValuesIn(MakeCases()));

// ---------------------------------------------------------------------------
// Cache-consistency property: cached vs cache-free pruning agree across
// interleaved database "mutations" (Restrict() generation bumps)
// ---------------------------------------------------------------------------

/// Random query text over the p0/p1/p2, n0..n{k-1} universe of
/// MakeRandomDatabase: BGPs, OPTIONAL, and UNION shapes.
std::string RandomPruneQuery(util::Rng& rng, size_t num_nodes) {
  auto var = [&](int k) { return "?v" + std::to_string(rng.NextBounded(k)); };
  auto triple = [&](int k) {
    std::string p = "<p" + std::to_string(rng.NextBounded(3)) + ">";
    std::string s =
        rng.NextBool(0.2)
            ? "<n" + std::to_string(rng.NextBounded(num_nodes)) + ">"
            : var(k);
    return s + " " + p + " " + var(k) + " . ";
  };
  std::string text = "SELECT * WHERE { ";
  switch (rng.NextBounded(3)) {
    case 0:
      text += triple(3) + triple(3);
      break;
    case 1:
      text += triple(2) + "OPTIONAL { " + triple(3) + "} ";
      break;
    default:
      text += "{ " + triple(2) + "} UNION { " + triple(2) + "} ";
      break;
  }
  return text + "}";
}

void ExpectSamePrune(const sim::PruneReport& cached,
                     const sim::PruneReport& plain,
                     const std::string& context) {
  EXPECT_EQ(cached.kept_triples, plain.kept_triples) << context;
  ASSERT_EQ(cached.var_candidates.size(), plain.var_candidates.size())
      << context;
  for (const auto& [var, bits] : plain.var_candidates) {
    auto it = cached.var_candidates.find(var);
    ASSERT_NE(it, cached.var_candidates.end()) << context << " ?" << var;
    EXPECT_EQ(it->second, bits) << context << " ?" << var;
  }
}

class CacheConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheConsistency, CachedAndUncachedPruningAgreeAcrossGenerations) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed * 131 + 7);

  datagen::RandomGraphConfig config;
  config.num_nodes = 30;
  config.num_edges = 120;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  // The nastiest cache configuration: tiny LRU capacity (evictions mid-run)
  // plus eager generation GC, shared across every engine below.
  auto cache =
      std::make_shared<sim::SoiCache>(sim::SoiCache::Options{3, true});

  // A small pool of query texts reused across steps, so later steps replay
  // queries whose entries were cached against earlier (now stale)
  // generations.
  std::vector<sparql::Query> pool;
  for (int q = 0; q < 5; ++q) {
    auto parsed =
        sparql::Parser::Parse(RandomPruneQuery(rng, config.num_nodes));
    ASSERT_TRUE(parsed.ok()) << parsed.error_message();
    pool.push_back(std::move(parsed).value());
  }

  sim::SolverOptions no_cache;
  no_cache.cache_sois = false;
  no_cache.cache_solutions = false;

  for (int step = 0; step < 3; ++step) {
    sim::SimEngine cached_engine(&db, sim::SolverOptions{}, cache);
    sim::SimEngine plain_engine(&db, no_cache);
    // Each query twice: the second run hits whatever the first cached.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t q = 0; q < pool.size(); ++q) {
        ExpectSamePrune(cached_engine.Prune(pool[q]),
                        plain_engine.Prune(pool[q]),
                        "seed " + std::to_string(seed) + " step " +
                            std::to_string(step) + " pass " +
                            std::to_string(pass) + " query " +
                            std::to_string(q));
      }
    }

    // Mutate the database: keep a random ~85% of the triples. Restrict()
    // assigns a fresh generation, which must invalidate every cached
    // artifact of the old one.
    std::vector<graph::Triple> kept;
    for (const graph::Triple& t : db.AllTriples()) {
      if (!rng.NextBool(0.15)) kept.push_back(t);
    }
    uint64_t old_generation = db.generation();
    db = db.Restrict(kept);
    ASSERT_NE(db.generation(), old_generation);
  }

  // The shared bounded cache honored its capacity throughout.
  EXPECT_LE(cache->NumSois(), 3u);
  EXPECT_LE(cache->NumSolutions(), 3u);
  // Generation GC actually fired: step 1+ queries carry newer generations.
  EXPECT_GT(cache->stats().generation_evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheConsistency,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Kernel-mode property: the candidate-set representation switch must be
// invisible to pruning — every kernel mode, thread count, and incremental
// setting produces the same PruneReport on the same random queries.
// ---------------------------------------------------------------------------

class KernelModeConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelModeConsistency, PruningAgreesAcrossKernelModes) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed * 277 + 11);

  datagen::RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 240;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  std::vector<sparql::Query> pool;
  for (int q = 0; q < 4; ++q) {
    auto parsed =
        sparql::Parser::Parse(RandomPruneQuery(rng, config.num_nodes));
    ASSERT_TRUE(parsed.ok()) << parsed.error_message();
    pool.push_back(std::move(parsed).value());
  }

  auto options = [](sim::SolverOptions::KernelMode kernel, size_t threads,
                    bool incremental) {
    sim::SolverOptions o;
    o.kernel_mode = kernel;
    o.num_threads = threads;
    o.incremental_eval = incremental;
    o.cache_sois = false;  // differential runs must actually solve
    o.cache_solutions = false;
    return o;
  };

  sim::SimEngine reference(
      &db, options(sim::SolverOptions::KernelMode::kDense, 1, false));
  for (auto kernel : {sim::SolverOptions::KernelMode::kAuto,
                      sim::SolverOptions::KernelMode::kDense,
                      sim::SolverOptions::KernelMode::kCompressed}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (bool incremental : {false, true}) {
        sim::SimEngine engine(&db, options(kernel, threads, incremental));
        for (size_t q = 0; q < pool.size(); ++q) {
          ExpectSamePrune(
              engine.Prune(pool[q]), reference.Prune(pool[q]),
              "seed " + std::to_string(seed) + " kernel " +
                  std::to_string(static_cast<int>(kernel)) + " threads " +
                  std::to_string(threads) + " inc " +
                  std::to_string(incremental) + " query " +
                  std::to_string(q));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelModeConsistency,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace sparqlsim::engine
