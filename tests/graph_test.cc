#include "graph/graph_database.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/dictionary.h"
#include "graph/graph.h"
#include "graph/ntriples.h"

namespace sparqlsim::graph {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  uint32_t a = d.Intern("alpha");
  uint32_t b = d.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alpha"), a);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Name(a), "alpha");
  EXPECT_EQ(d.Lookup("beta"), b);
  EXPECT_FALSE(d.Lookup("gamma").has_value());
}

TEST(DictionaryTest, DenseFirstSeenIds) {
  Dictionary d;
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(d.Intern("n" + std::to_string(i)), i);
  }
}

TEST(GraphTest, EdgesAndLabels) {
  Graph g(3);
  g.AddEdge(0, 2, 1);
  g.AddEdge(1, 0, 2);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.LabelUpperBound(), 3u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, Connectivity) {
  Graph g(4);
  g.AddEdge(0, 0, 1);
  EXPECT_FALSE(g.IsConnected());  // 2, 3 unreachable
  g.AddEdge(2, 0, 1);
  g.AddEdge(3, 0, 2);
  EXPECT_TRUE(g.IsConnected());  // undirected sense
}

TEST(GraphDatabaseTest, BuildAndStats) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("x", "p", "y").ok());
  ASSERT_TRUE(b.AddTriple("x", "p", "z").ok());
  ASSERT_TRUE(b.AddTriple("y", "q", "z").ok());
  GraphDatabase db = std::move(b).Build();

  EXPECT_EQ(db.NumNodes(), 3u);
  EXPECT_EQ(db.NumPredicates(), 2u);
  EXPECT_EQ(db.NumTriples(), 3u);

  uint32_t p = *db.predicates().Lookup("p");
  EXPECT_EQ(db.PredicateCardinality(p), 2u);
  EXPECT_EQ(db.DistinctSubjects(p), 1u);
  EXPECT_EQ(db.DistinctObjects(p), 2u);

  uint32_t x = *db.nodes().Lookup("x");
  EXPECT_TRUE(db.ForwardSummary(p).Test(x));
  EXPECT_FALSE(db.BackwardSummary(p).Test(x));
}

TEST(GraphDatabaseTest, ForwardBackwardAreTransposes) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("a", "p", "b").ok());
  ASSERT_TRUE(b.AddTriple("c", "p", "b").ok());
  GraphDatabase db = std::move(b).Build();
  uint32_t p = *db.predicates().Lookup("p");
  for (size_t s = 0; s < db.NumNodes(); ++s) {
    for (size_t o = 0; o < db.NumNodes(); ++o) {
      EXPECT_EQ(db.Forward(p).Test(s, o), db.Backward(p).Test(o, s));
    }
  }
}

TEST(GraphDatabaseTest, LiteralSubjectRejected) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTripleLiteral("city", "population", "70063").ok());
  uint32_t lit = b.InternLiteral("70063");
  uint32_t p = b.InternPredicate("population");
  uint32_t o = b.InternNode("city");
  util::Status status = b.AddTripleIds(lit, p, o);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("literal"), std::string::npos);
}

TEST(GraphDatabaseTest, DuplicateTriplesMerge) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("a", "p", "b").ok());
  ASSERT_TRUE(b.AddTriple("a", "p", "b").ok());
  GraphDatabase db = std::move(b).Build();
  EXPECT_EQ(db.NumTriples(), 1u);
}

TEST(GraphDatabaseTest, ForEachTripleRoundTrip) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("a", "p", "b").ok());
  ASSERT_TRUE(b.AddTriple("b", "q", "c").ok());
  ASSERT_TRUE(b.AddTriple("c", "p", "a").ok());
  GraphDatabase db = std::move(b).Build();
  std::vector<Triple> all = db.AllTriples();
  EXPECT_EQ(all.size(), 3u);
  for (const Triple& t : all) {
    EXPECT_TRUE(db.Forward(t.predicate).Test(t.subject, t.object));
  }
}

TEST(GraphDatabaseTest, RestrictSharesDictionaries) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("a", "p", "b").ok());
  ASSERT_TRUE(b.AddTriple("b", "q", "c").ok());
  GraphDatabase db = std::move(b).Build();

  std::vector<Triple> kept = {
      {*db.nodes().Lookup("a"), *db.predicates().Lookup("p"),
       *db.nodes().Lookup("b")}};
  GraphDatabase pruned = db.Restrict(kept);
  EXPECT_EQ(pruned.NumTriples(), 1u);
  EXPECT_EQ(pruned.NumNodes(), db.NumNodes());  // same universe
  EXPECT_EQ(*pruned.nodes().Lookup("a"), *db.nodes().Lookup("a"));
  uint32_t q = *pruned.predicates().Lookup("q");
  EXPECT_EQ(pruned.PredicateCardinality(q), 0u);
}

TEST(GraphDatabaseTest, MemoryReports) {
  GraphDatabaseBuilder b;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        b.AddTriple("s" + std::to_string(i % 10), "p",
                    "o" + std::to_string(i))
            .ok());
  }
  GraphDatabase db = std::move(b).Build();
  EXPECT_GT(db.ApproxMatrixBytes(), 0u);
  EXPECT_GT(db.GapEncodedMatrixBytes(), 0u);
}

TEST(NTriplesTest, ParseBasicLines) {
  std::istringstream in(
      "<a> <p> <b> .\n"
      "# comment\n"
      "\n"
      "<b> <pop> \"1234\" .\n"
      "<c> <label> \"hello \\\"world\\\"\" .\n");
  GraphDatabaseBuilder b;
  ASSERT_TRUE(NTriples::Load(in, &b).ok());
  GraphDatabase db = std::move(b).Build();
  EXPECT_EQ(db.NumTriples(), 3u);
  EXPECT_TRUE(db.nodes().Lookup("hello \"world\"").has_value());
  EXPECT_TRUE(db.IsLiteral(*db.nodes().Lookup("1234")));
}

TEST(NTriplesTest, ParseErrorsDiagnoseLine) {
  std::istringstream in("<a> <p> <b> .\nbroken line\n");
  GraphDatabaseBuilder b;
  util::Status status = NTriples::Load(in, &b);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, MissingDotRejected) {
  std::istringstream in("<a> <p> <b>\n");
  GraphDatabaseBuilder b;
  EXPECT_FALSE(NTriples::Load(in, &b).ok());
}

TEST(NTriplesTest, WriteReadRoundTrip) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("s", "p", "o").ok());
  ASSERT_TRUE(b.AddTripleLiteral("s", "pop", "12\"34").ok());
  GraphDatabase db = std::move(b).Build();

  std::ostringstream out;
  NTriples::Write(db, out);
  std::istringstream in(out.str());
  GraphDatabaseBuilder b2;
  ASSERT_TRUE(NTriples::Load(in, &b2).ok());
  GraphDatabase db2 = std::move(b2).Build();
  EXPECT_EQ(db2.NumTriples(), db.NumTriples());
  EXPECT_TRUE(db2.IsLiteral(*db2.nodes().Lookup("12\"34")));
}

TEST(NTriplesTest, DatatypeSuffixSkipped) {
  std::istringstream in("<a> <p> \"42\"^^<xsd:integer> .\n");
  GraphDatabaseBuilder b;
  ASSERT_TRUE(NTriples::Load(in, &b).ok());
  GraphDatabase db = std::move(b).Build();
  EXPECT_TRUE(db.nodes().Lookup("42").has_value());
}

}  // namespace
}  // namespace sparqlsim::graph
