#pragma once

#include <string>

#include "engine/evaluator.h"
#include "graph/graph_database.h"
#include "sparql/ast.h"

namespace sparqlsim::engine {

/// Renders the evaluation plan the engine would execute for a query under
/// the given policy: the algebra tree with, for every BGP, the join order
/// chosen by the planner and the per-step cardinality estimates. This is
/// the introspection used to understand the Table 4/5 re-planning effects
/// (the paper analysed Virtuoso's query plans the same way, Sect. 5.2).
std::string ExplainQuery(const sparql::Query& query,
                         const graph::GraphDatabase& db,
                         const EvaluatorOptions& options = {});

}  // namespace sparqlsim::engine
