#pragma once

#include "graph/graph_database.h"
#include "sim/sim_engine.h"
#include "sim/solver.h"
#include "sparql/ast.h"

namespace sparqlsim::sim {

/// High-level dual simulation processor for SPARQL queries — the paper's
/// SPARQLSIM. This is a convenience facade over SimEngine for one-shot
/// callers: each call constructs a transient engine from the given options,
/// so pool threads and cache entries live only for that call (a multi-branch
/// query still benefits from intra-call caching when the union normal form
/// produces duplicate branches). Hold a SimEngine directly to amortize the
/// pool, reuse SOIs/solutions across repeated queries, and recycle solve
/// scratch (a transient engine's ScratchPool dies with the call, so only
/// multi-branch calls see any reuse).
class SparqlSimProcessor {
 public:
  /// `db` is borrowed, not owned: it must outlive the processor.
  explicit SparqlSimProcessor(const graph::GraphDatabase* db) : db_(db) {}

  /// Full pipeline: query -> pruned triple set + candidates.
  PruneReport Prune(const sparql::Query& query,
                    const SolverOptions& options = {}) const;

  /// Builds and solves the SOI of a union-free pattern without extracting
  /// triples (what Table 2 times for BGPs).
  Solution Solve(const sparql::Pattern& union_free_pattern,
                 const SolverOptions& options = {}) const;

 private:
  const graph::GraphDatabase* db_;
};

}  // namespace sparqlsim::sim
