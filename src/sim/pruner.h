#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/graph_database.h"
#include "graph/triple.h"
#include "sim/solver.h"
#include "sparql/ast.h"
#include "util/bitvector.h"

namespace sparqlsim::sim {

/// Outcome of dual-simulation processing of a SPARQL query (Sect. 5):
/// the pruned triple set plus per-variable candidate sets.
struct PruneReport {
  /// Triples surviving the prune, sorted and deduplicated.
  ///
  /// Soundness (Thm. 2 / Def. 3): no match is lost — every solution of the
  /// query on the full database is also a solution on
  /// GraphDatabase::Restrict(kept_triples). For the monotone fragment
  /// (BGP, AND, UNION) the pruned result set is *equal* to the full one.
  /// For OPTIONAL queries it may be a superset: OPTIONAL is non-monotone,
  /// so dropping triples that no full match needs can turn a formerly
  /// bound optional part unbound and unblock additional rows — the
  /// "overapproximation of the actual SPARQL query results" the paper
  /// describes in Sect. 1, intended for further inspection, filtering, or
  /// exact re-evaluation.
  std::vector<graph::Triple> kept_triples;

  /// Per original query variable: union of the candidate sets of all its
  /// SOI occurrence groups across all union-free branches.
  std::map<std::string, util::BitVector> var_candidates;

  /// Aggregated solver statistics over all union-free branches.
  SolveStats stats;
  /// Number of union-free branches processed (Prop. 3).
  size_t num_branches = 0;
  /// End-to-end wall time: SOI construction + solving + triple extraction.
  double total_seconds = 0.0;
};

/// High-level dual simulation processor for SPARQL queries — the paper's
/// SPARQLSIM. Splits the query into union-free branches (Prop. 3), builds
/// and solves the SOI of each branch (Sect. 4), and extracts the union of
/// the surviving triples (the per-query database pruning of Sect. 5).
class SparqlSimProcessor {
 public:
  /// `db` is borrowed, not owned: it must outlive the processor.
  explicit SparqlSimProcessor(const graph::GraphDatabase* db) : db_(db) {}

  /// Full pipeline: query -> pruned triple set + candidates.
  PruneReport Prune(const sparql::Query& query,
                    const SolverOptions& options = {}) const;

  /// Builds and solves the SOI of a union-free pattern without extracting
  /// triples (what Table 2 times for BGPs).
  Solution Solve(const sparql::Pattern& union_free_pattern,
                 const SolverOptions& options = {}) const;

 private:
  const graph::GraphDatabase* db_;
};

}  // namespace sparqlsim::sim
