#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "util/admission_gate.h"
#include "util/gap_codec.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace sparqlsim::util {
namespace {

TEST(GapCodecTest, RoundTripSimple) {
  BitVector v = BitVector::FromIndices(20, {0, 1, 2, 10, 19});
  auto encoded = GapCodec::Encode(v);
  EXPECT_EQ(GapCodec::Decode(encoded, 20), v);
  EXPECT_EQ(GapCodec::EncodedSize(v), encoded.size());
}

TEST(GapCodecTest, EmptyAndFull) {
  BitVector empty(100);
  EXPECT_EQ(GapCodec::Decode(GapCodec::Encode(empty), 100), empty);
  BitVector full(100, true);
  EXPECT_EQ(GapCodec::Decode(GapCodec::Encode(full), 100), full);
  // A full vector is one run: encoded size is tiny.
  EXPECT_LE(GapCodec::EncodedSize(full), 3u);
}

TEST(GapCodecTest, LongRunsCompressWell) {
  // One bit set in a million: two varint runs, a handful of bytes —
  // the gap-length economics of Sect. 3.3.
  BitVector v(1'000'000);
  v.Set(999'999);
  EXPECT_LE(GapCodec::EncodedSize(v), 8u);
  EXPECT_EQ(GapCodec::Decode(GapCodec::Encode(v), 1'000'000), v);
}

TEST(GapCodecTest, RandomRoundTrips) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.NextBounded(2000);
    BitVector v(n);
    double density = rng.NextDouble();
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(density)) v.Set(i);
    }
    EXPECT_EQ(GapCodec::Decode(GapCodec::Encode(v), n), v) << "n=" << n;
  }
}

TEST(AdmissionGateTest, TryAcquireHonorsTheLimit) {
  AdmissionGate gate(2);
  EXPECT_EQ(gate.limit(), 2u);
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_FALSE(gate.TryAcquire());  // full
  EXPECT_EQ(gate.InUse(), 2u);
  gate.Release();
  EXPECT_TRUE(gate.TryAcquire());
  gate.Release();
  gate.Release();
  EXPECT_EQ(gate.InUse(), 0u);
}

TEST(AdmissionGateTest, ZeroLimitIsClampedToOne) {
  AdmissionGate gate(0);
  EXPECT_EQ(gate.limit(), 1u);
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_FALSE(gate.TryAcquire());
  gate.Release();
}

TEST(AdmissionGateTest, ConcurrentProducersNeverExceedTheLimit) {
  constexpr size_t kLimit = 3;
  constexpr size_t kProducers = 8;
  constexpr size_t kRoundsEach = 50;
  AdmissionGate gate(kLimit);
  std::atomic<size_t> inside{0};
  std::atomic<size_t> peak{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (size_t i = 0; i < kRoundsEach; ++i) {
        gate.Acquire();
        size_t now = inside.fetch_add(1) + 1;
        size_t seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        inside.fetch_sub(1);
        gate.Release();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_LE(peak.load(), kLimit);
  EXPECT_EQ(gate.InUse(), 0u);
  gate.WaitIdle();  // must not block when idle
}

TEST(AdmissionGateTest, LowPriorityYieldsToAWaitingHighProducer) {
  AdmissionGate gate(1);
  gate.Acquire();  // occupy the only slot

  std::atomic<bool> high_admitted{false};
  std::thread high([&] {
    gate.Acquire(AdmissionGate::Priority::kHigh);
    high_admitted = true;
  });
  // Wait until the high producer is registered as waiting; from that point
  // a low producer may not take the freed slot.
  while (gate.stats().high.blocked == 0) std::this_thread::yield();
  EXPECT_FALSE(gate.TryAcquire(AdmissionGate::Priority::kLow));

  gate.Release();
  high.join();
  EXPECT_TRUE(high_admitted.load());
  // With no high producer waiting anymore, low admits normally once a slot
  // frees.
  gate.Release();
  EXPECT_TRUE(gate.TryAcquire(AdmissionGate::Priority::kLow));
  gate.Release();
  gate.WaitIdle();
}

TEST(AdmissionGateTest, PerClassStatsCountAdmissionsAndBlocking) {
  AdmissionGate gate(2);
  gate.Acquire(AdmissionGate::Priority::kHigh);           // free slot, no block
  ASSERT_TRUE(gate.TryAcquire(AdmissionGate::Priority::kLow));  // fills up

  std::thread blocked_low([&] { gate.Acquire(AdmissionGate::Priority::kLow); });
  while (gate.stats().low.blocked == 0) std::this_thread::yield();
  gate.Release();
  blocked_low.join();

  AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.high.admitted, 1u);
  EXPECT_EQ(stats.high.blocked, 0u);
  EXPECT_EQ(stats.high.wait_seconds, 0.0);
  EXPECT_EQ(stats.low.admitted, 2u);
  // Only the Acquire that actually parked counts as blocked (and only it
  // accumulates wait time).
  EXPECT_EQ(stats.low.blocked, 1u);
  EXPECT_GE(stats.low.wait_seconds, 0.0);

  gate.Release();
  gate.Release();
  gate.WaitIdle();
}

TEST(AdmissionGateTest, SteadyLowTrafficCannotStarveHigh) {
  // One slot, a stream of low producers, one high producer arriving while
  // the slot is busy: the high producer must get the next free slot even
  // though low producers are queued before and after it.
  AdmissionGate gate(1);
  gate.Acquire(AdmissionGate::Priority::kLow);

  std::atomic<bool> high_done{false};
  std::atomic<size_t> low_done{0};
  std::vector<std::thread> lows;
  for (int i = 0; i < 3; ++i) {
    lows.emplace_back([&] {
      gate.Acquire(AdmissionGate::Priority::kLow);
      ++low_done;
      gate.Release();
    });
  }
  std::thread high([&] {
    gate.Acquire(AdmissionGate::Priority::kHigh);
    high_done = true;
    gate.Release();
  });
  while (gate.stats().high.blocked == 0) std::this_thread::yield();

  gate.Release();  // first freed slot goes to the high class
  high.join();
  EXPECT_TRUE(high_done.load());
  for (std::thread& t : lows) t.join();
  EXPECT_EQ(low_done.load(), 3u);
  gate.WaitIdle();
}

TEST(AdmissionGateTest, WaitIdleBlocksUntilAllSlotsReleased) {
  AdmissionGate gate(4);
  gate.Acquire();
  gate.Acquire();
  std::atomic<bool> idle_seen{false};
  std::thread waiter([&] {
    gate.WaitIdle();
    idle_seen = true;
  });
  gate.Release();
  EXPECT_FALSE(idle_seen.load());  // one slot still held
  gate.Release();
  waiter.join();
  EXPECT_TRUE(idle_seen.load());
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t x = rng.NextInRange(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(10)]++;
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(ZipfTest, RankZeroMostLikely) {
  Rng rng(13);
  ZipfSampler zipf(50, 1.1);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
  // Heavy skew: top rank takes a significant share.
  EXPECT_GT(counts[0], 50000 / 10);
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status e = Status::Error("boom");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "boom");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::Error("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error_message(), "nope");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  double first = w.ElapsedMillis();
  EXPECT_LE(first, w.ElapsedMillis());  // monotone
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace sparqlsim::util
