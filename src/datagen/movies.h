#pragma once

#include "graph/graph_database.h"

namespace sparqlsim::datagen {

/// The example graph database of Fig. 1(a) in the paper: movies, directors,
/// awards, and birthplaces around "Mission: Impossible" and the early Bond
/// films. Used by the quickstart example and by the worked-example tests
/// that replay dual simulations (1) and (2) of Sect. 2.
graph::GraphDatabase MakeMovieDatabase();

}  // namespace sparqlsim::datagen
