#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvector.h"

namespace sparqlsim::util {

/// Gap-length (run-length) encoding of a bit vector.
///
/// The paper (Sect. 3.3) points out that bit-vector storage techniques such
/// as gap-length encoding make the memory footprint of adjacency matrices
/// depend on run structure rather than raw bit count. This codec stores a
/// bit vector as the sequence of alternating run lengths, starting with the
/// length of the initial zero-run (possibly 0), each length LEB128-varint
/// encoded. It is used for at-rest row storage statistics and round-trip
/// tested against the dense representation.
class GapCodec {
 public:
  /// Encodes `bits` into a byte buffer.
  static std::vector<uint8_t> Encode(const BitVector& bits);

  /// Decodes a buffer produced by Encode. `num_bits` must match the
  /// original vector size.
  static BitVector Decode(const std::vector<uint8_t>& buffer, size_t num_bits);

  /// Encoded size in bytes without materializing the buffer.
  static size_t EncodedSize(const BitVector& bits);

  /// Encoded size of a row given as sorted set-bit indices over a universe
  /// of `num_bits` — O(indices) instead of O(num_bits), which is what
  /// makes whole-database storage reports affordable.
  static size_t EncodedSizeFromIndices(std::span<const uint32_t> indices,
                                       size_t num_bits);
};

}  // namespace sparqlsim::util
