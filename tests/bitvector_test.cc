#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sparqlsim::util {
namespace {

TEST(BitVectorTest, StartsEmpty) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.None());
  EXPECT_FALSE(v.Any());
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector v(70, true);
  EXPECT_EQ(v.Count(), 70u);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(69));
}

TEST(BitVectorTest, SetResetTest) {
  BitVector v(130);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Reset(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, SetAllMasksTail) {
  BitVector v(67);
  v.SetAll();
  EXPECT_EQ(v.Count(), 67u);
}

TEST(BitVectorTest, AndWithReportsChange) {
  BitVector a = BitVector::FromIndices(128, {1, 5, 70});
  BitVector b = BitVector::FromIndices(128, {1, 5, 70, 90});
  EXPECT_FALSE(a.AndWith(b));  // subset: no change
  BitVector c = BitVector::FromIndices(128, {1, 70});
  EXPECT_TRUE(a.AndWith(c));
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_FALSE(a.Test(5));
}

TEST(BitVectorTest, OrWithReportsChange) {
  BitVector a = BitVector::FromIndices(64, {3});
  BitVector b = BitVector::FromIndices(64, {3});
  EXPECT_FALSE(a.OrWith(b));
  BitVector c = BitVector::FromIndices(64, {9});
  EXPECT_TRUE(a.OrWith(c));
  EXPECT_TRUE(a.Test(9));
}

TEST(BitVectorTest, AndNotWith) {
  BitVector a = BitVector::FromIndices(64, {1, 2, 3});
  BitVector b = BitVector::FromIndices(64, {2});
  EXPECT_TRUE(a.AndNotWith(b));
  EXPECT_EQ(a.ToIndexVector(), (std::vector<uint32_t>{1, 3}));
  EXPECT_FALSE(a.AndNotWith(b));
}

TEST(BitVectorTest, IntersectsWith) {
  BitVector a = BitVector::FromIndices(200, {150});
  BitVector b = BitVector::FromIndices(200, {150, 7});
  BitVector c = BitVector::FromIndices(200, {7});
  EXPECT_TRUE(a.IntersectsWith(b));
  EXPECT_FALSE(a.IntersectsWith(c));
}

TEST(BitVectorTest, IsSubsetOf) {
  BitVector a = BitVector::FromIndices(100, {10, 20});
  BitVector b = BitVector::FromIndices(100, {10, 20, 30});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  BitVector empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
}

TEST(BitVectorTest, FindFirstNext) {
  BitVector v = BitVector::FromIndices(300, {5, 64, 299});
  EXPECT_EQ(v.FindFirst(), 5);
  EXPECT_EQ(v.FindNext(5), 64);
  EXPECT_EQ(v.FindNext(64), 299);
  EXPECT_EQ(v.FindNext(299), -1);
  BitVector empty(300);
  EXPECT_EQ(empty.FindFirst(), -1);
}

TEST(BitVectorTest, ForEachSetBitVisitsAscending) {
  std::vector<uint32_t> indices = {0, 63, 64, 127, 128, 200};
  BitVector v = BitVector::FromIndices(256, indices);
  std::vector<uint32_t> seen;
  v.ForEachSetBit([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, indices);
}

TEST(BitVectorTest, ResizeKeepsPrefix) {
  BitVector v = BitVector::FromIndices(64, {10, 63});
  v.Resize(128);
  EXPECT_TRUE(v.Test(10));
  EXPECT_TRUE(v.Test(63));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, ToStringFormat) {
  BitVector v = BitVector::FromIndices(5, {0, 3});
  EXPECT_EQ(v.ToString(), "10010");
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a.Set(3);
  EXPECT_NE(a, b);
}

/// Word-boundary property sweep: every bulk operation must behave at
/// sizes straddling the 64-bit word boundaries (the MaskTail invariant).
class BitVectorBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorBoundary, BulkOpsRespectSize) {
  const size_t n = GetParam();
  Rng rng(n * 7 + 1);
  BitVector a(n), b(n);
  std::vector<bool> ra(n, false), rb(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.5)) {
      a.Set(i);
      ra[i] = true;
    }
    if (rng.NextBool(0.5)) {
      b.Set(i);
      rb[i] = true;
    }
  }

  BitVector all(n, true);
  EXPECT_EQ(all.Count(), n);

  BitVector and_copy = a;
  and_copy.AndWith(b);
  BitVector or_copy = a;
  or_copy.OrWith(b);
  BitVector andnot_copy = a;
  andnot_copy.AndNotWith(b);
  size_t expected_and = 0, expected_or = 0, expected_andnot = 0;
  bool expected_intersects = false, expected_subset = true;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(and_copy.Test(i), ra[i] && rb[i]);
    EXPECT_EQ(or_copy.Test(i), ra[i] || rb[i]);
    EXPECT_EQ(andnot_copy.Test(i), ra[i] && !rb[i]);
    expected_and += (ra[i] && rb[i]) ? 1 : 0;
    expected_or += (ra[i] || rb[i]) ? 1 : 0;
    expected_andnot += (ra[i] && !rb[i]) ? 1 : 0;
    expected_intersects |= (ra[i] && rb[i]);
    expected_subset &= (!ra[i] || rb[i]);
  }
  EXPECT_EQ(and_copy.Count(), expected_and);
  EXPECT_EQ(or_copy.Count(), expected_or);
  EXPECT_EQ(andnot_copy.Count(), expected_andnot);
  EXPECT_EQ(a.IntersectsWith(b), expected_intersects);
  EXPECT_EQ(a.IsSubsetOf(b), expected_subset);

  // SetAll never leaks past the logical size.
  BitVector full(n);
  full.SetAll();
  EXPECT_EQ(full.Count(), n);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitVectorBoundary,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           191, 192, 193, 255, 256, 1000));

TEST(BitVectorTest, RandomizedAgainstReferenceSet) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.NextBounded(500);
    BitVector v(n);
    std::vector<bool> ref(n, false);
    for (int ops = 0; ops < 200; ++ops) {
      size_t i = rng.NextBounded(n);
      if (rng.NextBool(0.5)) {
        v.Set(i);
        ref[i] = true;
      } else {
        v.Reset(i);
        ref[i] = false;
      }
    }
    size_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(v.Test(i), ref[i]);
      expected += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(v.Count(), expected);
  }
}

}  // namespace
}  // namespace sparqlsim::util
