#include "sim/solver.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

namespace {

/// Unified inequality handle: indices [0, M) are matrix inequalities,
/// [M, M + S) are subordinations.
struct Work {
  std::vector<uint32_t> current;
  std::vector<uint32_t> next;
  std::vector<bool> queued;  // membership in `next`
};

/// What the evaluation phase decided for one unstable inequality. The
/// merge phase replays these tags in worklist order, so the tag plus the
/// mask fully determine the round's effect.
enum class EvalKind : uint8_t {
  kSkip,   // lhs already empty at round start: nothing to do
  kClear,  // rhs empty / predicate absent: lhs drains to the empty set
  kRow,    // mask = chi(rhs) *b A (Eq. 9)
  kCol,    // mask = chi(lhs) filtered by per-column intersection tests
  kSub,    // mask = chi(rhs) (subordination, Eq. 14/15)
};

}  // namespace

void SolveStats::Accumulate(const SolveStats& other) {
  rounds += other.rounds;
  evaluations += other.evaluations;
  updates += other.updates;
  row_evals += other.row_evals;
  col_evals += other.col_evals;
  solve_seconds += other.solve_seconds;
  parallel_rounds += other.parallel_rounds;
  max_round_width = std::max(max_round_width, other.max_round_width);
  threads_used = std::max(threads_used, other.threads_used);
}

bool Solution::AnyCandidate() const {
  for (const util::BitVector& c : candidates) {
    if (c.Any()) return true;
  }
  return false;
}

size_t Solution::RelationSize() const {
  size_t total = 0;
  for (const util::BitVector& c : candidates) total += c.Count();
  return total;
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial) {
  std::unique_ptr<util::ThreadPool> transient;
  if (options.ResolvedThreads() > 1) {
    transient = std::make_unique<util::ThreadPool>(options.ResolvedThreads());
  }
  return SolveSoi(soi, db, options, initial, transient.get());
}

Solution SolveSoi(const Soi& soi, const graph::GraphDatabase& db,
                  const SolverOptions& options,
                  const std::vector<util::BitVector>* initial,
                  util::ThreadPool* pool) {
  util::Stopwatch timer;
  const size_t n = db.NumNodes();
  const size_t num_vars = soi.NumVars();
  const size_t num_matrix = soi.matrix_ineqs.size();
  const size_t num_ineqs = num_matrix + soi.sub_ineqs.size();

  Solution solution;
  solution.candidates.assign(num_vars, util::BitVector(n));
  std::vector<util::BitVector>& chi = solution.candidates;
  std::vector<size_t> counts(num_vars, 0);

  // --- Initialization: Eq. (12) or Eq. (13), constants per Sect. 4.5. ---
  for (size_t v = 0; v < num_vars; ++v) {
    if (soi.unsatisfiable_vars[v]) continue;  // stays empty
    if (initial != nullptr) {
      chi[v] = (*initial)[v];
      if (soi.constants[v]) {
        util::BitVector pin(n);
        pin.Set(*soi.constants[v]);
        chi[v].AndWith(pin);
      }
      continue;
    }
    if (soi.constants[v]) {
      chi[v].Set(*soi.constants[v]);
    } else {
      chi[v].SetAll();
    }
  }
  if (options.summary_init) {
    for (const Soi::Edge& e : soi.edges) {
      if (e.predicate == kEmptyPredicate) {
        chi[e.subject_var].ClearAll();
        chi[e.object_var].ClearAll();
        continue;
      }
      chi[e.subject_var].AndWith(db.ForwardSummary(e.predicate));
      chi[e.object_var].AndWith(db.BackwardSummary(e.predicate));
    }
  }
  for (size_t v = 0; v < num_vars; ++v) counts[v] = chi[v].Count();

  // --- Dependency index: ineqs whose right-hand side reads var v. ---
  std::vector<std::vector<uint32_t>> dependents(num_vars);
  for (size_t i = 0; i < num_matrix; ++i) {
    dependents[soi.matrix_ineqs[i].rhs].push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < soi.sub_ineqs.size(); ++i) {
    dependents[soi.sub_ineqs[i].rhs].push_back(
        static_cast<uint32_t>(num_matrix + i));
  }

  // --- Initial worklist order (sparsity heuristic, Sect. 3.3). ---
  std::vector<uint32_t> order(num_ineqs);
  std::iota(order.begin(), order.end(), 0);
  if (options.order_by_sparsity) {
    auto key = [&](uint32_t idx) -> size_t {
      if (idx >= num_matrix) return SIZE_MAX;  // subordinations last
      const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
      if (m.predicate == kEmptyPredicate) return 0;
      // More empty columns in A == fewer distinct targets: ascending
      // distinct objects (forward) / subjects (backward).
      return m.forward ? db.DistinctObjects(m.predicate)
                       : db.DistinctSubjects(m.predicate);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
  }

  Work work;
  work.current = order;
  work.queued.assign(num_ineqs, false);

  // Per-inequality result slots, reused across rounds. chi and counts are
  // frozen during the evaluation phase — every mask is a pure function of
  // the round-start assignment — so the phase parallelizes with no
  // synchronization beyond the end-of-round barrier, and the sequential
  // merge below replays the slots in worklist order for a scheduling-
  // independent outcome.
  std::vector<util::BitVector> masks;
  std::vector<EvalKind> kinds;

  auto on_change = [&](uint32_t var) {
    counts[var] = chi[var].Count();
    for (uint32_t dep : dependents[var]) {
      if (!work.queued[dep]) {
        work.queued[dep] = true;
        work.next.push_back(dep);
      }
    }
  };

  auto evaluate = [&](size_t k) {
    const uint32_t idx = work.current[k];
    if (idx >= num_matrix) {
      const Soi::SubIneq& s = soi.sub_ineqs[idx - num_matrix];
      kinds[k] = EvalKind::kSub;
      masks[k] = chi[s.rhs];
      return;
    }

    const Soi::MatrixIneq& m = soi.matrix_ineqs[idx];
    if (counts[m.lhs] == 0) {  // cannot shrink further
      kinds[k] = EvalKind::kSkip;
      return;
    }
    if (m.predicate == kEmptyPredicate || counts[m.rhs] == 0) {
      kinds[k] = EvalKind::kClear;
      return;
    }

    const util::BitMatrix& a =
        m.forward ? db.Forward(m.predicate) : db.Backward(m.predicate);
    const util::BitMatrix& a_t =
        m.forward ? db.Backward(m.predicate) : db.Forward(m.predicate);

    bool row_wise = true;
    switch (options.eval_mode) {
      case SolverOptions::EvalMode::kRowWise:
        row_wise = true;
        break;
      case SolverOptions::EvalMode::kColumnWise:
        row_wise = false;
        break;
      case SolverOptions::EvalMode::kDynamic:
        // Paper's rule: row-wise iff chi(rhs) has fewer bits than chi(lhs).
        row_wise = counts[m.rhs] < counts[m.lhs];
        break;
    }

    if (row_wise) {
      kinds[k] = EvalKind::kRow;
      masks[k].Resize(n);
      a.Multiply(chi[m.rhs], &masks[k]);
    } else {
      kinds[k] = EvalKind::kCol;
      // Keep candidate j of lhs iff column j of A intersects chi(rhs);
      // column j of A is row j of A^T.
      masks[k] = chi[m.lhs];
      masks[k].ForEachSetBit([&](uint32_t j) {
        if (!a_t.RowIntersects(j, chi[m.rhs])) masks[k].Reset(j);
      });
    }
  };

  SolveStats& stats = solution.stats;
  stats.threads_used = pool != nullptr ? pool->NumThreads() : 1;
  while (!work.current.empty()) {
    if (options.max_rounds != 0 && stats.rounds >= options.max_rounds) break;
    ++stats.rounds;
    const size_t width = work.current.size();
    stats.max_round_width = std::max(stats.max_round_width, width);
    if (masks.size() < width) {
      masks.resize(width);
      kinds.resize(width);
    }

    // Evaluation phase: chi/counts are read-only until the barrier.
    if (pool != nullptr && width > 1) {
      ++stats.parallel_rounds;
      util::ParallelFor(pool, width, evaluate);
    } else {
      for (size_t k = 0; k < width; ++k) evaluate(k);
    }

    // Merge phase, single-threaded, in worklist order.
    for (size_t k = 0; k < width; ++k) {
      ++stats.evaluations;
      const uint32_t idx = work.current[k];
      const uint32_t lhs = idx >= num_matrix
                               ? soi.sub_ineqs[idx - num_matrix].lhs
                               : soi.matrix_ineqs[idx].lhs;
      bool changed = false;
      switch (kinds[k]) {
        case EvalKind::kSkip:
          continue;
        case EvalKind::kClear:
          changed = chi[lhs].Any();
          if (changed) chi[lhs].ClearAll();
          break;
        case EvalKind::kRow:
          ++stats.row_evals;
          changed = chi[lhs].AndWith(masks[k]);
          break;
        case EvalKind::kCol:
          ++stats.col_evals;
          changed = chi[lhs].AndWith(masks[k]);
          break;
        case EvalKind::kSub:
          changed = chi[lhs].AndWith(masks[k]);
          break;
      }
      if (changed) {
        ++stats.updates;
        on_change(lhs);
      }
    }

    work.current.clear();
    std::swap(work.current, work.next);
    std::fill(work.queued.begin(), work.queued.end(), false);
  }

  stats.solve_seconds = timer.ElapsedSeconds();
  return solution;
}

}  // namespace sparqlsim::sim
