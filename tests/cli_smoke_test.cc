// Minimal end-to-end smoke test of the sparqlsim CLI: write a tiny
// N-Triples database inline, pipe a one-pattern query through `query`,
// `sim`, and `prune`, and check the pipeline agrees with itself. Unlike
// cli_test.cc this does not depend on the datagen tool, so it isolates
// the CLI + parser + engine path.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "cli_test_common.h"

namespace {

using sparqlsim_test::RunCommand;

class CliSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::ofstream out(NtPath());
    out << "<alice> <knows> <bob> .\n"
           "<bob> <knows> <carol> .\n"
           "<carol> <knows> <alice> .\n"
           "<dave> <likes> <carol> .\n";
    ASSERT_TRUE(out.good());
  }
  static std::string NtPath() {
    return ::testing::TempDir() + "sparqlsim_cli_smoke.nt";
  }
};

TEST_F(CliSmokeTest, QueryEvaluatesInlineDatabase) {
  int code = 0;
  std::string out = RunCommand(
      "echo 'SELECT * WHERE { ?x <knows> ?y . }' | " +
          std::string(SPARQLSIM_CLI) + " query " + NtPath() + " -",
      &code);
  EXPECT_EQ(code, 0);
  // All three <knows> edges, and nothing from <likes>.
  EXPECT_NE(out.find("alice"), std::string::npos);
  EXPECT_NE(out.find("bob"), std::string::npos);
  EXPECT_NE(out.find("carol"), std::string::npos);
  EXPECT_EQ(out.find("dave"), std::string::npos);
}

TEST_F(CliSmokeTest, SimReportsCandidates) {
  int code = 0;
  std::string out = RunCommand(
      "echo 'SELECT * WHERE { ?x <knows> ?y . ?y <knows> ?z . }' | " +
          std::string(SPARQLSIM_CLI) + " sim " + NtPath() + " -",
      &code);
  EXPECT_EQ(code, 0);
  // The <knows> cycle dual-simulates the chain: alice, bob, carol qualify
  // for every variable.
  EXPECT_NE(out.find("?x: 3 candidates"), std::string::npos);
  EXPECT_NE(out.find("?z: 3 candidates"), std::string::npos);
}

TEST_F(CliSmokeTest, PruneDropsUnmatchedTriples) {
  int code = 0;
  std::string pruned_path = ::testing::TempDir() + "sparqlsim_cli_smoke_pruned.nt";
  RunCommand("echo 'SELECT * WHERE { ?x <knows> ?y . }' | " +
                 std::string(SPARQLSIM_CLI) + " prune " + NtPath() + " - " +
                 pruned_path,
             &code);
  EXPECT_EQ(code, 0);
  std::ifstream in(pruned_path);
  std::string line;
  size_t knows_lines = 0, other_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("<knows>") != std::string::npos) {
      ++knows_lines;
    } else if (!line.empty()) {
      ++other_lines;
    }
  }
  // The prune keeps exactly the three <knows> triples; <dave> <likes>
  // <carol> cannot participate in any match.
  EXPECT_EQ(knows_lines, 3u);
  EXPECT_EQ(other_lines, 0u);
}

}  // namespace
