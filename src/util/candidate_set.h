#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitvector.h"
#include "util/gap_codec.h"
#include "util/hierarchical_bitvector.h"

namespace sparqlsim::util {

/// One candidate set chi(v) behind a dense/compressed representation
/// switch (the speedex/GraphAligner sparse-row idiom: two layouts, one
/// interface, chosen per set by occupancy).
///
/// The dense layout is the HierarchicalBitVector the solver has always
/// used: a word array plus a one-bit-per-64-word-block summary, with the
/// runtime-dispatched SIMD lanes (util/simd_dispatch.h) underneath its
/// zero-block skipping. The compressed layout is a GAP/RLE run list in
/// GapCodec's varint format, and its kernels — AndWith, Count,
/// ForEachSetBit, Test, and the BitMatrix::Multiply overload that takes a
/// CandidateSet selector — walk the runs directly; the set is never
/// inflated to words to perform them. That matters in the late-fixpoint
/// regime the paper's L0-style queries spend most of their rounds in:
/// once a selection has collapsed to a few survivors, a dense AND still
/// touches every live block, while the compressed AND touches a handful
/// of runs.
///
/// The policy is fixed per set at construction:
///   kDense       never compress (the scalar-dense path is the
///                differential oracle every other configuration is
///                verified against)
///   kCompressed  always compressed (any occupancy — the forced mode the
///                differential tests sweep)
///   kAuto        occupancy-driven with hysteresis: compress when the set
///                drops below 1/kCompressDivisor occupancy (and is at
///                least kMinCompressBits wide), decompress when it rises
///                back above 1/kDecompressDivisor. The two thresholds
///                differ so a set oscillating around one boundary cannot
///                thrash; in the solver the question is mostly academic
///                because candidate sets only ever shrink.
///
/// Representation choice is a pure function of (policy, size, count), so
/// solves are bit-identical — solutions, counters, and fixpoint
/// trajectory — across every policy and thread count; the solver's
/// differential suites assert exactly that. Mutators run only in the
/// solver's single-threaded init/merge phases; the const readers
/// (Count/Test/Any/ForEachSetBit/MaterializeInto) keep no counters and
/// are safe for the concurrent evaluation phase.
///
/// Count() is O(1): the exact cardinality is maintained across mutations
/// in both layouts (the compressed AND computes it while streaming runs;
/// the dense AND re-counts only when something changed).
class CandidateSet {
 public:
  enum class Policy : uint8_t { kAuto, kDense, kCompressed };

  /// Occupancy hysteresis of the kAuto policy (see class comment).
  static constexpr size_t kCompressDivisor = 64;
  static constexpr size_t kDecompressDivisor = 32;
  static constexpr size_t kMinCompressBits = 512;

  /// Representation-layer counters, harvested once per solve into
  /// SolveStats. Mutator-side only: compressed_ops counts kernel
  /// executions performed on the compressed layout (ANDs and drains), the
  /// switch counters count layout transitions either way.
  struct ReprStats {
    uint64_t compressed_ops = 0;
    uint64_t compressions = 0;
    uint64_t decompressions = 0;
    uint64_t blocks_skipped = 0;  // dense-layout zero blocks skipped
    uint64_t words_cleared = 0;   // payload words zeroed by sparse clears
  };

  CandidateSet() = default;

  /// An all-zero set of `num_bits` bits.
  explicit CandidateSet(size_t num_bits, Policy policy = Policy::kAuto);

  /// Adopts an existing vector (moved in) and applies the policy.
  CandidateSet(BitVector bits, Policy policy);

  size_t size() const { return num_bits_; }
  Policy policy() const { return policy_; }
  bool compressed() const { return compressed_; }

  /// Exact cardinality, O(1) (maintained across mutations).
  size_t Count() const { return count_; }
  bool Any() const { return count_ != 0; }

  bool Test(size_t i) const;

  /// Mutators (solver init/merge phases only — single-threaded there).
  void Set(size_t i);
  void SetAll();
  void ClearAll();

  /// Reshapes this set to the logical state of a freshly constructed
  /// `CandidateSet(num_bits, policy)` — all-zero, zeroed ReprStats, layout
  /// re-derived by the same Reconsider() rule — while reusing the word and
  /// run storage already owned. The scratch-pool recycle path: a recycled
  /// set must be observationally indistinguishable from a new one so that
  /// pooled and unpooled solves stay bit-identical.
  void ResetForReuse(size_t num_bits, Policy policy);

  /// Reshapes to the logical state of `CandidateSet(copy_of_bits, policy)`
  /// (the warm-start seeding ctor), reusing owned storage like
  /// ResetForReuse.
  void ResetTo(const BitVector& bits, Policy policy);

  /// this &= other. Returns true iff any bit changed. Runs directly on
  /// whichever layout the set currently has; compressed sets re-encode
  /// their surviving runs without materializing words.
  bool AndWith(const BitVector& other);

  /// target &= ~(*this): clears target's bits where this set has them.
  /// The solver's removal-delta computation (gone = last snapshot minus
  /// current chi) against a possibly-compressed current chi.
  void ClearBitsIn(BitVector* target) const;

  /// Calls fn(index) for every set bit in ascending order. Dense sets
  /// skip zero blocks via the summary; compressed sets walk their runs.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    if (!compressed_) {
      dense_.ForEachSetBit(std::forward<Fn>(fn));
      return;
    }
    GapReader reader(gap_);
    uint64_t run = 0;
    size_t pos = 0;
    bool value = false;
    while (reader.ReadRun(&run)) {
      if (value) {
        for (uint64_t i = 0; i < run; ++i) {
          fn(static_cast<uint32_t>(pos + i));
        }
      }
      pos += run;
      value = !value;
    }
  }

  /// Writes a dense copy into `out` (resized to size()). Used where the
  /// solver genuinely needs a flat vector: subordination masks, the
  /// column-wise mask seed, and the incremental snapshot tier.
  void MaterializeInto(BitVector* out) const;
  BitVector ToBitVector() const;

  /// Moves the flat vector out (compressed sets are materialized first).
  /// Used to export solved candidate sets into a Solution.
  BitVector TakeBits() &&;

  /// Returns and resets the representation counters (stat harvesting at
  /// solve end); folds in the dense layer's block-skip counter.
  ReprStats TakeStats();

  /// Heap footprint of the owned payload (dense words + run-buffer
  /// capacity) — the scratch pool's bytes_recycled accounting.
  size_t PayloadBytes() const {
    return dense_.bits().WordCount() * sizeof(uint64_t) + gap_.capacity();
  }

 private:
  /// Re-evaluates the layout after a mutation (pure function of policy,
  /// size, and count — that purity is the determinism guarantee).
  void Reconsider();
  void Compress();
  void Decompress();
  /// AND over the compressed layout: streams this set's runs, masks the
  /// one-runs against `other`'s words, re-encodes the survivors.
  bool AndWithCompressed(const BitVector& other);

  Policy policy_ = Policy::kAuto;
  bool compressed_ = false;
  size_t num_bits_ = 0;
  size_t count_ = 0;
  // dense_ is authoritative iff !compressed_; while compressed it is
  // retained as (stale) spare storage so compress/decompress cycles on a
  // recycled set never reallocate the word array. Its summary always
  // matches its payload, so the stale spare can be wiped with ClearLive.
  HierarchicalBitVector dense_;
  std::vector<uint8_t> gap_;  // valid iff compressed_ (GapCodec format)
  ReprStats stats_;
};

}  // namespace sparqlsim::util
