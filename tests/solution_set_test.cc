#include "engine/solution_set.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"

namespace sparqlsim::engine {
namespace {

TEST(SolutionSetTest, SchemaAndRows) {
  SolutionSet s({"a", "b"});
  EXPECT_EQ(s.Arity(), 2u);
  EXPECT_EQ(s.NumRows(), 0u);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);

  std::vector<uint32_t> row = {1, 2};
  s.AddRow(row);
  EXPECT_EQ(s.NumRows(), 1u);
  EXPECT_EQ(s.Row(0)[0], 1u);
  EXPECT_EQ(s.Value(0, s.IndexOf("b")), 2u);
  EXPECT_EQ(s.Value(0, -1), kUnbound);
}

TEST(SolutionSetTest, UnboundRow) {
  SolutionSet s({"x"});
  s.AddUnboundRow();
  EXPECT_EQ(s.Row(0)[0], kUnbound);
}

TEST(SolutionSetTest, ZeroArit017UnitSemantics) {
  // A schema-less solution set counts unit rows (the empty mapping).
  SolutionSet s{};
  EXPECT_EQ(s.NumRows(), 0u);
  s.AddUnboundRow();
  s.AddUnboundRow();
  EXPECT_EQ(s.NumRows(), 2u);
  s.SortAndDedupe();
  EXPECT_EQ(s.NumRows(), 1u);  // the empty mapping is unique
}

TEST(SolutionSetTest, SortAndDedupe) {
  SolutionSet s({"a", "b"});
  std::vector<std::vector<uint32_t>> rows = {
      {3, 4}, {1, 2}, {3, 4}, {1, 1}, {1, 2}};
  for (const auto& r : rows) s.AddRow(r);
  s.SortAndDedupe();
  ASSERT_EQ(s.NumRows(), 3u);
  EXPECT_EQ(s.Row(0)[0], 1u);
  EXPECT_EQ(s.Row(0)[1], 1u);
  EXPECT_EQ(s.Row(1)[1], 2u);
  EXPECT_EQ(s.Row(2)[0], 3u);
}

TEST(SolutionSetTest, ToStringShowsUnboundAsDashes) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolutionSet s({"d"});
  std::vector<uint32_t> row = {kUnbound};
  s.AddRow(row);
  std::string rendered = s.ToString(db);
  EXPECT_NE(rendered.find("?d"), std::string::npos);
  EXPECT_NE(rendered.find("--"), std::string::npos);
}

TEST(SolutionSetTest, ToStringTruncates) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolutionSet s({"d"});
  for (uint32_t i = 0; i < 30; ++i) {
    std::vector<uint32_t> row = {0};
    s.AddRow(row);
  }
  std::string rendered = s.ToString(db, 5);
  EXPECT_NE(rendered.find("25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace sparqlsim::engine
