#include "sim/strong_simulation.h"

#include <algorithm>
#include <deque>
#include <set>

#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "util/stopwatch.h"

namespace sparqlsim::sim {

size_t PatternDiameter(const graph::Graph& pattern) {
  const size_t k = pattern.NumNodes();
  std::vector<std::vector<uint32_t>> adjacency(k);
  for (const graph::LabeledEdge& e : pattern.edges()) {
    adjacency[e.from].push_back(e.to);
    adjacency[e.to].push_back(e.from);
  }
  size_t diameter = 0;
  std::vector<int> dist(k);
  for (uint32_t start = 0; start < k; ++start) {
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<uint32_t> queue = {start};
    dist[start] = 0;
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      diameter = std::max(diameter, static_cast<size_t>(dist[v]));
      for (uint32_t w : adjacency[v]) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
  }
  return diameter;
}

namespace {

/// Grows the undirected ball of radius `radius` around `center`, visiting
/// only nodes with their bit set in `universe`.
util::BitVector GrowBall(uint32_t center, size_t radius,
                         const util::BitVector& universe,
                         const graph::GraphDatabase& db) {
  util::BitVector ball(db.NumNodes());
  ball.Set(center);
  std::deque<std::pair<uint32_t, size_t>> queue = {{center, 0}};
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (depth == radius) continue;
    for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
      for (uint32_t next : db.Forward(p).Row(node)) {
        if (universe.Test(next) && !ball.Test(next)) {
          ball.Set(next);
          queue.emplace_back(next, depth + 1);
        }
      }
      for (uint32_t next : db.Backward(p).Row(node)) {
        if (universe.Test(next) && !ball.Test(next)) {
          ball.Set(next);
          queue.emplace_back(next, depth + 1);
        }
      }
    }
  }
  return ball;
}

}  // namespace

StrongSimResult StrongSimulation(const graph::Graph& pattern,
                                 const graph::GraphDatabase& db,
                                 const StrongSimOptions& options) {
  util::Stopwatch watch;
  // Ball growth walks adjacency outside the solver, so pin here too.
  graph::ResidencyPin residency_pin = db.PinResidency();
  StrongSimResult result;
  result.radius = PatternDiameter(pattern);

  // One engine for the whole run: the global prefilter and every per-ball
  // restricted solve reuse the same pool instead of paying per-solve thread
  // startup. Ball solves pass `initial`, which bypasses caching by design.
  SolverOptions solver_options = options.solver;
  solver_options.cache_sois = false;
  solver_options.cache_solutions = false;
  SimEngine engine(&db, solver_options);

  Soi soi = BuildSoiFromGraph(pattern);
  Solution global = engine.Solve(soi);
  if (!global.AnyCandidate()) {
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  // Centers and ball universe: nodes surviving the global prefilter.
  util::BitVector universe(db.NumNodes());
  for (const util::BitVector& c : global.candidates) universe.OrWith(c);

  std::set<std::vector<std::vector<uint32_t>>> seen;
  std::vector<uint32_t> centers = universe.ToIndexVector();
  std::vector<util::BitVector> restricted(pattern.NumNodes());
  for (uint32_t center : centers) {
    if (options.max_matches != 0 &&
        result.matches.size() >= options.max_matches) {
      break;
    }
    ++result.balls_checked;
    util::BitVector ball = GrowBall(center, result.radius, universe, db);
    for (size_t v = 0; v < pattern.NumNodes(); ++v) {
      restricted[v] = global.candidates[v];
      restricted[v].AndWith(ball);
    }
    Solution local = engine.Solve(soi, &restricted);

    // The center must participate in the relation.
    bool center_in = false;
    for (const util::BitVector& c : local.candidates) {
      if (c.Test(center)) {
        center_in = true;
        break;
      }
    }
    if (!center_in) continue;

    // Deduplicate identical relations from nearby centers.
    std::vector<std::vector<uint32_t>> signature;
    signature.reserve(local.candidates.size());
    for (const util::BitVector& c : local.candidates) {
      signature.push_back(c.ToIndexVector());
    }
    if (!seen.insert(signature).second) continue;

    result.matches.push_back({center, local.candidates});
  }

  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sparqlsim::sim
