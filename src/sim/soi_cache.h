#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/soi.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// Cache of per-query-structure artifacts, keyed by
/// (database generation, sparql::CanonicalPatternKey of the union-free
/// branch). Two layers:
///
///  * SOI layer — the constructed system of inequalities. Reusable whenever
///    the same normalized branch is solved again against the same database
///    (SOIs embed database predicate/constant ids, so the generation is part
///    of the key).
///  * Solution layer — the solved fixpoint itself. The largest solution is
///    unique (Prop. 1), independent of every solver heuristic, so a cached
///    solution is valid for any SolverOptions as long as the run was not
///    truncated (SimEngine never stores max_rounds-limited runs) and the
///    database generation matches. A Restrict()ed or reloaded database gets
///    a fresh generation, which invalidates implicitly — stale entries are
///    unreachable, never wrong.
///
/// All methods are thread-safe; branch batches probe the cache
/// concurrently. Entries are shared_ptr<const ...> so a hit is a pointer
/// copy, not a deep copy.
class SoiCache {
 public:
  struct Stats {
    size_t soi_hits = 0;
    size_t soi_misses = 0;
    size_t solution_hits = 0;
    size_t solution_misses = 0;
  };

  /// Returns the cached SOI for (generation, key), or null (counting a
  /// miss).
  std::shared_ptr<const Soi> FindSoi(uint64_t generation,
                                     const std::string& key);
  /// Stores `soi` and returns the (possibly pre-existing) cached value.
  std::shared_ptr<const Soi> InsertSoi(uint64_t generation,
                                       const std::string& key, Soi soi);

  /// Returns the cached full-fixpoint solution, or null (counting a miss).
  std::shared_ptr<const Solution> FindSolution(uint64_t generation,
                                               const std::string& key);
  std::shared_ptr<const Solution> InsertSolution(uint64_t generation,
                                                 const std::string& key,
                                                 Solution solution);

  Stats stats() const;
  size_t NumSois() const;
  size_t NumSolutions() const;
  void Clear();

 private:
  static std::string MakeKey(uint64_t generation, const std::string& key);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Soi>> sois_;
  std::unordered_map<std::string, std::shared_ptr<const Solution>> solutions_;
  Stats stats_;
};

}  // namespace sparqlsim::sim
