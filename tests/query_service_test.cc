// QueryService contract tests. The load-bearing one is differential: 72
// random queries submitted concurrently from several threads, under every
// combination of worker count / queue depth / cache configuration, must
// produce PruneReports bit-identical to a sequential SimEngine::Prune of
// the same queries. Runs under TSan in CI (thread-sanitizer job).

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/random_graphs.h"
#include "sim/query_service.h"
#include "sim/sim_engine.h"
#include "sparql/normalize.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace sparqlsim::sim {
namespace {

std::string RandomQueryText(util::Rng& rng, size_t num_nodes) {
  auto var = [&](int k) { return "?v" + std::to_string(rng.NextBounded(k)); };
  auto triple = [&](int k) {
    std::string p = "<p" + std::to_string(rng.NextBounded(3)) + ">";
    std::string s =
        rng.NextBool(0.15)
            ? "<n" + std::to_string(rng.NextBounded(num_nodes)) + ">"
            : var(k);
    return s + " " + p + " " + var(k) + " . ";
  };
  std::string text = "SELECT * WHERE { ";
  switch (rng.NextBounded(4)) {
    case 0:
      text += triple(3) + triple(3);
      break;
    case 1:
      text += triple(2) + "OPTIONAL { " + triple(4) + "} ";
      break;
    case 2:
      text += "{ " + triple(2) + "} UNION { " + triple(2) + "} ";
      break;
    default:
      text += triple(2) + "OPTIONAL { " + triple(3) + "} " + triple(3);
      break;
  }
  text += "}";
  return text;
}

std::vector<sparql::Query> MakeQueryPool(uint64_t seed, size_t count,
                                         size_t num_nodes) {
  util::Rng rng(seed);
  std::vector<sparql::Query> queries;
  while (queries.size() < count) {
    auto parsed = sparql::Parser::Parse(RandomQueryText(rng, num_nodes));
    if (!parsed.ok()) continue;
    queries.push_back(std::move(parsed).value());
  }
  return queries;
}

void ExpectReportsEqual(const PruneReport& actual, const PruneReport& want,
                        const std::string& context) {
  EXPECT_EQ(actual.kept_triples, want.kept_triples) << context;
  EXPECT_EQ(actual.num_branches, want.num_branches) << context;
  ASSERT_EQ(actual.var_candidates.size(), want.var_candidates.size())
      << context;
  for (const auto& [var, bits] : want.var_candidates) {
    auto it = actual.var_candidates.find(var);
    ASSERT_NE(it, actual.var_candidates.end()) << context << " ?" << var;
    EXPECT_EQ(it->second, bits) << context << " ?" << var;
  }
}

struct StressConfig {
  size_t workers;
  size_t queue_depth;
  size_t cache_capacity;
  bool cache;
  size_t solver_threads;
};

class QueryServiceStress : public ::testing::TestWithParam<StressConfig> {};

TEST_P(QueryServiceStress, ConcurrentSubmissionsMatchSequentialPrune) {
  const StressConfig& config = GetParam();

  datagen::RandomGraphConfig graph_config;
  graph_config.num_nodes = 60;
  graph_config.num_edges = 240;
  graph_config.num_labels = 3;
  graph_config.seed = 11 + config.workers;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(graph_config);

  // 16 distinct random queries, cycled into 72 submissions so the mix has
  // guaranteed duplicates (dedup + solution-cache fodder).
  std::vector<sparql::Query> pool =
      MakeQueryPool(/*seed=*/1234 + config.workers, 16,
                    graph_config.num_nodes);
  constexpr size_t kSubmissions = 72;
  std::vector<size_t> workload(kSubmissions);
  for (size_t i = 0; i < kSubmissions; ++i) workload[i] = i % pool.size();

  // Sequential ground truth: a plain single-threaded, cache-free engine.
  SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  SimEngine reference_engine(&db, plain);
  std::vector<PruneReport> reference;
  reference.reserve(pool.size());
  for (const sparql::Query& q : pool) {
    reference.push_back(reference_engine.Prune(q));
  }

  QueryServiceOptions options;
  options.num_workers = config.workers;
  options.queue_depth = config.queue_depth;
  options.cache_capacity = config.cache_capacity;
  options.solver.cache_sois = config.cache;
  options.solver.cache_solutions = config.cache;
  options.solver.num_threads = config.solver_threads;
  QueryService service(&db, options);

  // 6 submitter threads × 12 submissions: Submit and future::get both race
  // against the service workers.
  constexpr size_t kSubmitters = 6;
  std::vector<PruneReport> results(kSubmissions);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = t; i < kSubmissions; i += kSubmitters) {
        std::future<PruneReport> f = service.Submit(pool[workload[i]]);
        results[i] = f.get();
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.Drain();

  for (size_t i = 0; i < kSubmissions; ++i) {
    ExpectReportsEqual(results[i], reference[workload[i]],
                       "submission " + std::to_string(i) + " (query " +
                           std::to_string(workload[i]) + ")");
  }

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, kSubmissions);
  EXPECT_EQ(stats.executed + stats.coalesced, kSubmissions);
  EXPECT_GE(stats.peak_in_flight, 1u);
  EXPECT_LE(stats.peak_in_flight, config.queue_depth == 0
                                      ? 1u
                                      : config.queue_depth);
  if (config.cache) {
    EXPECT_LE(stats.cached_sois,
              config.cache_capacity == 0 ? kSubmissions
                                         : config.cache_capacity);
    EXPECT_LE(stats.cached_solutions,
              config.cache_capacity == 0 ? kSubmissions
                                         : config.cache_capacity);
  } else {
    EXPECT_EQ(stats.cached_sois, 0u);
    EXPECT_EQ(stats.cached_solutions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, QueryServiceStress,
    ::testing::Values(
        // Serial floor: one worker, admission one at a time.
        StressConfig{1, 1, 0, true, 1},
        // Typical server shape: several workers, bounded queue, LRU cache.
        StressConfig{4, 8, 4, true, 1},
        // Deep queue, unbounded cache.
        StressConfig{4, 64, 0, true, 1},
        // Cache off entirely.
        StressConfig{4, 8, 0, false, 1},
        // Tiny cache (capacity 1): eviction storm while queries are in
        // flight.
        StressConfig{8, 8, 1, true, 1},
        // Intra-query parallelism on top: engine pool shared by concurrent
        // Prune calls.
        StressConfig{2, 4, 4, true, 2}));

TEST(QueryServiceTest, SubmitBatchReturnsReportsInSubmissionOrder) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 40;
  config.num_edges = 160;
  config.num_labels = 3;
  config.seed = 77;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  std::vector<sparql::Query> pool = MakeQueryPool(99, 8, config.num_nodes);

  SolverOptions plain;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  SimEngine reference(&db, plain);

  QueryServiceOptions options;
  options.num_workers = 4;
  options.queue_depth = 4;
  QueryService service(&db, options);
  std::vector<PruneReport> reports = service.SubmitBatch(pool);
  ASSERT_EQ(reports.size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    ExpectReportsEqual(reports[i], reference.Prune(pool[i]),
                       "batch query " + std::to_string(i));
  }
}

TEST(QueryServiceTest, InFlightDuplicatesCoalesceDeterministically) {
  graph::GraphDatabase db = datagen::MakeRandomDatabase({});
  std::vector<sparql::Query> pool = MakeQueryPool(5, 2, 50);
  const sparql::Query& blocker = pool[0];
  const sparql::Query& repeated = pool[1];
  ASSERT_NE(sparql::CanonicalPatternKey(*blocker.where),
            sparql::CanonicalPatternKey(*repeated.where));

  // Pin the single worker inside the first solve so every later submission
  // is provably in flight at once.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<size_t> solves{0};

  QueryServiceOptions options;
  options.num_workers = 1;
  options.queue_depth = 4;
  options.solve_hook = [&, released] {
    if (solves.fetch_add(1) == 0) released.wait();
  };
  QueryService service(&db, options);

  std::future<PruneReport> f0 = service.Submit(blocker);
  std::vector<std::future<PruneReport>> dups;
  for (int i = 0; i < 10; ++i) dups.push_back(service.Submit(repeated));

  // Worker is parked in the hook; exactly one admission for `repeated`.
  QueryService::Stats mid = service.stats();
  EXPECT_EQ(mid.submitted, 11u);
  EXPECT_EQ(mid.coalesced, 9u);
  EXPECT_EQ(mid.executed, 0u);

  release.set_value();
  service.Drain();

  SolverOptions plain;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  SimEngine reference(&db, plain);
  PruneReport want = reference.Prune(repeated);
  ExpectReportsEqual(f0.get(), reference.Prune(blocker), "blocker");
  for (auto& f : dups) ExpectReportsEqual(f.get(), want, "dup");

  QueryService::Stats done = service.stats();
  EXPECT_EQ(done.executed, 2u);
  EXPECT_EQ(done.coalesced, 9u);
  EXPECT_EQ(done.peak_in_flight, 2u);
}

TEST(QueryServiceTest, CompletedQueryAdmitsAFreshSolveAndHitsTheCache) {
  graph::GraphDatabase db = datagen::MakeRandomDatabase({});
  std::vector<sparql::Query> pool = MakeQueryPool(21, 1, 50);

  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&db, options);

  PruneReport first = service.Submit(pool[0]).get();
  service.Drain();
  PruneReport second = service.Submit(pool[0]).get();
  ExpectReportsEqual(second, first, "re-submission");

  QueryService::Stats stats = service.stats();
  // Two executions (no overlap), zero coalesced — but the second one was
  // answered from the solution cache, not the solver.
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_GE(stats.cache.solution_hits, 1u);
}

TEST(QueryServiceTest, DestructorDrainsOutstandingFutures) {
  graph::GraphDatabase db = datagen::MakeRandomDatabase({});
  std::vector<sparql::Query> pool = MakeQueryPool(42, 6, 50);

  std::vector<std::future<PruneReport>> futures;
  {
    QueryServiceOptions options;
    options.num_workers = 2;
    options.queue_depth = 6;
    QueryService service(&db, options);
    for (const sparql::Query& q : pool) futures.push_back(service.Submit(q));
    // Service destroyed with work possibly still queued.
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.valid());
    PruneReport report = f.get();  // settled, not abandoned
    EXPECT_GE(report.num_branches, 1u);
  }
}

}  // namespace
}  // namespace sparqlsim::sim
