#include "sim/solver.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/equivalence.h"
#include "sim/soi.h"
#include "sim/validate.h"
#include "sparql/parser.h"

namespace sparqlsim::sim {
namespace {

graph::GraphDatabase ChainDb(size_t length) {
  graph::GraphDatabaseBuilder b;
  for (size_t i = 0; i + 1 < length; ++i) {
    EXPECT_TRUE(b.AddTriple("n" + std::to_string(i), "e",
                            "n" + std::to_string(i + 1))
                    .ok());
  }
  return std::move(b).Build();
}

Soi SoiFor(const char* pattern_text, const graph::GraphDatabase& db) {
  auto p = sparql::Parser::ParsePattern(pattern_text);
  EXPECT_TRUE(p.ok()) << p.error_message();
  return BuildSoiFromPattern(*p.value(), db);
}

TEST(SolverTest, FixpointSatisfiesSoi) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Soi soi = SoiFor(
      "{ ?d <directed> ?m . OPTIONAL { ?d <worked_with> ?c . } }", db);
  Solution s = SolveSoi(soi, db);
  std::string why;
  EXPECT_TRUE(SatisfiesSoi(soi, db, s.candidates, &why)) << why;
}

TEST(SolverTest, FixpointIsLargest) {
  // Any valid assignment is contained in the fixpoint (Prop. 1): perturb
  // the solution by clearing bits — still valid; adding any discarded bit
  // breaks validity.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Soi soi = SoiFor("{ ?d <directed> ?m . ?d <worked_with> ?c . }", db);
  Solution s = SolveSoi(soi, db);

  // Clearing a whole variable keeps (7) for connected patterns only if the
  // rest is cleared too — the all-empty assignment is trivially valid.
  std::vector<util::BitVector> empty(soi.NumVars(),
                                     util::BitVector(db.NumNodes()));
  EXPECT_TRUE(SatisfiesSoi(soi, db, empty));

  // Adding any single bit outside the fixpoint is invalid.
  for (size_t v = 0; v < soi.NumVars(); ++v) {
    for (uint32_t node = 0; node < db.NumNodes(); ++node) {
      if (s.candidates[v].Test(node)) continue;
      std::vector<util::BitVector> enlarged = s.candidates;
      enlarged[v].Set(node);
      EXPECT_FALSE(SatisfiesSoi(soi, db, enlarged))
          << "adding " << db.nodes().Name(node) << " to "
          << soi.var_names[v] << " should violate the SOI";
    }
  }
}

TEST(SolverTest, LongChainNeedsManyRounds) {
  // A length-k path pattern against a length-k chain database converges,
  // and emptiness propagates along the chain when the pattern is longer
  // than the data.
  graph::GraphDatabase db = ChainDb(6);
  {
    Soi soi = SoiFor(
        "{ ?a <e> ?b . ?b <e> ?c . ?c <e> ?d . ?d <e> ?f . ?f <e> ?g . }",
        db);
    Solution s = SolveSoi(soi, db);
    EXPECT_TRUE(s.AnyCandidate());
    EXPECT_EQ(s.RelationSize(), 6u);  // one binding per variable
  }
  {
    // Pattern longer than the data: everything dies.
    Soi soi = SoiFor(
        "{ ?a <e> ?b . ?b <e> ?c . ?c <e> ?d . ?d <e> ?f . ?f <e> ?g . "
        "?g <e> ?h . }",
        db);
    Solution s = SolveSoi(soi, db);
    EXPECT_FALSE(s.AnyCandidate());
  }
}

TEST(SolverTest, MaxRoundsTruncates) {
  graph::GraphDatabase db = ChainDb(20);
  Soi soi = SoiFor(
      "{ ?a <e> ?b . ?b <e> ?c . ?c <e> ?d . ?d <e> ?f . ?f <e> ?g . "
      "?g <e> ?h . ?h <e> ?i . ?i <e> ?j . }",
      db);
  SolverOptions unbounded;
  Solution full = SolveSoi(soi, db, unbounded);

  SolverOptions capped;
  capped.max_rounds = 1;
  Solution partial = SolveSoi(soi, db, capped);
  EXPECT_EQ(partial.stats.rounds, 1u);
  // The capped run is an over-approximation of the fixpoint.
  for (size_t v = 0; v < soi.NumVars(); ++v) {
    EXPECT_TRUE(full.candidates[v].IsSubsetOf(partial.candidates[v]));
  }
}

TEST(SolverTest, InitialAssignmentRestricts) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Soi soi = SoiFor("{ ?d <directed> ?m . }", db);
  Solution full = SolveSoi(soi, db);
  EXPECT_EQ(full.candidates[0].Count(), 4u);  // four directors

  // Restrict the start to De Palma only: the fixpoint below it keeps just
  // his film.
  std::vector<util::BitVector> initial(soi.NumVars(),
                                       util::BitVector(db.NumNodes(), true));
  int d_var = -1;
  for (size_t v = 0; v < soi.NumVars(); ++v) {
    if (soi.var_names[v] == "d") d_var = static_cast<int>(v);
  }
  ASSERT_GE(d_var, 0);
  initial[d_var].ClearAll();
  initial[d_var].Set(*db.nodes().Lookup("B. De Palma"));

  Solution restricted = SolveSoi(soi, db, {}, &initial);
  EXPECT_EQ(restricted.candidates[d_var].Count(), 1u);
  for (size_t v = 0; v < soi.NumVars(); ++v) {
    EXPECT_TRUE(restricted.candidates[v].IsSubsetOf(full.candidates[v]));
  }
  std::string why;
  EXPECT_TRUE(SatisfiesSoi(soi, db, restricted.candidates, &why)) << why;
}

TEST(SolverTest, StatsCountEvaluationModes) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Soi soi = SoiFor("{ ?d <directed> ?m . ?d <worked_with> ?c . }", db);

  SolverOptions row;
  row.eval_mode = SolverOptions::EvalMode::kRowWise;
  Solution sr = SolveSoi(soi, db, row);
  EXPECT_GT(sr.stats.row_evals, 0u);
  EXPECT_EQ(sr.stats.col_evals, 0u);

  SolverOptions col;
  col.eval_mode = SolverOptions::EvalMode::kColumnWise;
  Solution sc = SolveSoi(soi, db, col);
  EXPECT_EQ(sc.stats.row_evals, 0u);
  EXPECT_GT(sc.stats.col_evals, 0u);
}

TEST(SolverTest, AccumulateStats) {
  SolveStats a;
  a.rounds = 2;
  a.evaluations = 10;
  SolveStats b;
  b.rounds = 3;
  b.updates = 4;
  b.solve_seconds = 0.5;
  a.Accumulate(b);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.evaluations, 10u);
  EXPECT_EQ(a.updates, 4u);
  EXPECT_DOUBLE_EQ(a.solve_seconds, 0.5);
}

TEST(EquivalenceTest, MovieX1Classes) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  Soi soi = SoiFor("{ ?d <directed> ?m . ?d <worked_with> ?c . }", db);
  Solution s = SolveSoi(soi, db);
  EquivalenceClasses classes = ComputeEquivalenceClasses(s, db.NumNodes());

  // Three classes: directors, movies, coworkers (no overlaps here).
  EXPECT_EQ(classes.num_classes, 3u);
  EXPECT_EQ(classes.num_discarded, db.NumNodes() - 6);
  size_t members = 0;
  for (size_t size : classes.class_sizes) members += size;
  EXPECT_EQ(members, 6u);

  // Nodes of the same class have identical membership everywhere.
  uint32_t depalma = *db.nodes().Lookup("B. De Palma");
  uint32_t hamilton = *db.nodes().Lookup("G. Hamilton");
  EXPECT_EQ(classes.class_of[depalma], classes.class_of[hamilton]);
  uint32_t koepp = *db.nodes().Lookup("D. Koepp");
  EXPECT_NE(classes.class_of[depalma], classes.class_of[koepp]);
}

TEST(EquivalenceTest, SignaturesAreConsistent) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 50;
  config.num_edges = 200;
  config.num_labels = 2;
  config.seed = 9;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(4, 2, 2, 10);
  Soi soi = BuildSoiFromGraph(pattern);
  Solution s = SolveSoi(soi, db);
  EquivalenceClasses classes = ComputeEquivalenceClasses(s, db.NumNodes());

  for (size_t node = 0; node < db.NumNodes(); ++node) {
    if (classes.class_of[node] < 0) {
      for (const util::BitVector& c : s.candidates) {
        EXPECT_FALSE(c.Test(node));
      }
      continue;
    }
    const auto& signature = classes.signatures[classes.class_of[node]];
    for (uint32_t v = 0; v < s.candidates.size(); ++v) {
      bool in_signature = std::find(signature.begin(), signature.end(), v) !=
                          signature.end();
      EXPECT_EQ(s.candidates[v].Test(node), in_signature);
    }
  }
}

}  // namespace
}  // namespace sparqlsim::sim
