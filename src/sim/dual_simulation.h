#pragma once

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// Computes the largest dual simulation between a pattern graph and a
/// graph database (Prop. 1/2 of the paper) via the SOI fixpoint. Pattern
/// edge labels must be database predicate ids (or kEmptyPredicate).
/// candidates[v] is the set of database nodes dual-simulating pattern
/// node v.
Solution LargestDualSimulation(const graph::Graph& pattern,
                               const graph::GraphDatabase& db,
                               const SolverOptions& options = {});

/// True iff `db` dual simulates `pattern`, i.e. there exists a non-empty
/// dual simulation between them (Def. 2).
bool DualSimulates(const graph::Graph& pattern, const graph::GraphDatabase& db,
                   const SolverOptions& options = {});

}  // namespace sparqlsim::sim
