#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sparqlsim::graph {

/// Bidirectional string <-> dense-id mapping (dictionary encoding).
///
/// Graph databases in this repository never operate on strings internally:
/// nodes (IRIs and literals) and predicates are interned once at load time
/// and all matrices, candidate vectors, and solution tables are indexed by
/// the resulting dense 32-bit ids.
class Dictionary {
 public:
  /// Returns the id of `name`, interning it if new. Ids are dense and
  /// assigned in first-seen order.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name` if present.
  std::optional<uint32_t> Lookup(std::string_view name) const;

  /// Returns the string for an id. The id must be valid.
  const std::string& Name(uint32_t id) const { return names_[id]; }

  /// Number of interned strings (== one past the largest assigned id).
  size_t size() const { return names_.size(); }

 private:
  // Heterogeneous hashing so Lookup(string_view) never allocates.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      index_;
  std::vector<std::string> names_;
};

}  // namespace sparqlsim::graph
