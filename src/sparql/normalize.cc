#include "sparql/normalize.h"

namespace sparqlsim::sparql {

std::vector<std::unique_ptr<Pattern>> UnionNormalForm(const Pattern& pattern) {
  std::vector<std::unique_ptr<Pattern>> result;
  switch (pattern.kind()) {
    case PatternKind::kBgp:
      result.push_back(pattern.Clone());
      break;
    case PatternKind::kUnion: {
      for (auto& p : UnionNormalForm(pattern.left())) {
        result.push_back(std::move(p));
      }
      for (auto& p : UnionNormalForm(pattern.right())) {
        result.push_back(std::move(p));
      }
      break;
    }
    case PatternKind::kJoin:
    case PatternKind::kOptional: {
      auto lefts = UnionNormalForm(pattern.left());
      auto rights = UnionNormalForm(pattern.right());
      for (const auto& l : lefts) {
        for (const auto& r : rights) {
          if (pattern.kind() == PatternKind::kJoin) {
            result.push_back(Pattern::Join(l->Clone(), r->Clone()));
          } else {
            result.push_back(Pattern::Optional(l->Clone(), r->Clone()));
          }
        }
      }
      break;
    }
  }
  return result;
}

std::unique_ptr<Pattern> MergeBgps(std::unique_ptr<Pattern> pattern) {
  if (pattern->IsBgp()) return pattern;

  auto left = MergeBgps(pattern->left().Clone());
  auto right = MergeBgps(pattern->right().Clone());

  if (pattern->kind() == PatternKind::kJoin && left->IsBgp() &&
      right->IsBgp()) {
    std::vector<TriplePattern> merged = left->triples();
    for (const TriplePattern& t : right->triples()) merged.push_back(t);
    return Pattern::Bgp(std::move(merged));
  }

  switch (pattern->kind()) {
    case PatternKind::kJoin:
      return Pattern::Join(std::move(left), std::move(right));
    case PatternKind::kOptional:
      return Pattern::Optional(std::move(left), std::move(right));
    case PatternKind::kUnion:
      return Pattern::Union(std::move(left), std::move(right));
    case PatternKind::kBgp:
      break;
  }
  return pattern;
}

}  // namespace sparqlsim::sparql
