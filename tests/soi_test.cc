#include "sim/soi.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_database.h"
#include "sim/solver.h"
#include "sparql/normalize.h"
#include "sparql/parser.h"

namespace sparqlsim::sim {
namespace {

using sparql::Parser;

graph::GraphDatabase MakeSmallDb() {
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("s1", "a", "t1").ok());
  EXPECT_TRUE(b.AddTriple("s1", "b", "t2").ok());
  EXPECT_TRUE(b.AddTriple("s2", "c", "t3").ok());
  EXPECT_TRUE(b.AddTriple("t1", "b", "t2").ok());
  return std::move(b).Build();
}

const Soi BuildFromText(const char* pattern_text,
                        const graph::GraphDatabase& db) {
  auto p = Parser::ParsePattern(pattern_text);
  EXPECT_TRUE(p.ok()) << p.error_message();
  return BuildSoiFromPattern(*p.value(), db);
}

int VarIndex(const Soi& soi, const std::string& name) {
  for (size_t i = 0; i < soi.var_names.size(); ++i) {
    if (soi.var_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

size_t CountSub(const Soi& soi, const std::string& lower,
                const std::string& upper) {
  size_t count = 0;
  for (const Soi::SubIneq& s : soi.sub_ineqs) {
    if (soi.var_names[s.lhs] == lower && soi.var_names[s.rhs] == upper) {
      ++count;
    }
  }
  return count;
}

TEST(SoiBuilderTest, BgpHasTwoInequalitiesPerEdge) {
  // Fig. 3 of the paper: the SOI of a BGP contains, per pattern edge, one
  // forward and one backward inequality (Eq. 11).
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText("{ ?x <a> ?y . ?x <b> ?z . }", db);
  EXPECT_EQ(soi.matrix_ineqs.size(), 4u);
  EXPECT_TRUE(soi.sub_ineqs.empty());
  EXPECT_EQ(soi.edges.size(), 2u);
  EXPECT_EQ(soi.NumVars(), 3u);
  // Forward/backward pairing.
  size_t fwd = 0, bwd = 0;
  for (const auto& m : soi.matrix_ineqs) (m.forward ? fwd : bwd)++;
  EXPECT_EQ(fwd, 2u);
  EXPECT_EQ(bwd, 2u);
}

TEST(SoiBuilderTest, SharedVariableUnifiedAcrossJoin) {
  // Lemma 3: mandatory-mandatory occurrences become one SOI variable.
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText("{ { ?x <a> ?y . } { ?y <b> ?z . } }", db);
  EXPECT_EQ(soi.NumVars(), 3u);  // x, y, z — the two y occurrences unify
  ASSERT_EQ(soi.query_var_groups.at("y").size(), 1u);
  EXPECT_TRUE(soi.sub_ineqs.empty());
}

TEST(SoiBuilderTest, OptionalX2CreatesSurrogateAndSubordination) {
  // (X2): the optional occurrence of ?director gets a fresh SOI variable
  // subordinated to the mandatory one (Eq. 14).
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText(
      "{ ?director <a> ?movie . OPTIONAL { ?director <b> ?coworker . } }",
      db);
  // Variables: director, movie, director@2 (surrogate), coworker.
  EXPECT_EQ(soi.NumVars(), 4u);
  ASSERT_EQ(soi.sub_ineqs.size(), 1u);
  EXPECT_EQ(CountSub(soi, "director@2", "director"), 1u);
  // The anchor carries the query variable's result.
  ASSERT_EQ(soi.query_var_groups.at("director").size(), 1u);
  EXPECT_EQ(soi.var_names[soi.query_var_groups.at("director")[0]],
            "director");
}

TEST(SoiBuilderTest, QueryX3NonWellDesignedHandled) {
  // (X3): the first occurrence of ?v3 is optional, the second mandatory;
  // the optional occurrence is renamed and subordinated (Sect. 4.4).
  graph::GraphDatabase db = MakeSmallDb();
  auto q = Parser::Parse(
      "SELECT * WHERE { ?v1 <a> ?v2 . OPTIONAL { ?v3 <b> ?v2 . } "
      "?v3 <c> ?v4 . }");
  ASSERT_TRUE(q.ok()) << q.error_message();
  Soi soi = BuildSoiFromPattern(*q.value().where, db);

  // v2's optional occurrence subordinated to its mandatory anchor, and
  // v3's optional occurrence subordinated to the mandatory occurrence in
  // the third triple.
  EXPECT_EQ(soi.sub_ineqs.size(), 2u);
  EXPECT_EQ(CountSub(soi, "v2@2", "v2"), 1u);
  EXPECT_EQ(CountSub(soi, "v3@2", "v3"), 1u);
  // The groups map exposes the anchors.
  EXPECT_EQ(soi.var_names[soi.query_var_groups.at("v3")[0]], "v3");
}

TEST(SoiBuilderTest, NestedOptionalChainR) {
  // R = R1 OPTIONAL (R2 OPTIONAL R3) with z in all three: chain
  // z_R3 <= z_R2 <= z (Sect. 4.4).
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText(
      "{ ?z <a> ?r1 . OPTIONAL { ?z <b> ?r2 . OPTIONAL { ?z <c> ?r3 . } } }",
      db);
  EXPECT_EQ(soi.sub_ineqs.size(), 2u);
  EXPECT_EQ(CountSub(soi, "z@3", "z@2"), 1u);
  EXPECT_EQ(CountSub(soi, "z@2", "z"), 1u);
}

TEST(SoiBuilderTest, SiblingOptionalChainP) {
  // P = (P1 OPTIONAL P2) OPTIONAL P3 with y in all three: both optional
  // occurrences subordinate directly to the mandatory one (Sect. 4.4).
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText(
      "{ ?y <a> ?p1 . OPTIONAL { ?y <b> ?p2 . } OPTIONAL { ?y <c> ?p3 . } }",
      db);
  EXPECT_EQ(soi.sub_ineqs.size(), 2u);
  EXPECT_EQ(CountSub(soi, "y@2", "y"), 1u);
  EXPECT_EQ(CountSub(soi, "y@3", "y"), 1u);
}

TEST(SoiBuilderTest, IncomparableOptionalBranchesStayIndependent) {
  // x occurs in two optional branches but nowhere mandatory: the paper
  // renames both (x_P2, x_P3) with no interdependency.
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText(
      "{ ?p1 <a> ?q . OPTIONAL { ?x <b> ?p1 . } OPTIONAL { ?x <c> ?p1 . } }",
      db);
  // ?p1 has a mandatory anchor, so its two optional occurrences are
  // subordinated — but the two ?x groups stay unrelated to each other.
  EXPECT_EQ(CountSub(soi, "p1@2", "p1"), 1u);
  EXPECT_EQ(CountSub(soi, "p1@3", "p1"), 1u);
  EXPECT_EQ(soi.sub_ineqs.size(), 2u);
  for (const Soi::SubIneq& s : soi.sub_ineqs) {
    EXPECT_EQ(soi.var_names[s.lhs].substr(0, 2), "p1");
  }
  // Two independent groups for x.
  EXPECT_EQ(soi.query_var_groups.at("x").size(), 2u);
}

TEST(SoiBuilderTest, ConstantsArePinned) {
  // Sect. 4.5: constants alter the initialization inequality (12).
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText("{ <s1> <a> ?y . }", db);
  int cvar = VarIndex(soi, "<s1>");
  ASSERT_GE(cvar, 0);
  ASSERT_TRUE(soi.constants[cvar].has_value());
  EXPECT_EQ(*soi.constants[cvar], *db.nodes().Lookup("s1"));
}

TEST(SoiBuilderTest, UnknownConstantIsUnsatisfiable) {
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText("{ <nope> <a> ?y . }", db);
  int cvar = VarIndex(soi, "<nope>");
  ASSERT_GE(cvar, 0);
  EXPECT_TRUE(soi.unsatisfiable_vars[cvar]);
  Solution s = SolveSoi(soi, db);
  EXPECT_FALSE(s.AnyCandidate());
}

TEST(SoiBuilderTest, UnknownPredicateBecomesEmptyMatrix) {
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText("{ ?x <no_such_predicate> ?y . }", db);
  ASSERT_EQ(soi.edges.size(), 1u);
  EXPECT_EQ(soi.edges[0].predicate, kEmptyPredicate);
  Solution s = SolveSoi(soi, db);
  EXPECT_FALSE(s.AnyCandidate());
}

TEST(SoiBuilderTest, UnknownPredicateInOptionalDoesNotKillMandatory) {
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText(
      "{ ?x <a> ?y . OPTIONAL { ?x <no_such_predicate> ?z . } }", db);
  Solution s = SolveSoi(soi, db);
  // Mandatory part still matches s1 -> t1.
  int x = VarIndex(soi, "x");
  ASSERT_GE(x, 0);
  EXPECT_TRUE(s.candidates[x].Test(*db.nodes().Lookup("s1")));
  // Optional surrogate and z are empty.
  int z = VarIndex(soi, "z");
  ASSERT_GE(z, 0);
  EXPECT_TRUE(s.candidates[z].None());
}

TEST(SoiBuilderTest, LiteralConstantsResolve) {
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTripleLiteral("city", "population", "70063").ok());
  graph::GraphDatabase db = std::move(b).Build();
  Soi soi = BuildFromText("{ ?c <population> \"70063\" . }", db);
  Solution s = SolveSoi(soi, db);
  int c = VarIndex(soi, "c");
  ASSERT_GE(c, 0);
  EXPECT_EQ(s.candidates[c].Count(), 1u);
  EXPECT_TRUE(s.candidates[c].Test(*db.nodes().Lookup("city")));
}

TEST(SoiBuilderTest, ToStringRendersInequalities) {
  graph::GraphDatabase db = MakeSmallDb();
  Soi soi = BuildFromText("{ ?x <a> ?y . }", db);
  std::string rendered = soi.ToString(db);
  EXPECT_NE(rendered.find("y <= x x F_a"), std::string::npos);
  EXPECT_NE(rendered.find("x <= y x B_a"), std::string::npos);
}

TEST(SoiBuilderTest, GraphPatternBuilder) {
  graph::GraphDatabase db = MakeSmallDb();
  graph::Graph pattern(2);
  pattern.AddEdge(0, *db.predicates().Lookup("a"), 1);
  Soi soi = BuildSoiFromGraph(pattern);
  EXPECT_EQ(soi.NumVars(), 2u);
  EXPECT_EQ(soi.matrix_ineqs.size(), 2u);
  Solution s = SolveSoi(soi, db);
  EXPECT_TRUE(s.candidates[0].Test(*db.nodes().Lookup("s1")));
}

TEST(SoiBuilderTest, SummaryInitEquals13) {
  // With Eq. (13) init, an acyclic 2-chain solves without any update.
  graph::GraphDatabaseBuilder b;
  EXPECT_TRUE(b.AddTriple("x", "a", "y").ok());
  EXPECT_TRUE(b.AddTriple("y", "b", "z").ok());
  graph::GraphDatabase db = std::move(b).Build();
  Soi soi = BuildFromText("{ ?u <a> ?v . ?v <b> ?w . }", db);

  SolverOptions with13;
  with13.summary_init = true;
  Solution s13 = SolveSoi(soi, db, with13);
  SolverOptions with12;
  with12.summary_init = false;
  Solution s12 = SolveSoi(soi, db, with12);
  for (size_t v = 0; v < soi.NumVars(); ++v) {
    EXPECT_EQ(s13.candidates[v], s12.candidates[v]);
  }
  // Eq. 13 starts closer to the fixpoint.
  EXPECT_LE(s13.stats.updates, s12.stats.updates);
}

}  // namespace
}  // namespace sparqlsim::sim
