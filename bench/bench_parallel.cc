// Thread-scaling bench for the SimEngine solving path: multi-branch (UNION
// batching) and multi-inequality (per-round parallel evaluation) workloads
// over the DBpedia-like generator, solved at 1/2/4/... threads.
//
// Results are bit-identical across thread counts (verified here on every
// run); the interesting numbers are wall-clock speedup and the available
// per-round width. Set SPARQLSIM_BENCH_JSON=<path> to archive the numbers
// as JSON — tools/run_benches.sh does this under bench/results/.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sim/sim_engine.h"
#include "sparql/normalize.h"

namespace sparqlsim {
namespace {

/// UNION of the BGP cores of the first `k` benchmark queries: one
/// union-free branch per query, so branch batching gets `k` independent
/// solves to run concurrently.
sparql::Query MakeUnionWorkload(size_t k) {
  std::unique_ptr<sparql::Pattern> where;
  size_t used = 0;
  for (const auto& [id, text] : datagen::BenchmarkQueries()) {
    if (used == k) break;
    sparql::Query q = bench::ParseOrDie(text);
    if (!q.where->IsBgp()) continue;
    ++used;
    where = where == nullptr
                ? q.where->Clone()
                : sparql::Pattern::Union(std::move(where), q.where->Clone());
  }
  sparql::Query query;
  query.where = std::move(where);
  return query;
}

/// One wide BGP: the triples of the first `k` benchmark BGPs with variables
/// renamed apart (q<i>_x), yielding ~2 * total-triples matrix inequalities
/// that are all unstable together in early rounds.
sparql::Query MakeWideBgpWorkload(size_t k) {
  std::vector<sparql::TriplePattern> triples;
  size_t used = 0;
  for (const auto& [id, text] : datagen::BenchmarkQueries()) {
    if (used == k) break;
    sparql::Query q = bench::ParseOrDie(text);
    if (!q.where->IsBgp()) continue;
    std::string prefix = "q";
    prefix += std::to_string(used);
    prefix += '_';
    ++used;
    auto rename = [&](const sparql::Term& t) {
      return t.IsVariable() ? sparql::Term::Var(prefix + t.text()) : t;
    };
    for (const sparql::TriplePattern& t : q.where->triples()) {
      triples.push_back({rename(t.subject), rename(t.predicate),
                         rename(t.object)});
    }
  }
  sparql::Query query;
  query.where = sparql::Pattern::Bgp(std::move(triples));
  return query;
}

struct Sample {
  size_t threads = 0;
  double seconds = 0;
  size_t parallel_rounds = 0;
  size_t max_round_width = 0;
};

struct WorkloadResult {
  std::string name;
  bool incremental = true;
  size_t num_branches = 0;
  std::vector<Sample> samples;
};

/// Runs one workload across `thread_counts`. `reference` carries the flat
/// candidate vectors of the first run ever made for this workload: passing
/// the same vector to the incremental-on and -off passes extends the
/// bit-exactness check across the incremental toggle, not just across
/// thread counts.
WorkloadResult RunWorkload(const char* name, const graph::GraphDatabase& db,
                           const sparql::Query& query,
                           const std::vector<size_t>& thread_counts,
                           bool incremental,
                           std::vector<util::BitVector>* reference_io) {
  WorkloadResult result;
  result.name = name;
  result.incremental = incremental;

  std::printf("\n%s%s:\n", name, incremental ? "" : " (incremental off)");
  std::printf("  %-8s %12s %9s %10s %12s %10s\n", "threads", "time(s)",
              "speedup", "par.rounds", "round-width", "branches");

  std::vector<util::BitVector>& reference = *reference_io;
  double base_seconds = 0;
  for (size_t threads : thread_counts) {
    sim::SolverOptions options;
    options.num_threads = threads;
    options.incremental_eval = incremental;
    options.cache_sois = false;  // measure solving, not cache hits
    options.cache_solutions = false;
    sim::SimEngine engine(&db, options);

    sim::PruneReport report;
    double seconds =
        bench::TimeAverage([&] { report = engine.Prune(query); });

    // Bit-exact determinism check across thread counts *and* across the
    // incremental on/off passes (shared reference).
    std::vector<util::BitVector> flat;
    for (const auto& [var, bits] : report.var_candidates) flat.push_back(bits);
    if (reference.empty()) {
      reference = flat;
    } else if (flat != reference) {
      std::fprintf(stderr,
                   "FATAL: results differ at %zu threads (incremental %d)\n",
                   threads, incremental ? 1 : 0);
      std::abort();
    }
    if (base_seconds == 0) base_seconds = seconds;

    result.num_branches = report.num_branches;
    result.samples.push_back({threads, seconds, report.stats.parallel_rounds,
                              report.stats.max_round_width});
    std::printf("  %-8zu %12.5f %8.2fx %10zu %12zu %10zu\n", threads, seconds,
                seconds > 0 ? base_seconds / seconds : 0.0,
                report.stats.parallel_rounds, report.stats.max_round_width,
                report.num_branches);
  }
  return result;
}

void WriteJson(const std::vector<WorkloadResult>& results, FILE* out) {
  std::fprintf(out, "{\n  \"bench\": \"parallel\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"workloads\": [\n");
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& r = results[w];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"incremental\": %s, "
                 "\"branches\": %zu, \"samples\": [",
                 r.name.c_str(), r.incremental ? "true" : "false",
                 r.num_branches);
    for (size_t i = 0; i < r.samples.size(); ++i) {
      const Sample& s = r.samples[i];
      std::fprintf(out,
                   "%s\n      {\"threads\": %zu, \"seconds\": %.6f, "
                   "\"speedup\": %.3f, \"parallel_rounds\": %zu, "
                   "\"max_round_width\": %zu}",
                   i == 0 ? "" : ",", s.threads, s.seconds,
                   s.seconds > 0 ? r.samples[0].seconds / s.seconds : 0.0,
                   s.parallel_rounds, s.max_round_width);
    }
    std::fprintf(out, "\n    ]}%s\n", w + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  std::printf("SimEngine thread scaling (branch batching + parallel rounds)\n");
  // `--db <file.gdb>` scales the solver over a real ingested database.
  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  graph::GraphDatabase db =
      override_db ? std::move(*override_db) : bench::MakeBenchDbpedia();

  const size_t k = bench::EnvSize("SPARQLSIM_PARALLEL_QUERIES", 6);
  sparql::Query union_query = MakeUnionWorkload(k);
  sparql::Query wide_query = MakeWideBgpWorkload(k);

  std::vector<size_t> thread_counts = {1, 2, 4};
  size_t hw = util::ThreadPool::ResolveThreadCount(0);
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<WorkloadResult> results;
  std::vector<util::BitVector> union_reference;
  std::vector<util::BitVector> wide_reference;
  results.push_back(RunWorkload("multi-branch (UNION batching)", db,
                                union_query, thread_counts,
                                /*incremental=*/true, &union_reference));
  results.push_back(RunWorkload("multi-inequality (parallel rounds)", db,
                                wide_query, thread_counts,
                                /*incremental=*/true, &wide_reference));
  // Same workloads with delta-driven evaluation off: the algorithmic
  // (thread-independent) comparison, checked bit-identical against the
  // incremental passes above through the shared references.
  results.push_back(RunWorkload("multi-branch (UNION batching)", db,
                                union_query, thread_counts,
                                /*incremental=*/false, &union_reference));
  results.push_back(RunWorkload("multi-inequality (parallel rounds)", db,
                                wide_query, thread_counts,
                                /*incremental=*/false, &wide_reference));

  const char* json_path = std::getenv("SPARQLSIM_BENCH_JSON");
  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    WriteJson(results, out);
    std::fclose(out);
    std::fprintf(stderr, "[bench] JSON written to %s\n", json_path);
  } else {
    WriteJson(results, stdout);
  }
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
