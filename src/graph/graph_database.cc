#include "graph/graph_database.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/gap_codec.h"

namespace sparqlsim::graph {

GraphDatabaseBuilder::GraphDatabaseBuilder()
    : nodes_(std::make_shared<Dictionary>()),
      predicates_(std::make_shared<Dictionary>()),
      is_literal_(std::make_shared<std::vector<bool>>()) {}

uint32_t GraphDatabaseBuilder::InternNode(std::string_view name) {
  uint32_t id = nodes_->Intern(name);
  if (id >= is_literal_->size()) is_literal_->resize(id + 1, false);
  return id;
}

uint32_t GraphDatabaseBuilder::InternLiteral(std::string_view value) {
  uint32_t id = nodes_->Intern(value);
  if (id >= is_literal_->size()) {
    is_literal_->resize(id + 1, false);
    (*is_literal_)[id] = true;
  }
  return id;
}

uint32_t GraphDatabaseBuilder::InternPredicate(std::string_view name) {
  return predicates_->Intern(name);
}

util::Status GraphDatabaseBuilder::AddTriple(std::string_view s,
                                             std::string_view p,
                                             std::string_view o) {
  // Intern in subject-predicate-object order so id assignment does not
  // depend on the compiler's argument evaluation order.
  uint32_t s_id = InternNode(s);
  uint32_t p_id = InternPredicate(p);
  uint32_t o_id = InternNode(o);
  return AddTripleIds(s_id, p_id, o_id);
}

util::Status GraphDatabaseBuilder::AddTripleLiteral(std::string_view s,
                                                    std::string_view p,
                                                    std::string_view literal) {
  uint32_t s_id = InternNode(s);
  uint32_t p_id = InternPredicate(p);
  uint32_t o_id = InternLiteral(literal);
  return AddTripleIds(s_id, p_id, o_id);
}

util::Status GraphDatabaseBuilder::AddTripleIds(uint32_t s, uint32_t p,
                                                uint32_t o) {
  if (s >= is_literal_->size() || o >= is_literal_->size() ||
      p >= predicates_->size()) {
    return util::Status::Error("triple references unknown id");
  }
  if ((*is_literal_)[s]) {
    return util::Status::Error("literal '" + nodes_->Name(s) +
                               "' used in subject position (Def. 1)");
  }
  triples_.push_back({s, p, o});
  return util::Status::Ok();
}

GraphDatabase GraphDatabaseBuilder::Build() && {
  GraphDatabase db;
  db.nodes_ = nodes_;
  db.predicates_ = predicates_;
  db.is_literal_ = is_literal_;
  db.BuildMatrices(std::move(triples_));
  return db;
}

// ---------------------------------------------------------------------------
// PredicateSlot: decode-on-fault behind the COW slot pointer
// ---------------------------------------------------------------------------

const GraphDatabase::PredicateSlab& GraphDatabase::PredicateSlot::Fault()
    const {
  util::Status status = TryFault();
  if (!status.ok()) {
    // Get() has no error channel (it hands out references on the solver's
    // hot path), and open-time validation makes decode failure here mean
    // the file changed underneath the mapping — not recoverable.
    std::fprintf(stderr,
                 "sparqlsim: fatal: lazy materialization of predicate %u "
                 "failed: %s\n",
                 predicate, status.message().c_str());
    std::abort();
  }
  return *resident.load(std::memory_order_acquire);
}

util::Status GraphDatabase::PredicateSlot::TryFault() const {
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (slab == nullptr) {
      auto decoded = backing->DecodeSlab(predicate);
      if (!decoded.ok()) return decoded.status();
      slab = std::move(decoded).value();
      bytes = OutOfCoreBacking::SlabBytes(*slab);
      resident.store(slab.get(), std::memory_order_release);
    }
  }
  // Counter/budget bookkeeping happens outside the slot lock (the backing
  // mutex is always taken without a slot lock held; eviction takes them in
  // the opposite order). A slab decoded but not yet noted is invisible to
  // the eviction FIFO, which is safe: it just cannot be evicted yet.
  if (bytes != 0) backing->NoteMaterialized(predicate, bytes);
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// OutOfCoreBacking: counters, FIFO eviction, pin accounting
// ---------------------------------------------------------------------------

ResidencyPin::ResidencyPin(std::shared_ptr<OutOfCoreBacking> backing)
    : backing_(std::move(backing)) {
  if (backing_) backing_->Pin();
}

ResidencyPin::~ResidencyPin() {
  if (backing_) backing_->Unpin();
}

ResidencyPin& ResidencyPin::operator=(ResidencyPin&& other) noexcept {
  if (this != &other) {
    if (backing_) backing_->Unpin();
    backing_ = std::move(other.backing_);
  }
  return *this;
}

size_t OutOfCoreBacking::SlabBytes(const Slab& slab) {
  return slab.forward.ApproxBytes() + slab.backward.ApproxBytes() +
         slab.forward_summary.size() / 4;  // two summary vectors, n/8 each
}

void OutOfCoreBacking::AttachSlot(
    uint32_t p, std::weak_ptr<const GraphDatabase::PredicateSlot> slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slots_.size() <= p) slots_.resize(p + 1);
  slots_[p] = std::move(slot);
}

BackingStats OutOfCoreBacking::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BackingStats s;
  s.predicates = slots_.size();
  s.resident = resident_count_;
  s.materializations = materializations_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.budget_bytes = budget_bytes_;
  return s;
}

void OutOfCoreBacking::SetBudgetBytes(size_t bytes) {
  std::vector<std::shared_ptr<const Slab>> freed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    budget_bytes_ = bytes;
    if (budget_bytes_ == 0) return;
    if (pins_ > 0) {
      enforcement_deferred_ = true;
    } else {
      EnforceBudgetLocked(UINT32_MAX, &freed);
    }
  }
}

void OutOfCoreBacking::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_;
}

void OutOfCoreBacking::Unpin() {
  std::vector<std::shared_ptr<const Slab>> freed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --pins_;
    if (pins_ == 0 && enforcement_deferred_ && budget_bytes_ != 0) {
      enforcement_deferred_ = false;
      EnforceBudgetLocked(UINT32_MAX, &freed);
    }
  }
}

size_t OutOfCoreBacking::EvictAll() {
  std::vector<std::shared_ptr<const Slab>> freed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pins_ > 0) return 0;  // in-flight readers keep their slabs
    size_t saved_budget = budget_bytes_;
    budget_bytes_ = 1;  // evict down to (effectively) nothing
    EnforceBudgetLocked(UINT32_MAX, &freed);
    budget_bytes_ = saved_budget;
  }
  return freed.size();
}

void OutOfCoreBacking::NoteMaterialized(uint32_t p, size_t bytes) {
  std::vector<std::shared_ptr<const Slab>> freed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++materializations_;
    ++resident_count_;
    resident_bytes_ += bytes;
    fifo_.emplace_back(p, bytes);
    if (budget_bytes_ != 0 && resident_bytes_ > budget_bytes_) {
      if (pins_ > 0) {
        enforcement_deferred_ = true;
      } else {
        EnforceBudgetLocked(p, &freed);
      }
    }
  }
  // Freed slabs are released outside mu_ so their (possibly large)
  // destructors never run under the backing lock.
}

void OutOfCoreBacking::EnforceBudgetLocked(
    uint32_t keep_predicate, std::vector<std::shared_ptr<const Slab>>* freed) {
  size_t scan = 0;
  while (resident_bytes_ > budget_bytes_ && scan < fifo_.size()) {
    auto [p, bytes] = fifo_[scan];
    if (p == keep_predicate) {
      ++scan;  // never evict the slab that triggered enforcement
      continue;
    }
    fifo_.erase(fifo_.begin() + static_cast<ptrdiff_t>(scan));
    resident_bytes_ -= bytes < resident_bytes_ ? bytes : resident_bytes_;
    if (resident_count_ > 0) --resident_count_;
    std::shared_ptr<const GraphDatabase::PredicateSlot> slot =
        p < slots_.size() ? slots_[p].lock() : nullptr;
    if (slot != nullptr) {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      slot->resident.store(nullptr, std::memory_order_release);
      if (slot->slab) freed->push_back(std::move(slot->slab));
      slot->slab.reset();
      ++evictions_;
    }
    // An expired slot means its databases died: the slab is already gone,
    // so only the accounting had to catch up.
  }
}

// ---------------------------------------------------------------------------
// GraphDatabase
// ---------------------------------------------------------------------------

uint64_t GraphDatabase::NextGeneration() {
  static std::atomic<uint64_t> next_generation{0};
  return next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<const GraphDatabase::PredicateSlab> GraphDatabase::BuildSlab(
    size_t n, std::vector<std::pair<uint32_t, uint32_t>>&& entries) {
  auto slab = std::make_shared<PredicateSlab>();
  slab->forward = util::BitMatrix::Build(n, n, std::move(entries));
  slab->backward = slab->forward.Transposed();
  slab->forward_summary = slab->forward.RowSummary();
  slab->backward_summary = slab->backward.RowSummary();
  slab->subject_count = slab->forward_summary.Count();
  slab->object_count = slab->backward_summary.Count();
  // Columns of F_p are objects and columns of B_p are subjects, so the
  // empty-column counts fall out of the summary counts for free — no
  // extra O(nnz) pass.
  slab->empty_forward_cols = n - slab->object_count;
  slab->empty_backward_cols = n - slab->subject_count;
  return slab;
}

std::shared_ptr<const GraphDatabase::PredicateSlot>
GraphDatabase::MakeEagerSlot(std::shared_ptr<const PredicateSlab> slab) {
  auto slot = std::make_shared<PredicateSlot>();
  slot->nnz = slab->forward.Nnz();
  slot->slab = std::move(slab);
  slot->resident.store(slot->slab.get(), std::memory_order_release);
  return slot;
}

bool GraphDatabase::SlabMatches(
    const PredicateSlab& slab,
    const std::vector<std::pair<uint32_t, uint32_t>>& entries) {
  if (slab.forward.Nnz() != entries.size()) return false;
  // Lockstep walk: the matrix streams its triples in ascending
  // (subject, object) order, which is exactly the order of the sorted,
  // deduplicated entry list.
  size_t pos = 0;
  const auto rows = slab.forward.NonEmptyRows();
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    for (uint32_t o : slab.forward.RowBySlot(slot)) {
      if (entries[pos].first != rows[slot] || entries[pos].second != o) {
        return false;
      }
      ++pos;
    }
  }
  return true;
}

void GraphDatabase::BuildMatrices(std::vector<Triple>&& triples) {
  generation_ = NextGeneration();

  size_t n = NumNodes();
  size_t num_predicates = NumPredicates();

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      num_predicates);
  for (const Triple& t : triples) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
  }
  triples.clear();
  triples.shrink_to_fit();

  slots_.clear();
  slots_.reserve(num_predicates);
  num_triples_ = 0;
  for (size_t p = 0; p < num_predicates; ++p) {
    slots_.push_back(MakeEagerSlot(BuildSlab(n, std::move(per_predicate[p]))));
    num_triples_ += slots_.back()->nnz;
  }
}

GraphDatabase GraphDatabase::RebuildChanged(
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>>&& per_predicate,
    const std::vector<bool>* touched) const {
  ResidencyPin pin = PinResidency();
  const size_t n = NumNodes();
  GraphDatabase db;
  db.nodes_ = nodes_;
  db.predicates_ = predicates_;
  db.is_literal_ = is_literal_;
  db.backing_ = backing_;  // shared lazy slots keep their fault path
  db.slots_.reserve(slots_.size());
  db.num_triples_ = 0;
  bool any_changed = false;
  for (size_t p = 0; p < slots_.size(); ++p) {
    if (touched != nullptr && !(*touched)[p]) {
      // COW: an untouched predicate shares its slot — and, in the
      // out-of-core tier, stays unmaterialized if it was.
      db.slots_.push_back(slots_[p]);
      db.num_triples_ += slots_[p]->nnz;
      continue;
    }
    auto& entries = per_predicate[p];
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
    if (SlabMatches(slots_[p]->Get(), entries)) {
      db.slots_.push_back(slots_[p]);  // COW: share the unchanged slot
    } else {
      db.slots_.push_back(MakeEagerSlot(BuildSlab(n, std::move(entries))));
      any_changed = true;
    }
    db.num_triples_ += db.slots_.back()->nnz;
  }
  // A content-identical sibling keeps the generation: caches stay warm and
  // snapshot bookkeeping treats the two as one version.
  db.generation_ = any_changed ? NextGeneration() : generation_;
  return db;
}

util::Status GraphDatabase::MaterializeAllAndDetach() {
  if (backing_ == nullptr) return util::Status::Ok();
  for (auto& slot : slots_) {
    if (slot->backing == nullptr) continue;
    util::Status status = slot->TryFault();
    if (!status.ok()) return status;
    std::shared_ptr<const PredicateSlab> slab;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      slab = slot->slab;
    }
    slot = MakeEagerSlot(std::move(slab));
  }
  backing_.reset();
  return util::Status::Ok();
}

std::vector<Triple> GraphDatabase::AllTriples() const {
  ResidencyPin pin = PinResidency();
  std::vector<Triple> result;
  result.reserve(num_triples_);
  ForEachTriple([&](const Triple& t) { result.push_back(t); });
  return result;
}

GraphDatabase GraphDatabase::Restrict(std::span<const Triple> kept) const {
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      NumPredicates());
  for (const Triple& t : kept) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
  }
  return RebuildChanged(std::move(per_predicate), /*touched=*/nullptr);
}

GraphDatabase GraphDatabase::WithTriplesAdded(
    std::span<const Triple> added) const {
  ResidencyPin pin = PinResidency();
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      NumPredicates());
  std::vector<bool> touched(NumPredicates(), false);
  for (const Triple& t : added) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
    touched[t.predicate] = true;
  }
  // Only predicates with additions materialize their existing triples into
  // the entry list (RebuildChanged shares every untouched slab outright,
  // and recognizes duplicate-only additions by its lockstep compare).
  for (uint32_t p = 0; p < NumPredicates(); ++p) {
    if (!touched[p]) continue;
    per_predicate[p].reserve(per_predicate[p].size() + slots_[p]->nnz);
    ForEachTriple(p, [&](uint32_t s, uint32_t o) {
      per_predicate[p].emplace_back(s, o);
    });
  }
  return RebuildChanged(std::move(per_predicate), &touched);
}

GraphDatabase GraphDatabase::WithTriplesRemoved(
    std::span<const Triple> removed) const {
  ResidencyPin pin = PinResidency();
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> gone(
      NumPredicates());
  std::vector<bool> touched(NumPredicates(), false);
  for (const Triple& t : removed) {
    gone[t.predicate].emplace_back(t.subject, t.object);
    touched[t.predicate] = true;
  }
  // Touched predicates materialize their surviving entries (existing minus
  // the removal set); RebuildChanged shares every untouched slab outright
  // and recognizes absent-only removals by its lockstep compare, so
  // deleting triples that do not exist is a no-op down to the generation.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      NumPredicates());
  for (uint32_t p = 0; p < NumPredicates(); ++p) {
    if (!touched[p]) continue;
    auto& victims = gone[p];
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    per_predicate[p].reserve(slots_[p]->nnz);
    ForEachTriple(p, [&](uint32_t s, uint32_t o) {
      const std::pair<uint32_t, uint32_t> entry{s, o};
      if (!std::binary_search(victims.begin(), victims.end(), entry)) {
        per_predicate[p].emplace_back(s, o);
      }
    });
  }
  return RebuildChanged(std::move(per_predicate), &touched);
}

std::vector<uint32_t> GraphDatabase::ChangedPredicates(
    const GraphDatabase& other) const {
  std::vector<uint32_t> changed;
  for (uint32_t p = 0; p < NumPredicates(); ++p) {
    if (slots_[p] != other.slots_[p]) changed.push_back(p);
  }
  return changed;
}

size_t GraphDatabase::ApproxMatrixBytes() const {
  ResidencyPin pin = PinResidency();
  size_t total = 0;
  for (const auto& slot : slots_) {
    const PredicateSlab& slab = slot->Get();
    total += slab.forward.ApproxBytes() + slab.backward.ApproxBytes();
  }
  return total;
}

size_t GraphDatabase::GapEncodedMatrixBytes() const {
  ResidencyPin pin = PinResidency();
  size_t total = 0;
  size_t n = NumNodes();
  for (const auto& slot : slots_) {
    const util::BitMatrix& m = slot->Get().forward;
    for (uint32_t r : m.NonEmptyRows()) {
      total += util::GapCodec::EncodedSizeFromIndices(m.Row(r), n);
    }
  }
  return total;
}

BackingStats GraphDatabase::backing_stats() const {
  if (backing_ == nullptr) return BackingStats{};
  return backing_->stats();
}

ResidencyPin GraphDatabase::PinResidency() const {
  return ResidencyPin(backing_);
}

void GraphDatabase::SetResidentBudget(size_t bytes) const {
  if (backing_ != nullptr) backing_->SetBudgetBytes(bytes);
}

}  // namespace sparqlsim::graph
