#include "graph/graph_database.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/gap_codec.h"

namespace sparqlsim::graph {

GraphDatabaseBuilder::GraphDatabaseBuilder()
    : nodes_(std::make_shared<Dictionary>()),
      predicates_(std::make_shared<Dictionary>()),
      is_literal_(std::make_shared<std::vector<bool>>()) {}

uint32_t GraphDatabaseBuilder::InternNode(std::string_view name) {
  uint32_t id = nodes_->Intern(name);
  if (id >= is_literal_->size()) is_literal_->resize(id + 1, false);
  return id;
}

uint32_t GraphDatabaseBuilder::InternLiteral(std::string_view value) {
  uint32_t id = nodes_->Intern(value);
  if (id >= is_literal_->size()) {
    is_literal_->resize(id + 1, false);
    (*is_literal_)[id] = true;
  }
  return id;
}

uint32_t GraphDatabaseBuilder::InternPredicate(std::string_view name) {
  return predicates_->Intern(name);
}

util::Status GraphDatabaseBuilder::AddTriple(std::string_view s,
                                             std::string_view p,
                                             std::string_view o) {
  // Intern in subject-predicate-object order so id assignment does not
  // depend on the compiler's argument evaluation order.
  uint32_t s_id = InternNode(s);
  uint32_t p_id = InternPredicate(p);
  uint32_t o_id = InternNode(o);
  return AddTripleIds(s_id, p_id, o_id);
}

util::Status GraphDatabaseBuilder::AddTripleLiteral(std::string_view s,
                                                    std::string_view p,
                                                    std::string_view literal) {
  uint32_t s_id = InternNode(s);
  uint32_t p_id = InternPredicate(p);
  uint32_t o_id = InternLiteral(literal);
  return AddTripleIds(s_id, p_id, o_id);
}

util::Status GraphDatabaseBuilder::AddTripleIds(uint32_t s, uint32_t p,
                                                uint32_t o) {
  if (s >= is_literal_->size() || o >= is_literal_->size() ||
      p >= predicates_->size()) {
    return util::Status::Error("triple references unknown id");
  }
  if ((*is_literal_)[s]) {
    return util::Status::Error("literal '" + nodes_->Name(s) +
                               "' used in subject position (Def. 1)");
  }
  triples_.push_back({s, p, o});
  return util::Status::Ok();
}

GraphDatabase GraphDatabaseBuilder::Build() && {
  GraphDatabase db;
  db.nodes_ = nodes_;
  db.predicates_ = predicates_;
  db.is_literal_ = is_literal_;
  db.BuildMatrices(std::move(triples_));
  return db;
}

uint64_t GraphDatabase::NextGeneration() {
  static std::atomic<uint64_t> next_generation{0};
  return next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<const GraphDatabase::PredicateSlab> GraphDatabase::BuildSlab(
    size_t n, std::vector<std::pair<uint32_t, uint32_t>>&& entries) {
  auto slab = std::make_shared<PredicateSlab>();
  slab->forward = util::BitMatrix::Build(n, n, std::move(entries));
  slab->backward = slab->forward.Transposed();
  slab->forward_summary = slab->forward.RowSummary();
  slab->backward_summary = slab->backward.RowSummary();
  slab->subject_count = slab->forward_summary.Count();
  slab->object_count = slab->backward_summary.Count();
  // Columns of F_p are objects and columns of B_p are subjects, so the
  // empty-column counts fall out of the summary counts for free — no
  // extra O(nnz) pass.
  slab->empty_forward_cols = n - slab->object_count;
  slab->empty_backward_cols = n - slab->subject_count;
  return slab;
}

bool GraphDatabase::SlabMatches(
    const PredicateSlab& slab,
    const std::vector<std::pair<uint32_t, uint32_t>>& entries) {
  if (slab.forward.Nnz() != entries.size()) return false;
  // Lockstep walk: the matrix streams its triples in ascending
  // (subject, object) order, which is exactly the order of the sorted,
  // deduplicated entry list.
  size_t pos = 0;
  const auto rows = slab.forward.NonEmptyRows();
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    for (uint32_t o : slab.forward.RowBySlot(slot)) {
      if (entries[pos].first != rows[slot] || entries[pos].second != o) {
        return false;
      }
      ++pos;
    }
  }
  return true;
}

void GraphDatabase::BuildMatrices(std::vector<Triple>&& triples) {
  generation_ = NextGeneration();

  size_t n = NumNodes();
  size_t num_predicates = NumPredicates();

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      num_predicates);
  for (const Triple& t : triples) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
  }
  triples.clear();
  triples.shrink_to_fit();

  slabs_.clear();
  slabs_.reserve(num_predicates);
  num_triples_ = 0;
  for (size_t p = 0; p < num_predicates; ++p) {
    slabs_.push_back(BuildSlab(n, std::move(per_predicate[p])));
    num_triples_ += slabs_.back()->forward.Nnz();
  }
}

GraphDatabase GraphDatabase::RebuildChanged(
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>>&& per_predicate,
    const std::vector<bool>* touched) const {
  const size_t n = NumNodes();
  GraphDatabase db;
  db.nodes_ = nodes_;
  db.predicates_ = predicates_;
  db.is_literal_ = is_literal_;
  db.slabs_.reserve(slabs_.size());
  db.num_triples_ = 0;
  bool any_changed = false;
  for (size_t p = 0; p < slabs_.size(); ++p) {
    if (touched != nullptr && !(*touched)[p]) {
      db.slabs_.push_back(slabs_[p]);
      db.num_triples_ += slabs_[p]->forward.Nnz();
      continue;
    }
    auto& entries = per_predicate[p];
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
    if (SlabMatches(*slabs_[p], entries)) {
      db.slabs_.push_back(slabs_[p]);  // COW: share the unchanged slab
    } else {
      db.slabs_.push_back(BuildSlab(n, std::move(entries)));
      any_changed = true;
    }
    db.num_triples_ += db.slabs_.back()->forward.Nnz();
  }
  // A content-identical sibling keeps the generation: caches stay warm and
  // snapshot bookkeeping treats the two as one version.
  db.generation_ = any_changed ? NextGeneration() : generation_;
  return db;
}

std::vector<Triple> GraphDatabase::AllTriples() const {
  std::vector<Triple> result;
  result.reserve(num_triples_);
  ForEachTriple([&](const Triple& t) { result.push_back(t); });
  return result;
}

GraphDatabase GraphDatabase::Restrict(std::span<const Triple> kept) const {
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      NumPredicates());
  for (const Triple& t : kept) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
  }
  return RebuildChanged(std::move(per_predicate), /*touched=*/nullptr);
}

GraphDatabase GraphDatabase::WithTriplesAdded(
    std::span<const Triple> added) const {
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      NumPredicates());
  std::vector<bool> touched(NumPredicates(), false);
  for (const Triple& t : added) {
    per_predicate[t.predicate].emplace_back(t.subject, t.object);
    touched[t.predicate] = true;
  }
  // Only predicates with additions materialize their existing triples into
  // the entry list (RebuildChanged shares every untouched slab outright,
  // and recognizes duplicate-only additions by its lockstep compare).
  for (uint32_t p = 0; p < NumPredicates(); ++p) {
    if (!touched[p]) continue;
    per_predicate[p].reserve(per_predicate[p].size() +
                             slabs_[p]->forward.Nnz());
    ForEachTriple(p, [&](uint32_t s, uint32_t o) {
      per_predicate[p].emplace_back(s, o);
    });
  }
  return RebuildChanged(std::move(per_predicate), &touched);
}

GraphDatabase GraphDatabase::WithTriplesRemoved(
    std::span<const Triple> removed) const {
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> gone(
      NumPredicates());
  std::vector<bool> touched(NumPredicates(), false);
  for (const Triple& t : removed) {
    gone[t.predicate].emplace_back(t.subject, t.object);
    touched[t.predicate] = true;
  }
  // Touched predicates materialize their surviving entries (existing minus
  // the removal set); RebuildChanged shares every untouched slab outright
  // and recognizes absent-only removals by its lockstep compare, so
  // deleting triples that do not exist is a no-op down to the generation.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_predicate(
      NumPredicates());
  for (uint32_t p = 0; p < NumPredicates(); ++p) {
    if (!touched[p]) continue;
    auto& victims = gone[p];
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    per_predicate[p].reserve(slabs_[p]->forward.Nnz());
    ForEachTriple(p, [&](uint32_t s, uint32_t o) {
      const std::pair<uint32_t, uint32_t> entry{s, o};
      if (!std::binary_search(victims.begin(), victims.end(), entry)) {
        per_predicate[p].emplace_back(s, o);
      }
    });
  }
  return RebuildChanged(std::move(per_predicate), &touched);
}

std::vector<uint32_t> GraphDatabase::ChangedPredicates(
    const GraphDatabase& other) const {
  std::vector<uint32_t> changed;
  for (uint32_t p = 0; p < NumPredicates(); ++p) {
    if (slabs_[p] != other.slabs_[p]) changed.push_back(p);
  }
  return changed;
}

size_t GraphDatabase::ApproxMatrixBytes() const {
  size_t total = 0;
  for (const auto& slab : slabs_) {
    total += slab->forward.ApproxBytes() + slab->backward.ApproxBytes();
  }
  return total;
}

size_t GraphDatabase::GapEncodedMatrixBytes() const {
  size_t total = 0;
  size_t n = NumNodes();
  for (const auto& slab : slabs_) {
    const util::BitMatrix& m = slab->forward;
    for (uint32_t r : m.NonEmptyRows()) {
      total += util::GapCodec::EncodedSizeFromIndices(m.Row(r), n);
    }
  }
  return total;
}

}  // namespace sparqlsim::graph
