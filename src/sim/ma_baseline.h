#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sim/solver.h"

namespace sparqlsim::sim {

/// The dual simulation algorithm of Ma et al. [20], adapted to the labeled
/// pattern-vs-data setting exactly as the paper's Table 2 comparison does.
///
/// This is the "single passive strategy" the paper criticizes: starting
/// from the largest possible relation V1 x V2, the algorithm repeatedly
/// performs *full sweeps* over all pattern edges, re-checking Def. 2 for
/// every remaining candidate pair and disqualifying violators, until a
/// complete sweep changes nothing. There is no worklist, no summary
/// initialization, and no evaluation-strategy choice — those are exactly
/// the degrees of freedom the SOI formulation adds.
///
/// `pattern` edge labels must be database predicate ids (or
/// kEmptyPredicate). `constants` optionally pins pattern nodes to single
/// database nodes — constants are part of the query translation, not of
/// the algorithm, so both compared algorithms receive them.
///
/// Returns the unique largest dual simulation (identical to SolveSoi's
/// result; Prop. 1); stats.rounds counts full sweeps.
Solution MaDualSimulation(
    const graph::Graph& pattern, const graph::GraphDatabase& db,
    const std::vector<std::optional<uint32_t>>& constants = {});

}  // namespace sparqlsim::sim
