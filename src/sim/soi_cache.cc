#include "sim/soi_cache.h"

#include <utility>

namespace sparqlsim::sim {

std::string SoiCache::MakeKey(uint64_t generation, const std::string& key) {
  return std::to_string(generation) + '\n' + key;
}

std::shared_ptr<const Soi> SoiCache::FindSoi(uint64_t generation,
                                             const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sois_.find(MakeKey(generation, key));
  if (it == sois_.end()) {
    ++stats_.soi_misses;
    return nullptr;
  }
  ++stats_.soi_hits;
  return it->second;
}

std::shared_ptr<const Soi> SoiCache::InsertSoi(uint64_t generation,
                                               const std::string& key,
                                               Soi soi) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = sois_.try_emplace(
      MakeKey(generation, key), std::make_shared<const Soi>(std::move(soi)));
  return it->second;
}

std::shared_ptr<const Solution> SoiCache::FindSolution(
    uint64_t generation, const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = solutions_.find(MakeKey(generation, key));
  if (it == solutions_.end()) {
    ++stats_.solution_misses;
    return nullptr;
  }
  ++stats_.solution_hits;
  return it->second;
}

std::shared_ptr<const Solution> SoiCache::InsertSolution(uint64_t generation,
                                                         const std::string& key,
                                                         Solution solution) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = solutions_.try_emplace(
      MakeKey(generation, key),
      std::make_shared<const Solution>(std::move(solution)));
  return it->second;
}

SoiCache::Stats SoiCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t SoiCache::NumSois() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sois_.size();
}

size_t SoiCache::NumSolutions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return solutions_.size();
}

void SoiCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  sois_.clear();
  solutions_.clear();
  stats_ = Stats{};
}

}  // namespace sparqlsim::sim
