// The column-sharding contract: SolveSoi with any SolverOptions::num_shards
// produces solutions, PruneReports, and fixpoint *trajectories* bit-identical
// to the 1-shard solve — the same determinism gate the thread-count and
// kernel-mode differential suites hold. Shard tasks only partition each
// round's data work over word-aligned column ranges; every decision (eval
// kinds, cost rules, incremental-tier transitions) runs once per inequality
// regardless of the partition, so nothing semantic may depend on the shard
// count. Runs under ASan/UBSan and (via the query-service suites) TSan in CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/validate.h"
#include "sparql/parser.h"
#include "util/bitvector.h"

namespace sparqlsim::sim {
namespace {

// ---------------------------------------------------------------------------
// MakeShardPlan: the partition itself
// ---------------------------------------------------------------------------

TEST(ShardPlanTest, SingleShardCoversTheWholeUniverse) {
  const auto plan = MakeShardPlan(/*num_columns=*/130, /*num_shards=*/1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].first, 0u);
  EXPECT_EQ(plan[0].second, 130u);
}

TEST(ShardPlanTest, RangesAreWordAlignedContiguousAndComplete) {
  for (size_t n : {64u, 65u, 128u, 130u, 1000u, 4096u, 4097u}) {
    for (size_t shards : {1u, 2u, 3u, 4u, 7u, 8u}) {
      const auto plan = MakeShardPlan(n, shards);
      ASSERT_FALSE(plan.empty()) << n << "/" << shards;
      EXPECT_EQ(plan.front().first, 0u);
      EXPECT_EQ(plan.back().second, n);
      for (size_t s = 0; s < plan.size(); ++s) {
        const auto [begin, end] = plan[s];
        EXPECT_LT(begin, end) << "empty range " << s;
        EXPECT_EQ(begin % util::BitVector::kWordBits, 0u)
            << "unaligned begin, n=" << n << " shards=" << shards;
        // Every boundary except the universe end is word-aligned; the last
        // range absorbs the ragged tail.
        if (s + 1 < plan.size()) {
          EXPECT_EQ(plan[s + 1].first, end) << "gap after range " << s;
          EXPECT_EQ(end % util::BitVector::kWordBits, 0u);
        }
      }
    }
  }
}

TEST(ShardPlanTest, ShardCountClampsToWordCount) {
  // 65 columns = 2 words: no plan can have more than 2 non-empty ranges.
  const auto plan = MakeShardPlan(/*num_columns=*/65, /*num_shards=*/8);
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], (std::pair<uint32_t, uint32_t>{0, 64}));
  EXPECT_EQ(plan[1], (std::pair<uint32_t, uint32_t>{64, 65}));
}

TEST(ShardPlanTest, ResolvedShardsClampsAndDefaults) {
  SolverOptions options;
  options.num_shards = 4;
  EXPECT_EQ(options.ResolvedShards(/*num_columns=*/1000), 4u);
  // More shards than 64-bit words: clamp.
  EXPECT_EQ(options.ResolvedShards(/*num_columns=*/100), 2u);
  EXPECT_EQ(options.ResolvedShards(/*num_columns=*/1), 1u);
}

// ---------------------------------------------------------------------------
// Differential suite: solutions + trajectories identical across shard
// counts, thread counts, kernel modes, and incremental on/off
// ---------------------------------------------------------------------------

void ExpectSameTrajectory(const SolveStats& actual, const SolveStats& want,
                          const std::string& context) {
  // Semantic counters — partition-independent by the determinism contract.
  EXPECT_EQ(actual.rounds, want.rounds) << context;
  EXPECT_EQ(actual.evaluations, want.evaluations) << context;
  EXPECT_EQ(actual.updates, want.updates) << context;
  EXPECT_EQ(actual.row_evals, want.row_evals) << context;
  EXPECT_EQ(actual.col_evals, want.col_evals) << context;
  EXPECT_EQ(actual.delta_evals, want.delta_evals) << context;
  EXPECT_EQ(actual.full_evals, want.full_evals) << context;
  EXPECT_EQ(actual.acc_rebuilds, want.acc_rebuilds) << context;
  EXPECT_EQ(actual.cols_cleared, want.cols_cleared) << context;
  EXPECT_EQ(actual.max_round_width, want.max_round_width) << context;
}

class ShardedDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedDeterminism, RandomSoiSolvesIdenticallyAcrossShardCounts) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 150;  // > 2 words so shard plans have real ranges
  config.num_edges = 600;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 3, seed + 2000);
  Soi soi = BuildSoiFromGraph(pattern);

  for (bool incremental : {true, false}) {
    for (auto kernel : {SolverOptions::KernelMode::kAuto,
                        SolverOptions::KernelMode::kDense,
                        SolverOptions::KernelMode::kCompressed}) {
      Solution reference;
      bool have_reference = false;
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
          SolverOptions options;
          options.num_threads = threads;
          options.num_shards = shards;
          options.incremental_eval = incremental;
          options.kernel_mode = kernel;
          SimEngine engine(&db, options);
          Solution solution = engine.Solve(soi);
          const std::string context =
              "seed " + std::to_string(seed) + ", " +
              std::to_string(threads) + " threads, " +
              std::to_string(shards) + " shards, kernel " +
              std::to_string(static_cast<int>(kernel)) +
              (incremental ? ", incremental" : ", full");
          EXPECT_EQ(solution.stats.shards_used,
                    options.ResolvedShards(db.NumNodes()))
              << context;
          EXPECT_FALSE(solution.truncated) << context;
          if (!have_reference) {
            // threads=1, shards=1, first kernel pass: the canonical solve.
            reference = std::move(solution);
            have_reference = true;
            std::string why;
            EXPECT_TRUE(SatisfiesSoi(soi, db, reference.candidates, &why))
                << context << ": " << why;
            continue;
          }
          ASSERT_EQ(solution.candidates.size(), reference.candidates.size());
          for (size_t v = 0; v < reference.candidates.size(); ++v) {
            EXPECT_EQ(solution.candidates[v], reference.candidates[v])
                << context << ", var " << v;
          }
          ExpectSameTrajectory(solution.stats, reference.stats, context);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDeterminism,
                         ::testing::Range<uint64_t>(1, 7));

TEST(ShardedPruneTest, UnionQueryPruneReportsIdenticalAcrossShardCounts) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { { ?d <directed> ?m . } UNION "
      "{ ?m <genre> ?g . ?d <directed> ?m . } UNION "
      "{ ?d <directed> ?m . OPTIONAL { ?d <worked_with> ?c . } } }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  PruneReport reference;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    SolverOptions options;
    options.num_threads = 2;
    options.num_shards = shards;
    SimEngine engine(&db, options);
    PruneReport report = engine.Prune(query);
    if (shards == 1) {
      reference = std::move(report);
      EXPECT_EQ(reference.num_branches, 3u);
      EXPECT_FALSE(reference.kept_triples.empty());
      continue;
    }
    EXPECT_EQ(report.kept_triples, reference.kept_triples)
        << shards << " shards";
    ASSERT_EQ(report.var_candidates.size(), reference.var_candidates.size());
    for (const auto& [var, bits] : reference.var_candidates) {
      auto it = report.var_candidates.find(var);
      ASSERT_NE(it, report.var_candidates.end()) << "?" << var;
      EXPECT_EQ(it->second, bits) << shards << " shards, ?" << var;
    }
    ExpectSameTrajectory(report.stats, reference.stats,
                         std::to_string(shards) + " shards");
  }
}

// ---------------------------------------------------------------------------
// Deadlines: truncation is sound (superset) and flagged
// ---------------------------------------------------------------------------

TEST(SolveControlTest, CancelledSolveTruncatesToASoundSuperset) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 150;
  config.num_edges = 600;
  config.num_labels = 3;
  config.seed = 9;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 3, 77);
  Soi soi = BuildSoiFromGraph(pattern);

  SimEngine engine(&db, SolverOptions{});
  Solution full = engine.Solve(soi);
  ASSERT_FALSE(full.truncated);

  // Pre-cancelled control: the fixpoint stops at the first round boundary.
  std::atomic<bool> cancel{true};
  SolveControl control;
  control.cancel = &cancel;
  Solution cut = engine.Solve(soi, /*initial=*/nullptr, &control);
  EXPECT_TRUE(cut.truncated);
  ASSERT_EQ(cut.candidates.size(), full.candidates.size());
  for (size_t v = 0; v < full.candidates.size(); ++v) {
    // Soundness: truncation can only leave extra candidates, never lose one.
    util::BitVector both = cut.candidates[v];
    both.AndWith(full.candidates[v]);
    EXPECT_EQ(both, full.candidates[v]) << "var " << v;
  }
}

TEST(SolveControlTest, ExpiredDeadlineMarksPruneReportTruncated) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { ?m <genre> ?g . ?d <directed> ?m . }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  SimEngine engine(&db, SolverOptions{});
  SolveControl control;
  control.deadline = std::chrono::steady_clock::now();  // already expired
  PruneReport report = engine.Prune(query, &control);
  EXPECT_TRUE(report.truncated);

  PruneReport full = engine.Prune(query);
  EXPECT_FALSE(full.truncated);
  // Superset property lifts through triple extraction.
  for (const graph::Triple& t : full.kept_triples) {
    EXPECT_TRUE(std::find(report.kept_triples.begin(),
                          report.kept_triples.end(),
                          t) != report.kept_triples.end());
  }
}

}  // namespace
}  // namespace sparqlsim::sim
