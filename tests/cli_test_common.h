// Shared subprocess helper for the CLI end-to-end suites.
#pragma once

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace sparqlsim_test {

/// Runs `command` through the shell with stderr silenced, returning its
/// stdout. *exit_code receives the exit status, or -1 if the process could
/// not be started or died on a signal.
inline std::string RunCommand(const std::string& command, int* exit_code) {
  std::string with_redirect = command + " 2>/dev/null";
  FILE* pipe = popen(with_redirect.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) {
    *exit_code = -1;
    return {};
  }
  std::string output;
  char buffer[4096];
  while (size_t n = fread(buffer, 1, sizeof(buffer), pipe)) {
    output.append(buffer, n);
  }
  int status = pclose(pipe);
  // A signal death (e.g. SIGSEGV in the CLI) must not read as exit 0.
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return output;
}

}  // namespace sparqlsim_test
