// Dedicated GAP/RLE codec suite: round trips across densities and
// boundary sizes, the streaming reader/writer, and — the part the codec's
// history makes load-bearing — strict rejection of malformed byte streams.
// The seed's codec trusted its input (unchecked varint reads, out-of-range
// Set calls); these tests pin the checked behavior that replaced it.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/bitvector.h"
#include "util/gap_codec.h"
#include "util/rng.h"

namespace sparqlsim::util {
namespace {

BitVector RandomVector(Rng* rng, size_t n, double density) {
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextBool(density)) v.Set(i);
  }
  return v;
}

// Sizes straddling the word (64) and hierarchical-block (4096) edges,
// where the word-wise run extraction and tail masking have their corner
// cases.
const size_t kBoundarySizes[] = {1,    2,    63,   64,   65,   127,  128,
                                 129,  511,  512,  513,  4095, 4096, 4097,
                                 8191, 8192, 8193};

TEST(GapCodecTest, RoundTripAtBoundarySizes) {
  Rng rng(7);
  for (size_t n : kBoundarySizes) {
    for (double density : {0.0, 0.004, 0.5, 1.0}) {
      BitVector v = density == 0.0   ? BitVector(n)
                    : density == 1.0 ? BitVector(n, true)
                                     : RandomVector(&rng, n, density);
      const std::vector<uint8_t> encoded = GapCodec::Encode(v);
      EXPECT_EQ(GapCodec::Decode(encoded, n), v)
          << "n=" << n << " density=" << density;
      EXPECT_EQ(GapCodec::EncodedSize(v), encoded.size())
          << "n=" << n << " density=" << density;
      auto checked = GapCodec::TryDecode(encoded, n);
      ASSERT_TRUE(checked.has_value()) << "n=" << n;
      EXPECT_EQ(*checked, v);
    }
  }
}

TEST(GapCodecTest, RoundTripEmptyVector) {
  BitVector v(0);
  const std::vector<uint8_t> encoded = GapCodec::Encode(v);
  EXPECT_TRUE(encoded.empty());
  EXPECT_EQ(GapCodec::Decode(encoded, 0), v);
}

TEST(GapCodecTest, AlternatingBitsAreTheWorstCase) {
  // 0101...: every bit is its own run — one byte per run, no gap economy.
  const size_t n = 300;
  BitVector v(n);
  for (size_t i = 1; i < n; i += 2) v.Set(i);
  const std::vector<uint8_t> encoded = GapCodec::Encode(v);
  EXPECT_EQ(encoded.size(), n);  // n runs, each length 1 -> one byte each
  EXPECT_EQ(GapCodec::Decode(encoded, n), v);

  // 1010...: same, but the leading zero-run has length 0 (one extra byte).
  BitVector w(n);
  for (size_t i = 0; i < n; i += 2) w.Set(i);
  const std::vector<uint8_t> encoded_w = GapCodec::Encode(w);
  EXPECT_EQ(encoded_w.size(), n + 1);
  EXPECT_EQ(GapCodec::Decode(encoded_w, n), w);
}

TEST(GapCodecTest, SingleBitInAMillionIsAFewBytes) {
  BitVector v(1'000'000);
  v.Set(999'999);
  const std::vector<uint8_t> encoded = GapCodec::Encode(v);
  EXPECT_LE(encoded.size(), 5u);
  EXPECT_EQ(GapCodec::Decode(encoded, 1'000'000), v);
}

TEST(GapCodecTest, EncodedSizeFromIndicesMatchesEncode) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextBounded(5000);
    BitVector v = RandomVector(&rng, n, rng.NextDouble());
    EXPECT_EQ(GapCodec::EncodedSizeFromIndices(v.ToIndexVector(), n),
              GapCodec::Encode(v).size())
        << "n=" << n;
  }
}

TEST(GapCodecTest, TryDecodeRejectsTruncatedVarint) {
  BitVector v(1000);
  v.Set(500);
  std::vector<uint8_t> encoded = GapCodec::Encode(v);
  ASSERT_GE(encoded.size(), 2u);
  encoded.back() |= 0x80;  // continuation bit with nothing following
  EXPECT_FALSE(GapCodec::TryDecode(encoded, 1000).has_value());
  encoded.pop_back();  // cut mid-stream
  EXPECT_FALSE(GapCodec::TryDecode(encoded, 1000).has_value());
}

TEST(GapCodecTest, TryDecodeRejectsOverwideVarint) {
  // Eleven continuation bytes: a varint wider than 64 bits.
  std::vector<uint8_t> buffer(11, 0xFF);
  buffer.push_back(0x00);
  EXPECT_FALSE(GapCodec::TryDecode(buffer, 100).has_value());
  // Ten bytes whose top byte carries bits past 2^64.
  std::vector<uint8_t> overflow(9, 0x80);
  overflow.push_back(0x7F);
  EXPECT_FALSE(GapCodec::TryDecode(overflow, 100).has_value());
}

TEST(GapCodecTest, TryDecodeRejectsRunOvershoot) {
  BitVector v(100, true);
  const std::vector<uint8_t> encoded = GapCodec::Encode(v);
  // Claiming a smaller universe than the runs cover must fail...
  EXPECT_FALSE(GapCodec::TryDecode(encoded, 99).has_value());
  // ...as must a larger one (undershoot: runs stop before num_bits).
  EXPECT_FALSE(GapCodec::TryDecode(encoded, 101).has_value());
  // The true size round-trips.
  EXPECT_TRUE(GapCodec::TryDecode(encoded, 100).has_value());
}

TEST(GapCodecTest, TryDecodeRejectsTrailingBytes) {
  BitVector v(64, true);
  std::vector<uint8_t> encoded = GapCodec::Encode(v);
  encoded.push_back(0x05);  // a well-formed varint after the final run
  EXPECT_FALSE(GapCodec::TryDecode(encoded, 64).has_value());
}

TEST(GapCodecTest, TryDecodeRejectsInteriorZeroRun) {
  // [1-run 3][zero-length run][1-run 2] — canonical streams merge
  // same-value runs, so an interior zero length is always corruption.
  const std::vector<uint8_t> buffer = {0x00, 0x03, 0x00, 0x02};
  EXPECT_FALSE(GapCodec::TryDecode(buffer, 5).has_value());
}

TEST(GapCodecTest, TryDecodeAcceptsEmptyBufferForEmptyVector) {
  EXPECT_TRUE(GapCodec::TryDecode({}, 0).has_value());
  EXPECT_FALSE(GapCodec::TryDecode({}, 1).has_value());
}

TEST(GapReaderTest, ReadsRunsAndFlagsTruncation) {
  const std::vector<uint8_t> buffer = {0x03, 0xAC, 0x02, 0x81};
  GapReader reader(buffer);
  uint64_t run = 0;
  ASSERT_TRUE(reader.ReadRun(&run));
  EXPECT_EQ(run, 3u);
  ASSERT_TRUE(reader.ReadRun(&run));
  EXPECT_EQ(run, 0x12Cu);  // 0xAC 0x02 -> 0x2C | (0x02 << 7)
  EXPECT_FALSE(reader.malformed());
  EXPECT_FALSE(reader.ReadRun(&run));  // 0x81 is a truncated varint
  EXPECT_TRUE(reader.malformed());
}

TEST(GapWriterTest, MergesAdjacentSameValueRuns) {
  GapWriter writer;
  writer.Append(false, 2);
  writer.Append(false, 3);
  writer.Append(true, 1);
  writer.Append(true, 4);
  EXPECT_EQ(writer.BitsWritten(), 10u);
  const std::vector<uint8_t> buffer = writer.Take();
  EXPECT_EQ(buffer, (std::vector<uint8_t>{0x05, 0x05}));
}

TEST(GapWriterTest, ReproducesEncodeByteForByte) {
  // Feeding a vector's runs through the writer must equal Encode exactly
  // — the property that keeps compressed kernel outputs canonical.
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.NextBounded(3000);
    BitVector v = RandomVector(&rng, n, rng.NextDouble());
    GapWriter writer;
    size_t pos = 0;
    v.ForEachSetBit([&](uint32_t i) {
      writer.Append(false, i - pos);
      writer.Append(true, 1);
      pos = i + 1;
    });
    writer.Append(false, n - pos);
    EXPECT_EQ(writer.Take(), GapCodec::Encode(v)) << "n=" << n;
  }
}

TEST(GapCodecTest, IndexEncodeMatchesBitVectorEncode) {
  // The index-based encoder (used by the SQSIMDB2 row writer, which never
  // materializes a BitVector per row) must produce the canonical bytes —
  // the same ones Encode produces for the equivalent vector.
  Rng rng(21);
  for (size_t n : kBoundarySizes) {
    for (double density : {0.0, 0.01, 0.5, 1.0}) {
      BitVector v = density == 0.0   ? BitVector(n)
                    : density == 1.0 ? BitVector(n, true)
                                     : RandomVector(&rng, n, density);
      std::vector<uint32_t> indices;
      v.ForEachSetBit([&](uint32_t i) { indices.push_back(i); });
      std::vector<uint8_t> encoded;
      GapCodec::EncodeFromIndices(indices, n, &encoded);
      EXPECT_EQ(encoded, GapCodec::Encode(v)) << "n=" << n;
      EXPECT_EQ(encoded.size(), GapCodec::EncodedSizeFromIndices(indices, n))
          << "n=" << n;

      std::vector<uint32_t> decoded;
      ASSERT_TRUE(GapCodec::TryDecodeIndices(encoded, n, &decoded))
          << "n=" << n;
      EXPECT_EQ(decoded, indices) << "n=" << n;
    }
  }
}

TEST(GapCodecTest, TryDecodeIndicesRejectsMalformedBuffers) {
  BitVector v(100);
  v.Set(3);
  v.Set(77);
  std::vector<uint8_t> good = GapCodec::Encode(v);
  std::vector<uint32_t> out;
  ASSERT_TRUE(GapCodec::TryDecodeIndices(good, 100, &out));

  // Truncation, trailing garbage, and a wrong universe size must all be
  // rejected exactly like TryDecode rejects them.
  std::vector<uint8_t> truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(GapCodec::TryDecodeIndices(truncated, 100, &out));
  std::vector<uint8_t> padded = good;
  padded.push_back(0x01);
  EXPECT_FALSE(GapCodec::TryDecodeIndices(padded, 100, &out));
  EXPECT_FALSE(GapCodec::TryDecodeIndices(good, 99, &out));
  EXPECT_FALSE(GapCodec::TryDecodeIndices(good, 101, &out));
}

}  // namespace
}  // namespace sparqlsim::util
