// Reproduces Table 5 of the paper: query processing times on the full and
// the dual-simulation-pruned database for the Virtuoso-like engine (static
// statistics-driven join ordering), plus the combined pruning + query time.
//
// Expected shape (paper): fewer queries improve than with the RDFox-like
// engine; because the planner re-plans from the pruned database's
// statistics, pruning can occasionally *hurt* (the paper's D4 anomaly).

#include "bench/bench_table45_common.h"

int main(int argc, char** argv) {
  return sparqlsim::bench::RunTable(
      "Table 5: full vs pruned query times, Virtuoso-like engine (seconds)",
      sparqlsim::engine::JoinOrderPolicy::kVirtuosoLike, argc, argv);
}
