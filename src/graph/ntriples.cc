#include "graph/ntriples.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

namespace sparqlsim::graph {

namespace {

void SkipSpace(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++(*pos);
  }
}

/// Parses `<...>` returning the text between the brackets.
bool ParseIri(std::string_view line, size_t* pos, std::string* out) {
  if (*pos >= line.size() || line[*pos] != '<') return false;
  size_t end = line.find('>', *pos + 1);
  if (end == std::string_view::npos) return false;
  *out = std::string(line.substr(*pos + 1, end - *pos - 1));
  *pos = end + 1;
  return true;
}

/// Parses `"..."` with \" and \\ escapes, returning the unescaped text.
bool ParseLiteral(std::string_view line, size_t* pos, std::string* out) {
  if (*pos >= line.size() || line[*pos] != '"') return false;
  out->clear();
  size_t i = *pos + 1;
  while (i < line.size()) {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out->push_back(line[i + 1]);
      i += 2;
      continue;
    }
    if (c == '"') {
      *pos = i + 1;
      // Skip optional datatype/langtag suffix up to whitespace.
      while (*pos < line.size() && line[*pos] != ' ' && line[*pos] != '\t') {
        ++(*pos);
      }
      return true;
    }
    out->push_back(c);
    ++i;
  }
  return false;
}

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

util::Status NTriples::Load(std::istream& in, GraphDatabaseBuilder* builder) {
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    size_t pos = 0;
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] == '#') continue;

    auto fail = [&](const std::string& what) {
      std::ostringstream msg;
      msg << "n-triples line " << line_number << ": " << what;
      return util::Status::Error(msg.str());
    };

    std::string subject, predicate, object;
    if (!ParseIri(line, &pos, &subject)) return fail("expected <subject>");
    SkipSpace(line, &pos);
    if (!ParseIri(line, &pos, &predicate)) return fail("expected <predicate>");
    SkipSpace(line, &pos);

    util::Status status = util::Status::Ok();
    if (pos < line.size() && line[pos] == '"') {
      if (!ParseLiteral(line, &pos, &object)) return fail("bad literal");
      status = builder->AddTripleLiteral(subject, predicate, object);
    } else {
      if (!ParseIri(line, &pos, &object)) return fail("expected object");
      status = builder->AddTriple(subject, predicate, object);
    }
    if (!status.ok()) return fail(status.message());

    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != '.') return fail("expected '.'");
  }
  return util::Status::Ok();
}

util::Status NTriples::LoadFile(const std::string& path,
                                GraphDatabaseBuilder* builder) {
  std::ifstream in(path);
  if (!in) return util::Status::Error("cannot open " + path);
  return Load(in, builder);
}

void NTriples::Write(const GraphDatabase& db, std::ostream& out) {
  db.ForEachTriple([&](const Triple& t) {
    out << '<' << db.nodes().Name(t.subject) << "> <"
        << db.predicates().Name(t.predicate) << "> ";
    if (db.IsLiteral(t.object)) {
      out << '"' << Escape(db.nodes().Name(t.object)) << '"';
    } else {
      out << '<' << db.nodes().Name(t.object) << '>';
    }
    out << " .\n";
  });
}

}  // namespace sparqlsim::graph
