#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/graph_database.h"
#include "util/status.h"

namespace sparqlsim::graph {

/// Knobs for the N-Triples loaders.
struct NTriplesOptions {
  /// Strict mode (default) stops at the first malformed line with a
  /// line-numbered error. Permissive mode counts and skips malformed
  /// lines instead — the right setting for real-world dumps, where a
  /// handful of out-of-spec lines must not abort a multi-gigabyte load.
  bool permissive = false;

  /// Worker threads for LoadParallel (0 = all hardware threads). The
  /// sequential Load ignores it. Results are byte-identical for every
  /// value, including 1.
  size_t num_threads = 0;

  /// Target chunk size for LoadParallel. Chunks end on line boundaries;
  /// the value only tunes parallel grain and peak memory (roughly
  /// (num_threads + 1) * chunk_bytes), never the parsed result.
  size_t chunk_bytes = size_t{8} << 20;

  /// Longest single line either loader accepts, in bytes (excluding the
  /// newline); 0 = unlimited. A longer line is malformed: strict mode
  /// stops with "line N: line exceeds the ...-byte line limit",
  /// permissive mode counts and skips it — both with the line numbering
  /// a compliant line would have had. This is what keeps LoadParallel's
  /// chunk buffers bounded on garbage input (a multi-gigabyte file with
  /// no newlines used to be slurped whole while hunting for the chunk
  /// boundary); the reader discards the excess instead of buffering it.
  size_t max_line_bytes = size_t{64} << 20;
};

/// Counters reported by the loaders; mainly interesting in permissive mode
/// and for the `sparqlsim_ingest --stats` report.
struct NTriplesStats {
  size_t lines = 0;            ///< Logical lines scanned (incl. comments).
  size_t triples = 0;          ///< Triples handed to the builder.
  size_t malformed_lines = 0;  ///< Lines skipped in permissive mode.
  std::string first_error;     ///< First diagnostic ("line N: ..."), if any.
  /// Largest single buffer the loader held: the biggest chunk read by
  /// LoadParallel, or the longest line seen by the sequential Load. With
  /// max_line_bytes set this stays near chunk_bytes + max_line_bytes no
  /// matter how malformed the input is (tested).
  size_t peak_chunk_bytes = 0;
};

/// Streaming N-Triples reader/writer.
///
/// The readers accept the full W3C N-Triples line grammar: IRIs
/// (`<...>`), blank nodes (`_:label`) in subject/object position, plain,
/// typed (`"..."^^<dt>`) and language-tagged (`"..."@en`) literals, the
/// `\t \b \n \r \f \" \' \\` and `\uXXXX`/`\UXXXXXXXX` escapes (decoded
/// to UTF-8), CR/LF line endings, and `#` comments (full-line or after
/// the terminating dot). Datatype and language tags are syntax-checked
/// and then dropped: the engine's literal universe L is untyped strings
/// (Def. 1), so `"42"^^<xsd:int>` and `"42"` intern to the same node —
/// see docs/DATASETS.md for the rationale.
///
/// This is the interchange format for the example programs, the
/// `sparqlsim_ingest` conversion tool, and for dumping pruned databases.
class NTriples {
 public:
  /// Parses a stream into the builder on the calling thread. In strict
  /// mode, stops at the first malformed line; in permissive mode, skips
  /// and counts it (see NTriplesOptions). `stats`, when non-null, is
  /// filled in both modes.
  static util::Status Load(std::istream& in, GraphDatabaseBuilder* builder,
                           const NTriplesOptions& options = {},
                           NTriplesStats* stats = nullptr);

  /// Parses a file into the builder (sequential).
  static util::Status LoadFile(const std::string& path,
                               GraphDatabaseBuilder* builder,
                               const NTriplesOptions& options = {},
                               NTriplesStats* stats = nullptr);

  /// Chunked parallel parse: the stream is read in chunk_bytes-sized
  /// pieces split on line boundaries, chunks are parsed concurrently on a
  /// util::ThreadPool into chunk-local dictionaries, and the chunk
  /// results are merged into `builder` in file order. The merge replays
  /// the global first-seen interning order of the sequential Load, so the
  /// resulting database — ids, matrices, and its BinaryIo serialization —
  /// is byte-identical to Load's for every thread count and chunk size.
  static util::Status LoadParallel(std::istream& in,
                                   GraphDatabaseBuilder* builder,
                                   const NTriplesOptions& options = {},
                                   NTriplesStats* stats = nullptr);

  /// Parallel parse of a file.
  static util::Status LoadFileParallel(const std::string& path,
                                       GraphDatabaseBuilder* builder,
                                       const NTriplesOptions& options = {},
                                       NTriplesStats* stats = nullptr);

  /// Serializes all triples of `db`. Nodes named `_:...` are written as
  /// blank nodes; literals are written with `\" \\ \n \r \t` escaped so
  /// the output always re-parses line by line.
  static void Write(const GraphDatabase& db, std::ostream& out);
};

}  // namespace sparqlsim::graph
