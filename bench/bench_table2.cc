// Reproduces Table 2 of the paper: runtimes of SPARQLSIM (the SOI worklist
// solver) versus the dual simulation algorithm of Ma et al. [20] on the
// BGP cores of queries B0-B19 over the DBpedia-like dataset.
//
// Expected shape (paper): SPARQLSIM wins on every query, often by an order
// of magnitude; absolute numbers differ because the substrate is the
// synthetic laptop-scale generator, not the 751M-triple DBpedia dump.

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/ma_baseline.h"
#include "sim/pruner.h"

namespace sparqlsim {
namespace {

int Run(int argc, char** argv) {
  // `--db <file.gdb>` runs the table on a real ingested database.
  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  graph::GraphDatabase db =
      override_db ? std::move(*override_db) : bench::MakeBenchDbpedia();
  sim::SparqlSimProcessor processor(&db);

  std::printf("Table 2: dual simulation runtimes, SPARQLSIM vs Ma et al. "
              "(seconds)\n");
  std::printf("%-6s %14s %14s %9s %8s %8s\n", "Query", "t_SPARQLSIM",
              "t_MA_ET_AL", "speedup", "rounds", "sweeps");
  bench::PrintRule(66);

  double total_soi = 0, total_ma = 0;
  for (const auto& [id, text] : datagen::BenchmarkQueries()) {
    sparql::Query query = bench::ParseOrDie(text);
    if (!query.where->IsBgp()) {
      std::fprintf(stderr, "%s skipped: not a BGP\n", id.c_str());
      continue;
    }

    sim::Solution soi_solution;
    double t_soi = bench::TimeAverage(
        [&] { soi_solution = processor.Solve(*query.where); });

    bench::PatternWithConstants data_pattern =
        bench::BgpToDataPattern(query.where->triples(), db);
    sim::Solution ma_solution;
    double t_ma = bench::TimeAverage([&] {
      if (data_pattern.satisfiable) {
        ma_solution =
            sim::MaDualSimulation(data_pattern.pattern, db,
                                  data_pattern.constants);
      }
    });

    total_soi += t_soi;
    total_ma += t_ma;
    std::printf("%-6s %14.5f %14.5f %8.1fx %8zu %8zu\n", id.c_str(), t_soi,
                t_ma, t_soi > 0 ? t_ma / t_soi : 0.0,
                soi_solution.stats.rounds, ma_solution.stats.rounds);
  }
  bench::PrintRule(66);
  std::printf("%-6s %14.5f %14.5f %8.1fx\n", "total", total_soi, total_ma,
              total_soi > 0 ? total_ma / total_soi : 0.0);
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
