#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_database.h"
#include "graph/triple.h"
#include "sim/soi.h"
#include "sim/soi_cache.h"
#include "sim/solver.h"
#include "sparql/ast.h"
#include "util/bitvector.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

/// Outcome of dual-simulation processing of a SPARQL query (Sect. 5):
/// the pruned triple set plus per-variable candidate sets.
struct PruneReport {
  /// Triples surviving the prune, sorted and deduplicated.
  ///
  /// Soundness (Thm. 2 / Def. 3): no match is lost — every solution of the
  /// query on the full database is also a solution on
  /// GraphDatabase::Restrict(kept_triples). For the monotone fragment
  /// (BGP, AND, UNION) the pruned result set is *equal* to the full one.
  /// For OPTIONAL queries it may be a superset: OPTIONAL is non-monotone,
  /// so dropping triples that no full match needs can turn a formerly
  /// bound optional part unbound and unblock additional rows — the
  /// "overapproximation of the actual SPARQL query results" the paper
  /// describes in Sect. 1, intended for further inspection, filtering, or
  /// exact re-evaluation.
  std::vector<graph::Triple> kept_triples;

  /// Per original query variable: union of the candidate sets of all its
  /// SOI occurrence groups across all union-free branches.
  std::map<std::string, util::BitVector> var_candidates;

  /// Aggregated solver statistics over all union-free branches that were
  /// actually solved (solution-cache hits contribute no solver work, only
  /// `solution_cache_hits`). Branches may solve concurrently, but the
  /// aggregation happens at a single-writer merge point after the batch
  /// barrier — see SimEngine::Prune.
  SolveStats stats;
  /// Number of union-free branches processed (Prop. 3).
  size_t num_branches = 0;
  /// Branches answered from the engine's solution cache.
  size_t solution_cache_hits = 0;
  /// End-to-end wall time: SOI construction + solving + triple extraction.
  double total_seconds = 0.0;

  /// True iff any branch's fixpoint stopped early — deadline expiry,
  /// cancellation, or a max_rounds cap. A truncated report stays *sound*
  /// in the Thm. 2 sense (candidate sets and kept triples are supersets of
  /// the converged ones; no match is lost) but is not the canonical
  /// fixpoint, so it never enters the solution cache and callers that need
  /// the exact pruned database must re-run without the deadline.
  bool truncated = false;

  /// generation() of the database this report was computed against. The
  /// serving layer uses it to tell which snapshot answered a query when
  /// versions race with ingest.
  uint64_t snapshot_generation = 0;
};

/// The execution subsystem for SOI solving — owns policy end to end:
/// thread pool, per-round parallel inequality evaluation, batching of
/// union-free branches, and SOI/solution caching.
///
/// One engine binds one database (borrowed; it must outlive the engine).
/// The pool is created once from `options.num_threads` (0 = hardware,
/// 1 = everything inline on the caller) and shared by every solve issued
/// through the engine, including the nested per-round parallelism of
/// branch-batched prunes. Determinism: results are bit-identical for any
/// `num_threads` and for `incremental_eval` on/off — fixpoint trajectory
/// included, so the cache layers may serve entries solved under either
/// setting; see SolveSoi.
///
/// Caching: unless a shared cache is injected, the engine creates a private
/// SoiCache when either cache toggle is set — bounded by
/// `options.cache_capacity` LRU entries and with generation GC on
/// (a private cache serves exactly one database). Entries are keyed by
/// database generation + canonical branch key, so a shared cache may safely
/// serve engines bound to different databases (each sees only its own
/// entries; leave generation GC off for that sharing pattern).
///
/// For concurrent multi-query serving on top of the engine, see
/// sim::QueryService (bounded admission queue + in-flight dedup).
///
/// Thread-safety: Solve/SolvePattern/Prune are const and safe to call
/// concurrently from multiple threads — a contract QueryService relies on
/// (its pool workers all Prune through one shared engine). Concurrent
/// calls share only the immutable database, the internally synchronized
/// SoiCache, the ThreadPool (whose Submit is locked and whose ParallelFor
/// keeps per-call state, so overlapping callers are fine), and the
/// internally synchronized ScratchPool. Keep it that way: any new
/// per-solve state must live on the stack of the call or in a checked-out
/// SolveScratch, not in engine members.
///
/// Scratch recycling: unless a shared pool is injected, the engine creates
/// a private ScratchPool when `options.EffectiveReuseScratch()` is on.
/// Every Solve checks a SolveScratch out for its duration and returns it,
/// so steady-state serving of same-universe queries allocates nothing —
/// see the "Scratch lifecycle" section of docs/ARCHITECTURE.md. Pooled
/// and unpooled solves are bit-identical (one solver code path).
class SimEngine {
 public:
  explicit SimEngine(const graph::GraphDatabase* db,
                     SolverOptions options = {},
                     std::shared_ptr<SoiCache> cache = nullptr,
                     std::shared_ptr<ScratchPool> scratch_pool = nullptr);

  const graph::GraphDatabase& db() const { return *db_; }
  const SolverOptions& options() const { return options_; }
  /// Null when the engine runs inline (num_threads resolves to 1).
  util::ThreadPool* pool() const { return pool_.get(); }
  /// Null when both cache toggles are off and no cache was injected.
  SoiCache* cache() const { return cache_.get(); }
  std::shared_ptr<SoiCache> shared_cache() const { return cache_; }
  /// Null when scratch reuse is off (option or SPARQLSIM_NO_SCRATCH) and
  /// none was injected. Its stats() are the allocation-counter seam.
  ScratchPool* scratch_pool() const { return scratch_pool_.get(); }

  /// Solves a prepared SOI through the engine's pool. No cache
  /// interaction — callers that constructed a Soi by hand (or restrict via
  /// `initial`, as strong simulation does) get exactly the solver.
  /// `control`, when given, bounds the solve (deadline/cancellation,
  /// checked at round boundaries; see SolveControl) — an expired solve
  /// returns with Solution::truncated set.
  Solution Solve(const Soi& soi,
                 const std::vector<util::BitVector>* initial = nullptr,
                 const SolveControl* control = nullptr) const;

  /// Builds (or fetches from cache) and solves the SOI of a union-free
  /// pattern; consults the solution cache when enabled. A solve truncated
  /// by `control` is returned but never cached.
  Solution SolvePattern(const sparql::Pattern& union_free_pattern,
                        const SolveControl* control = nullptr) const;

  /// Full pipeline: query -> pruned triple set + candidates. All union-free
  /// branches of the union normal form are processed concurrently through
  /// the pool (solve + triple extraction per branch), then merged in branch
  /// order at a single-writer merge point, so the report is deterministic
  /// for any thread count. The same `control` is shared by every branch;
  /// expiry marks the report truncated (sound over-approximation).
  PruneReport Prune(const sparql::Query& query,
                    const SolveControl* control = nullptr) const;

 private:
  struct BranchOutcome {
    std::shared_ptr<const Soi> soi;
    std::shared_ptr<const Solution> solution;
    std::vector<graph::Triple> kept;
    bool solution_from_cache = false;
  };

  BranchOutcome ProcessBranch(const sparql::Pattern& branch,
                              bool extract_triples,
                              const SolveControl* control) const;

  const graph::GraphDatabase* db_;
  SolverOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::shared_ptr<SoiCache> cache_;
  std::shared_ptr<ScratchPool> scratch_pool_;
};

}  // namespace sparqlsim::sim
