// The scratch-pool contract, three layers deep:
//
//  * util: summary-guided sparse clearing (HierarchicalBitVector::ClearLive,
//    BitVector::ClearRange) and CandidateSet recycling (ResetForReuse /
//    ResetTo) are observationally identical to fresh construction;
//  * solver: pooled and unpooled solves are bit-identical — solutions,
//    PruneReports, and fixpoint trajectories — across threads x kernels x
//    shards, for one-shot, warm-started, and standing-query solves;
//  * serving: a warmed SimEngine/QueryService reaches the zero-allocation
//    steady state (scratch_allocs flat, every checkout a reuse), including
//    under concurrent submission (this suite runs in the TSan CI leg).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "graph/graph_database.h"
#include "graph/triple.h"
#include "sim/query_service.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/standing_query.h"
#include "sparql/normalize.h"
#include "sparql/parser.h"
#include "util/bitvector.h"
#include "util/candidate_set.h"
#include "util/hierarchical_bitvector.h"
#include "util/rng.h"

namespace sparqlsim::sim {
namespace {

using util::BitVector;
using util::CandidateSet;
using util::HierarchicalBitVector;

sparql::Query ParseQuery(const std::string& text) {
  auto parsed = sparql::Parser::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error_message() << " in " << text;
  return std::move(parsed).value();
}

BitVector RandomVector(util::Rng* rng, size_t n, double density) {
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextBool(density)) v.Set(i);
  }
  return v;
}

// ---------------------------------------------------------------------------
// util layer: sparse clearing and recycling primitives
// ---------------------------------------------------------------------------

TEST(SparseClearTest, ClearRangeMatchesBitwiseReset) {
  util::Rng rng(11);
  for (size_t n : {1u, 63u, 64u, 65u, 130u, 4096u, 4100u}) {
    for (int rep = 0; rep < 8; ++rep) {
      BitVector v = RandomVector(&rng, n, 0.5);
      const size_t begin = rng.NextBounded(n);
      const size_t len = rng.NextBounded(n - begin + 1);
      BitVector want = v;
      for (size_t i = begin; i < begin + len; ++i) want.Reset(i);
      v.ClearRange(begin, len);
      EXPECT_EQ(v, want) << "n=" << n << " begin=" << begin << " len=" << len;
    }
  }
}

TEST(SparseClearTest, ClearLiveEqualsClearAllAndCountsWords) {
  util::Rng rng(13);
  for (size_t n : {64u, 4095u, 4096u, 4097u, 3 * 4096u + 9u}) {
    for (double density : {0.0, 0.001, 0.3}) {
      HierarchicalBitVector h(n);
      BitVector seed = RandomVector(&rng, n, density);
      seed.ForEachSetBit([&](uint32_t i) { h.Set(i); });
      const uint64_t before = h.words_cleared();
      h.ClearLive();
      EXPECT_EQ(h.Count(), 0u);
      for (size_t i = 0; i < n; i += 97) EXPECT_FALSE(h.Test(i));
      if (seed.None()) {
        // No live block: the sparse clear touches nothing.
        EXPECT_EQ(h.words_cleared(), before);
      } else {
        EXPECT_GT(h.words_cleared(), before);
      }
      // The vector must be fully reusable after the wipe: set a bit in
      // every block and count through the summary.
      for (size_t i = 0; i < n; i += 4096) h.Set(i);
      EXPECT_EQ(h.Count(), (n + 4095) / 4096);
    }
  }
}

TEST(SparseClearTest, ResetForReuseIsObservationallyAFreshSet) {
  util::Rng rng(17);
  const CandidateSet::Policy kPolicies[] = {CandidateSet::Policy::kAuto,
                                            CandidateSet::Policy::kDense,
                                            CandidateSet::Policy::kCompressed};
  for (auto old_policy : kPolicies) {
    for (auto new_policy : kPolicies) {
      for (size_t old_n : {600u, 4200u}) {
        for (size_t new_n : {600u, 4200u}) {
          // Dirty a set (dense or compressed, depending on policy and
          // occupancy), then recycle it under a possibly different shape.
          CandidateSet used(old_n, old_policy);
          RandomVector(&rng, old_n, 0.01).ForEachSetBit([&](uint32_t i) {
            used.Set(i);
          });
          used.AndWith(RandomVector(&rng, old_n, 0.5));
          used.ResetForReuse(new_n, new_policy);

          CandidateSet fresh(new_n, new_policy);
          EXPECT_EQ(used.size(), fresh.size());
          EXPECT_EQ(used.Count(), 0u);
          EXPECT_EQ(used.compressed(), fresh.compressed());

          // Drive both through the same mutation sequence: every
          // observable (count, membership, layout) must stay equal.
          BitVector mask = RandomVector(&rng, new_n, 0.3);
          used.SetAll();
          fresh.SetAll();
          EXPECT_EQ(used.AndWith(mask), fresh.AndWith(mask));
          EXPECT_EQ(used.Count(), fresh.Count());
          EXPECT_EQ(used.compressed(), fresh.compressed());
          EXPECT_EQ(used.ToBitVector(), fresh.ToBitVector());
        }
      }
    }
  }
}

TEST(SparseClearTest, ResetToMatchesSeedingConstructor) {
  util::Rng rng(23);
  for (auto policy : {CandidateSet::Policy::kAuto,
                      CandidateSet::Policy::kCompressed}) {
    for (double density : {0.0, 0.004, 0.6}) {
      const size_t n = 5000;
      BitVector seed = RandomVector(&rng, n, density);
      CandidateSet recycled(n / 2, CandidateSet::Policy::kDense);
      recycled.SetAll();
      recycled.ResetTo(seed, policy);
      CandidateSet fresh(seed, policy);
      EXPECT_EQ(recycled.Count(), fresh.Count());
      EXPECT_EQ(recycled.compressed(), fresh.compressed());
      EXPECT_EQ(recycled.ToBitVector(), fresh.ToBitVector());
    }
  }
}

// ---------------------------------------------------------------------------
// Solver layer: pooled == unpooled, bit for bit
// ---------------------------------------------------------------------------

void ExpectSameTrajectory(const SolveStats& actual, const SolveStats& want,
                          const std::string& context) {
  EXPECT_EQ(actual.rounds, want.rounds) << context;
  EXPECT_EQ(actual.evaluations, want.evaluations) << context;
  EXPECT_EQ(actual.updates, want.updates) << context;
  EXPECT_EQ(actual.row_evals, want.row_evals) << context;
  EXPECT_EQ(actual.col_evals, want.col_evals) << context;
  EXPECT_EQ(actual.delta_evals, want.delta_evals) << context;
  EXPECT_EQ(actual.full_evals, want.full_evals) << context;
  EXPECT_EQ(actual.acc_rebuilds, want.acc_rebuilds) << context;
  EXPECT_EQ(actual.cols_cleared, want.cols_cleared) << context;
  EXPECT_EQ(actual.max_round_width, want.max_round_width) << context;
}

class PooledDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PooledDeterminism, PooledSolvesMatchUnpooledAcrossTheMatrix) {
  const uint64_t seed = GetParam();
  datagen::RandomGraphConfig config;
  config.num_nodes = 150;
  config.num_edges = 600;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  // Two patterns through the same engine, solved twice each: the second
  // round recycles scratch dirtied by a *different* query, the regime
  // where stale-buffer bugs would surface.
  std::vector<Soi> sois;
  sois.push_back(
      BuildSoiFromGraph(datagen::MakeRandomPattern(6, 4, 3, seed + 2000)));
  sois.push_back(
      BuildSoiFromGraph(datagen::MakeRandomPattern(4, 5, 3, seed + 3000)));

  // Unpooled sequential oracle.
  std::vector<Solution> reference;
  {
    SolverOptions plain;
    plain.num_threads = 1;
    plain.reuse_scratch = false;
    SimEngine oracle(&db, plain);
    ASSERT_EQ(oracle.scratch_pool(), nullptr);
    for (const Soi& soi : sois) reference.push_back(oracle.Solve(soi));
  }

  for (bool pooled : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (auto kernel : {SolverOptions::KernelMode::kAuto,
                          SolverOptions::KernelMode::kDense,
                          SolverOptions::KernelMode::kCompressed}) {
        for (size_t shards : {size_t{1}, size_t{4}}) {
          SolverOptions options;
          options.num_threads = threads;
          options.num_shards = shards;
          options.kernel_mode = kernel;
          options.reuse_scratch = pooled;
          SimEngine engine(&db, options);
          for (int pass = 0; pass < 2; ++pass) {
            for (size_t q = 0; q < sois.size(); ++q) {
              const std::string context =
                  "seed " + std::to_string(seed) +
                  (pooled ? ", pooled" : ", unpooled") + ", " +
                  std::to_string(threads) + " threads, " +
                  std::to_string(shards) + " shards, kernel " +
                  std::to_string(static_cast<int>(kernel)) + ", pass " +
                  std::to_string(pass) + ", query " + std::to_string(q);
              Solution solution = engine.Solve(sois[q]);
              ASSERT_EQ(solution.candidates.size(),
                        reference[q].candidates.size())
                  << context;
              for (size_t v = 0; v < solution.candidates.size(); ++v) {
                EXPECT_EQ(solution.candidates[v], reference[q].candidates[v])
                    << context << ", var " << v;
              }
              ExpectSameTrajectory(solution.stats, reference[q].stats,
                                   context);
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PooledDeterminism,
                         ::testing::Range<uint64_t>(1, 5));

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

// The zero-alloc steady-state tests need the pool to exist; under
// SPARQLSIM_NO_SCRATCH=1 (the CI differential-oracle leg) they skip —
// the determinism tests above are the ones that matter in that mode.
bool PoolDisabledByEnv() { return !SolverOptions{}.EffectiveReuseScratch(); }

TEST(ScratchPoolTest, SteadyStateRepeatedSolveStopsAllocating) {
  if (PoolDisabledByEnv()) GTEST_SKIP() << "SPARQLSIM_NO_SCRATCH set";
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolverOptions options;
  options.num_threads = 1;
  options.cache_sois = false;
  options.cache_solutions = false;
  SimEngine engine(&db, options);
  ASSERT_NE(engine.scratch_pool(), nullptr);

  sparql::Query query =
      ParseQuery("SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }");
  Soi soi = BuildSoiFromPattern(*query.where, db);

  // Warm-up: the first checkout shapes the scratch.
  engine.Solve(soi);
  EXPECT_EQ(engine.scratch_pool()->stats().allocs, 1u);

  for (int i = 0; i < 10; ++i) {
    const ScratchPool::Stats before = engine.scratch_pool()->stats();
    Solution solution = engine.Solve(soi);
    const ScratchPool::Stats after = engine.scratch_pool()->stats();
    EXPECT_EQ(after.allocs - before.allocs, 0u) << "solve " << i;
    EXPECT_EQ(after.reuses - before.reuses, 1u) << "solve " << i;
    EXPECT_EQ(solution.stats.scratch_reuses, 1u) << "solve " << i;
    EXPECT_EQ(solution.stats.scratch_allocs, 0u) << "solve " << i;
    EXPECT_GT(solution.stats.bytes_recycled, 0u) << "solve " << i;
  }
}

TEST(ScratchPoolTest, SteadyStateHoldsAcrossDistinctSameWidthQueries) {
  if (PoolDisabledByEnv()) GTEST_SKIP() << "SPARQLSIM_NO_SCRATCH set";
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolverOptions options;
  options.num_threads = 1;
  options.cache_sois = false;
  options.cache_solutions = false;
  SimEngine engine(&db, options);

  // Distinct shapes over one node universe. A recycled scratch must
  // serve any of them allocation-free once it has seen the widest.
  std::vector<Soi> sois;
  for (const char* text :
       {"SELECT * WHERE { ?d <directed> ?m . }",
        "SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }",
        "SELECT * WHERE { ?d <directed> ?m . ?a <acted_in> ?m . "
        "?d <worked_with> ?a . }",
        "SELECT * WHERE { ?m <genre> ?g . ?a <acted_in> ?m . }"}) {
    sparql::Query query = ParseQuery(text);
    sois.push_back(BuildSoiFromPattern(*query.where, db));
  }

  for (const Soi& soi : sois) engine.Solve(soi);  // warm-up pass

  const ScratchPool::Stats warm = engine.scratch_pool()->stats();
  for (int pass = 0; pass < 3; ++pass) {
    for (const Soi& soi : sois) {
      Solution solution = engine.Solve(soi);
      EXPECT_EQ(solution.stats.scratch_reuses, 1u);
      EXPECT_EQ(solution.stats.scratch_allocs, 0u);
    }
  }
  const ScratchPool::Stats steady = engine.scratch_pool()->stats();
  EXPECT_EQ(steady.allocs, warm.allocs) << "steady-state solves allocated";
  EXPECT_EQ(steady.reuses - warm.reuses, 3u * sois.size());
  EXPECT_GT(steady.bytes_recycled, warm.bytes_recycled);
}

TEST(ScratchPoolTest, DisabledPoolReportsAllocsOnly) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SolverOptions options;
  options.num_threads = 1;
  options.reuse_scratch = false;
  EXPECT_FALSE(options.EffectiveReuseScratch());
  SimEngine engine(&db, options);
  EXPECT_EQ(engine.scratch_pool(), nullptr);

  sparql::Query query = ParseQuery("SELECT * WHERE { ?d <directed> ?m . }");
  Soi soi = BuildSoiFromPattern(*query.where, db);
  for (int i = 0; i < 3; ++i) {
    Solution solution = engine.Solve(soi);
    EXPECT_EQ(solution.stats.scratch_reuses, 0u);
    EXPECT_EQ(solution.stats.scratch_allocs, 1u);
    EXPECT_EQ(solution.stats.bytes_recycled, 0u);
  }
}

// ---------------------------------------------------------------------------
// Standing queries: pooled scratch under maintenance deltas
// ---------------------------------------------------------------------------

TEST(ScratchPoolStandingTest, MaintenanceIdenticalWithAndWithoutScratch) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 120;
  config.num_edges = 500;
  config.num_labels = 3;
  config.seed = 41;
  graph::GraphDatabase base = datagen::MakeRandomDatabase(config);
  auto snapshot = std::make_shared<const graph::GraphDatabase>(
      base.Snapshot() != nullptr ? *base.Snapshot() : base);

  sparql::Query query = ParseQuery(
      "SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z . ?z <p2> ?x . }");

  StandingQueryOptions with_scratch;
  StandingQueryOptions without_scratch;
  without_scratch.solver.reuse_scratch = false;

  StandingQuery pooled(query, snapshot, with_scratch);
  StandingQuery plain(query, snapshot, without_scratch);

  util::Rng rng(77);
  auto random_triple = [&] {
    return graph::Triple{
        static_cast<uint32_t>(rng.NextBounded(base.NumNodes())),
        static_cast<uint32_t>(rng.NextBounded(base.NumPredicates())),
        static_cast<uint32_t>(rng.NextBounded(base.NumNodes()))};
  };

  for (int step = 0; step < 6; ++step) {
    TripleDelta delta;
    for (int i = 0; i < 5; ++i) delta.inserts.push_back(random_triple());
    std::vector<graph::Triple> all = pooled.db().AllTriples();
    for (int i = 0; i < 3 && !all.empty(); ++i) {
      delta.deletes.push_back(all[rng.NextBounded(all.size())]);
    }

    const PruneReport& a = pooled.Apply(delta);
    const PruneReport& b = plain.Apply(delta);
    EXPECT_EQ(a.kept_triples, b.kept_triples) << "step " << step;
    EXPECT_EQ(a.var_candidates, b.var_candidates) << "step " << step;
    ExpectSameTrajectory(a.stats, b.stats, "step " + std::to_string(step));

    // Cold cross-check: the pooled maintained state equals a cold prune.
    SolverOptions plain_opts;
    plain_opts.num_threads = 1;
    plain_opts.reuse_scratch = false;
    SimEngine cold(&pooled.db(), plain_opts);
    PruneReport want = cold.Prune(query);
    EXPECT_EQ(a.kept_triples, want.kept_triples) << "step " << step;
    EXPECT_EQ(a.var_candidates, want.var_candidates) << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// Serving layer: concurrent QueryService on one shared pool (TSan gate)
// ---------------------------------------------------------------------------

TEST(ScratchPoolServiceTest, ConcurrentSubmissionsRecycleAndStayExact) {
  if (PoolDisabledByEnv()) GTEST_SKIP() << "SPARQLSIM_NO_SCRATCH set";
  graph::GraphDatabase db = datagen::MakeMovieDatabase();

  std::vector<sparql::Query> mix;
  for (const char* text :
       {"SELECT * WHERE { ?d <directed> ?m . }",
        "SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }",
        "SELECT * WHERE { ?a <acted_in> ?m . ?d <directed> ?m . }",
        "SELECT * WHERE { ?d <directed> ?m . OPTIONAL { ?d <worked_with> "
        "?c . } }"}) {
    mix.push_back(ParseQuery(text));
  }

  // Sequential cache-free unpooled oracle.
  SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  plain.reuse_scratch = false;
  SimEngine oracle(&db, plain);
  std::map<std::string, PruneReport> reference;
  for (const sparql::Query& q : mix) {
    std::string key = sparql::CanonicalPatternKey(*q.where);
    if (!reference.count(key)) reference.emplace(key, oracle.Prune(q));
  }

  QueryServiceOptions options;
  options.num_workers = 4;
  // Caching off so every submission exercises a pool checkout.
  options.solver.cache_sois = false;
  options.solver.cache_solutions = false;
  QueryService service(&db, options);

  std::vector<std::thread> producers;
  constexpr int kPerProducer = 12;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const sparql::Query& q = mix[(p + i) % mix.size()];
        PruneReport report = service.Submit(q).get();
        const PruneReport& want =
            reference.at(sparql::CanonicalPatternKey(*q.where));
        EXPECT_EQ(report.kept_triples, want.kept_triples);
        EXPECT_EQ(report.var_candidates, want.var_candidates);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.Drain();

  const QueryService::Stats stats = service.stats();
  EXPECT_GT(stats.scratch_reuses, 0u)
      << "a warmed service must recycle scratch";
  // Concurrency may mint a few scratches (one per simultaneous checkout),
  // but never one per solve: reuse must dominate.
  EXPECT_LT(stats.scratch_allocs, stats.scratch_reuses);
  EXPECT_GT(stats.bytes_recycled, 0u);
}

}  // namespace
}  // namespace sparqlsim::sim
