// Quickstart: the paper's worked example end to end.
//
// Builds the movie graph of Fig. 1(a), runs the introductory query (X1)
// through all three layers of the library:
//   1. the exact SPARQL engine (the reference semantics),
//   2. the largest dual simulation via the SOI solver (Sect. 3),
//   3. dual-simulation pruning (Sect. 5) and re-evaluation on the prune.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "datagen/movies.h"
#include "engine/evaluator.h"
#include "sim/pruner.h"
#include "sparql/parser.h"

int main() {
  using namespace sparqlsim;

  // --- The database of Fig. 1(a). ---
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  std::printf("database: %zu nodes, %zu predicates, %zu triples\n",
              db.NumNodes(), db.NumPredicates(), db.NumTriples());

  // --- Query (X1): directors with a movie and a coworker. ---
  const char* text =
      "SELECT * WHERE { ?director <directed> ?movie . "
      "?director <worked_with> ?coworker . }";
  auto parsed = sparql::Parser::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error_message().c_str());
    return 1;
  }
  sparql::Query query = std::move(parsed).value();

  // --- 1. Exact evaluation. ---
  engine::Evaluator evaluator(&db);
  engine::SolutionSet matches = evaluator.Evaluate(query);
  std::printf("\n(X1) matches (%zu):\n%s", matches.NumRows(),
              matches.ToString(db).c_str());

  // --- 2. The largest dual simulation (relation (2) of the paper). ---
  sim::SparqlSimProcessor processor(&db);
  sim::PruneReport report = processor.Prune(query);
  std::printf("largest dual simulation candidates per variable:\n");
  for (const auto& [var, candidates] : report.var_candidates) {
    std::printf("  ?%s ->", var.c_str());
    candidates.ForEachSetBit(
        [&](uint32_t node) { std::printf(" %s,", db.nodes().Name(node).c_str()); });
    std::printf("\n");
  }

  // --- 3. Pruning: only the two bold subgraphs of Fig. 1(a) survive. ---
  std::printf("\npruned database: %zu of %zu triples kept "
              "(%.1f%% pruned away) in %.4fs\n",
              report.kept_triples.size(), db.NumTriples(),
              100.0 * (1.0 - static_cast<double>(report.kept_triples.size()) /
                                 static_cast<double>(db.NumTriples())),
              report.total_seconds);
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  engine::SolutionSet on_pruned = engine::Evaluator(&pruned).Evaluate(query);
  std::printf("re-evaluating (X1) on the prune: %zu matches "
              "(soundness: identical result set)\n",
              on_pruned.NumRows());
  return 0;
}
