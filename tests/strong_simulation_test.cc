#include "sim/strong_simulation.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "sim/dual_simulation.h"
#include "sim/soi.h"
#include "sim/validate.h"

namespace sparqlsim::sim {
namespace {

TEST(PatternDiameterTest, Shapes) {
  graph::Graph chain(4);
  chain.AddEdge(0, 0, 1);
  chain.AddEdge(1, 0, 2);
  chain.AddEdge(2, 0, 3);
  EXPECT_EQ(PatternDiameter(chain), 3u);

  graph::Graph star(4);
  star.AddEdge(0, 0, 1);
  star.AddEdge(0, 0, 2);
  star.AddEdge(0, 0, 3);
  EXPECT_EQ(PatternDiameter(star), 2u);

  graph::Graph single(1);
  EXPECT_EQ(PatternDiameter(single), 0u);

  // Direction is ignored: a 2-cycle has diameter 1.
  graph::Graph cycle(2);
  cycle.AddEdge(0, 0, 1);
  cycle.AddEdge(1, 0, 0);
  EXPECT_EQ(PatternDiameter(cycle), 1u);
}

TEST(StrongSimulationTest, MovieX1FindsTheTwoSubgraphs) {
  // On Fig. 1(a) with the (X1) pattern, strong simulation separates the
  // two bold subgraphs (they are farther than d_Q apart), while plain
  // dual simulation merges them into one relation.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  graph::Graph x1(3);  // 0=director, 1=movie, 2=coworker
  x1.AddEdge(0, *db.predicates().Lookup("directed"), 1);
  x1.AddEdge(0, *db.predicates().Lookup("worked_with"), 2);

  StrongSimResult result = StrongSimulation(x1, db);
  EXPECT_EQ(result.radius, 2u);
  ASSERT_EQ(result.matches.size(), 2u);

  auto id = [&](const char* name) { return *db.nodes().Lookup(name); };
  // Each match contains exactly one director constellation.
  for (const StrongMatch& m : result.matches) {
    EXPECT_EQ(m.candidates[0].Count(), 1u);
    EXPECT_EQ(m.candidates[1].Count(), 1u);
    EXPECT_EQ(m.candidates[2].Count(), 1u);
  }
  bool found_depalma = false, found_hamilton = false;
  for (const StrongMatch& m : result.matches) {
    if (m.candidates[0].Test(id("B. De Palma"))) found_depalma = true;
    if (m.candidates[0].Test(id("G. Hamilton"))) found_hamilton = true;
  }
  EXPECT_TRUE(found_depalma);
  EXPECT_TRUE(found_hamilton);
}

TEST(StrongSimulationTest, EveryMatchIsADualSimulation) {
  // Each per-ball relation must itself satisfy Def. 2 against the full
  // database (a dual simulation inside an induced subgraph is one in the
  // whole graph).
  datagen::RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 200;
  config.num_labels = 3;
  config.seed = 21;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(3, 1, 3, 22);

  StrongSimResult result = StrongSimulation(pattern, db);
  for (const StrongMatch& m : result.matches) {
    std::string why;
    EXPECT_TRUE(IsDualSimulation(pattern, db, m.candidates, &why)) << why;
  }
}

TEST(StrongSimulationTest, MatchesRefineGlobalDualSimulation) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 50;
  config.num_edges = 150;
  config.num_labels = 2;
  config.seed = 31;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(3, 1, 2, 32);

  Solution global = LargestDualSimulation(pattern, db);
  StrongSimResult result = StrongSimulation(pattern, db);
  for (const StrongMatch& m : result.matches) {
    for (size_t v = 0; v < pattern.NumNodes(); ++v) {
      EXPECT_TRUE(m.candidates[v].IsSubsetOf(global.candidates[v]));
    }
  }
}

TEST(StrongSimulationTest, EmptyWhenNoDualSimulation) {
  graph::GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("x", "e", "y").ok());
  graph::GraphDatabase db = std::move(b).Build();
  graph::Graph cycle(2);
  cycle.AddEdge(0, *db.predicates().Lookup("e"), 1);
  cycle.AddEdge(1, *db.predicates().Lookup("e"), 0);

  StrongSimResult result = StrongSimulation(cycle, db);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.balls_checked, 0u);  // global prefilter already empty
}

TEST(StrongSimulationTest, MaxMatchesCapsWork) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 80;
  config.num_edges = 400;
  config.num_labels = 1;
  config.seed = 41;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);
  graph::Graph pattern = datagen::MakeRandomPattern(2, 0, 1, 42);

  StrongSimOptions options;
  options.max_matches = 1;
  StrongSimResult result = StrongSimulation(pattern, db, options);
  EXPECT_LE(result.matches.size(), 1u);
}

}  // namespace
}  // namespace sparqlsim::sim
